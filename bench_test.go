// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each benchmark runs the
// corresponding experiment end to end and reports its headline quantities
// as benchmark metrics; the rendered table is printed once per benchmark.
//
// Experiments execute through internal/harness, so each benchmark's sweep
// already fans out across GOMAXPROCS workers with bit-identical results;
// BenchmarkFigure5SweepWorkers measures that scaling directly.
//
// The per-iteration simulation horizon is kept short so `go test -bench=.`
// completes quickly; the cmd tools run the paper's full 530 s horizon
// (their outputs are recorded in EXPERIMENTS.md).
package bluegs_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bluegs/internal/experiments"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// benchCfg is the per-iteration experiment configuration (Workers 0: the
// harness uses GOMAXPROCS).
var benchCfg = experiments.Config{Duration: 5 * time.Second, Seed: 1}

// printOnce prints each experiment table a single time across benchmark
// reruns.
var printOnce sync.Map

func printTable(name string, tbl *stats.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Printf("\n%s\n", tbl.String())
}

// BenchmarkFigure5ThroughputVsDelayReq regenerates Figure 5: per-slave
// throughput versus the Guaranteed Service delay requirement.
func BenchmarkFigure5ThroughputVsDelayReq(b *testing.B) {
	b.ReportAllocs()
	var lastBE, lastGS float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.Figure5(benchCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Violations > 0 {
				b.Fatalf("bound violated at %v", r.Target)
			}
		}
		last := rows[len(rows)-1]
		lastBE, lastGS = last.BEKbps, last.GSKbps
		printTable("fig5", tbl)
	}
	b.ReportMetric(lastGS, "GS_kbps@46ms")
	b.ReportMetric(lastBE, "BE_kbps@46ms")
}

// BenchmarkTableT1AnalyticalParams recomputes the §4.1 derived parameters
// (x values, admissible rate cap, supportable bounds).
func BenchmarkTableT1AnalyticalParams(b *testing.B) {
	var t1 experiments.T1
	for i := 0; i < b.N; i++ {
		var tbl *stats.Table
		var err error
		t1, tbl, err = experiments.TableT1()
		if err != nil {
			b.Fatal(err)
		}
		printTable("t1", tbl)
	}
	b.ReportMetric(t1.MaxRate, "max_R_bytes/s")
	b.ReportMetric(float64(t1.MinBound)/1e6, "min_bound_ms")
}

// BenchmarkTableT2DelayCompliance verifies the §4.2 claim that no packet
// exceeds its delay bound, across delay requirements.
func BenchmarkTableT2DelayCompliance(b *testing.B) {
	var worstMargin float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.TableT2(benchCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		worstMargin = 1e18
		for _, r := range rows {
			if !r.OK {
				b.Fatalf("flow %d at %v violated its bound", r.Flow, r.Target)
			}
			if margin := float64(r.Bound - r.MaxSeen); margin < worstMargin {
				worstMargin = margin
			}
		}
		printTable("t2", tbl)
	}
	b.ReportMetric(worstMargin/1e6, "worst_margin_ms")
}

// BenchmarkTableT3TotalThroughput reproduces the §4.2 capacity result
// (~656 kbps carried at a loose requirement).
func BenchmarkTableT3TotalThroughput(b *testing.B) {
	var t3 experiments.T3
	for i := 0; i < b.N; i++ {
		var tbl *stats.Table
		var err error
		t3, tbl, err = experiments.TableT3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("t3", tbl)
	}
	b.ReportMetric(t3.TotalKbps, "total_kbps")
	b.ReportMetric(t3.BEKbps, "BE_kbps")
}

// BenchmarkTableT4SCOComparison reproduces the §5 SCO-versus-poller
// comparison.
func BenchmarkTableT4SCOComparison(b *testing.B) {
	var gsBusy, scoReserved float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.TableT4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		scoReserved = rows[0].BusySlots
		gsBusy = rows[1].BusySlots
		printTable("t4", tbl)
	}
	b.ReportMetric(scoReserved, "sco_slots/s")
	b.ReportMetric(gsBusy, "gs_tightest_slots/s")
}

// BenchmarkAblationImprovements quantifies the §3.2 improvement rules
// (experiment A1).
func BenchmarkAblationImprovements(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.AblationImprovements(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		fixed := rows[0].GSSlots
		all := rows[len(rows)-1].GSSlots
		saved = float64(fixed - all)
		printTable("a1", tbl)
	}
	b.ReportMetric(saved, "slots_saved")
}

// BenchmarkBaselinePollers compares the related-work best-effort pollers
// (experiment A2).
func BenchmarkBaselinePollers(b *testing.B) {
	var pfpFairness float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.BaselinePollers(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Poller == "pfp" {
				pfpFairness = r.Fairness
			}
		}
		printTable("a2", tbl)
	}
	b.ReportMetric(pfpFairness, "pfp_fairness")
}

// BenchmarkRetransmissionStudy runs the paper's future-work experiment
// (E5): lossy radio with ARQ, with and without the saved-bandwidth
// recovery policy.
func BenchmarkRetransmissionStudy(b *testing.B) {
	var recoveredDelivery float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.RetransmissionStudy(benchCfg, []float64{0, 1e-4})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Recovery {
				recoveredDelivery = r.GSDelivery
			}
		}
		printTable("e5", tbl)
	}
	b.ReportMetric(recoveredDelivery, "delivery@1e-4")
}

// BenchmarkSCOCoexistence runs the SCO coexistence experiment (E6): a GS
// voice flow plus best effort with and without a reserved HV3 link.
func BenchmarkSCOCoexistence(b *testing.B) {
	var scoKbps float64
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.SCOCoexistence(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Violations > 0 {
				b.Fatalf("%q violated the bound", r.Label)
			}
			if r.SCOKbps > 0 {
				scoKbps = r.SCOKbps
			}
		}
		printTable("e6", tbl)
	}
	b.ReportMetric(scoKbps, "sco_kbps")
}

// BenchmarkDelayDistribution runs the E7 delay-distribution
// characterisation at a 38 ms requirement.
func BenchmarkDelayDistribution(b *testing.B) {
	var worstCDF float64
	for i := 0; i < b.N; i++ {
		rows, tbl, _, err := experiments.DelayDistribution(benchCfg, 38*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		worstCDF = 1
		for _, r := range rows {
			if r.Max > r.Bound {
				b.Fatalf("flow %d: max %v > bound %v", r.Flow, r.Max, r.Bound)
			}
			if r.CDFAtBound < worstCDF {
				worstCDF = r.CDFAtBound
			}
		}
		printTable("e7", tbl)
	}
	b.ReportMetric(worstCDF, "worst_cdf_at_bound")
}

// BenchmarkFigure5SweepWorkers measures the harness's parallel scaling on
// a replicated Figure 5 sweep: the same grid at one worker versus all
// cores. Rows are bit-identical either way (the determinism tests enforce
// it); only the wall clock changes.
func BenchmarkFigure5SweepWorkers(b *testing.B) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Config{
				Duration:     2 * time.Second,
				Seed:         1,
				Replications: 3,
				Workers:      workers,
			}
			simulated := float64(len(experiments.DefaultFig5Targets())) *
				float64(cfg.Replications) * cfg.Duration.Seconds()
			for i := 0; i < b.N; i++ {
				rows, _, err := experiments.Figure5(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Violations > 0 {
						b.Fatalf("bound violated at %v", r.Target)
					}
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if perOp > 0 {
				b.ReportMetric(simulated/perOp.Seconds(), "sim_s/wall_s")
			}
		})
	}
}

// BenchmarkPaperScenarioSimulation measures raw simulation throughput of
// the full Fig. 4 piconet: simulated seconds per wall second, kernel
// events per wall second, and heap allocations per kernel event (the
// allocation-free-kernel trajectory metric; steady state is pooled, so
// the residual is per-run setup).
func BenchmarkPaperScenarioSimulation(b *testing.B) {
	b.ReportAllocs()
	simulated := 10 * time.Second
	var events uint64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < b.N; i++ {
		spec := scenario.Paper(38 * time.Millisecond)
		spec.Duration = simulated
		res, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalKbps(piconet.Guaranteed) < 200 {
			b.Fatal("implausible result")
		}
		events += res.Events
	}
	runtime.ReadMemStats(&ms1)
	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp > 0 {
		b.ReportMetric(simulated.Seconds()/perOp.Seconds(), "sim_s/wall_s")
	}
	if sec := b.Elapsed().Seconds(); sec > 0 && events > 0 {
		b.ReportMetric(float64(events)/sec, "events/s")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(events), "allocs/event")
	}
}

// BenchmarkScatternet runs N interference-coupled piconets over one
// shared kernel (batched traffic generation on) and reports how
// simulation throughput scales with the piconet count — the
// sim_s/wall_s-vs-count trajectory also recorded in BENCH_kernel.json.
func BenchmarkScatternet(b *testing.B) {
	simulated := 5 * time.Second
	for _, piconets := range []int{1, 2, 4, 8} {
		piconets := piconets
		b.Run(fmt.Sprintf("%dpn", piconets), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				spec := scenario.Scatternet(scenario.ScatternetConfig{Piconets: piconets})
				spec.Duration = simulated
				spec.BatchTraffic = true
				res, err := scenario.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalKbps(piconet.Guaranteed) < 100*float64(piconets) {
					b.Fatal("implausible result")
				}
				events += res.Events
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if perOp > 0 {
				b.ReportMetric(simulated.Seconds()/perOp.Seconds(), "sim_s/wall_s")
			}
			if sec := b.Elapsed().Seconds(); sec > 0 && events > 0 {
				b.ReportMetric(float64(events)/sec, "events/s")
			}
		})
	}
}

// BenchmarkScatternetWorkers measures the sharded kernel's worker
// multiplexing on a fixed 4-piconet scatternet: the same spec at 1, 2
// and GOMAXPROCS kernel workers. Results are byte-identical at every
// count (the shard-determinism suite enforces it), so the rows differ
// only in wall clock — on multi-core hardware the sim_s/wall_s spread
// is the shard-parallel speedup, on one core it is the cost of
// multiplexing four shard goroutines over the epoch barrier.
func BenchmarkScatternetWorkers(b *testing.B) {
	simulated := 5 * time.Second
	counts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				spec := scenario.Scatternet(scenario.ScatternetConfig{Piconets: 4})
				spec.Duration = simulated
				spec.BatchTraffic = true
				spec.KernelWorkers = workers
				res, err := scenario.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalKbps(piconet.Guaranteed) < 400 {
					b.Fatal("implausible result")
				}
				events += res.Events
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if perOp > 0 {
				b.ReportMetric(simulated.Seconds()/perOp.Seconds(), "sim_s/wall_s")
			}
			if sec := b.Elapsed().Seconds(); sec > 0 && events > 0 {
				b.ReportMetric(float64(events)/sec, "events/s")
			}
		})
	}
}

// BenchmarkScatternetStudy regenerates the E9 erosion table.
func BenchmarkScatternetStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, tbl, err := experiments.ScatternetStudy(benchCfg, []int{1, 2, 4}, []float64{60})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected row count")
		}
		printTable("scatternet", tbl)
	}
}
