// Command admit is an admission-control what-if tool: it feeds a list of
// Guaranteed Service flow requests through the paper's Fig. 3 routine and
// prints the resulting priority assignment, worst-case poll lags x_i,
// exported error terms and delay bounds — with and without piggybacking,
// so the §3.1.4 "piggybacking accepts more flows" effect is visible.
//
// Flows are given as comma-separated "slave:direction" endpoints, e.g.
//
//	admit -flows 1:up,2:down,2:up,3:up -rate 12800
//	admit -flows 1:up,2:down,2:up,3:up -target 38ms
//
// All flows use the paper's §4.1 traffic specification (64 kbps CBR,
// 144–176 byte packets, DH1+DH3).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/stats"
	"bluegs/internal/tspec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "admit:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		flows  = flag.String("flows", "1:up,2:down,2:up,3:up", "comma-separated slave:dir endpoints")
		rate   = flag.Float64("rate", 0, "requested fluid rate in bytes/s (0 = use -target)")
		target = flag.Duration("target", 38*time.Millisecond, "requested delay bound (used when -rate is 0)")
	)
	flag.Parse()

	reqs, err := parseFlows(*flows)
	if err != nil {
		return err
	}
	for _, piggy := range []bool{true, false} {
		label := "with piggybacking"
		var opts []admission.ControllerOption
		if !piggy {
			label = "without piggybacking"
			opts = append(opts, admission.WithoutPiggybacking())
		}
		cfg := admission.Config{MaxExchange: baseband.SlotsToDuration(6)}
		var ctrl *admission.Controller
		var admitErr error
		if *rate > 0 {
			ctrl = admission.NewController(cfg, opts...)
			for _, r := range reqs {
				r.Rate = *rate
				if _, err := ctrl.Admit(r); err != nil {
					admitErr = fmt.Errorf("flow %d: %w", r.ID, err)
					break
				}
			}
		} else {
			var drs []admission.DelayRequest
			for _, r := range reqs {
				drs = append(drs, admission.DelayRequest{Request: r, Target: *target})
			}
			ctrl, admitErr = admission.PlanForDelay(drs, cfg, opts...)
		}
		fmt.Printf("== %s ==\n", label)
		if admitErr != nil {
			fmt.Printf("REJECTED: %v\n\n", admitErr)
			continue
		}
		tbl := stats.NewTable("", "flow", "slave", "dir", "prio", "R (B/s)", "t", "x", "C", "D", "bound", "pair")
		for _, pf := range ctrl.Flows() {
			pair := ""
			if pf.Counterpart != piconet.None {
				pair = fmt.Sprintf("flow %d", pf.Counterpart)
			}
			tbl.AddRow(pf.Request.ID, pf.Request.Slave, pf.Request.Dir, pf.Priority,
				fmt.Sprintf("%.0f", pf.Request.Rate),
				pf.Params.Interval.Round(time.Microsecond),
				pf.X, fmt.Sprintf("%.0fB", pf.Terms.C), pf.Terms.D,
				pf.Bound.Round(time.Microsecond), pair)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// parseFlows parses "1:up,2:down" into paper-spec requests.
func parseFlows(s string) ([]admission.Request, error) {
	var reqs []admission.Request
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad flow %q: want slave:dir", part)
		}
		slave, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad slave in %q: %v", part, err)
		}
		var dir piconet.Direction
		switch strings.ToLower(fields[1]) {
		case "up":
			dir = piconet.Up
		case "down":
			dir = piconet.Down
		default:
			return nil, fmt.Errorf("bad direction in %q: want up or down", part)
		}
		reqs = append(reqs, admission.Request{
			ID:      piconet.FlowID(i + 1),
			Slave:   piconet.SlaveID(slave),
			Dir:     dir,
			Spec:    spec,
			Allowed: baseband.PaperTypes,
		})
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no flows given")
	}
	return reqs, nil
}
