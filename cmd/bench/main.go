// Command bench measures the simulation kernel's performance envelope and
// writes it to a JSON baseline (BENCH_kernel.json at the repo root), so the
// perf trajectory is tracked in-tree from PR to PR. It runs the same
// workloads as the internal/sim BenchmarkKernel* microbenchmarks plus the
// full paper scenario, via testing.Benchmark, and reports ns/op, allocs/op
// and events/s for each.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_kernel.json] [-cache-dir DIR] [-kernel-workers 1,2,4]
//
// Besides the kernel workloads it measures the experiment harness with
// its content-addressed run cache cold and warm (harness_sweep_cold /
// harness_sweep_warm), so the cache-replay speedup is tracked alongside
// the simulator itself. -cache-dir points the measurement at a specific
// directory (default: a temp dir); a fresh salt keeps the cold pass cold
// either way. The same sweep also runs through the distributed fabric
// with one and two in-process workers (fabric_sweep_1w /
// fabric_sweep_2w), so the coordination overhead — JSON leases, HTTP
// round trips, gob-encoded result entries — is tracked against the
// in-process harness_sweep_cold row. The paper scenario is measured
// with per-packet and with
// burst-batched traffic generation (paper_scenario_10s vs
// paper_scenario_10s_batch — the batching before/after), and the
// scatternet_<N>pn rows track how sim_s/wall_s scales with the number
// of interference-coupled piconets, each now its own kernel shard. The
// scatternet_<N>pn_<W>w grid (-kernel-workers) pins Spec.KernelWorkers
// per row: results are byte-identical at every worker count, so the
// grid isolates the execution cost of the worker multiplexing — read it
// against num_cpu, since on a single-core container the spread is pure
// goroutine-switch overhead rather than parallel speedup.
//
// The committed baseline is produced by CI hardware (see the bench job in
// .github/workflows/ci.yml); numbers from other machines are comparable
// only against their own history.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bluegs/internal/fabric"
	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/sim"
	"bluegs/internal/sim/benchwork"
)

// Result is one workload's measurement in the JSON baseline.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SimSecPerWallSec is set for scenario workloads only: simulated
	// seconds per wall-clock second.
	SimSecPerWallSec float64 `json:"sim_s_per_wall_s,omitempty"`
}

// Baseline is the file schema.
type Baseline struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

// measure converts a testing.BenchmarkResult into a Result row, treating
// one op as one fired event.
func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	out := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.T > 0 {
		out.EventsPerSec = float64(r.N) / r.T.Seconds()
	}
	return out
}

// measureSpec runs one scenario spec repeatedly and reports simulation
// throughput per wall second. minGSKbps guards against silently measuring
// a broken simulation.
func measureSpec(name string, build func() scenario.Spec, simulated time.Duration, minGSKbps float64) Result {
	var events uint64
	var ops int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events, ops = 0, b.N
		for i := 0; i < b.N; i++ {
			spec := build()
			spec.Duration = simulated
			res, err := scenario.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.TotalKbps(piconet.Guaranteed) < minGSKbps {
				b.Fatal("implausible result")
			}
			events += res.Events
		}
	})
	out := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.T > 0 && ops > 0 {
		out.EventsPerSec = float64(events) / r.T.Seconds()
		out.SimSecPerWallSec = simulated.Seconds() * float64(ops) / r.T.Seconds()
	}
	return out
}

// measureScenario runs the full Fig. 4 paper piconet; batch toggles the
// burst-batched traffic generation (the before/after pair in the
// baseline).
func measureScenario(simulated time.Duration, batch bool) Result {
	name := fmt.Sprintf("paper_scenario_%ds", int(simulated.Seconds()))
	if batch {
		name += "_batch"
	}
	return measureSpec(name, func() scenario.Spec {
		spec := scenario.Paper(38 * time.Millisecond)
		spec.BatchTraffic = batch
		return spec
	}, simulated, 200)
}

// measureScatternet runs N interference-coupled piconets — one kernel
// shard per piconet — and reports how simulation throughput scales with
// the piconet count. workers sets Spec.KernelWorkers: 0 keeps the spec
// default (shards multiplexed onto GOMAXPROCS workers) and the legacy
// scatternet_<N>pn_<D>s row name; an explicit count emits a
// scatternet_<N>pn_<W>w row instead. Results are byte-identical at any
// worker count (the determinism suite enforces it), so the per-worker
// rows differ only in wall clock: on one core (see num_cpu) the spread
// is the goroutine-multiplex overhead, on multi-core CI it is the
// shard-parallel speedup.
func measureScatternet(piconets int, simulated time.Duration, workers int) Result {
	name := fmt.Sprintf("scatternet_%dpn_%ds", piconets, int(simulated.Seconds()))
	if workers > 0 {
		name = fmt.Sprintf("scatternet_%dpn_%dw", piconets, workers)
	}
	return measureSpec(name, func() scenario.Spec {
		spec := scenario.Scatternet(scenario.ScatternetConfig{Piconets: piconets})
		spec.BatchTraffic = true
		spec.KernelWorkers = workers
		return spec
	}, simulated, 100*float64(piconets))
}

// measureSweep runs a small Fig. 5 sweep through the harness twice
// against one run cache and reports the cold (simulating and storing)
// and warm (pure cache replay) passes. The salt is unique per invocation
// so the first pass is genuinely cold even on a reused directory.
func measureSweep(cacheDir string) (cold, warm Result, err error) {
	dir := cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "bluegs-bench-cache-*")
		if err != nil {
			return cold, warm, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	cache, err := harness.NewRunCache(harness.CacheConfig{
		Dir:  dir,
		Salt: fmt.Sprintf("bench-%d", time.Now().UnixNano()),
	})
	if err != nil {
		return cold, warm, err
	}
	const simulated = 5 * time.Second
	sw := harness.Fig5Sweep(
		harness.SweepConfig{Duration: simulated, Seed: 1, Replications: 2},
		[]time.Duration{30 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond})
	pass := func(name string) (Result, error) {
		start := time.Now()
		results, err := harness.Execute(sw.Runs, harness.Options{Cache: cache})
		if err != nil {
			return Result{}, err
		}
		wall := time.Since(start)
		var events uint64
		for _, r := range results {
			events += r.Result.Events
		}
		out := Result{Name: name, NsPerOp: float64(wall.Nanoseconds())}
		if wall > 0 {
			out.EventsPerSec = float64(events) / wall.Seconds()
			out.SimSecPerWallSec = simulated.Seconds() * float64(len(results)) / wall.Seconds()
		}
		return out, nil
	}
	if cold, err = pass("harness_sweep_cold"); err != nil {
		return cold, warm, err
	}
	warm, err = pass("harness_sweep_warm")
	return cold, warm, err
}

// measureFabric runs the measureSweep grid through an in-process fabric
// coordinator with n worker goroutines attached, cacheless so every run
// simulates. Against harness_sweep_cold this row is the distribution
// tax: JSON leases, HTTP round trips and gob-encoded result entries on
// top of the same simulations.
func measureFabric(n int) (Result, error) {
	const simulated = 5 * time.Second
	sw := harness.Fig5Sweep(
		harness.SweepConfig{Duration: simulated, Seed: 1, Replications: 2},
		[]time.Duration{30 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond})
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{Grid: "bench"})
	if err != nil {
		return Result{}, err
	}
	defer coord.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fabric.RunWorker(ctx, fabric.WorkerConfig{
				Coordinator: coord.Addr(),
				Name:        fmt.Sprintf("bench-w%d", i),
				Poll:        10 * time.Millisecond,
			})
		}(i)
	}
	start := time.Now()
	results, err := coord.Execute(sw.Runs, harness.Options{})
	wall := time.Since(start)
	cancel()
	wg.Wait()
	if err != nil {
		return Result{}, err
	}
	var events uint64
	for _, r := range results {
		events += r.Result.Events
	}
	out := Result{Name: fmt.Sprintf("fabric_sweep_%dw", n), NsPerOp: float64(wall.Nanoseconds())}
	if wall > 0 {
		out.EventsPerSec = float64(events) / wall.Seconds()
		out.SimSecPerWallSec = simulated.Seconds() * float64(len(results)) / wall.Seconds()
	}
	return out, nil
}

// parseWorkers splits a comma-separated -kernel-workers value into
// positive ints.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -kernel-workers value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	out := flag.String("out", "BENCH_kernel.json", "baseline output path (- for stdout)")
	cacheDir := flag.String("cache-dir", "", "run-cache directory for the harness sweep workloads (default: a temp dir)")
	kernelWorkers := flag.String("kernel-workers", "1,2,4", "comma-separated Spec.KernelWorkers counts for the scatternet_<N>pn_<W>w grid (empty: skip the grid)")
	flag.Parse()
	workerCounts, err := parseWorkers(*kernelWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	base := Baseline{
		Schema:    "bluegs/bench-kernel/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	base.Benchmarks = append(base.Benchmarks,
		measure("kernel_slot_churn", benchwork.Churn(sim.SlotGrain)),
		measure("kernel_offgrid_churn", benchwork.Churn(benchwork.OffGridInterval)),
		measure("kernel_schedule_cancel", benchwork.ScheduleCancel),
		measure("kernel_deep_heap", benchwork.DeepHeap),
		measure("kernel_same_slot_batch", benchwork.SameSlotBatch),
		measureScenario(10*time.Second, false),
		measureScenario(10*time.Second, true),
		measureScatternet(2, 10*time.Second, 0),
		measureScatternet(4, 10*time.Second, 0),
		measureScatternet(8, 10*time.Second, 0),
	)
	for _, piconets := range []int{2, 4, 8} {
		for _, w := range workerCounts {
			base.Benchmarks = append(base.Benchmarks, measureScatternet(piconets, 10*time.Second, w))
		}
	}
	cold, warm, err := measureSweep(*cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	base.Benchmarks = append(base.Benchmarks, cold, warm)
	for _, n := range []int{1, 2} {
		row, err := measureFabric(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		base.Benchmarks = append(base.Benchmarks, row)
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	for _, r := range base.Benchmarks {
		fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %14.0f events/s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.EventsPerSec)
	}
	fmt.Println("wrote", *out)
}
