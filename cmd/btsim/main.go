// Command btsim runs a Bluetooth Guaranteed Service piconet scenario and
// prints the per-flow report: throughput, delay statistics and delay-bound
// compliance.
//
// Usage:
//
//	btsim [flags]
//
// Examples:
//
//	btsim -target 40ms -duration 530s            # the paper's Fig. 4 setup
//	btsim -mode fixed -target 36ms               # the §3.1 fixed-interval poller
//	btsim -poller round-robin -target 46ms -csv  # RR for best effort, CSV output
//	btsim -list                                  # registered scenario names
//	btsim -scenario churn                        # a registered scenario by name
//	btsim -scenario scatternet                   # 4 FH-coupled piconets, per-piconet report
//	btsim -scenario file.json                    # a scenario file (v2 or legacy)
//	btsim -scenario churn -export churn.json     # write the resolved spec as v2 JSON
//	btsim -target 40ms -reps 8                   # 8 seeds in parallel, mean±95% CI
//	btsim -target 40ms -ci-target 0.05           # replicate until the CI is tight
//	btsim -target 40ms -cache-dir .runcache      # replay unchanged runs instantly
//
// -scenario accepts either a name from the registry (see -list) or a path
// to a JSON scenario file; timeline scenarios additionally print the
// online admission log with per-request admit/reject outcomes. With
// -reps > 1 the scenario replicates under independently derived seeds
// across a parallel worker pool (the detailed report shows replication 0;
// a summary table aggregates all of them). With -ci-target the
// replication count is chosen adaptively: replications keep running until
// the 95% CI half-width of -ci-metric meets the target or -max-reps is
// hit. An exchange trace, when requested, records replication 0 only and
// is incompatible with both -ci-target and -cache-dir (traced runs cannot
// be replayed).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bluegs/internal/core"
	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
}

// resolveScenario loads the -scenario argument: a registered name first,
// then a file path.
func resolveScenario(arg string) (scenario.Spec, error) {
	if spec, ok := scenario.Lookup(arg); ok {
		return spec, nil
	}
	if _, err := os.Stat(arg); err == nil {
		return scenario.LoadFile(arg)
	}
	return scenario.Spec{}, fmt.Errorf("unknown scenario %q (not registered — see -list — and not a file)", arg)
}

func run() error {
	var (
		target    = flag.Duration("target", 40*time.Millisecond, "GS delay requirement")
		duration  = flag.Duration("duration", 60*time.Second, "simulated time")
		seed      = flag.Int64("seed", 1, "random seed")
		reps      = flag.Int("reps", 1, "independently seeded replications (adds a summary with 95% CIs)")
		workers   = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		mode      = flag.String("mode", "variable", "planner mode: fixed or variable")
		pollerK   = flag.String("poller", "pfp", "best-effort poller: pfp, round-robin, exhaustive-rr, fep, edc, demand, hol-priority")
		noPiggy   = flag.Bool("no-piggyback", false, "disable piggybacking in admission")
		iaa       = flag.Bool("interference-aware", false, "derate admission by the expected FH co-channel collision probability (needs a scatternet scenario with interference enabled)")
		derate    = flag.Float64("derate", 0, "static admission success probability in (0,1), overriding the medium estimate (implies -interference-aware)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a text table")
		scenarioF = flag.String("scenario", "", "scenario to run: a registered name (see -list) or a JSON file path")
		list      = flag.Bool("list", false, "list registered scenario names and exit")
		export    = flag.String("export", "", "write the resolved scenario as v2 JSON to this file before running")
		config    = flag.String("config", "", "legacy alias for -scenario with a JSON file path")
		hist      = flag.Bool("hist", false, "print per-GS-flow delay histograms")
		traceOut  = flag.String("trace", "", "write an exchange trace CSV to this file (replication 0)")
		ciTarget  = flag.Float64("ci-target", 0, "adaptive replication: replicate until the 95% CI half-width of -ci-metric is below this fraction of its mean (0 = fixed -reps)")
		ciMetric  = flag.String("ci-metric", "gs-delay", "adaptive stopping metric: gs-delay, violations, gs-kbps or be-kbps")
		maxReps   = flag.Int("max-reps", 0, "adaptive replication cap (default 32)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed run cache directory: unchanged runs replay instantly across invocations")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(scenario.Names(), "\n"))
		return nil
	}
	if *traceOut != "" && (*ciTarget > 0 || *cacheDir != "") {
		return fmt.Errorf("-trace records live exchanges and cannot be combined with -ci-target or -cache-dir")
	}
	durationSet, seedSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "duration":
			durationSet = true
		case "seed":
			seedSet = true
		}
	})

	var spec scenario.Spec
	switch {
	case *scenarioF != "" || *config != "":
		arg := *scenarioF
		if arg == "" {
			arg = *config
		}
		loaded, err := resolveScenario(arg)
		if err != nil {
			return err
		}
		spec = loaded
		if spec.Duration <= 0 || durationSet {
			spec.Duration = *duration
		}
		// A scenario's pinned seed is the default, but an explicit
		// -seed always wins.
		if spec.Seed != 0 && !seedSet {
			*seed = spec.Seed
		}
	default:
		spec = scenario.Paper(*target)
		spec.Duration = *duration
		spec.BEPoller = scenario.BEPollerKind(*pollerK)
		spec.WithoutPiggybacking = *noPiggy
		switch *mode {
		case "fixed":
			spec.Mode = core.FixedInterval
		case "variable":
			spec.Mode = core.VariableInterval
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
	}
	if *derate != 0 && (*derate <= 0 || *derate >= 1) {
		return fmt.Errorf("-derate %g outside (0,1)", *derate)
	}
	if *iaa || *derate != 0 {
		spec.InterferenceAwareAdmission = true
		spec.AdmissionDerate = *derate
		if !spec.Interference.Enabled {
			fmt.Fprintln(os.Stderr, "btsim: -interference-aware is inert: the scenario has no interference coupling")
		}
	}
	if *export != "" {
		data, err := scenario.Marshal(spec)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "btsim: wrote %s\n", *export)
	}

	var hooks scenario.Hooks
	var csvTracer *piconet.CSVTracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		csvTracer = piconet.NewCSVTracer(f)
		hooks.Tracer = csvTracer
	}

	var cache *harness.RunCache
	if *cacheDir != "" {
		c, err := harness.NewRunCache(harness.CacheConfig{Dir: *cacheDir})
		if err != nil {
			return err
		}
		cache = c
		defer func() {
			fmt.Fprintf(os.Stderr, "btsim: cache: %s\n", cache.Stats())
		}()
	}
	sweepCfg := harness.SweepConfig{
		Duration:     spec.Duration,
		Seed:         *seed,
		Replications: *reps,
	}
	grid := harness.Grid{Name: spec.Name, Cells: []string{spec.Name},
		Build: func(string) scenario.Spec { return spec }}
	var results []harness.RunResult
	adaptive := *ciTarget > 0
	if adaptive {
		metric, err := harness.MetricByName(*ciMetric)
		if err != nil {
			return err
		}
		outcomes, err := harness.ExecuteAdaptive(grid, sweepCfg, harness.AdaptiveOptions{
			Options: harness.Options{Workers: *workers, Cache: cache},
			Metric:  metric,
			RelTol:  *ciTarget,
			MaxReps: *maxReps,
		})
		if err != nil {
			return err
		}
		o := outcomes[0]
		results = o.Runs
		note := "converged"
		if !o.Converged {
			note = "stopped at the rep cap"
		}
		fmt.Fprintf(os.Stderr, "btsim: %s after %d reps (%s CI half-width %.3g, mean %.3g)\n",
			note, o.Reps(), metric.Name, o.Metric.CI95, o.Metric.Mean)
	} else {
		sw := grid.Sweep(sweepCfg)
		// The tracer is a single shared sink; only replication 0 records.
		if hooks.Tracer != nil {
			for i := range sw.Runs {
				if sw.Runs[i].Rep == 0 {
					sw.Runs[i].Hooks = hooks
				}
			}
		}
		rs, err := harness.Execute(sw.Runs, harness.Options{Workers: *workers, Cache: cache})
		if err != nil {
			return err
		}
		results = rs
	}
	res := results[0].Result
	if csvTracer != nil {
		if err := csvTracer.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	tbl := res.Report()
	if *csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			return err
		}
		if rt := res.RouteReport(); rt != nil {
			if err := rt.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
		if adm := res.AdmissionReport(); adm != nil {
			if err := adm.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	} else {
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		if rt := res.RouteReport(); rt != nil {
			fmt.Println()
			if err := rt.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if adm := res.AdmissionReport(); adm != nil {
			fmt.Println()
			if err := adm.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Printf("\nslot budget: %v\n", res.Slots)
		fmt.Printf("admitted GS flows:\n")
		for _, pf := range res.Admitted {
			fmt.Printf("  flow %d: priority %d, R=%.0f B/s, t=%v, x=%v, bound=%v\n",
				pf.Request.ID, pf.Priority, pf.Request.Rate,
				pf.Params.Interval.Round(time.Microsecond), pf.X, pf.Bound.Round(time.Microsecond))
		}
	}
	if *hist {
		for _, f := range res.Flows {
			if f.Class != piconet.Guaranteed || f.Delay == nil || f.Delay.Count() == 0 {
				continue
			}
			upper := f.Bound + f.Bound/4
			h := stats.NewDurationHistogram(upper, 20)
			f.Delay.FillHistogram(h)
			fmt.Printf("\nflow %d delay distribution (bound %v):\n", f.ID, f.Bound.Round(time.Microsecond))
			if err := h.WriteASCII(os.Stdout, 48); err != nil {
				return err
			}
		}
	}
	if len(results) > 1 {
		// In CSV mode stdout must stay machine-readable; the summary
		// goes to stderr instead.
		dst := os.Stdout
		if *csv {
			dst = os.Stderr
		}
		if err := writeReplicationSummary(dst, results); err != nil {
			return err
		}
	}
	var violations, gsFlowRuns int
	for _, r := range results {
		violations += len(r.Result.BoundViolations())
		for _, f := range r.Result.Flows {
			if f.Class == piconet.Guaranteed {
				gsFlowRuns++
			}
		}
	}
	if violations > 0 {
		if spec.Interference.Enabled {
			// Bound erosion under co-channel interference is the measured
			// effect, not a scheduler failure: report it without failing.
			fmt.Fprintf(os.Stderr,
				"btsim: %d of %d GS flow runs exceeded their bound under FH interference (violation fraction %.3f)\n",
				violations, gsFlowRuns, float64(violations)/float64(gsFlowRuns))
			return nil
		}
		return fmt.Errorf("%d GS flow runs violated their delay bound", violations)
	}
	return nil
}

// writeReplicationSummary aggregates all replications into mean±95% CI
// rows plus the worst GS delay seen across any seed.
func writeReplicationSummary(w *os.File, results []harness.RunResult) error {
	tbl := stats.NewTable(
		fmt.Sprintf("\nreplication summary (%d independently seeded runs, mean±95%% CI)", len(results)),
		"quantity", "value")
	gs := harness.Aggregate(results, func(r *scenario.Result) float64 {
		return r.TotalKbps(piconet.Guaranteed)
	})
	be := harness.Aggregate(results, func(r *scenario.Result) float64 {
		return r.TotalKbps(piconet.BestEffort)
	})
	tbl.AddRow("GS kbps", gs.FormatMeanCI())
	tbl.AddRow("BE kbps", be.FormatMeanCI())
	var worst time.Duration
	for _, r := range results {
		for _, f := range r.Result.Flows {
			if f.Class == piconet.Guaranteed && f.DelayMax > worst {
				worst = f.DelayMax
			}
		}
	}
	tbl.AddRow("worst GS delay (all seeds)", worst.Round(time.Microsecond))
	return tbl.WriteText(w)
}
