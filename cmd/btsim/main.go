// Command btsim runs a Bluetooth Guaranteed Service piconet scenario and
// prints the per-flow report: throughput, delay statistics and delay-bound
// compliance.
//
// Usage:
//
//	btsim [flags]
//
// Examples:
//
//	btsim -target 40ms -duration 530s            # the paper's Fig. 4 setup
//	btsim -mode fixed -target 36ms               # the §3.1 fixed-interval poller
//	btsim -poller round-robin -target 46ms -csv  # RR for best effort, CSV output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target   = flag.Duration("target", 40*time.Millisecond, "GS delay requirement")
		duration = flag.Duration("duration", 60*time.Second, "simulated time")
		seed     = flag.Int64("seed", 1, "random seed")
		mode     = flag.String("mode", "variable", "planner mode: fixed or variable")
		pollerK  = flag.String("poller", "pfp", "best-effort poller: pfp, round-robin, exhaustive-rr, fep, edc, demand, hol-priority")
		noPiggy  = flag.Bool("no-piggyback", false, "disable piggybacking in admission")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
		config   = flag.String("config", "", "JSON scenario file (overrides the Fig. 4 preset; see internal/scenario.FileSpec)")
		hist     = flag.Bool("hist", false, "print per-GS-flow delay histograms")
		traceOut = flag.String("trace", "", "write an exchange trace CSV to this file")
	)
	flag.Parse()

	var spec scenario.Spec
	if *config != "" {
		loaded, err := scenario.LoadSpec(*config)
		if err != nil {
			return err
		}
		spec = loaded
		if spec.Duration <= 0 {
			spec.Duration = *duration
		}
	} else {
		spec = scenario.Paper(*target)
		spec.Duration = *duration
		spec.Seed = *seed
		spec.BEPoller = scenario.BEPollerKind(*pollerK)
		spec.WithoutPiggybacking = *noPiggy
		switch *mode {
		case "fixed":
			spec.Mode = core.FixedInterval
		case "variable":
			spec.Mode = core.VariableInterval
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
	}

	var csvTracer *piconet.CSVTracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		csvTracer = piconet.NewCSVTracer(f)
		spec.Tracer = csvTracer
	}

	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	if csvTracer != nil {
		if err := csvTracer.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	tbl := res.Report()
	if *csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("\nslot budget: %v\n", res.Slots)
		fmt.Printf("admitted GS flows:\n")
		for _, pf := range res.Admitted {
			fmt.Printf("  flow %d: priority %d, R=%.0f B/s, t=%v, x=%v, bound=%v\n",
				pf.Request.ID, pf.Priority, pf.Request.Rate,
				pf.Params.Interval.Round(time.Microsecond), pf.X, pf.Bound.Round(time.Microsecond))
		}
	}
	if *hist {
		for _, f := range res.Flows {
			if f.Class != piconet.Guaranteed || f.Delay == nil || f.Delay.Count() == 0 {
				continue
			}
			upper := f.Bound + f.Bound/4
			h := stats.NewDurationHistogram(upper, 20)
			f.Delay.FillHistogram(h)
			fmt.Printf("\nflow %d delay distribution (bound %v):\n", f.ID, f.Bound.Round(time.Microsecond))
			if err := h.WriteASCII(os.Stdout, 48); err != nil {
				return err
			}
		}
	}
	if v := res.BoundViolations(); len(v) > 0 {
		return fmt.Errorf("%d GS flows violated their delay bound", len(v))
	}
	return nil
}
