// Command fig5 regenerates Figure 5 of the paper: the throughput of every
// slave of the Fig. 4 piconet as a function of the Guaranteed Service delay
// requirement, under the PFP implementation of the variable-interval
// poller.
//
// Usage:
//
//	fig5 [flags]
//
// Example (the paper's full 530 s runs):
//
//	fig5 -duration 530s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bluegs/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fig5:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 60*time.Second, "simulated time per point")
		seed     = flag.Int64("seed", 1, "random seed")
		from     = flag.Duration("from", 28*time.Millisecond, "first delay requirement")
		to       = flag.Duration("to", 46*time.Millisecond, "last delay requirement")
		step     = flag.Duration("step", 2*time.Millisecond, "sweep step")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
	)
	flag.Parse()
	if *step <= 0 || *to < *from {
		return fmt.Errorf("bad sweep: from %v to %v step %v", *from, *to, *step)
	}
	var targets []time.Duration
	for t := *from; t <= *to; t += *step {
		targets = append(targets, t)
	}
	cfg := experiments.Config{Duration: *duration, Seed: *seed}
	rows, tbl, err := experiments.Figure5(cfg, targets)
	if err != nil {
		return err
	}
	if *csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	for _, r := range rows {
		if r.Violations > 0 {
			return fmt.Errorf("delay bound violated at requirement %v", r.Target)
		}
	}
	return nil
}
