// Command fig5 regenerates Figure 5 of the paper: the throughput of every
// slave of the Fig. 4 piconet as a function of the Guaranteed Service delay
// requirement, under the PFP implementation of the variable-interval
// poller.
//
// Usage:
//
//	fig5 [flags]
//
// Example (the paper's full 530 s runs, five seeds per point, all cores):
//
//	fig5 -duration 530s -reps 5
//
// Adaptive replication runs each point until its 95% confidence interval
// is tight instead of a fixed -reps, and a run cache replays unchanged
// points instantly on the next sweep:
//
//	fig5 -duration 530s -ci-target 0.05 -max-reps 64 -cache-dir .runcache
//
// Runs fan out across a worker pool (one isolated simulator per run);
// results are bit-identical at any -workers value, with or without a
// warm cache.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bluegs/internal/experiments"
	"bluegs/internal/harness"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, harness.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "fig5: interrupted — completed points printed; cached runs replay on the next invocation")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "fig5:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 60*time.Second, "simulated time per point")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "independently seeded replications per point (adds 95% CIs)")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report sweep progress on stderr")
		from     = flag.Duration("from", 28*time.Millisecond, "first delay requirement")
		to       = flag.Duration("to", 46*time.Millisecond, "last delay requirement")
		step     = flag.Duration("step", 2*time.Millisecond, "sweep step")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
		ciTarget = flag.Float64("ci-target", 0, "adaptive replication: replicate each point until the 95% CI half-width of -ci-metric is below this fraction of its mean (0 = fixed -reps)")
		ciMetric = flag.String("ci-metric", "", "adaptive stopping metric: gs-delay, violations, gs-kbps or be-kbps (default gs-delay)")
		maxReps  = flag.Int("max-reps", 0, "adaptive replication cap per point (default 32)")
		cacheDir = flag.String("cache-dir", "", "content-addressed run cache directory: unchanged points replay instantly across invocations")
	)
	flag.Parse()
	if *step <= 0 || *to < *from {
		return fmt.Errorf("bad sweep: from %v to %v step %v", *from, *to, *step)
	}
	var targets []time.Duration
	for t := *from; t <= *to; t += *step {
		targets = append(targets, t)
	}
	cfg := experiments.Config{
		Duration:     *duration,
		Seed:         *seed,
		Replications: *reps,
		Workers:      *workers,
		CITarget:     *ciTarget,
		CIMetric:     *ciMetric,
		MaxReps:      *maxReps,
	}
	if *progress {
		cfg.Progress = harness.StderrProgress("fig5")
	}
	if *cacheDir != "" {
		cache, err := harness.NewRunCache(harness.CacheConfig{Dir: *cacheDir})
		if err != nil {
			return err
		}
		cfg.Cache = cache
		defer func() { reportCache("fig5", cache) }()
	}

	// First SIGINT checkpoints: in-flight runs finish (and land in the
	// cache), the completed points print below. A second exits immediately.
	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "fig5: interrupt — checkpointing (again to exit immediately)")
		close(interrupt)
		<-sig
		os.Exit(1)
	}()
	cfg.Interrupt = interrupt

	rows, tbl, err := experiments.Figure5(cfg, targets)
	if err != nil && (tbl == nil || !errors.Is(err, harness.ErrInterrupted)) {
		return err
	}
	if *csv {
		if werr := tbl.WriteCSV(os.Stdout); werr != nil {
			return werr
		}
	} else if werr := tbl.WriteText(os.Stdout); werr != nil {
		return werr
	}
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.Violations > 0 {
			return fmt.Errorf("delay bound violated at requirement %v", r.Target)
		}
	}
	return nil
}

// reportCache prints the cache effectiveness line the CI smoke step (and
// anyone iterating on a sweep) checks: hits out of total lookups.
func reportCache(label string, cache *harness.RunCache) {
	fmt.Fprintf(os.Stderr, "%s: cache: %s\n", label, cache.Stats())
}
