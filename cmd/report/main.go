// Command report regenerates every table and figure of the paper's
// evaluation in one run (the source of the numbers recorded in
// EXPERIMENTS.md).
//
// Usage:
//
//	report [-duration 530s] [-seed 1] [-reps 1] [-workers 0]
//	       [-ci-target 0.05] [-max-reps 32] [-cache-dir DIR]
//
// The default duration matches the paper's 530 s simulation runs. With
// -reps > 1 every experiment replicates each sweep cell under
// independently derived seeds and reports mean±95% CI throughput; the
// runs of each experiment fan out across -workers simulators with
// bit-identical results at any worker count.
//
// -ci-target switches the Monte-Carlo experiments (Fig. 5 and the A2
// poller comparison) to adaptive replication: each cell replicates until
// the 95% CI half-width of -ci-metric meets the target, up to -max-reps.
// -cache-dir backs every experiment with a content-addressed run cache,
// so re-rendering the report — or iterating on a single experiment —
// replays unchanged cells instantly; Fig. 5, T2 and T3 share grid cells
// and hit each other's entries even within one invocation.
//
// -journal FILE renders a table from a sweepd run journal instead of
// simulating: every CRC-intact record is decoded and aggregated, so a
// partial journal (interrupted or still-running sweep) renders the
// completed cells. No other flag applies; the sweep configuration comes
// from the journal's own meta block.
//
// SIGINT checkpoints instead of killing: in-flight runs finish (and land
// in the cache), the interrupted experiment's completed cells print, and
// the process exits 130.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bluegs/internal/experiments"
	"bluegs/internal/fabric"
	"bluegs/internal/harness"
	"bluegs/internal/stats"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, harness.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "report: interrupted — completed tables printed; cached runs replay on the next invocation")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration = flag.Duration("duration", 530*time.Second, "simulated time per run")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "independently seeded replications per sweep cell")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report per-experiment progress on stderr")
		ciTarget = flag.Float64("ci-target", 0, "adaptive replication for Fig. 5 and A2: replicate each cell until the 95% CI half-width of -ci-metric is below this fraction of its mean (0 = fixed -reps)")
		ciMetric = flag.String("ci-metric", "", "adaptive stopping metric: gs-delay, violations, gs-kbps or be-kbps (default: per experiment)")
		maxReps  = flag.Int("max-reps", 0, "adaptive replication cap per cell (default 32)")
		cacheDir = flag.String("cache-dir", "", "content-addressed run cache directory shared by all experiments")
		journal  = flag.String("journal", "", "render a table from this sweepd run journal instead of simulating")
	)
	flag.Parse()
	if *journal != "" {
		return renderJournal(*journal)
	}
	cfg := experiments.Config{
		Duration:     *duration,
		Seed:         *seed,
		Replications: *reps,
		Workers:      *workers,
		CITarget:     *ciTarget,
		CIMetric:     *ciMetric,
		MaxReps:      *maxReps,
	}
	if *progress {
		cfg.Progress = harness.StderrProgress("report")
	}
	if *cacheDir != "" {
		cache, err := harness.NewRunCache(harness.CacheConfig{Dir: *cacheDir})
		if err != nil {
			return err
		}
		cfg.Cache = cache
		defer func() {
			fmt.Fprintf(os.Stderr, "report: cache: %s\n", cache.Stats())
		}()
	}

	// First SIGINT checkpoints: the running experiment finishes its
	// in-flight runs, prints its completed cells, and run returns
	// ErrInterrupted. A second SIGINT exits immediately.
	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "report: interrupt — checkpointing (again to exit immediately)")
		close(interrupt)
		<-sig
		os.Exit(1)
	}()
	cfg.Interrupt = interrupt

	// print renders the table (an interrupted experiment still prints the
	// cells it completed) and passes the error through.
	print := func(tbl *stats.Table, err error) error {
		if tbl != nil && (err == nil || errors.Is(err, harness.ErrInterrupted)) {
			if werr := tbl.WriteText(os.Stdout); werr != nil {
				return werr
			}
			fmt.Println()
		}
		return err
	}

	_, t1, err := experiments.TableT1()
	if err := print(t1, err); err != nil {
		return fmt.Errorf("T1: %w", err)
	}
	_, fig5, err := experiments.Figure5(cfg, nil)
	if err := print(fig5, err); err != nil {
		return fmt.Errorf("figure 5: %w", err)
	}
	_, t2, err := experiments.TableT2(cfg, nil)
	if err := print(t2, err); err != nil {
		return fmt.Errorf("T2: %w", err)
	}
	_, t3, err := experiments.TableT3(cfg)
	if err := print(t3, err); err != nil {
		return fmt.Errorf("T3: %w", err)
	}
	_, t4, err := experiments.TableT4(cfg)
	if err := print(t4, err); err != nil {
		return fmt.Errorf("T4: %w", err)
	}
	_, a1, err := experiments.AblationImprovements(cfg)
	if err := print(a1, err); err != nil {
		return fmt.Errorf("A1: %w", err)
	}
	_, a2, err := experiments.BaselinePollers(cfg)
	if err := print(a2, err); err != nil {
		return fmt.Errorf("A2: %w", err)
	}
	_, e5, err := experiments.RetransmissionStudy(cfg, nil)
	if err := print(e5, err); err != nil {
		return fmt.Errorf("E5: %w", err)
	}
	_, e6, err := experiments.SCOCoexistence(cfg)
	if err := print(e6, err); err != nil {
		return fmt.Errorf("E6: %w", err)
	}
	_, e7, _, err := experiments.DelayDistribution(cfg, 38*time.Millisecond)
	if err := print(e7, err); err != nil {
		return fmt.Errorf("E7: %w", err)
	}
	_, e8, err := experiments.ChurnStudy(cfg, nil)
	if err := print(e8, err); err != nil {
		return fmt.Errorf("E8: %w", err)
	}
	_, e8b, err := experiments.ChurnPollers(cfg, nil)
	if err := print(e8b, err); err != nil {
		return fmt.Errorf("E8b: %w", err)
	}
	_, e9, err := experiments.ScatternetStudy(cfg, nil, nil)
	if err := print(e9, err); err != nil {
		return fmt.Errorf("E9: %w", err)
	}
	_, e10, err := experiments.ScatternetAdmissionStudy(cfg, nil, nil)
	if err := print(e10, err); err != nil {
		return fmt.Errorf("E10: %w", err)
	}
	_, e11, err := experiments.FaultStudy(cfg, nil, nil, nil)
	if err := print(e11, err); err != nil {
		return fmt.Errorf("E11: %w", err)
	}
	_, e12, err := experiments.BridgeStudy(cfg, nil, nil, nil)
	if err := print(e12, err); err != nil {
		return fmt.Errorf("E12: %w", err)
	}
	return nil
}

// renderJournal rebuilds a table from a sweepd run journal: the meta
// block names the grid and sweep knobs, every CRC-intact record is
// key-verified and decoded, and the completed cells render exactly as
// the live sweep would have rendered them.
func renderJournal(path string) error {
	meta, recs, err := fabric.ReadJournal(path)
	if err != nil {
		return err
	}
	if meta.Grid != "fig5" {
		return fmt.Errorf("journal %s: grid %q not renderable (supported: fig5)", path, meta.Grid)
	}
	targets := make([]time.Duration, 0, len(meta.Cells))
	for _, cell := range meta.Cells {
		t, err := time.ParseDuration(cell)
		if err != nil {
			return fmt.Errorf("journal %s: cell %q is not a delay target: %w", path, cell, err)
		}
		targets = append(targets, t)
	}
	cfg := harness.SweepConfig{
		Duration:     meta.Duration,
		Seed:         meta.Seed,
		Replications: meta.Replications,
	}
	results, skipped, err := fabric.JournalResults(meta, recs, harness.Fig5Grid(targets), cfg)
	if err != nil {
		return err
	}
	_, tbl := experiments.Figure5FromResults(experiments.Config{
		Duration:     meta.Duration,
		Seed:         meta.Seed,
		Replications: meta.Replications,
	}, targets, results)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "report: journal %s: %d records rendered, %d skipped\n",
		path, len(results), skipped)
	return nil
}
