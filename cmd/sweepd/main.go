// Command sweepd runs a sweep across worker processes (and machines):
// one coordinator process shards the grid into leases over a small HTTP
// protocol, any number of workers execute leases through the ordinary
// harness, and the rendered table is byte-identical to the
// single-process run at any worker count.
//
// Coordinator (serves the sweep, renders the table):
//
//	sweepd -mode fig5 -addr 127.0.0.1:9740 -duration 530s -reps 5 \
//	       -cache-dir .runcache -serve-cache -journal fig5.journal
//
// Workers (any number, started before or after the coordinator):
//
//	sweepd -join 127.0.0.1:9740            # cache served by coordinator
//	sweepd -join 127.0.0.1:9740 -cache-dir .runcache   # shared filesystem
//
// Every completed run streams into -journal (append-only, CRC-framed,
// synced per record). A killed coordinator restarts with -resume: the
// journal replays every completed run and only the remainder is leased
// out again. SIGINT checkpoints instead of killing: the journal and
// cache keep everything already computed, the partial table prints, and
// the process exits 130 (a second SIGINT exits immediately).
//
// On exit the coordinator prints one accounting line on stderr —
// "sweepd: fabric: N runs: J from journal, C from cache, W from workers
// (…)" — which is what the CI fabric smoke job greps to assert a resumed
// sweep re-executed nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bluegs/internal/experiments"
	"bluegs/internal/fabric"
	"bluegs/internal/harness"
)

func main() {
	if err := run(); err != nil {
		if errors.Is(err, harness.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "sweepd: interrupted — progress checkpointed; restart with -resume")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		join = flag.String("join", "", "worker mode: join the coordinator at this host:port")
		name = flag.String("name", "", "worker name in leases and logs (default hostname-pid)")
		poll = flag.Duration("poll", 0, "worker idle re-poll interval (default 300ms)")

		mode       = flag.String("mode", "fig5", "sweep to serve (fig5)")
		addr       = flag.String("addr", "127.0.0.1:0", "coordinator listen address (use :port to accept remote workers)")
		journal    = flag.String("journal", "", "append-only run journal: every completed run is streamed here, CRC-framed and synced")
		resume     = flag.Bool("resume", false, "re-open an existing -journal and replay its runs instead of starting fresh")
		serveCache = flag.Bool("serve-cache", false, "serve the run cache on /cache/entry so workers need no shared -cache-dir")
		leaseTTL   = flag.Duration("lease-ttl", 0, "heartbeat deadline before a lease's runs are re-issued (default 10s)")
		leaseRuns  = flag.Int("lease-runs", 0, "runs handed out per lease (default 4)")

		duration = flag.Duration("duration", 60*time.Second, "simulated time per point")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "independently seeded replications per point")
		workers  = flag.Int("workers", 0, "local simulation workers (worker mode; 0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report sweep progress on stderr")
		verbose  = flag.Bool("v", false, "log fabric events (worker joins, lease expiries, resume counts) on stderr")
		from     = flag.Duration("from", 28*time.Millisecond, "first delay requirement")
		to       = flag.Duration("to", 46*time.Millisecond, "last delay requirement")
		step     = flag.Duration("step", 2*time.Millisecond, "sweep step")
		csv      = flag.Bool("csv", false, "emit CSV instead of a text table")
		ciTarget = flag.Float64("ci-target", 0, "adaptive replication: replicate each point until the 95% CI half-width of -ci-metric is below this fraction of its mean (0 = fixed -reps)")
		ciMetric = flag.String("ci-metric", "", "adaptive stopping metric: gs-delay, violations, gs-kbps or be-kbps (default gs-delay)")
		maxReps  = flag.Int("max-reps", 0, "adaptive replication cap per point (default 32)")
		cacheDir = flag.String("cache-dir", "", "content-addressed run cache directory")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *join != "" {
		return runWorker(workerFlags{
			coordinator: *join, name: *name, workers: *workers,
			cacheDir: *cacheDir, poll: *poll, logf: logf,
		})
	}
	return runCoordinator(coordinatorFlags{
		mode: *mode, addr: *addr, journal: *journal, resume: *resume,
		serveCache: *serveCache, leaseTTL: *leaseTTL, leaseRuns: *leaseRuns,
		duration: *duration, seed: *seed, reps: *reps, progress: *progress,
		from: *from, to: *to, step: *step, csv: *csv,
		ciTarget: *ciTarget, ciMetric: *ciMetric, maxReps: *maxReps,
		cacheDir: *cacheDir, logf: logf,
	})
}

// interruptChannel turns the first SIGINT/SIGTERM into a closed channel
// (the harness checkpoints and returns partial results); a second signal
// exits immediately.
func interruptChannel() <-chan struct{} {
	interrupt := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sweepd: interrupt — checkpointing (again to exit immediately)")
		close(interrupt)
		<-sig
		os.Exit(1)
	}()
	return interrupt
}

type workerFlags struct {
	coordinator, name string
	workers           int
	cacheDir          string
	poll              time.Duration
	logf              func(string, ...any)
}

func runWorker(f workerFlags) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-interruptChannel()
		cancel()
	}()

	var cache *harness.RunCache
	if f.cacheDir != "" {
		var err error
		cache, err = harness.NewRunCache(harness.CacheConfig{Dir: f.cacheDir})
		if err != nil {
			return err
		}
		defer func() { fmt.Fprintf(os.Stderr, "sweepd: cache: %s\n", cache.Stats()) }()
	}
	stats, err := fabric.RunWorker(ctx, fabric.WorkerConfig{
		Coordinator: f.coordinator,
		Name:        f.name,
		Workers:     f.workers,
		Cache:       cache,
		// Without a local cache dir, use the coordinator's cache when it
		// serves one — the worker still reports hits for re-leased runs.
		UseCoordinatorCache: f.cacheDir == "",
		Poll:                f.poll,
		Logf:                f.logf,
	})
	fmt.Fprintf(os.Stderr, "sweepd: worker: %s\n", stats)
	return err
}

type coordinatorFlags struct {
	mode, addr, journal string
	resume, serveCache  bool
	leaseTTL            time.Duration
	leaseRuns           int
	duration            time.Duration
	seed                int64
	reps                int
	progress, csv       bool
	from, to, step      time.Duration
	ciTarget            float64
	ciMetric            string
	maxReps             int
	cacheDir            string
	logf                func(string, ...any)
}

func runCoordinator(f coordinatorFlags) error {
	if f.mode != "fig5" {
		return fmt.Errorf("unknown -mode %q (supported: fig5)", f.mode)
	}
	if f.step <= 0 || f.to < f.from {
		return fmt.Errorf("bad sweep: from %v to %v step %v", f.from, f.to, f.step)
	}
	var targets []time.Duration
	cells := []string{}
	for t := f.from; t <= f.to; t += f.step {
		targets = append(targets, t)
		cells = append(cells, t.String())
	}

	var cache *harness.RunCache
	if f.cacheDir != "" {
		var err error
		cache, err = harness.NewRunCache(harness.CacheConfig{Dir: f.cacheDir})
		if err != nil {
			return err
		}
		defer func() { fmt.Fprintf(os.Stderr, "sweepd: cache: %s\n", cache.Stats()) }()
	}

	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Addr:        f.addr,
		Grid:        f.mode,
		Cache:       cache,
		ServeCache:  f.serveCache,
		JournalPath: f.journal,
		Meta: fabric.JournalMeta{
			Grid:         f.mode,
			Cells:        cells,
			Duration:     f.duration,
			Seed:         f.seed,
			Replications: f.reps,
			CITarget:     f.ciTarget,
			CIMetric:     f.ciMetric,
			MaxReps:      f.maxReps,
		},
		Resume:    f.resume,
		LeaseTTL:  f.leaseTTL,
		LeaseRuns: f.leaseRuns,
		Logf:      f.logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	defer func() { fmt.Fprintf(os.Stderr, "sweepd: fabric: %s\n", coord.Stats()) }()
	fmt.Fprintf(os.Stderr, "sweepd: serving %s on %s (join with: sweepd -join %s)\n",
		f.mode, coord.Addr(), coord.Addr())

	cfg := experiments.Config{
		Duration:     f.duration,
		Seed:         f.seed,
		Replications: f.reps,
		CITarget:     f.ciTarget,
		CIMetric:     f.ciMetric,
		MaxReps:      f.maxReps,
		Cache:        cache,
		Executor:     coord,
		Interrupt:    interruptChannel(),
	}
	if f.progress {
		cfg.Progress = harness.StderrProgress("sweepd")
	}

	rows, tbl, err := experiments.Figure5(cfg, targets)
	if tbl != nil && (err == nil || errors.Is(err, harness.ErrInterrupted)) {
		if f.csv {
			if werr := tbl.WriteCSV(os.Stdout); werr != nil {
				return werr
			}
		} else if werr := tbl.WriteText(os.Stdout); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.Violations > 0 {
			return fmt.Errorf("delay bound violated at requirement %v", r.Target)
		}
	}
	return nil
}
