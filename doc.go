// Package bluegs is a Go reproduction of "Providing Delay Guarantees in
// Bluetooth" (Rachid Ait Yaiz and Geert Heijenk, ICDCSW'03): a Bluetooth
// intra-piconet polling mechanism that provides IETF Guaranteed Service
// (RFC 2212) delay bounds while leaving unused capacity to best-effort
// traffic.
//
// The implementation lives under internal/:
//
//   - internal/core — the paper's contribution: the Guaranteed Service
//     scheduler with fixed-interval (§3.1) and variable-interval (§3.2)
//     poll planners;
//   - internal/admission — the x_i fixed point (Fig. 2), feasibility
//     condition (eq. 8/9) and priority-reassigning, piggyback-aware
//     admission routine (Fig. 3), with optional interference derating:
//     an FH co-channel success probability s scales every reserved rate
//     to its effective service rate R·s in the bound math, grows the
//     exported error terms by a retransmission budget, and re-derives
//     accepted contracts when the estimate moves (SetSuccessProb);
//   - internal/piconet, internal/baseband, internal/sim — the simulated
//     Bluetooth substrate (TDD slot engine, packet types, event kernel);
//   - internal/poller — best-effort pollers: RR, ERR, FEP, EDC,
//     demand-based, HOL priority, and the Predictive Fair Poller;
//   - internal/gs, internal/tspec, internal/segmentation — RFC 2212 delay
//     bound math, token buckets, and segmentation policies;
//   - internal/scenario — the declarative scenario API: a pure-data,
//     JSON-serializable Spec (radio/poller/size distributions by name
//     plus parameters) with a Timeline of mid-run changes — GS flows
//     arrive through the paper's online admission test and may be
//     rejected, flows and SCO voice links come and go, whole piconets
//     join and leave — a scenario registry of named presets, and the
//     runner threading online admission through piconet, core and
//     admission (Result.Admissions logs every request's outcome). The
//     scatternet form (Spec.Piconets) runs N co-located piconets, each
//     with its own scheduler and admission controller, coupled through
//     the 1/79 FH co-channel collision model
//     (radio.Medium/HopInterference) — the flat single-piconet spec is
//     its byte-identical degenerate case. Execution shards the event
//     kernel per bridge-connected piconet group (sim.ShardSet:
//     conservative parallel DES, interference snapshots exchanged at
//     fixed epochs); Spec.KernelWorkers multiplexes the shards onto
//     worker goroutines and is a pure execution knob — results,
//     fingerprints and cache keys are byte-identical at every count.
//     Spec.Faults/Spec.Recovery add fault injection and self-healing:
//     declared link outages, slave departures and master crashes meet
//     a supervision timeout (N failed polls declare a link dead and
//     suspend its flows) and a recovery policy — nothing, graceful
//     degradation (re-admit at a looser bound when the link returns),
//     or make-before-break handoff to another piconet (the target
//     admits before the source releases; the move_flow timeline event
//     exposes the same migration to operators);
//   - internal/faults — the pure-data fault plan behind Spec.Faults:
//     validated outage/departure/crash declarations compiled into
//     per-piconet schedules of merged downtime windows the engine
//     consults on every poll decision;
//   - internal/experiments — one entry point per paper table/figure,
//     plus the churn studies (accept ratio and bound compliance under
//     Poisson GS flow arrivals, for every best-effort poller), the
//     E9 scatternet study (how the per-piconet delay bounds erode as
//     co-channel interference grows with the piconet count), and the
//     E10 interference-aware admission study (the same workload with
//     derated admission: violation fraction ~0, bought with a lower
//     online accept ratio), and the E11 fault study (outage rate ×
//     duration × recovery policy: guarantee-survival fraction,
//     supervision detection latency, post-recovery bound compliance);
//   - internal/harness — the parallel experiment runner: sweep grids
//     (delay target × poller × seed replication) fan out across a bounded
//     worker pool with per-replication seed derivation, so every cmd tool
//     reproduces the paper's sweeps bit-identically at any worker count
//     and reports multi-seed 95% confidence intervals.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in bench_test.go regenerate every table and figure.
package bluegs
