// Admission walks the paper's Fig. 3 admission routine step by step:
// flows arrive one at a time, priorities are reassigned so every flow
// keeps x <= t, and piggybacking lets a flow set through that a pairing-
// oblivious controller must reject.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/tspec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	mkReq := func(id piconet.FlowID, slave piconet.SlaveID, dir piconet.Direction) admission.Request {
		return admission.Request{
			ID: id, Slave: slave, Dir: dir,
			Spec: spec, Rate: 12800, Allowed: baseband.PaperTypes,
		}
	}
	// Three up/down pairs at the §4.1 maximal rate: exactly the load
	// where pairing decides acceptance.
	reqs := []admission.Request{
		mkReq(1, 1, piconet.Down), mkReq(2, 1, piconet.Up),
		mkReq(3, 2, piconet.Down), mkReq(4, 2, piconet.Up),
		mkReq(5, 3, piconet.Down), mkReq(6, 3, piconet.Up),
	}
	cfg := admission.Config{MaxExchange: baseband.SlotsToDuration(6)}

	fmt.Println("=== with piggybacking (paper Fig. 3) ===")
	ctrl := admission.NewController(cfg)
	for _, r := range reqs {
		pf, err := ctrl.Admit(r)
		if err != nil {
			fmt.Printf("flow %d (%v at S%d): REJECTED: %v\n", r.ID, r.Dir, r.Slave, err)
			continue
		}
		pair := "unpaired"
		if pf.Counterpart != piconet.None {
			pair = fmt.Sprintf("piggybacks with flow %d", pf.Counterpart)
		}
		fmt.Printf("flow %d (%v at S%d): accepted at priority %d, x=%v, bound=%v (%s)\n",
			r.ID, r.Dir, r.Slave, pf.Priority, pf.X,
			pf.Bound.Round(time.Microsecond), pair)
	}
	fmt.Printf("-> %d of %d flows accepted; 3 poll streams serve 6 flows\n\n",
		len(ctrl.Flows()), len(reqs))

	fmt.Println("=== without piggybacking ===")
	naive := admission.NewController(cfg, admission.WithoutPiggybacking())
	accepted := 0
	for _, r := range reqs {
		if _, err := naive.Admit(r); err != nil {
			fmt.Printf("flow %d (%v at S%d): REJECTED: %v\n", r.ID, r.Dir, r.Slave, err)
			continue
		}
		accepted++
		fmt.Printf("flow %d (%v at S%d): accepted\n", r.ID, r.Dir, r.Slave)
	}
	fmt.Printf("-> only %d of %d flows accepted: each flow needs its own poll stream\n\n",
		accepted, len(reqs))

	// Teardown improves the remaining flows: removing the highest-
	// priority stream shrinks everyone's x.
	fmt.Println("=== removing flows 1+2 improves the rest ===")
	before := map[piconet.FlowID]time.Duration{}
	for _, pf := range ctrl.Flows() {
		before[pf.Request.ID] = pf.X
	}
	if err := ctrl.Remove(1); err != nil {
		return err
	}
	if err := ctrl.Remove(2); err != nil {
		return err
	}
	for _, pf := range ctrl.Flows() {
		fmt.Printf("flow %d: x %v -> %v, bound now %v\n",
			pf.Request.ID, before[pf.Request.ID], pf.X, pf.Bound.Round(time.Microsecond))
	}
	return nil
}
