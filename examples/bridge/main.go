// Bridge demonstrates multi-hop delay guarantees across a scatternet:
// two voice piconets joined by a bridge node that time-shares them on a
// 100 ms residency schedule — half the period receiving in pn1, half
// forwarding into pn2 — with one guaranteed route store-and-forwarded
// across the bridge against a single end-to-end budget.
//
// The point the output makes is the E12 study's: while the bridge is
// resident in the other piconet, route packets queue at it, so a hop's
// reservation must drain a backlog, not just a steady stream. The
// residency-aware admission splits the end-to-end budget across hops and
// derates each hop's share by the bridge's duty fraction there (composed
// with any FH interference term), grossing the reservation up by exactly
// the fraction of the period its consumer is absent — and the measured
// end-to-end maximum stays inside the budget. The naive twin hands every
// hop the full budget with no derate: each hop looks generously
// provisioned on paper, but its token-rate reservation polls too slowly
// to clear the residency backlog, and the route blows its bound.
//
// Run with:
//
//	go run ./examples/bridge
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bluegs/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The two-hop bridge pair: pn1 -> b1 -> pn2, duty 0.5, one
	// background voice flow per piconet, 110 ms end-to-end budget.
	cfg := scenario.BridgedConfig{Hops: 2, Duration: 30 * time.Second}
	derated := scenario.Bridged(cfg)

	fmt.Printf("scenario %q: %d piconets, %d bridge, route budget split across %d hops\n",
		derated.Name, len(derated.Piconets), len(derated.Bridges), len(derated.Routes[0].Bridges)+1)
	b := derated.Bridges[0]
	for _, rs := range b.Residency {
		fmt.Printf("  bridge %s resident in %-4s as slave %d during [%v, %v) of each %v period\n",
			b.Name, rs.Piconet, rs.Slave, rs.Start, rs.End, b.Period)
	}
	fmt.Println()

	res, err := scenario.Run(derated)
	if err != nil {
		return err
	}
	if err := res.Report().WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := res.RouteReport().WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	rr, _ := res.RouteByID(30)
	fmt.Printf("derated route: %d delivered, e2e max %v against %v budget\n",
		rr.Delivered, rr.DelayMax, rr.Target)
	for i, bound := range rr.HopBounds {
		fmt.Printf("  hop %d (%s): admitted bound %v at %.1f kB/s reserved\n",
			i+1, rr.Path[i], bound, rr.HopRates[i]/1000)
	}

	// The control: same topology, same budget, but every hop admitted
	// naively — full budget, no residency derate.
	cfg.Naive = true
	naiveRes, err := scenario.Run(scenario.Bridged(cfg))
	if err != nil {
		return err
	}
	nr, _ := naiveRes.RouteByID(30)
	verdict := "meets"
	if nr.Violated() {
		verdict = "VIOLATES"
	}
	fmt.Printf("\nnaive twin:    %d delivered, e2e max %v — %s the %v budget (peak bridge backlog %d packets)\n",
		nr.Delivered, nr.DelayMax, verdict, nr.Target, nr.PeakQueue)
	fmt.Println("\nthe residency derate is the difference: both routes wait out the same" +
		"\nbridge absences, but only the derated reservation drains the backlog in budget")
	return nil
}
