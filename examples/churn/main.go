// Churn demonstrates the declarative scenario API end to end: a timeline
// scenario is loaded from an embedded JSON file (the same v2 format
// `btsim -scenario` reads) and run through the online admission protocol.
// Guaranteed Service flows arrive and leave mid-run, and every request
// passes the paper's Fig. 3 admission test against the then-current flow
// set: a synchronous voice call is refused because the already-admitted
// GS contracts could not be scheduled around its reservations, and a
// high-rate flow is refused because no priority assignment keeps every
// x_i within its poll interval — while each admitted flow's measured
// delay stays under the bound exported at its admission.
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"time"

	"bluegs/internal/scenario"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := scenario.Unmarshal(scenarioJSON)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d static flows, %d timeline events, %v horizon\n\n",
		spec.Name, len(spec.GS)+len(spec.BE), len(spec.Timeline), spec.Duration)

	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	if err := res.Report().WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := res.AdmissionReport().WriteText(os.Stdout); err != nil {
		return err
	}

	accepted, rejected := 0, 0
	for _, a := range res.Admissions {
		if a.Op != scenario.OpAddGS {
			continue
		}
		if a.Accepted {
			accepted++
		} else {
			rejected++
		}
	}
	fmt.Printf("\nGS requests: %d accepted, %d rejected\n", accepted, rejected)
	if v := res.BoundViolations(); len(v) == 0 {
		fmt.Println("every admitted flow respected its exported delay bound")
	} else {
		for _, f := range v {
			fmt.Printf("flow %d VIOLATED its bound: max %v > %v\n",
				f.ID, f.DelayMax.Round(time.Microsecond), f.Bound.Round(time.Microsecond))
		}
	}
	return nil
}
