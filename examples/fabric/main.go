// Fabric walkthrough: run one Fig. 5 sweep three ways — in-process, then
// distributed across a coordinator and two workers, then resumed from the
// journal with no workers at all — and verify all three render the
// byte-identical table.
//
// The coordinator implements harness.Executor, so the experiment code
// (experiments.Figure5) is the same in every pass; only Config.Executor
// changes. The workers here are goroutines in this process, but they talk
// to the coordinator exclusively over its HTTP protocol (/info, /lease,
// /complete, /heartbeat), exactly as `sweepd -join host:port` processes
// on other machines would.
//
// Run with:
//
//	go run ./examples/fabric
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bluegs/internal/experiments"
	"bluegs/internal/fabric"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A tiny sweep: 3 delay targets × 2 seed replications over 2 s of
	// simulated time. Small enough to finish in seconds, large enough to
	// need two leases.
	cfg := experiments.Config{Duration: 2 * time.Second, Seed: 1, Replications: 2}
	targets := []time.Duration{30 * time.Millisecond, 32 * time.Millisecond, 34 * time.Millisecond}

	// Pass 1 — in-process. This table is the reference the fabric must
	// reproduce byte for byte.
	local, err := render(cfg, targets)
	if err != nil {
		return err
	}
	fmt.Print("in-process:\n\n", local)

	// Pass 2 — distributed. The coordinator shards the grid into leases
	// and journals every completed run; two workers poll it over HTTP and
	// execute through their own harness.Execute.
	dir, err := os.MkdirTemp("", "fabric-example-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "fig5.journal")

	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Grid:        "fig5",
		JournalPath: journal,
		Meta: fabric.JournalMeta{
			Grid:         "fig5",
			Cells:        []string{"30ms", "32ms", "34ms"},
			Duration:     cfg.Duration,
			Seed:         cfg.Seed,
			Replications: cfg.Replications,
		},
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			stats, err := fabric.RunWorker(ctx, fabric.WorkerConfig{
				Coordinator: coord.Addr(),
				Name:        name,
				Poll:        20 * time.Millisecond,
			})
			if err != nil {
				log.Printf("worker %s: %v", name, err)
				return
			}
			fmt.Printf("worker %s: %s\n", name, stats)
		}(fmt.Sprintf("w%d", i))
	}

	fabCfg := cfg
	fabCfg.Executor = coord
	distributed, err := render(fabCfg, targets)
	cancel()
	wg.Wait()
	stats := coord.Stats()
	if cerr := coord.Close(); cerr != nil {
		return cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("coordinator: %s\n\ndistributed:\n\n%s", stats, distributed)
	if distributed != local {
		return fmt.Errorf("distributed table differs from the in-process table")
	}
	fmt.Println("distributed table is byte-identical to the in-process table")

	// Pass 3 — resume. A fresh coordinator over the same journal resolves
	// every run from it before leasing anything, so no workers are needed
	// and nothing re-executes.
	resumed, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Grid:        "fig5",
		JournalPath: journal,
		Resume:      true,
		Meta: fabric.JournalMeta{
			Grid:         "fig5",
			Cells:        []string{"30ms", "32ms", "34ms"},
			Duration:     cfg.Duration,
			Seed:         cfg.Seed,
			Replications: cfg.Replications,
		},
	})
	if err != nil {
		return err
	}
	resCfg := cfg
	resCfg.Executor = resumed
	replayed, err := render(resCfg, targets)
	rstats := resumed.Stats()
	if cerr := resumed.Close(); cerr != nil {
		return cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nresume: %s\n", rstats)
	if replayed != local {
		return fmt.Errorf("resumed table differs from the in-process table")
	}
	if rstats.FromJournal != rstats.Runs {
		return fmt.Errorf("resume re-executed runs: %s", rstats)
	}
	fmt.Println("resumed table is byte-identical, rendered entirely from the journal")
	return nil
}

// render runs Figure5 under cfg and returns the rendered table text.
func render(cfg experiments.Config, targets []time.Duration) (string, error) {
	_, tbl, err := experiments.Figure5(cfg, targets)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		return "", err
	}
	buf.WriteString("\n")
	return buf.String(), nil
}
