// Gsbemix runs the paper's evaluation piconet (Fig. 4): four 64 kbps
// Guaranteed Service flows and eight best-effort flows across seven slaves,
// scheduled by the PFP implementation of the variable-interval poller. It
// prints the per-flow report and the per-slave throughput split, showing
// the Fig. 5 behaviour at a single delay requirement.
//
// Run with:
//
//	go run ./examples/gsbemix [delay-requirement]
//
// e.g. `go run ./examples/gsbemix 30ms` to see tight requirements squeeze
// best-effort throughput (default 40ms).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	target := 40 * time.Millisecond
	if len(os.Args) > 1 {
		parsed, err := time.ParseDuration(os.Args[1])
		if err != nil {
			return fmt.Errorf("bad delay requirement %q: %v", os.Args[1], err)
		}
		target = parsed
	}

	spec := scenario.Paper(target)
	spec.Duration = 60 * time.Second
	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}

	if err := res.Report().WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\nper-slave throughput at a %v requirement:\n", target)
	offered := map[piconet.SlaveID]float64{1: 64, 2: 128, 3: 64, 4: 83.2, 5: 94.4, 6: 105.6, 7: 116.8}
	for slave := piconet.SlaveID(1); slave <= 7; slave++ {
		kind := "GS"
		if slave >= 4 {
			kind = "BE"
		}
		fmt.Printf("  S%d (%s): %6.1f kbps of %6.1f offered\n",
			slave, kind, res.SlaveKbps[slave], offered[slave])
	}
	fmt.Printf("\ntotals: GS %.1f kbps, BE %.1f kbps, combined %.1f kbps (paper: 256 + 400 = 656)\n",
		res.TotalKbps(piconet.Guaranteed), res.TotalKbps(piconet.BestEffort),
		res.TotalKbps(piconet.Guaranteed)+res.TotalKbps(piconet.BestEffort))
	fmt.Printf("slot budget: %v\n", res.Slots)
	if v := res.BoundViolations(); len(v) > 0 {
		return fmt.Errorf("%d delay-bound violations", len(v))
	}
	fmt.Println("all Guaranteed Service delay bounds held")
	return nil
}
