// Lossyvoice demonstrates the paper's future-work scenario end to end: a
// Guaranteed Service voice flow over a lossy radio with baseband ARQ, with
// and without the saved-bandwidth recovery policy. Without it, retries eat
// the flow's own poll budget and delays diverge; with it, lost segments are
// retransmitted in leftover capacity and the delay stays near the
// error-free bound.
//
// Run with:
//
//	go run ./examples/lossyvoice [bit-error-rate]
//
// e.g. `go run ./examples/lossyvoice 3e-4` (default 1e-4).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ber := 1e-4
	if len(os.Args) > 1 {
		parsed, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil || parsed < 0 || parsed >= 1 {
			return fmt.Errorf("bad bit error rate %q", os.Args[1])
		}
		ber = parsed
	}

	build := func(recovery bool) scenario.Spec {
		return scenario.Spec{
			Name: "lossy-voice",
			GS: []scenario.GSFlow{{
				ID: 1, Slave: 1, Dir: piconet.Up,
				Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
			}},
			BE: []scenario.BEFlow{
				{ID: 2, Slave: 2, Dir: piconet.Down, RateKbps: 120, PacketSize: 176},
				{ID: 3, Slave: 2, Dir: piconet.Up, RateKbps: 120, PacketSize: 176},
			},
			DelayTarget:  40 * time.Millisecond,
			Duration:     120 * time.Second,
			Radio:        scenario.BERRadio(ber),
			ARQ:          true,
			LossRecovery: recovery,
		}
	}

	fmt.Printf("one 64 kbps GS voice flow, BER %.0e, baseband ARQ, 120 s\n\n", ber)
	for _, recovery := range []bool{false, true} {
		res, err := scenario.Run(build(recovery))
		if err != nil {
			return err
		}
		voice, _ := res.FlowByID(1)
		mode := "ARQ only (retries eat the poll budget)"
		if recovery {
			mode = "ARQ + saved-bandwidth recovery polls"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  delivered %d of %d packets (%.2f%%)\n",
			voice.Delivered, voice.Offered,
			100*float64(voice.Delivered)/float64(voice.Offered))
		fmt.Printf("  delay: mean %v, jitter %v, p99 %v, max %v (error-free bound %v)\n",
			voice.DelayMean.Round(time.Microsecond),
			voice.DelayJitter.Round(time.Microsecond),
			voice.DelayP99.Round(time.Microsecond),
			voice.DelayMax.Round(time.Microsecond),
			voice.Bound.Round(time.Microsecond))
		fmt.Printf("  best effort carried %.1f kbps; %d retransmit slots\n\n",
			res.TotalKbps(piconet.BestEffort), res.Slots.Retransmit)
	}
	fmt.Println("the recovery policy implements the paper's §5 future work: saved")
	fmt.Println("bandwidth absorbs retransmissions without touching any flow's x_i")
	return nil
}
