// Quickstart: admit one 64 kbps Guaranteed Service flow, run the piconet
// for ten simulated seconds, and verify the measured packet delays stay
// within the exported delay bound.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
	"bluegs/internal/tspec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A voice-like source: one packet of 144..176 bytes every 20 ms
	// (64 kbps), slave-to-master, allowed to use DH1 and DH3 packets.
	spec := tspec.CBR(20*time.Millisecond, 144, 176)

	// Admission control (paper Fig. 2 + Fig. 3): request a 12.8 kB/s
	// fluid rate and get back the poll plan and the delay bound.
	ctrl := admission.NewController(admission.Config{
		MaxExchange: baseband.SlotsToDuration(6), // worst ongoing exchange: DH3 both ways
	})
	flow, err := ctrl.Admit(admission.Request{
		ID:      1,
		Slave:   1,
		Dir:     piconet.Up,
		Spec:    spec,
		Rate:    12800,
		Allowed: baseband.PaperTypes,
	})
	if err != nil {
		return err
	}
	fmt.Printf("admitted: poll interval t=%v, worst lag x=%v, error terms %v, delay bound %v\n",
		flow.Params.Interval.Round(time.Microsecond), flow.X, flow.Terms,
		flow.Bound.Round(time.Microsecond))

	// Build the piconet and install the Guaranteed Service scheduler.
	s := sim.New(sim.WithSeed(7))
	pn := piconet.New(s)
	if err := pn.AddSlave(1); err != nil {
		return err
	}
	if err := pn.AddFlow(piconet.FlowConfig{
		ID: 1, Slave: 1, Dir: piconet.Up,
		Class: piconet.Guaranteed, Allowed: baseband.PaperTypes,
	}); err != nil {
		return err
	}
	sched, err := core.New(pn, ctrl.Flows())
	if err != nil {
		return err
	}
	pn.SetScheduler(sched)

	// The traffic source: a self-rescheduling simulator event.
	var tick func()
	tick = func() {
		size := 144 + s.Rand().Intn(33)
		if err := pn.EnqueuePacket(1, size); err != nil {
			log.Printf("enqueue: %v", err)
			return
		}
		s.After(20*time.Millisecond, tick)
	}
	s.Schedule(0, tick)

	if err := pn.Start(); err != nil {
		return err
	}
	if err := s.Run(10 * time.Second); err != nil {
		return err
	}
	if err := pn.Err(); err != nil {
		return err
	}

	delays, _ := pn.FlowDelayStats(1)
	delivered, _ := pn.FlowDelivered(1)
	fmt.Printf("delivered %d packets (%.1f kbps)\n",
		delivered.Packets(), delivered.Kbps(s.Now()))
	fmt.Printf("delay: mean %v, p99 %v, max %v (bound %v)\n",
		delays.Mean().Round(time.Microsecond), delays.Quantile(0.99).Round(time.Microsecond),
		delays.Max().Round(time.Microsecond), flow.Bound.Round(time.Microsecond))
	if delays.Max() > flow.Bound {
		return fmt.Errorf("delay bound violated")
	}
	fmt.Println("delay bound held for every packet")
	return nil
}
