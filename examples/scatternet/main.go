// Scatternet demonstrates the multi-piconet engine end to end: three
// co-located piconets — each a paper-style voice piconet with a
// best-effort floor — run over one shared kernel clock, coupled through
// the 1/79 frequency-hopping co-channel collision model. A fourth piconet
// joins mid-run through the timeline and one of the originals leaves, so
// the interference the survivors see changes while they run.
//
// The point the output makes is the E9 study's: each piconet's admission
// test is sound in isolation (run the same spec with one piconet and
// every bound holds), but the paper's setting — 79 shared FH channels —
// couples co-located piconets, and the per-piconet delay guarantees erode
// as neighbours multiply. The per-piconet report shows which flows blew
// their bound, the admission log shows the piconet churn, and the
// retransmit slot count shows where the slack went.
//
// Run with:
//
//	go run ./examples/scatternet
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three identical voice piconets, coupled; a fourth arrives at 10 s
	// and the second leaves at 20 s.
	spec := scenario.Scatternet(scenario.ScatternetConfig{
		Piconets: 3,
		BEKbps:   60,
		Duration: 30 * time.Second,
	})
	spec.Name = "scatternet-demo"
	spec.Timeline = []scenario.TimelineEvent{
		scenario.AddPiconetAt(10*time.Second, scenario.PiconetSpec{
			Name: "pn4",
			GS: []scenario.GSFlow{
				{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176},
			},
			BE: []scenario.BEFlow{
				{ID: 100, Slave: 6, Dir: piconet.Down, RateKbps: 60, PacketSize: 176},
			},
		}),
		scenario.RemovePiconetAt(20*time.Second, "pn2"),
	}

	fmt.Printf("scenario %q: %d piconets at start, %d timeline events, %v horizon\n",
		spec.Name, len(spec.Piconets), len(spec.Timeline), spec.Duration)
	fmt.Printf("interference: %d FH channels shared by every active piconet\n\n",
		spec.WithDefaults().Interference.Channels)

	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	if err := res.Report().WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if adm := res.AdmissionReport(); adm != nil {
		if err := adm.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("scatternet-wide violation fraction: %.3f\n", res.ViolationFraction())
	fmt.Printf("slots spent retransmitting collided segments: %d\n", res.Slots.Retransmit)
	for _, pr := range res.Piconets {
		status := "ran to completion"
		if pr.Removed {
			status = "left the scatternet mid-run"
		}
		fmt.Printf("  %-4s utilization %.3f, %d GS violations (%s)\n",
			pr.Name, pr.Utilization, len(pr.BoundViolations()), status)
	}

	// The control: the same piconet alone keeps every promise.
	solo := scenario.Scatternet(scenario.ScatternetConfig{
		Piconets: 1, BEKbps: 60, Duration: 30 * time.Second,
	})
	soloRes, err := scenario.Run(solo)
	if err != nil {
		return err
	}
	fmt.Printf("\ncontrol (one piconet, same load): %d violations — the paper's guarantee holds in isolation\n",
		len(soloRes.BoundViolations()))
	return nil
}
