// Voicepiconet: three voice-like Guaranteed Service flows with different
// delay requirements share one piconet. The receiver-side computation picks
// each flow's fluid rate from the exported (C, D) error terms (RFC 2212),
// admission assigns priorities, and the simulation verifies every flow
// meets its own bound while a best-effort slave soaks up leftover slots.
//
// Run with:
//
//	go run ./examples/voicepiconet
package main

import (
	"fmt"
	"log"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
	"bluegs/internal/tspec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	// Three stacked single-direction streams interfere through the x_i
	// fixed point (each lower priority waits for every higher one), so
	// the spread of feasible targets is coarser than for a lone flow.
	targets := map[piconet.FlowID]time.Duration{
		1: 38 * time.Millisecond, // interactive voice: tight
		2: 44 * time.Millisecond, // ordinary voice
		3: 50 * time.Millisecond, // one-way streaming: loose
	}

	// The receiver-side Guaranteed Service negotiation: request rates
	// that achieve each flow's target given the exported error terms.
	var reqs []admission.DelayRequest
	for id, target := range targets {
		reqs = append(reqs, admission.DelayRequest{
			Request: admission.Request{
				ID:      id,
				Slave:   piconet.SlaveID(id),
				Dir:     piconet.Up,
				Spec:    spec,
				Allowed: baseband.PaperTypes,
			},
			Target: target,
		})
	}
	ctrl, err := admission.PlanForDelay(reqs, admission.Config{
		MaxExchange: baseband.SlotsToDuration(6),
	})
	if err != nil {
		return err
	}
	fmt.Println("admission plan (priorities minimise the worst-case lag x):")
	for _, pf := range ctrl.Flows() {
		fmt.Printf("  flow %d: target %v -> R=%.0f B/s, priority %d, exports (C=%.0fB, D=%v), bound %v\n",
			pf.Request.ID, targets[pf.Request.ID], pf.Request.Rate, pf.Priority,
			pf.Terms.C, pf.Terms.D, pf.Bound.Round(time.Microsecond))
	}

	// Piconet: three GS slaves plus one saturated best-effort slave.
	s := sim.New(sim.WithSeed(11))
	pn := piconet.New(s)
	for slave := piconet.SlaveID(1); slave <= 4; slave++ {
		if err := pn.AddSlave(slave); err != nil {
			return err
		}
	}
	for id := piconet.FlowID(1); id <= 3; id++ {
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: id, Slave: piconet.SlaveID(id), Dir: piconet.Up,
			Class: piconet.Guaranteed, Allowed: baseband.PaperTypes,
		}); err != nil {
			return err
		}
	}
	if err := pn.AddFlow(piconet.FlowConfig{
		ID: 4, Slave: 4, Dir: piconet.Down,
		Class: piconet.BestEffort, Allowed: baseband.PaperTypes,
	}); err != nil {
		return err
	}
	sched, err := core.New(pn, ctrl.Flows())
	if err != nil {
		return err
	}
	pn.SetScheduler(sched)

	// Voice sources for the GS flows; a 2 ms CBR firehose for BE.
	source := func(flow piconet.FlowID, interval time.Duration, minSize, maxSize int) {
		var tick func()
		tick = func() {
			size := minSize
			if maxSize > minSize {
				size += s.Rand().Intn(maxSize - minSize + 1)
			}
			if err := pn.EnqueuePacket(flow, size); err != nil {
				log.Printf("enqueue %d: %v", flow, err)
				return
			}
			s.After(interval, tick)
		}
		s.Schedule(0, tick)
	}
	for id := piconet.FlowID(1); id <= 3; id++ {
		source(id, 20*time.Millisecond, 144, 176)
	}
	source(4, 2*time.Millisecond, 176, 176)

	if err := pn.Start(); err != nil {
		return err
	}
	if err := s.Run(60 * time.Second); err != nil {
		return err
	}
	if err := pn.Err(); err != nil {
		return err
	}

	fmt.Println("\nmeasured over 60 s:")
	for _, pf := range ctrl.Flows() {
		id := pf.Request.ID
		delays, _ := pn.FlowDelayStats(id)
		status := "bound held"
		if delays.Max() > pf.Bound {
			status = "BOUND VIOLATED"
		}
		fmt.Printf("  flow %d: %5d packets, max delay %9v vs bound %9v  (%s)\n",
			id, delays.Count(), delays.Max().Round(time.Microsecond),
			pf.Bound.Round(time.Microsecond), status)
	}
	beDelivered, _ := pn.FlowDelivered(4)
	fmt.Printf("  best-effort slave carried %.1f kbps from the leftover slots\n",
		beDelivered.Kbps(s.Now()))
	acct := pn.SlotAccount(s.Now())
	fmt.Printf("  slot budget: %v\n", acct)
	return nil
}
