module bluegs

go 1.24
