// Package admission implements the Guaranteed Service admission control of
// Ait Yaiz & Heijenk (ICDCSW'03) §3.1: the derivation of per-flow polling
// parameters (minimum poll efficiency eta_min, poll interval t_i, worst
// exchange time xi_i), the fixed-point determination of the worst-case poll
// execution lag x_i (paper Fig. 2), the feasibility condition x_i <= t_i
// (paper eq. 8/9), and the priority-reassigning admission routine that
// exploits piggybacking of oppositely-directed flow pairs (paper Fig. 3).
package admission

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/gs"
	"bluegs/internal/piconet"
	"bluegs/internal/sco"
	"bluegs/internal/segmentation"
	"bluegs/internal/tspec"
)

// Errors returned by admission control.
var (
	ErrRejected       = errors.New("admission: flow rejected")
	ErrRateBelowToken = errors.New("admission: requested rate below token rate")
	ErrBadRequest     = errors.New("admission: invalid request")
	ErrDuplicateFlow  = errors.New("admission: duplicate flow id")
	ErrUnknownFlow    = errors.New("admission: unknown flow")
)

// Request is a Guaranteed Service flow request.
type Request struct {
	// ID identifies the flow (nonzero, unique).
	ID piconet.FlowID
	// Slave is the slave endpoint.
	Slave piconet.SlaveID
	// Dir is the flow direction.
	Dir piconet.Direction
	// Spec is the token bucket traffic specification.
	Spec tspec.TSpec
	// Rate is the requested fluid service rate R in bytes/s (>= Spec.TokenRate).
	Rate float64
	// Allowed is the set of baseband packet types the flow may use.
	Allowed baseband.TypeSet
	// Policy is the segmentation policy (defaults to best-fit).
	Policy segmentation.Policy
	// SuccessScale scales the controller's configured success probability
	// for this flow alone: its effective per-exchange success probability
	// becomes s·SuccessScale. Routed flows polled through a part-time
	// bridge use it to fold the bridge's residency duty cycle into the
	// hop's derating on top of the FH collision term — absence behaves,
	// statistically, like one more source of failed exchanges. Values
	// outside (0,1) mean no extra scaling.
	SuccessScale float64
}

func (r Request) validate() error {
	if r.ID == piconet.None {
		return fmt.Errorf("%w: zero flow id", ErrBadRequest)
	}
	if r.Dir != piconet.Down && r.Dir != piconet.Up {
		return fmt.Errorf("%w: bad direction", ErrBadRequest)
	}
	if err := r.Spec.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.Rate < r.Spec.TokenRate {
		return fmt.Errorf("%w: R=%.1f < r=%.1f", ErrRateBelowToken, r.Rate, r.Spec.TokenRate)
	}
	if _, ok := r.Allowed.LargestACL(); !ok {
		return fmt.Errorf("%w: no ACL packet types", ErrBadRequest)
	}
	return nil
}

// Params are the polling parameters derived from a request (paper §3.1).
type Params struct {
	// EtaMin is the minimum poll efficiency eta_min in bytes per poll
	// (paper eq. 4).
	EtaMin float64
	// WorstSize is the packet size achieving EtaMin.
	WorstSize int
	// MaxSegmentSlots is the largest baseband packet (in slots) any
	// segment of the flow can occupy.
	MaxSegmentSlots int
	// Interval is the poll interval t = EtaMin / R (paper eq. 5).
	Interval time.Duration
	// Exchange is the flow's worst-case poll exchange air time xi
	// (both directions).
	Exchange time.Duration
}

// Config tunes the admission computations.
type Config struct {
	// MaxExchange is the piconet-wide worst-case transmission time Xi of
	// one ongoing exchange, the initial value of every x_i (paper Fig. 2
	// step a). It must cover best-effort exchanges too, since a planned
	// GS poll may have to wait for one. Zero derives it from the GS
	// flows alone.
	MaxExchange time.Duration
	// DirectionAware, when true, uses direction-specific exchange times
	// (POLL+data for uplink-only flows, data+NULL for downlink-only)
	// instead of the paper's conservative both-directions-maximal
	// assumption.
	DirectionAware bool
	// SCOLinks lists the piconet's reserved synchronous channels. They
	// enter every flow's x_i as an implicit highest-priority stream, and
	// flows whose worst exchange cannot fit between reservations are
	// rejected. All links must share one HV type.
	SCOLinks []sco.Channel
	// SuccessProb is the effective per-exchange success probability
	// s = 1 − P(collision) under FH co-channel interference (see
	// radio.ExpectedCollisionProb). Values <= 0 or >= 1 mean the ideal
	// channel (no derating). When set, a reserved fluid rate R delivers
	// only an effective service rate R·s, so the delay bound is
	// evaluated at R·s, the exported C term grows by a retransmission
	// budget (DeratedErrorTerms), and flows whose derated rate falls
	// below their token rate are rejected — admission must then reserve
	// R >= r/s to keep the queue stable.
	SuccessProb float64
}

// successProb normalises the configured derating input: 1 (ideal) when
// unset or out of range.
func (cfg Config) successProb() float64 {
	if cfg.SuccessProb <= 0 || cfg.SuccessProb >= 1 {
		return 1
	}
	return cfg.SuccessProb
}

// successProbFor composes the piconet-wide success probability with a
// request's own SuccessScale (a bridge hop's residency duty cycle): the
// flow-effective s the bound math and rate negotiation must use.
func (cfg Config) successProbFor(r Request) float64 {
	s := cfg.successProb()
	if r.SuccessScale > 0 && r.SuccessScale < 1 {
		s *= r.SuccessScale
	}
	return s
}

// DeriveParams computes the polling parameters of a request.
func DeriveParams(req Request, cfg Config) (Params, error) {
	if err := req.validate(); err != nil {
		return Params{}, err
	}
	policy := req.Policy
	if policy == nil {
		policy = segmentation.BestFit{}
	}
	eff, err := segmentation.MinPollEfficiency(policy, req.Spec.MinPolicedUnit, req.Spec.MaxTransferUnit, req.Allowed)
	if err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	maxSeg, err := segmentation.MaxSegmentSlots(policy, req.Spec.MinPolicedUnit, req.Spec.MaxTransferUnit, req.Allowed)
	if err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	interval := time.Duration(eff.BytesPerPoll / req.Rate * float64(time.Second))
	exchange := exchangeTime(maxSeg, req.Dir, cfg)
	return Params{
		EtaMin:          eff.BytesPerPoll,
		WorstSize:       eff.Size,
		MaxSegmentSlots: maxSeg,
		Interval:        interval,
		Exchange:        exchange,
	}, nil
}

// exchangeTime returns a flow's worst-case exchange duration. With the
// paper's conservative assumption both the master and the slave may send a
// maximal segment (piggybacking in the opposite direction); direction-aware
// mode charges only POLL or NULL for the passive leg.
func exchangeTime(maxSegSlots int, dir piconet.Direction, cfg Config) time.Duration {
	if !cfg.DirectionAware {
		return baseband.SlotsToDuration(2 * maxSegSlots)
	}
	// One data leg plus a 1-slot POLL or NULL companion leg.
	return baseband.SlotsToDuration(maxSegSlots + 1)
}

// pairExchangeTime returns the worst exchange of a piggybacked pair: both
// legs carry maximal segments.
func pairExchangeTime(downMaxSeg, upMaxSeg int) time.Duration {
	return baseband.SlotsToDuration(downMaxSeg + upMaxSeg)
}

// Stream describes one priority-ordered poll stream for the Fig. 2
// fixed-point computation: its planned poll interval t and its worst-case
// exchange time xi. A piggybacked pair forms a single stream.
type Stream struct {
	// Interval is the stream's poll interval t.
	Interval time.Duration
	// Exchange is the stream's worst exchange air time xi.
	Exchange time.Duration
}

// DetermineX runs the paper's Fig. 2 algorithm: the worst-case lag x
// between a planned poll and its execution, for a stream whose
// higher-priority competitors are given. maxExchange is the piconet-wide Xi
// (an ongoing exchange cannot be interrupted). own is the stream's own poll
// interval t_i, used as the loop cutoff (paper step f): the returned x may
// exceed own, in which case the flow fails the eq. 8 feasibility test.
func DetermineX(maxExchange time.Duration, higher []Stream, own time.Duration) time.Duration {
	x := maxExchange
	for iter := 0; iter < 1000; iter++ {
		acc := maxExchange
		for _, h := range higher {
			if h.Interval <= 0 {
				continue
			}
			polls := int64((x + h.Interval - 1) / h.Interval) // ceil(x / t_j)
			acc += time.Duration(polls) * h.Exchange
		}
		if acc == x {
			return x // fixed point (step d)
		}
		x = acc
		if x > own {
			return x // infeasible; stop to avoid divergence (step f)
		}
	}
	return x
}

// Feasible is the paper's eq. 8 admission condition: the worst-case lag
// must not exceed the poll interval, so a planned poll is never delayed by
// a waiting poll for the same flow.
func Feasible(x, interval time.Duration) bool { return x <= interval }

// ErrorTerms returns the error-term export of a flow (paper §3.1.3):
// C = eta_min (rate-dependent) and D = x (rate-independent).
func ErrorTerms(etaMin float64, x time.Duration) gs.ErrorTerms {
	return gs.ErrorTerms{C: etaMin, D: x}
}

// retryTailProb is the residual risk the interference retry budget leaves
// uncovered: the derated C term funds enough retransmission polls that a
// packet needs more of them only with probability < retryTailProb per
// exchange (that many consecutive independent collisions). 1e-5 is
// calibrated against the E10 scatternet study: at 8 co-located piconets
// (~10⁵ exchanges per 30s run) it keeps measured worst-case delays inside
// the derated bounds where 1e-3/1e-4 left the deepest retry tails ~1-2ms
// outside. Collisions across retries are not fully independent (the other
// piconets stay on air while they too retransmit), so the geometric model
// needs this extra headroom.
const retryTailProb = 1e-5

// RetryBudget returns the number of extra polls the derated error terms
// fund against consecutive co-channel collisions: the smallest K with
// (1 − s)^K <= retryTailProb, 0 on the ideal channel. The admission
// estimate of s is conservative (every co-located piconet assumed on
// air), so the realised tail risk is far below retryTailProb.
func RetryBudget(successProb float64) int {
	if successProb >= 1 || successProb <= 0 {
		return 0
	}
	k := math.Ceil(math.Log(retryTailProb) / math.Log(1-successProb))
	if k < 0 {
		return 0
	}
	return int(k)
}

// DeratedErrorTerms is the error-term export under co-channel
// interference. A collided exchange retransmits at the flow's next
// planned poll, one interval t = eta/R later; budgeting K = RetryBudget
// retries therefore adds K·t to the worst-case delay. The bound divides
// C by the effective rate R·s, so the addition is expressed as
// C = eta·(1 + K·s): C/(R·s) = eta/(R·s) + K·eta/R. With s = 1 this is
// exactly ErrorTerms.
func DeratedErrorTerms(etaMin float64, x time.Duration, successProb float64) gs.ErrorTerms {
	k := RetryBudget(successProb)
	return gs.ErrorTerms{C: etaMin * (1 + float64(k)*successProb), D: x}
}
