package admission

import (
	"errors"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/tspec"
)

// paperRequest returns a GS flow request exactly as in the paper's §4.1:
// CBR 64 kbps, packet sizes uniform in [144, 176], DH1+DH3 allowed.
func paperRequest(id piconet.FlowID, slave piconet.SlaveID, dir piconet.Direction, rate float64) Request {
	return Request{
		ID:      id,
		Slave:   slave,
		Dir:     dir,
		Spec:    tspec.CBR(20*time.Millisecond, 144, 176),
		Rate:    rate,
		Allowed: baseband.PaperTypes,
	}
}

func TestDeriveParamsPaperValues(t *testing.T) {
	req := paperRequest(1, 1, piconet.Up, 12800)
	p, err := DeriveParams(req, Config{})
	if err != nil {
		t.Fatalf("DeriveParams: %v", err)
	}
	// eta_min = 144 bytes (one DH3 at the minimum packet size).
	if p.EtaMin != 144 || p.WorstSize != 144 {
		t.Fatalf("eta_min = %v at size %d, want 144 at 144", p.EtaMin, p.WorstSize)
	}
	// t = eta/R = 144/12800 s = 11.25 ms.
	if p.Interval != 11250*time.Microsecond {
		t.Fatalf("interval = %v, want 11.25ms", p.Interval)
	}
	// Conservative exchange: DH3 both directions = 6 slots = 3.75 ms.
	if p.Exchange != 3750*time.Microsecond {
		t.Fatalf("exchange = %v, want 3.75ms", p.Exchange)
	}
	if p.MaxSegmentSlots != 3 {
		t.Fatalf("MaxSegmentSlots = %d, want 3", p.MaxSegmentSlots)
	}
}

func TestDeriveParamsDirectionAware(t *testing.T) {
	req := paperRequest(1, 1, piconet.Up, 12800)
	p, err := DeriveParams(req, Config{DirectionAware: true})
	if err != nil {
		t.Fatalf("DeriveParams: %v", err)
	}
	// POLL (1 slot) + DH3 (3 slots) = 4 slots = 2.5 ms.
	if p.Exchange != 2500*time.Microsecond {
		t.Fatalf("direction-aware exchange = %v, want 2.5ms", p.Exchange)
	}
}

func TestDeriveParamsErrors(t *testing.T) {
	req := paperRequest(1, 1, piconet.Up, 12800)
	req.Rate = 100 // below token rate 8800
	if _, err := DeriveParams(req, Config{}); !errors.Is(err, ErrRateBelowToken) {
		t.Fatalf("low rate: err = %v", err)
	}
	req = paperRequest(0, 1, piconet.Up, 12800)
	if _, err := DeriveParams(req, Config{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero id: err = %v", err)
	}
	req = paperRequest(1, 1, piconet.Up, 12800)
	req.Allowed = baseband.NewTypeSet(baseband.TypeHV3)
	if _, err := DeriveParams(req, Config{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no ACL types: err = %v", err)
	}
}

// TestDetermineXPaperValues re-derives the paper's §4.1 x values (the
// published text has OCR gaps; these are the values the paper's own
// formulas give): with Xi = 3.75 ms and poll streams of t = 16.36 ms
// (R = r = 8.8 kB/s), x_1 = 3.75 ms, x_2 = 7.5 ms, x_3 = 11.25 ms.
func TestDetermineXPaperValues(t *testing.T) {
	xi := 3750 * time.Microsecond
	// At R = token rate: t = 144/8800 s ~= 16.36 ms.
	sec := 144.0 / 8800.0
	interval := time.Duration(sec * float64(time.Second))
	st := Stream{Interval: interval, Exchange: xi}

	x1 := DetermineX(xi, nil, interval)
	if x1 != xi {
		t.Fatalf("x_1 = %v, want Xi = 3.75ms", x1)
	}
	x2 := DetermineX(xi, []Stream{st}, interval)
	if x2 != 7500*time.Microsecond {
		t.Fatalf("x_2 = %v, want 7.5ms", x2)
	}
	x3 := DetermineX(xi, []Stream{st, st}, interval)
	if x3 != 11250*time.Microsecond {
		t.Fatalf("x_3 = %v, want 11.25ms", x3)
	}
	// All feasible: x <= t.
	for i, x := range []time.Duration{x1, x2, x3} {
		if !Feasible(x, interval) {
			t.Fatalf("x_%d = %v infeasible against t = %v", i+1, x, interval)
		}
	}
}

func TestDetermineXFixedPointIteration(t *testing.T) {
	// A fast higher-priority stream forces the ceil term to grow across
	// iterations: t_1 = 2ms, xi_1 = 1.25ms, Xi = 1.25ms.
	// x(0)=1.25 -> ceil(1.25/2)=1 -> 2.5 -> ceil(2.5/2)=2 -> 3.75 ->
	// ceil(3.75/2)=2 -> 3.75 fixed point.
	xi := 1250 * time.Microsecond
	higher := []Stream{{Interval: 2 * time.Millisecond, Exchange: 1250 * time.Microsecond}}
	x := DetermineX(xi, higher, 20*time.Millisecond)
	if x != 3750*time.Microsecond {
		t.Fatalf("x = %v, want 3.75ms fixed point", x)
	}
}

func TestDetermineXInfeasibleStops(t *testing.T) {
	// Higher-priority load so heavy the fixed point exceeds own t: the
	// algorithm must stop (paper step f) and report a value > own.
	xi := 1250 * time.Microsecond
	higher := []Stream{
		{Interval: 2 * time.Millisecond, Exchange: 1875 * time.Microsecond},
		{Interval: 2 * time.Millisecond, Exchange: 1875 * time.Microsecond},
	}
	own := 5 * time.Millisecond
	x := DetermineX(xi, higher, own)
	if Feasible(x, own) {
		t.Fatalf("x = %v unexpectedly feasible against t = %v", x, own)
	}
}

func TestAdmitPaperScenarioPriorities(t *testing.T) {
	// The paper's four GS flows at R = 12.8 kB/s (the §4.1 maximum):
	// flow 1 at S1 (up), flows 2+3 at S2 (down+up, piggybacked),
	// flow 4 at S3 (up).
	c := NewController(Config{})
	reqs := []Request{
		paperRequest(1, 1, piconet.Up, 12800),
		paperRequest(2, 2, piconet.Down, 12800),
		paperRequest(3, 2, piconet.Up, 12800),
		paperRequest(4, 3, piconet.Up, 12800),
	}
	for _, r := range reqs {
		if _, err := c.Admit(r); err != nil {
			t.Fatalf("Admit(%d): %v", r.ID, err)
		}
	}
	flows := c.Flows()
	if len(flows) != 4 {
		t.Fatalf("admitted %d flows, want 4", len(flows))
	}
	// Flows 2 and 3 must share a priority (piggybacked pair).
	f2, _ := c.Find(2)
	f3, _ := c.Find(3)
	if f2.Priority != f3.Priority {
		t.Fatalf("pair priorities differ: %d vs %d", f2.Priority, f3.Priority)
	}
	if f2.Counterpart != 3 || f3.Counterpart != 2 {
		t.Fatalf("counterparts = %d/%d, want 3/2", f2.Counterpart, f3.Counterpart)
	}
	// There are three poll streams; their x values are Xi, 2Xi, 3Xi
	// with t = 144/12800 s = 11.25 ms (every ceil term is 1).
	wantX := map[int]time.Duration{
		1: 3750 * time.Microsecond,
		2: 7500 * time.Microsecond,
		3: 11250 * time.Microsecond,
	}
	for _, f := range flows {
		if want := wantX[f.Priority]; f.X != want {
			t.Fatalf("flow %d priority %d: x = %v, want %v", f.Request.ID, f.Priority, f.X, want)
		}
		if !Feasible(f.X, f.Params.Interval) {
			t.Fatalf("flow %d infeasible: x=%v t=%v", f.Request.ID, f.X, f.Params.Interval)
		}
		// Error terms: C = 144 bytes, D = x.
		if f.Terms.C != 144 || f.Terms.D != f.X {
			t.Fatalf("flow %d terms = %v", f.Request.ID, f.Terms)
		}
	}
	// The paper's derived maximum: at R = eta/x_3 = 144B/11.25ms =
	// 12.8 kB/s the lowest stream is exactly at the feasibility edge, so
	// the 12.8 kB/s requests must all be accepted, and the delay bound of
	// the lowest-priority flow is (176+144)/12800 s + 11.25 ms = 36.25 ms.
	f4, _ := c.Find(4)
	if f4.Bound != 36250*time.Microsecond {
		t.Fatalf("flow 4 bound = %v, want 36.25ms", f4.Bound)
	}
}

func TestAdmitRejectsBeyondCapacity(t *testing.T) {
	// At R = 12.8 kB/s each stream costs x increments of 3.75 ms and
	// t = 11.25 ms: three streams fit exactly; a fourth must be rejected
	// (x_4 = 15 ms > t = 11.25 ms).
	c := NewController(Config{})
	for i := 1; i <= 3; i++ {
		if _, err := c.Admit(paperRequest(piconet.FlowID(i), piconet.SlaveID(i), piconet.Up, 12800)); err != nil {
			t.Fatalf("Admit(%d): %v", i, err)
		}
	}
	_, err := c.Admit(paperRequest(4, 4, piconet.Up, 12800))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("fourth stream: err = %v, want rejection", err)
	}
	// State unchanged after rejection.
	if got := len(c.Flows()); got != 3 {
		t.Fatalf("flows after rejection = %d, want 3", got)
	}
}

func TestPiggybackingAcceptsMoreFlows(t *testing.T) {
	// Six flows as three up/down pairs at 12.8 kB/s: with piggybacking
	// they form three streams and fit; without it they are six streams
	// and must be rejected.
	reqs := []Request{
		paperRequest(1, 1, piconet.Down, 12800),
		paperRequest(2, 1, piconet.Up, 12800),
		paperRequest(3, 2, piconet.Down, 12800),
		paperRequest(4, 2, piconet.Up, 12800),
		paperRequest(5, 3, piconet.Down, 12800),
		paperRequest(6, 3, piconet.Up, 12800),
	}
	with := NewController(Config{})
	for _, r := range reqs {
		if _, err := with.Admit(r); err != nil {
			t.Fatalf("piggybacked Admit(%d): %v", r.ID, err)
		}
	}
	without := NewController(Config{}, WithoutPiggybacking())
	rejected := false
	for _, r := range reqs {
		if _, err := without.Admit(r); err != nil {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("without piggybacking all six streams were accepted; pairing should matter")
	}
}

func TestAdmitPrefersKeepingExistingPriorities(t *testing.T) {
	// Admitting flows one by one: each new unpaired flow should slot in
	// at the lowest priority, leaving earlier flows untouched.
	c := NewController(Config{})
	for i := 1; i <= 3; i++ {
		if _, err := c.Admit(paperRequest(piconet.FlowID(i), piconet.SlaveID(i), piconet.Up, 12800)); err != nil {
			t.Fatalf("Admit(%d): %v", i, err)
		}
		f, _ := c.Find(piconet.FlowID(i))
		if f.Priority != i {
			t.Fatalf("flow %d priority = %d, want %d", i, f.Priority, i)
		}
	}
	f1, _ := c.Find(1)
	if f1.Priority != 1 {
		t.Fatalf("flow 1 priority changed to %d", f1.Priority)
	}
}

func TestAdmitDuplicateAndConflicts(t *testing.T) {
	c := NewController(Config{})
	if _, err := c.Admit(paperRequest(1, 1, piconet.Up, 12800)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if _, err := c.Admit(paperRequest(1, 2, piconet.Up, 12800)); !errors.Is(err, ErrDuplicateFlow) {
		t.Fatalf("duplicate id: err = %v", err)
	}
	// Second GS flow in the same direction on the same slave.
	if _, err := c.Admit(paperRequest(2, 1, piconet.Up, 12800)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("same slave+dir: err = %v", err)
	}
}

func TestRemoveImprovesLowerFlows(t *testing.T) {
	c := NewController(Config{})
	for i := 1; i <= 3; i++ {
		if _, err := c.Admit(paperRequest(piconet.FlowID(i), piconet.SlaveID(i), piconet.Up, 12800)); err != nil {
			t.Fatalf("Admit(%d): %v", i, err)
		}
	}
	f3Before, _ := c.Find(3)
	xBefore := f3Before.X
	if err := c.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, ok := c.Find(1); ok {
		t.Fatal("flow 1 still present after Remove")
	}
	f3After, _ := c.Find(3)
	if f3After.X >= xBefore {
		t.Fatalf("flow 3 x did not improve: %v -> %v", xBefore, f3After.X)
	}
	if err := c.Remove(99); !errors.Is(err, ErrUnknownFlow) {
		t.Fatalf("Remove unknown: err = %v", err)
	}
}

func TestPlanForDelayPaperSweep(t *testing.T) {
	// The paper's Fig. 5 sweep: all four GS flows request the same delay
	// bound. At a loose 46 ms target the rates should stay near the
	// token rate; at a tight 37 ms target the lowest-priority flow needs
	// nearly the maximal feasible rate.
	mk := func(target time.Duration) ([]DelayRequest, Config) {
		reqs := []DelayRequest{
			{Request: paperRequest(1, 1, piconet.Up, 0), Target: target},
			{Request: paperRequest(2, 2, piconet.Down, 0), Target: target},
			{Request: paperRequest(3, 2, piconet.Up, 0), Target: target},
			{Request: paperRequest(4, 3, piconet.Up, 0), Target: target},
		}
		return reqs, Config{}
	}

	reqs, cfg := mk(46 * time.Millisecond)
	c, err := PlanForDelay(reqs, cfg)
	if err != nil {
		t.Fatalf("PlanForDelay(46ms): %v", err)
	}
	for _, f := range c.Flows() {
		if f.Bound > 46*time.Millisecond {
			t.Fatalf("flow %d bound %v exceeds 46ms target", f.Request.ID, f.Bound)
		}
		if f.Request.Rate > 10500 {
			t.Fatalf("flow %d rate %v too high for a loose target", f.Request.ID, f.Request.Rate)
		}
	}

	reqs, cfg = mk(37 * time.Millisecond)
	c, err = PlanForDelay(reqs, cfg)
	if err != nil {
		t.Fatalf("PlanForDelay(37ms): %v", err)
	}
	var maxRate float64
	for _, f := range c.Flows() {
		if f.Bound > 37*time.Millisecond {
			t.Fatalf("flow %d bound %v exceeds 37ms target", f.Request.ID, f.Bound)
		}
		if f.Request.Rate > maxRate {
			maxRate = f.Request.Rate
		}
	}
	if maxRate < 11000 {
		t.Fatalf("tight target should force high rates, max = %v", maxRate)
	}

	// An impossible target must be rejected.
	reqs, cfg = mk(5 * time.Millisecond)
	if _, err := PlanForDelay(reqs, cfg); !errors.Is(err, ErrTargetInfeasible) {
		t.Fatalf("impossible target: err = %v", err)
	}
}

func TestPlanForDelayEmpty(t *testing.T) {
	c, err := PlanForDelay(nil, Config{})
	if err != nil {
		t.Fatalf("PlanForDelay(nil): %v", err)
	}
	if len(c.Flows()) != 0 {
		t.Fatal("expected empty controller")
	}
}

func TestMaxExchangeOverride(t *testing.T) {
	// A larger piconet-wide Xi (e.g. BE exchanges with DH5) raises x.
	cfg := Config{MaxExchange: 10 * 625 * time.Microsecond} // DH5+DH5
	c := NewController(cfg)
	pf, err := c.Admit(paperRequest(1, 1, piconet.Up, 8800))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if pf.X != 6250*time.Microsecond {
		t.Fatalf("x = %v, want 6.25ms (10 slots)", pf.X)
	}
}

func BenchmarkFig2DetermineX(b *testing.B) {
	xi := 3750 * time.Microsecond
	sec := 144.0 / 8800.0
	interval := time.Duration(sec * float64(time.Second))
	streams := make([]Stream, 6)
	for i := range streams {
		streams[i] = Stream{Interval: interval, Exchange: xi}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DetermineX(xi, streams, interval)
	}
}

func BenchmarkFig3Admission(b *testing.B) {
	reqs := []Request{
		paperRequest(1, 1, piconet.Up, 12800),
		paperRequest(2, 2, piconet.Down, 12800),
		paperRequest(3, 2, piconet.Up, 12800),
		paperRequest(4, 3, piconet.Up, 12800),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewController(Config{})
		for _, r := range reqs {
			if _, err := c.Admit(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
