package admission

import (
	"math"
	"testing"
	"time"

	"bluegs/internal/piconet"
)

// TestBestEffortPlanClampsAtAnalyticCap: delay targets below the §4.1
// supportable minimum drive the lowest-priority stream to (nearly) the
// analytic rate cap eta_min/x = 12.8 kB/s, and never beyond it.
func TestBestEffortPlanClampsAtAnalyticCap(t *testing.T) {
	reqs := []DelayRequest{
		{Request: paperRequest(1, 1, piconet.Up, 0), Target: 28 * time.Millisecond},
		{Request: paperRequest(2, 2, piconet.Down, 0), Target: 28 * time.Millisecond},
		{Request: paperRequest(3, 2, piconet.Up, 0), Target: 28 * time.Millisecond},
		{Request: paperRequest(4, 3, piconet.Up, 0), Target: 28 * time.Millisecond},
	}
	ctrl, err := PlanForDelayBestEffort(reqs, Config{MaxExchange: 3750 * time.Microsecond})
	if err != nil {
		t.Fatalf("PlanForDelayBestEffort: %v", err)
	}
	const rateCap = 12800.0 // eta_min / x_3 = 144B / 11.25ms
	var lowest *PlannedFlow
	for _, pf := range ctrl.Flows() {
		if pf.Request.Rate > rateCap+1 {
			t.Fatalf("flow %d rate %.1f exceeds the analytic rateCap %.0f",
				pf.Request.ID, pf.Request.Rate, rateCap)
		}
		if !Feasible(pf.X, pf.Params.Interval) {
			t.Fatalf("flow %d infeasible in clamped plan", pf.Request.ID)
		}
		if lowest == nil || pf.Priority > lowest.Priority {
			lowest = pf
		}
	}
	// The lowest-priority stream is pinned against the cap (within the
	// planner's convergence tolerance) because its target is unreachable.
	if math.Abs(lowest.Request.Rate-rateCap) > rateCap*0.02 {
		t.Fatalf("lowest stream rate %.1f, want ~%.0f (clamped)", lowest.Request.Rate, rateCap)
	}
	// Its achieved bound is the §4.1 supportable minimum, not the target.
	if lowest.Bound < 36*time.Millisecond || lowest.Bound > 37*time.Millisecond {
		t.Fatalf("lowest stream bound %v, want ~36.25ms", lowest.Bound)
	}
}

// TestBestEffortPlanMeetsReachableTargets: targets above the supportable
// minimum are met exactly, matching the strict planner.
func TestBestEffortPlanMeetsReachableTargets(t *testing.T) {
	mk := func() []DelayRequest {
		return []DelayRequest{
			{Request: paperRequest(1, 1, piconet.Up, 0), Target: 40 * time.Millisecond},
			{Request: paperRequest(2, 2, piconet.Down, 0), Target: 40 * time.Millisecond},
			{Request: paperRequest(3, 2, piconet.Up, 0), Target: 40 * time.Millisecond},
			{Request: paperRequest(4, 3, piconet.Up, 0), Target: 40 * time.Millisecond},
		}
	}
	cfg := Config{MaxExchange: 3750 * time.Microsecond}
	clamped, err := PlanForDelayBestEffort(mk(), cfg)
	if err != nil {
		t.Fatalf("PlanForDelayBestEffort: %v", err)
	}
	strict, err := PlanForDelay(mk(), cfg)
	if err != nil {
		t.Fatalf("PlanForDelay: %v", err)
	}
	for _, pf := range clamped.Flows() {
		if pf.Bound > 40*time.Millisecond {
			t.Fatalf("flow %d bound %v exceeds the reachable target", pf.Request.ID, pf.Bound)
		}
		ref, ok := strict.Find(pf.Request.ID)
		if !ok {
			t.Fatalf("flow %d missing from strict plan", pf.Request.ID)
		}
		// Both planners should land in the same neighbourhood (the
		// clamped planner may overshoot slightly due to its growth
		// steps, never undershoot feasibility).
		if pf.Request.Rate < ref.Request.Rate*0.98 {
			t.Fatalf("flow %d clamped rate %.1f far below strict %.1f",
				pf.Request.ID, pf.Request.Rate, ref.Request.Rate)
		}
	}
}
