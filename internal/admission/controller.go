package admission

import (
	"fmt"
	"sort"
	"time"

	"bluegs/internal/gs"
	"bluegs/internal/piconet"
	"bluegs/internal/sco"
)

// PlannedFlow is an admitted flow together with its polling plan and
// Guaranteed Service export.
type PlannedFlow struct {
	// Request is the admitted request.
	Request Request
	// Params are the derived polling parameters.
	Params Params
	// Priority is the flow's poll priority; 1 is highest. A piggybacked
	// pair shares one priority.
	Priority int
	// X is the worst-case lag between a planned poll and its execution
	// (paper Fig. 2).
	X time.Duration
	// Terms is the exported Guaranteed Service error-term pair:
	// C = eta_min, D = X.
	Terms gs.ErrorTerms
	// Bound is the delay bound at the requested rate.
	Bound time.Duration
	// Counterpart is the oppositely-directed flow on the same slave this
	// flow shares polls with (None if unpaired).
	Counterpart piconet.FlowID
	// Primary reports whether this flow drives the pair's poll planning
	// (the flow with the smaller poll interval; always true when
	// unpaired).
	Primary bool
}

// group is one poll stream: a primary flow and an optional piggybacked
// counterpart.
type group struct {
	primary   *PlannedFlow
	secondary *PlannedFlow
}

// stream returns the group's Fig. 2 stream parameters. A pair's exchange
// carries maximal segments in both directions.
func (g *group) stream() Stream {
	ex := g.primary.Params.Exchange
	if g.secondary != nil {
		ex = pairExchangeTime(g.primary.Params.MaxSegmentSlots, g.secondary.Params.MaxSegmentSlots)
	}
	return Stream{Interval: g.primary.Params.Interval, Exchange: ex}
}

// flows returns the group's members, primary first.
func (g *group) flows() []*PlannedFlow {
	if g.secondary == nil {
		return []*PlannedFlow{g.primary}
	}
	return []*PlannedFlow{g.primary, g.secondary}
}

// Controller runs Guaranteed Service admission control for one piconet. It
// maintains the accepted flow set with its priority assignment and
// recomputes the assignment on every admission per the paper's Fig. 3
// routine. The zero value is not usable; create with NewController.
type Controller struct {
	cfg Config
	// groups holds the accepted poll streams in priority order
	// (groups[0] has priority 1).
	groups []*group
	// piggyback enables the pairing optimisation of Fig. 3; disabling it
	// reproduces the naive routine (each flow its own poll stream) for
	// the paper's "piggybacking accepts more flows" comparison.
	piggyback bool
}

// ControllerOption configures a Controller.
type ControllerOption func(*Controller)

// WithoutPiggybacking disables the pairing of oppositely-directed flows,
// for comparison experiments.
func WithoutPiggybacking() ControllerOption {
	return func(c *Controller) { c.piggyback = false }
}

// NewController returns an empty admission controller.
func NewController(cfg Config, opts ...ControllerOption) *Controller {
	c := &Controller{cfg: cfg, piggyback: true}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Flows returns the admitted flows in priority order (pairs adjacent,
// primary first).
func (c *Controller) Flows() []*PlannedFlow {
	var out []*PlannedFlow
	for _, g := range c.groups {
		out = append(out, g.flows()...)
	}
	return out
}

// Find returns the planned flow with the given id.
func (c *Controller) Find(id piconet.FlowID) (*PlannedFlow, bool) {
	for _, g := range c.groups {
		for _, f := range g.flows() {
			if f.Request.ID == id {
				return f, true
			}
		}
	}
	return nil, false
}

// maxExchange returns the piconet-wide Xi over the given groups, honouring
// the configured override.
func (c *Controller) maxExchange(groups []*group) time.Duration {
	if c.cfg.MaxExchange > 0 {
		return c.cfg.MaxExchange
	}
	var maxEx time.Duration
	for _, g := range groups {
		if ex := g.stream().Exchange; ex > maxEx {
			maxEx = ex
		}
	}
	return maxEx
}

// Admit runs the Fig. 3 admission routine for a new request. On success the
// controller's flow set and priorities are updated and the planned flow is
// returned; on rejection the controller is left unchanged and the error
// wraps ErrRejected.
func (c *Controller) Admit(req Request) (*PlannedFlow, error) {
	if _, dup := c.Find(req.ID); dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateFlow, req.ID)
	}
	params, err := DeriveParams(req, c.cfg)
	if err != nil {
		return nil, err
	}
	for _, g := range c.groups {
		for _, f := range g.flows() {
			if f.Request.Slave == req.Slave && f.Request.Dir == req.Dir {
				return nil, fmt.Errorf("%w: slave %d already has a %v GS flow",
					ErrBadRequest, req.Slave, req.Dir)
			}
		}
	}

	newFlow := &PlannedFlow{Request: req, Params: params}

	// Step b: P = accepted flows + the new one, with initial priority
	// values (existing flows keep theirs; the new flow inherits its
	// counterpart's, or gets the lowest).
	type item struct {
		g        *group
		initPrio int
	}
	var items []item
	// Rebuild groups from copies so rejection leaves the controller
	// untouched.
	all := make([]*PlannedFlow, 0, len(c.Flows())+1)
	for _, f := range c.Flows() {
		cp := *f
		all = append(all, &cp)
	}
	all = append(all, newFlow)

	groups, err := c.pairUp(all)
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		// A group's initial priority is that of any existing member
		// (so a new flow paired with an accepted one inherits its
		// counterpart's); a group of only the new flow gets the value
		// after the current lowest.
		prio := 0
		for _, f := range g.flows() {
			if f != newFlow && f.Priority > 0 {
				prio = f.Priority
				break
			}
		}
		if prio == 0 {
			prio = len(c.groups) + 1
		}
		items = append(items, item{g: g, initPrio: prio})
	}

	// SCO links act as an implicit highest-priority stream and bound the
	// largest schedulable exchange.
	scoSt, err := c.cfg.scoStreams()
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		if err := c.cfg.checkSCOWindow(g.stream().Exchange); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrRejected, err)
		}
	}

	// Step e: assign priorities from lowest (value card(P)) to highest,
	// scanning candidates in descending initial priority so as few flows
	// as possible change priority.
	sort.SliceStable(items, func(i, j int) bool { return items[i].initPrio > items[j].initPrio })
	xi := c.maxExchange(groups)
	remaining := items
	assignedRev := make([]*group, 0, len(items)) // lowest priority first
	for len(remaining) > 0 {
		found := -1
		for idx, cand := range remaining {
			others := make([]Stream, 0, len(remaining)-1+len(scoSt))
			others = append(others, scoSt...)
			for j, o := range remaining {
				if j != idx {
					others = append(others, o.g.stream())
				}
			}
			st := cand.g.stream()
			x := DetermineX(xi, others, st.Interval)
			if Feasible(x, st.Interval) {
				found = idx
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("%w: no priority assignment satisfies x <= t for flow %d",
				ErrRejected, req.ID)
		}
		assignedRev = append(assignedRev, remaining[found].g)
		remaining = append(remaining[:found], remaining[found+1:]...)
	}

	// Reverse into priority order and finalise.
	ordered := make([]*group, len(assignedRev))
	for i, g := range assignedRev {
		ordered[len(assignedRev)-1-i] = g
	}
	if err := c.finalize(ordered, xi); err != nil {
		return nil, err
	}
	c.groups = ordered
	admitted, _ := c.Find(req.ID)
	return admitted, nil
}

// clone returns a deep copy of the controller: trial admissions against
// the copy leave the original untouched.
func (c *Controller) clone() *Controller {
	n := &Controller{cfg: c.cfg, piggyback: c.piggyback}
	for _, g := range c.groups {
		cp := &group{}
		p := *g.primary
		cp.primary = &p
		if g.secondary != nil {
			s := *g.secondary
			cp.secondary = &s
		}
		n.groups = append(n.groups, cp)
	}
	return n
}

// AdmitForDelay is the online form of the Guaranteed Service negotiation:
// the request names a delay target instead of a rate, and the controller
// picks the smallest rate R whose resulting bound meets the target against
// the currently accepted flow set (the exported C/D terms shift as the
// priority assignment changes, so the choice iterates). On success the
// flow is installed exactly as Admit would install it; on rejection —
// either infeasibility of the Fig. 3 routine at some trial rate or a
// target no rate can meet — the controller is left unchanged and the
// error wraps ErrRejected.
func (c *Controller) AdmitForDelay(dr DelayRequest) (*PlannedFlow, error) {
	if err := dr.Request.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dr.Target <= 0 {
		return nil, fmt.Errorf("%w: non-positive delay target", ErrBadRequest)
	}
	// Under derating the reserved rate must at least cover the token
	// rate after the interference tax, and the rate the bound formula
	// asks for is an effective rate — gross it up by 1/s to reserve.
	// Bridge hops compound the FH term with their residency duty cycle
	// (Request.SuccessScale), so a part-time slave reserves enough rate
	// to drain its queue within its windows alone.
	s := c.cfg.successProbFor(dr.Request)
	rate := dr.Request.Spec.TokenRate / s
	const maxIters = 60
	for iter := 0; iter < maxIters; iter++ {
		trial := c.clone()
		req := dr.Request
		req.Rate = rate
		pf, err := trial.Admit(req)
		if err != nil {
			// Rates only grow across iterations, so an infeasible
			// trial can never become feasible later.
			return nil, err
		}
		if pf.Bound <= dr.Target {
			c.groups = trial.groups
			admitted, _ := c.Find(req.ID)
			return admitted, nil
		}
		needed, err := gs.RequiredRate(dr.Request.Spec, dr.Target, pf.Terms)
		if err == nil {
			needed /= s
		}
		if err != nil || needed <= rate {
			// The target sits below the exported D (no rate closes
			// the gap directly) or the formula stalled because x
			// grew with the rate: nudge upward to make progress.
			needed = rate * 1.05
		}
		rate = needed
	}
	return nil, fmt.Errorf("%w: no rate meets the %v target for flow %d",
		ErrRejected, dr.Target, dr.Request.ID)
}

// Renegotiate re-runs the online rate negotiation for an already-accepted
// flow at a new delay target: mid-call tightening (a smaller target
// reserves a higher rate) or loosening (capacity is handed back). The
// whole exchange is atomic — it trials release-plus-readmission on a
// clone, so a rejection leaves the controller, and the flow's existing
// contract, exactly as they were.
func (c *Controller) Renegotiate(id piconet.FlowID, target time.Duration) (*PlannedFlow, error) {
	pf, ok := c.Find(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFlow, id)
	}
	trial := c.clone()
	if err := trial.Remove(id); err != nil {
		return nil, err
	}
	req := pf.Request
	req.Rate = 0
	if _, err := trial.AdmitForDelay(DelayRequest{Request: req, Target: target}); err != nil {
		return nil, err
	}
	c.groups = trial.groups
	admitted, _ := c.Find(id)
	return admitted, nil
}

// SetSCOLinks replaces the configured synchronous links and recomputes the
// accepted flows' x values, error terms and bounds under the new
// reservation pattern, preserving their relative priority order. If the
// accepted set is no longer schedulable with the new links — a newly
// arriving voice call may not fit around the existing Guaranteed Service
// contracts — the controller is left unchanged and the error wraps
// ErrRejected.
func (c *Controller) SetSCOLinks(links []sco.Channel) error {
	oldLinks := c.cfg.SCOLinks
	c.cfg.SCOLinks = links
	var kept []*PlannedFlow
	for _, f := range c.Flows() {
		cp := *f
		kept = append(kept, &cp)
	}
	groups, err := c.pairUp(kept)
	if err == nil {
		sort.SliceStable(groups, func(i, j int) bool {
			return groups[i].primary.Priority < groups[j].primary.Priority
		})
		err = c.finalize(groups, c.maxExchange(groups))
	}
	if err != nil {
		c.cfg.SCOLinks = oldLinks
		return err
	}
	c.groups = groups
	return nil
}

// SCOLinks returns the currently configured synchronous links.
func (c *Controller) SCOLinks() []sco.Channel {
	return append([]sco.Channel(nil), c.cfg.SCOLinks...)
}

// SetSuccessProb replaces the interference derating input — the
// effective per-exchange success probability s — and recomputes the
// accepted flows' error terms and bounds against it, preserving their
// relative priority order (x values do not move: poll intervals depend on
// the reserved raw rates, which stay as contracted). Scatternet churn
// calls this when piconets join or leave: a join tightens s and loosens
// every bound, a leave relaxes it. If some accepted flow's derated rate
// R·s no longer covers its token rate the new estimate is unservable for
// the existing contracts — the controller is left unchanged and the
// error wraps ErrRejected, so the caller can record the refused
// re-derate.
func (c *Controller) SetSuccessProb(s float64) error {
	old := c.cfg.SuccessProb
	c.cfg.SuccessProb = s
	var kept []*PlannedFlow
	for _, f := range c.Flows() {
		cp := *f
		kept = append(kept, &cp)
	}
	groups, err := c.pairUp(kept)
	if err == nil {
		sort.SliceStable(groups, func(i, j int) bool {
			return groups[i].primary.Priority < groups[j].primary.Priority
		})
		err = c.finalize(groups, c.maxExchange(groups))
	}
	if err != nil {
		c.cfg.SuccessProb = old
		return err
	}
	c.groups = groups
	return nil
}

// SuccessProb returns the success probability admission currently
// derates against (1 on the ideal channel).
func (c *Controller) SuccessProb() float64 { return c.cfg.successProb() }

// Remove drops a flow from the accepted set. Remaining flows keep their
// relative priority order; their x values and bounds are recomputed (they
// can only improve).
func (c *Controller) Remove(id piconet.FlowID) error {
	if _, ok := c.Find(id); !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, id)
	}
	var kept []*PlannedFlow
	for _, f := range c.Flows() {
		if f.Request.ID != id {
			cp := *f
			kept = append(kept, &cp)
		}
	}
	groups, err := c.pairUp(kept)
	if err != nil {
		return err
	}
	// Preserve relative order by previous priority.
	sort.SliceStable(groups, func(i, j int) bool {
		return groups[i].primary.Priority < groups[j].primary.Priority
	})
	if err := c.finalize(groups, c.maxExchange(groups)); err != nil {
		return err
	}
	c.groups = groups
	return nil
}

// pairUp groups flows into poll streams, pairing oppositely-directed flows
// on the same slave when piggybacking is enabled. The pair's primary is the
// flow with the smaller poll interval (larger rate demand), per §3.1.4.
func (c *Controller) pairUp(flows []*PlannedFlow) ([]*group, error) {
	bySlave := make(map[piconet.SlaveID][]*PlannedFlow)
	var order []piconet.SlaveID
	for _, f := range flows {
		if len(bySlave[f.Request.Slave]) == 0 {
			order = append(order, f.Request.Slave)
		}
		bySlave[f.Request.Slave] = append(bySlave[f.Request.Slave], f)
	}
	var groups []*group
	for _, slave := range order {
		fl := bySlave[slave]
		if c.piggyback && len(fl) == 2 && fl[0].Request.Dir != fl[1].Request.Dir {
			primary, secondary := fl[0], fl[1]
			if secondary.Params.Interval < primary.Params.Interval {
				primary, secondary = secondary, primary
			}
			primary.Primary = true
			secondary.Primary = false
			primary.Counterpart = secondary.Request.ID
			secondary.Counterpart = primary.Request.ID
			groups = append(groups, &group{primary: primary, secondary: secondary})
			continue
		}
		for _, f := range fl {
			f.Primary = true
			f.Counterpart = piconet.None
			groups = append(groups, &group{primary: f})
		}
	}
	return groups, nil
}

// finalize recomputes x, priorities, error terms and bounds for groups in
// priority order, verifying feasibility.
func (c *Controller) finalize(ordered []*group, xi time.Duration) error {
	scoSt, err := c.cfg.scoStreams()
	if err != nil {
		return err
	}
	for i, g := range ordered {
		if err := c.cfg.checkSCOWindow(g.stream().Exchange); err != nil {
			return fmt.Errorf("%w: %w", ErrRejected, err)
		}
		higher := make([]Stream, 0, i+len(scoSt))
		higher = append(higher, scoSt...)
		for _, h := range ordered[:i] {
			higher = append(higher, h.stream())
		}
		st := g.stream()
		x := DetermineX(xi, higher, st.Interval)
		if !Feasible(x, st.Interval) {
			return fmt.Errorf("%w: finalize: x=%v > t=%v at priority %d",
				ErrRejected, x, st.Interval, i+1)
		}
		for _, f := range g.flows() {
			s := c.cfg.successProbFor(f.Request)
			f.Priority = i + 1
			f.X = x
			f.Terms = DeratedErrorTerms(f.Params.EtaMin, x, s)
			// Interference taxes the reserved rate: only R·s of it
			// arrives as fluid service, and the bound must be honest
			// about that. A flow whose derated rate cannot cover its
			// token rate would queue without bound — reject it (the
			// online negotiators compensate by reserving R >= r/s).
			eff := f.Request.Rate * s
			if tr := f.Request.Spec.TokenRate; eff < tr {
				if eff >= tr*(1-1e-9) {
					eff = tr // float rounding of an exact r/s reservation
				} else {
					return fmt.Errorf("%w: flow %d: derated rate %.1f×%.4f = %.1f below token rate %.1f",
						ErrRejected, f.Request.ID, f.Request.Rate, s, eff, tr)
				}
			}
			bound, err := gs.DelayBound(f.Request.Spec, eff, f.Terms)
			if err != nil {
				return fmt.Errorf("admission: bound for flow %d: %w", f.Request.ID, err)
			}
			f.Bound = bound
		}
	}
	return nil
}
