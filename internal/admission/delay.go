package admission

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bluegs/internal/gs"
)

// ErrTargetInfeasible reports that no rate assignment meets all delay
// targets.
var ErrTargetInfeasible = errors.New("admission: delay targets infeasible")

// DelayRequest is a flow request expressed as a desired delay bound instead
// of an explicit rate (the receiver's side of the Guaranteed Service
// negotiation: it picks R from the exported C/D terms, paper §2).
type DelayRequest struct {
	// Request carries everything but the rate (Rate is ignored).
	Request Request
	// Target is the requested delay bound.
	Target time.Duration
}

// SplitBudget statically divides an end-to-end delay budget across the
// hops of a multi-hop route: equal shares, with the division remainder
// granted to the first hop so the shares sum exactly to the budget. Each
// share then becomes one hop's AdmitForDelay target, decomposing the
// end-to-end guarantee into per-piconet contracts.
func SplitBudget(target time.Duration, hops int) []time.Duration {
	if hops <= 0 || target <= 0 {
		return nil
	}
	out := make([]time.Duration, hops)
	share := target / time.Duration(hops)
	for i := range out {
		out[i] = share
	}
	out[0] += target - share*time.Duration(hops)
	return out
}

// PlanForDelay finds, by fixed-point iteration, minimal per-flow rates such
// that every flow's Guaranteed Service delay bound meets its target under
// the resulting priority assignment, and returns the final admission plan.
//
// The circularity it resolves: the bound depends on the exported D = x_i,
// which depends on every flow's poll interval t = eta/R, which depends on
// the rates chosen from the bounds. Iteration starts from the legal minimum
// R = r and raises rates until all targets hold (rates only rise, so the
// iteration is monotone; it fails if a target remains unmet).
func PlanForDelay(reqs []DelayRequest, cfg Config, opts ...ControllerOption) (*Controller, error) {
	if len(reqs) == 0 {
		return NewController(cfg, opts...), nil
	}
	rates := make([]float64, len(reqs))
	for i, dr := range reqs {
		if err := dr.Request.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("%w: flow %d: %v", ErrBadRequest, dr.Request.ID, err)
		}
		// The legal minimum under derating: the reserved rate must
		// still cover the token rate after the interference tax (and,
		// for bridge hops, the residency duty cycle).
		rates[i] = dr.Request.Spec.TokenRate / cfg.successProbFor(dr.Request)
	}

	const maxIters = 50
	var ctrl *Controller
	for iter := 0; iter < maxIters; iter++ {
		c := NewController(cfg, opts...)
		for i, dr := range reqs {
			req := dr.Request
			req.Rate = rates[i]
			if _, err := c.Admit(req); err != nil {
				return nil, fmt.Errorf("%w: flow %d at iteration %d: %v",
					ErrTargetInfeasible, req.ID, iter, err)
			}
		}
		// Check targets and raise rates where the bound is too loose.
		allMet := true
		for i, dr := range reqs {
			pf, ok := c.Find(dr.Request.ID)
			if !ok {
				return nil, fmt.Errorf("%w: flow %d lost", ErrTargetInfeasible, dr.Request.ID)
			}
			if pf.Bound <= dr.Target {
				continue
			}
			allMet = false
			needed, err := gs.RequiredRate(dr.Request.Spec, dr.Target, pf.Terms)
			if err != nil {
				return nil, fmt.Errorf("%w: flow %d: %v", ErrTargetInfeasible, dr.Request.ID, err)
			}
			// RequiredRate speaks in effective rate; reserve 1/s more.
			needed /= cfg.successProbFor(dr.Request)
			// Rates must be monotone non-decreasing for convergence.
			if needed > rates[i] {
				rates[i] = needed
			} else {
				// The bound misses the target yet the formula
				// asks for no more rate: x grew due to other
				// flows. Nudge upward to make progress.
				rates[i] = math.Nextafter(rates[i], math.Inf(1)) * 1.01
			}
		}
		if allMet {
			ctrl = c
			break
		}
	}
	if ctrl == nil {
		return nil, fmt.Errorf("%w: no convergence after %d iterations", ErrTargetInfeasible, maxIters)
	}
	return ctrl, nil
}

// PlanForDelayBestEffort is the evaluation harness's variant of
// PlanForDelay: targets that are achievable are met exactly; a flow whose
// target is below the supportable minimum is instead driven to (close to)
// its highest feasible rate, yielding the tightest achievable bound. The
// paper's Fig. 5 sweeps delay requirements below the §4.1 supportable
// minimum of the lowest-priority flow, which only makes sense under this
// clamping interpretation (see EXPERIMENTS.md).
func PlanForDelayBestEffort(reqs []DelayRequest, cfg Config, opts ...ControllerOption) (*Controller, error) {
	if len(reqs) == 0 {
		return NewController(cfg, opts...), nil
	}
	rates := make([]float64, len(reqs))
	for i, dr := range reqs {
		if err := dr.Request.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("%w: flow %d: %v", ErrBadRequest, dr.Request.ID, err)
		}
		rates[i] = dr.Request.Spec.TokenRate / cfg.successProbFor(dr.Request)
	}
	admitAll := func(rs []float64) (*Controller, error) {
		c := NewController(cfg, opts...)
		for i, dr := range reqs {
			req := dr.Request
			req.Rate = rs[i]
			if _, err := c.Admit(req); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	lastGood, err := admitAll(rates)
	if err != nil {
		return nil, fmt.Errorf("%w: infeasible even at token rates: %v", ErrTargetInfeasible, err)
	}
	goodRates := append([]float64(nil), rates...)

	const maxIters = 120
	for iter := 0; iter < maxIters; iter++ {
		// Propose rates that would meet the remaining targets.
		proposal := append([]float64(nil), goodRates...)
		progress := false
		for i, dr := range reqs {
			pf, ok := lastGood.Find(dr.Request.ID)
			if !ok {
				return nil, fmt.Errorf("%w: flow %d lost", ErrTargetInfeasible, dr.Request.ID)
			}
			if pf.Bound <= dr.Target {
				continue
			}
			needed, err := gs.RequiredRate(dr.Request.Spec, dr.Target, pf.Terms)
			if err != nil {
				// Target below D: push the rate as high as the
				// growth step allows.
				needed = goodRates[i] * 1.5
			} else {
				// RequiredRate speaks in effective rate; reserve
				// 1/s more to deliver it through the interference.
				needed /= cfg.successProbFor(dr.Request)
			}
			if needed <= goodRates[i] {
				needed = goodRates[i] * 1.02
			}
			// Bound the growth per iteration so backtracking can
			// find the feasibility edge.
			if limit := goodRates[i] * 1.5; needed > limit {
				needed = limit
			}
			if needed > goodRates[i]*1.0005 {
				proposal[i] = needed
				progress = true
			}
		}
		if !progress {
			return lastGood, nil
		}
		// Backtrack toward the last feasible rates if rejected.
		trial := proposal
		feasible := (*Controller)(nil)
		for bt := 0; bt < 20; bt++ {
			c, err := admitAll(trial)
			if err == nil {
				feasible = c
				break
			}
			next := make([]float64, len(trial))
			moved := false
			for i := range trial {
				next[i] = (trial[i] + goodRates[i]) / 2
				if next[i] > goodRates[i]*1.0001 {
					moved = true
				}
			}
			if !moved {
				break
			}
			trial = next
		}
		if feasible == nil {
			return lastGood, nil // pinned at the feasibility edge
		}
		lastGood = feasible
		for i := range goodRates {
			if pf, ok := feasible.Find(reqs[i].Request.ID); ok {
				goodRates[i] = pf.Request.Rate
			}
		}
	}
	return lastGood, nil
}
