package admission_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
	"bluegs/internal/tspec"
)

func TestRetryBudget(t *testing.T) {
	if k := admission.RetryBudget(1); k != 0 {
		t.Fatalf("ideal channel: budget %d, want 0", k)
	}
	// p = 0.1: 0.1^5 = 1e-5, so K = 5 covers the tail exactly.
	if k := admission.RetryBudget(0.9); k != 5 {
		t.Fatalf("s=0.9: budget %d, want 5", k)
	}
	// The budget grows as the channel worsens.
	prev := 0
	for _, s := range []float64{0.99, 0.9, 0.7, 0.5} {
		k := admission.RetryBudget(s)
		if k < prev {
			t.Fatalf("s=%g: budget %d shrank (prev %d)", s, k, prev)
		}
		prev = k
	}
}

func TestDeratedErrorTermsReduceToIdeal(t *testing.T) {
	x := 10 * time.Millisecond
	ideal := admission.ErrorTerms(176, x)
	if got := admission.DeratedErrorTerms(176, x, 1); got != ideal {
		t.Fatalf("s=1 derated terms %+v != ideal %+v", got, ideal)
	}
	der := admission.DeratedErrorTerms(176, x, 0.9)
	if der.C <= ideal.C || der.D != ideal.D {
		t.Fatalf("s=0.9 terms %+v must inflate C only (ideal %+v)", der, ideal)
	}
}

// TestDeratedAdmissionInflatesRateAndBound: the same delay negotiation on
// a derated controller reserves a higher raw rate and still reports a
// bound within the target, and rejects requests whose derated rate cannot
// cover the token rate.
func TestDeratedAdmissionInflatesRateAndBound(t *testing.T) {
	target := 40 * time.Millisecond
	s := 1 - radio.ExpectedCollisionProb(7, 79) // 8-piconet scatternet
	ideal := admission.NewController(admission.Config{MaxExchange: baseband.SlotsToDuration(6)})
	derated := admission.NewController(admission.Config{
		MaxExchange: baseband.SlotsToDuration(6),
		SuccessProb: s,
	})
	pfIdeal, err := ideal.AdmitForDelay(delayReq(1, 1, piconet.Up, target))
	if err != nil {
		t.Fatalf("ideal admit: %v", err)
	}
	pfDer, err := derated.AdmitForDelay(delayReq(1, 1, piconet.Up, target))
	if err != nil {
		t.Fatalf("derated admit: %v", err)
	}
	if pfDer.Bound > target {
		t.Fatalf("derated bound %v exceeds target %v", pfDer.Bound, target)
	}
	if pfDer.Request.Rate <= pfIdeal.Request.Rate {
		t.Fatalf("derated rate %.1f not above ideal %.1f", pfDer.Request.Rate, pfIdeal.Request.Rate)
	}
	// The reservation must at least gross up the token rate by 1/s.
	tr := pfDer.Request.Spec.TokenRate
	if pfDer.Request.Rate*s < tr*(1-1e-9) {
		t.Fatalf("derated rate %.1f×%.4f below token rate %.1f", pfDer.Request.Rate, s, tr)
	}
	// A fixed-rate request at exactly the token rate is no longer
	// servable on the derated channel.
	_, err = derated.Admit(admission.Request{
		ID: 9, Slave: 5, Dir: piconet.Up,
		Spec:    tspec.CBR(20*time.Millisecond, 144, 176),
		Rate:    tspec.CBR(20*time.Millisecond, 144, 176).TokenRate,
		Allowed: baseband.PaperTypes,
	})
	if !errors.Is(err, admission.ErrRejected) {
		t.Fatalf("token-rate request on derated channel: err=%v, want ErrRejected", err)
	}
}

// TestSetSuccessProb: re-derating recomputes bounds in place (a leave
// tightens them, a join loosens them back), preserves priorities, and
// refuses an estimate the accepted contracts cannot survive, leaving
// state unchanged. Flows are admitted with 4-scatternet derating so the
// re-derates move within the reserved headroom — exactly how the runner
// uses it (plan for the worst co-location, relax as piconets leave).
func TestSetSuccessProb(t *testing.T) {
	s4 := 1 - radio.ExpectedCollisionProb(3, 79) // 4 co-located piconets
	s2 := 1 - radio.ExpectedCollisionProb(1, 79) // 2 co-located piconets
	ctrl := admission.NewController(admission.Config{
		MaxExchange: baseband.SlotsToDuration(6),
		SuccessProb: s4,
	})
	// Oppositely-directed flows on one slave: they piggyback into one
	// poll stream, leaving feasibility headroom for the inflated rates.
	var ids []piconet.FlowID
	for i, ep := range []struct {
		slave piconet.SlaveID
		dir   piconet.Direction
	}{{1, piconet.Up}, {1, piconet.Down}} {
		id := piconet.FlowID(i + 1)
		if _, err := ctrl.AdmitForDelay(delayReq(id, ep.slave, ep.dir, 40*time.Millisecond)); err != nil {
			t.Fatalf("admit %d: %v", id, err)
		}
		ids = append(ids, id)
	}
	boundAt := func(id piconet.FlowID) time.Duration {
		pf, ok := ctrl.Find(id)
		if !ok {
			t.Fatalf("flow %d lost", id)
		}
		return pf.Bound
	}
	prioAt := func(id piconet.FlowID) int {
		pf, _ := ctrl.Find(id)
		return pf.Priority
	}
	bounds4 := map[piconet.FlowID]time.Duration{}
	prios := map[piconet.FlowID]int{}
	for _, id := range ids {
		bounds4[id] = boundAt(id)
		prios[id] = prioAt(id)
	}
	// Two piconets leave: the estimate relaxes and every bound tightens.
	if err := ctrl.SetSuccessProb(s2); err != nil {
		t.Fatalf("relax: %v", err)
	}
	if got := ctrl.SuccessProb(); math.Abs(got-s2) > 1e-12 {
		t.Fatalf("SuccessProb() = %g, want %g", got, s2)
	}
	for _, id := range ids {
		if boundAt(id) >= bounds4[id] {
			t.Fatalf("flow %d: bound %v did not tighten from %v", id, boundAt(id), bounds4[id])
		}
		if prioAt(id) != prios[id] {
			t.Fatalf("flow %d: priority moved %d -> %d", id, prios[id], prioAt(id))
		}
	}
	// They come back: bounds loosen to exactly the at-admission values.
	if err := ctrl.SetSuccessProb(s4); err != nil {
		t.Fatalf("tighten: %v", err)
	}
	for _, id := range ids {
		if boundAt(id) != bounds4[id] {
			t.Fatalf("flow %d: bound %v != at-admission %v after re-tighten", id, boundAt(id), bounds4[id])
		}
	}
	// An estimate so bad some reserved rate cannot cover its token
	// rate any more is refused and nothing moves.
	sBad := 1.0
	for _, id := range ids {
		pf, _ := ctrl.Find(id)
		if s := 0.99 * pf.Request.Spec.TokenRate / pf.Request.Rate; s < sBad {
			sBad = s
		}
	}
	if err := ctrl.SetSuccessProb(sBad); !errors.Is(err, admission.ErrRejected) {
		t.Fatalf("unservable re-derate (s=%g): err=%v, want ErrRejected", sBad, err)
	}
	if got := ctrl.SuccessProb(); math.Abs(got-s4) > 1e-12 {
		t.Fatalf("failed re-derate changed SuccessProb to %g", got)
	}
	for _, id := range ids {
		if boundAt(id) != bounds4[id] {
			t.Fatalf("flow %d: failed re-derate moved bound to %v", id, boundAt(id))
		}
	}
}
