package admission_test

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/tspec"
)

// Admitting the paper's four GS flows at the maximal rate: flows 2 and 3
// piggyback on one poll stream, so three streams carry four flows.
func ExampleController_Admit() {
	ctrl := admission.NewController(admission.Config{
		MaxExchange: baseband.SlotsToDuration(6),
	})
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	flows := []struct {
		id    piconet.FlowID
		slave piconet.SlaveID
		dir   piconet.Direction
	}{
		{1, 1, piconet.Up}, {2, 2, piconet.Down}, {3, 2, piconet.Up}, {4, 3, piconet.Up},
	}
	for _, f := range flows {
		pf, err := ctrl.Admit(admission.Request{
			ID: f.id, Slave: f.slave, Dir: f.dir,
			Spec: spec, Rate: 12800, Allowed: baseband.PaperTypes,
		})
		if err != nil {
			fmt.Println("rejected:", err)
			return
		}
		fmt.Printf("flow %d: priority %d, x=%v, bound=%v\n",
			f.id, pf.Priority, pf.X, pf.Bound)
	}
	// Output:
	// flow 1: priority 1, x=3.75ms, bound=28.75ms
	// flow 2: priority 2, x=7.5ms, bound=32.5ms
	// flow 3: priority 2, x=7.5ms, bound=32.5ms
	// flow 4: priority 3, x=11.25ms, bound=36.25ms
}

// The Fig. 2 fixed point by hand: a stream behind two identical streams at
// the paper's maximal rate waits up to three worst-case exchanges.
func ExampleDetermineX() {
	xi := baseband.SlotsToDuration(6) // DH3 both ways: 3.75ms
	interval := 11250 * time.Microsecond
	higher := []admission.Stream{
		{Interval: interval, Exchange: xi},
		{Interval: interval, Exchange: xi},
	}
	x := admission.DetermineX(xi, higher, interval)
	fmt.Println(x, "feasible:", admission.Feasible(x, interval))
	// Output: 11.25ms feasible: true
}
