package admission_test

import (
	"errors"
	"testing"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/sco"
	"bluegs/internal/tspec"
)

func delayReq(id piconet.FlowID, slave piconet.SlaveID, dir piconet.Direction,
	target time.Duration) admission.DelayRequest {
	return admission.DelayRequest{
		Request: admission.Request{
			ID: id, Slave: slave, Dir: dir,
			Spec:    tspec.CBR(20*time.Millisecond, 144, 176),
			Allowed: baseband.PaperTypes,
		},
		Target: target,
	}
}

// TestAdmitForDelayMeetsTarget: the online negotiation picks a rate whose
// bound meets the target, flow by flow, re-planning priorities each time.
func TestAdmitForDelayMeetsTarget(t *testing.T) {
	ctrl := admission.NewController(admission.Config{
		MaxExchange: baseband.SlotsToDuration(6),
	})
	target := 40 * time.Millisecond
	for i, ep := range []struct {
		slave piconet.SlaveID
		dir   piconet.Direction
	}{{1, piconet.Up}, {2, piconet.Down}, {2, piconet.Up}, {3, piconet.Up}} {
		pf, err := ctrl.AdmitForDelay(delayReq(piconet.FlowID(i+1), ep.slave, ep.dir, target))
		if err != nil {
			t.Fatalf("admit %d: %v", i+1, err)
		}
		if pf.Bound > target {
			t.Fatalf("flow %d: bound %v exceeds target %v", i+1, pf.Bound, target)
		}
		if pf.Request.Rate < pf.Request.Spec.TokenRate {
			t.Fatalf("flow %d: rate below token rate", i+1)
		}
	}
	if got := len(ctrl.Flows()); got != 4 {
		t.Fatalf("admitted %d flows, want 4", got)
	}
}

// TestAdmitForDelayRejectsLeavingStateUnchanged: an unmeetable target is
// refused and the accepted set is untouched.
func TestAdmitForDelayRejectsLeavingStateUnchanged(t *testing.T) {
	ctrl := admission.NewController(admission.Config{
		MaxExchange: baseband.SlotsToDuration(6),
	})
	if _, err := ctrl.AdmitForDelay(delayReq(1, 1, piconet.Up, 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	before := ctrl.Flows()
	// A 2 ms target sits below the exported D any priority could give.
	_, err := ctrl.AdmitForDelay(delayReq(2, 2, piconet.Up, 2*time.Millisecond))
	if !errors.Is(err, admission.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	after := ctrl.Flows()
	if len(after) != len(before) || after[0].Request.ID != 1 || after[0].Priority != before[0].Priority {
		t.Fatalf("rejection mutated the controller: %+v vs %+v", after, before)
	}
}

// TestSetSCOLinksRecomputesAndRollsBack: adding reservations re-derives
// every accepted flow's x and bound; an addition the flow set cannot
// survive is refused atomically.
func TestSetSCOLinksRecomputesAndRollsBack(t *testing.T) {
	// Direction-aware keeps the GS exchange at 4 slots so it fits HV3
	// windows.
	ctrl := admission.NewController(admission.Config{
		MaxExchange:    baseband.SlotsToDuration(4),
		DirectionAware: true,
	})
	pf, err := ctrl.AdmitForDelay(delayReq(1, 1, piconet.Up, 52*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	boundBefore := pf.Bound
	hv3, err := sco.NewChannel(baseband.TypeHV3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SetSCOLinks([]sco.Channel{hv3}); err != nil {
		t.Fatalf("one HV3 link should fit: %v", err)
	}
	pf1, _ := ctrl.Find(1)
	if pf1.Bound <= boundBefore {
		t.Fatalf("SCO interference must loosen the bound: %v -> %v", boundBefore, pf1.Bound)
	}
	// Three HV3 links leave a 0-slot ACL window: nothing schedules.
	three := []sco.Channel{hv3, hv3, hv3}
	if err := ctrl.SetSCOLinks(three); !errors.Is(err, admission.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	pfAfter, _ := ctrl.Find(1)
	if pfAfter.Bound != pf1.Bound || len(ctrl.SCOLinks()) != 1 {
		t.Fatal("failed SetSCOLinks must leave the controller unchanged")
	}
	// Dropping the link restores the tighter bound.
	if err := ctrl.SetSCOLinks(nil); err != nil {
		t.Fatal(err)
	}
	pfDropped, _ := ctrl.Find(1)
	if pfDropped.Bound != boundBefore {
		t.Fatalf("bound after drop %v, want %v", pfDropped.Bound, boundBefore)
	}
}
