package admission

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/tspec"
)

// randomStream draws a plausible poll stream.
func randomStream(rng *rand.Rand) Stream {
	return Stream{
		Interval: time.Duration(2+rng.Intn(40)) * time.Millisecond,
		Exchange: baseband.SlotsToDuration(2 + rng.Intn(9)),
	}
}

// TestPropertyDetermineXMonotoneInLoad: on the feasible region, adding a
// higher-priority stream never decreases x, and extra load never turns an
// infeasible stream feasible. (Among infeasible outcomes the raw values are
// not comparable: the algorithm stops at the first accumulation crossing t,
// which heavier load can reach earlier at a lower value — paper Fig. 2
// step f.)
func TestPropertyDetermineXMonotoneInLoad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xi := baseband.SlotsToDuration(2 + rng.Intn(9))
		own := time.Duration(5+rng.Intn(40)) * time.Millisecond
		var higher []Stream
		prev := DetermineX(xi, nil, own)
		if prev != xi {
			return false // with no competitors, x = Xi exactly
		}
		for i := 0; i < 4; i++ {
			higher = append(higher, randomStream(rng))
			x := DetermineX(xi, higher, own)
			if Feasible(x, own) && x < prev {
				return false
			}
			if !Feasible(prev, own) && Feasible(x, own) {
				return false // more load cannot restore feasibility
			}
			prev = x
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDetermineXMonotoneInXi: a larger piconet-wide worst exchange
// never decreases a feasible x and never turns an infeasible stream
// feasible.
func TestPropertyDetermineXMonotoneInXi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		own := time.Duration(5+rng.Intn(40)) * time.Millisecond
		var higher []Stream
		for i := 0; i < rng.Intn(4); i++ {
			higher = append(higher, randomStream(rng))
		}
		xiSmall := baseband.SlotsToDuration(2 + rng.Intn(5))
		xiLarge := xiSmall + baseband.SlotsToDuration(1+rng.Intn(5))
		xSmall := DetermineX(xiSmall, higher, own)
		xLarge := DetermineX(xiLarge, higher, own)
		if Feasible(xLarge, own) && xLarge < xSmall {
			return false
		}
		if !Feasible(xSmall, own) && Feasible(xLarge, own) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPiggybackingAcceptsSuperset: any flow sequence fully accepted
// without piggybacking is also fully accepted with it (pairing only frees
// capacity).
func TestPropertyPiggybackingAcceptsSuperset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var reqs []Request
		id := piconet.FlowID(1)
		for slave := piconet.SlaveID(1); slave <= 3; slave++ {
			for _, dir := range []piconet.Direction{piconet.Down, piconet.Up} {
				if rng.Intn(3) == 0 {
					continue
				}
				interval := time.Duration(15+rng.Intn(20)) * time.Millisecond
				spec := tspec.CBR(interval, 144, 176)
				reqs = append(reqs, Request{
					ID: id, Slave: slave, Dir: dir,
					Spec:    spec,
					Rate:    spec.TokenRate * (1 + rng.Float64()*0.45),
					Allowed: baseband.PaperTypes,
				})
				id++
			}
		}
		withoutOK := true
		ctrlNo := NewController(Config{MaxExchange: 3750 * time.Microsecond}, WithoutPiggybacking())
		for _, r := range reqs {
			if _, err := ctrlNo.Admit(r); err != nil {
				withoutOK = false
				break
			}
		}
		if !withoutOK {
			return true // nothing to compare
		}
		ctrlWith := NewController(Config{MaxExchange: 3750 * time.Microsecond})
		for _, r := range reqs {
			if _, err := ctrlWith.Admit(r); err != nil {
				return false // piggybacking rejected what pairing-free accepted
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(79))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAdmittedSetsAreFeasible: every accepted plan satisfies
// x <= t for all streams, bounds are finite and at least the fluid-model
// floor, and priorities are a permutation of 1..k.
func TestPropertyAdmittedSetsAreFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctrl := NewController(Config{MaxExchange: 3750 * time.Microsecond})
		id := piconet.FlowID(1)
		for i := 0; i < 6; i++ {
			slave := piconet.SlaveID(1 + rng.Intn(4))
			dir := piconet.Down
			if rng.Intn(2) == 0 {
				dir = piconet.Up
			}
			interval := time.Duration(10+rng.Intn(30)) * time.Millisecond
			maxSize := 100 + rng.Intn(250)
			minSize := 50 + rng.Intn(maxSize-60)
			spec := tspec.CBR(interval, minSize, maxSize)
			_, _ = ctrl.Admit(Request{
				ID: id, Slave: slave, Dir: dir,
				Spec:    spec,
				Rate:    spec.TokenRate * (1 + rng.Float64()*2),
				Allowed: baseband.PaperTypes,
			})
			id++
		}
		flows := ctrl.Flows()
		prios := map[int]bool{}
		for _, pf := range flows {
			if !Feasible(pf.X, pf.Params.Interval) {
				return false
			}
			if pf.Bound <= 0 {
				return false
			}
			fluidFloor := time.Duration(float64(pf.Request.Spec.MaxTransferUnit) /
				pf.Request.Rate * float64(time.Second))
			if pf.Bound < fluidFloor {
				return false
			}
			prios[pf.Priority] = true
		}
		// Priorities are contiguous 1..k (pairs share one).
		for p := 1; p <= len(prios); p++ {
			if !prios[p] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(83))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRemoveKeepsFeasibility: removing any admitted flow leaves a
// feasible plan with x values no worse than before for every survivor.
func TestPropertyRemoveKeepsFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctrl := NewController(Config{MaxExchange: 3750 * time.Microsecond})
		var admitted []piconet.FlowID
		for i := 0; i < 5; i++ {
			spec := tspec.CBR(time.Duration(15+rng.Intn(20))*time.Millisecond, 144, 176)
			req := Request{
				ID:    piconet.FlowID(i + 1),
				Slave: piconet.SlaveID(1 + i%4),
				Dir:   piconet.Direction(1 + i%2),
				Spec:  spec, Rate: spec.TokenRate * (1 + rng.Float64()*0.4),
				Allowed: baseband.PaperTypes,
			}
			if _, err := ctrl.Admit(req); err == nil {
				admitted = append(admitted, req.ID)
			}
		}
		if len(admitted) == 0 {
			return true
		}
		before := map[piconet.FlowID]time.Duration{}
		for _, pf := range ctrl.Flows() {
			before[pf.Request.ID] = pf.X
		}
		victim := admitted[rng.Intn(len(admitted))]
		if err := ctrl.Remove(victim); err != nil {
			return false
		}
		for _, pf := range ctrl.Flows() {
			if pf.Request.ID == victim {
				return false
			}
			if pf.X > before[pf.Request.ID] {
				return false // removal must not worsen anyone
			}
			if !Feasible(pf.X, pf.Params.Interval) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(89))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
