package admission

import (
	"errors"
	"fmt"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/sco"
)

// SCO-related admission errors.
var (
	ErrSCOMixedTypes = errors.New("admission: all SCO links must use the same HV type")
	ErrSCOWindow     = errors.New("admission: flow's worst exchange exceeds the free window between SCO reservations")
)

// scoStreams converts the configured SCO links into one aggregate
// highest-priority poll stream for the Fig. 2 fixed point.
//
// Per cadence interval T (slots), n same-type links occupy 2n slots
// unconditionally, and the poll additionally risks one dead gap of up to
// (window-1) slots in which no exchange fits before the next reservation.
// Both effects are conservatively folded into a single stream with
// interval T and exchange time (T-1) slots; every Guaranteed Service
// stream treats it as higher priority than itself.
func (c Config) scoStreams() ([]Stream, error) {
	if len(c.SCOLinks) == 0 {
		return nil, nil
	}
	typ := c.SCOLinks[0].Type
	for _, l := range c.SCOLinks[1:] {
		if l.Type != typ {
			return nil, fmt.Errorf("%w: %v and %v", ErrSCOMixedTypes, typ, l.Type)
		}
	}
	interval := c.SCOLinks[0].IntervalSlots()
	return []Stream{{
		Interval: baseband.SlotsToDuration(interval),
		Exchange: baseband.SlotsToDuration(interval - 1),
	}}, nil
}

// scoWindowSlots returns the largest ACL exchange (in slots) that fits
// between SCO reservations, or a very large value without SCO links.
func (c Config) scoWindowSlots() int {
	if len(c.SCOLinks) == 0 {
		return 1 << 30
	}
	window := c.SCOLinks[0].IntervalSlots() - 2*len(c.SCOLinks)
	if window < 0 {
		window = 0
	}
	return window
}

// checkSCOWindow rejects a stream whose worst exchange cannot fit between
// reservations (it could never be scheduled).
func (c Config) checkSCOWindow(exchange time.Duration) error {
	window := c.scoWindowSlots()
	if baseband.DurationToSlots(exchange) > window {
		return fmt.Errorf("%w: exchange %v, window %d slots", ErrSCOWindow, exchange, window)
	}
	return nil
}

// SCOChannels is a convenience constructor for Config.SCOLinks.
func SCOChannels(types ...baseband.PacketType) ([]sco.Channel, error) {
	out := make([]sco.Channel, 0, len(types))
	for _, t := range types {
		ch, err := sco.NewChannel(t)
		if err != nil {
			return nil, err
		}
		out = append(out, ch)
	}
	return out, nil
}
