package admission

import (
	"errors"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
)

func TestSCOChannelsHelper(t *testing.T) {
	chs, err := SCOChannels(baseband.TypeHV3, baseband.TypeHV3)
	if err != nil {
		t.Fatalf("SCOChannels: %v", err)
	}
	if len(chs) != 2 {
		t.Fatalf("len = %d", len(chs))
	}
	if _, err := SCOChannels(baseband.TypeDH1); err == nil {
		t.Fatal("ACL type accepted as SCO channel")
	}
}

func TestSCOWindowRejectsWideExchanges(t *testing.T) {
	// With an HV3 link the free window is 4 slots; the conservative
	// (both-legs-DH3) exchange of 6 slots can never be scheduled.
	chs, err := SCOChannels(baseband.TypeHV3)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(Config{MaxExchange: 2500 * time.Microsecond, SCOLinks: chs})
	_, err = c.Admit(paperRequest(1, 1, piconet.Up, 8800))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("conservative exchange through HV3 window: err = %v", err)
	}
	if !errors.Is(err, ErrSCOWindow) {
		t.Fatalf("expected window diagnosis, got %v", err)
	}
}

func TestSCOAsHighestPriorityStream(t *testing.T) {
	// Direction-aware mode: the single up flow's exchange is 4 slots and
	// fits the HV3 window; its x absorbs the SCO reservations as an
	// implicit highest-priority stream (hand fixed point: 15 ms).
	chs, err := SCOChannels(baseband.TypeHV3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		MaxExchange:    2500 * time.Microsecond, // POLL+DH3 worst ongoing ACL
		DirectionAware: true,
		SCOLinks:       chs,
	}
	c := NewController(cfg)
	pf, err := c.Admit(paperRequest(1, 1, piconet.Up, 8800))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if pf.X != 15*time.Millisecond {
		t.Fatalf("x with HV3 SCO = %v, want 15ms", pf.X)
	}
	// Without the SCO link the same flow has x = Xi = 2.5 ms.
	c2 := NewController(Config{MaxExchange: 2500 * time.Microsecond, DirectionAware: true})
	pf2, err := c2.Admit(paperRequest(1, 1, piconet.Up, 8800))
	if err != nil {
		t.Fatalf("Admit without SCO: %v", err)
	}
	if pf2.X != 2500*time.Microsecond {
		t.Fatalf("x without SCO = %v, want 2.5ms", pf2.X)
	}
	if pf.Bound <= pf2.Bound {
		t.Fatalf("SCO should loosen the bound: %v vs %v", pf.Bound, pf2.Bound)
	}
}

func TestSCOMixedTypesRejected(t *testing.T) {
	chs, err := SCOChannels(baseband.TypeHV3, baseband.TypeHV2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(Config{MaxExchange: 2500 * time.Microsecond, DirectionAware: true, SCOLinks: chs})
	if _, err := c.Admit(paperRequest(1, 1, piconet.Up, 8800)); !errors.Is(err, ErrSCOMixedTypes) {
		t.Fatalf("mixed SCO types: err = %v", err)
	}
}
