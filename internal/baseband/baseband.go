// Package baseband models the Bluetooth baseband layer as specified in the
// Bluetooth 1.0b/1.1 specification, at the level of detail the polling
// analysis of Ait Yaiz & Heijenk (ICDCSW'03) depends on: slot timing, packet
// types with their slot occupancy and payload capacity, and the master-driven
// TDD rules of a piconet.
//
// Bluetooth divides time into 625 µs slots (1600 slots per second). The
// master transmits in even-numbered slots and the addressed slave answers in
// the following odd-numbered slot. ACL data packets cover one, three, or five
// slots; SCO packets always cover one slot.
package baseband

import (
	"fmt"
	"strings"
	"time"
)

// Slot timing constants from the Bluetooth specification.
const (
	// SlotDuration is the length of one baseband time slot.
	SlotDuration = 625 * time.Microsecond
	// SlotsPerSecond is the nominal slot rate of a piconet.
	SlotsPerSecond = 1600
	// MaxActiveSlaves is the maximum number of active slaves in a piconet
	// (the 3-bit AM_ADDR minus the all-zero broadcast address).
	MaxActiveSlaves = 7
)

// PacketType enumerates the baseband packet types relevant to ACL and SCO
// links. Following the style guide, the enum starts at one so that the zero
// value is recognisably invalid.
type PacketType int

// Baseband packet types.
const (
	// TypeNULL is a 1-slot packet with no payload, used by a slave that
	// has nothing to send in response to a poll (and for ARQ feedback).
	TypeNULL PacketType = iota + 1
	// TypePOLL is a 1-slot packet with no payload by which the master
	// explicitly polls a slave; it must be acknowledged.
	TypePOLL
	// TypeDM1 is a 1-slot medium-rate data packet (2/3 FEC), 17 bytes.
	TypeDM1
	// TypeDH1 is a 1-slot high-rate data packet (no FEC), 27 bytes.
	TypeDH1
	// TypeDM3 is a 3-slot medium-rate data packet (2/3 FEC), 121 bytes.
	TypeDM3
	// TypeDH3 is a 3-slot high-rate data packet (no FEC), 183 bytes.
	TypeDH3
	// TypeDM5 is a 5-slot medium-rate data packet (2/3 FEC), 224 bytes.
	TypeDM5
	// TypeDH5 is a 5-slot high-rate data packet (no FEC), 339 bytes.
	TypeDH5
	// TypeHV1 is a 1-slot SCO voice packet (1/3 FEC), 10 bytes.
	TypeHV1
	// TypeHV2 is a 1-slot SCO voice packet (2/3 FEC), 20 bytes.
	TypeHV2
	// TypeHV3 is a 1-slot SCO voice packet (no FEC), 30 bytes.
	TypeHV3

	numPacketTypes = int(TypeHV3)
)

// packetInfo holds the static properties of a packet type.
type packetInfo struct {
	name    string
	slots   int
	payload int // bytes of user payload
	acl     bool
	sco     bool
	fec     bool
}

var packetInfos = [...]packetInfo{
	TypeNULL: {name: "NULL", slots: 1, payload: 0},
	TypePOLL: {name: "POLL", slots: 1, payload: 0},
	TypeDM1:  {name: "DM1", slots: 1, payload: 17, acl: true, fec: true},
	TypeDH1:  {name: "DH1", slots: 1, payload: 27, acl: true},
	TypeDM3:  {name: "DM3", slots: 3, payload: 121, acl: true, fec: true},
	TypeDH3:  {name: "DH3", slots: 3, payload: 183, acl: true},
	TypeDM5:  {name: "DM5", slots: 5, payload: 224, acl: true, fec: true},
	TypeDH5:  {name: "DH5", slots: 5, payload: 339, acl: true},
	TypeHV1:  {name: "HV1", slots: 1, payload: 10, sco: true, fec: true},
	TypeHV2:  {name: "HV2", slots: 1, payload: 20, sco: true, fec: true},
	TypeHV3:  {name: "HV3", slots: 1, payload: 30, sco: true},
}

// Valid reports whether t is a known packet type.
func (t PacketType) Valid() bool {
	return t >= TypeNULL && int(t) <= numPacketTypes
}

func (t PacketType) info() packetInfo {
	if !t.Valid() {
		return packetInfo{name: fmt.Sprintf("PacketType(%d)", int(t))}
	}
	return packetInfos[t]
}

// String returns the specification name of the packet type (e.g. "DH3").
func (t PacketType) String() string { return t.info().name }

// Slots returns the number of time slots the packet occupies on air.
func (t PacketType) Slots() int { return t.info().slots }

// Duration returns the air time of the packet: its slot count times the slot
// duration. (The actual burst is slightly shorter than the slot; the guard
// space is charged to the packet, as in the paper's analysis.)
func (t PacketType) Duration() time.Duration {
	return time.Duration(t.Slots()) * SlotDuration
}

// Payload returns the maximum user payload of the packet type in bytes.
func (t PacketType) Payload() int { return t.info().payload }

// IsACL reports whether the packet type is an ACL data packet.
func (t PacketType) IsACL() bool { return t.info().acl }

// IsSCO reports whether the packet type is an SCO voice packet.
func (t PacketType) IsSCO() bool { return t.info().sco }

// HasFEC reports whether the packet payload is FEC protected.
func (t PacketType) HasFEC() bool { return t.info().fec }

// AirBits returns the approximate number of bits the packet occupies on air,
// used by bit-error channel models: access code (72) + header (54) + payload
// bits (FEC-expanded where applicable). NULL and POLL have no payload.
func (t PacketType) AirBits() int {
	const overhead = 72 + 54
	pl := t.Payload() * 8
	// A 2/3 FEC payload occupies 3/2 of the payload bits; 1/3 FEC (HV1)
	// occupies 3 times. Payload headers are folded into the constant
	// overhead for simplicity; channel models only need a monotone,
	// roughly correct bit count.
	switch {
	case t == TypeHV1:
		pl *= 3
	case t.HasFEC():
		pl = pl * 3 / 2
	}
	return overhead + pl
}

// TypeSet is a set of packet types, used to express which baseband packets a
// link is allowed to use (the paper's evaluation allows DH1 and DH3 only).
// The zero value is the empty set.
type TypeSet uint32

// NewTypeSet returns a set containing the given types.
func NewTypeSet(types ...PacketType) TypeSet {
	var s TypeSet
	for _, t := range types {
		s = s.Add(t)
	}
	return s
}

// Add returns the set with t added.
func (s TypeSet) Add(t PacketType) TypeSet {
	if !t.Valid() {
		return s
	}
	return s | 1<<uint(t)
}

// Contains reports whether t is in the set.
func (s TypeSet) Contains(t PacketType) bool {
	if !t.Valid() {
		return false
	}
	return s&(1<<uint(t)) != 0
}

// Empty reports whether the set contains no types.
func (s TypeSet) Empty() bool { return s == 0 }

// payloadOrder lists every valid packet type in ascending payload order
// (ties broken by enum order), computed once at init. Set queries on the
// segmentation hot path walk this fixed order instead of materialising a
// per-call slice.
var payloadOrder = func() [numPacketTypes]PacketType {
	var out [numPacketTypes]PacketType
	for i := range out {
		out[i] = PacketType(i + 1)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Payload() < out[j-1].Payload(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}()

// Types returns the members of the set in ascending payload order (ties
// broken by enum order). ACL sets ordered this way are convenient for
// best-fit searches.
func (s TypeSet) Types() []PacketType {
	var out []PacketType
	for _, t := range payloadOrder {
		if s.Contains(t) {
			out = append(out, t)
		}
	}
	return out
}

// String renders the set as "{DH1 DH3}".
func (s TypeSet) String() string {
	names := make([]string, 0, 4)
	for _, t := range s.Types() {
		names = append(names, t.String())
	}
	return "{" + strings.Join(names, " ") + "}"
}

// MaxPayload returns the largest payload capacity among the set's ACL
// members, or zero if the set has no ACL members.
func (s TypeSet) MaxPayload() int {
	maxP := 0
	for _, t := range payloadOrder {
		if s.Contains(t) && t.IsACL() && t.Payload() > maxP {
			maxP = t.Payload()
		}
	}
	return maxP
}

// MaxSlots returns the largest slot occupancy among the set's members, or
// zero for an empty set.
func (s TypeSet) MaxSlots() int {
	maxS := 0
	for _, t := range payloadOrder {
		if s.Contains(t) && t.Slots() > maxS {
			maxS = t.Slots()
		}
	}
	return maxS
}

// SmallestFitting returns the ACL member of the set with the smallest
// payload capacity that still fits n bytes. ok is false when no member fits
// (callers should then send the largest member and carry the remainder in
// further packets).
func (s TypeSet) SmallestFitting(n int) (PacketType, bool) {
	for _, t := range payloadOrder { // ascending payload order
		if s.Contains(t) && t.IsACL() && t.Payload() >= n {
			return t, true
		}
	}
	return 0, false
}

// LargestACL returns the ACL member with the largest payload, ok=false when
// the set has no ACL member.
func (s TypeSet) LargestACL() (PacketType, bool) {
	var best PacketType
	ok := false
	for _, t := range payloadOrder {
		if s.Contains(t) && t.IsACL() && (!ok || t.Payload() > best.Payload()) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Common type sets.
var (
	// ACL1Slot is the set of 1-slot ACL packets.
	ACL1Slot = NewTypeSet(TypeDM1, TypeDH1)
	// ACLHighRate is the set of unprotected ACL packets.
	ACLHighRate = NewTypeSet(TypeDH1, TypeDH3, TypeDH5)
	// ACLMediumRate is the set of FEC-protected ACL packets.
	ACLMediumRate = NewTypeSet(TypeDM1, TypeDM3, TypeDM5)
	// ACLAll is the set of all ACL data packets.
	ACLAll = NewTypeSet(TypeDM1, TypeDH1, TypeDM3, TypeDH3, TypeDM5, TypeDH5)
	// PaperTypes is the set used throughout the paper's evaluation:
	// DH1 (27 bytes) and DH3 (183 bytes).
	PaperTypes = NewTypeSet(TypeDH1, TypeDH3)
)

// SlotsToDuration converts a slot count to air time.
func SlotsToDuration(slots int) time.Duration {
	return time.Duration(slots) * SlotDuration
}

// DurationToSlots converts a duration to whole slots, rounding up.
func DurationToSlots(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + SlotDuration - 1) / SlotDuration)
}
