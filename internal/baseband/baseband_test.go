package baseband

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bluegs/internal/sim"
)

func TestSlotTiming(t *testing.T) {
	if got := SlotDuration * SlotsPerSecond; got != time.Second {
		t.Fatalf("SlotDuration*SlotsPerSecond = %v, want 1s", got)
	}
}

// TestSlotGrainMatchesKernel pins the timer-wheel fast path's assumption:
// the kernel's wheel granularity is exactly the baseband slot, so every
// slot-aligned model event takes the O(1) wheel route.
func TestSlotGrainMatchesKernel(t *testing.T) {
	if sim.SlotGrain != SlotDuration {
		t.Fatalf("sim.SlotGrain = %v, baseband.SlotDuration = %v; the kernel wheel must match the slot grid",
			sim.SlotGrain, SlotDuration)
	}
}

func TestPacketProperties(t *testing.T) {
	tests := []struct {
		typ     PacketType
		name    string
		slots   int
		payload int
		acl     bool
		sco     bool
		fec     bool
	}{
		{TypeNULL, "NULL", 1, 0, false, false, false},
		{TypePOLL, "POLL", 1, 0, false, false, false},
		{TypeDM1, "DM1", 1, 17, true, false, true},
		{TypeDH1, "DH1", 1, 27, true, false, false},
		{TypeDM3, "DM3", 3, 121, true, false, true},
		{TypeDH3, "DH3", 3, 183, true, false, false},
		{TypeDM5, "DM5", 5, 224, true, false, true},
		{TypeDH5, "DH5", 5, 339, true, false, false},
		{TypeHV1, "HV1", 1, 10, false, true, true},
		{TypeHV2, "HV2", 1, 20, false, true, true},
		{TypeHV3, "HV3", 1, 30, false, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.typ.String(); got != tt.name {
				t.Errorf("String() = %q, want %q", got, tt.name)
			}
			if got := tt.typ.Slots(); got != tt.slots {
				t.Errorf("Slots() = %d, want %d", got, tt.slots)
			}
			if got := tt.typ.Payload(); got != tt.payload {
				t.Errorf("Payload() = %d, want %d", got, tt.payload)
			}
			if got := tt.typ.IsACL(); got != tt.acl {
				t.Errorf("IsACL() = %v, want %v", got, tt.acl)
			}
			if got := tt.typ.IsSCO(); got != tt.sco {
				t.Errorf("IsSCO() = %v, want %v", got, tt.sco)
			}
			if got := tt.typ.HasFEC(); got != tt.fec {
				t.Errorf("HasFEC() = %v, want %v", got, tt.fec)
			}
			if got, want := tt.typ.Duration(), time.Duration(tt.slots)*SlotDuration; got != want {
				t.Errorf("Duration() = %v, want %v", got, want)
			}
			if !tt.typ.Valid() {
				t.Errorf("Valid() = false for %v", tt.typ)
			}
		})
	}
}

func TestInvalidPacketType(t *testing.T) {
	for _, typ := range []PacketType{0, -1, PacketType(numPacketTypes + 1)} {
		if typ.Valid() {
			t.Errorf("Valid() = true for %d", int(typ))
		}
		if typ.Slots() != 0 || typ.Payload() != 0 {
			t.Errorf("invalid type %d has nonzero slots/payload", int(typ))
		}
	}
}

func TestDH3CarriesPaperPayload(t *testing.T) {
	// The paper's evaluation: DH1 max payload 27 bytes, DH3 max 183 bytes.
	if got := TypeDH1.Payload(); got != 27 {
		t.Fatalf("DH1 payload = %d, want 27", got)
	}
	if got := TypeDH3.Payload(); got != 183 {
		t.Fatalf("DH3 payload = %d, want 183", got)
	}
	// All paper GS packets (144..176 bytes) fit in one DH3.
	for size := 144; size <= 176; size++ {
		if size > TypeDH3.Payload() {
			t.Fatalf("packet of %d bytes does not fit a DH3", size)
		}
	}
}

func TestTypeSetBasics(t *testing.T) {
	s := NewTypeSet(TypeDH1, TypeDH3)
	if s.Empty() {
		t.Fatal("set should not be empty")
	}
	if !s.Contains(TypeDH1) || !s.Contains(TypeDH3) {
		t.Fatal("set missing members")
	}
	if s.Contains(TypeDH5) || s.Contains(TypeNULL) {
		t.Fatal("set contains non-members")
	}
	if got := s.String(); got != "{DH1 DH3}" {
		t.Fatalf("String() = %q, want {DH1 DH3}", got)
	}
	if got := s.MaxPayload(); got != 183 {
		t.Fatalf("MaxPayload() = %d, want 183", got)
	}
	if got := s.MaxSlots(); got != 3 {
		t.Fatalf("MaxSlots() = %d, want 3", got)
	}
	var empty TypeSet
	if !empty.Empty() {
		t.Fatal("zero TypeSet should be empty")
	}
	if got := empty.MaxPayload(); got != 0 {
		t.Fatalf("empty MaxPayload() = %d, want 0", got)
	}
	if empty.Contains(PacketType(0)) {
		t.Fatal("empty set contains invalid type")
	}
}

func TestTypeSetAddInvalidIgnored(t *testing.T) {
	s := NewTypeSet(PacketType(0), PacketType(99), TypeDH1)
	if got := len(s.Types()); got != 1 {
		t.Fatalf("set has %d members, want 1", got)
	}
}

func TestTypesSortedByPayload(t *testing.T) {
	s := NewTypeSet(TypeDH5, TypeDM1, TypeDH1, TypeDM3, TypeDH3, TypeDM5)
	types := s.Types()
	for i := 1; i < len(types); i++ {
		if types[i].Payload() < types[i-1].Payload() {
			t.Fatalf("Types() not sorted by payload: %v", types)
		}
	}
}

func TestSmallestFitting(t *testing.T) {
	tests := []struct {
		name  string
		set   TypeSet
		bytes int
		want  PacketType
		ok    bool
	}{
		{"paper small fits DH1", PaperTypes, 20, TypeDH1, true},
		{"paper exactly DH1", PaperTypes, 27, TypeDH1, true},
		{"paper 28 needs DH3", PaperTypes, 28, TypeDH3, true},
		{"paper GS packet 144", PaperTypes, 144, TypeDH3, true},
		{"paper 183 exactly DH3", PaperTypes, 183, TypeDH3, true},
		{"paper 184 does not fit", PaperTypes, 184, 0, false},
		{"all types large payload", ACLAll, 200, TypeDM5, true},
		{"all types huge", ACLAll, 400, 0, false},
		{"zero bytes smallest", PaperTypes, 0, TypeDH1, true},
		{"empty set", 0, 1, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.set.SmallestFitting(tt.bytes)
			if ok != tt.ok {
				t.Fatalf("SmallestFitting(%d) ok = %v, want %v", tt.bytes, ok, tt.ok)
			}
			if ok && got != tt.want {
				t.Fatalf("SmallestFitting(%d) = %v, want %v", tt.bytes, got, tt.want)
			}
		})
	}
}

func TestLargestACL(t *testing.T) {
	if got, ok := PaperTypes.LargestACL(); !ok || got != TypeDH3 {
		t.Fatalf("PaperTypes.LargestACL() = %v, %v; want DH3, true", got, ok)
	}
	if got, ok := ACLAll.LargestACL(); !ok || got != TypeDH5 {
		t.Fatalf("ACLAll.LargestACL() = %v, %v; want DH5, true", got, ok)
	}
	sco := NewTypeSet(TypeHV3)
	if _, ok := sco.LargestACL(); ok {
		t.Fatal("SCO-only set should have no largest ACL type")
	}
}

func TestAirBitsMonotoneInPayload(t *testing.T) {
	if TypeDH3.AirBits() <= TypeDH1.AirBits() {
		t.Fatal("DH3 should occupy more air bits than DH1")
	}
	if TypeDM3.AirBits() <= TypeDH3.AirBits()-54 && TypeDM3.AirBits() <= TypeDM1.AirBits() {
		t.Fatal("AirBits not increasing for DM family")
	}
	if TypeNULL.AirBits() != 72+54 {
		t.Fatalf("NULL AirBits = %d, want header-only", TypeNULL.AirBits())
	}
}

func TestSlotConversions(t *testing.T) {
	if got := SlotsToDuration(3); got != 1875*time.Microsecond {
		t.Fatalf("SlotsToDuration(3) = %v", got)
	}
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Microsecond, 1},
		{625 * time.Microsecond, 1},
		{626 * time.Microsecond, 2},
		{1875 * time.Microsecond, 3},
	}
	for _, tt := range tests {
		if got := DurationToSlots(tt.d); got != tt.want {
			t.Errorf("DurationToSlots(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

// TestPropertySmallestFittingIsMinimal checks, for random payload demands
// and random allowed sets, that SmallestFitting returns a fitting type and
// that no smaller allowed ACL type also fits.
func TestPropertySmallestFittingIsMinimal(t *testing.T) {
	f := func(nRaw uint16, setBits uint16) bool {
		n := int(nRaw % 400)
		var set TypeSet
		all := []PacketType{TypeDM1, TypeDH1, TypeDM3, TypeDH3, TypeDM5, TypeDH5}
		for i, typ := range all {
			if setBits&(1<<uint(i)) != 0 {
				set = set.Add(typ)
			}
		}
		got, ok := set.SmallestFitting(n)
		if !ok {
			// Then no allowed ACL type must fit.
			for _, typ := range set.Types() {
				if typ.IsACL() && typ.Payload() >= n {
					return false
				}
			}
			return true
		}
		if !set.Contains(got) || !got.IsACL() || got.Payload() < n {
			return false
		}
		for _, typ := range set.Types() {
			if typ.IsACL() && typ.Payload() >= n && typ.Payload() < got.Payload() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
