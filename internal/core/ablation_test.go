package core_test

import (
	"testing"
	"time"

	"bluegs/internal/core"
	"bluegs/internal/sim"
)

// TestPropertyAllRuleSubsetsMeetBounds: the delay-bound guarantee must hold
// under every combination of the §3.2 improvement rules (the rules save
// slots; they must never trade away correctness).
func TestPropertyAllRuleSubsetsMeetBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("rule-subset sweep is long")
	}
	for rules := core.Improvements(0); rules <= core.AllImprovements; rules++ {
		rules := rules
		t.Run(rules.String(), func(t *testing.T) {
			s := sim.New(sim.WithSeed(1000 + int64(rules)))
			ctrl := admitPaperFlows(t, 12800)
			pn, sched := buildPaperGS(t, s, ctrl,
				core.WithMode(core.VariableInterval),
				core.WithImprovements(rules),
			)
			if sched.Rules() != rules {
				t.Fatalf("rules = %v, want %v", sched.Rules(), rules)
			}
			for i, pf := range ctrl.Flows() {
				attachCBR(t, s, pn, pf.Request.ID, 20*time.Millisecond,
					time.Duration(i)*4*time.Millisecond, 144, 176)
			}
			if err := pn.Start(); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(15 * time.Second); err != nil {
				t.Fatal(err)
			}
			if err := pn.Err(); err != nil {
				t.Fatalf("engine: %v", err)
			}
			for _, pf := range ctrl.Flows() {
				ds, _ := pn.FlowDelayStats(pf.Request.ID)
				if ds.Count() == 0 {
					t.Fatalf("flow %d: no samples", pf.Request.ID)
				}
				if ds.Max() > pf.Bound {
					t.Fatalf("rules %v: flow %d max delay %v exceeds bound %v",
						rules, pf.Request.ID, ds.Max(), pf.Bound)
				}
			}
		})
	}
}

// TestImprovementsStringNames sanity-checks the bitmask helpers used by the
// ablation harness.
func TestImprovementsStringNames(t *testing.T) {
	if core.AllImprovements != core.PostponeAfterPacket|core.PostponeAfterEmpty|core.SkipEmptyDown {
		t.Fatal("AllImprovements does not cover the three rules")
	}
	seen := map[string]bool{}
	for rules := core.Improvements(0); rules <= core.AllImprovements; rules++ {
		s := rules.String()
		if s == "" || seen[s] {
			t.Fatalf("ambiguous Improvements string %q for %d", s, rules)
		}
		seen[s] = true
	}
}
