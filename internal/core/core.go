// Package core implements the paper's primary contribution: a Bluetooth
// intra-piconet polling mechanism that provides Guaranteed Service delay
// bounds (Ait Yaiz & Heijenk, ICDCSW'03).
//
// The Scheduler plans polls for every admitted Guaranteed Service flow at
// interval t_i = eta_min_i / R_i and executes due polls in flow-priority
// order (§3.1, the fixed-interval poller). In variable-interval mode (§3.2)
// three improvement rules postpone or skip polls without violating any
// bound, saving slots for best-effort traffic or retransmissions:
//
//	(a) after the last segment of a packet of size L, the next poll is
//	    planned L/R after the planned time of the packet's first poll
//	    (the packet "pays" exactly its fluid-model service time);
//	(b) after a poll that moved no Guaranteed Service data, the next poll
//	    is planned t after the poll's actual (not planned) time;
//	(c) a planned poll for a master-to-slave flow whose queue is known to
//	    be empty is skipped entirely and re-planned on the next arrival.
//
// Piggybacked pairs (two oppositely-directed flows on one slave) share a
// single poll stream driven by the pair's primary flow. Capacity not used
// by due Guaranteed Service polls is delegated to a best-effort poller from
// internal/poller. The Scheduler implements piconet.Scheduler.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/poller"
	"bluegs/internal/sim"
)

// Errors returned by scheduler construction.
var (
	ErrNilPiconet   = errors.New("core: nil piconet")
	ErrFlowMismatch = errors.New("core: planned flow does not match piconet flow")
	ErrBadPlan      = errors.New("core: invalid admission plan")
)

// Mode selects the §3.1 fixed-interval or §3.2 variable-interval planner.
type Mode int

// Planner modes.
const (
	// FixedInterval plans polls on a strict t-spaced grid (§3.1).
	FixedInterval Mode = iota + 1
	// VariableInterval enables the §3.2 improvement rules (individually
	// selectable via WithImprovements).
	VariableInterval
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case FixedInterval:
		return "fixed-interval"
	case VariableInterval:
		return "variable-interval"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Improvements is a bit set of the §3.2 rules, for ablation studies.
type Improvements uint8

// Improvement rules.
const (
	// PostponeAfterPacket is rule (a): plan the poll after a completed
	// packet of size L at firstPollPlan + L/R (paper eq. 10).
	PostponeAfterPacket Improvements = 1 << iota
	// PostponeAfterEmpty is rule (b): plan the poll after an
	// unsuccessful poll t after its actual time.
	PostponeAfterEmpty
	// SkipEmptyDown is rule (c): skip planned polls for master-to-slave
	// flows with a known-empty queue.
	SkipEmptyDown

	// AllImprovements enables all three rules (the paper's evaluated
	// configuration).
	AllImprovements = PostponeAfterPacket | PostponeAfterEmpty | SkipEmptyDown
)

// String renders the active rules, e.g. "a+c" or "none".
func (i Improvements) String() string {
	if i == 0 {
		return "none"
	}
	var parts []string
	if i&PostponeAfterPacket != 0 {
		parts = append(parts, "a")
	}
	if i&PostponeAfterEmpty != 0 {
		parts = append(parts, "b")
	}
	if i&SkipEmptyDown != 0 {
		parts = append(parts, "c")
	}
	return strings.Join(parts, "+")
}

// stream is one Guaranteed Service poll stream: a primary flow and an
// optional piggybacked counterpart, with its planning state.
type stream struct {
	priority int
	slave    piconet.SlaveID
	down     piconet.FlowID // None when the stream has no downlink flow
	up       piconet.FlowID // None when the stream has no uplink flow
	// primaryDir is the direction of the pair's primary flow, whose
	// packets drive the planning rules.
	primaryDir piconet.Direction
	// interval is the primary's poll interval t.
	interval time.Duration
	// etaMin is the primary's minimum poll efficiency (bytes/poll).
	etaMin float64
	// rate is the primary's reserved rate R (bytes/s).
	rate float64
	// downMaxSlots and upMaxSlots bound the slot occupancy of each leg
	// of this stream's exchanges (for SCO window fitting).
	downMaxSlots int
	upMaxSlots   int

	// nextPlan is the next planned poll time; meaningful when planned.
	nextPlan sim.Time
	planned  bool
	// inFlight marks a poll between Decide and OnOutcome, with the plan
	// time it is serving.
	inFlight     bool
	inFlightPlan sim.Time
	// pktFirstPlan tracks, for the primary flow's packet currently in
	// service, the plan time of the poll that served its first segment
	// (rule (a) state).
	pktFirstPlan  sim.Time
	pktInProgress bool

	// retryPending marks a stream with a lost segment awaiting a
	// loss-recovery poll; retryInFlight marks that poll in progress.
	retryPending  bool
	retryInFlight bool

	// polls counts executed polls; skipped counts rule-(c) skips;
	// retries counts loss-recovery polls.
	polls   uint64
	skipped uint64
	retries uint64
}

// Scheduler is the Guaranteed Service master scheduler. Create with New and
// install on the piconet with Piconet.SetScheduler.
type Scheduler struct {
	pn      *piconet.Piconet
	mode    Mode
	rules   Improvements
	be      poller.Poller
	beView  *beView
	streams []*stream // priority order
	byFlow  map[piconet.FlowID]*stream
	// lossRecovery enables recovery polls for lost GS segments.
	lossRecovery bool
	// resident is the bridge-residency oracle (nil: every slave is always
	// reachable). See WithResidency.
	resident func(slave piconet.SlaveID, at sim.Time) (bool, sim.Time)
	// beOutcomes and gsOutcomes count exchanges for reports.
	beOutcomes uint64
	gsOutcomes uint64
	// retiredSkipped and retiredRetries accumulate the per-stream
	// counters of streams removed by Replan, so run totals survive churn.
	retiredSkipped uint64
	retiredRetries uint64
}

var _ piconet.Scheduler = (*Scheduler)(nil)

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithMode selects the planner mode (default VariableInterval).
func WithMode(m Mode) Option {
	return func(s *Scheduler) { s.mode = m }
}

// WithImprovements selects which §3.2 rules are active in variable-interval
// mode (default AllImprovements). Ignored in fixed-interval mode.
func WithImprovements(rules Improvements) Option {
	return func(s *Scheduler) { s.rules = rules }
}

// WithBEPoller installs the best-effort poller consulted when no
// Guaranteed Service poll is due (default: PFP with equal weights).
func WithBEPoller(p poller.Poller) Option {
	return func(s *Scheduler) {
		if p != nil {
			s.be = p
		}
	}
}

// WithLossRecovery enables the paper's future-work retransmission policy:
// when an exchange loses a Guaranteed Service segment on air (visible to
// the master through the baseband ARQ), the scheduler issues an extra
// recovery poll from the *saved* bandwidth — after all due planned polls
// but before best-effort traffic — so retransmissions neither consume the
// flow's own poll budget nor disturb any other flow's x_i analysis.
// Meaningful only with a lossy radio model and ARQ enabled on the piconet.
func WithLossRecovery(enabled bool) Option {
	return func(s *Scheduler) { s.lossRecovery = enabled }
}

// WithResidency installs a slave-residency oracle for scatternet bridge
// slaves: reachable(slave, at) reports whether the slave is (or will be)
// listening in this piconet at the instant `at` and, when it is not, when
// its residency window next opens. The oracle must be a pure function of
// its arguments — Decide also queries future instants to size its idle
// horizon. A due poll to an absent slave is deferred, not skipped: the
// stream keeps its rule-(a) planning state, the lag keeps charging to the
// original plan, and the poll fires the moment the window opens (never
// tripping supervision on mere absence). Slaves the oracle does not know
// should report reachable.
func WithResidency(reachable func(slave piconet.SlaveID, at sim.Time) (bool, sim.Time)) Option {
	return func(s *Scheduler) { s.resident = reachable }
}

// New builds a Scheduler for the piconet from an admission plan (the
// planned flows of an admission.Controller). Every planned flow must exist
// in the piconet as a Guaranteed class flow with matching slave and
// direction.
func New(pn *piconet.Piconet, plan []*admission.PlannedFlow, opts ...Option) (*Scheduler, error) {
	if pn == nil {
		return nil, ErrNilPiconet
	}
	s := &Scheduler{
		pn:     pn,
		mode:   VariableInterval,
		rules:  AllImprovements,
		be:     poller.NewPFP(nil),
		byFlow: make(map[piconet.FlowID]*stream),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.mode == FixedInterval {
		s.rules = 0
	}

	streams, byFlow, err := buildStreams(pn, plan)
	if err != nil {
		return nil, err
	}
	s.streams = streams
	s.byFlow = byFlow
	s.beView = newBEView(pn, s.byFlow)
	// All streams start planned at time zero (the piconet aligns the
	// first decision); down-only streams with the skip rule go dormant
	// at their first empty plan.
	now := pn.Now()
	for _, st := range s.streams {
		st.nextPlan = now
		st.planned = true
	}
	return s, nil
}

// buildStreams validates an admission plan against the piconet and
// assembles the poll streams in priority order plus the flow index.
func buildStreams(pn *piconet.Piconet, plan []*admission.PlannedFlow) (
	[]*stream, map[piconet.FlowID]*stream, error) {
	byPriority := make(map[int][]*admission.PlannedFlow)
	var priorities []int
	for _, pf := range plan {
		if pf == nil {
			return nil, nil, fmt.Errorf("%w: nil planned flow", ErrBadPlan)
		}
		cfg, ok := pn.FlowConfig(pf.Request.ID)
		if !ok {
			return nil, nil, fmt.Errorf("%w: flow %d not in piconet", ErrFlowMismatch, pf.Request.ID)
		}
		if cfg.Class != piconet.Guaranteed || cfg.Slave != pf.Request.Slave || cfg.Dir != pf.Request.Dir {
			return nil, nil, fmt.Errorf("%w: flow %d", ErrFlowMismatch, pf.Request.ID)
		}
		if !pn.FlowActive(pf.Request.ID) {
			return nil, nil, fmt.Errorf("%w: flow %d is retired", ErrFlowMismatch, pf.Request.ID)
		}
		if len(byPriority[pf.Priority]) == 0 {
			priorities = append(priorities, pf.Priority)
		}
		byPriority[pf.Priority] = append(byPriority[pf.Priority], pf)
	}
	// Priorities from the admission controller are 1..n; order them.
	for i := 1; i < len(priorities); i++ {
		for j := i; j > 0 && priorities[j] < priorities[j-1]; j-- {
			priorities[j], priorities[j-1] = priorities[j-1], priorities[j]
		}
	}
	var streams []*stream
	byFlow := make(map[piconet.FlowID]*stream)
	for _, prio := range priorities {
		members := byPriority[prio]
		st, err := newStream(prio, members)
		if err != nil {
			return nil, nil, err
		}
		streams = append(streams, st)
		for _, pf := range members {
			byFlow[pf.Request.ID] = st
		}
	}
	return streams, byFlow, nil
}

// primaryFlow returns the id of the stream's planning-driving flow.
func (st *stream) primaryFlow() piconet.FlowID {
	if st.primaryDir == piconet.Up {
		return st.up
	}
	return st.down
}

// Replan swaps in a new admission plan mid-run: the scheduler rebuilds its
// poll streams from the plan (which must cover exactly the piconet's
// active Guaranteed class flows) and refreshes the best-effort view.
//
// Planning state carries over so the paper's analysis keeps holding for
// surviving flows: a stream whose primary flow persists keeps its next
// planned poll time, in-flight poll, packet-progress (rule a) and
// loss-recovery state — only its interval, priority and pairing follow
// the new plan, exactly as the Fig. 3 routine reassigns them. Streams for
// newly admitted flows are planned immediately (their x analysis starts
// at the first poll); streams whose flows left simply disappear, with
// their skip/retry counters folded into the run totals.
func (s *Scheduler) Replan(plan []*admission.PlannedFlow) error {
	streams, byFlow, err := buildStreams(s.pn, plan)
	if err != nil {
		return err
	}
	now := s.pn.Now()
	old := s.byFlow
	claimed := make(map[*stream]bool, len(old))
	for _, st := range streams {
		prev, ok := old[st.primaryFlow()]
		if !ok || claimed[prev] {
			st.nextPlan = now
			st.planned = true
			continue
		}
		claimed[prev] = true
		st.nextPlan, st.planned = prev.nextPlan, prev.planned
		st.inFlight, st.inFlightPlan = prev.inFlight, prev.inFlightPlan
		st.retryPending, st.retryInFlight = prev.retryPending, prev.retryInFlight
		st.polls, st.skipped, st.retries = prev.polls, prev.skipped, prev.retries
		if prev.primaryFlow() == st.primaryFlow() {
			// Same driving flow: its packet-in-service progress is
			// still meaningful under the new interval.
			st.pktFirstPlan, st.pktInProgress = prev.pktFirstPlan, prev.pktInProgress
		}
	}
	// Fold the counters of vanished streams into the run totals.
	for _, prev := range s.streams {
		if !claimed[prev] {
			s.retiredSkipped += prev.skipped
			s.retiredRetries += prev.retries
		}
	}
	s.streams = streams
	s.byFlow = byFlow
	s.beView = newBEView(s.pn, s.byFlow)
	return nil
}

// RefreshBE rebuilds the best-effort view after best-effort flows were
// added or retired mid-run.
func (s *Scheduler) RefreshBE() {
	s.beView = newBEView(s.pn, s.byFlow)
}

// newStream validates and builds one poll stream from the flows sharing a
// priority (one flow, or a piggybacked pair).
func newStream(prio int, members []*admission.PlannedFlow) (*stream, error) {
	if len(members) == 0 || len(members) > 2 {
		return nil, fmt.Errorf("%w: priority %d has %d members", ErrBadPlan, prio, len(members))
	}
	primary := members[0]
	if !primary.Primary && len(members) == 2 {
		primary = members[1]
	}
	if !primary.Primary {
		return nil, fmt.Errorf("%w: priority %d has no primary flow", ErrBadPlan, prio)
	}
	st := &stream{
		priority:   prio,
		slave:      primary.Request.Slave,
		primaryDir: primary.Request.Dir,
		interval:   primary.Params.Interval,
		etaMin:     primary.Params.EtaMin,
		rate:       primary.Request.Rate,
	}
	for _, pf := range members {
		if pf.Request.Slave != st.slave {
			return nil, fmt.Errorf("%w: priority %d spans slaves", ErrBadPlan, prio)
		}
		switch pf.Request.Dir {
		case piconet.Down:
			if st.down != piconet.None {
				return nil, fmt.Errorf("%w: priority %d has two down flows", ErrBadPlan, prio)
			}
			st.down = pf.Request.ID
			st.downMaxSlots = pf.Request.Allowed.MaxSlots()
		case piconet.Up:
			if st.up != piconet.None {
				return nil, fmt.Errorf("%w: priority %d has two up flows", ErrBadPlan, prio)
			}
			st.up = pf.Request.ID
			st.upMaxSlots = pf.Request.Allowed.MaxSlots()
		default:
			return nil, fmt.Errorf("%w: flow %d bad direction", ErrBadPlan, pf.Request.ID)
		}
	}
	if st.interval <= 0 {
		return nil, fmt.Errorf("%w: priority %d non-positive interval", ErrBadPlan, prio)
	}
	return st, nil
}

// Mode returns the planner mode.
func (s *Scheduler) Mode() Mode { return s.mode }

// Rules returns the active improvement rules.
func (s *Scheduler) Rules() Improvements { return s.rules }

// BEPoller returns the installed best-effort poller.
func (s *Scheduler) BEPoller() poller.Poller { return s.be }

// GSPolls returns the number of Guaranteed Service polls executed.
func (s *Scheduler) GSPolls() uint64 { return s.gsOutcomes }

// BEPolls returns the number of best-effort polls executed.
func (s *Scheduler) BEPolls() uint64 { return s.beOutcomes }

// SkippedPolls returns the number of planned polls skipped by rule (c),
// including by streams a Replan has since removed.
func (s *Scheduler) SkippedPolls() uint64 {
	n := s.retiredSkipped
	for _, st := range s.streams {
		n += st.skipped
	}
	return n
}

// RecoveryPolls returns the number of loss-recovery polls issued,
// including by streams a Replan has since removed.
func (s *Scheduler) RecoveryPolls() uint64 {
	n := s.retiredRetries
	for _, st := range s.streams {
		n += st.retries
	}
	return n
}

// hasRule reports whether the given rule is active.
func (s *Scheduler) hasRule(r Improvements) bool {
	return s.mode == VariableInterval && s.rules&r != 0
}

// worstExchangeSlots bounds the slot occupancy of the stream's next
// exchange: the master must not start it unless it fits before the next
// SCO reservation.
func (s *Scheduler) worstExchangeSlots(st *stream, now sim.Time) int {
	down := 1 // POLL
	if st.down != piconet.None && s.pn.DownHeadAvailable(st.down, now) {
		down = st.downMaxSlots
	}
	up := 1 // NULL
	if st.up != piconet.None {
		up = st.upMaxSlots
	}
	return down + up
}

// Decide implements piconet.Scheduler.
func (s *Scheduler) Decide(now sim.Time, freeSlots int) piconet.Action {
	// Serve the highest-priority due Guaranteed Service poll that fits
	// before the next SCO reservation. Down-only streams with a
	// known-empty queue are skipped under rule (c).
	for _, st := range s.streams {
		if !st.planned || st.inFlight || st.nextPlan > now {
			continue
		}
		if s.resident != nil {
			if ok, _ := s.resident(st.slave, now); !ok {
				// The bridge is serving another piconet: defer, keeping
				// the plan (the wait charges to x like any other lag).
				continue
			}
		}
		if s.hasRule(SkipEmptyDown) && st.up == piconet.None &&
			!s.pn.DownHeadAvailable(st.down, now) {
			// Rule (c): skip and go dormant until an arrival.
			st.planned = false
			st.skipped++
			continue
		}
		if s.worstExchangeSlots(st, now) > freeSlots {
			// Window too small: the poll waits for the other side
			// of the reservation (charged to x by the SCO stream
			// model in admission). A lower-priority poll that does
			// fit may use the gap without delaying this one.
			continue
		}
		st.inFlight = true
		st.inFlightPlan = st.nextPlan
		st.polls++
		return piconet.PollGS(st.slave, st.down, st.up)
	}
	// Loss recovery: retransmission polls ride the saved bandwidth,
	// below every planned Guaranteed Service poll but above best effort,
	// so they disturb no flow's x_i analysis (they occupy the channel
	// like any best-effort exchange, which Xi already charges).
	if s.lossRecovery {
		for _, st := range s.streams {
			if !st.retryPending || st.inFlight || st.retryInFlight {
				continue
			}
			if s.resident != nil {
				if ok, _ := s.resident(st.slave, now); !ok {
					continue
				}
			}
			if s.worstExchangeSlots(st, now) > freeSlots {
				continue
			}
			st.retryInFlight = true
			st.retries++
			return piconet.PollGS(st.slave, st.down, st.up)
		}
	}
	// No GS poll due: spend the opportunity on best-effort traffic (the
	// x_i analysis already charges one maximal ongoing exchange, so any
	// BE exchange that fits the window is admissible here).
	if s.beView.worstSlots <= freeSlots {
		if slave, ok := s.be.Next(now, s.beView); ok {
			return piconet.PollBE(slave)
		}
	}
	// Nothing to do: sleep until the earliest plan; arrivals wake the
	// master via OnDownArrival.
	until := now + time.Hour
	for _, st := range s.streams {
		if !st.planned || st.inFlight {
			continue
		}
		wake := st.nextPlan
		if s.resident != nil {
			at := wake
			if at < now {
				at = now
			}
			if ok, open := s.resident(st.slave, at); !ok && open > wake {
				// The poll cannot execute before the slave's residency
				// window opens; don't wake for nothing.
				wake = open
			}
		}
		if wake < until {
			until = wake
		}
	}
	return piconet.Idle(until)
}

// OnOutcome implements piconet.Scheduler.
func (s *Scheduler) OnOutcome(o piconet.Outcome) {
	switch o.Kind {
	case piconet.ActionPollBE:
		s.beOutcomes++
		s.be.Observe(poller.Outcome{
			Slave:      o.Slave,
			End:        o.End,
			DownBytes:  o.Down.Bytes,
			UpBytes:    o.Up.Bytes,
			Slots:      int((o.End - o.Start) / baseband.SlotDuration),
			UpMoreData: o.UpMoreData,
		})
	case piconet.ActionPollGS:
		s.gsOutcomes++
		s.onGSOutcome(o)
	}
}

// onGSOutcome advances the planning state of the stream the poll served.
func (s *Scheduler) onGSOutcome(o piconet.Outcome) {
	var st *stream
	if o.Down.Flow != piconet.None {
		st = s.byFlow[o.Down.Flow]
	}
	if st == nil && o.Up.Flow != piconet.None {
		st = s.byFlow[o.Up.Flow]
	}
	if st == nil {
		// A GS poll that carried neither leg's flow id: find the
		// in-flight stream for the slave.
		for _, cand := range s.streams {
			if (cand.inFlight || cand.retryInFlight) && cand.slave == o.Slave {
				st = cand
				break
			}
		}
	}
	if st == nil {
		return
	}
	lostGS := o.Down.Lost || o.Up.Lost
	if st.retryInFlight {
		// A recovery poll completed: it does not touch the planning
		// state; another round is queued if the retry itself lost a
		// segment.
		st.retryInFlight = false
		st.retryPending = lostGS
		return
	}
	if !st.inFlight {
		return
	}
	if s.lossRecovery {
		// A successful planned poll retransmits the ARQ head itself,
		// so the pending flag tracks only the latest exchange.
		st.retryPending = lostGS
	}
	st.inFlight = false
	plan := st.inFlightPlan

	// Track the primary flow's packet progress for rule (a).
	primaryID := st.down
	primaryLeg := o.Down
	if st.primaryDir == piconet.Up {
		primaryID = st.up
		primaryLeg = o.Up
	}
	primaryServed := primaryLeg.Flow == primaryID && primaryLeg.Bytes > 0
	primaryCompleted := primaryServed && primaryLeg.CompletedPacketSize > 0
	anyServed := o.Down.Bytes > 0 || o.Up.Bytes > 0

	if primaryServed && !st.pktInProgress {
		st.pktInProgress = true
		st.pktFirstPlan = plan
	}

	next := plan + st.interval // the §3.1 fixed grid default
	switch {
	case primaryCompleted:
		if s.hasRule(PostponeAfterPacket) {
			// Rule (a): the packet pays L/R of poll budget from
			// its first poll's planned time (paper eq. 10).
			pay := time.Duration(float64(primaryLeg.CompletedPacketSize) / st.rate * float64(time.Second))
			if postponed := st.pktFirstPlan + pay; postponed > next {
				next = postponed
			}
		}
		st.pktInProgress = false
	case !anyServed:
		if s.hasRule(PostponeAfterEmpty) {
			// Rule (b): plan from the actual poll time.
			if postponed := o.Start + st.interval; postponed > next {
				next = postponed
			}
		}
	}
	st.nextPlan = next
	st.planned = true
}

// OnDownArrival implements piconet.Scheduler: it revives dormant
// (rule-(c)-skipped) streams.
func (s *Scheduler) OnDownArrival(flow piconet.FlowID, now sim.Time) {
	st, ok := s.byFlow[flow]
	if !ok || st.planned || st.inFlight {
		return
	}
	// A skipped plan proved the queue empty at that moment, so planning
	// at the arrival keeps executed polls at least t apart.
	st.nextPlan = now
	st.planned = true
}

// StreamInfo is a diagnostic snapshot of one poll stream.
type StreamInfo struct {
	Priority int
	Slave    piconet.SlaveID
	Down, Up piconet.FlowID
	Interval time.Duration
	NextPlan sim.Time
	Planned  bool
	Polls    uint64
	Skipped  uint64
}

// Streams returns diagnostic snapshots in priority order.
func (s *Scheduler) Streams() []StreamInfo {
	out := make([]StreamInfo, 0, len(s.streams))
	for _, st := range s.streams {
		out = append(out, StreamInfo{
			Priority: st.priority,
			Slave:    st.slave,
			Down:     st.down,
			Up:       st.up,
			Interval: st.interval,
			NextPlan: st.nextPlan,
			Planned:  st.planned,
			Polls:    st.polls,
			Skipped:  st.skipped,
		})
	}
	return out
}

// beView adapts the piconet's master-side knowledge to the poller.View
// interface, restricted to slaves that carry best-effort flows.
type beView struct {
	pn     *piconet.Piconet
	slaves []piconet.SlaveID
	downBE map[piconet.SlaveID][]piconet.FlowID
	// worstSlots bounds any best-effort exchange for SCO window fitting.
	worstSlots int
}

var _ poller.View = (*beView)(nil)

func newBEView(pn *piconet.Piconet, gs map[piconet.FlowID]*stream) *beView {
	v := &beView{pn: pn, downBE: make(map[piconet.SlaveID][]piconet.FlowID), worstSlots: 2}
	maxDown, maxUp := 1, 1
	for _, slave := range pn.Slaves() {
		hasBE := false
		for _, id := range pn.FlowsAt(slave) {
			cfg, ok := pn.FlowConfig(id)
			if !ok || cfg.Class != piconet.BestEffort || !pn.FlowActive(id) {
				continue
			}
			hasBE = true
			if cfg.Dir == piconet.Down {
				v.downBE[slave] = append(v.downBE[slave], id)
				if s := cfg.Allowed.MaxSlots(); s > maxDown {
					maxDown = s
				}
			} else if s := cfg.Allowed.MaxSlots(); s > maxUp {
				maxUp = s
			}
		}
		if hasBE {
			v.slaves = append(v.slaves, slave)
		}
	}
	v.worstSlots = maxDown + maxUp
	return v
}

// Slaves implements poller.View.
func (v *beView) Slaves() []piconet.SlaveID { return v.slaves }

// DownBacklog implements poller.View.
func (v *beView) DownBacklog(slave piconet.SlaveID) int {
	total := 0
	for _, id := range v.downBE[slave] {
		total += v.pn.DownQueueLen(id)
	}
	return total
}
