package core_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/poller"
	"bluegs/internal/sim"
	"bluegs/internal/tspec"
)

// xiPaper is the piconet-wide worst exchange with DH1+DH3: 6 slots.
const xiPaper = 3750 * time.Microsecond

// gsRequest builds the paper's §4.1 GS request at the given rate.
func gsRequest(id piconet.FlowID, slave piconet.SlaveID, dir piconet.Direction, rate float64) admission.Request {
	return admission.Request{
		ID:      id,
		Slave:   slave,
		Dir:     dir,
		Spec:    tspec.CBR(20*time.Millisecond, 144, 176),
		Rate:    rate,
		Allowed: baseband.PaperTypes,
	}
}

// attachCBR schedules a CBR source into a flow: one packet every interval,
// sizes uniform in [minSize, maxSize], starting at phase.
func attachCBR(t testing.TB, s *sim.Simulator, pn *piconet.Piconet, flow piconet.FlowID,
	interval, phase time.Duration, minSize, maxSize int) {
	t.Helper()
	var tick func()
	tick = func() {
		size := minSize
		if maxSize > minSize {
			size += s.Rand().Intn(maxSize - minSize + 1)
		}
		if err := pn.EnqueuePacket(flow, size); err != nil {
			t.Errorf("EnqueuePacket(%d): %v", flow, err)
			return
		}
		s.After(interval, tick)
	}
	s.Schedule(phase, tick)
}

// buildPaperGS builds a piconet holding the admitted GS flows of the
// controller plus any extra BE flows, with CBR sources attached to the GS
// flows (paper §4.1 sources).
func buildPaperGS(t testing.TB, s *sim.Simulator, ctrl *admission.Controller, opts ...core.Option) (*piconet.Piconet, *core.Scheduler) {
	t.Helper()
	pn := piconet.New(s)
	added := map[piconet.SlaveID]bool{}
	for _, pf := range ctrl.Flows() {
		if !added[pf.Request.Slave] {
			if err := pn.AddSlave(pf.Request.Slave); err != nil {
				t.Fatalf("AddSlave: %v", err)
			}
			added[pf.Request.Slave] = true
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID:      pf.Request.ID,
			Slave:   pf.Request.Slave,
			Dir:     pf.Request.Dir,
			Class:   piconet.Guaranteed,
			Allowed: pf.Request.Allowed,
		}); err != nil {
			t.Fatalf("AddFlow: %v", err)
		}
	}
	sched, err := core.New(pn, ctrl.Flows(), opts...)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	pn.SetScheduler(sched)
	return pn, sched
}

func admitPaperFlows(t testing.TB, rate float64) *admission.Controller {
	t.Helper()
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	reqs := []admission.Request{
		gsRequest(1, 1, piconet.Up, rate),
		gsRequest(2, 2, piconet.Down, rate),
		gsRequest(3, 2, piconet.Up, rate),
		gsRequest(4, 3, piconet.Up, rate),
	}
	for _, r := range reqs {
		if _, err := ctrl.Admit(r); err != nil {
			t.Fatalf("Admit(%d): %v", r.ID, err)
		}
	}
	return ctrl
}

// TestDelayBoundsHoldPaperScenario is the paper's §4.2 headline on a short
// horizon: with the variable-interval PFP poller, no GS packet delay
// exceeds its exported bound.
func TestDelayBoundsHoldPaperScenario(t *testing.T) {
	for _, rate := range []float64{8800, 10000, 12800} {
		rate := rate
		t.Run(time.Duration(float64(time.Second)*144/rate).String(), func(t *testing.T) {
			s := sim.New(sim.WithSeed(42))
			ctrl := admitPaperFlows(t, rate)
			pn, _ := buildPaperGS(t, s, ctrl)
			// Paper sources: packet every 20 ms, uniform 144..176,
			// staggered phases.
			for i, pf := range ctrl.Flows() {
				attachCBR(t, s, pn, pf.Request.ID, 20*time.Millisecond,
					time.Duration(i)*3*time.Millisecond, 144, 176)
			}
			if err := pn.Start(); err != nil {
				t.Fatalf("Start: %v", err)
			}
			if err := s.Run(30 * time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := pn.Err(); err != nil {
				t.Fatalf("engine: %v", err)
			}
			for _, pf := range ctrl.Flows() {
				ds, _ := pn.FlowDelayStats(pf.Request.ID)
				if ds.Count() < 1400 {
					t.Fatalf("flow %d: only %d packets", pf.Request.ID, ds.Count())
				}
				if ds.Max() > pf.Bound {
					t.Fatalf("flow %d: max delay %v exceeds bound %v",
						pf.Request.ID, ds.Max(), pf.Bound)
				}
			}
		})
	}
}

// TestFixedIntervalBoundsHold: the §3.1 poller also meets the bounds (it
// just wastes more slots).
func TestFixedIntervalBoundsHold(t *testing.T) {
	s := sim.New(sim.WithSeed(7))
	ctrl := admitPaperFlows(t, 12800)
	pn, sched := buildPaperGS(t, s, ctrl, core.WithMode(core.FixedInterval))
	if sched.Rules() != 0 {
		t.Fatalf("fixed mode rules = %v, want none", sched.Rules())
	}
	for i, pf := range ctrl.Flows() {
		attachCBR(t, s, pn, pf.Request.ID, 20*time.Millisecond,
			time.Duration(i)*time.Millisecond, 144, 176)
	}
	if err := pn.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, pf := range ctrl.Flows() {
		ds, _ := pn.FlowDelayStats(pf.Request.ID)
		if ds.Max() > pf.Bound {
			t.Fatalf("flow %d: max delay %v exceeds bound %v", pf.Request.ID, ds.Max(), pf.Bound)
		}
	}
}

// TestVariableSavesSlotsVersusFixed is the paper's §3.2/§4.2 efficiency
// claim: the variable-interval poller consumes fewer GS slots than the
// fixed-interval poller for identical traffic and bounds.
func TestVariableSavesSlotsVersusFixed(t *testing.T) {
	run := func(mode core.Mode) piconet.SlotAccount {
		s := sim.New(sim.WithSeed(11))
		ctrl := admitPaperFlows(t, 12800)
		pn, _ := buildPaperGS(t, s, ctrl, core.WithMode(mode))
		for i, pf := range ctrl.Flows() {
			attachCBR(t, s, pn, pf.Request.ID, 20*time.Millisecond,
				time.Duration(i)*2*time.Millisecond, 144, 176)
		}
		if err := pn.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := s.Run(20 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return pn.SlotAccount(s.Now())
	}
	fixed := run(core.FixedInterval)
	variable := run(core.VariableInterval)
	fixedGS := fixed.GSData + fixed.GSOverhead
	variableGS := variable.GSData + variable.GSOverhead
	if variableGS >= fixedGS {
		t.Fatalf("variable GS slots %d >= fixed %d; improvements save nothing", variableGS, fixedGS)
	}
	// Overhead specifically should shrink (fewer POLL/NULL exchanges).
	if variable.GSOverhead >= fixed.GSOverhead {
		t.Fatalf("variable GS overhead %d >= fixed %d", variable.GSOverhead, fixed.GSOverhead)
	}
}

// TestSkipRuleGoesDormant: a master-to-slave-only GS flow with no traffic
// consumes zero polls under rule (c), and revives on arrivals.
func TestSkipRuleGoesDormant(t *testing.T) {
	s := sim.New(sim.WithSeed(3))
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	if _, err := ctrl.Admit(gsRequest(1, 1, piconet.Down, 12800)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	pn, sched := buildPaperGS(t, s, ctrl)
	if err := pn.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Idle for a second: with rule (c) the stream goes dormant after one
	// skip; no GS polls at all.
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := sched.GSPolls(); got != 0 {
		t.Fatalf("dormant stream executed %d polls, want 0", got)
	}
	if got := sched.SkippedPolls(); got == 0 {
		t.Fatal("no skips recorded")
	}
	acct := pn.SlotAccount(s.Now())
	if acct.GSOverhead != 0 {
		t.Fatalf("dormant stream wasted %d overhead slots", acct.GSOverhead)
	}
	// An arrival revives the stream and is served with a sane delay.
	if err := pn.EnqueuePacket(1, 176); err != nil {
		t.Fatalf("EnqueuePacket: %v", err)
	}
	if err := s.Run(s.Now() + 100*time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	del, _ := pn.FlowDelivered(1)
	if del.Packets() != 1 {
		t.Fatalf("delivered %d packets after revival, want 1", del.Packets())
	}
	pf, _ := ctrl.Find(1)
	ds, _ := pn.FlowDelayStats(1)
	if ds.Max() > pf.Bound {
		t.Fatalf("revived packet delay %v exceeds bound %v", ds.Max(), pf.Bound)
	}
}

// TestFixedModePollsEmptyDownFlow: without rule (c) the fixed poller keeps
// polling an idle down flow (the §3.2 drawback), wasting slots.
func TestFixedModePollsEmptyDownFlow(t *testing.T) {
	s := sim.New(sim.WithSeed(3))
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	if _, err := ctrl.Admit(gsRequest(1, 1, piconet.Down, 12800)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	pn, sched := buildPaperGS(t, s, ctrl, core.WithMode(core.FixedInterval))
	if err := pn.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// t = 11.25 ms: ~88 polls in a second, each wasting a POLL+NULL.
	if got := sched.GSPolls(); got < 80 {
		t.Fatalf("fixed poller executed %d polls, want ~88", got)
	}
	acct := pn.SlotAccount(s.Now())
	if acct.GSOverhead < 160 {
		t.Fatalf("GS overhead = %d slots, want ~176 wasted", acct.GSOverhead)
	}
}

// TestRuleAPostponesAfterLargePacket: serving a maximum-size packet (176
// bytes > eta_min = 144) postpones the next poll beyond the fixed grid.
func TestRuleAPostponesAfterLargePacket(t *testing.T) {
	s := sim.New(sim.WithSeed(5))
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	if _, err := ctrl.Admit(gsRequest(1, 1, piconet.Up, 12800)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	pn, sched := buildPaperGS(t, s, ctrl, core.WithImprovements(core.PostponeAfterPacket))
	if err := pn.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// One maximal packet at t=0: first poll at 0, completes; rule (a)
	// postpones the next plan to 0 + 176/12800 s = 13.75 ms instead of
	// the fixed 11.25 ms.
	if err := pn.EnqueuePacket(1, 176); err != nil {
		t.Fatalf("EnqueuePacket: %v", err)
	}
	if err := s.Run(5 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, st := range sched.Streams() {
		if st.Polls != 1 {
			t.Fatalf("polls = %d, want 1", st.Polls)
		}
		if want := sim.Time(13750 * time.Microsecond); st.NextPlan != want {
			t.Fatalf("next plan = %v, want %v (rule a)", st.NextPlan, want)
		}
	}
}

// TestRuleBPlansFromActualTime: an unsuccessful poll executed late plans
// the next poll from its actual time.
func TestRuleBPlansFromActualTime(t *testing.T) {
	s := sim.New(sim.WithSeed(5))
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	// An up flow (cannot be skipped: the master does not know the slave
	// queue).
	if _, err := ctrl.Admit(gsRequest(1, 1, piconet.Up, 12800)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	pn, sched := buildPaperGS(t, s, ctrl, core.WithImprovements(core.PostponeAfterEmpty))
	if err := pn.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// No traffic: poll at t=0 is unsuccessful (POLL+NULL ends at 1.25ms);
	// rule (b) plans the next from the actual time 0 (same here), so the
	// grid stays 11.25ms; but after a few rounds actual and planned times
	// drift apart only if the master is busy. Simply check spacing is by
	// actual time: with an idle master actual == planned, so successive
	// plans advance by exactly t.
	if err := s.Run(40 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := sched.Streams()[0]
	if st.Polls < 3 {
		t.Fatalf("polls = %d, want >= 3", st.Polls)
	}
	// Plans progress on the 11.25ms grid from each poll's actual start,
	// which aligns to the 1.25ms decision grid: 0 -> 11.25 (exec 11.25?
	// aligned up to 12.5) etc. The next plan must be actual+11.25ms and
	// actual is slot-pair aligned.
	plan := time.Duration(st.NextPlan)
	if plan%(1250*time.Microsecond) == plan%(11250*time.Microsecond) {
		// Non-degenerate check below instead.
		_ = plan
	}
	if st.NextPlan <= 33750*time.Microsecond {
		t.Fatalf("next plan %v too early; rule (b) should plan from actual times", st.NextPlan)
	}
}

// TestBETrafficServedAroundGS: BE flows receive leftover capacity while GS
// bounds hold.
func TestBETrafficServedAroundGS(t *testing.T) {
	s := sim.New(sim.WithSeed(9))
	ctrl := admitPaperFlows(t, 12800)
	pn, sched := buildPaperGS(t, s, ctrl)
	// Add one BE slave with saturating traffic both ways.
	if err := pn.AddSlave(4); err != nil {
		t.Fatalf("AddSlave: %v", err)
	}
	for _, cfg := range []piconet.FlowConfig{
		{ID: 10, Slave: 4, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
		{ID: 11, Slave: 4, Dir: piconet.Up, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
	} {
		if err := pn.AddFlow(cfg); err != nil {
			t.Fatalf("AddFlow: %v", err)
		}
	}
	// Rebuild the scheduler so the BE view sees slave 4.
	sched2, err := core.New(pn, ctrl.Flows())
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	pn.SetScheduler(sched2)
	sched = sched2
	for i, pf := range ctrl.Flows() {
		attachCBR(t, s, pn, pf.Request.ID, 20*time.Millisecond,
			time.Duration(i)*2*time.Millisecond, 144, 176)
	}
	// Saturating BE: a packet every 2 ms each way (704 kbps demand).
	attachCBR(t, s, pn, 10, 2*time.Millisecond, 0, 176, 176)
	attachCBR(t, s, pn, 11, 2*time.Millisecond, time.Millisecond, 176, 176)
	if err := pn.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, pf := range ctrl.Flows() {
		ds, _ := pn.FlowDelayStats(pf.Request.ID)
		if ds.Max() > pf.Bound {
			t.Fatalf("flow %d: max delay %v exceeds bound %v under BE load",
				pf.Request.ID, ds.Max(), pf.Bound)
		}
	}
	// BE got substantial leftover throughput.
	beKbps := pn.SlaveThroughputKbps(4, s.Now())
	if beKbps < 100 {
		t.Fatalf("BE throughput = %.1f kbps, want substantial leftover", beKbps)
	}
	if sched.BEPolls() == 0 {
		t.Fatal("no BE polls recorded")
	}
}

// TestConstructionErrors covers New validation.
func TestConstructionErrors(t *testing.T) {
	s := sim.New()
	ctrl := admitPaperFlows(t, 12800)
	if _, err := core.New(nil, ctrl.Flows()); !errors.Is(err, core.ErrNilPiconet) {
		t.Fatalf("nil piconet: err = %v", err)
	}
	pn := piconet.New(s)
	if _, err := core.New(pn, ctrl.Flows()); !errors.Is(err, core.ErrFlowMismatch) {
		t.Fatalf("missing flows: err = %v", err)
	}
	// Flow exists but is BE class.
	if err := pn.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := pn.AddFlow(piconet.FlowConfig{ID: 1, Slave: 1, Dir: piconet.Up, Class: piconet.BestEffort, Allowed: baseband.PaperTypes}); err != nil {
		t.Fatal(err)
	}
	one := ctrl.Flows()[:1]
	if _, err := core.New(pn, one); !errors.Is(err, core.ErrFlowMismatch) {
		t.Fatalf("class mismatch: err = %v", err)
	}
	if _, err := core.New(pn, []*admission.PlannedFlow{nil}); !errors.Is(err, core.ErrBadPlan) {
		t.Fatalf("nil planned flow: err = %v", err)
	}
}

// TestPropertyRandomAdmittedSetsMeetBounds is the repository's headline
// property test: for random admitted GS flow sets under conformant CBR
// traffic with saturating BE background, every measured delay stays within
// the exported bound.
func TestPropertyRandomAdmittedSetsMeetBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is long")
	}
	for trial := 0; trial < 8; trial++ {
		trial := trial
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		t.Run(time.Now().Format("t")+string(rune('A'+trial)), func(t *testing.T) {
			ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
			type src struct {
				flow     piconet.FlowID
				interval time.Duration
				min, max int
			}
			var sources []src
			nFlows := 1 + rng.Intn(5)
			id := piconet.FlowID(1)
			for i := 0; i < nFlows; i++ {
				slave := piconet.SlaveID(1 + i%3)
				dir := piconet.Up
				if rng.Intn(2) == 0 {
					dir = piconet.Down
				}
				interval := time.Duration(15+rng.Intn(30)) * time.Millisecond
				maxSize := 100 + rng.Intn(200)
				minSize := 50 + rng.Intn(maxSize-60)
				spec := tspec.CBR(interval, minSize, maxSize)
				rate := spec.TokenRate * (1 + rng.Float64())
				req := admission.Request{
					ID: id, Slave: slave, Dir: dir,
					Spec: spec, Rate: rate, Allowed: baseband.PaperTypes,
				}
				if _, err := ctrl.Admit(req); err != nil {
					continue // rejected: fine, try the next
				}
				sources = append(sources, src{flow: id, interval: interval, min: minSize, max: maxSize})
				id++
			}
			if len(sources) == 0 {
				t.Skip("nothing admitted this trial")
			}
			s := sim.New(sim.WithSeed(int64(200 + trial)))
			pn, _ := buildPaperGS(t, s, ctrl)
			// Background BE slave with saturating traffic.
			if err := pn.AddSlave(7); err != nil {
				t.Fatal(err)
			}
			if err := pn.AddFlow(piconet.FlowConfig{ID: 99, Slave: 7, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes}); err != nil {
				t.Fatal(err)
			}
			sched, err := core.New(pn, ctrl.Flows())
			if err != nil {
				t.Fatal(err)
			}
			pn.SetScheduler(sched)
			for _, sc := range sources {
				attachCBR(t, s, pn, sc.flow, sc.interval,
					time.Duration(rng.Intn(10))*time.Millisecond, sc.min, sc.max)
			}
			attachCBR(t, s, pn, 99, 2*time.Millisecond, 0, 176, 176)
			if err := pn.Start(); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			if err := pn.Err(); err != nil {
				t.Fatalf("engine: %v", err)
			}
			for _, pf := range ctrl.Flows() {
				ds, ok := pn.FlowDelayStats(pf.Request.ID)
				if !ok || ds.Count() == 0 {
					t.Fatalf("flow %d: no delay samples", pf.Request.ID)
				}
				if ds.Max() > pf.Bound {
					t.Fatalf("flow %d: max delay %v exceeds bound %v (trial %d)",
						pf.Request.ID, ds.Max(), pf.Bound, trial)
				}
			}
		})
	}
}

// TestIdleWithNoBESlavesSleeps: a GS-only piconet with dormant streams must
// not busy-poll.
func TestIdleWithNoBESlavesSleeps(t *testing.T) {
	s := sim.New()
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	if _, err := ctrl.Admit(gsRequest(1, 1, piconet.Down, 12800)); err != nil {
		t.Fatal(err)
	}
	pn, _ := buildPaperGS(t, s, ctrl)
	if err := pn.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The only events should be a handful of decisions, not ~8000
	// busy-poll decisions.
	if got := s.Executed(); got > 100 {
		t.Fatalf("executed %d events while fully idle, want few", got)
	}
}

func TestPFPDefaultBEPoller(t *testing.T) {
	s := sim.New()
	ctrl := admitPaperFlows(t, 12800)
	_, sched := buildPaperGS(t, s, ctrl)
	if got := sched.BEPoller().Name(); got != "pfp" {
		t.Fatalf("default BE poller = %q, want pfp", got)
	}
	if sched.Mode() != core.VariableInterval {
		t.Fatalf("default mode = %v", sched.Mode())
	}
}

func TestWithBEPollerOption(t *testing.T) {
	s := sim.New()
	ctrl := admitPaperFlows(t, 12800)
	_, sched := buildPaperGS(t, s, ctrl, core.WithBEPoller(&poller.RoundRobin{}))
	if got := sched.BEPoller().Name(); got != "round-robin" {
		t.Fatalf("BE poller = %q, want round-robin", got)
	}
}
