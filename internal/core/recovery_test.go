package core_test

import (
	"testing"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
	"bluegs/internal/sim"
)

// buildLossy builds a single-GS-flow piconet over a BER channel with ARQ.
func buildLossy(t *testing.T, seed int64, ber float64, recovery bool) (*sim.Simulator, *piconet.Piconet, *core.Scheduler, *admission.Controller) {
	t.Helper()
	s := sim.New(sim.WithSeed(seed))
	ctrl := admission.NewController(admission.Config{MaxExchange: xiPaper})
	if _, err := ctrl.Admit(gsRequest(1, 1, piconet.Up, 12800)); err != nil {
		t.Fatalf("Admit: %v", err)
	}
	pn := piconet.New(s,
		piconet.WithRadio(radio.BER{BitErrorRate: ber}),
		piconet.WithARQ(true),
	)
	if err := pn.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := pn.AddFlow(piconet.FlowConfig{
		ID: 1, Slave: 1, Dir: piconet.Up,
		Class: piconet.Guaranteed, Allowed: gsRequest(1, 1, piconet.Up, 12800).Allowed,
	}); err != nil {
		t.Fatal(err)
	}
	sched, err := core.New(pn, ctrl.Flows(), core.WithLossRecovery(recovery))
	if err != nil {
		t.Fatal(err)
	}
	pn.SetScheduler(sched)
	return s, pn, sched, ctrl
}

func TestLossRecoveryImprovesDelays(t *testing.T) {
	run := func(recovery bool) (maxDelay time.Duration, delivered uint64, recoveryPolls uint64) {
		s, pn, sched, _ := buildLossy(t, 21, 3e-4, recovery)
		attachCBR(t, s, pn, 1, 20*time.Millisecond, 0, 144, 176)
		if err := pn.Start(); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := pn.Err(); err != nil {
			t.Fatalf("engine: %v", err)
		}
		ds, _ := pn.FlowDelayStats(1)
		del, _ := pn.FlowDelivered(1)
		return ds.Max(), del.Packets(), sched.RecoveryPolls()
	}
	maxNo, delNo, pollsNo := run(false)
	maxRec, delRec, pollsRec := run(true)
	if pollsNo != 0 {
		t.Fatalf("recovery disabled but %d recovery polls issued", pollsNo)
	}
	if pollsRec == 0 {
		t.Fatal("recovery enabled but no recovery polls issued at BER 3e-4")
	}
	if maxRec >= maxNo {
		t.Fatalf("recovery should cut the worst delay: %v vs %v", maxRec, maxNo)
	}
	if delRec < delNo {
		t.Fatalf("recovery should not reduce delivery: %d vs %d", delRec, delNo)
	}
}

func TestLossRecoveryDoesNotDisturbOtherFlows(t *testing.T) {
	// Two GS flows; only flow 1's slave suffers losses (uniform BER hits
	// both, so instead verify globally: with recovery enabled, the
	// loss-free analytic bound still holds for packets that never lost a
	// segment is not separable — so assert the stronger practical
	// property: at a BER low enough that each packet loses at most one
	// segment attempt, every delay stays within bound + one poll round.
	s := sim.New(sim.WithSeed(33))
	ctrl := admitPaperFlows(t, 12800)
	pn := piconet.New(s,
		piconet.WithRadio(radio.BER{BitErrorRate: 1e-4}),
		piconet.WithARQ(true),
	)
	added := map[piconet.SlaveID]bool{}
	for _, pf := range ctrl.Flows() {
		if !added[pf.Request.Slave] {
			if err := pn.AddSlave(pf.Request.Slave); err != nil {
				t.Fatal(err)
			}
			added[pf.Request.Slave] = true
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: pf.Request.ID, Slave: pf.Request.Slave, Dir: pf.Request.Dir,
			Class: piconet.Guaranteed, Allowed: pf.Request.Allowed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched, err := core.New(pn, ctrl.Flows(), core.WithLossRecovery(true))
	if err != nil {
		t.Fatal(err)
	}
	pn.SetScheduler(sched)
	for i, pf := range ctrl.Flows() {
		attachCBR(t, s, pn, pf.Request.ID, 20*time.Millisecond,
			time.Duration(i)*3*time.Millisecond, 144, 176)
	}
	if err := pn.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// One recovery round adds at most one exchange plus scheduling slack;
	// allow half a poll interval beyond the analytic (error-free) bound.
	slack := 6 * time.Millisecond
	for _, pf := range ctrl.Flows() {
		ds, _ := pn.FlowDelayStats(pf.Request.ID)
		if ds.Max() > pf.Bound+slack {
			t.Fatalf("flow %d: max delay %v far beyond bound %v despite recovery",
				pf.Request.ID, ds.Max(), pf.Bound)
		}
		del, _ := pn.FlowDelivered(pf.Request.ID)
		if del.Packets() < 1400 {
			t.Fatalf("flow %d delivered only %d packets", pf.Request.ID, del.Packets())
		}
	}
}

func TestRecoveryPollsAccounting(t *testing.T) {
	s, pn, sched, _ := buildLossy(t, 5, 0, true)
	attachCBR(t, s, pn, 1, 20*time.Millisecond, 0, 144, 176)
	if err := pn.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// No losses on an error-free channel: recovery must stay silent.
	if got := sched.RecoveryPolls(); got != 0 {
		t.Fatalf("recovery polls on lossless channel = %d", got)
	}
}
