package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"bluegs/internal/harness"
)

func adaptiveCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		Duration: 2 * time.Second,
		Seed:     1,
		CITarget: 0.1,
		MaxReps:  12,
	}
}

var adaptiveTargets = []time.Duration{30 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond}

// TestFigure5AdaptiveDeterministicAcrossWorkers is the satellite
// acceptance test: with the same tolerance, worker counts 1, 4 and
// GOMAXPROCS produce byte-identical per-cell replication counts and
// rendered tables.
func TestFigure5AdaptiveDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		reps  []int
		table string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := adaptiveCfg(t)
		cfg.Workers = workers
		rows, tbl, err := Figure5(cfg, adaptiveTargets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{table: tbl.String()}
		for _, r := range rows {
			got.reps = append(got.reps, r.Reps)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got.reps, base.reps) {
			t.Fatalf("workers=%d rep counts diverged: %v vs %v", workers, got.reps, base.reps)
		}
		if got.table != base.table {
			t.Fatalf("workers=%d table diverged:\n--- got ---\n%s--- want ---\n%s",
				workers, got.table, base.table)
		}
	}
}

// TestFigure5AdaptiveWarmCacheReproduces: a warmed cache replays the
// adaptive sweep with zero simulator executions and reproduces the
// cold-run output exactly.
func TestFigure5AdaptiveWarmCacheReproduces(t *testing.T) {
	cache, err := harness.NewRunCache(harness.CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := adaptiveCfg(t)
	cfg.Cache = cache
	coldRows, coldTbl, err := Figure5(cfg, adaptiveTargets)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range coldRows {
		if r.CacheHits != 0 {
			t.Fatalf("cold run reported %d cache hits", r.CacheHits)
		}
	}
	warmRows, warmTbl, err := Figure5(cfg, adaptiveTargets)
	if err != nil {
		t.Fatal(err)
	}
	if warmTbl.String() != coldTbl.String() {
		t.Fatalf("warm table drifted:\n--- warm ---\n%s--- cold ---\n%s",
			warmTbl.String(), coldTbl.String())
	}
	for i, r := range warmRows {
		if r.CacheHits != r.Reps {
			t.Fatalf("target %v: %d of %d reps simulated despite a warm cache",
				r.Target, r.Reps-r.CacheHits, r.Reps)
		}
		if r.Reps != coldRows[i].Reps || r.Metric != coldRows[i].Metric {
			t.Fatalf("target %v outcome drifted", r.Target)
		}
	}
}

// TestFigure5AdaptiveConvergesAndReports: every point stops within the
// cap, and the table carries the reps and CI half-width columns.
func TestFigure5AdaptiveConvergesAndReports(t *testing.T) {
	cfg := adaptiveCfg(t)
	rows, tbl, err := Figure5(cfg, adaptiveTargets)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Converged {
			t.Fatalf("target %v did not converge within %d reps", r.Target, cfg.MaxReps)
		}
		if r.Reps < 3 || r.Reps > cfg.MaxReps {
			t.Fatalf("target %v used %d reps", r.Target, r.Reps)
		}
		if r.Metric.N != r.Reps {
			t.Fatalf("target %v metric summarises %d of %d reps", r.Target, r.Metric.N, r.Reps)
		}
	}
	for _, want := range []string{"reps", "ci_half", "adaptive reps"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestBaselinePollersAdaptive: the poller comparison supports the same
// adaptive mode with BE throughput as its natural metric.
func TestBaselinePollersAdaptive(t *testing.T) {
	cfg := adaptiveCfg(t)
	cfg.CITarget = 0.2
	rows, tbl, err := BaselinePollers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 pollers", len(rows))
	}
	for _, r := range rows {
		if r.Reps < 3 || r.Reps > cfg.MaxReps {
			t.Fatalf("poller %s used %d reps", r.Poller, r.Reps)
		}
	}
	if !strings.Contains(tbl.String(), "reps") {
		t.Fatalf("table missing reps column:\n%s", tbl.String())
	}
}

// TestCrossExperimentCacheReuse: Figure5 and TableT3 share the 46 ms grid
// cell, so a shared cache lets T3 replay Figure5's runs without
// simulating.
func TestCrossExperimentCacheReuse(t *testing.T) {
	cache, err := harness.NewRunCache(harness.CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Duration: 2 * time.Second, Seed: 1, Cache: cache}
	if _, _, err := Figure5(cfg, []time.Duration{46 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	if _, _, err := TableT3(cfg); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("T3 did not reuse Figure5's 46ms cell: %+v -> %+v", before, after)
	}
}

// TestConfigRejectsUnknownCIMetric: a bad metric name surfaces as an
// error instead of silently falling back.
func TestConfigRejectsUnknownCIMetric(t *testing.T) {
	cfg := adaptiveCfg(t)
	cfg.CIMetric = "bogus"
	if _, _, err := Figure5(cfg, adaptiveTargets); err == nil {
		t.Fatal("unknown CI metric accepted")
	}
}
