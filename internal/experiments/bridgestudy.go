package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/harness"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// BridgeRow is one point of the bridge study: a Hops-piconet route at one
// residency duty cycle and background load, admitted either with the
// residency-derated budget split or the naive baseline (full end-to-end
// budget per hop, no derate).
type BridgeRow struct {
	// Hops, Duty and GSLoad locate the workload cell.
	Hops   int
	Duty   float64
	GSLoad int
	// Naive tells which admission mode the row ran.
	Naive bool
	// Target is the end-to-end delay budget the route asked for.
	Target time.Duration
	// Delivered and Lost sum the route's packets across replications.
	Delivered, Lost uint64
	// DelayP99 and DelayMax take the worst replication's end-to-end
	// delay quantiles.
	DelayP99, DelayMax time.Duration
	// Violations counts replications whose measured end-to-end max
	// exceeded the target (must stay zero when derated).
	Violations int
	// BudgetUtilization is the mean over hops of admitted bound over
	// per-hop budget (first replication; the layout is shared). Derated
	// hops may exceed 1 — static routes clamp to the tightest
	// achievable bound when the derated share is unreachable — while
	// the naive baseline sits comfortably below 1 and violates anyway:
	// its per-hop ledger never sees the residency outage.
	BudgetUtilization float64
	// PeakQueue is the worst store-and-forward backlog at any bridge
	// across replications.
	PeakQueue int
	// Kbps is the route's delivered-throughput summary.
	Kbps stats.Summary
	// Reps is the number of replications aggregated.
	Reps int
}

// DefaultBridgeHops is the study's hop-count axis.
func DefaultBridgeHops() []int { return []int{1, 2, 3} }

// DefaultBridgeDuties is the forwarding duty-cycle axis.
func DefaultBridgeDuties() []float64 { return []float64{0.3, 0.5, 0.7} }

// DefaultBridgeLoads is the background-load axis (GS flows per piconet).
// One load keeps the default report tractable; pass more to sweep it.
func DefaultBridgeLoads() []int { return []int{1} }

// bridgeCell renders one (hops, duty, load, mode) grid cell.
func bridgeCell(hops int, duty float64, load int, naive bool) string {
	mode := "derated"
	if naive {
		mode = "naive"
	}
	return fmt.Sprintf("%dhop/d%.2f/%dgs/%s", hops, duty, load, mode)
}

// BridgeStudy is experiment E12: what end-to-end delay guarantees cost
// across bridges. Each cell runs the Bridged workload — Hops piconets
// chained by time-division bridge slaves, one end-to-end route under a
// 55 ms-per-hop budget, a background voice floor — twice: once with the
// route admitted hop by hop from an equal budget split with each hop's
// reservation derated by the bridge's residency duty cycle (composed with
// the FH collision term), and once with the naive baseline that grants
// every hop the full end-to-end budget and ignores residency. Packets
// queue at a bridge while it is resident elsewhere; the derated
// reservation polls often enough to drain that backlog inside the budget,
// the naive one does not — its max delay crosses the target even though
// every per-hop ledger looks healthy.
//
// One-hop cells degenerate to a flat GS flow (no bridge, no derate) and
// run only in derated mode; they anchor the routed path against the
// single-piconet results.
func BridgeStudy(cfg Config, hops []int, duties []float64, loads []int) ([]BridgeRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(hops) == 0 {
		hops = DefaultBridgeHops()
	}
	if len(duties) == 0 {
		duties = DefaultBridgeDuties()
	}
	if len(loads) == 0 {
		loads = DefaultBridgeLoads()
	}
	type point struct {
		hops  int
		duty  float64
		load  int
		naive bool
	}
	var cells []string
	byCell := make(map[string]point)
	add := func(p point) {
		cell := bridgeCell(p.hops, p.duty, p.load, p.naive)
		if _, dup := byCell[cell]; dup {
			return
		}
		cells = append(cells, cell)
		byCell[cell] = p
	}
	for _, load := range loads {
		for _, h := range hops {
			if h <= 1 {
				// No bridge: duty and derating are moot.
				add(point{hops: 1, duty: duties[0], load: load})
				continue
			}
			for _, duty := range duties {
				add(point{h, duty, load, false})
				add(point{h, duty, load, true})
			}
		}
	}
	grid := harness.Grid{Name: "bridge", Cells: cells, Build: func(cell string) scenario.Spec {
		p := byCell[cell]
		return scenario.Bridged(scenario.BridgedConfig{
			Hops:         p.hops,
			Duty:         p.duty,
			GSPerPiconet: p.load,
			Duration:     cfg.Duration,
			Naive:        p.naive,
		})
	}}
	results, err := cfg.execute(grid.Sweep(cfg.sweep()).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: bridge study: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E12: bridged routes — residency-derated budget split vs naive per-hop admission (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"hops", "duty", "gs_load", "admission", "target", "delivered",
		"e2e_p99", "e2e_max", "e2e_ok", "budget_util", "peak_queue", "route_kbps")
	order, cellRuns := harness.Cells(results)
	var rows []BridgeRow
	for _, cell := range order {
		rs := cellRuns[cell]
		p := byCell[cell]
		row := BridgeRow{
			Hops:   p.hops,
			Duty:   p.duty,
			GSLoad: p.load,
			Naive:  p.naive,
			Reps:   len(rs),
		}
		row.Kbps = harness.Aggregate(rs, func(r *scenario.Result) float64 {
			if len(r.Routes) == 0 {
				return 0
			}
			return r.Routes[0].Kbps
		})
		for _, r := range rs {
			for _, rr := range r.Result.Routes {
				row.Target = rr.Target
				row.Delivered += rr.Delivered
				row.Lost += rr.Lost
				if rr.DelayP99 > row.DelayP99 {
					row.DelayP99 = rr.DelayP99
				}
				if rr.DelayMax > row.DelayMax {
					row.DelayMax = rr.DelayMax
				}
				if rr.Violated() {
					row.Violations++
				}
				if rr.PeakQueue > row.PeakQueue {
					row.PeakQueue = rr.PeakQueue
				}
			}
		}
		if first := rs[0].Result.Routes; len(first) > 0 {
			row.BudgetUtilization = budgetUtilization(first[0], p.naive)
		}
		rows = append(rows, row)
		mode := "derated"
		if row.Naive {
			mode = "naive"
		}
		ok := "yes"
		if row.Violations > 0 {
			ok = fmt.Sprintf("VIOLATED×%d", row.Violations)
		}
		tbl.AddRow(row.Hops, fmt.Sprintf("%.1f", row.Duty), row.GSLoad, mode,
			row.Target, row.Delivered,
			row.DelayP99.Round(time.Microsecond), row.DelayMax.Round(time.Microsecond),
			ok, fmt.Sprintf("%.2f", row.BudgetUtilization), row.PeakQueue, kbpsCell(row.Kbps))
	}
	return rows, tbl, nil
}

// budgetUtilization averages each hop's admitted bound over its share of
// the end-to-end budget: an equal split for the derated mode (mirroring
// admission.SplitBudget), the full budget per hop for the naive baseline.
func budgetUtilization(rr scenario.RouteResult, naive bool) float64 {
	if len(rr.HopBounds) == 0 || rr.Target <= 0 {
		return 0
	}
	budgets := []time.Duration{rr.Target}
	if !naive {
		budgets = admission.SplitBudget(rr.Target, len(rr.HopBounds))
	}
	sum := 0.0
	for i, b := range rr.HopBounds {
		budget := budgets[0]
		if i < len(budgets) {
			budget = budgets[i]
		}
		sum += float64(b) / float64(budget)
	}
	return sum / float64(len(rr.HopBounds))
}
