package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"bluegs/internal/harness"
)

// TestBridgeStudyDeratingKeepsBounds is the E12 acceptance criterion: at
// every residency duty cycle, two-hop routes admitted from the
// residency-derated budget split meet their end-to-end bound over 30 s,
// while the naive baseline — full budget per hop, no residency derate —
// violates it. Packets queue while a bridge is resident elsewhere; only
// the derated reservation polls fast enough to drain the backlog in
// budget.
func TestBridgeStudyDeratingKeepsBounds(t *testing.T) {
	cfg := Config{Duration: 30 * time.Second, Seed: 1}
	duties := DefaultBridgeDuties()
	rows, _, err := BridgeStudy(cfg, []int{2}, duties, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(duties) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(duties))
	}
	derated := map[float64]BridgeRow{}
	naive := map[float64]BridgeRow{}
	for _, row := range rows {
		if row.Naive {
			naive[row.Duty] = row
		} else {
			derated[row.Duty] = row
		}
	}
	for _, duty := range duties {
		d, n := derated[duty], naive[duty]
		if d.Delivered == 0 || n.Delivered == 0 {
			t.Fatalf("duty %.1f: routes did not deliver (derated %d, naive %d)",
				duty, d.Delivered, n.Delivered)
		}
		if d.Violations != 0 {
			t.Fatalf("duty %.1f: derated admission violated its end-to-end bound (max %v > %v)",
				duty, d.DelayMax, d.Target)
		}
		if n.Violations == 0 {
			t.Fatalf("duty %.1f: naive baseline stayed inside the bound (max %v <= %v) — the study is not exercising the failure E12 exists to show",
				duty, n.DelayMax, n.Target)
		}
		if n.PeakQueue == 0 {
			t.Fatalf("duty %.1f: naive route built no bridge backlog, the violation has the wrong cause", duty)
		}
	}
}

// TestBridgeStudyDeterministicAcrossWorkers: the E12 sweep must render
// bit-identical tables at every worker count.
func TestBridgeStudyDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		rows  []BridgeRow
		table string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 2, Workers: workers}
		rows, tbl, err := BridgeStudy(cfg, []int{1, 2}, []float64{0.5}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("workers=%d: table diverged\n--- got ---\n%s--- want ---\n%s",
				workers, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("workers=%d: rows diverged", workers)
		}
	}
}

// TestBridgeStudyWarmCacheReplay: the E12 sweep replayed from a warm run
// cache reproduces the cold table — the route results and the per-hop
// admission records now travel through the cache record — without
// executing a single simulator.
func TestBridgeStudyWarmCacheReplay(t *testing.T) {
	dir := t.TempDir()
	run := func() (string, harness.CacheStats) {
		cache, err := harness.NewRunCache(harness.CacheConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 2, Cache: cache}
		_, tbl, err := BridgeStudy(cfg, []int{2}, []float64{0.3, 0.5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String(), cache.Stats()
	}
	cold, coldStats := run()
	if coldStats.Hits != 0 {
		t.Fatalf("cold pass hit the cache %d times", coldStats.Hits)
	}
	// A fresh cache instance over the same directory: every run replays
	// from the on-disk gob records — route rows included — without
	// executing a single simulator.
	warm, warmStats := run()
	if warm != cold {
		t.Fatalf("warm table differs\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if warmStats.Misses != 0 {
		t.Fatalf("warm pass executed %d simulations", warmStats.Misses)
	}
}
