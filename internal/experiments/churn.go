package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// ChurnRow is one point of the churn study: the online admission
// statistics and delay-bound compliance at one GS arrival rate.
type ChurnRow struct {
	// MeanArrival is the mean GS inter-arrival time of the cell.
	MeanArrival time.Duration
	// Requests/Accepted/Rejected count the timeline's add-gs outcomes,
	// summed across replications (the request sequence is spec data, so
	// every replication sees the same sequence; acceptance is a pure
	// function of the admission state and is identical too).
	Requests, Accepted, Rejected int
	// AcceptRatio is Accepted/Requests.
	AcceptRatio float64
	// Violations counts admitted GS flows whose measured max delay
	// exceeded their exported bound, across all replications (must be
	// zero: the paper's guarantee extends to flows admitted online).
	Violations int
	// GS and BE are delivered-throughput summaries across replications.
	GS, BE stats.Summary
	// Reps is the number of replications aggregated.
	Reps int
}

// DefaultChurnArrivals is the churn study's x-axis: mean GS inter-arrival
// times from heavy to light churn.
func DefaultChurnArrivals() []time.Duration {
	return []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second}
}

// ChurnStudy evaluates the online admission protocol under flow churn
// (experiment E8): Poisson GS arrivals with exponential holding times
// over a best-effort floor, swept over the arrival rate. Each request
// passes the paper's Fig. 3 admission test against whatever is installed
// at that moment; the row reports the accept ratio and verifies that
// every admitted flow's measured delay respected the bound exported at
// admission.
func ChurnStudy(cfg Config, arrivals []time.Duration) ([]ChurnRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(arrivals) == 0 {
		arrivals = DefaultChurnArrivals()
	}
	arrivals = uniqueTargets(arrivals)
	cells := make([]string, len(arrivals))
	byCell := make(map[string]time.Duration, len(arrivals))
	for i, a := range arrivals {
		cells[i] = a.String()
		byCell[cells[i]] = a
	}
	grid := harness.Grid{Name: "churn", Cells: cells, Build: func(cell string) scenario.Spec {
		return scenario.Churn(scenario.ChurnConfig{
			MeanArrival: byCell[cell],
			Duration:    cfg.Duration,
		})
	}}
	results, err := cfg.execute(grid.Sweep(cfg.sweep()).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: churn: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E8: online admission under GS flow churn (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"mean_arrival", "requests", "accepted", "rejected", "accept_ratio",
		"violations", "GS_kbps", "BE_kbps")
	order, cellRuns := harness.Cells(results)
	var rows []ChurnRow
	for _, cell := range order {
		rs := cellRuns[cell]
		row := ChurnRow{
			MeanArrival: byCell[cell],
			GS:          classKbps(rs, piconet.Guaranteed),
			BE:          classKbps(rs, piconet.BestEffort),
			Reps:        len(rs),
			Violations:  cellViolations(rs),
		}
		for _, r := range rs {
			for _, a := range r.Result.Admissions {
				if a.Op != scenario.OpAddGS {
					continue
				}
				row.Requests++
				if a.Accepted {
					row.Accepted++
				} else {
					row.Rejected++
				}
			}
		}
		if row.Requests > 0 {
			row.AcceptRatio = float64(row.Accepted) / float64(row.Requests)
		}
		rows = append(rows, row)
		tbl.AddRow(row.MeanArrival, row.Requests, row.Accepted, row.Rejected,
			fmt.Sprintf("%.3f", row.AcceptRatio), row.Violations,
			kbpsCell(row.GS), kbpsCell(row.BE))
	}
	return rows, tbl, nil
}

// ChurnPollerRow is one poller's showing under the churn workload.
type ChurnPollerRow struct {
	Poller scenario.BEPollerKind
	// Requests/Accepted/Rejected count the add-gs outcomes across
	// replications. The arrival sequence is fixed spec data, but the
	// admission state each request meets depends on what was installed
	// before it — identical across pollers (admission ignores BE) yet
	// reported per row as a sanity anchor.
	Requests, Accepted, Rejected int
	AcceptRatio                  float64
	// Violations counts admitted GS flows whose measured max delay
	// exceeded their exported bound (must stay zero: the paper's
	// guarantee may not depend on which best-effort poller competes).
	Violations int
	// GS and BE are delivered-throughput summaries; BE is where the
	// pollers differ — how much leftover capacity each discipline
	// salvages while the GS set churns under it.
	GS, BE stats.Summary
	Reps   int
}

// ChurnPollers is experiment E8b (the ROADMAP's "does PFP's prediction
// survive flow churn?"): the churn workload re-run under every
// best-effort poller. The paper's admission guarantee must hold
// regardless of the competing discipline — the violations column stays
// zero — while the BE throughput column ranks how each poller's internal
// state (PFP's activity predictions, EDC's deficit counters, …) copes
// with GS flows arriving and leaving under it.
func ChurnPollers(cfg Config, kinds []scenario.BEPollerKind) ([]ChurnPollerRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(kinds) == 0 {
		kinds = scenario.AllBEPollers
	}
	cells := make([]string, len(kinds))
	for i, k := range kinds {
		cells[i] = string(k)
	}
	grid := harness.Grid{Name: "churn-pollers", Cells: cells, Build: func(cell string) scenario.Spec {
		return scenario.Churn(scenario.ChurnConfig{
			Duration: cfg.Duration,
			Poller:   scenario.BEPollerKind(cell),
		})
	}}
	results, err := cfg.execute(grid.Sweep(cfg.sweep()).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: churn pollers: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E8b: churn workload by best-effort poller (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"poller", "requests", "accepted", "accept_ratio", "violations",
		"GS_kbps", "BE_kbps")
	order, cellRuns := harness.Cells(results)
	var rows []ChurnPollerRow
	for _, cell := range order {
		rs := cellRuns[cell]
		row := ChurnPollerRow{
			Poller:     scenario.BEPollerKind(cell),
			GS:         classKbps(rs, piconet.Guaranteed),
			BE:         classKbps(rs, piconet.BestEffort),
			Reps:       len(rs),
			Violations: cellViolations(rs),
		}
		for _, r := range rs {
			for _, a := range r.Result.Admissions {
				if a.Op != scenario.OpAddGS {
					continue
				}
				row.Requests++
				if a.Accepted {
					row.Accepted++
				} else {
					row.Rejected++
				}
			}
		}
		if row.Requests > 0 {
			row.AcceptRatio = float64(row.Accepted) / float64(row.Requests)
		}
		rows = append(rows, row)
		tbl.AddRow(string(row.Poller), row.Requests, row.Accepted,
			fmt.Sprintf("%.3f", row.AcceptRatio), row.Violations,
			kbpsCell(row.GS), kbpsCell(row.BE))
	}
	return rows, tbl, nil
}
