package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"bluegs/internal/harness"
)

var churnTestArrivals = []time.Duration{1 * time.Second, 3 * time.Second}

// TestChurnDeterministicAcrossWorkers: timeline (churn) sweeps keep the
// harness's core guarantee — byte-identical tables and rows at any worker
// count.
func TestChurnDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		rows  []ChurnRow
		table string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := Config{
			Duration:     4 * time.Second,
			Seed:         1,
			Replications: 2,
			Workers:      workers,
		}
		rows, tbl, err := ChurnStudy(cfg, churnTestArrivals)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("workers=%d: table diverged\n--- got ---\n%s--- want ---\n%s",
				workers, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("workers=%d: rows diverged\n got %+v\nwant %+v", workers, got.rows, base.rows)
		}
	}
}

// TestChurnWarmCacheReplaysExactly: a churn sweep replayed from a warm
// run cache — admission logs included — reproduces the cold output byte
// for byte without executing the simulator.
func TestChurnWarmCacheReplaysExactly(t *testing.T) {
	cache, err := harness.NewRunCache(harness.CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Duration: 4 * time.Second, Seed: 1, Replications: 2, Cache: cache}
	_, cold, err := ChurnStudy(cfg, churnTestArrivals)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Stores == 0 {
		t.Fatalf("cold pass: %v", st)
	}
	_, warm, err := ChurnStudy(cfg, churnTestArrivals)
	if err != nil {
		t.Fatal(err)
	}
	if warm.String() != cold.String() {
		t.Fatalf("warm replay diverged\n--- warm ---\n%s--- cold ---\n%s",
			warm.String(), cold.String())
	}
	st = cache.Stats()
	if st.Misses != st.Stores {
		t.Fatalf("warm pass missed the cache: %v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("warm pass served nothing from the cache: %v", st)
	}
}

// TestChurnRejectsUnderHeavyLoad: with arrivals far faster than
// departures the piconet fills and the admission test must start
// refusing requests — while every admitted flow still meets its bound.
func TestChurnRejectsUnderHeavyLoad(t *testing.T) {
	cfg := Config{Duration: 30 * time.Second, Seed: 1}
	rows, _, err := ChurnStudy(cfg, []time.Duration{500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Requests == 0 || row.Rejected == 0 {
		t.Fatalf("heavy churn should reject some requests: %+v", row)
	}
	if row.Violations != 0 {
		t.Fatalf("admitted flows violated bounds: %+v", row)
	}
	if row.AcceptRatio <= 0 || row.AcceptRatio >= 1 {
		t.Fatalf("accept ratio %v should be in (0, 1)", row.AcceptRatio)
	}
}
