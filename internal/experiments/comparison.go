package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/sco"
	"bluegs/internal/stats"
)

// T4Row compares one scheme (SCO channel or GS/PFP at a delay target) for
// carrying a 64 kbps voice-like flow.
type T4Row struct {
	Scheme string
	// Bound is the scheme's delay bound; MaxSeen the measured maximum
	// (zero for the analytic SCO row).
	Bound   time.Duration
	MaxSeen time.Duration
	// BusySlots is the slot consumption per second while the source is
	// active; IdleSlots while the source is silent. SCO reserves its
	// slots unconditionally; the GS poller's consumption shrinks when
	// idle and the difference is reclaimable for BE or retransmissions.
	BusySlots float64
	IdleSlots float64
	// Reclaimable reports whether unused capacity can serve other
	// traffic.
	Reclaimable bool
}

// TableT4 reproduces the §5 SCO comparison: the GS/PFP poller approaches
// SCO delay bounds while its slots, unlike SCO's hard reservation, are
// reclaimable.
func TableT4(cfg Config) ([]T4Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	hv3, err := sco.NewChannel(baseband.TypeHV3)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: T4: %w", err)
	}
	rows := []T4Row{{
		Scheme:      hv3.String(),
		Bound:       hv3.DelayBound(),
		BusySlots:   hv3.ReservedSlotsPerSecond(),
		IdleSlots:   hv3.ReservedSlotsPerSecond(),
		Reclaimable: false,
	}}

	for _, target := range []time.Duration{
		13 * time.Millisecond, 20 * time.Millisecond, 36 * time.Millisecond, 47 * time.Millisecond,
	} {
		busy, err := runVoice(cfg, target, true)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: T4 busy at %v: %w", target, err)
		}
		idle, err := runVoice(cfg, target, false)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: T4 idle at %v: %w", target, err)
		}
		f, _ := busy.FlowByID(1)
		perSec := func(r *scenario.Result) float64 {
			gsSlots := r.Slots.GSData + r.Slots.GSOverhead
			return float64(gsSlots) / r.Elapsed.Seconds()
		}
		rows = append(rows, T4Row{
			Scheme:      fmt.Sprintf("GS/PFP target %v", target),
			Bound:       f.Bound,
			MaxSeen:     f.DelayMax,
			BusySlots:   perSec(busy),
			IdleSlots:   perSec(idle),
			Reclaimable: true,
		})
	}

	tbl := stats.NewTable(
		fmt.Sprintf("T4: SCO vs GS/PFP for one 64 kbps voice flow (%v per run)", cfg.Duration),
		"scheme", "bound", "max_seen", "slots/s busy", "slots/s idle", "reclaimable")
	for _, r := range rows {
		maxSeen := ""
		if r.MaxSeen > 0 {
			maxSeen = r.MaxSeen.Round(time.Microsecond).String()
		}
		tbl.AddRow(r.Scheme, r.Bound.Round(time.Microsecond), maxSeen,
			fmt.Sprintf("%.0f", r.BusySlots), fmt.Sprintf("%.0f", r.IdleSlots),
			r.Reclaimable)
	}
	return rows, tbl, nil
}

// runVoice runs the single voice flow scenario, with or without traffic.
func runVoice(cfg Config, target time.Duration, withTraffic bool) (*scenario.Result, error) {
	g := scenario.GSFlow{
		ID: 1, Slave: 1, Dir: piconet.Up,
		Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
	}
	spec := scenario.Spec{
		Name:        "voice-vs-sco",
		GS:          []scenario.GSFlow{g},
		DelayTarget: target,
		Duration:    cfg.Duration,
		Seed:        cfg.Seed,
	}
	if !withTraffic {
		spec.GS[0].Phase = cfg.Duration + time.Second // source never fires
	}
	return scenario.Run(spec)
}

// AblationRow reports one improvement-rule configuration (experiment A1).
type AblationRow struct {
	Label      string
	GSSlots    int64
	GSOverhead int64
	Skipped    uint64
	BEKbps     float64
	Violations int
}

// AblationImprovements quantifies the §3.2 design choices: GS slot
// consumption of the fixed-interval poller versus each improvement rule
// individually and combined, on the Fig. 4 scenario at a 46 ms target.
// Piggybacking is disabled so that flow 2 forms a master-to-slave-only
// stream: rule (c) only acts on such streams (§3.2: the master knows only
// its own queues), and in the paper scenario flow 2 is otherwise paired
// with uplink flow 3.
func AblationImprovements(cfg Config) ([]AblationRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	configs := []struct {
		label string
		mode  core.Mode
		rules core.Improvements
	}{
		{"fixed (§3.1, no rules)", core.FixedInterval, 0},
		{"rule a (postpone after packet)", core.VariableInterval, core.PostponeAfterPacket},
		{"rule b (postpone after empty)", core.VariableInterval, core.PostponeAfterEmpty},
		{"rule c (skip empty down)", core.VariableInterval, core.SkipEmptyDown},
		{"rules a+b", core.VariableInterval, core.PostponeAfterPacket | core.PostponeAfterEmpty},
		{"all rules (§3.2)", core.VariableInterval, core.AllImprovements},
	}
	tbl := stats.NewTable(
		fmt.Sprintf("A1: §3.2 improvement-rule ablation, Fig. 4 scenario at 46 ms, no piggybacking (%v per run)", cfg.Duration),
		"configuration", "gs_slots", "gs_overhead", "skipped_polls", "be_kbps", "bound_ok")
	var rows []AblationRow
	for _, c := range configs {
		spec := scenario.Paper(46 * time.Millisecond)
		spec.Duration = cfg.Duration
		spec.Seed = cfg.Seed
		spec.Mode = c.mode
		spec.Rules = c.rules
		spec.RulesSet = c.mode == core.VariableInterval
		spec.WithoutPiggybacking = true
		res, err := scenario.Run(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: ablation %q: %w", c.label, err)
		}
		row := AblationRow{
			Label:      c.label,
			GSSlots:    res.Slots.GSData + res.Slots.GSOverhead,
			GSOverhead: res.Slots.GSOverhead,
			Skipped:    res.Skipped,
			BEKbps:     res.TotalKbps(piconet.BestEffort),
			Violations: len(res.BoundViolations()),
		}
		rows = append(rows, row)
		ok := "yes"
		if row.Violations > 0 {
			ok = "VIOLATED"
		}
		tbl.AddRow(c.label, row.GSSlots, row.GSOverhead, row.Skipped,
			stats.FormatKbps(row.BEKbps), ok)
	}
	return rows, tbl, nil
}

// BaselineRow reports one best-effort poller on the baseline comparison
// (experiment A2).
type BaselineRow struct {
	Poller    string
	TotalKbps float64
	MeanDelay time.Duration
	P99Delay  time.Duration
	MaxDelay  time.Duration
	// Fairness is Jain's index over the loaded slaves'
	// achieved/offered ratios.
	Fairness float64
}

// BaselinePollers compares the related-work pollers on a saturated
// best-effort piconet with idle slaves present (experiment A2): none of
// them bounds delay, which motivates the paper's GS mechanism.
func BaselinePollers(cfg Config) ([]BaselineRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	kinds := []scenario.BEPollerKind{
		scenario.BERoundRobin, scenario.BEExhaustive, scenario.BEFEP,
		scenario.BEEDC, scenario.BEDemand, scenario.BEHOL, scenario.BEPFP,
	}
	tbl := stats.NewTable(
		fmt.Sprintf("A2: best-effort pollers on a saturated piconet (%v per run)", cfg.Duration),
		"poller", "total_kbps", "delay_mean", "delay_p99", "delay_max", "fairness")
	var rows []BaselineRow
	for _, kind := range kinds {
		spec := baselineSpec(cfg, kind)
		res, err := scenario.Run(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: baseline %q: %w", kind, err)
		}
		row := summarizeBaseline(string(kind), spec, res)
		rows = append(rows, row)
		tbl.AddRow(row.Poller, stats.FormatKbps(row.TotalKbps),
			row.MeanDelay.Round(time.Microsecond), row.P99Delay.Round(time.Microsecond),
			row.MaxDelay.Round(time.Microsecond), fmt.Sprintf("%.3f", row.Fairness))
	}
	return rows, tbl, nil
}

// baselineSpec is a BE-only piconet: four loaded slaves (60..90 kbps per
// direction, overloading the channel together) and three idle slaves that
// penalise non-adaptive pollers.
func baselineSpec(cfg Config, kind scenario.BEPollerKind) scenario.Spec {
	var be []scenario.BEFlow
	id := piconet.FlowID(1)
	for i, rate := range []float64{60, 70, 80, 90} {
		slave := piconet.SlaveID(4 + i)
		be = append(be,
			scenario.BEFlow{ID: id, Slave: slave, Dir: piconet.Down, RateKbps: rate, PacketSize: 176},
			scenario.BEFlow{ID: id + 1, Slave: slave, Dir: piconet.Up, RateKbps: rate, PacketSize: 176},
		)
		id += 2
	}
	// Idle slaves: registered with negligible-rate flows so the pollers
	// must discover they are uninteresting.
	for s := piconet.SlaveID(1); s <= 3; s++ {
		be = append(be, scenario.BEFlow{
			ID: id, Slave: s, Dir: piconet.Up, RateKbps: 0.5, PacketSize: 176,
		})
		id++
	}
	return scenario.Spec{
		Name:     fmt.Sprintf("baseline-%s", kind),
		BE:       be,
		BEPoller: kind,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
	}
}

func summarizeBaseline(name string, spec scenario.Spec, res *scenario.Result) BaselineRow {
	row := BaselineRow{Poller: name, TotalKbps: res.TotalKbps(piconet.BestEffort)}
	var ratios []float64
	var meanSum float64
	var meanN int
	for _, b := range spec.BE {
		f, _ := res.FlowByID(b.ID)
		if b.RateKbps >= 1 { // loaded flows only
			ratios = append(ratios, f.Kbps/b.RateKbps)
		}
		if f.Delivered > 0 {
			meanSum += float64(f.DelayMean) * float64(f.Delivered)
			meanN += int(f.Delivered)
			if f.DelayMax > row.MaxDelay {
				row.MaxDelay = f.DelayMax
			}
			if f.DelayP99 > row.P99Delay {
				row.P99Delay = f.DelayP99
			}
		}
	}
	if meanN > 0 {
		row.MeanDelay = time.Duration(meanSum / float64(meanN))
	}
	row.Fairness = stats.Fairness(ratios)
	return row
}
