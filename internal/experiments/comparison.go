package experiments

import (
	"fmt"
	"math"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/sco"
	"bluegs/internal/stats"
)

// T4Row compares one scheme (SCO channel or GS/PFP at a delay target) for
// carrying a 64 kbps voice-like flow.
type T4Row struct {
	Scheme string
	// Bound is the scheme's delay bound; MaxSeen the measured maximum
	// over all replications (zero for the analytic SCO row).
	Bound   time.Duration
	MaxSeen time.Duration
	// BusySlots is the slot consumption per second while the source is
	// active; IdleSlots while the source is silent (means across
	// replications). SCO reserves its slots unconditionally; the GS
	// poller's consumption shrinks when idle and the difference is
	// reclaimable for BE or retransmissions.
	BusySlots float64
	IdleSlots float64
	// Reclaimable reports whether unused capacity can serve other
	// traffic.
	Reclaimable bool
}

// t4Cell names one (target, phase) grid point of the T4 sweep.
func t4Cell(target time.Duration, busy bool) string {
	if busy {
		return target.String() + "/busy"
	}
	return target.String() + "/idle"
}

// TableT4 reproduces the §5 SCO comparison: the GS/PFP poller approaches
// SCO delay bounds while its slots, unlike SCO's hard reservation, are
// reclaimable.
func TableT4(cfg Config) ([]T4Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	hv3, err := sco.NewChannel(baseband.TypeHV3)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: T4: %w", err)
	}
	rows := []T4Row{{
		Scheme:      hv3.String(),
		Bound:       hv3.DelayBound(),
		BusySlots:   hv3.ReservedSlotsPerSecond(),
		IdleSlots:   hv3.ReservedSlotsPerSecond(),
		Reclaimable: false,
	}}

	targets := []time.Duration{
		13 * time.Millisecond, 20 * time.Millisecond, 36 * time.Millisecond, 47 * time.Millisecond,
	}
	var cells []string
	type point struct {
		target time.Duration
		busy   bool
	}
	byCell := make(map[string]point)
	for _, target := range targets {
		for _, busy := range []bool{true, false} {
			cell := t4Cell(target, busy)
			cells = append(cells, cell)
			byCell[cell] = point{target, busy}
		}
	}
	sw := harness.GridSweep("t4", cfg.sweep(), cells, func(cell string) scenario.Spec {
		p := byCell[cell]
		return voiceSpec(cfg, p.target, p.busy)
	})
	results, err := cfg.execute(sw.Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: T4: %w", err)
	}
	_, cellsOut := harness.Cells(results)

	gsSlotsPerSec := func(r *scenario.Result) float64 {
		return float64(r.Slots.GSData+r.Slots.GSOverhead) / r.Elapsed.Seconds()
	}
	for _, target := range targets {
		busy := cellsOut[t4Cell(target, true)]
		idle := cellsOut[t4Cell(target, false)]
		f, _ := busy[0].Result.FlowByID(1)
		row := T4Row{
			Scheme:      fmt.Sprintf("GS/PFP target %v", target),
			Bound:       f.Bound,
			BusySlots:   harness.Aggregate(busy, gsSlotsPerSec).Mean,
			IdleSlots:   harness.Aggregate(idle, gsSlotsPerSec).Mean,
			Reclaimable: true,
		}
		for _, r := range busy {
			if rf, ok := r.Result.FlowByID(1); ok && rf.DelayMax > row.MaxSeen {
				row.MaxSeen = rf.DelayMax
			}
		}
		rows = append(rows, row)
	}

	tbl := stats.NewTable(
		fmt.Sprintf("T4: SCO vs GS/PFP for one 64 kbps voice flow (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"scheme", "bound", "max_seen", "slots/s busy", "slots/s idle", "reclaimable")
	for _, r := range rows {
		maxSeen := ""
		if r.MaxSeen > 0 {
			maxSeen = r.MaxSeen.Round(time.Microsecond).String()
		}
		tbl.AddRow(r.Scheme, r.Bound.Round(time.Microsecond), maxSeen,
			fmt.Sprintf("%.0f", r.BusySlots), fmt.Sprintf("%.0f", r.IdleSlots),
			r.Reclaimable)
	}
	return rows, tbl, nil
}

// voiceSpec is the single voice flow scenario, with or without traffic.
func voiceSpec(cfg Config, target time.Duration, withTraffic bool) scenario.Spec {
	g := scenario.GSFlow{
		ID: 1, Slave: 1, Dir: piconet.Up,
		Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
	}
	spec := scenario.Spec{
		Name:        "voice-vs-sco",
		GS:          []scenario.GSFlow{g},
		DelayTarget: target,
	}
	if !withTraffic {
		spec.GS[0].Phase = cfg.Duration + time.Second // source never fires
	}
	return spec
}

// AblationRow reports one improvement-rule configuration (experiment A1).
// Slot and skip counts are means across replications, rounded.
type AblationRow struct {
	Label      string
	GSSlots    int64
	GSOverhead int64
	Skipped    uint64
	BEKbps     float64
	Violations int
}

// AblationImprovements quantifies the §3.2 design choices: GS slot
// consumption of the fixed-interval poller versus each improvement rule
// individually and combined, on the Fig. 4 scenario at a 46 ms target.
// Piggybacking is disabled so that flow 2 forms a master-to-slave-only
// stream: rule (c) only acts on such streams (§3.2: the master knows only
// its own queues), and in the paper scenario flow 2 is otherwise paired
// with uplink flow 3.
func AblationImprovements(cfg Config) ([]AblationRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	configs := []struct {
		label string
		mode  core.Mode
		rules core.Improvements
	}{
		{"fixed (§3.1, no rules)", core.FixedInterval, 0},
		{"rule a (postpone after packet)", core.VariableInterval, core.PostponeAfterPacket},
		{"rule b (postpone after empty)", core.VariableInterval, core.PostponeAfterEmpty},
		{"rule c (skip empty down)", core.VariableInterval, core.SkipEmptyDown},
		{"rules a+b", core.VariableInterval, core.PostponeAfterPacket | core.PostponeAfterEmpty},
		{"all rules (§3.2)", core.VariableInterval, core.AllImprovements},
	}
	var cells []string
	byCell := make(map[string]int)
	for i, c := range configs {
		cells = append(cells, c.label)
		byCell[c.label] = i
	}
	sw := harness.GridSweep("a1", cfg.sweep(), cells, func(cell string) scenario.Spec {
		c := configs[byCell[cell]]
		spec := scenario.Paper(46 * time.Millisecond)
		spec.Mode = c.mode
		spec.Rules = c.rules
		spec.RulesSet = c.mode == core.VariableInterval
		spec.WithoutPiggybacking = true
		return spec
	})
	results, err := cfg.execute(sw.Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: ablation: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("A1: §3.2 improvement-rule ablation, Fig. 4 scenario at 46 ms, no piggybacking (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"configuration", "gs_slots", "gs_overhead", "skipped_polls", "be_kbps", "bound_ok")
	order, cellRuns := harness.Cells(results)
	var rows []AblationRow
	for _, cell := range order {
		rs := cellRuns[cell]
		gsSlots := harness.Aggregate(rs, func(r *scenario.Result) float64 {
			return float64(r.Slots.GSData + r.Slots.GSOverhead)
		})
		overhead := harness.Aggregate(rs, func(r *scenario.Result) float64 {
			return float64(r.Slots.GSOverhead)
		})
		skipped := harness.Aggregate(rs, func(r *scenario.Result) float64 {
			return float64(r.Skipped)
		})
		row := AblationRow{
			Label:      cell,
			GSSlots:    int64(math.Round(gsSlots.Mean)),
			GSOverhead: int64(math.Round(overhead.Mean)),
			Skipped:    uint64(math.Round(skipped.Mean)),
			BEKbps:     classKbps(rs, piconet.BestEffort).Mean,
			Violations: cellViolations(rs),
		}
		rows = append(rows, row)
		ok := "yes"
		if row.Violations > 0 {
			ok = "VIOLATED"
		}
		tbl.AddRow(cell, row.GSSlots, row.GSOverhead, row.Skipped,
			stats.FormatKbps(row.BEKbps), ok)
	}
	return rows, tbl, nil
}

// BaselineRow reports one best-effort poller on the baseline comparison
// (experiment A2), aggregated over replications: throughput, mean delay
// and fairness are means; p99 and max delay take the worst replication.
type BaselineRow struct {
	Poller    string
	TotalKbps float64
	MeanDelay time.Duration
	P99Delay  time.Duration
	MaxDelay  time.Duration
	// Fairness is Jain's index over the loaded slaves'
	// achieved/offered ratios.
	Fairness float64
	// Reps is the number of replications aggregated into the row;
	// Metric, Converged and CacheHits are set in adaptive mode (see
	// Fig5Row).
	Reps      int
	Metric    stats.Summary
	Converged bool
	CacheHits int
}

// BaselinePollers compares the related-work pollers on a saturated
// best-effort piconet with idle slaves present (experiment A2): none of
// them bounds delay, which motivates the paper's GS mechanism. With
// Config.CITarget set each poller replicates adaptively (default metric:
// total BE throughput) and the table gains "reps" and "ci_half" columns.
func BaselinePollers(cfg Config) ([]BaselineRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	kinds := []scenario.BEPollerKind{
		scenario.BERoundRobin, scenario.BEExhaustive, scenario.BEFEP,
		scenario.BEEDC, scenario.BEDemand, scenario.BEHOL, scenario.BEPFP,
	}
	order, cellRuns, outcomes, err := cfg.runGrid(harness.ComparisonGrid(kinds), harness.BEThroughput)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: baseline: %w", err)
	}
	columns := []string{"poller", "total_kbps", "delay_mean", "delay_p99", "delay_max", "fairness"}
	if cfg.adaptive() {
		columns = append(columns, "reps", "ci_half")
	}
	tbl := stats.NewTable(
		fmt.Sprintf("A2: best-effort pollers on a saturated piconet (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		columns...)
	var rows []BaselineRow
	for _, cell := range order {
		rs := cellRuns[cell]
		var kbps, mean, fairness stats.Welford
		row := BaselineRow{Poller: cell, Reps: len(rs)}
		for _, r := range rs {
			rep := summarizeBaseline(cell, r.Run.Spec, r.Result)
			kbps.Add(rep.TotalKbps)
			mean.Add(float64(rep.MeanDelay))
			fairness.Add(rep.Fairness)
			if rep.MaxDelay > row.MaxDelay {
				row.MaxDelay = rep.MaxDelay
			}
			if rep.P99Delay > row.P99Delay {
				row.P99Delay = rep.P99Delay
			}
		}
		row.TotalKbps = kbps.Mean()
		row.MeanDelay = time.Duration(mean.Mean())
		row.Fairness = fairness.Mean()
		cells := []any{row.Poller, stats.FormatKbps(row.TotalKbps),
			row.MeanDelay.Round(time.Microsecond), row.P99Delay.Round(time.Microsecond),
			row.MaxDelay.Round(time.Microsecond), fmt.Sprintf("%.3f", row.Fairness)}
		if o, isAdaptive := outcomes[cell]; isAdaptive {
			row.Metric = o.Metric
			row.Converged = o.Converged
			row.CacheHits = o.CacheHits
			cells = append(cells, convergedReps(o), fmt.Sprintf("%.3g", o.Metric.CI95))
		}
		rows = append(rows, row)
		tbl.AddRow(cells...)
	}
	return rows, tbl, nil
}

func summarizeBaseline(name string, spec scenario.Spec, res *scenario.Result) BaselineRow {
	row := BaselineRow{Poller: name, TotalKbps: res.TotalKbps(piconet.BestEffort)}
	var ratios []float64
	var meanSum float64
	var meanN int
	for _, b := range spec.BE {
		f, _ := res.FlowByID(b.ID)
		if b.RateKbps >= 1 { // loaded flows only
			ratios = append(ratios, f.Kbps/b.RateKbps)
		}
		if f.Delivered > 0 {
			meanSum += float64(f.DelayMean) * float64(f.Delivered)
			meanN += int(f.Delivered)
			if f.DelayMax > row.MaxDelay {
				row.MaxDelay = f.DelayMax
			}
			if f.DelayP99 > row.P99Delay {
				row.P99Delay = f.DelayP99
			}
		}
	}
	if meanN > 0 {
		row.MeanDelay = time.Duration(meanSum / float64(meanN))
	}
	row.Fairness = stats.Fairness(ratios)
	return row
}
