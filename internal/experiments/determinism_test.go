package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestFigure5DeterministicAcrossWorkers is the acceptance criterion of the
// harness rewiring: a replicated Fig. 5 sweep produces bit-identical rows
// — rendered table text and per-slave kbps — at every worker count.
func TestFigure5DeterministicAcrossWorkers(t *testing.T) {
	targets := []time.Duration{30 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond}
	type snapshot struct {
		rows  []Fig5Row
		table string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := Config{
			Duration:     3 * time.Second,
			Seed:         1,
			Replications: 3,
			Workers:      workers,
		}
		rows, tbl, err := Figure5(cfg, targets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("workers=%d: table text diverged\n--- got ---\n%s--- want ---\n%s",
				workers, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("workers=%d: rows diverged\n got %+v\nwant %+v", workers, got.rows, base.rows)
		}
	}
}

// TestFigure5ReplicationsAggregate checks the multi-seed plumbing: more
// than one replication yields confidence intervals and keeps the
// per-point means plausible.
func TestFigure5ReplicationsAggregate(t *testing.T) {
	cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 4}
	rows, tbl, err := Figure5(cfg, []time.Duration{40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Reps != 4 {
		t.Fatalf("reps = %d, want 4", row.Reps)
	}
	if row.GS.N != 4 || row.BE.N != 4 {
		t.Fatalf("summaries aggregated %d/%d values", row.GS.N, row.BE.N)
	}
	// Independent seeds: the replications must not be carbon copies.
	if row.BE.Min == row.BE.Max {
		t.Fatal("replications produced identical BE throughput; seeds not independent")
	}
	if row.GS.Mean < 200 || row.GS.Mean > 300 {
		t.Fatalf("GS mean = %v, want ~256", row.GS.Mean)
	}
	if row.GS.CI95 <= 0 || row.BE.CI95 <= 0 {
		t.Fatalf("missing confidence intervals: %+v %+v", row.GS, row.BE)
	}
	if row.Violations != 0 {
		t.Fatal("bound violated")
	}
	// The table advertises the replication count and shows intervals.
	for _, want := range []string{"4 reps", "±"} {
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestFigure5DuplicateTargets: duplicate delay targets collapse into one
// correctly-labeled row instead of misaligning the sweep cells.
func TestFigure5DuplicateTargets(t *testing.T) {
	cfg := Config{Duration: time.Second, Seed: 1}
	rows, _, err := Figure5(cfg, []time.Duration{
		30 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (deduplicated)", len(rows))
	}
	if rows[0].Target != 30*time.Millisecond || rows[1].Target != 40*time.Millisecond {
		t.Fatalf("row targets = %v, %v", rows[0].Target, rows[1].Target)
	}
	if rows[0].Reps != 1 || rows[1].Reps != 1 {
		t.Fatalf("reps = %d/%d, want 1/1", rows[0].Reps, rows[1].Reps)
	}
}

// TestProgressCallback checks the Config.Progress plumbing into the
// harness.
func TestProgressCallback(t *testing.T) {
	calls := 0
	total := 0
	cfg := Config{
		Duration: time.Second, Seed: 1, Replications: 2, Workers: 2,
		Progress: func(done, n int) {
			calls++
			total = n
		},
	}
	_, _, err := Figure5(cfg, []time.Duration{40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || total != 2 {
		t.Fatalf("progress calls = %d (total %d), want 2", calls, total)
	}
}
