package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/stats"
)

// E7Row summarises the delay distribution of one GS flow. With
// replications the distributions pool every replication's samples.
type E7Row struct {
	Flow       piconet.FlowID
	Samples    uint64
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	P999       time.Duration
	Max        time.Duration
	Bound      time.Duration
	CDFAtBound float64
}

// DelayDistribution characterises the full per-flow delay distributions of
// the Fig. 4 scenario at one delay requirement (an extension: the paper
// reports only that the bound is never exceeded; the distribution shows
// how much headroom the worst case leaves). It also returns per-flow
// histograms for rendering.
func DelayDistribution(cfg Config, target time.Duration) ([]E7Row, *stats.Table, map[piconet.FlowID]*stats.DurationHistogram, error) {
	cfg = cfg.withDefaults()
	if target <= 0 {
		target = 38 * time.Millisecond
	}
	sw := harness.Fig5Sweep(cfg.sweep(), []time.Duration{target})
	results, err := cfg.execute(sw.Runs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: E7: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E7: GS delay distributions at a %v requirement (%v%s)",
			target, cfg.Duration, cfg.repNote()),
		"flow", "samples", "p50", "p90", "p99", "p99.9", "max", "bound", "cdf_at_bound")
	var rows []E7Row
	hists := make(map[piconet.FlowID]*stats.DurationHistogram)
	for _, f := range results[0].Result.Flows {
		if f.Class != piconet.Guaranteed || f.Delay == nil {
			continue
		}
		// Pool the delay samples of every replication of this flow.
		pooled := &stats.DurationStats{}
		for _, r := range results {
			if rf, ok := r.Result.FlowByID(f.ID); ok && rf.Delay != nil {
				pooled.Merge(rf.Delay)
			}
		}
		h := stats.NewDurationHistogram(f.Bound+f.Bound/4, 25)
		pooled.FillHistogram(h)
		hists[f.ID] = h
		row := E7Row{
			Flow:       f.ID,
			Samples:    pooled.Count(),
			P50:        pooled.Quantile(0.5),
			P90:        pooled.Quantile(0.9),
			P99:        pooled.Quantile(0.99),
			P999:       pooled.Quantile(0.999),
			Max:        pooled.Max(),
			Bound:      f.Bound,
			CDFAtBound: h.CumulativeAt(f.Bound),
		}
		rows = append(rows, row)
		tbl.AddRow(f.ID, row.Samples,
			row.P50.Round(time.Microsecond), row.P90.Round(time.Microsecond),
			row.P99.Round(time.Microsecond), row.P999.Round(time.Microsecond),
			row.Max.Round(time.Microsecond), row.Bound.Round(time.Microsecond),
			fmt.Sprintf("%.4f", row.CDFAtBound))
	}
	return rows, tbl, hists, nil
}
