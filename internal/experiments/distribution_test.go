package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestDelayDistribution(t *testing.T) {
	rows, tbl, hists, err := DelayDistribution(quick, 38*time.Millisecond)
	if err != nil {
		t.Fatalf("DelayDistribution: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 GS flows", len(rows))
	}
	for _, r := range rows {
		if r.Samples < 300 {
			t.Fatalf("flow %d: %d samples", r.Flow, r.Samples)
		}
		// Quantiles are ordered.
		if !(r.P50 <= r.P90 && r.P90 <= r.P99 && r.P99 <= r.P999 && r.P999 <= r.Max) {
			t.Fatalf("flow %d: quantiles out of order: %+v", r.Flow, r)
		}
		// The headline: every observation is inside the bound.
		if r.Max > r.Bound {
			t.Fatalf("flow %d: max %v > bound %v", r.Flow, r.Max, r.Bound)
		}
		if r.CDFAtBound < 0.9999 {
			t.Fatalf("flow %d: CDF at bound = %v, want 1", r.Flow, r.CDFAtBound)
		}
		h, ok := hists[r.Flow]
		if !ok || h.Count() != r.Samples {
			t.Fatalf("flow %d: histogram missing or inconsistent", r.Flow)
		}
		if h.Overflow() != 0 {
			t.Fatalf("flow %d: %d observations beyond bound+25%%", r.Flow, h.Overflow())
		}
	}
	if !strings.Contains(tbl.String(), "cdf_at_bound") {
		t.Fatal("table missing header")
	}
}
