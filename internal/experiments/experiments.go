// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each experiment
// returns structured rows plus a rendered table; the cmd tools, the
// top-level benchmarks and the tests all share these entry points.
//
// Every experiment executes its runs through internal/harness: the grid of
// (sweep cell × seed replication) fans out across a bounded worker pool,
// and per-cell replications aggregate into mean/min/max/95%-confidence
// summaries. With the default single replication each experiment
// reproduces the historical serial output bit for bit (the golden-table
// tests enforce this).
package experiments

import (
	"errors"
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/gs"
	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
	"bluegs/internal/tspec"
)

// Config tunes experiment runs. The zero value uses a 60 s horizon, seed 1
// and a single replication; the paper's full runs use 530 s (cmd tools
// pass that).
type Config struct {
	// Duration is the simulated time per run.
	Duration time.Duration
	// Seed drives all randomness. With replications, each replication's
	// seed is derived from (Seed, rep) — see harness.ReplicationSeed.
	Seed int64
	// Replications is the number of independently seeded runs per sweep
	// cell (default 1, the paper's single-run evaluation). With more
	// than one, rows aggregate across replications and throughput cells
	// gain 95% confidence intervals.
	Replications int
	// Workers bounds the harness worker pool (default GOMAXPROCS).
	// Results are bit-identical at any worker count.
	Workers int
	// KernelWorkers, when non-zero, bounds the worker goroutines of the
	// sharded event kernel inside every simulation
	// (scenario.Spec.KernelWorkers). Like Workers it is a pure execution
	// knob: tables, fingerprints and cache keys are bit-identical at any
	// value.
	KernelWorkers int
	// Progress, when set, receives (completed, total) run counts while
	// a sweep executes.
	Progress func(done, total int)
	// CITarget, when positive, switches the experiments that support it
	// (Figure5, BaselinePollers) to adaptive replication: each sweep
	// cell keeps receiving further independently seeded replications
	// until the 95% CI half-width of the stopping metric drops below
	// CITarget×|mean| (CIAbsTol is the absolute variant; either
	// suffices), overriding Replications. Results stay bit-identical at
	// any worker count.
	CITarget float64
	// CIAbsTol is the absolute CI half-width target, in the units of the
	// stopping metric.
	CIAbsTol float64
	// CIMetric names the stopping metric (see harness.MetricByName;
	// empty uses the experiment's natural metric: GS delay for Figure5,
	// BE throughput for BaselinePollers).
	CIMetric string
	// MaxReps caps adaptive replications per cell (default 32).
	MaxReps int
	// Cache, when set, replays runs whose content fingerprint it already
	// holds instead of executing the simulator — across experiments too,
	// since Figure5, T2 and T3 share grid cells.
	Cache *harness.RunCache
	// Executor, when set, routes every sweep through it instead of the
	// in-process harness (harness.Local{}). This is how cmd/sweepd runs
	// the same experiment code distributed: a fabric.Coordinator is an
	// Executor, and because both implementations share the harness
	// determinism contract, the rendered tables are byte-identical.
	Executor harness.Executor
	// Interrupt, when set and closed, abandons undispatched runs
	// (harness.Options.Interrupt): experiments return partial results
	// wrapping harness.ErrInterrupted, and Figure5 still renders the
	// completed cells — the cmd tools' graceful-SIGINT path.
	Interrupt <-chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Replications <= 0 {
		c.Replications = 1
	}
	return c
}

// sweep converts the experiment configuration for the harness builders.
func (c Config) sweep() harness.SweepConfig {
	return harness.SweepConfig{
		Duration:     c.Duration,
		Seed:         c.Seed,
		Replications: c.Replications,
	}
}

// options converts the execution half of the configuration.
func (c Config) options() harness.Options {
	opts := harness.Options{
		Workers:       c.Workers,
		KernelWorkers: c.KernelWorkers,
		Cache:         c.Cache,
		Interrupt:     c.Interrupt,
	}
	if c.Progress != nil {
		p := c.Progress
		opts.OnProgress = func(done, total int, _ harness.RunResult) { p(done, total) }
	}
	return opts
}

// executor resolves the sweep executor (in-process by default).
func (c Config) executor() harness.Executor {
	if c.Executor != nil {
		return c.Executor
	}
	return harness.Local{}
}

// execute routes a fixed run list through the configured executor.
func (c Config) execute(runs []harness.Run) ([]harness.RunResult, error) {
	return c.executor().Execute(runs, c.options())
}

// adaptive reports whether confidence-driven replication is requested.
func (c Config) adaptive() bool { return c.CITarget > 0 || c.CIAbsTol > 0 }

// adaptiveOptions assembles the harness stopping rule, resolving the
// metric name against the experiment's natural default.
func (c Config) adaptiveOptions(def harness.Metric) (harness.AdaptiveOptions, error) {
	metric := def
	if c.CIMetric != "" {
		m, err := harness.MetricByName(c.CIMetric)
		if err != nil {
			return harness.AdaptiveOptions{}, err
		}
		metric = m
	}
	return harness.AdaptiveOptions{
		Options: c.options(),
		Metric:  metric,
		RelTol:  c.CITarget,
		AbsTol:  c.CIAbsTol,
		MaxReps: c.MaxReps,
	}, nil
}

// runGrid executes a grid either with the fixed replication count or, in
// adaptive mode, under the CI stopping rule. It returns the cells in grid
// order, the per-cell replications, and — in adaptive mode — the per-cell
// outcomes keyed by cell.
//
// An interrupted sweep (harness.ErrInterrupted) still returns the
// completed runs alongside the error, grouped with abandoned runs
// filtered out, so experiments that support it can render a partial
// table. Any other failure returns nil data as before.
func (c Config) runGrid(g harness.Grid, def harness.Metric) (
	[]string, map[string][]harness.RunResult, map[string]harness.CellOutcome, error) {
	if !c.adaptive() {
		results, err := c.execute(g.Sweep(c.sweep()).Runs)
		if err != nil && !errors.Is(err, harness.ErrInterrupted) {
			return nil, nil, nil, err
		}
		order, byCell := harness.Cells(successful(results))
		return order, byCell, nil, err
	}
	opts, err := c.adaptiveOptions(def)
	if err != nil {
		return nil, nil, nil, err
	}
	outcomes, err := c.executor().ExecuteAdaptive(g, c.sweep(), opts)
	if err != nil && !errors.Is(err, harness.ErrInterrupted) {
		return nil, nil, nil, err
	}
	order := make([]string, 0, len(outcomes))
	byCell := make(map[string][]harness.RunResult, len(outcomes))
	byOutcome := make(map[string]harness.CellOutcome, len(outcomes))
	for _, o := range outcomes {
		runs := successful(o.Runs)
		if err != nil && len(runs) == 0 {
			continue // no completed replication to render
		}
		order = append(order, o.Cell)
		byCell[o.Cell] = runs
		byOutcome[o.Cell] = o
	}
	return order, byCell, byOutcome, err
}

// successful filters a result list down to completed runs. With no
// failures it returns the input unchanged, so the common path allocates
// nothing and partial rendering composes with the existing helpers.
func successful(results []harness.RunResult) []harness.RunResult {
	ok := results[:0:0]
	clean := true
	for _, r := range results {
		if r.Err != nil || r.Result == nil {
			clean = false
			continue
		}
		ok = append(ok, r)
	}
	if clean {
		return results
	}
	return ok
}

// repNote annotates table titles when an experiment replicates.
func (c Config) repNote() string {
	if c.adaptive() {
		cap := c.MaxReps
		if cap <= 0 {
			cap = harness.DefaultMaxReps
		}
		if c.CITarget > 0 {
			return fmt.Sprintf(", adaptive reps ≤%d to CI≤%.3g·mean", cap, c.CITarget)
		}
		return fmt.Sprintf(", adaptive reps ≤%d to CI≤%.3g", cap, c.CIAbsTol)
	}
	if c.Replications <= 1 {
		return ""
	}
	return fmt.Sprintf(", %d reps, mean±95%% CI", c.Replications)
}

// kbpsCell renders a throughput summary: the bare mean for single-run
// sweeps (preserving the historical table text), mean±CI with
// replication.
func kbpsCell(s stats.Summary) string {
	if s.N <= 1 {
		return stats.FormatKbps(s.Mean)
	}
	return s.FormatMeanCI()
}

// slaveKbps aggregates one slave's delivered throughput across a cell's
// replications.
func slaveKbps(rs []harness.RunResult, slave piconet.SlaveID) stats.Summary {
	return harness.Aggregate(rs, func(r *scenario.Result) float64 {
		return r.SlaveKbps[slave]
	})
}

// classKbps aggregates a traffic class's total throughput across a cell's
// replications.
func classKbps(rs []harness.RunResult, class piconet.Class) stats.Summary {
	return harness.Aggregate(rs, func(r *scenario.Result) float64 {
		return r.TotalKbps(class)
	})
}

// cellViolations sums the GS bound violations across a cell's
// replications (must stay zero), skipping failed runs.
func cellViolations(rs []harness.RunResult) int {
	n := 0
	for _, r := range rs {
		if r.Err != nil || r.Result == nil {
			continue
		}
		n += len(r.Result.BoundViolations())
	}
	return n
}

// uniqueTargets drops duplicate delay targets, preserving order: sweep
// cells are keyed by the target's rendering, so a duplicate would merge
// with its first occurrence and misalign the row labels.
func uniqueTargets(targets []time.Duration) []time.Duration {
	seen := make(map[time.Duration]bool, len(targets))
	out := targets[:0:0]
	for _, t := range targets {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// DefaultFig5Targets is the paper's Fig. 5 x-axis: delay requirements from
// 28 to 46 ms.
func DefaultFig5Targets() []time.Duration {
	var out []time.Duration
	for ms := 28; ms <= 46; ms += 2 {
		out = append(out, time.Duration(ms)*time.Millisecond)
	}
	return out
}

// Fig5Row is one point of the Figure 5 series: per-slave throughput at one
// GS delay requirement, aggregated over the configured replications.
type Fig5Row struct {
	Target time.Duration
	// SlaveKbps holds per-slave means across replications.
	SlaveKbps map[piconet.SlaveID]float64
	GSKbps    float64
	BEKbps    float64
	// GS and BE carry the full replication summaries (CI95 etc.).
	GS, BE stats.Summary
	// Reps is the number of replications aggregated into the row.
	Reps int
	// Violations counts GS flows whose measured max delay exceeded the
	// exported bound across all replications (must be zero).
	Violations int
	// Metric, Converged and CacheHits are set in adaptive mode: the
	// stopping-metric summary (Metric.CI95 is the final half-width the
	// rule compared against the tolerance), whether the tolerance was
	// met within the rep cap, and how many replications the run cache
	// replayed.
	Metric    stats.Summary
	Converged bool
	CacheHits int
}

// Figure5 regenerates the paper's Fig. 5: per-slave throughput versus the
// GS delay requirement on the Fig. 4 piconet under the PFP implementation
// of the variable-interval poller. With Config.CITarget set the sweep
// replicates adaptively (default metric: mean GS delay) and the table
// gains per-point "reps" and "ci_half" columns.
func Figure5(cfg Config, targets []time.Duration) ([]Fig5Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		targets = DefaultFig5Targets()
	}
	targets = uniqueTargets(targets)
	order, byCell, outcomes, err := cfg.runGrid(harness.Fig5Grid(targets), harness.MeanGSDelay)
	if err != nil && !errors.Is(err, harness.ErrInterrupted) {
		return nil, nil, fmt.Errorf("experiments: figure 5: %w", err)
	}
	rows, tbl := fig5Table(cfg, targets, order, byCell, outcomes)
	if err != nil {
		// Interrupted: the completed cells render above; the caller
		// decides whether the partial table is worth printing.
		return rows, tbl, fmt.Errorf("experiments: figure 5: %w", err)
	}
	return rows, tbl, nil
}

// Figure5FromResults renders the Fig. 5 rows and table from
// already-executed run results — cmd/report's -journal mode feeds
// fabric.JournalResults output here. Cells with no successful
// replication are omitted, so a partial journal renders a partial
// table. Adaptive columns are dropped: convergence state is not part of
// a result set.
func Figure5FromResults(cfg Config, targets []time.Duration, results []harness.RunResult) ([]Fig5Row, *stats.Table) {
	cfg = cfg.withDefaults()
	cfg.CITarget, cfg.CIAbsTol = 0, 0
	if len(targets) == 0 {
		targets = DefaultFig5Targets()
	}
	targets = uniqueTargets(targets)
	order, byCell := harness.Cells(successful(results))
	return fig5Table(cfg, targets, order, byCell, nil)
}

// fig5Table aggregates per-cell results into the Fig. 5 rows and table.
func fig5Table(cfg Config, targets []time.Duration, order []string,
	byCell map[string][]harness.RunResult, outcomes map[string]harness.CellOutcome) ([]Fig5Row, *stats.Table) {
	byTarget := make(map[string]time.Duration, len(targets))
	for _, t := range targets {
		byTarget[t.String()] = t
	}
	columns := []string{
		"delay_req", "S1_kbps", "S2_kbps", "S3_kbps", "S4_kbps", "S5_kbps", "S6_kbps", "S7_kbps",
		"GS_total", "BE_total", "bound_ok"}
	if cfg.adaptive() {
		columns = append(columns, "reps", "ci_half")
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Figure 5: throughput vs GS delay requirement (%v per point%s)",
			cfg.Duration, cfg.repNote()),
		columns...)
	var rows []Fig5Row
	for _, cell := range order {
		rs := byCell[cell]
		if len(rs) == 0 {
			continue // interrupted before any replication completed
		}
		row := Fig5Row{
			Target:     byTarget[cell],
			SlaveKbps:  make(map[piconet.SlaveID]float64),
			GS:         classKbps(rs, piconet.Guaranteed),
			BE:         classKbps(rs, piconet.BestEffort),
			Reps:       len(rs),
			Violations: cellViolations(rs),
		}
		row.GSKbps, row.BEKbps = row.GS.Mean, row.BE.Mean
		for slave := piconet.SlaveID(1); slave <= 7; slave++ {
			row.SlaveKbps[slave] = slaveKbps(rs, slave).Mean
		}
		ok := "yes"
		if row.Violations > 0 {
			ok = "VIOLATED"
		}
		cells := []any{row.Target,
			stats.FormatKbps(row.SlaveKbps[1]), stats.FormatKbps(row.SlaveKbps[2]),
			stats.FormatKbps(row.SlaveKbps[3]), stats.FormatKbps(row.SlaveKbps[4]),
			stats.FormatKbps(row.SlaveKbps[5]), stats.FormatKbps(row.SlaveKbps[6]),
			stats.FormatKbps(row.SlaveKbps[7]),
			kbpsCell(row.GS), kbpsCell(row.BE), ok}
		if o, isAdaptive := outcomes[cell]; isAdaptive {
			row.Metric = o.Metric
			row.Converged = o.Converged
			row.CacheHits = o.CacheHits
			cells = append(cells, convergedReps(o), fmt.Sprintf("%.3g", o.Metric.CI95))
		}
		rows = append(rows, row)
		tbl.AddRow(cells...)
	}
	return rows, tbl
}

// convergedReps renders an adaptive cell's replication count, flagging
// cells that hit the cap without meeting the tolerance.
func convergedReps(o harness.CellOutcome) string {
	if o.Converged {
		return fmt.Sprintf("%d", o.Reps())
	}
	return fmt.Sprintf("%d (cap)", o.Reps())
}

// T1 bundles the §4.1 analytical parameters (the paper's implicit table
// T1; the published text has OCR gaps, so these are re-derived from the
// paper's own formulas — see EXPERIMENTS.md).
type T1 struct {
	Spec        tspec.TSpec
	EtaMin      float64
	WorstSize   int
	Xi          time.Duration
	X           []time.Duration // per priority: x_1, x_2, x_3
	MaxRate     float64         // eta/x_lowest: the §4.1 admissible-rate cap
	MinBound    time.Duration   // tightest supportable bound for the lowest stream
	NeverExceed time.Duration   // bound at R = r for the lowest stream
}

// TableT1 recomputes the paper's §4.1 derived parameters through the
// admission machinery.
func TableT1() (T1, *stats.Table, error) {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	cfg := admission.Config{MaxExchange: baseband.SlotsToDuration(6)}
	// The paper's flow set at the maximal feasible rate.
	ctrl := admission.NewController(cfg)
	maxRate := 144.0 / (11250e-6) // eta_min / x_3
	reqs := []admission.Request{
		{ID: 1, Slave: 1, Dir: piconet.Up, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 2, Dir: piconet.Down, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
		{ID: 3, Slave: 2, Dir: piconet.Up, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
		{ID: 4, Slave: 3, Dir: piconet.Up, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
	}
	for _, r := range reqs {
		if _, err := ctrl.Admit(r); err != nil {
			return T1{}, nil, fmt.Errorf("experiments: T1 admit %d: %w", r.ID, err)
		}
	}
	t1 := T1{Spec: spec, Xi: baseband.SlotsToDuration(6), MaxRate: maxRate}
	seen := map[int]bool{}
	for _, pf := range ctrl.Flows() {
		if t1.EtaMin == 0 {
			t1.EtaMin = pf.Params.EtaMin
			t1.WorstSize = pf.Params.WorstSize
		}
		if !seen[pf.Priority] {
			seen[pf.Priority] = true
			t1.X = append(t1.X, pf.X)
		}
	}
	lowest := ctrl.Flows()[len(ctrl.Flows())-1]
	t1.MinBound = lowest.Bound
	never, err := gs.MaxDelayBound(spec, lowest.Terms)
	if err != nil {
		return T1{}, nil, fmt.Errorf("experiments: T1 bound: %w", err)
	}
	t1.NeverExceed = never

	tbl := stats.NewTable("T1: §4.1 derived parameters (re-derived; OCR gaps in the published text)",
		"quantity", "value")
	tbl.AddRow("TSpec p=r (bytes/s)", spec.TokenRate)
	tbl.AddRow("TSpec b=M (bytes)", spec.MaxTransferUnit)
	tbl.AddRow("TSpec m (bytes)", spec.MinPolicedUnit)
	tbl.AddRow("eta_min (bytes/poll)", t1.EtaMin)
	tbl.AddRow("eta_min packet size", t1.WorstSize)
	tbl.AddRow("Xi (worst exchange)", t1.Xi)
	for i, x := range t1.X {
		tbl.AddRow(fmt.Sprintf("x at priority %d", i+1), x)
	}
	tbl.AddRow("max admissible R (bytes/s)", fmt.Sprintf("%.0f", t1.MaxRate))
	tbl.AddRow("tightest bound, lowest stream", t1.MinBound)
	tbl.AddRow("bound at R=r (never exceeded)", t1.NeverExceed)
	return t1, tbl, nil
}

// T2Row is one delay-compliance measurement. With replications, Samples
// sums across the cell and MaxSeen/P99 take the worst replication.
type T2Row struct {
	Target  time.Duration
	Flow    piconet.FlowID
	Bound   time.Duration
	MaxSeen time.Duration
	P99     time.Duration
	Samples uint64
	OK      bool
}

// TableT2 verifies the paper's §4.2 claim: over the full run, no GS packet
// delay exceeds the requested (clamped) bound, at every delay requirement.
func TableT2(cfg Config, targets []time.Duration) ([]T2Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		targets = []time.Duration{29 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond}
	}
	targets = uniqueTargets(targets)
	results, err := cfg.execute(harness.Fig5Sweep(cfg.sweep(), targets).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: T2: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("T2: delay-bound compliance (%v per run%s; paper: 530 s, 25000 samples/flow)",
			cfg.Duration, cfg.repNote()),
		"delay_req", "flow", "samples", "p99", "max_delay", "bound", "ok")
	order, byCell := harness.Cells(results)
	var rows []T2Row
	for i, cell := range order {
		rs := byCell[cell]
		for _, f := range rs[0].Result.Flows {
			if f.Class != piconet.Guaranteed {
				continue
			}
			row := T2Row{Target: targets[i], Flow: f.ID, Bound: f.Bound}
			for _, r := range rs {
				rf, ok := r.Result.FlowByID(f.ID)
				if !ok {
					continue
				}
				row.Samples += rf.Delivered
				if rf.DelayMax > row.MaxSeen {
					row.MaxSeen = rf.DelayMax
				}
				if rf.DelayP99 > row.P99 {
					row.P99 = rf.DelayP99
				}
			}
			row.OK = row.MaxSeen <= row.Bound
			rows = append(rows, row)
			ok := "yes"
			if !row.OK {
				ok = "VIOLATED"
			}
			tbl.AddRow(row.Target, row.Flow, row.Samples,
				row.P99.Round(time.Microsecond), row.MaxSeen.Round(time.Microsecond),
				row.Bound.Round(time.Microsecond), ok)
		}
	}
	return rows, tbl, nil
}

// T3 bundles the §4.2 capacity result, aggregated over replications.
type T3 struct {
	GSKbps    float64
	BEKbps    float64
	TotalKbps float64
	// GS, BE and Total carry the full replication summaries.
	GS, BE, Total stats.Summary
	// PerSlave is the per-slave throughput (mean across replications) at
	// the loose requirement.
	PerSlave map[piconet.SlaveID]float64
	// AllBEAtMax reports whether every BE slave reached its offered load
	// (within 2%) in every replication.
	AllBEAtMax bool
}

// TableT3 reproduces the §4.2 total-throughput claim: at a loose delay
// requirement the piconet carries ~656 kbps (256 kbps GS + 400 kbps BE)
// with every BE flow at its offered maximum.
func TableT3(cfg Config) (T3, *stats.Table, error) {
	cfg = cfg.withDefaults()
	sw := harness.Fig5Sweep(cfg.sweep(), []time.Duration{46 * time.Millisecond})
	results, err := cfg.execute(sw.Runs)
	if err != nil {
		return T3{}, nil, fmt.Errorf("experiments: T3: %w", err)
	}
	t3 := T3{
		GS:         classKbps(results, piconet.Guaranteed),
		BE:         classKbps(results, piconet.BestEffort),
		PerSlave:   make(map[piconet.SlaveID]float64),
		AllBEAtMax: true,
	}
	t3.Total = harness.Aggregate(results, func(r *scenario.Result) float64 {
		return r.TotalKbps(piconet.Guaranteed) + r.TotalKbps(piconet.BestEffort)
	})
	t3.GSKbps, t3.BEKbps, t3.TotalKbps = t3.GS.Mean, t3.BE.Mean, t3.Total.Mean
	for slave := piconet.SlaveID(1); slave <= 7; slave++ {
		t3.PerSlave[slave] = slaveKbps(results, slave).Mean
	}
	for _, r := range results {
		for _, b := range r.Run.Spec.BE {
			f, _ := r.Result.FlowByID(b.ID)
			if f.Kbps < b.RateKbps*0.98 {
				t3.AllBEAtMax = false
			}
		}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("T3: carried throughput at a loose (46 ms) requirement (%v%s; paper: 656 kbps total)",
			cfg.Duration, cfg.repNote()),
		"quantity", "kbps")
	tbl.AddRow("GS total (paper: 256)", kbpsCell(t3.GS))
	tbl.AddRow("BE total (paper: 400)", kbpsCell(t3.BE))
	tbl.AddRow("total (paper: 656)", kbpsCell(t3.Total))
	for slave := piconet.SlaveID(1); slave <= 7; slave++ {
		tbl.AddRow(fmt.Sprintf("slave S%d", slave), stats.FormatKbps(t3.PerSlave[slave]))
	}
	return t3, tbl, nil
}
