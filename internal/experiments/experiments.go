// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each experiment
// returns structured rows plus a rendered table; the cmd tools, the
// top-level benchmarks and the tests all share these entry points.
package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/gs"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
	"bluegs/internal/tspec"
)

// Config tunes experiment runs. The zero value uses a 60 s horizon and
// seed 1; the paper's full runs use 530 s (cmd tools pass that).
type Config struct {
	// Duration is the simulated time per run.
	Duration time.Duration
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DefaultFig5Targets is the paper's Fig. 5 x-axis: delay requirements from
// 28 to 46 ms.
func DefaultFig5Targets() []time.Duration {
	var out []time.Duration
	for ms := 28; ms <= 46; ms += 2 {
		out = append(out, time.Duration(ms)*time.Millisecond)
	}
	return out
}

// Fig5Row is one point of the Figure 5 series: per-slave throughput at one
// GS delay requirement.
type Fig5Row struct {
	Target    time.Duration
	SlaveKbps map[piconet.SlaveID]float64
	GSKbps    float64
	BEKbps    float64
	// Violations counts GS flows whose measured max delay exceeded the
	// exported bound (must be zero).
	Violations int
}

// Figure5 regenerates the paper's Fig. 5: per-slave throughput versus the
// GS delay requirement on the Fig. 4 piconet under the PFP implementation
// of the variable-interval poller.
func Figure5(cfg Config, targets []time.Duration) ([]Fig5Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		targets = DefaultFig5Targets()
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Figure 5: throughput vs GS delay requirement (%v per point)", cfg.Duration),
		"delay_req", "S1_kbps", "S2_kbps", "S3_kbps", "S4_kbps", "S5_kbps", "S6_kbps", "S7_kbps",
		"GS_total", "BE_total", "bound_ok")
	var rows []Fig5Row
	for _, target := range targets {
		spec := scenario.Paper(target)
		spec.Duration = cfg.Duration
		spec.Seed = cfg.Seed
		res, err := scenario.Run(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: figure 5 at %v: %w", target, err)
		}
		row := Fig5Row{
			Target:     target,
			SlaveKbps:  res.SlaveKbps,
			GSKbps:     res.TotalKbps(piconet.Guaranteed),
			BEKbps:     res.TotalKbps(piconet.BestEffort),
			Violations: len(res.BoundViolations()),
		}
		rows = append(rows, row)
		ok := "yes"
		if row.Violations > 0 {
			ok = "VIOLATED"
		}
		tbl.AddRow(target,
			stats.FormatKbps(row.SlaveKbps[1]), stats.FormatKbps(row.SlaveKbps[2]),
			stats.FormatKbps(row.SlaveKbps[3]), stats.FormatKbps(row.SlaveKbps[4]),
			stats.FormatKbps(row.SlaveKbps[5]), stats.FormatKbps(row.SlaveKbps[6]),
			stats.FormatKbps(row.SlaveKbps[7]),
			stats.FormatKbps(row.GSKbps), stats.FormatKbps(row.BEKbps), ok)
	}
	return rows, tbl, nil
}

// T1 bundles the §4.1 analytical parameters (the paper's implicit table
// T1; the published text has OCR gaps, so these are re-derived from the
// paper's own formulas — see EXPERIMENTS.md).
type T1 struct {
	Spec        tspec.TSpec
	EtaMin      float64
	WorstSize   int
	Xi          time.Duration
	X           []time.Duration // per priority: x_1, x_2, x_3
	MaxRate     float64         // eta/x_lowest: the §4.1 admissible-rate cap
	MinBound    time.Duration   // tightest supportable bound for the lowest stream
	NeverExceed time.Duration   // bound at R = r for the lowest stream
}

// TableT1 recomputes the paper's §4.1 derived parameters through the
// admission machinery.
func TableT1() (T1, *stats.Table, error) {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	cfg := admission.Config{MaxExchange: baseband.SlotsToDuration(6)}
	// The paper's flow set at the maximal feasible rate.
	ctrl := admission.NewController(cfg)
	maxRate := 144.0 / (11250e-6) // eta_min / x_3
	reqs := []admission.Request{
		{ID: 1, Slave: 1, Dir: piconet.Up, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 2, Dir: piconet.Down, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
		{ID: 3, Slave: 2, Dir: piconet.Up, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
		{ID: 4, Slave: 3, Dir: piconet.Up, Spec: spec, Rate: maxRate, Allowed: baseband.PaperTypes},
	}
	for _, r := range reqs {
		if _, err := ctrl.Admit(r); err != nil {
			return T1{}, nil, fmt.Errorf("experiments: T1 admit %d: %w", r.ID, err)
		}
	}
	t1 := T1{Spec: spec, Xi: baseband.SlotsToDuration(6), MaxRate: maxRate}
	seen := map[int]bool{}
	for _, pf := range ctrl.Flows() {
		if t1.EtaMin == 0 {
			t1.EtaMin = pf.Params.EtaMin
			t1.WorstSize = pf.Params.WorstSize
		}
		if !seen[pf.Priority] {
			seen[pf.Priority] = true
			t1.X = append(t1.X, pf.X)
		}
	}
	lowest := ctrl.Flows()[len(ctrl.Flows())-1]
	t1.MinBound = lowest.Bound
	never, err := gs.MaxDelayBound(spec, lowest.Terms)
	if err != nil {
		return T1{}, nil, fmt.Errorf("experiments: T1 bound: %w", err)
	}
	t1.NeverExceed = never

	tbl := stats.NewTable("T1: §4.1 derived parameters (re-derived; OCR gaps in the published text)",
		"quantity", "value")
	tbl.AddRow("TSpec p=r (bytes/s)", spec.TokenRate)
	tbl.AddRow("TSpec b=M (bytes)", spec.MaxTransferUnit)
	tbl.AddRow("TSpec m (bytes)", spec.MinPolicedUnit)
	tbl.AddRow("eta_min (bytes/poll)", t1.EtaMin)
	tbl.AddRow("eta_min packet size", t1.WorstSize)
	tbl.AddRow("Xi (worst exchange)", t1.Xi)
	for i, x := range t1.X {
		tbl.AddRow(fmt.Sprintf("x at priority %d", i+1), x)
	}
	tbl.AddRow("max admissible R (bytes/s)", fmt.Sprintf("%.0f", t1.MaxRate))
	tbl.AddRow("tightest bound, lowest stream", t1.MinBound)
	tbl.AddRow("bound at R=r (never exceeded)", t1.NeverExceed)
	return t1, tbl, nil
}

// T2Row is one delay-compliance measurement.
type T2Row struct {
	Target  time.Duration
	Flow    piconet.FlowID
	Bound   time.Duration
	MaxSeen time.Duration
	P99     time.Duration
	Samples uint64
	OK      bool
}

// TableT2 verifies the paper's §4.2 claim: over the full run, no GS packet
// delay exceeds the requested (clamped) bound, at every delay requirement.
func TableT2(cfg Config, targets []time.Duration) ([]T2Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(targets) == 0 {
		targets = []time.Duration{29 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("T2: delay-bound compliance (%v per run; paper: 530 s, 25000 samples/flow)", cfg.Duration),
		"delay_req", "flow", "samples", "p99", "max_delay", "bound", "ok")
	var rows []T2Row
	for _, target := range targets {
		spec := scenario.Paper(target)
		spec.Duration = cfg.Duration
		spec.Seed = cfg.Seed
		res, err := scenario.Run(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: T2 at %v: %w", target, err)
		}
		for _, f := range res.Flows {
			if f.Class != piconet.Guaranteed {
				continue
			}
			row := T2Row{
				Target:  target,
				Flow:    f.ID,
				Bound:   f.Bound,
				MaxSeen: f.DelayMax,
				P99:     f.DelayP99,
				Samples: f.Delivered,
				OK:      f.DelayMax <= f.Bound,
			}
			rows = append(rows, row)
			ok := "yes"
			if !row.OK {
				ok = "VIOLATED"
			}
			tbl.AddRow(target, f.ID, row.Samples,
				row.P99.Round(time.Microsecond), row.MaxSeen.Round(time.Microsecond),
				row.Bound.Round(time.Microsecond), ok)
		}
	}
	return rows, tbl, nil
}

// T3 bundles the §4.2 capacity result.
type T3 struct {
	GSKbps    float64
	BEKbps    float64
	TotalKbps float64
	// PerSlave is the per-slave throughput at the loose requirement.
	PerSlave map[piconet.SlaveID]float64
	// AllBEAtMax reports whether every BE slave reached its offered load
	// (within 2%).
	AllBEAtMax bool
}

// TableT3 reproduces the §4.2 total-throughput claim: at a loose delay
// requirement the piconet carries ~656 kbps (256 kbps GS + 400 kbps BE)
// with every BE flow at its offered maximum.
func TableT3(cfg Config) (T3, *stats.Table, error) {
	cfg = cfg.withDefaults()
	spec := scenario.Paper(46 * time.Millisecond)
	spec.Duration = cfg.Duration
	spec.Seed = cfg.Seed
	res, err := scenario.Run(spec)
	if err != nil {
		return T3{}, nil, fmt.Errorf("experiments: T3: %w", err)
	}
	t3 := T3{
		GSKbps:     res.TotalKbps(piconet.Guaranteed),
		BEKbps:     res.TotalKbps(piconet.BestEffort),
		PerSlave:   res.SlaveKbps,
		AllBEAtMax: true,
	}
	t3.TotalKbps = t3.GSKbps + t3.BEKbps
	for _, b := range spec.BE {
		f, _ := res.FlowByID(b.ID)
		if f.Kbps < b.RateKbps*0.98 {
			t3.AllBEAtMax = false
		}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("T3: carried throughput at a loose (46 ms) requirement (%v; paper: 656 kbps total)", cfg.Duration),
		"quantity", "kbps")
	tbl.AddRow("GS total (paper: 256)", stats.FormatKbps(t3.GSKbps))
	tbl.AddRow("BE total (paper: 400)", stats.FormatKbps(t3.BEKbps))
	tbl.AddRow("total (paper: 656)", stats.FormatKbps(t3.TotalKbps))
	for slave := piconet.SlaveID(1); slave <= 7; slave++ {
		tbl.AddRow(fmt.Sprintf("slave S%d", slave), stats.FormatKbps(t3.PerSlave[slave]))
	}
	return t3, tbl, nil
}
