package experiments

import (
	"strings"
	"testing"
	"time"

	"bluegs/internal/piconet"
)

// quick is a short experiment config for tests.
var quick = Config{Duration: 8 * time.Second, Seed: 1}

func TestFigure5Shape(t *testing.T) {
	targets := []time.Duration{28 * time.Millisecond, 36 * time.Millisecond, 46 * time.Millisecond}
	rows, tbl, err := Figure5(quick, targets)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(rows) != len(targets) {
		t.Fatalf("rows = %d, want %d", len(rows), len(targets))
	}
	for _, row := range rows {
		// GS slaves flat at 64/128/64 kbps regardless of requirement.
		if row.SlaveKbps[1] < 62 || row.SlaveKbps[1] > 66 {
			t.Fatalf("S1 = %.1f at %v, want ~64", row.SlaveKbps[1], row.Target)
		}
		if row.SlaveKbps[2] < 124 || row.SlaveKbps[2] > 132 {
			t.Fatalf("S2 = %.1f at %v, want ~128", row.SlaveKbps[2], row.Target)
		}
		if row.SlaveKbps[3] < 62 || row.SlaveKbps[3] > 66 {
			t.Fatalf("S3 = %.1f at %v, want ~64", row.SlaveKbps[3], row.Target)
		}
		// S4 (smallest BE demand) achieves its maximum at every point.
		if row.SlaveKbps[4] < 81 {
			t.Fatalf("S4 = %.1f at %v, want ~83.2", row.SlaveKbps[4], row.Target)
		}
		// No bound violations anywhere on the sweep.
		if row.Violations != 0 {
			t.Fatalf("bound violations at %v", row.Target)
		}
	}
	// BE total grows monotonically with the delay requirement.
	for i := 1; i < len(rows); i++ {
		if rows[i].BEKbps < rows[i-1].BEKbps-2 {
			t.Fatalf("BE total not increasing: %.1f then %.1f",
				rows[i-1].BEKbps, rows[i].BEKbps)
		}
	}
	// At the loose end every BE slave reaches its offered maximum and
	// the total approaches the paper's 656 kbps.
	last := rows[len(rows)-1]
	for slave, want := range map[piconet.SlaveID]float64{4: 83.2, 5: 94.4, 6: 105.6, 7: 116.8} {
		if last.SlaveKbps[slave] < want*0.97 {
			t.Fatalf("S%d = %.1f at 46ms, want ~%.1f", slave, last.SlaveKbps[slave], want)
		}
	}
	total := last.GSKbps + last.BEKbps
	if total < 640 || total > 670 {
		t.Fatalf("total = %.1f kbps at 46ms, want ~656", total)
	}
	if tbl.NumRows() != len(targets) {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
}

func TestTableT1PaperValues(t *testing.T) {
	t1, tbl, err := TableT1()
	if err != nil {
		t.Fatalf("TableT1: %v", err)
	}
	if t1.EtaMin != 144 || t1.WorstSize != 144 {
		t.Fatalf("eta_min = %v @ %d", t1.EtaMin, t1.WorstSize)
	}
	if t1.Xi != 3750*time.Microsecond {
		t.Fatalf("Xi = %v", t1.Xi)
	}
	wantX := []time.Duration{3750 * time.Microsecond, 7500 * time.Microsecond, 11250 * time.Microsecond}
	if len(t1.X) != 3 {
		t.Fatalf("X = %v, want 3 streams", t1.X)
	}
	for i, x := range t1.X {
		if x != wantX[i] {
			t.Fatalf("x_%d = %v, want %v", i+1, x, wantX[i])
		}
	}
	if t1.MaxRate != 12800 {
		t.Fatalf("MaxRate = %v, want 12800", t1.MaxRate)
	}
	if t1.MinBound != 36250*time.Microsecond {
		t.Fatalf("MinBound = %v, want 36.25ms", t1.MinBound)
	}
	// Bound at R=r: 320/8800 s + 11.25 ms ~= 47.61 ms.
	if t1.NeverExceed < 47*time.Millisecond || t1.NeverExceed > 48*time.Millisecond {
		t.Fatalf("NeverExceed = %v, want ~47.6ms", t1.NeverExceed)
	}
	if !strings.Contains(tbl.String(), "eta_min") {
		t.Fatal("table missing eta_min row")
	}
}

func TestTableT2AllCompliant(t *testing.T) {
	rows, tbl, err := TableT2(quick, nil)
	if err != nil {
		t.Fatalf("TableT2: %v", err)
	}
	if len(rows) != 3*4 {
		t.Fatalf("rows = %d, want 12 (3 targets x 4 flows)", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("flow %d at %v: max %v > bound %v", r.Flow, r.Target, r.MaxSeen, r.Bound)
		}
		if r.Samples == 0 {
			t.Fatalf("flow %d at %v: no samples", r.Flow, r.Target)
		}
	}
	if strings.Contains(tbl.String(), "VIOLATED") {
		t.Fatal("table shows violations")
	}
}

func TestTableT3TotalThroughput(t *testing.T) {
	t3, tbl, err := TableT3(quick)
	if err != nil {
		t.Fatalf("TableT3: %v", err)
	}
	if t3.GSKbps < 250 || t3.GSKbps > 260 {
		t.Fatalf("GS = %.1f, want ~256", t3.GSKbps)
	}
	if t3.BEKbps < 392 || t3.BEKbps > 404 {
		t.Fatalf("BE = %.1f, want ~400", t3.BEKbps)
	}
	if t3.TotalKbps < 645 || t3.TotalKbps > 665 {
		t.Fatalf("total = %.1f, want ~656", t3.TotalKbps)
	}
	if !t3.AllBEAtMax {
		t.Fatal("not all BE flows reached their maximum at the loose requirement")
	}
	if !strings.Contains(tbl.String(), "656") {
		t.Fatal("table missing paper reference")
	}
}

func TestTableT4SCOComparison(t *testing.T) {
	rows, tbl, err := TableT4(quick)
	if err != nil {
		t.Fatalf("TableT4: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 1 SCO + 4 GS", len(rows))
	}
	scoRow := rows[0]
	if scoRow.Reclaimable {
		t.Fatal("SCO slots must not be reclaimable")
	}
	if scoRow.BusySlots != scoRow.IdleSlots {
		t.Fatal("SCO reservation must be unconditional")
	}
	// The tightest GS bound approaches (but does not beat) SCO's.
	tightest := rows[1]
	if tightest.Bound < scoRow.Bound {
		t.Fatalf("GS bound %v beats SCO %v; unexpected", tightest.Bound, scoRow.Bound)
	}
	if tightest.Bound > 4*scoRow.Bound {
		t.Fatalf("GS bound %v does not approach SCO %v", tightest.Bound, scoRow.Bound)
	}
	for _, r := range rows[1:] {
		if !r.Reclaimable {
			t.Fatal("GS rows must be reclaimable")
		}
		if r.MaxSeen > r.Bound {
			t.Fatalf("%s: measured %v exceeds bound %v", r.Scheme, r.MaxSeen, r.Bound)
		}
		// Idle consumption is below busy consumption (slots are
		// actually saved when the source pauses).
		if r.IdleSlots >= r.BusySlots {
			t.Fatalf("%s: idle %v >= busy %v", r.Scheme, r.IdleSlots, r.BusySlots)
		}
	}
	// Looser targets consume fewer busy slots.
	for i := 2; i < len(rows); i++ {
		if rows[i].BusySlots > rows[i-1].BusySlots {
			t.Fatalf("busy slots not decreasing with looser targets: %v then %v",
				rows[i-1].BusySlots, rows[i].BusySlots)
		}
	}
	if !strings.Contains(tbl.String(), "SCO") {
		t.Fatal("table missing SCO row")
	}
}

func TestAblationImprovements(t *testing.T) {
	rows, tbl, err := AblationImprovements(quick)
	if err != nil {
		t.Fatalf("AblationImprovements: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.Violations != 0 {
			t.Fatalf("%q violated bounds", r.Label)
		}
	}
	fixed := byLabel["fixed (§3.1, no rules)"]
	all := byLabel["all rules (§3.2)"]
	if all.GSSlots >= fixed.GSSlots {
		t.Fatalf("all rules %d GS slots >= fixed %d", all.GSSlots, fixed.GSSlots)
	}
	// Rule (c) is what skips polls.
	if byLabel["rule c (skip empty down)"].Skipped == 0 {
		t.Fatal("rule c recorded no skips")
	}
	if fixed.Skipped != 0 {
		t.Fatal("fixed mode must not skip")
	}
	// Each individual rule already helps (or at least does not hurt).
	for _, label := range []string{
		"rule a (postpone after packet)",
		"rule b (postpone after empty)",
		"rule c (skip empty down)",
	} {
		if byLabel[label].GSSlots > fixed.GSSlots {
			t.Fatalf("%q uses more GS slots (%d) than fixed (%d)",
				label, byLabel[label].GSSlots, fixed.GSSlots)
		}
	}
	if tbl.NumRows() != 6 {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
}

func TestBaselinePollers(t *testing.T) {
	rows, tbl, err := BaselinePollers(quick)
	if err != nil {
		t.Fatalf("BaselinePollers: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 pollers", len(rows))
	}
	for _, r := range rows {
		if r.TotalKbps < 50 {
			t.Fatalf("%s carried only %.1f kbps", r.Poller, r.TotalKbps)
		}
		if r.Fairness <= 0 || r.Fairness > 1+1e-9 {
			t.Fatalf("%s fairness = %v", r.Poller, r.Fairness)
		}
		// The channel is overloaded: every baseline shows unbounded
		// (multi-interval) worst-case delays, motivating the GS
		// mechanism.
		if r.MaxDelay < 20*time.Millisecond {
			t.Fatalf("%s max delay %v suspiciously low for an overloaded channel",
				r.Poller, r.MaxDelay)
		}
	}
	if tbl.NumRows() != 7 {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
}
