package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// E5Row reports one bit-error-rate point of the retransmission experiment,
// aggregated over replications (delivery pools packet counts, the worst
// delay takes the worst replication, rates are means).
type E5Row struct {
	BER float64
	// Recovery reports whether the saved-bandwidth retransmission policy
	// (the paper's future work) was active.
	Recovery bool
	// GSDelivery is the fraction of offered GS packets delivered intact.
	GSDelivery float64
	// GSMaxDelay is the worst GS delay observed; WorstBound the largest
	// (error-free) analytic bound — retransmission delay is not covered
	// by the Guaranteed Service contract, which is exactly the paper's
	// future-work gap.
	GSMaxDelay    time.Duration
	WorstBound    time.Duration
	BEKbps        float64
	RetransSlotsS float64
}

// RetransmissionStudy implements the paper's stated future work (§5): a
// non-ideal radio environment where transmission errors occur and the
// bandwidth saved by the variable-interval poller absorbs ARQ
// retransmissions. The Fig. 4 scenario runs at a 40 ms requirement across
// a bit-error-rate sweep with baseband ARQ enabled, without and with the
// saved-bandwidth recovery policy ("which retransmissions to use the saved
// bandwidth for").
func RetransmissionStudy(cfg Config, bers []float64) ([]E5Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(bers) == 0 {
		bers = []float64{0, 1e-5, 5e-5, 1e-4, 5e-4}
	}
	results, err := cfg.execute(harness.ExtensionSweep(cfg.sweep(), bers).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: E5: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E5 (future work): GS flows over a lossy radio with ARQ (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"BER", "recovery", "gs_delivery", "gs_max_delay", "worst_bound", "be_kbps", "rtx_slots/s")
	_, cellRuns := harness.Cells(results)
	var rows []E5Row
	for _, ber := range bers {
		for _, recovery := range []bool{false, true} {
			if ber == 0 && recovery {
				continue // identical to the lossless baseline
			}
			rs := cellRuns[harness.ExtensionCell(ber, recovery)]
			var offered, delivered uint64
			var maxDelay, worstBound time.Duration
			for _, r := range rs {
				for _, f := range r.Result.Flows {
					if f.Class != piconet.Guaranteed {
						continue
					}
					offered += f.Offered
					delivered += f.Delivered
					if f.DelayMax > maxDelay {
						maxDelay = f.DelayMax
					}
					if f.Bound > worstBound {
						worstBound = f.Bound
					}
				}
			}
			row := E5Row{
				BER:        ber,
				Recovery:   recovery,
				GSMaxDelay: maxDelay,
				WorstBound: worstBound,
				BEKbps:     classKbps(rs, piconet.BestEffort).Mean,
				RetransSlotsS: harness.Aggregate(rs, func(r *scenario.Result) float64 {
					return float64(r.Slots.Retransmit) / r.Elapsed.Seconds()
				}).Mean,
			}
			if offered > 0 {
				// In-flight packets at the horizon are not failures.
				row.GSDelivery = float64(delivered) / float64(offered)
			}
			rows = append(rows, row)
			tbl.AddRow(fmt.Sprintf("%.0e", ber), recovery,
				fmt.Sprintf("%.4f", row.GSDelivery),
				maxDelay.Round(time.Microsecond), worstBound.Round(time.Microsecond),
				stats.FormatKbps(row.BEKbps), fmt.Sprintf("%.1f", row.RetransSlotsS))
		}
	}
	return rows, tbl, nil
}

// E6Row reports one configuration of the SCO coexistence experiment,
// aggregated over replications.
type E6Row struct {
	Label      string
	Bound      time.Duration
	GSMaxDelay time.Duration
	GSKbps     float64
	BEKbps     float64
	SCOKbps    float64
	SCOSlotsS  float64
	Violations int
}

// e6Labels are the sweep cells, in grid order.
var e6Labels = []string{"no SCO link", "HV3 SCO link at S3"}

// SCOCoexistence runs a Guaranteed Service voice flow and best-effort
// traffic with and without a reserved HV3 SCO link in the same piconet —
// the setting the HOL-priority and demand-based related work addresses
// (§3). With SCO present, admission folds the reservations into x_i as an
// implicit highest-priority stream and direction-aware exchange times keep
// GS exchanges within the 4-slot windows; best-effort flows are restricted
// to DH1 for the same reason.
func SCOCoexistence(cfg Config) ([]E6Row, *stats.Table, error) {
	cfg = cfg.withDefaults()
	build := func(withSCO bool) scenario.Spec {
		spec := scenario.Spec{
			Name: "sco-coexistence",
			GS: []scenario.GSFlow{{
				ID: 1, Slave: 1, Dir: piconet.Up,
				Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
			}},
			BE: []scenario.BEFlow{
				{ID: 2, Slave: 2, Dir: piconet.Down, RateKbps: 40, PacketSize: 27,
					Allowed: baseband.NewTypeSet(baseband.TypeDH1)},
				{ID: 3, Slave: 2, Dir: piconet.Up, RateKbps: 40, PacketSize: 27,
					Allowed: baseband.NewTypeSet(baseband.TypeDH1)},
			},
			DelayTarget:    52 * time.Millisecond,
			DirectionAware: true,
		}
		if withSCO {
			spec.SCO = []scenario.SCOLinkSpec{{Slave: 3, Type: baseband.TypeHV3}}
		}
		return spec
	}
	sw := harness.GridSweep("e6", cfg.sweep(), e6Labels, func(cell string) scenario.Spec {
		return build(cell == e6Labels[1])
	})
	results, err := cfg.execute(sw.Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: E6: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E6: GS + BE with and without an HV3 SCO link (%v per run%s)",
			cfg.Duration, cfg.repNote()),
		"configuration", "gs_bound", "gs_max_delay", "gs_kbps", "be_kbps", "sco_kbps", "sco_slots/s", "bound_ok")
	order, cellRuns := harness.Cells(results)
	var rows []E6Row
	for _, label := range order {
		rs := cellRuns[label]
		gsFlow, _ := rs[0].Result.FlowByID(1)
		row := E6Row{
			Label:  label,
			Bound:  gsFlow.Bound,
			GSKbps: classKbps(rs, piconet.Guaranteed).Mean,
			BEKbps: classKbps(rs, piconet.BestEffort).Mean,
			SCOKbps: harness.Aggregate(rs, func(r *scenario.Result) float64 {
				return r.SCOKbps[3]
			}).Mean,
			SCOSlotsS: harness.Aggregate(rs, func(r *scenario.Result) float64 {
				return float64(r.Slots.SCO) / r.Elapsed.Seconds()
			}).Mean,
			Violations: cellViolations(rs),
		}
		for _, r := range rs {
			if rf, ok := r.Result.FlowByID(1); ok && rf.DelayMax > row.GSMaxDelay {
				row.GSMaxDelay = rf.DelayMax
			}
		}
		rows = append(rows, row)
		ok := "yes"
		if row.Violations > 0 {
			ok = "VIOLATED"
		}
		tbl.AddRow(label, row.Bound.Round(time.Microsecond),
			row.GSMaxDelay.Round(time.Microsecond),
			stats.FormatKbps(row.GSKbps), stats.FormatKbps(row.BEKbps),
			stats.FormatKbps(row.SCOKbps), fmt.Sprintf("%.0f", row.SCOSlotsS), ok)
	}
	return rows, tbl, nil
}
