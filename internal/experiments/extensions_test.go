package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestRetransmissionStudy(t *testing.T) {
	bers := []float64{0, 1e-4}
	rows, tbl, err := RetransmissionStudy(quick, bers)
	if err != nil {
		t.Fatalf("RetransmissionStudy: %v", err)
	}
	// 1 lossless row + 2 rows (recovery off/on) at the lossy point.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	lossless := rows[0]
	if lossless.BER != 0 || lossless.GSDelivery < 0.99 {
		t.Fatalf("lossless row: %+v", lossless)
	}
	if lossless.RetransSlotsS != 0 {
		t.Fatalf("lossless retransmit slots = %v", lossless.RetransSlotsS)
	}
	var noRec, withRec E5Row
	for _, r := range rows[1:] {
		if r.Recovery {
			withRec = r
		} else {
			noRec = r
		}
	}
	// The future-work gap: without recovery, retries eat the poll budget
	// and delays blow past the bound.
	if noRec.GSMaxDelay < noRec.WorstBound {
		t.Fatalf("expected bound violations without recovery: max %v vs bound %v",
			noRec.GSMaxDelay, noRec.WorstBound)
	}
	// The saved-bandwidth policy restores delivery and near-bound delays.
	if withRec.GSDelivery < 0.995 {
		t.Fatalf("recovery delivery = %v, want ~1", withRec.GSDelivery)
	}
	if withRec.GSDelivery <= noRec.GSDelivery {
		t.Fatalf("recovery should improve delivery: %v vs %v",
			withRec.GSDelivery, noRec.GSDelivery)
	}
	if withRec.GSMaxDelay >= noRec.GSMaxDelay {
		t.Fatalf("recovery should cut worst delay: %v vs %v",
			withRec.GSMaxDelay, noRec.GSMaxDelay)
	}
	if withRec.GSMaxDelay > noRec.WorstBound+10*time.Millisecond {
		t.Fatalf("recovery worst delay %v far above bound %v",
			withRec.GSMaxDelay, withRec.WorstBound)
	}
	if withRec.RetransSlotsS == 0 {
		t.Fatal("no retransmission slots recorded at BER 1e-4")
	}
	if !strings.Contains(tbl.String(), "future work") {
		t.Fatal("table missing label")
	}
}

func TestSCOCoexistence(t *testing.T) {
	rows, tbl, err := SCOCoexistence(quick)
	if err != nil {
		t.Fatalf("SCOCoexistence: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	without, with := rows[0], rows[1]
	for _, r := range rows {
		if r.Violations != 0 {
			t.Fatalf("%q violated the bound", r.Label)
		}
		// The GS voice flow carries its full 64 kbps either way.
		if r.GSKbps < 62 || r.GSKbps > 66 {
			t.Fatalf("%q GS = %.1f kbps, want ~64", r.Label, r.GSKbps)
		}
	}
	// SCO costs: a looser achievable bound and one third of the slots.
	if with.Bound <= without.Bound {
		t.Fatalf("SCO should loosen the GS bound: %v vs %v", with.Bound, without.Bound)
	}
	if with.SCOSlotsS < 520 || with.SCOSlotsS > 540 {
		t.Fatalf("SCO slots/s = %v, want ~533", with.SCOSlotsS)
	}
	if with.SCOKbps < 126 || with.SCOKbps > 130 {
		t.Fatalf("SCO kbps = %v, want ~128 (64 each way)", with.SCOKbps)
	}
	if without.SCOKbps != 0 || without.SCOSlotsS != 0 {
		t.Fatalf("no-SCO row shows SCO activity: %+v", without)
	}
	// Best effort survives in both configurations (DH1 flows fit the
	// 4-slot windows).
	if with.BEKbps < without.BEKbps*0.9 {
		t.Fatalf("BE collapsed under SCO: %.1f vs %.1f", with.BEKbps, without.BEKbps)
	}
	if !strings.Contains(tbl.String(), "HV3") {
		t.Fatal("table missing SCO row")
	}
}
