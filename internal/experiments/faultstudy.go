package experiments

import (
	"fmt"
	"time"

	"bluegs/internal/faults"
	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// FaultStudyRow is one point of the fault-injection study: the fault
// scenario workload (see scenario.FaultScenario) under one (outage count,
// outage duration, recovery policy) combination.
type FaultStudyRow struct {
	// Policy is the recovery policy the cell ran (faults.PolicyNone is
	// the supervision-only baseline: failures are detected and the flows
	// suspended, but nothing retrieves the contracts).
	Policy faults.Policy
	// Outages and OutageDuration locate the fault-plan cell.
	Outages        int
	OutageDuration time.Duration
	// GSFlows is the guarantee population per replication: GS result
	// rows excluding handed-off source remnants (their continuation at
	// the target piconet is counted instead), summed over replications.
	GSFlows int
	// Suspended counts supervision-timeout suspensions; Degraded and
	// Moved the accepted recoveries, across replications.
	Suspended, Degraded, Moved int
	// Survived counts flows whose guarantee held end to end: untouched
	// or degraded fate, measured max delay within the exported bound.
	// Survival is Survived/GSFlows — the study's headline metric.
	Survived int
	Survival float64
	// DetectionLatency is the mean supervision detection latency (link
	// failure to declared-dead) across suspensions; zero when nothing
	// was suspended.
	DetectionLatency time.Duration
	// RetainedViolations counts flows still under contract (untouched or
	// degraded) whose measured max delay exceeded their exported bound.
	// Must be zero: suspension flushes queues before late deliveries
	// happen, and recoveries re-admit through the admission test.
	RetainedViolations int
	// GS is the delivered GS throughput summary across replications.
	GS stats.Summary
	// Reps is the number of replications aggregated.
	Reps int
}

// DefaultFaultPolicies is the study's policy axis: no recovery,
// graceful degradation, make-before-break handoff.
func DefaultFaultPolicies() []faults.Policy {
	return []faults.Policy{faults.PolicyNone, faults.PolicyDegrade, faults.PolicyHandoff}
}

// DefaultFaultOutageCounts is the study's outage-rate axis.
func DefaultFaultOutageCounts() []int { return []int{1, 3} }

// DefaultFaultDurations is the study's outage-duration axis. Both values
// sit well above the supervision detection floor (three failed voice
// polls, ~150ms) so every window is detected.
func DefaultFaultDurations() []time.Duration {
	return []time.Duration{400 * time.Millisecond, 800 * time.Millisecond}
}

// faultCell renders one (outages, duration, policy) grid cell.
func faultCell(outages int, dur time.Duration, policy faults.Policy) string {
	p := string(policy)
	if p == "" {
		p = "none"
	}
	return fmt.Sprintf("%dx%s/%s", outages, dur, p)
}

// FaultStudy is experiment E11: what the self-healing machinery buys.
// Every cell injects the same deterministic link-outage schedule into the
// loaded piconet of the fault scenario and differs only in the recovery
// policy. With supervision alone (PolicyNone) failed links are detected
// and their flows suspended — guarantees die with the link, and the
// survival fraction drops with every injected outage. Graceful
// degradation renegotiates each suspended flow at a 4× looser bound once
// its declared window ends; handoff moves it make-before-break to the
// standby piconet at the original bound. Both recover the contracts the
// baseline loses, and neither may violate a retained bound: suspension
// flushes the queue before stale packets can be delivered late, and
// every recovery re-enters service through the admission test.
func FaultStudy(cfg Config, counts []int, durations []time.Duration, policies []faults.Policy) ([]FaultStudyRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = DefaultFaultOutageCounts()
	}
	if len(durations) == 0 {
		durations = DefaultFaultDurations()
	}
	if len(policies) == 0 {
		policies = DefaultFaultPolicies()
	}
	type point struct {
		outages int
		dur     time.Duration
		policy  faults.Policy
	}
	var cells []string
	byCell := make(map[string]point)
	for _, n := range counts {
		for _, dur := range durations {
			for _, policy := range policies {
				cell := faultCell(n, dur, policy)
				if _, dup := byCell[cell]; dup {
					continue
				}
				cells = append(cells, cell)
				byCell[cell] = point{n, dur, policy}
			}
		}
	}
	grid := harness.Grid{Name: "fault-study", Cells: cells, Build: func(cell string) scenario.Spec {
		p := byCell[cell]
		// The outage schedule is derived from the horizon, so the sweep
		// duration must flow into the builder (Grid.Run's Duration
		// override is then a no-op).
		return scenario.FaultScenario(scenario.FaultScenarioConfig{
			Outages:        p.outages,
			OutageDuration: p.dur,
			Policy:         p.policy,
			Duration:       cfg.Duration,
		})
	}}
	results, err := cfg.execute(grid.Sweep(cfg.sweep()).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: fault study: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E11: fault injection and self-healing — guarantee survival under link outages (%v per run%s; supervision after 3 failed polls)",
			cfg.Duration, cfg.repNote()),
		"policy", "outages", "outage_dur", "gs_flows", "suspended", "degraded", "moved",
		"survival", "detect_latency", "retained_viol", "GS_kbps")
	order, cellRuns := harness.Cells(results)
	var rows []FaultStudyRow
	for _, cell := range order {
		rs := cellRuns[cell]
		p := byCell[cell]
		row := FaultStudyRow{
			Policy:         p.policy,
			Outages:        p.outages,
			OutageDuration: p.dur,
			GS:             classKbps(rs, piconet.Guaranteed),
			Reps:           len(rs),
		}
		var latencySum time.Duration
		for _, r := range rs {
			res := r.Result
			for _, f := range res.Flows {
				if f.Class != piconet.Guaranteed || f.Fate == scenario.FateMoved {
					continue
				}
				row.GSFlows++
				retained := f.Fate == "" || f.Fate == scenario.FateDegraded
				if retained && f.DelayMax > f.Bound {
					row.RetainedViolations++
				}
				if retained && f.DelayMax <= f.Bound {
					row.Survived++
				}
			}
			for _, a := range res.Admissions {
				if !a.Accepted {
					continue
				}
				switch a.Op {
				case scenario.OpSuspend:
					row.Suspended++
					latencySum += a.Latency
				case scenario.OpDegrade:
					row.Degraded++
				case scenario.OpHandoff:
					row.Moved++
				}
			}
		}
		if row.GSFlows > 0 {
			row.Survival = float64(row.Survived) / float64(row.GSFlows)
		}
		if row.Suspended > 0 {
			row.DetectionLatency = latencySum / time.Duration(row.Suspended)
		}
		rows = append(rows, row)
		policy := string(row.Policy)
		if policy == "" {
			policy = "none"
		}
		tbl.AddRow(policy, row.Outages, row.OutageDuration,
			row.GSFlows, row.Suspended, row.Degraded, row.Moved,
			fmt.Sprintf("%.3f", row.Survival),
			row.DetectionLatency.Round(time.Microsecond),
			row.RetainedViolations, kbpsCell(row.GS))
	}
	return rows, tbl, nil
}
