package experiments

import (
	"testing"
	"time"

	"bluegs/internal/faults"
)

// TestFaultStudySelfHealing is the E11 acceptance gate: at the same fault
// rate, the recovery policies keep strictly more guarantees alive than
// the supervision-only baseline, every suspension is detected within the
// supervision window, and no retained contract is ever violated.
func TestFaultStudySelfHealing(t *testing.T) {
	cfg := Config{Duration: 12 * time.Second, Seed: 1}
	rows, tbl, err := FaultStudy(cfg, []int{3}, []time.Duration{400 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 policies", len(rows))
	}
	byPolicy := map[faults.Policy]FaultStudyRow{}
	for _, row := range rows {
		byPolicy[row.Policy] = row
		if row.RetainedViolations != 0 {
			t.Errorf("policy %q: %d retained flows violated their bound",
				row.Policy, row.RetainedViolations)
		}
		if row.Suspended == 0 {
			t.Errorf("policy %q: no supervision suspensions — the outages were not detected",
				row.Policy)
		}
		// Three failed voice polls: detection must land between one poll
		// interval and a generous multiple of the supervision window.
		if row.Suspended > 0 && (row.DetectionLatency <= 0 || row.DetectionLatency > 250*time.Millisecond) {
			t.Errorf("policy %q: detection latency %v outside (0, 250ms]",
				row.Policy, row.DetectionLatency)
		}
	}
	none := byPolicy[faults.PolicyNone]
	degrade := byPolicy[faults.PolicyDegrade]
	handoff := byPolicy[faults.PolicyHandoff]
	if none.GSFlows == 0 || none.GSFlows != degrade.GSFlows || none.GSFlows != handoff.GSFlows {
		t.Fatalf("guarantee populations diverged: none=%d degrade=%d handoff=%d",
			none.GSFlows, degrade.GSFlows, handoff.GSFlows)
	}
	if degrade.Survival <= none.Survival {
		t.Errorf("degradation did not improve survival: %.3f vs %.3f",
			degrade.Survival, none.Survival)
	}
	if handoff.Survival <= none.Survival {
		t.Errorf("handoff did not improve survival: %.3f vs %.3f",
			handoff.Survival, none.Survival)
	}
	if degrade.Degraded == 0 {
		t.Error("degrade arm renegotiated nothing")
	}
	if handoff.Moved == 0 {
		t.Error("handoff arm moved nothing")
	}
}
