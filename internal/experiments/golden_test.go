package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// update regenerates the golden tables instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden tables")

// goldenCfg pins the snapshot setup: the short 60 s horizon at seed 1
// with a single replication — the configuration whose rendered tables the
// seed's serial experiment loops produced. Any refactor of the experiment
// plumbing (including the harness rewiring) must keep these bytes.
var goldenCfg = Config{Duration: 60 * time.Second, Seed: 1, Replications: 1}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("table drifted from the golden snapshot %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestFigure5Golden(t *testing.T) {
	_, tbl, err := Figure5(goldenCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5_60s_seed1.golden", tbl.String())
}

func TestBaselinePollersGolden(t *testing.T) {
	_, tbl, err := BaselinePollers(goldenCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "baseline_60s_seed1.golden", tbl.String())
}
