package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// ScatternetRow is one point of the scatternet study: the paper's
// per-piconet delay guarantees under N co-located piconets at one
// best-effort load, aggregated over replications.
type ScatternetRow struct {
	// Piconets and BEKbps locate the cell: piconet count × per-direction
	// best-effort load per piconet.
	Piconets int
	BEKbps   float64
	// GSFlows is the number of GS flows across the scatternet;
	// Violations how many of them (summed over replications) exceeded
	// their exported bound.
	GSFlows    int
	Violations int
	// ViolationFraction is the mean scatternet-wide fraction of GS flows
	// violating their bound, across replications — the study's headline:
	// 0 at one piconet (the paper's guarantee), growing with the count.
	ViolationFraction float64
	// PerPiconet renders per-piconet bound compliance: one
	// "ok-flows/gs-flows" entry per piconet (flows count as ok when they
	// met the bound in every replication).
	PerPiconet []string
	// MeanDelayMax is the worst GS delay across flows, averaged over
	// replications.
	MeanDelayMax time.Duration
	// Utilization is the mean per-piconet channel occupancy.
	Utilization float64
	// GS and BE are delivered-throughput summaries across replications.
	GS, BE stats.Summary
	// Reps is the number of replications aggregated.
	Reps int
}

// DefaultScatternetCounts is the study's piconet-count axis.
func DefaultScatternetCounts() []int { return []int{1, 2, 4, 6, 8} }

// DefaultScatternetLoads is the study's offered-load axis: the
// per-direction best-effort floor of every piconet, in kbps.
func DefaultScatternetLoads() []float64 { return []float64{30, 60} }

// scatternetCell renders one (count, load) grid cell.
func scatternetCell(count int, load float64) string {
	return fmt.Sprintf("%dpn/%skbps", count, strconv.FormatFloat(load, 'g', -1, 64))
}

// ScatternetStudy is experiment E9: how the paper's per-piconet delay
// bounds erode as co-located piconets multiply. Each cell runs N
// identical piconets — the paper's voice-style GS flows plus a
// best-effort floor, ARQ on — coupled through the 1/79 FH co-channel
// collision model, over one shared kernel clock. With one piconet the
// admission test's promise holds exactly; every added piconet raises the
// per-packet collision probability, retransmissions eat the slack the
// x_i fixed point reasoned with, and the violation fraction climbs.
func ScatternetStudy(cfg Config, counts []int, loads []float64) ([]ScatternetRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = DefaultScatternetCounts()
	}
	if len(loads) == 0 {
		loads = DefaultScatternetLoads()
	}
	type point struct {
		count int
		load  float64
	}
	var cells []string
	byCell := make(map[string]point)
	for _, load := range loads {
		for _, count := range counts {
			cell := scatternetCell(count, load)
			if _, dup := byCell[cell]; dup {
				continue
			}
			cells = append(cells, cell)
			byCell[cell] = point{count, load}
		}
	}
	grid := harness.Grid{Name: "scatternet", Cells: cells, Build: func(cell string) scenario.Spec {
		p := byCell[cell]
		return scenario.Scatternet(scenario.ScatternetConfig{
			Piconets: p.count,
			BEKbps:   p.load,
			Duration: cfg.Duration,
		})
	}}
	results, err := cfg.execute(grid.Sweep(cfg.sweep()).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: scatternet: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E9: delay-bound erosion across co-located piconets (%v per run%s; 1/79 FH collision model, ARQ on)",
			cfg.Duration, cfg.repNote()),
		"piconets", "be_kbps", "GS_kbps", "BE_kbps", "violations", "viol_fraction",
		"worst_gs_delay", "mean_util", "per_piconet_ok")
	order, cellRuns := harness.Cells(results)
	var rows []ScatternetRow
	for _, cell := range order {
		rs := cellRuns[cell]
		p := byCell[cell]
		row := ScatternetRow{
			Piconets: p.count,
			BEKbps:   p.load,
			GS:       classKbps(rs, piconet.Guaranteed),
			BE:       classKbps(rs, piconet.BestEffort),
			Reps:     len(rs),
		}
		// Per-(piconet, flow) compliance across replications.
		type flowKey struct {
			pn   string
			flow piconet.FlowID
		}
		violated := make(map[flowKey]bool)
		fracSum, delaySum, utilSum := 0.0, time.Duration(0), 0.0
		for _, r := range rs {
			res := r.Result
			fracSum += res.ViolationFraction()
			var worst time.Duration
			for _, f := range res.Flows {
				if f.Class != piconet.Guaranteed {
					continue
				}
				if f.DelayMax > worst {
					worst = f.DelayMax
				}
				if f.DelayMax > f.Bound {
					violated[flowKey{f.Piconet, f.ID}] = true
				}
			}
			delaySum += worst
			for _, pr := range res.Piconets {
				utilSum += pr.Utilization
			}
		}
		row.Violations = cellViolations(rs)
		row.ViolationFraction = fracSum / float64(len(rs))
		row.MeanDelayMax = delaySum / time.Duration(len(rs))
		row.Utilization = utilSum / float64(len(rs)*p.count)
		// Per-piconet compliance from the first replication's layout
		// (all replications share it), marking a flow ok only when it
		// met its bound in every replication.
		for _, pr := range rs[0].Result.Piconets {
			gs, ok := 0, 0
			for _, f := range pr.Flows {
				if f.Class != piconet.Guaranteed {
					continue
				}
				gs++
				if !violated[flowKey{pr.Name, f.ID}] {
					ok++
				}
			}
			row.PerPiconet = append(row.PerPiconet, fmt.Sprintf("%d/%d", ok, gs))
			row.GSFlows += gs
		}
		rows = append(rows, row)
		tbl.AddRow(row.Piconets, stats.FormatKbps(row.BEKbps),
			kbpsCell(row.GS), kbpsCell(row.BE),
			row.Violations, fmt.Sprintf("%.3f", row.ViolationFraction),
			row.MeanDelayMax.Round(time.Microsecond),
			fmt.Sprintf("%.3f", row.Utilization),
			strings.Join(row.PerPiconet, " "))
	}
	return rows, tbl, nil
}
