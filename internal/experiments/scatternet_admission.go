package experiments

import (
	"fmt"
	"strconv"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// ScatternetAdmissionRow is one point of the interference-aware admission
// study: the same co-located scatternet workload with the admission test
// either trusting the ideal channel (baseline) or derating its service
// rates by the expected FH co-channel success probability.
type ScatternetAdmissionRow struct {
	// Piconets and BEKbps locate the workload cell.
	Piconets int
	BEKbps   float64
	// Derated tells which admission mode the row ran.
	Derated bool
	// GSFlows is the number of admitted GS flows across the scatternet
	// (first replication's layout; replications share it). Violations
	// counts admitted flows whose measured max delay exceeded their
	// exported bound, summed over replications.
	GSFlows    int
	Violations int
	// ViolationFraction is the mean fraction of admitted GS flows
	// violating their bound, across replications — ~0 when derated.
	ViolationFraction float64
	// Requests/Accepted/Rejected count the timeline's online add-gs
	// outcomes across replications; AcceptRatio = Accepted/Requests.
	// The derating cost shows here: the derated controller refuses
	// arrivals the baseline happily admits (and then violates).
	Requests, Accepted, Rejected int
	AcceptRatio                  float64
	// MeanDelayMax is the worst GS delay across flows, averaged over
	// replications.
	MeanDelayMax time.Duration
	// GS and BE are delivered-throughput summaries across replications.
	GS, BE stats.Summary
	// Reps is the number of replications aggregated.
	Reps int
}

// DefaultAdmissionCounts is the admission study's piconet-count axis.
func DefaultAdmissionCounts() []int { return []int{1, 2, 4, 8} }

// DefaultAdmissionLoads is the study's offered-load axis. One load keeps
// the default report tractable; pass more to sweep it.
func DefaultAdmissionLoads() []float64 { return []float64{60} }

// admissionOnlineGS is the number of extra online GS arrivals per piconet
// the timeline offers — the probes whose accept/reject split prices the
// derating.
const admissionOnlineGS = 2

// admissionCell renders one (count, load, mode) grid cell.
func admissionCell(count int, load float64, derated bool) string {
	mode := "baseline"
	if derated {
		mode = "derated"
	}
	return fmt.Sprintf("%dpn/%skbps/%s", count, strconv.FormatFloat(load, 'g', -1, 64), mode)
}

// ScatternetAdmissionStudy is experiment E10: what interference-aware
// admission buys and costs. Each workload cell — N co-located piconets,
// the paper's voice-style GS flows plus a best-effort floor, and a stream
// of online GS arrivals — runs twice: once with the baseline admission
// test (which reasons over an ideal channel and, per E9, promises bounds
// the colliding scatternet cannot keep) and once with every controller
// derated by s = 1 − P(collision) from the FH co-channel estimate
// (radio.ExpectedCollisionProb). Derating inflates reservations by 1/s
// and funds a retransmission budget in the exported error terms, so the
// violation fraction drops to ~0 — paid for in the accept-ratio column,
// where the derated controller turns away the online arrivals the
// baseline admits and then fails.
func ScatternetAdmissionStudy(cfg Config, counts []int, loads []float64) ([]ScatternetAdmissionRow, *stats.Table, error) {
	cfg = cfg.withDefaults()
	if len(counts) == 0 {
		counts = DefaultAdmissionCounts()
	}
	if len(loads) == 0 {
		loads = DefaultAdmissionLoads()
	}
	type point struct {
		count   int
		load    float64
		derated bool
	}
	var cells []string
	byCell := make(map[string]point)
	for _, load := range loads {
		for _, count := range counts {
			for _, derated := range []bool{false, true} {
				cell := admissionCell(count, load, derated)
				if _, dup := byCell[cell]; dup {
					continue
				}
				cells = append(cells, cell)
				byCell[cell] = point{count, load, derated}
			}
		}
	}
	grid := harness.Grid{Name: "scatternet-admission", Cells: cells, Build: func(cell string) scenario.Spec {
		p := byCell[cell]
		return scenario.Scatternet(scenario.ScatternetConfig{
			Piconets:          p.count,
			BEKbps:            p.load,
			Duration:          cfg.Duration,
			OnlineGS:          admissionOnlineGS,
			InterferenceAware: p.derated,
		})
	}}
	results, err := cfg.execute(grid.Sweep(cfg.sweep()).Runs)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: scatternet admission: %w", err)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E10: interference-aware admission — violations bought back with refusals (%v per run%s; 1/79 FH collision model, ARQ on)",
			cfg.Duration, cfg.repNote()),
		"piconets", "be_kbps", "admission", "gs_flows", "violations", "viol_fraction",
		"requests", "accepted", "accept_ratio", "worst_gs_delay", "GS_kbps")
	order, cellRuns := harness.Cells(results)
	var rows []ScatternetAdmissionRow
	for _, cell := range order {
		rs := cellRuns[cell]
		p := byCell[cell]
		row := ScatternetAdmissionRow{
			Piconets:   p.count,
			BEKbps:     p.load,
			Derated:    p.derated,
			Violations: cellViolations(rs),
			GS:         classKbps(rs, piconet.Guaranteed),
			BE:         classKbps(rs, piconet.BestEffort),
			Reps:       len(rs),
		}
		fracSum, delaySum := 0.0, time.Duration(0)
		for _, r := range rs {
			res := r.Result
			fracSum += res.ViolationFraction()
			var worst time.Duration
			for _, f := range res.Flows {
				if f.Class != piconet.Guaranteed {
					continue
				}
				if f.DelayMax > worst {
					worst = f.DelayMax
				}
			}
			delaySum += worst
			for _, a := range res.Admissions {
				if a.Op != scenario.OpAddGS {
					continue
				}
				row.Requests++
				if a.Accepted {
					row.Accepted++
				} else {
					row.Rejected++
				}
			}
		}
		row.ViolationFraction = fracSum / float64(len(rs))
		row.MeanDelayMax = delaySum / time.Duration(len(rs))
		if row.Requests > 0 {
			row.AcceptRatio = float64(row.Accepted) / float64(row.Requests)
		}
		for _, f := range rs[0].Result.Flows {
			if f.Class == piconet.Guaranteed {
				row.GSFlows++
			}
		}
		rows = append(rows, row)
		mode := "baseline"
		if row.Derated {
			mode = "derated"
		}
		tbl.AddRow(row.Piconets, stats.FormatKbps(row.BEKbps), mode,
			row.GSFlows, row.Violations, fmt.Sprintf("%.3f", row.ViolationFraction),
			row.Requests, row.Accepted, fmt.Sprintf("%.3f", row.AcceptRatio),
			row.MeanDelayMax.Round(time.Microsecond), kbpsCell(row.GS))
	}
	return rows, tbl, nil
}
