package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"bluegs/internal/harness"
)

// TestScatternetAdmissionDeratingKeepsBounds is the E10 acceptance
// criterion: at every piconet count the derated rows keep the paper's
// guarantee (zero bound violations) while the baseline rows — where E9
// shows erosion — violate; and the price is visible in the admission
// columns, the derated controller accepting no more (and beyond one
// piconet strictly fewer) of the same online arrivals.
func TestScatternetAdmissionDeratingKeepsBounds(t *testing.T) {
	// The same 30 s horizon as the E9 monotonicity test: violations are
	// per-flow max-delay events, so short horizons are too noisy.
	cfg := Config{Duration: 30 * time.Second, Seed: 1}
	counts := []int{1, 2, 4, 8}
	rows, _, err := ScatternetAdmissionStudy(cfg, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(counts) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(counts))
	}
	baseline := map[int]ScatternetAdmissionRow{}
	derated := map[int]ScatternetAdmissionRow{}
	for _, row := range rows {
		if row.Derated {
			derated[row.Piconets] = row
		} else {
			baseline[row.Piconets] = row
		}
	}
	erosion := false
	for _, n := range counts {
		b, d := baseline[n], derated[n]
		if d.Violations != 0 || d.ViolationFraction != 0 {
			t.Fatalf("%d piconets: derated admission left %d violations (fraction %.3f)",
				n, d.Violations, d.ViolationFraction)
		}
		if b.Requests == 0 || d.Requests != b.Requests {
			t.Fatalf("%d piconets: request streams diverged (%d vs %d) — the timeline is spec data",
				n, b.Requests, d.Requests)
		}
		if d.Accepted > b.Accepted {
			t.Fatalf("%d piconets: derated admission accepted more (%d) than baseline (%d)",
				n, d.Accepted, b.Accepted)
		}
		if b.Violations > 0 {
			erosion = true
			if d.Accepted >= b.Accepted {
				t.Fatalf("%d piconets: baseline violates yet derating refused nothing (%d vs %d accepted)",
					n, d.Accepted, b.Accepted)
			}
		}
	}
	if !erosion {
		t.Fatal("no baseline cell eroded; the study is not exercising the failure E10 exists to fix")
	}
}

// TestScatternetAdmissionDeterministicAcrossWorkers: the E10 sweep —
// derated and baseline runs fanned out across the pool — must render
// bit-identical tables at every worker count.
func TestScatternetAdmissionDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		rows  []ScatternetAdmissionRow
		table string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 2, Workers: workers}
		rows, tbl, err := ScatternetAdmissionStudy(cfg, []int{1, 2}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("workers=%d: table diverged\n--- got ---\n%s--- want ---\n%s",
				workers, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("workers=%d: rows diverged", workers)
		}
	}
}

// TestScatternetAdmissionWarmCacheReplay: the E10 sweep replayed from a
// warm run cache reproduces the cold table — including the online
// admission columns, which come from replayed per-run admission logs —
// without executing a single simulator.
func TestScatternetAdmissionWarmCacheReplay(t *testing.T) {
	cache, err := harness.NewRunCache(harness.CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 2, Cache: cache}
		_, tbl, err := ScatternetAdmissionStudy(cfg, []int{1, 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	cold := run()
	stats := cache.Stats()
	if stats.Hits != 0 {
		t.Fatalf("cold pass hit the cache %d times", stats.Hits)
	}
	warm := run()
	if warm != cold {
		t.Fatalf("warm table differs\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	after := cache.Stats()
	if after.Misses != stats.Misses {
		t.Fatalf("warm pass executed %d simulations", after.Misses-stats.Misses)
	}
}
