package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/scenario"
)

// TestScatternetStudyMonotonic is the E9 acceptance criterion: under the
// interference model the scatternet-wide violation fraction must be zero
// at one piconet (the paper's guarantee) and never decrease as piconets
// are added.
func TestScatternetStudyMonotonic(t *testing.T) {
	// A 30 s horizon with widely spaced counts: per-flow max-delay
	// violations are binary, so short horizons are too noisy for a
	// strict monotonicity assertion.
	cfg := Config{Duration: 30 * time.Second, Seed: 1}
	counts := []int{1, 2, 4, 8}
	rows, _, err := ScatternetStudy(cfg, counts, []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(counts) {
		t.Fatalf("%d rows, want %d", len(rows), len(counts))
	}
	if rows[0].ViolationFraction != 0 || rows[0].Violations != 0 {
		t.Fatalf("one piconet must keep the paper's guarantee: %+v", rows[0])
	}
	prev := -1.0
	for _, row := range rows {
		if row.ViolationFraction < prev {
			t.Fatalf("violation fraction not monotone: %d piconets -> %.3f after %.3f",
				row.Piconets, row.ViolationFraction, prev)
		}
		prev = row.ViolationFraction
		if row.GSFlows != row.Piconets*2 {
			t.Fatalf("%d piconets: %d GS flows, want %d", row.Piconets, row.GSFlows, row.Piconets*2)
		}
		if len(row.PerPiconet) != row.Piconets {
			t.Fatalf("%d piconets: %d compliance cells", row.Piconets, len(row.PerPiconet))
		}
	}
	last := rows[len(rows)-1]
	if last.ViolationFraction == 0 {
		t.Fatalf("%d co-channel piconets saw no erosion at all", last.Piconets)
	}
}

// TestScatternetDeterministicAcrossWorkers: the E9 sweep — N piconets
// interleaving on one kernel per run, runs fanned out across the pool —
// must render bit-identical tables at every worker count.
func TestScatternetDeterministicAcrossWorkers(t *testing.T) {
	type snapshot struct {
		rows  []ScatternetRow
		table string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 2, Workers: workers}
		rows, tbl, err := ScatternetStudy(cfg, []int{1, 3}, []float64{60})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("workers=%d: table diverged\n--- got ---\n%s--- want ---\n%s",
				workers, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("workers=%d: rows diverged", workers)
		}
	}
}

// TestScatternetWarmCacheReplay: a scatternet sweep replayed from a warm
// run cache must reproduce the cold pass exactly — the rendered study
// table and, on a timeline-bearing scatternet run, the per-piconet
// admission logs — without executing a single simulator.
func TestScatternetWarmCacheReplay(t *testing.T) {
	cache, err := harness.NewRunCache(harness.CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	// The E9 sweep, cold then warm.
	run := func() string {
		cfg := Config{Duration: 3 * time.Second, Seed: 1, Replications: 2, Cache: cache}
		_, tbl, err := ScatternetStudy(cfg, []int{1, 2}, []float64{60})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	cold := run()
	stats := cache.Stats()
	if stats.Hits != 0 {
		t.Fatalf("cold pass hit the cache %d times", stats.Hits)
	}
	warm := run()
	if warm != cold {
		t.Fatalf("warm table differs\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	after := cache.Stats()
	if after.Misses != stats.Misses {
		t.Fatalf("warm pass executed %d simulations", after.Misses-stats.Misses)
	}

	// A timeline-bearing scatternet spec: per-piconet admission logs must
	// survive the gob round trip bit for bit.
	spec := scenario.Scatternet(scenario.ScatternetConfig{Piconets: 2, Duration: 3 * time.Second})
	spec.Timeline = []scenario.TimelineEvent{
		scenario.AddGSAt(time.Second, scenario.GSFlow{
			ID: 50, Slave: 5, Dir: 2, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
		}).For("pn2"),
		scenario.RemoveAt(2*time.Second, 50).For("pn2"),
	}
	grid := harness.Grid{Name: "tl", Cells: []string{"tl"},
		Build: func(string) scenario.Spec { return spec }}
	sw := grid.Sweep(harness.SweepConfig{Duration: spec.Duration, Seed: 1, Replications: 1})
	coldRes, err := harness.Execute(sw.Runs, harness.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := harness.Execute(sw.Runs, harness.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !warmRes[0].CacheHit {
		t.Fatal("second pass did not replay from the cache")
	}
	a, b := coldRes[0].Result, warmRes[0].Result
	if len(a.Admissions) == 0 {
		t.Fatal("timeline produced no admission records")
	}
	if !reflect.DeepEqual(a.Admissions, b.Admissions) {
		t.Fatalf("cached admission log drifted:\ncold: %+v\nwarm: %+v", a.Admissions, b.Admissions)
	}
	if len(a.Piconets) != len(b.Piconets) {
		t.Fatalf("piconet results drifted: %d vs %d", len(a.Piconets), len(b.Piconets))
	}
	for i := range a.Piconets {
		if !reflect.DeepEqual(a.Piconets[i].Admissions, b.Piconets[i].Admissions) {
			t.Fatalf("piconet %q admission log drifted", a.Piconets[i].Name)
		}
		if a.Piconets[i].Slots != b.Piconets[i].Slots {
			t.Fatalf("piconet %q slot account drifted", a.Piconets[i].Name)
		}
	}
	if a.Report().String() != b.Report().String() {
		t.Fatal("cached report drifted")
	}
}

// TestChurnPollersKeepGuarantee: the paper's admission guarantee may not
// depend on the competing best-effort discipline — every poller's churn
// run must stay violation-free with a full accept log.
func TestChurnPollersKeepGuarantee(t *testing.T) {
	cfg := Config{Duration: 8 * time.Second, Seed: 1}
	rows, _, err := ChurnPollers(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(scenario.AllBEPollers) {
		t.Fatalf("%d rows, want %d", len(rows), len(scenario.AllBEPollers))
	}
	for _, row := range rows {
		if row.Violations != 0 {
			t.Fatalf("%s: %d bound violations under churn", row.Poller, row.Violations)
		}
		if row.Requests == 0 {
			t.Fatalf("%s: churn produced no admission requests", row.Poller)
		}
	}
}
