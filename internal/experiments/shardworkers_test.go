package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestScatternetStudyDeterministicAcrossKernelWorkers is the E9 half of
// the sharded-kernel acceptance spec: the scatternet erosion table —
// whose multi-piconet cells shard one kernel per piconet — must be
// byte-identical at KernelWorkers ∈ {1, 2, GOMAXPROCS}.
func TestScatternetStudyDeterministicAcrossKernelWorkers(t *testing.T) {
	counts := []int{1, 2, 4}
	loads := []float64{60}
	type snapshot struct {
		rows  []ScatternetRow
		table string
	}
	var base *snapshot
	for _, kw := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		cfg := Config{Duration: 2 * time.Second, Seed: 1, KernelWorkers: kw}
		rows, tbl, err := ScatternetStudy(cfg, counts, loads)
		if err != nil {
			t.Fatalf("kernel workers=%d: %v", kw, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("kernel workers=%d: E9 table diverged\n--- got ---\n%s--- want ---\n%s",
				kw, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("kernel workers=%d: E9 rows diverged\n got %+v\nwant %+v", kw, got.rows, base.rows)
		}
	}
}

// TestBridgeStudyDeterministicAcrossKernelWorkers is the E12 half:
// bridge-chained piconets co-shard into one group (the legacy kernel
// path), so the knob must be a byte-exact no-op on the bridge table too.
func TestBridgeStudyDeterministicAcrossKernelWorkers(t *testing.T) {
	hops := []int{2}
	duties := []float64{0.5}
	loads := []int{1}
	type snapshot struct {
		rows  []BridgeRow
		table string
	}
	var base *snapshot
	for _, kw := range []int{1, runtime.GOMAXPROCS(0)} {
		cfg := Config{Duration: 2 * time.Second, Seed: 1, KernelWorkers: kw}
		rows, tbl, err := BridgeStudy(cfg, hops, duties, loads)
		if err != nil {
			t.Fatalf("kernel workers=%d: %v", kw, err)
		}
		got := &snapshot{rows: rows, table: tbl.String()}
		if base == nil {
			base = got
			continue
		}
		if got.table != base.table {
			t.Fatalf("kernel workers=%d: E12 table diverged\n--- got ---\n%s--- want ---\n%s",
				kw, got.table, base.table)
		}
		if !reflect.DeepEqual(got.rows, base.rows) {
			t.Fatalf("kernel workers=%d: E12 rows diverged\n got %+v\nwant %+v", kw, got.rows, base.rows)
		}
	}
}
