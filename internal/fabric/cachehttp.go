package fabric

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
)

// HTTPBackend is a harness.CacheBackend speaking the coordinator's
// /cache/entry endpoint: workers without a shared filesystem plug it
// into a RunCache and get the same hit/store semantics as a shared
// -cache-dir. Entries travel as their on-disk bytes (gob + CRC footer);
// the RunCache on either end verifies the footer, so a truncated
// transfer degrades to a miss exactly like a torn disk file.
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend points a backend at a coordinator ("host:port" or a
// full http:// URL).
func NewHTTPBackend(base string) *HTTPBackend {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTPBackend{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{},
	}
}

func (b *HTTPBackend) url(key string) string {
	return b.base + "/cache/entry?key=" + key
}

// Get fetches an entry; a 404 reports fs.ErrNotExist like a missing file.
func (b *HTTPBackend) Get(key string) ([]byte, error) {
	resp, err := b.client.Get(b.url(key))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, fmt.Errorf("fabric: cache entry %s: %w", key, fs.ErrNotExist)
	default:
		return nil, fmt.Errorf("fabric: cache GET %s: %s", key, resp.Status)
	}
}

// Put uploads an entry.
func (b *HTTPBackend) Put(key string, entry []byte) error {
	req, err := http.NewRequest(http.MethodPut, b.url(key), bytes.NewReader(entry))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("fabric: cache PUT %s: %s", key, resp.Status)
	}
	return nil
}

// Has asks with a HEAD request.
func (b *HTTPBackend) Has(key string) (bool, error) {
	resp, err := b.client.Head(b.url(key))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("fabric: cache HEAD %s: %s", key, resp.Status)
	}
}

// Delete removes an entry; missing entries are not an error.
func (b *HTTPBackend) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, b.url(key), nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("fabric: cache DELETE %s: %s", key, resp.Status)
	}
	return nil
}

// validKey gates /cache/entry: content addresses are exactly 64 hex
// digits, which (with the fixed ".run.gob" suffix the DirBackend
// appends) also keeps the endpoint path-traversal-safe.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleCacheEntry serves the coordinator's RunCache entry-at-a-time.
func (c *Coordinator) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if !validKey(key) {
		http.Error(w, "fabric: malformed cache key", http.StatusBadRequest)
		return
	}
	cache := c.cfg.Cache
	switch r.Method {
	case http.MethodGet:
		data, err := cache.GetEntry(key)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodHead:
		ok, err := cache.HasEntry(key)
		if err != nil || !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodPut:
		entry, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := cache.PutEntry(key, entry); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := cache.DeleteEntry(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "fabric: unsupported method", http.StatusMethodNotAllowed)
	}
}
