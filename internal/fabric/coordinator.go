package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/scenario"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// Addr is the listen address (default "127.0.0.1:0" — loopback on a
	// free port; use ":port" to accept workers from other machines).
	Addr string
	// Grid names the sweep in /info and the journal meta.
	Grid string
	// Cache, when set, resolves runs the coordinator already holds
	// without leasing them, stores every worker result, and supplies the
	// salt workers derive keys under. Without a cache the salt is
	// harness.DefaultCacheSalt.
	Cache *harness.RunCache
	// ServeCache additionally serves the cache entry-at-a-time on
	// /cache/entry, so workers without a shared filesystem can run with
	// an HTTPBackend-backed cache.
	ServeCache bool
	// JournalPath, when set, streams every completed run into an
	// append-only CRC-framed journal at this path. Meta must describe
	// the sweep (it is compared verbatim on resume).
	JournalPath string
	Meta        JournalMeta
	// Resume re-opens an existing journal instead of truncating it:
	// every intact record resolves its run without leasing, a torn tail
	// is dropped, and a meta mismatch is an error. A missing file falls
	// back to a fresh journal, so -resume is safe on first start.
	Resume bool
	// LeaseTTL is the heartbeat deadline before a lease's unresolved
	// runs are re-queued (default 10s).
	LeaseTTL time.Duration
	// LeaseRuns caps the runs handed out per lease (default 4). Small
	// leases spread a grid across more workers; large ones amortize
	// round trips.
	LeaseRuns int
	// Logf, when set, receives operational events (worker joins, lease
	// expiries, resume counts).
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.LeaseRuns <= 0 {
		c.LeaseRuns = 4
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator serves a sweep to workers over HTTP and implements
// harness.Executor, so experiment code runs distributed unchanged. One
// coordinator serves many sweeps in sequence (a report is a dozen
// Execute calls); workers poll across sweep boundaries.
type Coordinator struct {
	cfg     CoordinatorConfig
	salt    string
	ln      net.Listener
	srv     *http.Server
	journal *Journal

	mu        sync.Mutex
	journaled map[string]*JournalRecord // resumed records by key
	written   map[string]bool           // keys already appended this life
	sweep     *sweepState
	leaseSeq  uint64
	stats     CoordinatorStats
	workers   map[string]bool
}

// sweepState is one Execute call's book-keeping.
type sweepState struct {
	runs     []harness.Run
	specJSON [][]byte
	keys     []string
	results  []harness.RunResult
	resolved []bool
	byKey    map[string][]int
	ready    []int // FIFO of indexes available for leasing
	leases   map[string]*activeLease
	pending  int
	doneRuns int
	opts     harness.Options
	done     chan struct{}
}

type activeLease struct {
	id      string
	worker  string
	runs    []int
	expires time.Time
}

// NewCoordinator starts listening and serving immediately; the sweep
// content arrives with the first Execute call (workers polling before
// that see StatusDone).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		salt:      harness.DefaultCacheSalt,
		journaled: make(map[string]*JournalRecord),
		written:   make(map[string]bool),
		workers:   make(map[string]bool),
	}
	if cfg.Cache != nil {
		c.salt = cfg.Cache.Salt()
	}
	if cfg.JournalPath != "" {
		meta := cfg.Meta
		if meta.Salt == "" {
			meta.Salt = c.salt
		}
		if meta.Salt != c.salt {
			return nil, fmt.Errorf("fabric: journal meta salt %q differs from cache salt %q", meta.Salt, c.salt)
		}
		if meta.Grid == "" {
			meta.Grid = cfg.Grid
		}
		j, recs, err := openOrCreateJournal(cfg.JournalPath, meta, cfg.Resume)
		if err != nil {
			return nil, err
		}
		c.journal = j
		for i := range recs {
			c.journaled[recs[i].Key] = &recs[i]
			c.written[recs[i].Key] = true
		}
		if len(recs) > 0 {
			cfg.Logf("fabric: resumed %d journaled runs from %s", len(recs), cfg.JournalPath)
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if c.journal != nil {
			c.journal.Close()
		}
		return nil, fmt.Errorf("fabric: listen %s: %w", cfg.Addr, err)
	}
	c.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/info", c.handleInfo)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/complete", c.handleComplete)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	if cfg.ServeCache && cfg.Cache != nil {
		mux.HandleFunc("/cache/entry", c.handleCacheEntry)
	}
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	return c, nil
}

// openOrCreateJournal resolves the resume semantics: resume an existing
// file (meta must match), otherwise start fresh — so -resume is safe on
// a first start too.
func openOrCreateJournal(path string, meta JournalMeta, resume bool) (*Journal, []JournalRecord, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return OpenJournal(path, meta)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("fabric: open journal: %w", err)
		}
	}
	j, err := CreateJournal(path, meta)
	return j, nil, err
}

// Addr returns the coordinator's listen address ("host:port").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Salt returns the cache salt workers must derive keys under.
func (c *Coordinator) Salt() string { return c.salt }

// Stats returns the accumulated resolution counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close stops serving and closes the journal. Safe after (not during) a
// sweep: in-flight Execute calls should be interrupted first. In-flight
// requests get a short drain — severing a worker's /complete response
// after its results were folded in would make the worker retry and log a
// spurious failure.
func (c *Coordinator) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	err := c.srv.Shutdown(ctx)
	if err != nil {
		err = c.srv.Close()
	}
	if c.journal != nil {
		if jerr := c.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// Execute implements harness.Executor: resolve what the journal and
// cache already hold, lease the remainder to workers, and return results
// in run-index order — the same contract, and therefore the same bytes,
// as the in-process harness.Execute.
func (c *Coordinator) Execute(runs []harness.Run, opts harness.Options) ([]harness.RunResult, error) {
	results := make([]harness.RunResult, len(runs))
	if len(runs) == 0 {
		return results, nil
	}
	st := &sweepState{
		runs:     runs,
		specJSON: make([][]byte, len(runs)),
		keys:     make([]string, len(runs)),
		results:  results,
		resolved: make([]bool, len(runs)),
		byKey:    make(map[string][]int),
		leases:   make(map[string]*activeLease),
		opts:     opts,
		done:     make(chan struct{}),
	}

	// Hooked runs carry live tracers or radio instances — they cannot be
	// serialized into a lease, so they execute in-process, exactly as a
	// local sweep would run them.
	var hooked []int
	for i, run := range runs {
		if !run.Hooks.Zero() {
			hooked = append(hooked, i)
			continue
		}
		data, err := scenario.Marshal(run.Spec)
		if err != nil {
			return results, fmt.Errorf("fabric: marshal run %d (cell %q rep %d): %w", run.Index, run.Cell, run.Rep, err)
		}
		st.specJSON[i] = data
		st.keys[i] = harness.CacheKey(c.salt, run.Spec)
		st.byKey[st.keys[i]] = append(st.byKey[st.keys[i]], i)
	}
	if len(hooked) > 0 {
		local := make([]harness.Run, len(hooked))
		for k, i := range hooked {
			local[k] = runs[i]
		}
		localOpts := opts
		localOpts.OnProgress = nil // folded into the sweep-wide count below
		localResults, _ := harness.Execute(local, localOpts)
		for k, i := range hooked {
			results[i] = localResults[k]
		}
	}

	// Resolve the rest: journal first, then the coordinator's own cache;
	// what's left is leased out.
	c.mu.Lock()
	for i := range runs {
		if runs[i].Hooks.Zero() {
			c.prefillLocked(st, i)
		} else {
			st.resolved[i] = true
			st.doneRuns++
			c.stats.Runs++
			if opts.OnProgress != nil {
				opts.OnProgress(st.doneRuns, len(st.runs), results[i])
			}
		}
	}
	interrupted := false
	pending := st.pending
	if pending == 0 {
		close(st.done)
	} else {
		c.sweep = st
	}
	c.mu.Unlock()

	if pending > 0 {
		stop := make(chan struct{})
		go c.expiryLoop(stop)
		select {
		case <-st.done:
		case <-opts.Interrupt:
			interrupted = true
		}
		close(stop)
		c.mu.Lock()
		c.sweep = nil
		if interrupted {
			for i := range runs {
				if runs[i].Hooks.Zero() && !st.resolved[i] {
					results[i] = harness.RunResult{Run: runs[i], Err: harness.ErrInterrupted}
				}
			}
		}
		c.mu.Unlock()
	}

	if interrupted {
		return results, harness.ErrInterrupted
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("harness: run %d (cell %q rep %d): %w",
				runs[i].Index, runs[i].Cell, runs[i].Rep, results[i].Err)
		}
	}
	return results, nil
}

// ExecuteAdaptive implements harness.Executor by running the harness's
// own adaptive scheduling loop over the coordinator's lease-based
// Execute: batch composition and per-cell replication counts are the
// same code path as in-process, so adaptive tables stay byte-identical
// at any worker count. Each round's batch for an unconverged cell is
// ordinary leasable work — that is the work-stealing rule for hot cells.
func (c *Coordinator) ExecuteAdaptive(g harness.Grid, cfg harness.SweepConfig, opts harness.AdaptiveOptions) ([]harness.CellOutcome, error) {
	return harness.ExecuteAdaptiveWith(c.Execute, g, cfg, opts)
}

// prefillLocked resolves run i from the journal or the cache when
// possible, otherwise queues it for leasing.
func (c *Coordinator) prefillLocked(st *sweepState, i int) {
	key := st.keys[i]
	if rec, ok := c.journaled[key]; ok {
		rr := harness.RunResult{Run: st.runs[i], CacheHit: true}
		if rec.Err != "" {
			rr.Err = errors.New(rec.Err)
		} else {
			res, err := harness.DecodeResultEntry(key, rec.Entry, st.runs[i].Spec)
			if err != nil {
				// A journaled record that fails its footer re-check
				// cannot be replayed; fall through to the cache or a
				// fresh lease.
				delete(c.journaled, key)
				c.cfg.Logf("fabric: journaled entry for %s corrupt, re-running: %v", key[:12], err)
				c.prefillLocked(st, i)
				return
			}
			rr.Result = res
			if c.cfg.Cache != nil {
				// Warm the cache from the journal so later sweeps (and
				// served workers) hit it directly.
				_ = c.cfg.Cache.Put(st.runs[i].Spec, res)
			}
		}
		c.resolveLocked(st, i, rr, &c.stats.FromJournal)
		return
	}
	if c.cfg.Cache != nil {
		if res, ok := c.cfg.Cache.Get(st.runs[i].Spec); ok {
			rr := harness.RunResult{Run: st.runs[i], Result: res, CacheHit: true}
			c.journalLocked(st, i, rr)
			c.resolveLocked(st, i, rr, &c.stats.FromCache)
			return
		}
	}
	st.pending++
	st.ready = append(st.ready, i)
}

// resolveLocked places run i's result, books it, and signals sweep
// completion.
func (c *Coordinator) resolveLocked(st *sweepState, i int, rr harness.RunResult, source *uint64) {
	st.results[i] = rr
	st.resolved[i] = true
	st.doneRuns++
	c.stats.Runs++
	*source++
	if st.opts.OnProgress != nil {
		st.opts.OnProgress(st.doneRuns, len(st.runs), rr)
	}
	if source == &c.stats.FromWorkers {
		st.pending--
		if st.pending == 0 {
			close(st.done)
		}
	}
}

// journalLocked appends run i's result to the journal (once per key).
func (c *Coordinator) journalLocked(st *sweepState, i int, rr harness.RunResult) {
	if c.journal == nil || c.written[st.keys[i]] {
		return
	}
	rec := JournalRecord{Cell: st.runs[i].Cell, Rep: st.runs[i].Rep, Key: st.keys[i]}
	if rr.Err != nil {
		rec.Err = rr.Err.Error()
	} else {
		entry, err := harness.EncodeResultEntry(st.keys[i], rr.Result)
		if err != nil {
			c.cfg.Logf("fabric: journal encode %s: %v", st.keys[i][:12], err)
			return
		}
		rec.Entry = entry
	}
	if err := c.journal.Append(rec); err != nil {
		c.cfg.Logf("fabric: journal append: %v", err)
		return
	}
	c.written[st.keys[i]] = true
}

// expiryLoop re-queues expired leases while a sweep is live.
func (c *Coordinator) expiryLoop(stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.LeaseTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.mu.Lock()
			if c.sweep != nil {
				c.expireLocked(c.sweep, time.Now())
			}
			c.mu.Unlock()
		case <-stop:
			return
		}
	}
}

// expireLocked returns every expired lease's unresolved runs to the
// ready queue.
func (c *Coordinator) expireLocked(st *sweepState, now time.Time) {
	for id, l := range st.leases {
		if now.Before(l.expires) {
			continue
		}
		requeued := 0
		for _, i := range l.runs {
			if !st.resolved[i] {
				st.ready = append(st.ready, i)
				requeued++
			}
		}
		delete(st.leases, id)
		c.stats.Expired++
		c.cfg.Logf("fabric: lease %s (worker %s) expired, re-queued %d runs", id, l.worker, requeued)
	}
}

// --- HTTP handlers ---

func (c *Coordinator) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, InfoResponse{
		Grid:     c.cfg.Grid,
		Salt:     c.salt,
		LeaseTTL: c.cfg.LeaseTTL,
		Cache:    c.cfg.ServeCache && c.cfg.Cache != nil,
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.workers[req.Worker] {
		c.workers[req.Worker] = true
		c.cfg.Logf("fabric: worker %s joined", req.Worker)
	}
	st := c.sweep
	if st == nil {
		writeJSON(w, LeaseResponse{Status: StatusDone})
		return
	}
	c.expireLocked(st, time.Now())
	// Pop up to LeaseRuns indexes, skipping any that a late complete
	// resolved while they sat in the queue.
	var idxs []int
	for len(idxs) < c.cfg.LeaseRuns && len(st.ready) > 0 {
		i := st.ready[0]
		st.ready = st.ready[1:]
		if !st.resolved[i] {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		writeJSON(w, LeaseResponse{Status: StatusWait})
		return
	}
	c.leaseSeq++
	l := &activeLease{
		id:      fmt.Sprintf("L%d", c.leaseSeq),
		worker:  req.Worker,
		runs:    idxs,
		expires: time.Now().Add(c.cfg.LeaseTTL),
	}
	st.leases[l.id] = l
	c.stats.Leases++
	lease := &Lease{ID: l.id, TTL: c.cfg.LeaseTTL}
	for _, i := range idxs {
		lease.Runs = append(lease.Runs, LeaseRun{
			Index: i,
			Cell:  st.runs[i].Cell,
			Rep:   st.runs[i].Rep,
			Spec:  json.RawMessage(st.specJSON[i]),
		})
	}
	writeJSON(w, LeaseResponse{Status: StatusLease, Lease: lease})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.sweep
	if st == nil {
		// A straggler finishing a lease from an already-completed sweep.
		c.stats.DupCompletes += uint64(len(req.Runs))
		writeJSON(w, map[string]bool{"ok": true})
		return
	}
	l, leased := st.leases[req.Lease]
	for _, cr := range req.Runs {
		idx := -1
		if leased && cr.Index >= 0 && cr.Index < len(st.runs) && !st.resolved[cr.Index] {
			if st.keys[cr.Index] != cr.Key {
				// The worker derived a different content address for the
				// spec we sent: codec or salt drift. Resolving the run
				// with a loud error fails the sweep immediately instead
				// of re-leasing forever.
				c.resolveLocked(st, cr.Index, harness.RunResult{
					Run: st.runs[cr.Index],
					Err: fmt.Errorf("fabric: worker %s derived key %s for run %d, coordinator expected %s (codec drift?)",
						req.Worker, cr.Key, cr.Index, st.keys[cr.Index]),
				}, &c.stats.FromWorkers)
				continue
			}
			idx = cr.Index
		} else {
			// Late complete (expired lease, or a run re-leased and
			// resolved elsewhere): accept by key if still pending.
			for _, i := range st.byKey[cr.Key] {
				if !st.resolved[i] {
					idx = i
					break
				}
			}
			if idx >= 0 {
				c.stats.LateCompletes++
			}
		}
		if idx < 0 {
			c.stats.DupCompletes++
			continue
		}
		rr := harness.RunResult{Run: st.runs[idx], CacheHit: cr.CacheHit}
		if cr.Err != "" {
			rr.Err = errors.New(cr.Err)
		} else {
			res, err := harness.DecodeResultEntry(cr.Key, cr.Entry, st.runs[idx].Spec)
			if err != nil {
				// A corrupt wire entry: leave the run pending for
				// re-leasing rather than poisoning the sweep.
				c.cfg.Logf("fabric: corrupt entry from worker %s for %s: %v", req.Worker, cr.Key[:12], err)
				st.ready = append(st.ready, idx)
				continue
			}
			rr.Result = res
			if c.cfg.Cache != nil {
				_ = c.cfg.Cache.Put(st.runs[idx].Spec, res)
			}
		}
		c.journalLocked(st, idx, rr)
		c.resolveLocked(st, idx, rr, &c.stats.FromWorkers)
	}
	if leased {
		delete(st.leases, l.id)
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.sweep; st != nil {
		if l, ok := st.leases[req.Lease]; ok {
			l.expires = time.Now().Add(c.cfg.LeaseTTL)
			writeJSON(w, map[string]bool{"ok": true})
			return
		}
	}
	c.cfg.Logf("fabric: heartbeat %s (worker %s): unknown lease", req.Lease, req.Worker)
	// Unknown lease: expired (its runs are re-queued) or from a finished
	// sweep. The worker should finish and /complete anyway — a late
	// complete still lands if the run is pending.
	w.WriteHeader(http.StatusGone)
	writeJSON(w, map[string]bool{"ok": false})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
