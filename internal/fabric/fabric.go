// Package fabric is the distributed sweep runner: a coordinator that
// partitions a harness sweep across worker processes (and machines) over
// a small HTTP protocol, backed by the content-addressed run cache and a
// resumable on-disk journal.
//
// # Roles
//
// The Coordinator implements harness.Executor, so any code written
// against the harness — including every experiment table — runs
// distributed without change: cmd/sweepd constructs a Coordinator and
// hands it to internal/experiments as the executor. The coordinator
// shards each sweep's runs into leases, serves them to workers, folds
// completed results back in run-index order, streams every completion
// into the journal, and answers cache lookups for workers that have no
// shared filesystem.
//
// A Worker (RunWorker, `sweepd -join addr` or any cmd embedding it) is a
// thin loop: lease runs, execute them through the ordinary local
// harness.Execute (with its worker pool and optional local or HTTP-backed
// RunCache), ship the results back, heartbeat while working.
//
// # Protocol
//
// JSON over HTTP, four endpoints plus the optional cache:
//
//	GET  /info       → InfoResponse: sweep grid name, cache salt, lease
//	                   TTL, whether /cache/entry is served.
//	POST /lease      → LeaseResponse: a Lease of up to LeaseRuns runs
//	                   (each carrying its scenario spec as v2 JSON), or
//	                   status "wait" (no work right now) / "done" (the
//	                   current sweep finished; more may follow).
//	POST /complete   → worker returns a lease's results: per run the
//	                   content-address key, the encoded result entry
//	                   (gob + CRC footer, the cache's own byte format)
//	                   or an error string.
//	POST /heartbeat  → extends a lease's expiry while the worker is
//	                   still computing it.
//	GET/HEAD/PUT/DELETE /cache/entry?key=… → the coordinator's RunCache
//	                   served entry-at-a-time (HTTPBackend is the client
//	                   side), so workers need no shared -cache-dir.
//
// # Determinism
//
// A sweep run through the fabric is byte-identical to the single-process
// run at any worker count, by construction:
//
//   - Seeds derive from (baseSeed, rep) via harness.ReplicationSeed
//     before specs are marshaled into leases; the scenario v2 codec
//     round-trips specs fingerprint-identically, so a worker's
//     harness.CacheKey(salt, spec) equals the coordinator's (and the
//     coordinator rejects a /complete whose key disagrees).
//   - Results are content-addressed: whichever worker computes a run,
//     the bytes folded into the table are the decoded entry for that
//     one key, placed at the run's grid index.
//   - Adaptive replication schedules through
//     harness.ExecuteAdaptiveWith — the same loop as in-process, with
//     the coordinator's lease-based Execute as the batch executor — so
//     batch composition and per-cell rep counts are pure functions of
//     results, never of worker count or scheduling.
//
// # Fault tolerance
//
// A worker that dies mid-lease simply stops heartbeating: the lease
// expires and its unresolved runs return to the ready queue for the next
// /lease (late /completes from a slow-but-alive worker still land if the
// run is still pending; anything else is a counted no-op — keys make
// duplicates harmless). A coordinator that dies is restarted with
// -resume: the journal replays every completed run (CRC-checked, torn
// tail truncated), and only the remainder is leased out again.
package fabric

import (
	"encoding/json"
	"fmt"
	"time"
)

// InfoResponse describes the coordinator to a joining worker.
type InfoResponse struct {
	// Grid names the sweep the coordinator is serving (informational).
	Grid string `json:"grid"`
	// Salt is the coordinator cache's code-version salt. Workers derive
	// every reported key under this salt, never their own.
	Salt string `json:"salt"`
	// LeaseTTL is the heartbeat deadline: a lease not heartbeated for
	// this long is re-issued.
	LeaseTTL time.Duration `json:"lease_ttl"`
	// Cache reports that the coordinator serves /cache/entry, so a
	// worker without a shared -cache-dir can use an HTTPBackend.
	Cache bool `json:"cache"`
}

// LeaseRequest identifies the asking worker.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease statuses.
const (
	// StatusLease: the response carries work.
	StatusLease = "lease"
	// StatusWait: no work right now (all runs leased out, or between
	// sweeps) — poll again shortly.
	StatusWait = "wait"
	// StatusDone: no sweep is active. More sweeps may follow (a report
	// renders many tables); workers poll on at a slower cadence and exit
	// when the coordinator goes away.
	StatusDone = "done"
)

// LeaseResponse answers /lease.
type LeaseResponse struct {
	Status string `json:"status"`
	Lease  *Lease `json:"lease,omitempty"`
}

// Lease is a batch of runs assigned to one worker until TTL expires
// (heartbeats extend it).
type Lease struct {
	ID   string        `json:"id"`
	TTL  time.Duration `json:"ttl"`
	Runs []LeaseRun    `json:"runs"`
}

// LeaseRun is one run of a lease: its position in the coordinator's
// current sweep and the complete scenario, marshaled with the v2 codec
// (fingerprint-preserving, so the worker computes the identical cache
// key — no grid registry needed on the worker side).
type LeaseRun struct {
	Index int             `json:"index"`
	Cell  string          `json:"cell"`
	Rep   int             `json:"rep"`
	Spec  json.RawMessage `json:"spec"`
}

// CompleteRequest returns a lease's results.
type CompleteRequest struct {
	Lease  string         `json:"lease"`
	Worker string         `json:"worker"`
	Runs   []CompletedRun `json:"runs"`
}

// CompletedRun is one finished run: the content-address key the worker
// derived and either the encoded result entry (harness.EncodeResultEntry
// bytes: gob payload + CRC footer — the cache's own on-disk format, so
// the coordinator verifies and stores it unchanged) or the run's error.
type CompletedRun struct {
	Index int    `json:"index"`
	Cell  string `json:"cell"`
	Rep   int    `json:"rep"`
	Key   string `json:"key"`
	// Entry is empty when Err is set. encoding/json transports it as
	// base64.
	Entry []byte `json:"entry,omitempty"`
	Err   string `json:"err,omitempty"`
	// CacheHit reports the worker served the run from its own cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
}

// CoordinatorStats counts how the coordinator resolved runs, accumulated
// across every sweep it served. The String rendering is the one line
// cmd/sweepd prints on exit (and the CI fabric smoke greps).
type CoordinatorStats struct {
	// Runs counts every run resolved.
	Runs uint64
	// FromJournal counts runs replayed from the resumed journal,
	// FromCache those served by the coordinator's own cache, and
	// FromWorkers those computed by (or served from the local cache of)
	// a worker.
	FromJournal uint64
	FromCache   uint64
	FromWorkers uint64
	// Leases counts leases issued; Expired those that timed out and were
	// re-queued; LateCompletes results accepted after their lease
	// expired; DupCompletes results for runs already resolved (a clean
	// no-op).
	Leases        uint64
	Expired       uint64
	LateCompletes uint64
	DupCompletes  uint64
}

// String renders the counters: "N runs: J from journal, C from cache, W
// from workers (L leases, E expired, D duplicate completes)".
func (s CoordinatorStats) String() string {
	out := fmt.Sprintf("%d runs: %d from journal, %d from cache, %d from workers (%d leases",
		s.Runs, s.FromJournal, s.FromCache, s.FromWorkers, s.Leases)
	if s.Expired > 0 {
		out += fmt.Sprintf(", %d expired", s.Expired)
	}
	if s.LateCompletes > 0 {
		out += fmt.Sprintf(", %d late completes", s.LateCompletes)
	}
	if s.DupCompletes > 0 {
		out += fmt.Sprintf(", %d duplicate completes", s.DupCompletes)
	}
	return out + ")"
}

// WorkerStats counts a worker's contribution.
type WorkerStats struct {
	// Leases counts leases executed, Runs the runs completed under them,
	// CacheHits the subset served from the worker's cache.
	Leases    uint64
	Runs      uint64
	CacheHits uint64
}

// String renders the counters as "N runs under L leases (H cache hits)".
func (s WorkerStats) String() string {
	return fmt.Sprintf("%d runs under %d leases (%d cache hits)", s.Runs, s.Leases, s.CacheHits)
}
