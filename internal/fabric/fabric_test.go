package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bluegs/internal/experiments"
	"bluegs/internal/harness"
	"bluegs/internal/stats"
)

// testConfig is a small but non-trivial Fig. 5 slice: 3 cells × 2 reps.
func testConfig() (experiments.Config, []time.Duration) {
	cfg := experiments.Config{
		Duration:     2 * time.Second,
		Seed:         1,
		Replications: 2,
	}
	targets := []time.Duration{30 * time.Millisecond, 38 * time.Millisecond, 46 * time.Millisecond}
	return cfg, targets
}

// tableText renders a table to the exact bytes the cmd tools print.
func tableText(t *testing.T, tbl *stats.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.WriteText(&buf); err != nil {
		t.Fatalf("render table: %v", err)
	}
	return buf.String()
}

// startWorkers launches n workers against a coordinator and returns a
// stop function that waits for them to exit.
func startWorkers(t *testing.T, addr string, n int, mutate func(i int, cfg *WorkerConfig)) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{
			Coordinator: addr,
			Name:        "w" + string(rune('1'+i)),
			Workers:     2,
			Poll:        20 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := RunWorker(ctx, cfg); err != nil {
				t.Errorf("worker %s: %v", cfg.Name, err)
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestByteIdentityFixed is the acceptance criterion: a fixed-replication
// grid run by a coordinator with two workers renders the byte-identical
// Figure 5 table to the single-process run.
func TestByteIdentityFixed(t *testing.T) {
	cfg, targets := testConfig()
	_, localTbl, err := experiments.Figure5(cfg, targets)
	if err != nil {
		t.Fatalf("local figure5: %v", err)
	}

	coord, err := NewCoordinator(CoordinatorConfig{Grid: "fig5", LeaseRuns: 2})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	stop := startWorkers(t, coord.Addr(), 2, nil)
	defer stop()

	dcfg := cfg
	dcfg.Executor = coord
	_, distTbl, err := experiments.Figure5(dcfg, targets)
	if err != nil {
		t.Fatalf("distributed figure5: %v", err)
	}
	if got, want := tableText(t, distTbl), tableText(t, localTbl); got != want {
		t.Errorf("distributed table differs from local:\n--- local ---\n%s--- distributed ---\n%s", want, got)
	}
	st := coord.Stats()
	if want := uint64(len(targets) * cfg.Replications); st.Runs != want {
		t.Errorf("coordinator resolved %d runs, want %d", st.Runs, want)
	}
	if st.FromWorkers != st.Runs {
		t.Errorf("expected all %d runs from workers, got %d", st.Runs, st.FromWorkers)
	}
}

// TestByteIdentityAdaptive runs the same comparison under the CI
// stopping rule: per-cell adaptive replication counts (the "reps" table
// column) must match the in-process schedule exactly.
func TestByteIdentityAdaptive(t *testing.T) {
	cfg, targets := testConfig()
	cfg.Replications = 0
	cfg.CITarget = 0.2
	cfg.MaxReps = 6
	_, localTbl, err := experiments.Figure5(cfg, targets)
	if err != nil {
		t.Fatalf("local adaptive figure5: %v", err)
	}

	coord, err := NewCoordinator(CoordinatorConfig{Grid: "fig5", LeaseRuns: 2})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	stop := startWorkers(t, coord.Addr(), 2, nil)
	defer stop()

	dcfg := cfg
	dcfg.Executor = coord
	_, distTbl, err := experiments.Figure5(dcfg, targets)
	if err != nil {
		t.Fatalf("distributed adaptive figure5: %v", err)
	}
	if got, want := tableText(t, distTbl), tableText(t, localTbl); got != want {
		t.Errorf("adaptive distributed table differs from local:\n--- local ---\n%s--- distributed ---\n%s", want, got)
	}
}

// TestWorkerCrashRecovery kills a worker mid-lease (a lease is taken and
// never completed or heartbeated): after the TTL the coordinator
// re-issues the runs and the sweep finishes byte-identical, with no run
// lost or double-counted.
func TestWorkerCrashRecovery(t *testing.T) {
	cfg, targets := testConfig()
	_, localTbl, err := experiments.Figure5(cfg, targets)
	if err != nil {
		t.Fatalf("local figure5: %v", err)
	}

	coord, err := NewCoordinator(CoordinatorConfig{
		Grid:      "fig5",
		LeaseRuns: 2,
		LeaseTTL:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	// The "crashed" worker: grab a lease over the raw protocol as soon
	// as the sweep starts, then never heartbeat or complete it.
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Post("http://"+coord.Addr()+"/lease", "application/json",
				strings.NewReader(`{"worker":"crasher"}`))
			if err == nil {
				var lr LeaseResponse
				derr := json.NewDecoder(resp.Body).Decode(&lr)
				resp.Body.Close()
				if derr == nil && lr.Status == StatusLease {
					return // lease acquired and abandoned
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	stop := startWorkers(t, coord.Addr(), 1, nil)
	defer stop()

	dcfg := cfg
	dcfg.Executor = coord
	_, distTbl, err := experiments.Figure5(dcfg, targets)
	if err != nil {
		t.Fatalf("distributed figure5 with crash: %v", err)
	}
	<-crashed
	if got, want := tableText(t, distTbl), tableText(t, localTbl); got != want {
		t.Errorf("post-crash table differs from local:\n--- local ---\n%s--- distributed ---\n%s", want, got)
	}
	st := coord.Stats()
	if want := uint64(len(targets) * cfg.Replications); st.Runs != want {
		t.Errorf("resolved %d runs, want %d (no loss, no double count)", st.Runs, want)
	}
	if st.Expired == 0 {
		t.Errorf("expected at least one expired lease, stats: %s", st)
	}
}

// TestJournalResume kills the coordinator after a completed sweep and
// resumes from the journal with no workers at all: every run must replay
// from the journal, byte-identically.
func TestJournalResume(t *testing.T) {
	cfg, targets := testConfig()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := JournalMeta{
		Grid: "fig5", Duration: cfg.Duration, Seed: cfg.Seed,
		Replications: cfg.Replications,
		Cells:        []string{"30ms", "38ms", "46ms"},
	}

	coord, err := NewCoordinator(CoordinatorConfig{Grid: "fig5", JournalPath: path, Meta: meta, LeaseRuns: 2})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	stop := startWorkers(t, coord.Addr(), 2, nil)
	dcfg := cfg
	dcfg.Executor = coord
	_, firstTbl, err := experiments.Figure5(dcfg, targets)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	stop()
	coord.Close()

	// Restart from the journal. No workers join: if anything failed to
	// journal, the sweep would hang — guard with a timeout via the
	// harness interrupt.
	resumed, err := NewCoordinator(CoordinatorConfig{
		Grid: "fig5", JournalPath: path, Meta: meta, Resume: true, LeaseRuns: 2,
	})
	if err != nil {
		t.Fatalf("resume coordinator: %v", err)
	}
	defer resumed.Close()
	interrupt := make(chan struct{})
	timer := time.AfterFunc(30*time.Second, func() { close(interrupt) })
	defer timer.Stop()
	rcfg := cfg
	rcfg.Executor = resumed
	rcfg.Interrupt = interrupt
	_, resumedTbl, err := experiments.Figure5(rcfg, targets)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got, want := tableText(t, resumedTbl), tableText(t, firstTbl); got != want {
		t.Errorf("resumed table differs:\n--- first ---\n%s--- resumed ---\n%s", want, got)
	}
	st := resumed.Stats()
	if st.FromJournal != st.Runs || st.Runs == 0 {
		t.Errorf("resume should serve every run from the journal: %s", st)
	}
	if st.FromWorkers != 0 {
		t.Errorf("resume should lease nothing: %s", st)
	}
}

// TestJournalMidSweepResume interrupts a sweep partway (only some runs
// journaled), then resumes: journaled runs replay, the rest execute, and
// the final table is byte-identical to an uninterrupted local run.
func TestJournalMidSweepResume(t *testing.T) {
	cfg, targets := testConfig()
	_, localTbl, err := experiments.Figure5(cfg, targets)
	if err != nil {
		t.Fatalf("local figure5: %v", err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")
	meta := JournalMeta{
		Grid: "fig5", Duration: cfg.Duration, Seed: cfg.Seed,
		Replications: cfg.Replications,
		Cells:        []string{"30ms", "38ms", "46ms"},
	}

	// First life: one worker, interrupted after the first completions
	// arrive.
	coord, err := NewCoordinator(CoordinatorConfig{
		Grid: "fig5", JournalPath: path, Meta: meta, LeaseRuns: 1,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	stop := startWorkers(t, coord.Addr(), 1, nil)
	interrupt := make(chan struct{})
	var once sync.Once
	dcfg := cfg
	dcfg.Executor = coord
	dcfg.Interrupt = interrupt
	dcfg.Progress = func(done, total int) {
		if done >= 2 {
			once.Do(func() { close(interrupt) })
		}
	}
	_, _, err = experiments.Figure5(dcfg, targets)
	stop()
	coord.Close()
	if err == nil {
		t.Logf("sweep completed before the interrupt landed; resume still exercises the journal")
	}

	meta2 := meta
	resumed, err := NewCoordinator(CoordinatorConfig{
		Grid: "fig5", JournalPath: path, Meta: meta2, Resume: true, LeaseRuns: 2,
	})
	if err != nil {
		t.Fatalf("resume coordinator: %v", err)
	}
	defer resumed.Close()
	stop2 := startWorkers(t, resumed.Addr(), 2, nil)
	defer stop2()
	rcfg := cfg
	rcfg.Executor = resumed
	_, resumedTbl, err := experiments.Figure5(rcfg, targets)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got, want := tableText(t, resumedTbl), tableText(t, localTbl); got != want {
		t.Errorf("mid-sweep resumed table differs from local:\n--- local ---\n%s--- resumed ---\n%s", want, got)
	}
}

// TestJournalTornTail corrupts the journal's tail (a torn write from a
// killed coordinator) and asserts resume drops exactly the tail.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	meta := JournalMeta{Grid: "g", Salt: "s", Cells: []string{"a"}}
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	recs := []JournalRecord{
		{Cell: "a", Rep: 0, Key: strings.Repeat("0", 64), Entry: []byte("e0")},
		{Cell: "a", Rep: 1, Key: strings.Repeat("1", 64), Entry: []byte("e1")},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	j.Close()

	// Simulate the torn write: half a record of garbage.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Close()
	tornSize := fileSize(t, path)

	j2, got, err := OpenJournal(path, meta)
	if err != nil {
		t.Fatalf("open torn journal: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Key != recs[i].Key || string(got[i].Entry) != string(recs[i].Entry) {
			t.Errorf("record %d mismatch: %+v", i, got[i])
		}
	}
	// The tail must be gone, and appending must still work.
	if s := fileSize(t, path); s >= tornSize {
		t.Errorf("torn tail not truncated: %d >= %d", s, tornSize)
	}
	if err := j2.Append(JournalRecord{Cell: "a", Rep: 2, Key: strings.Repeat("2", 64), Entry: []byte("e2")}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	j2.Close()
	_, got, err = ReadJournal(path)
	if err != nil || len(got) != 3 {
		t.Fatalf("after re-append: %d records, err %v", len(got), err)
	}
}

// TestJournalMetaMismatch: resuming a journal written under different
// sweep knobs must fail loudly, not replay wrong results.
func TestJournalMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.journal")
	meta := JournalMeta{Grid: "g", Salt: "s", Seed: 1, Cells: []string{"a"}}
	j, err := CreateJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := meta
	other.Seed = 2
	if _, _, err := OpenJournal(path, other); err == nil {
		t.Fatal("expected meta mismatch error, got nil")
	} else if !strings.Contains(err.Error(), "different sweep configuration") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestHTTPCacheBackend drives a worker with no filesystem cache at all:
// its RunCache speaks to the coordinator over /cache/entry. A second
// identical sweep must then resolve entirely from the coordinator's
// cache without leasing a single run.
func TestHTTPCacheBackend(t *testing.T) {
	cfg, targets := testConfig()
	cache, err := harness.NewRunCache(harness.CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Grid: "fig5", Cache: cache, ServeCache: true, LeaseRuns: 2,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	stop := startWorkers(t, coord.Addr(), 2, func(i int, wc *WorkerConfig) {
		wc.UseCoordinatorCache = true
	})
	defer stop()

	dcfg := cfg
	dcfg.Executor = coord
	_, firstTbl, err := experiments.Figure5(dcfg, targets)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	first := coord.Stats()
	if first.FromWorkers == 0 {
		t.Fatalf("first sweep should lease work: %s", first)
	}

	_, secondTbl, err := experiments.Figure5(dcfg, targets)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	second := coord.Stats()
	if got := second.FromWorkers - first.FromWorkers; got != 0 {
		t.Errorf("second sweep leased %d runs, want 0 (cache-resolved)", got)
	}
	if got := second.FromCache - first.FromCache; got != uint64(len(targets)*cfg.Replications) {
		t.Errorf("second sweep served %d from cache, want %d", got, len(targets)*cfg.Replications)
	}
	if a, b := tableText(t, firstTbl), tableText(t, secondTbl); a != b {
		t.Errorf("cache replay differs:\n%s\nvs\n%s", a, b)
	}

	// The backend round trip itself.
	b := NewHTTPBackend(coord.Addr())
	key := strings.Repeat("a", 64)
	if ok, err := b.Has(key); err != nil || ok {
		t.Fatalf("Has(missing) = %v, %v", ok, err)
	}
	if _, err := b.Get(key); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get(missing) = %v, want fs.ErrNotExist", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
