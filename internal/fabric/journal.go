package fabric

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// journalMagic opens every journal file; a version bump invalidates old
// journals wholesale (like the cache footer's).
const journalMagic = "BGJL1\n"

// JournalMeta is the journal's first block: everything needed to decide
// whether a journal belongs to the sweep being resumed, and to rebuild
// the grid when cmd/report renders tables straight from the file. The
// coordinator refuses to resume a journal whose meta differs from its
// own configuration — a journal written under other knobs would replay
// results the current sweep would not produce.
type JournalMeta struct {
	Version int `json:"version"`
	// Grid names the sweep (cmd/sweepd's -mode); Cells lists its grid
	// points in order, so report -journal can rebuild the grid without
	// re-deriving it.
	Grid  string   `json:"grid"`
	Cells []string `json:"cells"`
	// Salt is the cache salt every journaled key was derived under.
	Salt string `json:"salt"`
	// Sweep knobs, mirrored from the harness config.
	Duration     time.Duration `json:"duration"`
	Seed         int64         `json:"seed"`
	Replications int           `json:"replications"`
	// Adaptive knobs (zero CITarget = fixed replication).
	CITarget float64 `json:"ci_target,omitempty"`
	CIMetric string  `json:"ci_metric,omitempty"`
	MaxReps  int     `json:"max_reps,omitempty"`
}

// journalVersion is the current JournalMeta.Version.
const journalVersion = 1

// canonical renders the meta as comparison-stable bytes.
func (m JournalMeta) canonical() string {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("fabric: journal meta marshal: %v", err))
	}
	return string(b)
}

// JournalRecord is one completed run: its grid position, content-address
// key, and either the encoded result entry (the cache byte format) or
// the run's error string. Records are append-only and content-addressed,
// so replaying a journal is idempotent and order-independent within a
// cell.
type JournalRecord struct {
	Cell string
	Rep  int
	Key  string
	// Entry is nil when Err is set. Errors are sticky across resumes:
	// a journaled failure replays as a failure (delete the journal, or
	// the offending record's sweep config, to retry).
	Entry []byte
	Err   string
}

// Journal is the append side: an open journal file streaming completed
// runs. Appends are framed ([u32 length, u32 CRC-32 (IEEE), payload]),
// flushed and synced per record, so a killed coordinator loses at most
// the record being written — and the CRC detects that torn tail on
// resume.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// CreateJournal starts a fresh journal at path (truncating any previous
// file), writing the magic and the meta block.
func CreateJournal(path string, meta JournalMeta) (*Journal, error) {
	meta.Version = journalVersion
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: create journal: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriter(f)}
	if _, err := j.w.WriteString(journalMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: create journal: %w", err)
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: journal meta: %w", err)
	}
	if err := j.appendBlock(metaJSON); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournal opens an existing journal for resume: it verifies the meta
// matches the sweep being resumed, reads every intact record, truncates
// a torn tail (a partial record from a killed coordinator), and returns
// the journal positioned for appending.
func OpenJournal(path string, want JournalMeta) (*Journal, []JournalRecord, error) {
	want.Version = journalVersion
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: open journal: %w", err)
	}
	meta, recs, intact, err := readJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if meta.canonical() != want.canonical() {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: journal %s was written by a different sweep configuration (journal: %s; resuming: %s)",
			path, meta.canonical(), want.canonical())
	}
	// Drop the torn tail so appends start at a record boundary.
	if err := f.Truncate(intact); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: seek journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, recs, nil
}

// ReadJournal reads a journal without opening it for append — the
// cmd/report -journal path. A torn tail is tolerated (the journal may
// belong to a live or killed coordinator); intact records up to it are
// returned.
func ReadJournal(path string) (JournalMeta, []JournalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return JournalMeta{}, nil, fmt.Errorf("fabric: read journal: %w", err)
	}
	defer f.Close()
	meta, recs, _, err := readJournal(f)
	return meta, recs, err
}

// readJournal parses magic, meta and records, returning the byte offset
// of the last intact record's end. Framing damage past the meta block is
// a torn tail, not an error.
func readJournal(f *os.File) (JournalMeta, []JournalRecord, int64, error) {
	r := bufio.NewReader(f)
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != journalMagic {
		return JournalMeta{}, nil, 0, fmt.Errorf("fabric: not a journal file (bad magic)")
	}
	offset := int64(len(journalMagic))
	metaPayload, n, err := readBlock(r)
	if err != nil {
		return JournalMeta{}, nil, 0, fmt.Errorf("fabric: journal meta block: %w", err)
	}
	offset += n
	var meta JournalMeta
	if err := json.Unmarshal(metaPayload, &meta); err != nil {
		return JournalMeta{}, nil, 0, fmt.Errorf("fabric: journal meta: %w", err)
	}
	if meta.Version != journalVersion {
		return JournalMeta{}, nil, 0, fmt.Errorf("fabric: journal version %d (want %d)", meta.Version, journalVersion)
	}
	var recs []JournalRecord
	for {
		payload, n, err := readBlock(r)
		if err != nil {
			// EOF, a short frame, or a CRC failure: the torn tail.
			break
		}
		var rec JournalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			break
		}
		offset += n
		recs = append(recs, rec)
	}
	return meta, recs, offset, nil
}

// readBlock reads one framed block, verifying its CRC, and returns the
// payload and the number of bytes consumed.
func readBlock(r io.Reader) ([]byte, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if length > 1<<30 {
		return nil, 0, errors.New("fabric: journal block too large")
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errors.New("fabric: journal block checksum mismatch")
	}
	return payload, int64(8 + length), nil
}

// appendBlock frames, writes, flushes and syncs one payload.
func (j *Journal) appendBlock(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := j.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("fabric: journal append: %w", err)
	}
	if _, err := j.w.Write(payload); err != nil {
		return fmt.Errorf("fabric: journal append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("fabric: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: journal sync: %w", err)
	}
	return nil
}

// Append streams one completed run into the journal.
func (j *Journal) Append(rec JournalRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("fabric: journal encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendBlock(buf.Bytes())
}

// Close flushes and closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
