package fabric

import (
	"errors"
	"sort"

	"bluegs/internal/harness"
)

// JournalResults rebuilds harness run results from journal records
// against the grid the journal was written for: each record's (cell,
// rep) spec is re-derived through the grid exactly as the coordinator
// derived it, its content address is verified against the record's key,
// and the entry is decoded with the footer check. Results come back in
// grid cell order with replications ascending — the order every
// aggregation helper expects — so cmd/report renders tables from a
// partial journal that are byte-identical (for the cells present) to the
// finished sweep's.
//
// Records that match no grid cell, whose re-derived key disagrees (a
// journal written under other knobs), or whose entry fails its footer
// check are counted in skipped rather than failing the render.
func JournalResults(meta JournalMeta, recs []JournalRecord, g harness.Grid, cfg harness.SweepConfig) (results []harness.RunResult, skipped int, err error) {
	cfg = cfg.WithDefaults()
	cells := make(map[string]bool, len(g.Cells))
	for _, cell := range g.Cells {
		cells[cell] = true
	}
	type cr struct {
		rep int
		rec *JournalRecord
	}
	byCell := make(map[string][]cr)
	for i := range recs {
		rec := &recs[i]
		if !cells[rec.Cell] {
			skipped++
			continue
		}
		byCell[rec.Cell] = append(byCell[rec.Cell], cr{rec.Rep, rec})
	}
	index := 0
	for _, cell := range g.Cells {
		rs := byCell[cell]
		sort.Slice(rs, func(a, b int) bool { return rs[a].rep < rs[b].rep })
		for _, x := range rs {
			run := g.Run(cfg, index, cell, x.rep)
			key := harness.CacheKey(meta.Salt, run.Spec)
			if key != x.rec.Key {
				skipped++
				continue
			}
			rr := harness.RunResult{Run: run, CacheHit: true}
			if x.rec.Err != "" {
				rr.Err = errors.New(x.rec.Err)
			} else {
				res, derr := harness.DecodeResultEntry(key, x.rec.Entry, run.Spec)
				if derr != nil {
					skipped++
					continue
				}
				rr.Result = res
			}
			results = append(results, rr)
			index++
		}
	}
	return results, skipped, nil
}
