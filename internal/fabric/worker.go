package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/scenario"
)

// WorkerConfig tunes RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's address ("host:port", or a full
	// http:// URL).
	Coordinator string
	// Name identifies the worker in leases and logs (default
	// "hostname-pid").
	Name string
	// Workers bounds the local simulation pool per lease (<= 0 means
	// GOMAXPROCS), exactly as harness.Options.Workers.
	Workers int
	// Cache, when set, is the worker's local run cache (e.g. a shared
	// -cache-dir). Its salt must match the coordinator's, or keys would
	// disagree.
	Cache *harness.RunCache
	// UseCoordinatorCache, when no local Cache is set and the
	// coordinator serves /cache/entry, backs the worker's cache with the
	// coordinator over HTTP — no shared filesystem needed.
	UseCoordinatorCache bool
	// Poll is the idle re-poll interval while the coordinator has no
	// work (default 300ms).
	Poll time.Duration
	// Logf, when set, receives operational events.
	Logf func(format string, args ...any)

	// abandonNth, when > 0, makes the worker exit without executing or
	// completing its nth lease — the crash-mid-lease the recovery tests
	// inject.
	abandonNth int
}

// RunWorker joins a coordinator and processes leases until the context
// is cancelled or the coordinator goes away (which, after a successful
// first contact, is a clean exit — the sweep is over).
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 300 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	base := cfg.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	info, err := fetchInfo(ctx, client, base)
	if err != nil {
		return stats, err
	}
	cache := cfg.Cache
	if cache != nil && cache.Salt() != info.Salt {
		return stats, fmt.Errorf("fabric: worker cache salt %q differs from coordinator salt %q", cache.Salt(), info.Salt)
	}
	if cache == nil && cfg.UseCoordinatorCache && info.Cache {
		cache, err = harness.NewRunCache(harness.CacheConfig{
			Backend: NewHTTPBackend(base),
			Salt:    info.Salt,
		})
		if err != nil {
			return stats, err
		}
	}
	cfg.Logf("fabric: worker %s joined %s (grid %q, salt %s)", cfg.Name, base, info.Grid, info.Salt)

	leased := 0
	for {
		select {
		case <-ctx.Done():
			return stats, nil
		default:
		}
		var resp LeaseResponse
		if err := postJSON(ctx, client, base+"/lease", LeaseRequest{Worker: cfg.Name}, &resp); err != nil {
			if ctx.Err() != nil {
				return stats, nil
			}
			// The coordinator answered /info once, so an unreachable
			// coordinator now means the sweep driver exited: done.
			cfg.Logf("fabric: worker %s: coordinator gone (%v), exiting", cfg.Name, err)
			return stats, nil
		}
		switch resp.Status {
		case StatusLease:
			leased++
			if cfg.abandonNth > 0 && leased >= cfg.abandonNth {
				cfg.Logf("fabric: worker %s abandoning lease %s (injected crash)", cfg.Name, resp.Lease.ID)
				return stats, nil
			}
			executeLease(ctx, client, base, cfg, info, cache, resp.Lease, &stats)
		case StatusWait, StatusDone:
			select {
			case <-ctx.Done():
				return stats, nil
			case <-time.After(cfg.Poll):
			}
		default:
			return stats, fmt.Errorf("fabric: unknown lease status %q", resp.Status)
		}
	}
}

// executeLease runs one lease through the local harness (heartbeating
// while it computes) and returns the results to the coordinator.
func executeLease(ctx context.Context, client *http.Client, base string, cfg WorkerConfig,
	info InfoResponse, cache *harness.RunCache, lease *Lease, stats *WorkerStats) {
	runs := make([]harness.Run, len(lease.Runs))
	bad := make([]string, len(lease.Runs)) // per-run unmarshal failure
	for k, lr := range lease.Runs {
		spec, err := scenario.Unmarshal(lr.Spec)
		if err != nil {
			bad[k] = fmt.Sprintf("fabric: worker unmarshal spec: %v", err)
			continue
		}
		runs[k] = harness.Run{Index: lr.Index, Cell: lr.Cell, Rep: lr.Rep, Spec: spec}
	}

	// Heartbeat at a third of the TTL while the lease computes — and while
	// the results upload: a /complete carrying large entries can outlast
	// the TTL on its own, and an expiry mid-upload would force the runs
	// through a redundant re-lease.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		interval := info.LeaseTTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if err := postJSON(ctx, client, base+"/heartbeat", HeartbeatRequest{Lease: lease.ID, Worker: cfg.Name}, nil); err != nil {
					cfg.Logf("fabric: worker %s: heartbeat %s: %v", cfg.Name, lease.ID, err)
				}
			}
		}
	}()

	var interrupt chan struct{}
	if ctx.Done() != nil {
		interrupt = make(chan struct{})
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-ctx.Done():
				close(interrupt)
			case <-done:
			}
		}()
	}
	results, _ := harness.Execute(runs, harness.Options{
		Workers:   cfg.Workers,
		Cache:     cache,
		Interrupt: interrupt,
	})

	req := CompleteRequest{Lease: lease.ID, Worker: cfg.Name}
	for k, rr := range results {
		cr := CompletedRun{
			Index:    lease.Runs[k].Index,
			Cell:     lease.Runs[k].Cell,
			Rep:      lease.Runs[k].Rep,
			CacheHit: rr.CacheHit,
		}
		switch {
		case bad[k] != "":
			cr.Err = bad[k]
		case rr.Err != nil:
			cr.Key = harness.CacheKey(info.Salt, runs[k].Spec)
			cr.Err = rr.Err.Error()
		default:
			cr.Key = harness.CacheKey(info.Salt, runs[k].Spec)
			entry, err := harness.EncodeResultEntry(cr.Key, rr.Result)
			if err != nil {
				cr.Err = err.Error()
			} else {
				cr.Entry = entry
			}
		}
		if rr.Err != nil && bad[k] == "" && isInterrupted(rr.Err) {
			// An interrupted run is not a completion: leave it out so
			// the coordinator re-leases it after the TTL. (Unmarshal
			// failures do report — they would fail identically anywhere.)
			continue
		}
		req.Runs = append(req.Runs, cr)
		stats.Runs++
		if rr.CacheHit {
			stats.CacheHits++
		}
	}
	stats.Leases++

	// A failed complete is not fatal: the lease expires and re-leases.
	for attempt := 0; attempt < 3; attempt++ {
		if err := postJSON(ctx, client, base+"/complete", req, nil); err == nil {
			return
		} else if attempt == 2 || ctx.Err() != nil {
			cfg.Logf("fabric: worker %s: complete %s failed: %v", cfg.Name, lease.ID, err)
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func isInterrupted(err error) bool {
	return err != nil && strings.Contains(err.Error(), harness.ErrInterrupted.Error())
}

// fetchInfo retries /info briefly: workers routinely start before the
// coordinator finishes binding its port.
func fetchInfo(ctx context.Context, client *http.Client, base string) (InfoResponse, error) {
	var info InfoResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := getJSON(ctx, client, base+"/info", &info)
		if err == nil {
			return info, nil
		}
		if ctx.Err() != nil {
			return info, ctx.Err()
		}
		if time.Now().After(deadline) {
			return info, fmt.Errorf("fabric: coordinator %s unreachable: %w", base, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fabric: GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fabric: POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
