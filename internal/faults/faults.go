// Package faults declares deterministic fault plans for scenario runs:
// timed link outage windows per (piconet, slave), slave departure/return
// events, and master crashes. A plan is pure data — it travels inside
// scenario.Spec, serializes through the v2 codec and enters the spec's
// canonical fingerprint — and compiles into per-piconet schedules the
// piconet engine queries on every exchange.
//
// The composition contract: an active outage forces 100% loss on the
// affected link without consuming a single RNG draw, so the underlying
// channel model (BER, Gilbert–Elliott) is frozen, not perturbed — a
// bursty channel resumes in exactly the state, and with exactly the draw
// sequence, it would have had if the engine had simply not transmitted.
// Fault-free specs are therefore byte-identical to runs of a build
// without this package.
package faults

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bluegs/internal/piconet"
)

// Forever is the open upper end of a link-down interval (a slave that
// departed and never returns).
const Forever = time.Duration(math.MaxInt64)

// Policy selects what the scenario runner does with a flow whose link the
// supervision timeout declared dead.
type Policy string

// Recovery policies.
const (
	// PolicyNone suspends the flow and leaves it suspended: the contract
	// is lost (but its queue is flushed, so packets stuck behind the dead
	// link never complete late).
	PolicyNone Policy = ""
	// PolicyDegrade renegotiates the suspended flow at a looser delay
	// bound (DegradeFactor × the spec's target) once the declared fault
	// window ends — graceful degradation instead of a hard drop.
	PolicyDegrade Policy = "degrade"
	// PolicyHandoff moves the suspended flow to another piconet
	// make-before-break: admission at the target precedes release at the
	// source.
	PolicyHandoff Policy = "handoff"
)

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool {
	switch p {
	case PolicyNone, PolicyDegrade, PolicyHandoff:
		return true
	}
	return false
}

// LinkOutage forces the (Piconet, Slave) link into a 100%-loss state for
// [Start, End): every ACL or SCO exchange addressed to the slave in the
// window fails, both legs, with zero RNG draws.
type LinkOutage struct {
	// Piconet names the affected piconet ("" targets the spec's first —
	// and, for flat specs, only — piconet).
	Piconet string
	// Slave is the affected slave (1..7).
	Slave piconet.SlaveID
	// Start and End bound the outage window, relative to run start.
	Start, End time.Duration
}

// SlaveDeparture models a slave walking out of range at At and returning
// at ReturnAt (zero: never). While away, its link behaves exactly like an
// outage window.
type SlaveDeparture struct {
	Piconet string
	Slave   piconet.SlaveID
	At      time.Duration
	// ReturnAt, when nonzero, is when the slave comes back in range.
	ReturnAt time.Duration
}

// MasterCrash halts a whole piconet at At: the master stops polling
// permanently (piconet.Stop) and the piconet's flows are orphaned.
type MasterCrash struct {
	Piconet string
	At      time.Duration
}

// Plan is a declarative, deterministic fault plan. The zero value injects
// nothing.
type Plan struct {
	Outages    []LinkOutage
	Departures []SlaveDeparture
	Crashes    []MasterCrash
}

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return len(p.Outages) == 0 && len(p.Departures) == 0 && len(p.Crashes) == 0
}

// Validate checks the plan's internal consistency: slave ids in 1..7,
// well-ordered windows, non-negative times, and at most one crash per
// piconet. Piconet-name resolution is the caller's (the scenario layer
// knows which names a run can create).
func (p Plan) Validate() error {
	checkSlave := func(what string, s piconet.SlaveID) error {
		if s < 1 || s > 7 {
			return fmt.Errorf("faults: %s slave %d outside 1..7", what, s)
		}
		return nil
	}
	for i, o := range p.Outages {
		if err := checkSlave("outage", o.Slave); err != nil {
			return err
		}
		if o.Start < 0 || o.End <= o.Start {
			return fmt.Errorf("faults: outage[%d] window [%v, %v) is not well-ordered", i, o.Start, o.End)
		}
	}
	for i, d := range p.Departures {
		if err := checkSlave("departure", d.Slave); err != nil {
			return err
		}
		if d.At < 0 {
			return fmt.Errorf("faults: departure[%d] at %v is negative", i, d.At)
		}
		if d.ReturnAt != 0 && d.ReturnAt <= d.At {
			return fmt.Errorf("faults: departure[%d] returns at %v, before it departs at %v", i, d.ReturnAt, d.At)
		}
	}
	crashed := make(map[string]bool, len(p.Crashes))
	for i, c := range p.Crashes {
		if c.At < 0 {
			return fmt.Errorf("faults: crash[%d] at %v is negative", i, c.At)
		}
		if crashed[c.Piconet] {
			return fmt.Errorf("faults: duplicate crash for piconet %q", c.Piconet)
		}
		crashed[c.Piconet] = true
	}
	return nil
}

// Resolve returns the plan with every empty piconet name replaced by def,
// copying only when something changes. The scenario layer uses it so an
// implicit and an explicit address of the first piconet describe — and
// fingerprint as — the same plan.
func (p Plan) Resolve(def string) Plan {
	if def == "" {
		return p
	}
	changed := false
	for _, o := range p.Outages {
		changed = changed || o.Piconet == ""
	}
	for _, d := range p.Departures {
		changed = changed || d.Piconet == ""
	}
	for _, c := range p.Crashes {
		changed = changed || c.Piconet == ""
	}
	if !changed {
		return p
	}
	out := Plan{
		Outages:    append([]LinkOutage(nil), p.Outages...),
		Departures: append([]SlaveDeparture(nil), p.Departures...),
		Crashes:    append([]MasterCrash(nil), p.Crashes...),
	}
	for i := range out.Outages {
		if out.Outages[i].Piconet == "" {
			out.Outages[i].Piconet = def
		}
	}
	for i := range out.Departures {
		if out.Departures[i].Piconet == "" {
			out.Departures[i].Piconet = def
		}
	}
	for i := range out.Crashes {
		if out.Crashes[i].Piconet == "" {
			out.Crashes[i].Piconet = def
		}
	}
	return out
}

// Interval is one merged link-down window [Start, End); End == Forever
// for a departure that never returns.
type Interval struct {
	Start, End time.Duration
}

// PiconetFaults is the compiled per-piconet fault schedule: merged,
// sorted link-down intervals per slave, plus the crash instant.
type PiconetFaults struct {
	slaves map[piconet.SlaveID][]Interval
	crash  time.Duration
	hasCrash bool
}

// Schedule is a compiled Plan: per-piconet query structures the runner
// wires into each piconet engine.
type Schedule struct {
	byPiconet map[string]*PiconetFaults
}

// Compile merges the plan's outages and departures into per-(piconet,
// slave) sorted non-overlapping intervals and records crash times. A nil
// receiver-safe empty schedule compiles from the zero plan.
func (p Plan) Compile() *Schedule {
	s := &Schedule{byPiconet: make(map[string]*PiconetFaults)}
	pf := func(name string) *PiconetFaults {
		f := s.byPiconet[name]
		if f == nil {
			f = &PiconetFaults{slaves: make(map[piconet.SlaveID][]Interval)}
			s.byPiconet[name] = f
		}
		return f
	}
	for _, o := range p.Outages {
		f := pf(o.Piconet)
		f.slaves[o.Slave] = append(f.slaves[o.Slave], Interval{Start: o.Start, End: o.End})
	}
	for _, d := range p.Departures {
		end := d.ReturnAt
		if end == 0 {
			end = Forever
		}
		f := pf(d.Piconet)
		f.slaves[d.Slave] = append(f.slaves[d.Slave], Interval{Start: d.At, End: end})
	}
	for _, c := range p.Crashes {
		f := pf(c.Piconet)
		f.crash, f.hasCrash = c.At, true
	}
	for _, f := range s.byPiconet {
		for slave, ivs := range f.slaves {
			f.slaves[slave] = mergeIntervals(ivs)
		}
	}
	return s
}

// mergeIntervals sorts and coalesces overlapping or touching windows.
func mergeIntervals(ivs []Interval) []Interval {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Start != ivs[j].Start {
			return ivs[i].Start < ivs[j].Start
		}
		return ivs[i].End < ivs[j].End
	})
	out := ivs[:0]
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Piconet returns the compiled faults of the named piconet, or nil when
// the plan never touches it (the engine then carries no fault hook at
// all). Nil-receiver safe.
func (s *Schedule) Piconet(name string) *PiconetFaults {
	if s == nil {
		return nil
	}
	return s.byPiconet[name]
}

// Crash returns the piconet's crash instant, if the plan crashes it.
func (s *Schedule) Crash(name string) (time.Duration, bool) {
	f := s.Piconet(name)
	if f == nil || !f.hasCrash {
		return 0, false
	}
	return f.crash, true
}

// Down reports whether the slave's link is inside a fault window at t.
// O(log n) per query; the engine calls it once per exchange.
func (f *PiconetFaults) Down(slave piconet.SlaveID, t time.Duration) bool {
	_, down := f.Covering(slave, t)
	return down
}

// Covering returns the merged fault interval containing t on the slave's
// link, if any. Recovery policies use it to learn when a declared-dead
// link is scheduled to return.
func (f *PiconetFaults) Covering(slave piconet.SlaveID, t time.Duration) (Interval, bool) {
	if f == nil {
		return Interval{}, false
	}
	ivs := f.slaves[slave]
	// First interval starting after t; the candidate is its predecessor.
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Start > t })
	if i == 0 {
		return Interval{}, false
	}
	if iv := ivs[i-1]; t < iv.End {
		return iv, true
	}
	return Interval{}, false
}
