package faults

import (
	"strings"
	"testing"
	"time"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error; "" means valid
	}{
		{"empty", Plan{}, ""},
		{"good", Plan{
			Outages:    []LinkOutage{{Piconet: "pn1", Slave: 1, Start: time.Second, End: 2 * time.Second}},
			Departures: []SlaveDeparture{{Piconet: "pn1", Slave: 2, At: time.Second, ReturnAt: 3 * time.Second}},
			Crashes:    []MasterCrash{{Piconet: "pn2", At: 5 * time.Second}},
		}, ""},
		{"outage slave zero", Plan{
			Outages: []LinkOutage{{Slave: 0, Start: 0, End: time.Second}},
		}, "outside 1..7"},
		{"outage slave high", Plan{
			Outages: []LinkOutage{{Slave: 8, Start: 0, End: time.Second}},
		}, "outside 1..7"},
		{"outage reversed window", Plan{
			Outages: []LinkOutage{{Slave: 1, Start: 2 * time.Second, End: time.Second}},
		}, "not well-ordered"},
		{"outage empty window", Plan{
			Outages: []LinkOutage{{Slave: 1, Start: time.Second, End: time.Second}},
		}, "not well-ordered"},
		{"outage negative start", Plan{
			Outages: []LinkOutage{{Slave: 1, Start: -time.Second, End: time.Second}},
		}, "not well-ordered"},
		{"departure negative", Plan{
			Departures: []SlaveDeparture{{Slave: 1, At: -time.Second}},
		}, "is negative"},
		{"departure returns before leaving", Plan{
			Departures: []SlaveDeparture{{Slave: 1, At: 2 * time.Second, ReturnAt: time.Second}},
		}, "before it departs"},
		{"crash negative", Plan{
			Crashes: []MasterCrash{{At: -time.Second}},
		}, "is negative"},
		{"duplicate crash", Plan{
			Crashes: []MasterCrash{{Piconet: "pn1", At: time.Second}, {Piconet: "pn1", At: 2 * time.Second}},
		}, "duplicate crash"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestPlanResolve(t *testing.T) {
	plan := Plan{
		Outages:    []LinkOutage{{Slave: 1, Start: 0, End: time.Second}, {Piconet: "pn2", Slave: 2, Start: 0, End: time.Second}},
		Departures: []SlaveDeparture{{Slave: 3, At: time.Second}},
		Crashes:    []MasterCrash{{At: time.Second}},
	}
	got := plan.Resolve("pn1")
	if got.Outages[0].Piconet != "pn1" || got.Departures[0].Piconet != "pn1" || got.Crashes[0].Piconet != "pn1" {
		t.Fatalf("empty names not resolved: %+v", got)
	}
	if got.Outages[1].Piconet != "pn2" {
		t.Fatalf("explicit name overwritten: %+v", got.Outages[1])
	}
	if plan.Outages[0].Piconet != "" {
		t.Fatal("Resolve mutated the receiver")
	}
	// No empty names: the same slices come back untouched.
	resolved := got.Resolve("pn9")
	if &resolved.Outages[0] != &got.Outages[0] {
		t.Fatal("fully-resolved plan was copied")
	}
	// Empty default: nothing to do.
	same := plan.Resolve("")
	if &same.Outages[0] != &plan.Outages[0] {
		t.Fatal("Resolve(\"\") copied the plan")
	}
}

func TestCompileMergesWindows(t *testing.T) {
	plan := Plan{
		Outages: []LinkOutage{
			// Overlapping and touching windows on one slave, out of order.
			{Piconet: "pn1", Slave: 1, Start: 3 * time.Second, End: 4 * time.Second},
			{Piconet: "pn1", Slave: 1, Start: time.Second, End: 2 * time.Second},
			{Piconet: "pn1", Slave: 1, Start: 1500 * time.Millisecond, End: 2500 * time.Millisecond},
			{Piconet: "pn1", Slave: 1, Start: 2500 * time.Millisecond, End: 2800 * time.Millisecond},
		},
		Departures: []SlaveDeparture{
			{Piconet: "pn1", Slave: 2, At: 5 * time.Second}, // never returns
		},
	}
	sched := plan.Compile()
	pf := sched.Piconet("pn1")
	if pf == nil {
		t.Fatal("compiled schedule lost pn1")
	}

	// Slave 1: [1s, 2.8s) and [3s, 4s) after merging.
	for _, tc := range []struct {
		at   time.Duration
		down bool
	}{
		{999 * time.Millisecond, false},
		{time.Second, true},
		{2 * time.Second, true},
		{2799 * time.Millisecond, true},
		{2800 * time.Millisecond, false},
		{2900 * time.Millisecond, false},
		{3 * time.Second, true},
		{4 * time.Second, false},
	} {
		if got := pf.Down(1, tc.at); got != tc.down {
			t.Errorf("slave 1 at %v: down=%t, want %t", tc.at, got, tc.down)
		}
	}
	iv, ok := pf.Covering(1, 2*time.Second)
	if !ok || iv.Start != time.Second || iv.End != 2800*time.Millisecond {
		t.Fatalf("covering interval = %+v (%t), want merged [1s, 2.8s)", iv, ok)
	}

	// Slave 2: departed forever.
	if !pf.Down(2, 5*time.Second) || !pf.Down(2, time.Hour) {
		t.Fatal("departed-forever slave reported up")
	}
	iv, ok = pf.Covering(2, 6*time.Second)
	if !ok || iv.End != Forever {
		t.Fatalf("departure interval = %+v (%t), want End=Forever", iv, ok)
	}
	if pf.Down(2, 4999*time.Millisecond) {
		t.Fatal("slave 2 down before departing")
	}

	// Untouched slaves and piconets.
	if pf.Down(3, 2*time.Second) {
		t.Fatal("untouched slave reported down")
	}
	if sched.Piconet("pn2") != nil {
		t.Fatal("untouched piconet has a compiled schedule")
	}
}

func TestScheduleCrash(t *testing.T) {
	plan := Plan{Crashes: []MasterCrash{{Piconet: "pn1", At: 7 * time.Second}}}
	sched := plan.Compile()
	at, ok := sched.Crash("pn1")
	if !ok || at != 7*time.Second {
		t.Fatalf("Crash(pn1) = %v, %t", at, ok)
	}
	if _, ok := sched.Crash("pn2"); ok {
		t.Fatal("uncrashed piconet reports a crash")
	}
}

func TestNilSafety(t *testing.T) {
	var sched *Schedule
	if sched.Piconet("pn1") != nil {
		t.Fatal("nil schedule returned a piconet")
	}
	if _, ok := sched.Crash("pn1"); ok {
		t.Fatal("nil schedule reported a crash")
	}
	var pf *PiconetFaults
	if pf.Down(1, time.Second) {
		t.Fatal("nil piconet faults reported down")
	}
	if _, ok := pf.Covering(1, time.Second); ok {
		t.Fatal("nil piconet faults reported a covering interval")
	}
}

func TestPolicyValid(t *testing.T) {
	for _, p := range []Policy{PolicyNone, PolicyDegrade, PolicyHandoff} {
		if !p.Valid() {
			t.Errorf("policy %q invalid", p)
		}
	}
	if Policy("reboot").Valid() {
		t.Error("unknown policy accepted")
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not empty")
	}
	if (Plan{Crashes: []MasterCrash{{}}}).Empty() {
		t.Error("crash-only plan reported empty")
	}
}
