package gs_test

import (
	"fmt"
	"time"

	"bluegs/internal/gs"
	"bluegs/internal/tspec"
)

// The paper's §4.1 numbers: a 64 kbps voice-like flow served at the
// maximal admissible rate by the lowest-priority poll stream.
func ExampleDelayBound() {
	spec := tspec.CBR(20*time.Millisecond, 144, 176) // p=r=8.8kB/s, b=M=176
	terms := gs.ErrorTerms{C: 144, D: 11250 * time.Microsecond}
	bound, err := gs.DelayBound(spec, 12800, terms)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(bound)
	// Output: 36.25ms
}

// The receiver-side computation: how much rate achieves a 40 ms bound?
func ExampleRequiredRate() {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	terms := gs.ErrorTerms{C: 144, D: 11250 * time.Microsecond}
	rate, err := gs.RequiredRate(spec, 40*time.Millisecond, terms)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.1f bytes/s\n", rate)
	// Output: 11130.4 bytes/s
}

func ExampleErrorTerms_Add() {
	hop1 := gs.ErrorTerms{C: 144, D: 3750 * time.Microsecond}
	hop2 := gs.ErrorTerms{C: 144, D: 7500 * time.Microsecond}
	fmt.Println(hop1.Add(hop2))
	// Output: (C=288.0B, D=11.25ms)
}
