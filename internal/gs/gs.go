// Package gs implements the delay-bound mathematics of the IETF Guaranteed
// Service (RFC 2212), which the paper's polling mechanism plugs into.
//
// Each network element along a Guaranteed Service path exports two error
// terms describing its deviation from a dedicated wire of the reserved fluid
// rate R: a rate-dependent term C (bytes) and a rate-independent term D
// (time). Given a flow's token bucket TSpec and the accumulated terms
// (Ctot, Dtot), the end-to-end queueing delay bound for a reservation R is
// (paper eq. 1, RFC 2212 §9):
//
//	p > R >= r:  (b-M)/R * (p-R)/(p-r) + (M+Ctot)/R + Dtot
//	R >= p >= r: (M+Ctot)/R + Dtot
//
// The package also solves the receiver's inverse problem: the minimum
// reservation R that achieves a requested bound.
package gs

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bluegs/internal/tspec"
)

// Errors returned by the delay-bound computations.
var (
	ErrRateBelowTokenRate = errors.New("gs: reserved rate below token rate")
	ErrUnachievableDelay  = errors.New("gs: requested delay bound unachievable at any rate")
	ErrInvalidSpec        = errors.New("gs: invalid traffic specification")
)

// ErrorTerms is the (C, D) pair a network element exports: C is the
// rate-dependent deviation from the fluid model in bytes, D the
// rate-independent deviation in time.
type ErrorTerms struct {
	// C is the rate-dependent error term in bytes; it contributes C/R to
	// the delay bound.
	C float64
	// D is the rate-independent error term; it contributes additively.
	D time.Duration
}

// Add returns the element-wise sum of the terms, i.e. the accumulated
// (Ctot, Dtot) after traversing both elements.
func (e ErrorTerms) Add(other ErrorTerms) ErrorTerms {
	return ErrorTerms{C: e.C + other.C, D: e.D + other.D}
}

// String renders the terms.
func (e ErrorTerms) String() string {
	return fmt.Sprintf("(C=%.1fB, D=%v)", e.C, e.D)
}

// Sum accumulates error terms along a path.
func Sum(terms ...ErrorTerms) ErrorTerms {
	var tot ErrorTerms
	for _, t := range terms {
		tot = tot.Add(t)
	}
	return tot
}

// RSpec is a Guaranteed Service reservation: a fluid service rate and a
// slack term (RFC 2212 §8). The slack term is the difference between the
// delay bound obtained with Rate and the application's actual requirement;
// intermediate elements may consume it to reduce their reservation.
type RSpec struct {
	// Rate is the reserved fluid service rate in bytes per second.
	Rate float64
	// Slack is the slack term S.
	Slack time.Duration
}

// DelayBound returns the RFC 2212 end-to-end queueing delay bound for a flow
// with the given TSpec served at fluid rate rate with accumulated error
// terms tot. It fails when the spec is invalid or rate < r (a Guaranteed
// Service reservation must be at least the token rate).
func DelayBound(spec tspec.TSpec, rate float64, tot ErrorTerms) (time.Duration, error) {
	if err := spec.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	if rate < spec.TokenRate {
		return 0, fmt.Errorf("%w: rate %.1f < r %.1f", ErrRateBelowTokenRate, rate, spec.TokenRate)
	}
	m := float64(spec.MaxTransferUnit)
	var sec float64
	if spec.PeakRate > rate {
		// p > R >= r
		sec = (spec.BucketSize-m)/rate*(spec.PeakRate-rate)/(spec.PeakRate-spec.TokenRate) +
			(m+tot.C)/rate
	} else {
		// R >= p >= r
		sec = (m + tot.C) / rate
	}
	return time.Duration(sec*float64(time.Second)) + tot.D, nil
}

// RequiredRate returns the minimum fluid rate R >= r such that the delay
// bound for the flow does not exceed target. It fails when the target is
// unachievable at any finite rate (target <= Dtot).
func RequiredRate(spec tspec.TSpec, target time.Duration, tot ErrorTerms) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	q := (target - tot.D).Seconds()
	if q <= 0 {
		return 0, fmt.Errorf("%w: target %v <= Dtot %v", ErrUnachievableDelay, target, tot.D)
	}
	m := float64(spec.MaxTransferUnit)

	// First try the high-rate regime R >= p: bound = (M+C)/R + Dtot.
	rHigh := (m + tot.C) / q
	if rHigh >= spec.PeakRate {
		// Valid in this regime; R cannot be below r because p >= r.
		return rHigh, nil
	}
	// Otherwise the solution lies in r <= R < p (or at R = r).
	if spec.PeakRate > spec.TokenRate {
		// Solve (b-M)(p-R)/(R(p-r)) + (M+C)/R + Dtot = target for R:
		//   K(p-R) + M + C = q*R with K = (b-M)/(p-r)
		//   R = (K*p + M + C) / (q + K)
		k := (spec.BucketSize - m) / (spec.PeakRate - spec.TokenRate)
		rMid := (k*spec.PeakRate + m + tot.C) / (q + k)
		if rMid >= spec.TokenRate {
			return math.Min(rMid, spec.PeakRate), nil
		}
	}
	// Even the minimum legal reservation R = r meets the target.
	return spec.TokenRate, nil
}

// MaxDelayBound returns the delay bound obtained with the minimum legal
// reservation R = r: the bound that is achievable for the flow without any
// over-reservation. This is the paper's "delay bound that will never be
// exceeded" when requesting R = r.
func MaxDelayBound(spec tspec.TSpec, tot ErrorTerms) (time.Duration, error) {
	return DelayBound(spec, spec.TokenRate, tot)
}
