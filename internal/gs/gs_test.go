package gs

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bluegs/internal/tspec"
)

// paperSpec is the TSpec of each GS flow in the paper's §4.1 evaluation.
func paperSpec() tspec.TSpec {
	return tspec.CBR(20*time.Millisecond, 144, 176)
}

// paperTerms is the per-flow error-term export of the paper's poller for a
// flow with x_i as given: C = eta_min = 144 bytes, D = x_i.
func paperTerms(x time.Duration) ErrorTerms {
	return ErrorTerms{C: 144, D: x}
}

func TestErrorTermsAddAndSum(t *testing.T) {
	a := ErrorTerms{C: 100, D: 2 * time.Millisecond}
	b := ErrorTerms{C: 44, D: 9250 * time.Microsecond}
	got := a.Add(b)
	if got.C != 144 || got.D != 11250*time.Microsecond {
		t.Fatalf("Add = %v", got)
	}
	if s := Sum(a, b, ErrorTerms{}); s != got {
		t.Fatalf("Sum = %v, want %v", s, got)
	}
	if s := Sum(); s.C != 0 || s.D != 0 {
		t.Fatalf("empty Sum = %v, want zero", s)
	}
}

func TestDelayBoundHighRateRegime(t *testing.T) {
	// R >= p: bound = (M + C)/R + D. Paper numbers: M=176, C=144,
	// x_4 = 11.25 ms, R = 12.8 kB/s -> 320/12800 s + 11.25 ms = 36.25 ms.
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	got, err := DelayBound(spec, 12800, terms)
	if err != nil {
		t.Fatalf("DelayBound: %v", err)
	}
	want := 36250 * time.Microsecond
	if got != want {
		t.Fatalf("DelayBound = %v, want %v", got, want)
	}
}

func TestDelayBoundAtTokenRate(t *testing.T) {
	// R = r = 8.8 kB/s: bound = 320/8800 s + 11.25 ms ~= 47.614 ms. This
	// is the paper's "never exceeded" bound for the lowest-priority flow.
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	got, err := MaxDelayBound(spec, terms)
	if err != nil {
		t.Fatalf("MaxDelayBound: %v", err)
	}
	fluid := 320.0 / 8800.0
	want := time.Duration(fluid*float64(time.Second)) + 11250*time.Microsecond
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("MaxDelayBound = %v, want %v", got, want)
	}
	if got < 47*time.Millisecond || got > 48*time.Millisecond {
		t.Fatalf("MaxDelayBound = %v, want ~47.6ms per the paper", got)
	}
}

func TestDelayBoundPeakRegime(t *testing.T) {
	// p > R >= r engages the burst term. Constructed example:
	// p=2000, r=1000, b=3000, M=1000, C=0, D=0, R=1500:
	// (b-M)/R*(p-R)/(p-r) + M/R = (2000/1500)*(500/1000) + 1000/1500
	//   = 0.6667 + 0.6667 = 1.3333 s.
	spec := tspec.TSpec{PeakRate: 2000, TokenRate: 1000, BucketSize: 3000, MinPolicedUnit: 1, MaxTransferUnit: 1000}
	got, err := DelayBound(spec, 1500, ErrorTerms{})
	if err != nil {
		t.Fatalf("DelayBound: %v", err)
	}
	twoThirdsTwice := 4.0 / 3.0
	want := time.Duration(twoThirdsTwice * float64(time.Second))
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("DelayBound = %v, want %v", got, want)
	}
}

func TestDelayBoundContinuousAtPeak(t *testing.T) {
	// The two regimes must agree at R = p.
	spec := tspec.TSpec{PeakRate: 2000, TokenRate: 1000, BucketSize: 3000, MinPolicedUnit: 1, MaxTransferUnit: 1000}
	atPeak, err := DelayBound(spec, spec.PeakRate, ErrorTerms{C: 50, D: time.Millisecond})
	if err != nil {
		t.Fatalf("DelayBound: %v", err)
	}
	justBelow, err := DelayBound(spec, spec.PeakRate-0.001, ErrorTerms{C: 50, D: time.Millisecond})
	if err != nil {
		t.Fatalf("DelayBound: %v", err)
	}
	if diff := justBelow - atPeak; diff < 0 || diff > 10*time.Microsecond {
		t.Fatalf("bound discontinuous at R=p: %v vs %v", justBelow, atPeak)
	}
}

func TestDelayBoundErrors(t *testing.T) {
	spec := paperSpec()
	if _, err := DelayBound(spec, spec.TokenRate-1, ErrorTerms{}); !errors.Is(err, ErrRateBelowTokenRate) {
		t.Fatalf("DelayBound below r: err = %v", err)
	}
	bad := spec
	bad.TokenRate = -1
	if _, err := DelayBound(bad, 1000, ErrorTerms{}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("DelayBound invalid spec: err = %v", err)
	}
}

func TestRequiredRatePaperNumbers(t *testing.T) {
	// Inverse of TestDelayBoundHighRateRegime: a 36.25 ms target with
	// x=11.25 ms needs exactly R = 12.8 kB/s.
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	got, err := RequiredRate(spec, 36250*time.Microsecond, terms)
	if err != nil {
		t.Fatalf("RequiredRate: %v", err)
	}
	if math.Abs(got-12800) > 0.01 {
		t.Fatalf("RequiredRate = %v, want 12800", got)
	}
}

func TestRequiredRateLooseTargetReturnsTokenRate(t *testing.T) {
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	got, err := RequiredRate(spec, time.Second, terms)
	if err != nil {
		t.Fatalf("RequiredRate: %v", err)
	}
	if got != spec.TokenRate {
		t.Fatalf("RequiredRate = %v, want token rate %v", got, spec.TokenRate)
	}
}

func TestRequiredRateUnachievable(t *testing.T) {
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	if _, err := RequiredRate(spec, 11250*time.Microsecond, terms); !errors.Is(err, ErrUnachievableDelay) {
		t.Fatalf("target == Dtot should be unachievable, err = %v", err)
	}
	if _, err := RequiredRate(spec, time.Millisecond, terms); !errors.Is(err, ErrUnachievableDelay) {
		t.Fatalf("target < Dtot should be unachievable, err = %v", err)
	}
}

func TestRequiredRateMidRegime(t *testing.T) {
	// Force a solution with r < R < p and verify round-tripping.
	spec := tspec.TSpec{PeakRate: 20000, TokenRate: 1000, BucketSize: 5000, MinPolicedUnit: 1, MaxTransferUnit: 500}
	terms := ErrorTerms{C: 100, D: 2 * time.Millisecond}
	target := 2 * time.Second
	rate, err := RequiredRate(spec, target, terms)
	if err != nil {
		t.Fatalf("RequiredRate: %v", err)
	}
	if rate < spec.TokenRate || rate > spec.PeakRate {
		t.Fatalf("RequiredRate = %v outside [r,p]", rate)
	}
	bound, err := DelayBound(spec, rate, terms)
	if err != nil {
		t.Fatalf("DelayBound: %v", err)
	}
	if bound > target+time.Microsecond {
		t.Fatalf("bound %v exceeds target %v at computed rate", bound, target)
	}
}

// TestPropertyDelayBoundMonotoneInRate: a higher reservation never worsens
// the bound.
func TestPropertyDelayBoundMonotoneInRate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng)
		terms := ErrorTerms{C: float64(rng.Intn(500)), D: time.Duration(rng.Intn(20)) * time.Millisecond}
		r1 := spec.TokenRate * (1 + rng.Float64()*3)
		r2 := r1 * (1 + rng.Float64()*2)
		d1, err1 := DelayBound(spec, r1, terms)
		d2, err2 := DelayBound(spec, r2, terms)
		if err1 != nil || err2 != nil {
			return false
		}
		return d2 <= d1+time.Microsecond
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRequiredRateAchievesTarget: the rate returned by RequiredRate
// always yields a bound within the target (round trip through DelayBound).
func TestPropertyRequiredRateAchievesTarget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng)
		terms := ErrorTerms{C: float64(rng.Intn(500)), D: time.Duration(rng.Intn(10)) * time.Millisecond}
		minBound, err := DelayBound(spec, spec.PeakRate*10, terms)
		if err != nil {
			return false
		}
		target := minBound + time.Duration(1+rng.Intn(100))*time.Millisecond
		rate, err := RequiredRate(spec, target, terms)
		if err != nil {
			return false
		}
		if rate < spec.TokenRate {
			return false
		}
		bound, err := DelayBound(spec, rate, terms)
		if err != nil {
			return false
		}
		return bound <= target+10*time.Microsecond
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRequiredRateIsMinimal: a slightly smaller rate (when still
// legal) violates the target, i.e. the returned rate is not wastefully high.
func TestPropertyRequiredRateIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := randomSpec(rng)
		terms := ErrorTerms{C: float64(rng.Intn(200)), D: time.Duration(rng.Intn(5)) * time.Millisecond}
		minBound, err := DelayBound(spec, spec.PeakRate*10, terms)
		if err != nil {
			return false
		}
		target := minBound + time.Duration(1+rng.Intn(50))*time.Millisecond
		rate, err := RequiredRate(spec, target, terms)
		if err != nil {
			return false
		}
		if rate <= spec.TokenRate {
			return true // already at the legal minimum; nothing to check
		}
		smaller := rate * 0.98
		if smaller < spec.TokenRate {
			return true
		}
		bound, err := DelayBound(spec, smaller, terms)
		if err != nil {
			return false
		}
		return bound > target-50*time.Microsecond
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomSpec(rng *rand.Rand) tspec.TSpec {
	r := float64(1000 + rng.Intn(20000))
	p := r * (1 + rng.Float64()*4)
	mtu := 100 + rng.Intn(1000)
	b := float64(mtu) * (1 + rng.Float64()*5)
	return tspec.TSpec{
		PeakRate:        p,
		TokenRate:       r,
		BucketSize:      b,
		MinPolicedUnit:  1 + rng.Intn(mtu),
		MaxTransferUnit: mtu,
	}
}

func BenchmarkDelayBound(b *testing.B) {
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DelayBound(spec, 12800, terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequiredRate(b *testing.B) {
	spec := paperSpec()
	terms := paperTerms(11250 * time.Microsecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RequiredRate(spec, 40*time.Millisecond, terms); err != nil {
			b.Fatal(err)
		}
	}
}
