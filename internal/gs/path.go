package gs

import (
	"fmt"
	"strings"
	"time"

	"bluegs/internal/tspec"
)

// Element is one network element on a Guaranteed Service path, identified
// for reporting and carrying its exported error terms. A paper-style
// Bluetooth piconet is one such element (C = eta_min, D = x); a flow
// crossing several piconets of a scatternet, or a piconet plus a wired
// backbone, accumulates terms per RFC 2212.
type Element struct {
	// Name identifies the element in reports.
	Name string
	// Terms is the element's exported (C, D) pair.
	Terms ErrorTerms
}

// Path is an ordered sequence of Guaranteed Service elements between a
// source and a destination. The zero value is an empty path ready to use.
type Path struct {
	elements []Element
}

// Append adds an element at the end of the path and returns the path for
// chaining.
func (p *Path) Append(name string, terms ErrorTerms) *Path {
	p.elements = append(p.elements, Element{Name: name, Terms: terms})
	return p
}

// Len returns the number of elements.
func (p *Path) Len() int { return len(p.elements) }

// Elements returns a copy of the path's elements.
func (p *Path) Elements() []Element {
	return append([]Element(nil), p.elements...)
}

// Terms returns the accumulated (Ctot, Dtot) along the path.
func (p *Path) Terms() ErrorTerms {
	var tot ErrorTerms
	for _, e := range p.elements {
		tot = tot.Add(e.Terms)
	}
	return tot
}

// DelayBound returns the end-to-end delay bound for a flow served at the
// given rate across every element of the path.
func (p *Path) DelayBound(spec tspec.TSpec, rate float64) (time.Duration, error) {
	return DelayBound(spec, rate, p.Terms())
}

// RequiredRate returns the minimum reservation achieving the target bound
// across the whole path.
func (p *Path) RequiredRate(spec tspec.TSpec, target time.Duration) (float64, error) {
	return RequiredRate(spec, target, p.Terms())
}

// Slack returns the RFC 2212 slack term available when the path is
// reserved at the given rate against the given target: the difference
// between the target and the achieved bound (negative when the target is
// missed). Downstream elements may consume slack to relax their own
// reservations.
func (p *Path) Slack(spec tspec.TSpec, rate float64, target time.Duration) (time.Duration, error) {
	bound, err := p.DelayBound(spec, rate)
	if err != nil {
		return 0, err
	}
	return target - bound, nil
}

// String renders e.g. "piconet-A(C=144.0B, D=11.25ms) -> backbone(C=0.0B, D=2ms)".
func (p *Path) String() string {
	parts := make([]string, 0, len(p.elements))
	for _, e := range p.elements {
		parts = append(parts, fmt.Sprintf("%s%v", e.Name, e.Terms))
	}
	return strings.Join(parts, " -> ")
}
