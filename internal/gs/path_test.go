package gs

import (
	"strings"
	"testing"
	"time"

	"bluegs/internal/tspec"
)

func TestPathAccumulatesTerms(t *testing.T) {
	var p Path
	p.Append("piconet-A", ErrorTerms{C: 144, D: 11250 * time.Microsecond}).
		Append("backbone", ErrorTerms{C: 0, D: 2 * time.Millisecond}).
		Append("piconet-B", ErrorTerms{C: 144, D: 3750 * time.Microsecond})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	tot := p.Terms()
	if tot.C != 288 || tot.D != 17*time.Millisecond {
		t.Fatalf("Terms = %v", tot)
	}
	if got := len(p.Elements()); got != 3 {
		t.Fatalf("Elements = %d", got)
	}
}

func TestPathDelayBoundMatchesManualComposition(t *testing.T) {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	var p Path
	p.Append("hop1", ErrorTerms{C: 144, D: 11250 * time.Microsecond})
	p.Append("hop2", ErrorTerms{C: 144, D: 3750 * time.Microsecond})
	got, err := p.DelayBound(spec, 12800)
	if err != nil {
		t.Fatalf("DelayBound: %v", err)
	}
	want, err := DelayBound(spec, 12800, ErrorTerms{C: 288, D: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("path bound %v != manual %v", got, want)
	}
	// Two hops cost strictly more than one.
	one, err := DelayBound(spec, 12800, ErrorTerms{C: 144, D: 11250 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if got <= one {
		t.Fatalf("two-hop bound %v <= one-hop %v", got, one)
	}
}

func TestPathRequiredRateRoundTrip(t *testing.T) {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	var p Path
	p.Append("hop1", ErrorTerms{C: 144, D: 5 * time.Millisecond})
	p.Append("hop2", ErrorTerms{C: 144, D: 5 * time.Millisecond})
	target := 45 * time.Millisecond
	rate, err := p.RequiredRate(spec, target)
	if err != nil {
		t.Fatalf("RequiredRate: %v", err)
	}
	bound, err := p.DelayBound(spec, rate)
	if err != nil {
		t.Fatal(err)
	}
	if bound > target+time.Microsecond {
		t.Fatalf("bound %v exceeds target %v", bound, target)
	}
}

func TestPathSlack(t *testing.T) {
	spec := tspec.CBR(20*time.Millisecond, 144, 176)
	var p Path
	p.Append("hop", ErrorTerms{C: 144, D: 11250 * time.Microsecond})
	// Bound at R=12800 is 36.25 ms; a 50 ms target leaves 13.75 ms slack.
	slack, err := p.Slack(spec, 12800, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("Slack: %v", err)
	}
	if slack != 13750*time.Microsecond {
		t.Fatalf("Slack = %v, want 13.75ms", slack)
	}
	// A missed target yields negative slack.
	slack, err = p.Slack(spec, 12800, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if slack >= 0 {
		t.Fatalf("Slack = %v, want negative", slack)
	}
}

func TestPathString(t *testing.T) {
	var p Path
	p.Append("a", ErrorTerms{C: 1, D: time.Millisecond})
	p.Append("b", ErrorTerms{})
	s := p.String()
	if !strings.Contains(s, "a(") || !strings.Contains(s, " -> b(") {
		t.Fatalf("String = %q", s)
	}
	var empty Path
	if empty.String() != "" {
		t.Fatalf("empty path String = %q", empty.String())
	}
}
