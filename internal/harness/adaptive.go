package harness

import (
	"errors"
	"fmt"
	"math"

	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// Errors returned by the adaptive executor.
var (
	ErrNoMetric    = errors.New("harness: adaptive execution needs a metric")
	ErrNoTolerance = errors.New("harness: adaptive execution needs a relative or absolute CI tolerance")
)

// DefaultMaxReps is the adaptive replication cap applied when
// AdaptiveOptions.MaxReps is zero (callers rendering the cap in titles
// use it too).
const DefaultMaxReps = 32

// Metric maps a completed run to the scalar the adaptive stopping rule
// watches. Metrics must be pure functions of the result so adaptive
// replication stays deterministic.
type Metric struct {
	// Name identifies the metric in flags and reports.
	Name string
	// Eval extracts the per-run value.
	Eval func(*scenario.Result) float64
}

// MeanGSDelay is the delivered-packet-weighted mean delay of the
// Guaranteed Service flows, in seconds — the paper's delay-guarantee
// curves are Monte-Carlo estimates of exactly this kind of quantity.
var MeanGSDelay = Metric{Name: "gs-delay", Eval: func(r *scenario.Result) float64 {
	var weighted float64
	var delivered uint64
	for _, f := range r.Flows {
		if f.Class != piconet.Guaranteed || f.Delivered == 0 {
			continue
		}
		weighted += f.DelayMean.Seconds() * float64(f.Delivered)
		delivered += f.Delivered
	}
	if delivered == 0 {
		return 0
	}
	return weighted / float64(delivered)
}}

// ViolationFraction is the fraction of Guaranteed Service flows whose
// measured maximum delay exceeded the exported bound (0 for a correct
// scheduler; its confidence interval quantifies how sure the sweep is).
var ViolationFraction = Metric{Name: "violations", Eval: func(r *scenario.Result) float64 {
	gs := 0
	for _, f := range r.Flows {
		if f.Class == piconet.Guaranteed {
			gs++
		}
	}
	if gs == 0 {
		return 0
	}
	return float64(len(r.BoundViolations())) / float64(gs)
}}

// GSThroughput is the total delivered Guaranteed Service rate in kbps.
var GSThroughput = Metric{Name: "gs-kbps", Eval: func(r *scenario.Result) float64 {
	return r.TotalKbps(piconet.Guaranteed)
}}

// BEThroughput is the total delivered best-effort rate in kbps (the
// natural target for the BE-only poller comparison).
var BEThroughput = Metric{Name: "be-kbps", Eval: func(r *scenario.Result) float64 {
	return r.TotalKbps(piconet.BestEffort)
}}

// MetricByName resolves a metric from its flag spelling.
func MetricByName(name string) (Metric, error) {
	for _, m := range []Metric{MeanGSDelay, ViolationFraction, GSThroughput, BEThroughput} {
		if m.Name == name {
			return m, nil
		}
	}
	return Metric{}, fmt.Errorf("harness: unknown CI metric %q (want gs-delay, violations, gs-kbps or be-kbps)", name)
}

// AdaptiveOptions tunes ExecuteAdaptive: the execution options of the
// underlying batches plus the confidence-driven stopping rule.
type AdaptiveOptions struct {
	Options
	// Metric is the per-run scalar the stopping rule watches (required).
	Metric Metric
	// RelTol stops a cell once the 95% CI half-width of the metric mean
	// is at most RelTol*|mean|. AbsTol is the absolute variant (in
	// metric units); either alone suffices, and whichever is met first
	// stops the cell. At least one must be positive.
	RelTol float64
	AbsTol float64
	// MinReps is the least number of replications per cell before the
	// rule may stop it (default 3; at least 2 are needed for any CI).
	MinReps int
	// MaxReps caps the replications per cell (default DefaultMaxReps).
	// A cell that reaches the cap stops with Converged=false.
	MaxReps int
	// Batch is the number of further replications scheduled per round
	// for every unconverged cell (default 4). It is deliberately
	// independent of Workers: batch composition — and therefore the
	// per-cell replication count — depends only on simulation results,
	// which is what keeps adaptive sweeps bit-identical at any worker
	// count.
	Batch int
	// OnRound, when set, is called after every completed round with the
	// round number, the number of still-unconverged cells and the total
	// runs executed so far.
	OnRound func(round, activeCells, totalRuns int)
}

// WithDefaults returns the options with the documented defaults filled
// in (MinReps 3, MaxReps DefaultMaxReps, Batch 4). Exported because the
// fabric coordinator mirrors ExecuteAdaptive's checkpoint schedule and
// must resolve the identical effective knobs.
func (o AdaptiveOptions) WithDefaults() AdaptiveOptions {
	if o.MinReps < 2 {
		o.MinReps = 3
	}
	if o.MaxReps <= 0 {
		o.MaxReps = DefaultMaxReps
	}
	if o.MaxReps < o.MinReps {
		o.MaxReps = o.MinReps
	}
	if o.Batch <= 0 {
		o.Batch = 4
	}
	return o
}

// CellOutcome is the adaptive result of one grid cell.
type CellOutcome struct {
	// Cell names the grid point.
	Cell string
	// Runs holds every executed replication, in replication order.
	Runs []RunResult
	// Metric summarises the stopping metric across the replications;
	// Metric.CI95 is the final half-width the rule compared against the
	// tolerance.
	Metric stats.Summary
	// Converged reports that the tolerance was met (false: the cell
	// stopped at MaxReps).
	Converged bool
	// CacheHits counts replications served from the run cache.
	CacheHits int
}

// Reps returns the number of replications the cell used.
func (o CellOutcome) Reps() int { return len(o.Runs) }

// ConvergedAt reports whether a metric summary meets the stopping
// tolerance. It is a pure function of the summary, which is what makes
// the stopping rule — and therefore per-cell replication counts —
// identical wherever it is evaluated: in-process rounds or a fabric
// coordinator folding worker results.
func (o AdaptiveOptions) ConvergedAt(s stats.Summary) bool {
	if s.N < 2 {
		return false
	}
	if o.AbsTol > 0 && s.CI95 <= o.AbsTol {
		return true
	}
	return o.RelTol > 0 && s.CI95 <= o.RelTol*math.Abs(s.Mean)
}

// ExecuteAdaptive runs the grid with adaptive replication: every cell
// keeps receiving further independently seeded replications (in
// deterministic replication order, batched across the worker pool) until
// the 95% confidence half-width of its metric mean drops below the
// tolerance or the replication cap is reached. Outcomes are returned in
// grid cell order.
//
// Determinism: replication seeds derive from (cfg.Seed, rep) exactly as
// in fixed sweeps, batch sizes are worker-independent, and the stopping
// rule is a pure function of completed results — so per-cell replication
// counts, metric summaries and any tables rendered from them are
// bit-identical at any worker count, and a warmed cache replays the
// identical outcome without executing the simulator.
//
// The returned error is the first failing run in grid order, with the
// partial outcomes still returned.
func ExecuteAdaptive(g Grid, cfg SweepConfig, opts AdaptiveOptions) ([]CellOutcome, error) {
	return ExecuteAdaptiveWith(Execute, g, cfg, opts)
}

// ExecuteAdaptiveWith is ExecuteAdaptive over a pluggable batch executor.
// The fabric coordinator (internal/fabric) passes its lease-based Execute
// here, so the adaptive scheduling loop — batch composition, the stopping
// rule, the per-cell replication counts — is the *same code* in-process
// and distributed; only where each batch's runs execute differs. That is
// the structural form of the determinism contract: an unconverged cell's
// next rep-batch is leased out like any other work, which is exactly the
// work-stealing rule for hot cells.
func ExecuteAdaptiveWith(execute func([]Run, Options) ([]RunResult, error),
	g Grid, cfg SweepConfig, opts AdaptiveOptions) ([]CellOutcome, error) {
	if opts.Metric.Eval == nil {
		return nil, ErrNoMetric
	}
	if opts.RelTol <= 0 && opts.AbsTol <= 0 {
		return nil, ErrNoTolerance
	}
	cfg = cfg.WithDefaults()
	opts = opts.WithDefaults()

	outcomes := make([]CellOutcome, len(g.Cells))
	active := make([]int, 0, len(g.Cells))
	for i, cell := range g.Cells {
		outcomes[i].Cell = cell
		active = append(active, i)
	}
	totalRuns := 0
	for round := 0; len(active) > 0; round++ {
		// Schedule one batch of further replications per active cell.
		var runs []Run
		counts := make([]int, 0, len(active))
		for _, ci := range active {
			done := len(outcomes[ci].Runs)
			n := opts.Batch
			if done < opts.MinReps {
				// The first round reaches exactly MinReps, so a cell
				// whose metric is already tight stops as early as the
				// rule allows.
				n = opts.MinReps - done
			}
			if done+n > opts.MaxReps {
				n = opts.MaxReps - done
			}
			counts = append(counts, n)
			for rep := done; rep < done+n; rep++ {
				runs = append(runs, g.Run(cfg, len(runs), outcomes[ci].Cell, rep))
			}
		}
		results, err := execute(runs, opts.Options)
		totalRuns += len(runs)

		// Fold the batch into the outcomes and re-evaluate the rule.
		idx := 0
		next := active[:0]
		for k, ci := range active {
			o := &outcomes[ci]
			o.Runs = append(o.Runs, results[idx:idx+counts[k]]...)
			idx += counts[k]
			var w stats.Welford
			o.CacheHits = 0
			for _, r := range o.Runs {
				if r.CacheHit {
					o.CacheHits++
				}
				if r.Err == nil && r.Result != nil {
					w.Add(opts.Metric.Eval(r.Result))
				}
			}
			o.Metric = w.Summary()
			o.Converged = len(o.Runs) >= opts.MinReps && opts.ConvergedAt(o.Metric)
			if !o.Converged && len(o.Runs) < opts.MaxReps {
				next = append(next, ci)
			}
		}
		if err != nil {
			return outcomes, err
		}
		active = next
		if opts.OnRound != nil {
			opts.OnRound(round, len(active), totalRuns)
		}
	}
	return outcomes, nil
}
