package harness_test

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"bluegs/internal/harness"
)

func adaptiveFixture() (harness.Grid, harness.SweepConfig, harness.AdaptiveOptions) {
	g := harness.Fig5Grid([]time.Duration{30 * time.Millisecond, 40 * time.Millisecond})
	cfg := harness.SweepConfig{Duration: 2 * time.Second, Seed: 1}
	opts := harness.AdaptiveOptions{
		Metric:  harness.BEThroughput,
		RelTol:  0.05,
		MaxReps: 16,
	}
	return g, cfg, opts
}

func TestExecuteAdaptiveConverges(t *testing.T) {
	g, cfg, opts := adaptiveFixture()
	outcomes, err := harness.ExecuteAdaptive(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Converged {
			t.Fatalf("cell %s did not converge in %d reps (ci %v of mean %v)",
				o.Cell, o.Reps(), o.Metric.CI95, o.Metric.Mean)
		}
		if o.Reps() < 3 || o.Reps() > opts.MaxReps {
			t.Fatalf("cell %s used %d reps outside [3,%d]", o.Cell, o.Reps(), opts.MaxReps)
		}
		if o.Metric.N != o.Reps() {
			t.Fatalf("cell %s aggregated %d of %d reps", o.Cell, o.Metric.N, o.Reps())
		}
		if o.Metric.CI95 > opts.RelTol*o.Metric.Mean {
			t.Fatalf("cell %s claims convergence at half-width %v, mean %v",
				o.Cell, o.Metric.CI95, o.Metric.Mean)
		}
		for rep, r := range o.Runs {
			if r.Run.Rep != rep {
				t.Fatalf("cell %s rep order broken at %d", o.Cell, rep)
			}
			if r.Run.Spec.Seed != harness.ReplicationSeed(cfg.Seed, rep) {
				t.Fatalf("cell %s rep %d seed not derived deterministically", o.Cell, rep)
			}
		}
	}
}

// TestExecuteAdaptiveDeterministicAcrossWorkers: the satellite acceptance
// test — per-cell replication counts and metric summaries are
// bit-identical at every worker count.
func TestExecuteAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	g, cfg, opts := adaptiveFixture()
	type snapshot struct {
		reps    []int
		metrics []float64
		runs    [][]string
	}
	var base *snapshot
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		opts.Workers = workers
		outcomes, err := harness.ExecuteAdaptive(g, cfg, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &snapshot{}
		for _, o := range outcomes {
			got.reps = append(got.reps, o.Reps())
			got.metrics = append(got.metrics, o.Metric.Mean, o.Metric.CI95, o.Metric.Min, o.Metric.Max)
			got.runs = append(got.runs, fingerprint(t, o.Runs))
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, base)
		}
	}
}

// TestExecuteAdaptiveWarmCache: replaying an adaptive sweep against a
// warmed cache executes zero simulator runs and reproduces every outcome
// exactly.
func TestExecuteAdaptiveWarmCache(t *testing.T) {
	g, cfg, opts := adaptiveFixture()
	cache, err := harness.NewRunCache(harness.CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache
	cold, err := harness.ExecuteAdaptive(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := harness.ExecuteAdaptive(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range warm {
		if o.CacheHits != o.Reps() {
			t.Fatalf("cell %s: %d of %d reps simulated despite a warm cache",
				o.Cell, o.Reps()-o.CacheHits, o.Reps())
		}
		if o.Reps() != cold[i].Reps() || o.Metric != cold[i].Metric || o.Converged != cold[i].Converged {
			t.Fatalf("cell %s warm outcome drifted: %+v vs %+v", o.Cell, o.Metric, cold[i].Metric)
		}
		if got, want := fingerprint(t, o.Runs), fingerprint(t, cold[i].Runs); !reflect.DeepEqual(got, want) {
			t.Fatalf("cell %s warm results drifted", o.Cell)
		}
	}
}

// TestExecuteAdaptiveRepCap: an unreachable tolerance stops at MaxReps
// with Converged=false. The GS delay metric is used because it genuinely
// varies across seeds (BE throughput can be zero-variance on short
// horizons, which would converge legitimately).
func TestExecuteAdaptiveRepCap(t *testing.T) {
	g, cfg, opts := adaptiveFixture()
	opts.Metric = harness.MeanGSDelay
	opts.RelTol = 1e-12
	opts.MaxReps = 5
	outcomes, err := harness.ExecuteAdaptive(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Converged {
			t.Fatalf("cell %s converged below an impossible tolerance", o.Cell)
		}
		if o.Reps() != 5 {
			t.Fatalf("cell %s ran %d reps, want the cap 5", o.Cell, o.Reps())
		}
	}
}

// TestExecuteAdaptiveConstantMetricConverges: a zero-variance metric (the
// violation fraction of a correct scheduler) stops at MinReps.
func TestExecuteAdaptiveConstantMetricConverges(t *testing.T) {
	g, cfg, opts := adaptiveFixture()
	opts.Metric = harness.ViolationFraction
	outcomes, err := harness.ExecuteAdaptive(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.Converged || o.Reps() != 3 {
			t.Fatalf("cell %s: converged=%t after %d reps, want MinReps=3", o.Cell, o.Converged, o.Reps())
		}
		if o.Metric.Mean != 0 {
			t.Fatalf("cell %s violated bounds: %v", o.Cell, o.Metric.Mean)
		}
	}
}

func TestExecuteAdaptiveValidation(t *testing.T) {
	g, cfg, opts := adaptiveFixture()
	bad := opts
	bad.Metric = harness.Metric{}
	if _, err := harness.ExecuteAdaptive(g, cfg, bad); !errors.Is(err, harness.ErrNoMetric) {
		t.Fatalf("err = %v, want ErrNoMetric", err)
	}
	bad = opts
	bad.RelTol, bad.AbsTol = 0, 0
	if _, err := harness.ExecuteAdaptive(g, cfg, bad); !errors.Is(err, harness.ErrNoTolerance) {
		t.Fatalf("err = %v, want ErrNoTolerance", err)
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"gs-delay", "violations", "gs-kbps", "be-kbps"} {
		m, err := harness.MetricByName(name)
		if err != nil || m.Eval == nil {
			t.Fatalf("metric %q: %v", name, err)
		}
	}
	if _, err := harness.MetricByName("nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
