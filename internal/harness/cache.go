package harness

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/segmentation"
)

// DefaultCacheSalt is the code-version salt folded into every run
// fingerprint. Bump it in any PR that changes simulation semantics (the
// kernel, the scheduler, admission, traffic timing, …): the new salt
// invalidates every previously cached result at once, so a stale disk
// cache can never replay results the current code would not produce.
// sim-v5: scatternet engine (multi-piconet specs, canonical rendering
// v3 with piconet arrays + interference parameters, per-piconet cached
// results) — cached single-piconet results can never alias scatternet
// runs.
// sim-v6: interference-aware admission (canonical rendering v4 with the
// derating knobs, re-derate on churn, retry-budget error terms) — derated
// runs can never replay results computed without the derating path.
// sim-v7: fault injection and self-healing (link-outage gating in the
// piconet engine, supervision timeouts, degrade/handoff recovery,
// master crashes, flow fates in results) — pre-fault cached results can
// never replay runs the fault-aware engine would produce, and the new
// on-disk footer format invalidates footerless entries wholesale.
// sim-v8: bridge nodes and end-to-end routes (residency-gated polls and
// scheduling, store-and-forward hop handoff, per-hop budget-split
// admission with duty-cycle derating, renegotiate_flow, route results) —
// pre-bridge cached results can never replay runs the route-aware runner
// would produce.
const DefaultCacheSalt = "sim-v8"

// CacheConfig tunes a RunCache.
type CacheConfig struct {
	// Dir, when non-empty, backs the cache with one gob file per run
	// under this directory (created if missing). Entries evicted from
	// the in-memory LRU remain readable from disk.
	Dir string
	// MaxEntries bounds the in-memory LRU (default 4096 results).
	MaxEntries int
	// Salt is the code-version salt (default DefaultCacheSalt). Sweeps
	// that want isolated namespaces in a shared directory may extend it.
	Salt string
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
// Its String rendering is the one line the cmd tools print on stderr and
// the CI cache smoke step greps.
type CacheStats struct {
	// Hits counts Get calls served (memory or disk); DiskHits the subset
	// that had to be read back from the directory.
	Hits     uint64
	DiskHits uint64
	// Misses counts Get calls that found nothing.
	Misses uint64
	// Stores counts Put calls accepted.
	Stores uint64
	// Corrupt counts on-disk entries whose integrity footer failed
	// verification; each was deleted and its Get served as a miss (so the
	// fresh result rewrites the entry).
	Corrupt uint64
}

// String renders the counters as "H/T runs served from cache (D from
// disk, S stored)". Corruption drops are appended only when they
// happened, keeping the healthy-cache line byte-stable for log greps.
func (s CacheStats) String() string {
	out := fmt.Sprintf("%d/%d runs served from cache (%d from disk, %d stored)",
		s.Hits, s.Hits+s.Misses, s.DiskHits, s.Stores)
	if s.Corrupt > 0 {
		out += fmt.Sprintf(", %d corrupt dropped", s.Corrupt)
	}
	return out
}

// RunCache is a content-addressed store of completed simulation results,
// keyed by the SHA-256 fingerprint of (scenario spec incl. seed and
// horizon, code-version salt). A fixed-size in-memory LRU fronts an
// optional on-disk gob store, so re-running a sweep after changing one
// cell — or re-rendering reports — replays the unchanged cells instantly,
// across processes when a directory is configured.
//
// Cached results are shared: callers must treat them as read-only, which
// matches the contract scenario.Result already states for its delay
// statistics. Runs that carry a Tracer are never served from or written
// to the cache (their side effects cannot be replayed).
type RunCache struct {
	cfg CacheConfig

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	key string
	res *scenario.Result
}

// cacheRecord is the on-disk form of a result: everything scenario.Result
// carries except the Spec, which the cache re-attaches from the request
// on every hit (the spec contains interface-valued fields and is, by
// construction of the key, already known to the caller).
type cacheRecord struct {
	Key        string
	Elapsed    time.Duration
	Events     uint64
	Flows      []scenario.FlowResult
	Slaves     map[piconet.SlaveID]float64
	SCO        map[piconet.SlaveID]float64
	Slots      piconet.SlotAccount
	GSPolls    uint64
	BEPolls    uint64
	Skipped    uint64
	Admit      []*admission.PlannedFlow
	Admissions []scenario.AdmissionRecord
	// Piconets carries the per-piconet results of scatternet runs (one
	// entry for flat single-piconet specs).
	Piconets []scenario.PiconetResult
	// Routes carries the end-to-end results of bridged multi-hop flows.
	Routes []scenario.RouteResult
}

func init() {
	// Concrete segmentation policies may travel inside
	// admission.Request.Policy interface fields.
	gob.Register(segmentation.BestFit{})
	gob.Register(segmentation.GreedyLargest{})
}

// NewRunCache creates a cache; when cfg.Dir is set the directory is
// created eagerly so configuration errors surface before a sweep starts.
func NewRunCache(cfg CacheConfig) (*RunCache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.Salt == "" {
		cfg.Salt = DefaultCacheSalt
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: cache dir: %w", err)
		}
	}
	return &RunCache{
		cfg:     cfg,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}, nil
}

// Key returns the content address of a run: the SHA-256 over the cache
// salt and the spec's canonical rendering, hex encoded.
func (c *RunCache) Key(spec scenario.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "bluegs/run\n%s\n%s", c.cfg.Salt, spec.Canonical())
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the cached result of the spec, if present, with the spec
// re-attached. The in-memory LRU is consulted first, then the directory.
func (c *RunCache) Get(spec scenario.Spec) (*scenario.Result, bool) {
	return c.getByKey(c.Key(spec), spec)
}

// getByKey is Get with a precomputed key: the executor hashes the spec
// once, before the simulation runs, so a stateful Radio model mutated by
// the run cannot skew the store key away from the lookup key.
func (c *RunCache) getByKey(key string, spec scenario.Spec) (*scenario.Result, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.stats.Hits++
		c.mu.Unlock()
		return withSpec(res, spec), true
	}
	c.mu.Unlock()

	if c.cfg.Dir == "" {
		c.miss()
		return nil, false
	}
	res, err := c.readDisk(key)
	if err != nil {
		c.miss()
		return nil, false
	}
	c.mu.Lock()
	c.insertLocked(key, res)
	c.stats.Hits++
	c.stats.DiskHits++
	c.mu.Unlock()
	return withSpec(res, spec), true
}

// Put stores a completed result under the spec's key, in memory and — when
// a directory is configured — on disk (written atomically via a temp file).
func (c *RunCache) Put(spec scenario.Spec, res *scenario.Result) error {
	return c.putByKey(c.Key(spec), res)
}

// putByKey is Put with a precomputed key (see getByKey).
func (c *RunCache) putByKey(key string, res *scenario.Result) error {
	if res == nil {
		return nil
	}
	c.mu.Lock()
	c.insertLocked(key, res)
	c.stats.Stores++
	c.mu.Unlock()
	if c.cfg.Dir == "" {
		return nil
	}
	return c.writeDisk(key, res)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *RunCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *RunCache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

func (c *RunCache) insertLocked(key string, res *scenario.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cfg.MaxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *RunCache) path(key string) string {
	return filepath.Join(c.cfg.Dir, key+".run.gob")
}

// The on-disk entry layout is gob payload followed by a fixed integrity
// footer: magic, payload length and payload CRC-32 (IEEE). A truncated
// copy, a partial write that survived a crash, or bit rot all fail the
// footer check; the entry is then deleted and the lookup degrades to a
// miss, so the fresh result rewrites it.
const cacheFooterMagic = "BGC1"

const cacheFooterSize = len(cacheFooterMagic) + 8

// cacheFooter renders the footer for a payload.
func cacheFooter(payload []byte) []byte {
	f := make([]byte, cacheFooterSize)
	copy(f, cacheFooterMagic)
	binary.LittleEndian.PutUint32(f[len(cacheFooterMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[len(cacheFooterMagic)+4:], crc32.ChecksumIEEE(payload))
	return f
}

// checkFooter verifies a raw entry and returns its gob payload.
func checkFooter(data []byte) ([]byte, error) {
	if len(data) < cacheFooterSize {
		return nil, fmt.Errorf("harness: cache entry truncated (%d bytes)", len(data))
	}
	payload, f := data[:len(data)-cacheFooterSize], data[len(data)-cacheFooterSize:]
	if string(f[:len(cacheFooterMagic)]) != cacheFooterMagic {
		return nil, fmt.Errorf("harness: cache entry missing integrity footer")
	}
	if n := binary.LittleEndian.Uint32(f[len(cacheFooterMagic):]); n != uint32(len(payload)) {
		return nil, fmt.Errorf("harness: cache entry length %d, footer says %d", len(payload), n)
	}
	if sum := binary.LittleEndian.Uint32(f[len(cacheFooterMagic)+4:]); sum != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("harness: cache entry checksum mismatch")
	}
	return payload, nil
}

// dropCorrupt deletes a failed entry and books the corruption.
func (c *RunCache) dropCorrupt(key string) {
	os.Remove(c.path(key))
	c.mu.Lock()
	c.stats.Corrupt++
	c.mu.Unlock()
}

func (c *RunCache) readDisk(key string) (*scenario.Result, error) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, err
	}
	payload, err := checkFooter(data)
	if err != nil {
		c.dropCorrupt(key)
		return nil, err
	}
	var rec cacheRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		// The footer verified, so the bytes are as written — a decode
		// failure means an incompatible record schema. Drop it too: it
		// can never be read, only rewritten.
		c.dropCorrupt(key)
		return nil, fmt.Errorf("harness: cache decode %s: %w", key, err)
	}
	if rec.Key != key {
		return nil, fmt.Errorf("harness: cache file %s holds key %s", key, rec.Key)
	}
	return &scenario.Result{
		Elapsed:    rec.Elapsed,
		Events:     rec.Events,
		Flows:      rec.Flows,
		SlaveKbps:  rec.Slaves,
		SCOKbps:    rec.SCO,
		Slots:      rec.Slots,
		GSPolls:    rec.GSPolls,
		BEPolls:    rec.BEPolls,
		Skipped:    rec.Skipped,
		Admitted:   rec.Admit,
		Admissions: rec.Admissions,
		Piconets:   rec.Piconets,
		Routes:     rec.Routes,
	}, nil
}

func (c *RunCache) writeDisk(key string, res *scenario.Result) error {
	rec := cacheRecord{
		Key:     key,
		Elapsed: res.Elapsed,
		Events:  res.Events,
		Flows:   res.Flows,
		Slaves:  res.SlaveKbps,
		SCO:     res.SCOKbps,
		Slots:   res.Slots,
		GSPolls: res.GSPolls,
		BEPolls: res.BEPolls,
		Skipped: res.Skipped,
		Admit:   res.Admitted,

		Admissions: res.Admissions,
		Piconets:   res.Piconets,
		Routes:     res.Routes,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("harness: cache encode %s: %w", key, err)
	}
	buf.Write(cacheFooter(buf.Bytes()))
	tmp, err := os.CreateTemp(c.cfg.Dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	return nil
}

// withSpec returns a shallow copy of the cached result carrying the
// caller's spec — defaulted, because that is the spec a fresh run stores
// (scenario.Run defaults before collecting), so reports label cached
// replays byte-identically to fresh runs.
func withSpec(res *scenario.Result, spec scenario.Spec) *scenario.Result {
	out := *res
	out.Spec = spec.WithDefaults()
	return &out
}
