package harness

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
	"bluegs/internal/segmentation"
)

// DefaultCacheSalt is the code-version salt folded into every run
// fingerprint. Bump it in any PR that changes simulation semantics (the
// kernel, the scheduler, admission, traffic timing, …): the new salt
// invalidates every previously cached result at once, so a stale disk
// cache can never replay results the current code would not produce.
// sim-v5: scatternet engine (multi-piconet specs, canonical rendering
// v3 with piconet arrays + interference parameters, per-piconet cached
// results) — cached single-piconet results can never alias scatternet
// runs.
// sim-v6: interference-aware admission (canonical rendering v4 with the
// derating knobs, re-derate on churn, retry-budget error terms) — derated
// runs can never replay results computed without the derating path.
// sim-v7: fault injection and self-healing (link-outage gating in the
// piconet engine, supervision timeouts, degrade/handoff recovery,
// master crashes, flow fates in results) — pre-fault cached results can
// never replay runs the fault-aware engine would produce, and the new
// on-disk footer format invalidates footerless entries wholesale.
// sim-v8: bridge nodes and end-to-end routes (residency-gated polls and
// scheduling, store-and-forward hop handoff, per-hop budget-split
// admission with duty-cycle derating, renegotiate_flow, route results) —
// pre-bridge cached results can never replay runs the route-aware runner
// would produce.
const DefaultCacheSalt = "sim-v8"

// CacheBackend is the persistent half of a RunCache: a keyed store of
// raw cache entries (gob payload plus integrity footer, the
// EncodeResultEntry form). The RunCache owns the encoding, the footer
// verification and the in-memory LRU; a backend only moves bytes, which
// is what lets one implementation serve a local directory (DirBackend)
// and another a fabric coordinator's HTTP cache endpoint
// (internal/fabric), so workers need no shared filesystem. Backends must
// be safe for concurrent use — including concurrent use from several
// processes, where the content-addressed keys make racing writers of the
// same entry harmless.
type CacheBackend interface {
	// Get returns the raw entry stored under key. A missing entry's
	// error must satisfy errors.Is(err, fs.ErrNotExist).
	Get(key string) ([]byte, error)
	// Put stores an entry atomically: a concurrent reader must observe
	// either no entry or a complete one, never a partial write.
	Put(key string, entry []byte) error
	// Has reports whether an entry exists without reading it.
	Has(key string) (bool, error)
	// Delete removes an entry; deleting a missing entry is not an error.
	Delete(key string) error
}

// CacheConfig tunes a RunCache.
type CacheConfig struct {
	// Dir, when non-empty, backs the cache with one gob file per run
	// under this directory (created if missing). Entries evicted from
	// the in-memory LRU remain readable from disk. Shorthand for
	// Backend: NewDirBackend(Dir).
	Dir string
	// Backend, when set, is the persistent store behind the in-memory
	// LRU and wins over Dir.
	Backend CacheBackend
	// MaxEntries bounds the in-memory LRU (default 4096 results).
	MaxEntries int
	// Salt is the code-version salt (default DefaultCacheSalt). Sweeps
	// that want isolated namespaces in a shared directory may extend it.
	Salt string
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
// Its String rendering is the one line the cmd tools print on stderr and
// the CI cache smoke step greps.
type CacheStats struct {
	// Hits counts Get calls served (memory or disk); DiskHits the subset
	// that had to be read back from the directory.
	Hits     uint64
	DiskHits uint64
	// Misses counts Get calls that found nothing.
	Misses uint64
	// Stores counts Put calls accepted.
	Stores uint64
	// DupPuts counts Put calls for a key the cache already held — a
	// clean no-op, because content-addressed keys make the incoming
	// entry identical to the stored one. Under a shared directory two
	// processes completing the same cell book the second write here
	// instead of rewriting (or corrupting) the entry.
	DupPuts uint64
	// Corrupt counts on-disk entries whose integrity footer failed
	// verification; each was deleted and its Get served as a miss (so the
	// fresh result rewrites the entry).
	Corrupt uint64
}

// String renders the counters as "H/T runs served from cache (D from
// disk, S stored)". Duplicate-put and corruption drops are appended only
// when they happened, keeping the healthy-cache line byte-stable for log
// greps.
func (s CacheStats) String() string {
	out := fmt.Sprintf("%d/%d runs served from cache (%d from disk, %d stored)",
		s.Hits, s.Hits+s.Misses, s.DiskHits, s.Stores)
	if s.DupPuts > 0 {
		out += fmt.Sprintf(", %d duplicate puts ignored", s.DupPuts)
	}
	if s.Corrupt > 0 {
		out += fmt.Sprintf(", %d corrupt dropped", s.Corrupt)
	}
	return out
}

// RunCache is a content-addressed store of completed simulation results,
// keyed by the SHA-256 fingerprint of (scenario spec incl. seed and
// horizon, code-version salt). A fixed-size in-memory LRU fronts an
// optional on-disk gob store, so re-running a sweep after changing one
// cell — or re-rendering reports — replays the unchanged cells instantly,
// across processes when a directory is configured.
//
// Cached results are shared: callers must treat them as read-only, which
// matches the contract scenario.Result already states for its delay
// statistics. Runs that carry a Tracer are never served from or written
// to the cache (their side effects cannot be replayed).
type RunCache struct {
	cfg     CacheConfig
	backend CacheBackend // nil when the cache is memory-only

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	key string
	res *scenario.Result
}

// cacheRecord is the on-disk form of a result: everything scenario.Result
// carries except the Spec, which the cache re-attaches from the request
// on every hit (the spec contains interface-valued fields and is, by
// construction of the key, already known to the caller).
type cacheRecord struct {
	Key        string
	Elapsed    time.Duration
	Events     uint64
	Flows      []scenario.FlowResult
	Slaves     map[piconet.SlaveID]float64
	SCO        map[piconet.SlaveID]float64
	Slots      piconet.SlotAccount
	GSPolls    uint64
	BEPolls    uint64
	Skipped    uint64
	Admit      []*admission.PlannedFlow
	Admissions []scenario.AdmissionRecord
	// Piconets carries the per-piconet results of scatternet runs (one
	// entry for flat single-piconet specs).
	Piconets []scenario.PiconetResult
	// Routes carries the end-to-end results of bridged multi-hop flows.
	Routes []scenario.RouteResult
}

func init() {
	// Concrete segmentation policies may travel inside
	// admission.Request.Policy interface fields.
	gob.Register(segmentation.BestFit{})
	gob.Register(segmentation.GreedyLargest{})
}

// NewRunCache creates a cache; when cfg.Dir is set the directory is
// created eagerly so configuration errors surface before a sweep starts.
func NewRunCache(cfg CacheConfig) (*RunCache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.Salt == "" {
		cfg.Salt = DefaultCacheSalt
	}
	backend := cfg.Backend
	if backend == nil && cfg.Dir != "" {
		b, err := NewDirBackend(cfg.Dir)
		if err != nil {
			return nil, err
		}
		backend = b
	}
	return &RunCache{
		cfg:     cfg,
		backend: backend,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}, nil
}

// CacheKey returns the content address of a run: the SHA-256 over the
// cache salt and the spec's canonical rendering, hex encoded. Every
// party of a distributed sweep — caches, fabric coordinator, workers —
// derives keys through this one function, which is what makes results
// location-independent.
func CacheKey(salt string, spec scenario.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "bluegs/run\n%s\n%s", salt, spec.Canonical())
	return hex.EncodeToString(h.Sum(nil))
}

// Key returns the content address of a run under this cache's salt.
func (c *RunCache) Key(spec scenario.Spec) string {
	return CacheKey(c.cfg.Salt, spec)
}

// Salt returns the cache's code-version salt.
func (c *RunCache) Salt() string { return c.cfg.Salt }

// Get returns the cached result of the spec, if present, with the spec
// re-attached. The in-memory LRU is consulted first, then the directory.
func (c *RunCache) Get(spec scenario.Spec) (*scenario.Result, bool) {
	return c.getByKey(c.Key(spec), spec)
}

// getByKey is Get with a precomputed key: the executor hashes the spec
// once, before the simulation runs, so a stateful Radio model mutated by
// the run cannot skew the store key away from the lookup key.
func (c *RunCache) getByKey(key string, spec scenario.Spec) (*scenario.Result, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*cacheEntry).res
		c.stats.Hits++
		c.mu.Unlock()
		return withSpec(res, spec), true
	}
	c.mu.Unlock()

	if c.backend == nil {
		c.miss()
		return nil, false
	}
	res, err := c.readBackend(key)
	if err != nil {
		c.miss()
		return nil, false
	}
	c.mu.Lock()
	c.insertLocked(key, res)
	c.stats.Hits++
	c.stats.DiskHits++
	c.mu.Unlock()
	return withSpec(res, spec), true
}

// Put stores a completed result under the spec's key, in memory and — when
// a backend is configured — persistently (directories write atomically via
// a temp file and rename). Putting a key the cache already holds is a
// clean no-op counted in Stats().DupPuts: content-addressed keys make the
// incoming entry identical to the stored one, so concurrent sweeps over a
// shared directory never rewrite each other's entries.
func (c *RunCache) Put(spec scenario.Spec, res *scenario.Result) error {
	return c.putByKey(c.Key(spec), res)
}

// putByKey is Put with a precomputed key (see getByKey).
func (c *RunCache) putByKey(key string, res *scenario.Result) error {
	if res == nil {
		return nil
	}
	c.mu.Lock()
	_, dup := c.entries[key]
	c.insertLocked(key, res)
	c.mu.Unlock()
	if !dup && c.backend != nil {
		// Another process may have completed the identical run already;
		// leave its (identical) entry in place. Two writers racing past
		// this check both write — harmless, the write is atomic and the
		// content identical.
		if ok, err := c.backend.Has(key); err == nil && ok {
			dup = true
		}
	}
	c.mu.Lock()
	if dup {
		c.stats.DupPuts++
	} else {
		c.stats.Stores++
	}
	c.mu.Unlock()
	if dup || c.backend == nil {
		return nil
	}
	return c.writeBackend(key, res)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *RunCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *RunCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *RunCache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
}

func (c *RunCache) insertLocked(key string, res *scenario.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.cfg.MaxEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// The on-disk entry layout is gob payload followed by a fixed integrity
// footer: magic, payload length and payload CRC-32 (IEEE). A truncated
// copy, a partial write that survived a crash, or bit rot all fail the
// footer check; the entry is then deleted and the lookup degrades to a
// miss, so the fresh result rewrites it.
const cacheFooterMagic = "BGC1"

const cacheFooterSize = len(cacheFooterMagic) + 8

// cacheFooter renders the footer for a payload.
func cacheFooter(payload []byte) []byte {
	f := make([]byte, cacheFooterSize)
	copy(f, cacheFooterMagic)
	binary.LittleEndian.PutUint32(f[len(cacheFooterMagic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[len(cacheFooterMagic)+4:], crc32.ChecksumIEEE(payload))
	return f
}

// checkFooter verifies a raw entry and returns its gob payload.
func checkFooter(data []byte) ([]byte, error) {
	if len(data) < cacheFooterSize {
		return nil, fmt.Errorf("harness: cache entry truncated (%d bytes)", len(data))
	}
	payload, f := data[:len(data)-cacheFooterSize], data[len(data)-cacheFooterSize:]
	if string(f[:len(cacheFooterMagic)]) != cacheFooterMagic {
		return nil, fmt.Errorf("harness: cache entry missing integrity footer")
	}
	if n := binary.LittleEndian.Uint32(f[len(cacheFooterMagic):]); n != uint32(len(payload)) {
		return nil, fmt.Errorf("harness: cache entry length %d, footer says %d", len(payload), n)
	}
	if sum := binary.LittleEndian.Uint32(f[len(cacheFooterMagic)+4:]); sum != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("harness: cache entry checksum mismatch")
	}
	return payload, nil
}

// EncodeResultEntry renders a result as a raw cache entry: the gob
// payload of its cacheRecord followed by the integrity footer. This is
// the byte form backends store, the fabric coordinator journals, and
// workers ship over the wire — one encoding everywhere, so any party can
// verify any entry with the same footer check.
func EncodeResultEntry(key string, res *scenario.Result) ([]byte, error) {
	rec := cacheRecord{
		Key:     key,
		Elapsed: res.Elapsed,
		Events:  res.Events,
		Flows:   res.Flows,
		Slaves:  res.SlaveKbps,
		SCO:     res.SCOKbps,
		Slots:   res.Slots,
		GSPolls: res.GSPolls,
		BEPolls: res.BEPolls,
		Skipped: res.Skipped,
		Admit:   res.Admitted,

		Admissions: res.Admissions,
		Piconets:   res.Piconets,
		Routes:     res.Routes,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("harness: cache encode %s: %w", key, err)
	}
	buf.Write(cacheFooter(buf.Bytes()))
	return buf.Bytes(), nil
}

// decodeEntry verifies and decodes a raw cache entry into a spec-less
// result (callers attach their spec via withSpec).
func decodeEntry(key string, entry []byte) (*scenario.Result, error) {
	payload, err := checkFooter(entry)
	if err != nil {
		return nil, err
	}
	var rec cacheRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("harness: cache decode %s: %w", key, err)
	}
	if rec.Key != key {
		return nil, fmt.Errorf("harness: cache entry %s holds key %s", key, rec.Key)
	}
	return &scenario.Result{
		Elapsed:    rec.Elapsed,
		Events:     rec.Events,
		Flows:      rec.Flows,
		SlaveKbps:  rec.Slaves,
		SCOKbps:    rec.SCO,
		Slots:      rec.Slots,
		GSPolls:    rec.GSPolls,
		BEPolls:    rec.BEPolls,
		Skipped:    rec.Skipped,
		Admitted:   rec.Admit,
		Admissions: rec.Admissions,
		Piconets:   rec.Piconets,
		Routes:     rec.Routes,
	}, nil
}

// DecodeResultEntry verifies a raw cache entry (footer and key) and
// decodes it, attaching the caller's spec exactly as a cache hit would.
func DecodeResultEntry(key string, entry []byte, spec scenario.Spec) (*scenario.Result, error) {
	res, err := decodeEntry(key, entry)
	if err != nil {
		return nil, err
	}
	return withSpec(res, spec), nil
}

// dropCorrupt deletes a failed entry and books the corruption.
func (c *RunCache) dropCorrupt(key string) {
	if c.backend != nil {
		c.backend.Delete(key)
	}
	c.mu.Lock()
	c.stats.Corrupt++
	c.mu.Unlock()
}

func (c *RunCache) readBackend(key string) (*scenario.Result, error) {
	data, err := c.backend.Get(key)
	if err != nil {
		return nil, err
	}
	res, err := decodeEntry(key, data)
	if err != nil {
		// A footer failure means truncation or bit rot; a verified
		// footer with a failed decode means an incompatible record
		// schema. Either way the entry can never be read, only
		// rewritten — drop it and degrade to a miss.
		c.dropCorrupt(key)
		return nil, err
	}
	return res, nil
}

func (c *RunCache) writeBackend(key string, res *scenario.Result) error {
	entry, err := EncodeResultEntry(key, res)
	if err != nil {
		return err
	}
	return c.backend.Put(key, entry)
}

// GetEntry returns the raw entry stored under key — footer included,
// verified — from the backend. This is the read half of the entry-level
// API the fabric coordinator serves over /cache/entry: entries move
// between processes as opaque verified bytes, never re-encoded. A
// memory-only cache (no backend) reports every key missing.
func (c *RunCache) GetEntry(key string) ([]byte, error) {
	if c.backend == nil {
		return nil, fs.ErrNotExist
	}
	data, err := c.backend.Get(key)
	if err != nil {
		return nil, err
	}
	if _, err := checkFooter(data); err != nil {
		c.dropCorrupt(key)
		return nil, fs.ErrNotExist
	}
	return data, nil
}

// PutEntry stores a raw entry under key after verifying its footer,
// refusing corrupt bytes at the door. Like Put, storing a key the
// backend already holds is a clean no-op counted in Stats().DupPuts.
// Requires a backend: entry-level callers (the fabric) move persistent
// bytes, which a memory-only cache cannot hold.
func (c *RunCache) PutEntry(key string, entry []byte) error {
	if c.backend == nil {
		return fmt.Errorf("harness: PutEntry requires a cache backend")
	}
	if _, err := checkFooter(entry); err != nil {
		return err
	}
	if ok, err := c.backend.Has(key); err == nil && ok {
		c.mu.Lock()
		c.stats.DupPuts++
		c.mu.Unlock()
		return nil
	}
	if err := c.backend.Put(key, entry); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Stores++
	c.mu.Unlock()
	return nil
}

// HasEntry reports whether the backend holds an entry for key.
func (c *RunCache) HasEntry(key string) (bool, error) {
	if c.backend == nil {
		return false, nil
	}
	return c.backend.Has(key)
}

// DeleteEntry removes an entry from the backend (missing is not an
// error) and drops any in-memory copy.
func (c *RunCache) DeleteEntry(key string) error {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if c.backend == nil {
		return nil
	}
	return c.backend.Delete(key)
}

// DirBackend stores one entry file per key under a directory — the
// CacheBackend behind CacheConfig.Dir. Writes go to a temp file in the
// same directory and rename into place, so concurrent readers (and
// concurrent writers in other processes) observe only absent or complete
// entries.
type DirBackend struct {
	dir string
}

// NewDirBackend creates the directory if missing so configuration errors
// surface before a sweep starts.
func NewDirBackend(dir string) (*DirBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: cache dir: %w", err)
	}
	return &DirBackend{dir: dir}, nil
}

func (b *DirBackend) path(key string) string {
	return filepath.Join(b.dir, key+".run.gob")
}

// Get reads the entry file for key.
func (b *DirBackend) Get(key string) ([]byte, error) {
	return os.ReadFile(b.path(key))
}

// Put writes the entry atomically via temp file + rename.
func (b *DirBackend) Put(key string, entry []byte) error {
	tmp, err := os.CreateTemp(b.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), b.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache write: %w", err)
	}
	return nil
}

// Has stats the entry file.
func (b *DirBackend) Has(key string) (bool, error) {
	_, err := os.Stat(b.path(key))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, err
}

// Delete removes the entry file; missing entries are not an error.
func (b *DirBackend) Delete(key string) error {
	if err := os.Remove(b.path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// withSpec returns a shallow copy of the cached result carrying the
// caller's spec — defaulted, because that is the spec a fresh run stores
// (scenario.Run defaults before collecting), so reports label cached
// replays byte-identically to fresh runs.
func withSpec(res *scenario.Result, spec scenario.Spec) *scenario.Result {
	out := *res
	out.Spec = spec.WithDefaults()
	return &out
}
