package harness_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
)

func newCache(t *testing.T, cfg harness.CacheConfig) *harness.RunCache {
	t.Helper()
	c, err := harness.NewRunCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunCacheMemoryRoundTrip: a second pass over the same sweep is served
// entirely from memory and reproduces the results bit for bit.
func TestRunCacheMemoryRoundTrip(t *testing.T) {
	sw := shortSweep(t)
	cache := newCache(t, harness.CacheConfig{})
	cold, err := harness.Execute(sw.Runs, harness.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cold {
		if r.CacheHit {
			t.Fatal("cold run reported a cache hit")
		}
	}
	warm, err := harness.Execute(sw.Runs, harness.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range warm {
		if !r.CacheHit {
			t.Fatalf("warm run %d executed the simulator", i)
		}
	}
	if got, want := fingerprint(t, warm), fingerprint(t, cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached results drifted:\n got %v\nwant %v", got, want)
	}
	st := cache.Stats()
	if st.Hits != uint64(len(sw.Runs)) || st.Stores != uint64(len(sw.Runs)) {
		t.Fatalf("stats = %+v, want %d hits and stores", st, len(sw.Runs))
	}
}

// TestRunCacheDiskRoundTrip: a fresh cache over the same directory (a new
// process, in effect) replays the sweep from disk with every statistic —
// including delay quantiles backed by the gob-serialized samples — exact.
func TestRunCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sw := shortSweep(t)
	cold, err := harness.Execute(sw.Runs, harness.Options{
		Cache: newCache(t, harness.CacheConfig{Dir: dir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh := newCache(t, harness.CacheConfig{Dir: dir})
	warm, err := harness.Execute(sw.Runs, harness.Options{Cache: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, warm), fingerprint(t, cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round trip drifted:\n got %v\nwant %v", got, want)
	}
	st := fresh.Stats()
	if st.DiskHits != uint64(len(sw.Runs)) {
		t.Fatalf("stats = %+v, want %d disk hits", st, len(sw.Runs))
	}
	for i := range warm {
		// A fresh run stores the defaulted spec; a cache hit must
		// re-attach the same defaulted form, or table headers (Mode,
		// Duration) diverge between cold and warm renders.
		if got, want := warm[i].Result.Spec, cold[i].Result.Spec; got.Mode != want.Mode ||
			got.Duration != want.Duration || got.Seed != want.Seed {
			t.Fatalf("run %d: replayed spec drifted: got %+v want %+v", i, got, want)
		}
	}
	for i := range warm {
		a, b := cold[i].Result, warm[i].Result
		if a.Events != b.Events || a.GSPolls != b.GSPolls || a.BEPolls != b.BEPolls ||
			a.Slots != b.Slots || a.Elapsed != b.Elapsed {
			t.Fatalf("run %d counters drifted through disk", i)
		}
		for j, f := range a.Flows {
			g := b.Flows[j]
			if f.Delay == nil || g.Delay == nil {
				t.Fatalf("run %d flow %d lost its delay statistics", i, f.ID)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 1} {
				if f.Delay.Quantile(q) != g.Delay.Quantile(q) {
					t.Fatalf("run %d flow %d quantile %v drifted", i, f.ID, q)
				}
			}
		}
		if len(a.Admitted) != len(b.Admitted) {
			t.Fatalf("run %d admission plan lost", i)
		}
		for j := range a.Admitted {
			if *a.Admitted[j] != *b.Admitted[j] {
				t.Fatalf("run %d admitted flow %d drifted: %+v vs %+v",
					i, j, a.Admitted[j], b.Admitted[j])
			}
		}
	}
}

// TestRunCacheTracerBypass: traced runs execute every time and are never
// stored — their side effects cannot be replayed from a cache.
func TestRunCacheTracerBypass(t *testing.T) {
	spec := scenario.Paper(40 * time.Millisecond)
	spec.Duration = time.Second
	tracer := piconet.NewRingTracer(16)
	runs := []harness.Run{{Index: 0, Cell: "traced", Spec: spec,
		Hooks: scenario.Hooks{Tracer: tracer}}}
	cache := newCache(t, harness.CacheConfig{})
	for pass := 0; pass < 2; pass++ {
		results, err := harness.Execute(runs, harness.Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].CacheHit {
			t.Fatalf("pass %d: traced run served from cache", pass)
		}
	}
	st := cache.Stats()
	if st.Stores != 0 || st.Hits != 0 {
		t.Fatalf("traced runs touched the cache: %+v", st)
	}
}

// TestRunCacheSaltInvalidates: changing the code-version salt must miss on
// a directory full of old results.
func TestRunCacheSaltInvalidates(t *testing.T) {
	dir := t.TempDir()
	spec := scenario.Paper(40 * time.Millisecond)
	spec.Duration = time.Second
	runs := []harness.Run{{Index: 0, Cell: "c", Spec: spec}}
	if _, err := harness.Execute(runs, harness.Options{
		Cache: newCache(t, harness.CacheConfig{Dir: dir, Salt: "sim-vA"}),
	}); err != nil {
		t.Fatal(err)
	}
	stale := newCache(t, harness.CacheConfig{Dir: dir, Salt: "sim-vB"})
	results, err := harness.Execute(runs, harness.Options{Cache: stale})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].CacheHit {
		t.Fatal("salted-out result was replayed")
	}
	if st := stale.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

// TestRunCacheEviction: the in-memory LRU stays bounded and evicts the
// least recently used entry first.
func TestRunCacheEviction(t *testing.T) {
	cache := newCache(t, harness.CacheConfig{MaxEntries: 2})
	specs := make([]scenario.Spec, 3)
	for i := range specs {
		specs[i] = scenario.Paper(time.Duration(30+2*i) * time.Millisecond)
		specs[i].Duration = time.Second
		res, err := scenario.Run(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.Put(specs[i], res); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("Len = %d, want bound 2", cache.Len())
	}
	if _, ok := cache.Get(specs[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for i := 1; i < 3; i++ {
		if _, ok := cache.Get(specs[i]); !ok {
			t.Fatalf("recent entry %d evicted", i)
		}
	}
}

// TestExecuteTimedRunsReleaseTimers is the time.After leak regression: a
// large sweep under a generous timeout must not leave per-run timeout
// timers alive once it completes.
func TestExecuteTimedRunsReleaseTimers(t *testing.T) {
	spec := scenario.Spec{
		BE:       []scenario.BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 10, PacketSize: 27}},
		Duration: time.Millisecond,
	}
	n := 10000
	if testing.Short() {
		n = 1000
	}
	runs := make([]harness.Run, n)
	for i := range runs {
		runs[i] = harness.Run{Index: i, Cell: "tiny", Rep: i, Spec: spec}
	}
	if _, err := harness.Execute(runs, harness.Options{Workers: 4, Timeout: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if got := harness.LiveRunTimers(); got != 0 {
		t.Fatalf("%d per-run timeout timers still alive after the sweep", got)
	}
}

// TestRunCacheCorruptionResilience: a truncated or garbled on-disk entry
// fails its integrity footer, is deleted, degrades to a miss — and the
// fresh execution rewrites it, so a later pass replays everything again.
func TestRunCacheCorruptionResilience(t *testing.T) {
	dir := t.TempDir()
	sw := shortSweep(t)
	cold, err := harness.Execute(sw.Runs, harness.Options{
		Cache: newCache(t, harness.CacheConfig{Dir: dir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.run.gob"))
	if err != nil || len(files) != len(sw.Runs) {
		t.Fatalf("cache files = %d (%v), want %d", len(files), err, len(sw.Runs))
	}
	// Truncate one entry mid-payload and flip a byte in another.
	if err := os.Truncate(files[0], 10); err != nil {
		t.Fatal(err)
	}
	garbled, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	garbled[len(garbled)/2] ^= 0xFF
	if err := os.WriteFile(files[1], garbled, 0o644); err != nil {
		t.Fatal(err)
	}

	damaged := newCache(t, harness.CacheConfig{Dir: dir})
	warm, err := harness.Execute(sw.Runs, harness.Options{Cache: damaged})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, warm), fingerprint(t, cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("results drifted through corruption:\n got %v\nwant %v", got, want)
	}
	st := damaged.Stats()
	if st.Corrupt != 2 || st.Misses != 2 || st.Hits != uint64(len(sw.Runs)-2) {
		t.Fatalf("stats = %+v, want 2 corrupt drops and misses", st)
	}
	if !strings.Contains(st.String(), "2 corrupt dropped") {
		t.Fatalf("stats line hides the corruption: %q", st)
	}
	if strings.Contains(harness.CacheStats{}.String(), "corrupt") {
		t.Fatal("healthy stats line changed shape")
	}
	// The damaged entries were rewritten: a third fresh cache replays the
	// whole sweep from disk.
	final := newCache(t, harness.CacheConfig{Dir: dir})
	again, err := harness.Execute(sw.Runs, harness.Options{Cache: final})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		if !r.CacheHit {
			t.Fatalf("run %d executed after the rewrite pass", i)
		}
	}
	if st := final.Stats(); st.DiskHits != uint64(len(sw.Runs)) || st.Corrupt != 0 {
		t.Fatalf("final stats = %+v, want %d clean disk hits", st, len(sw.Runs))
	}
}
