package harness

// Executor abstracts where a sweep's runs execute. Local (the default
// everywhere) runs them in-process through the worker pool; the fabric
// coordinator (internal/fabric) implements the same pair of methods by
// leasing runs to worker processes over HTTP. Because both entry points
// share the determinism contract — results in run-index order, seeds from
// (baseSeed, rep), adaptive batch composition a pure function of results
// — any table rendered through an Executor is byte-identical regardless
// of which implementation (and how many machines) produced it.
type Executor interface {
	// Execute runs every Run and returns results in run-index order,
	// exactly as the package-level Execute.
	Execute(runs []Run, opts Options) ([]RunResult, error)
	// ExecuteAdaptive runs the grid under the adaptive replication rule,
	// exactly as the package-level ExecuteAdaptive.
	ExecuteAdaptive(g Grid, cfg SweepConfig, opts AdaptiveOptions) ([]CellOutcome, error)
}

// Local executes runs in-process: the zero value is the Executor behind
// every single-process sweep.
type Local struct{}

// Execute calls the package-level Execute.
func (Local) Execute(runs []Run, opts Options) ([]RunResult, error) {
	return Execute(runs, opts)
}

// ExecuteAdaptive calls the package-level ExecuteAdaptive.
func (Local) ExecuteAdaptive(g Grid, cfg SweepConfig, opts AdaptiveOptions) ([]CellOutcome, error) {
	return ExecuteAdaptive(g, cfg, opts)
}
