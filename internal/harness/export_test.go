package harness

// LiveRunTimers exposes the per-run timeout timer counter for the
// time.After leak regression test.
func LiveRunTimers() int64 { return liveRunTimers.Load() }
