// Package harness is the parallel experiment runner: it fans a grid of
// simulation runs (sweep cell × seed replication) out across a bounded
// worker pool and collects the results in grid order.
//
// Determinism is the design constraint. Every run owns an isolated
// sim.Simulator whose RNG seed is a pure function of the sweep's base seed
// and the run's replication index (see ReplicationSeed), and results are
// stored by run index, so a sweep produces bit-identical rows whether it
// executes on one worker or sixteen, and regardless of completion order.
// Replication 0 reuses the base seed itself, which makes a
// single-replication sweep reproduce the historical serial experiment
// loops exactly — the golden-table tests in internal/experiments rely on
// this.
//
// On top of the runner, Grid builders (Fig5Grid, ComparisonGrid,
// ExtensionGrid and the fixed Sweep forms) assemble the paper's
// evaluation grids, and the aggregation helpers reduce per-cell
// replications to mean/min/max/95%-confidence summaries via
// internal/stats.
//
// # Adaptive replication
//
// ExecuteAdaptive replaces the fixed replication count with a
// statistical stopping rule: every cell keeps receiving further
// independently seeded replications — scheduled in deterministic
// replication order, in worker-independent batches — until the 95%
// confidence half-width of its stopping Metric (mean GS delay, the
// bound-violation fraction, or a throughput) drops below a relative
// (RelTol×|mean|) or absolute (AbsTol) tolerance, or the MaxReps cap is
// reached. Because the batch composition depends only on simulation
// results, adaptive sweeps keep the runner's core guarantee: per-cell
// replication counts and every table rendered from them are
// bit-identical at any worker count.
//
// # The run cache
//
// Options.Cache plugs in a RunCache: a content-addressed result store
// keyed by the SHA-256 fingerprint of (scenario.Spec canonical rendering
// — which includes seed and horizon — plus a code-version salt, see
// DefaultCacheSalt). An in-memory LRU fronts an optional on-disk gob
// directory, so re-running a sweep after changing one cell, re-anchoring
// goldens, or re-rendering reports replays every unchanged run without
// executing the simulator — across processes, with results that are
// bit-identical to the original execution. Runs carrying runtime Hooks
// (tracers, live radio instances) bypass the cache entirely.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bluegs/internal/scenario"
	"bluegs/internal/stats"
)

// ErrTimeout is wrapped into a RunResult's Err when a run exceeds the
// per-run timeout.
var ErrTimeout = errors.New("harness: run timed out")

// ErrRunPanicked is wrapped into a RunResult's Err when a run's
// simulation panicked. The panic is contained to that run: the worker
// survives and the sweep's other runs complete normally.
var ErrRunPanicked = errors.New("harness: run panicked")

// ErrInterrupted is the Err of every run a sweep abandoned because
// Options.Interrupt fired. Runs already dispatched to workers still
// finish (and are cached), so an interrupted sweep checkpoints cleanly:
// re-running it replays the completed prefix from the cache.
var ErrInterrupted = errors.New("harness: sweep interrupted")

// Run is one point of a sweep grid: a complete scenario specification plus
// its position (cell and replication) for aggregation.
type Run struct {
	// Index is the run's position in the sweep; results are returned in
	// index order regardless of completion order.
	Index int
	// Cell groups replications of the same grid point (e.g. one Fig. 5
	// delay target). Aggregation happens per cell.
	Cell string
	// Rep is the replication number within the cell (0-based). The
	// run's Spec.Seed must already be derived for this replication; the
	// Sweep builders do that via ReplicationSeed.
	Rep int
	// Spec is the scenario to simulate (pure data).
	Spec scenario.Spec
	// Hooks carries runtime-only attachments (a live tracer or radio
	// model instance). Hooked runs always execute and are never cached:
	// their side effects cannot be replayed.
	Hooks scenario.Hooks
}

// RunResult is the outcome of one executed run.
type RunResult struct {
	Run Run
	// Result is the completed simulation (nil when Err is set).
	Result *scenario.Result
	// Err is the run's failure, if any (simulation error or ErrTimeout).
	Err error
	// Wall is the wall-clock time the run took.
	Wall time.Duration
	// CacheHit reports that Result was replayed from Options.Cache
	// instead of executing the simulator.
	CacheHit bool
}

// Options tunes Execute.
type Options struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout aborts any single run that exceeds it (0 means no limit).
	// A timed-out run's goroutine cannot be killed — its result is
	// discarded and its RunResult.Err wraps ErrTimeout.
	Timeout time.Duration
	// OnProgress, when set, is called after every completed run with the
	// number of finished runs, the total, and the run's result. Calls
	// are serialized but completion order is scheduling-dependent; do
	// not derive results from it.
	OnProgress func(done, total int, r RunResult)
	// KernelWorkers, when non-zero, overrides Spec.KernelWorkers on every
	// dispatched run: the worker-goroutine bound of the sharded event
	// kernel inside each simulation. It is a pure execution knob —
	// results, fingerprints and cache keys are identical at any value —
	// so it composes freely with Cache (a warm cache serves the same
	// bytes a re-simulation at any worker count would produce).
	KernelWorkers int
	// Cache, when set, serves runs whose fingerprint it already holds
	// without executing the simulator, and stores every fresh result.
	// Runs carrying Hooks always execute (their side effects cannot
	// be replayed) and are never stored. Because cached results are the
	// stored bytes of an identical earlier run, sweeps remain
	// bit-identical whether the cache is cold, warm or partially warm.
	Cache *RunCache
	// Interrupt, when set and closed (or sent to), stops dispatching
	// further runs: in-flight runs finish and are cached, every
	// undispatched run's Err becomes ErrInterrupted, and Execute returns
	// the partial results with an error wrapping ErrInterrupted. A nil
	// channel never fires. This is how the cmd tools turn SIGINT into a
	// checkpoint-and-print-partial-table instead of dying mid-grid.
	Interrupt <-chan struct{}
}

// workers resolves the pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs every Run across the worker pool and returns the results
// in run-index order. The returned error is the first failure in grid
// order (deterministic), with all results still returned so callers can
// inspect partial output.
func Execute(runs []Run, opts Options) ([]RunResult, error) {
	results := make([]RunResult, len(runs))
	if len(runs) == 0 {
		return results, nil
	}
	workers := opts.workers()
	if workers > len(runs) {
		workers = len(runs)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = execute(runs[i], opts)
				if opts.OnProgress != nil {
					progressMu.Lock()
					done++
					opts.OnProgress(done, len(runs), results[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	interrupted := false
dispatch:
	for i := range runs {
		// Check the interrupt with priority before blocking on a worker:
		// once it has fired, no further run is dispatched (at most the
		// send already blocking below can still win its race).
		select {
		case <-opts.Interrupt:
			interrupted = true
		default:
		}
		if !interrupted {
			select {
			case jobs <- i:
				continue
			case <-opts.Interrupt:
				interrupted = true
			}
		}
		// Mark this and every later run abandoned; in-flight runs drain
		// normally below.
		for j := i; j < len(runs); j++ {
			results[j] = RunResult{Run: runs[j], Err: ErrInterrupted}
		}
		break dispatch
	}
	close(jobs)
	wg.Wait()

	if interrupted {
		return results, ErrInterrupted
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("harness: run %d (cell %q rep %d): %w",
				runs[i].Index, runs[i].Cell, runs[i].Rep, results[i].Err)
		}
	}
	return results, nil
}

// execute resolves one run: from the cache when possible, otherwise by
// running the scenario (and storing the fresh result).
func execute(run Run, opts Options) RunResult {
	if opts.KernelWorkers != 0 {
		// Safe to set before the cache-key hash: KernelWorkers is
		// excluded from the canonical rendering, so the key — and the
		// result — are identical at any worker count.
		run.Spec.KernelWorkers = opts.KernelWorkers
	}
	cacheable := opts.Cache != nil && run.Hooks.Zero()
	var key string
	if cacheable {
		// Hash once, before simulating: a stateful Radio model mutated
		// by the run must not skew the store key away from the lookup.
		key = opts.Cache.Key(run.Spec)
		start := time.Now()
		if res, ok := opts.Cache.getByKey(key, run.Spec); ok {
			return RunResult{Run: run, Result: res, Wall: time.Since(start), CacheHit: true}
		}
	}
	rr := simulate(run, opts.Timeout)
	if cacheable && rr.Err == nil {
		// A store failure (full disk, bad permissions) must not fail
		// the sweep; the run simply stays uncached.
		_ = opts.Cache.putByKey(key, rr.Result)
	}
	return rr
}

// liveRunTimers counts per-run timeout timers currently alive. The
// regression test for the time.After leak (every timed run used to pin a
// timer until it fired) asserts this returns to zero after a sweep.
var liveRunTimers atomic.Int64

// runScenario executes one scenario, converting a panic anywhere inside
// the simulation into an ErrRunPanicked error (with the stack attached)
// so one faulty run is an inspectable per-run failure instead of a
// crashed sweep.
func runScenario(spec scenario.Spec, hooks scenario.Hooks) (res *scenario.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("%w: %v\n%s", ErrRunPanicked, r, debug.Stack())
		}
	}()
	return scenario.RunWith(spec, hooks)
}

// simulate runs one scenario, enforcing the per-run timeout when set.
func simulate(run Run, timeout time.Duration) RunResult {
	start := time.Now()
	if timeout <= 0 {
		res, err := runScenario(run.Spec, run.Hooks)
		return RunResult{Run: run, Result: res, Err: err, Wall: time.Since(start)}
	}
	type outcome struct {
		res *scenario.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := runScenario(run.Spec, run.Hooks)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(timeout)
	liveRunTimers.Add(1)
	defer func() {
		timer.Stop()
		liveRunTimers.Add(-1)
	}()
	select {
	case o := <-ch:
		return RunResult{Run: run, Result: o.res, Err: o.err, Wall: time.Since(start)}
	case <-timer.C:
		return RunResult{
			Run:  run,
			Err:  fmt.Errorf("%w after %v", ErrTimeout, timeout),
			Wall: time.Since(start),
		}
	}
}

// ReplicationSeed derives the RNG seed of replication rep from a sweep's
// base seed. Replication 0 uses the base seed itself, so a
// single-replication sweep is bit-identical to the historical serial runs;
// higher replications pass (base, rep) through a splitmix64-style mix so
// their streams are decorrelated. The derivation depends only on the
// run's identity — never on scheduling — which is what makes sweeps
// reproducible at any worker count.
func ReplicationSeed(base int64, rep int) int64 {
	if rep == 0 {
		return base
	}
	z := uint64(base) + uint64(rep)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	seed := int64(z)
	if seed == 0 {
		// scenario treats seed 0 as "use the default"; avoid it.
		seed = 1
	}
	return seed
}

// Cells groups results by cell, preserving first-appearance (grid) order.
// Within a cell, results keep grid order too, so replications are ordered
// by Rep.
func Cells(results []RunResult) ([]string, map[string][]RunResult) {
	var order []string
	byCell := make(map[string][]RunResult)
	for _, r := range results {
		if _, ok := byCell[r.Run.Cell]; !ok {
			order = append(order, r.Run.Cell)
		}
		byCell[r.Run.Cell] = append(byCell[r.Run.Cell], r)
	}
	return order, byCell
}

// Aggregate reduces one cell's replications to a Summary of the metric,
// skipping failed runs.
func Aggregate(rs []RunResult, metric func(*scenario.Result) float64) stats.Summary {
	var w stats.Welford
	for _, r := range rs {
		if r.Err != nil || r.Result == nil {
			continue
		}
		w.Add(metric(r.Result))
	}
	return w.Summary()
}
