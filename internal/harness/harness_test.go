package harness_test

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/piconet"
	"bluegs/internal/scenario"
)

// shortSweep is a small but non-trivial grid: two Fig. 5 cells, two
// replications each.
func shortSweep(t *testing.T) harness.Sweep {
	t.Helper()
	cfg := harness.SweepConfig{Duration: 2 * time.Second, Seed: 1, Replications: 2}
	sw := harness.Fig5Sweep(cfg, []time.Duration{30 * time.Millisecond, 40 * time.Millisecond})
	if len(sw.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(sw.Runs))
	}
	return sw
}

// fingerprint reduces a result set to comparable strings: per-run flow
// throughputs, exact delay maxima and per-slave kbps.
func fingerprint(t *testing.T, results []harness.RunResult) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d failed: %v", i, r.Err)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "cell=%s rep=%d seed=%d", r.Run.Cell, r.Run.Rep, r.Run.Spec.Seed)
		for _, f := range r.Result.Flows {
			fmt.Fprintf(&sb, " f%d=%.9f/%d", f.ID, f.Kbps, f.DelayMax)
		}
		for s := piconet.SlaveID(1); s <= 7; s++ {
			fmt.Fprintf(&sb, " s%d=%.9f", s, r.Result.SlaveKbps[s])
		}
		out[i] = sb.String()
	}
	return out
}

// TestExecuteDeterministicAcrossWorkers is the harness's core guarantee:
// the same sweep yields bit-identical results at every worker count.
func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	sw := shortSweep(t)
	var want []string
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		results, err := harness.Execute(sw.Runs, harness.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fingerprint(t, results)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged:\n got %v\nwant %v", workers, got, want)
		}
	}
}

func TestReplicationSeed(t *testing.T) {
	if got := harness.ReplicationSeed(7, 0); got != 7 {
		t.Fatalf("rep 0 seed = %d, want the base seed", got)
	}
	seen := map[int64]bool{}
	for rep := 0; rep < 100; rep++ {
		s := harness.ReplicationSeed(7, rep)
		if s == 0 {
			t.Fatalf("rep %d derived the reserved seed 0", rep)
		}
		if seen[s] {
			t.Fatalf("rep %d repeated seed %d", rep, s)
		}
		seen[s] = true
		if s != harness.ReplicationSeed(7, rep) {
			t.Fatalf("rep %d seed not deterministic", rep)
		}
	}
	if harness.ReplicationSeed(7, 1) == harness.ReplicationSeed(8, 1) {
		t.Fatal("different base seeds collided at rep 1")
	}
}

func TestExecuteTimeout(t *testing.T) {
	spec := scenario.Paper(40 * time.Millisecond)
	spec.Duration = 530 * time.Second
	runs := []harness.Run{{Index: 0, Cell: "slow", Spec: spec}}
	results, err := harness.Execute(runs, harness.Options{Workers: 1, Timeout: time.Millisecond})
	if err == nil || !errors.Is(err, harness.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), `cell "slow"`) {
		t.Fatalf("error %q does not name the cell", err)
	}
	if results[0].Result != nil {
		t.Fatal("timed-out run must not carry a result")
	}
}

func TestExecuteProgress(t *testing.T) {
	sw := shortSweep(t)
	var dones []int
	total := 0
	results, err := harness.Execute(sw.Runs, harness.Options{
		Workers: 4,
		OnProgress: func(done, n int, r harness.RunResult) {
			dones = append(dones, done)
			total = n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(sw.Runs) || len(dones) != len(sw.Runs) {
		t.Fatalf("progress calls = %d (total %d), want %d", len(dones), total, len(sw.Runs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v not monotone", dones)
		}
	}
	for _, r := range results {
		if r.Wall <= 0 {
			t.Fatal("missing wall-clock measurement")
		}
	}
}

// TestExecuteErrorDeterministic: the reported error is the first failing
// run in grid order, not completion order.
func TestExecuteErrorDeterministic(t *testing.T) {
	good := scenario.Paper(40 * time.Millisecond)
	good.Duration = time.Second
	var runs []harness.Run
	for i := 0; i < 6; i++ {
		spec := good
		cell := fmt.Sprintf("cell%d", i)
		if i == 2 || i == 4 {
			spec = scenario.Spec{Name: "empty"} // no flows: scenario.Run fails
		}
		runs = append(runs, harness.Run{Index: i, Cell: cell, Spec: spec})
	}
	for _, workers := range []int{1, 3} {
		_, err := harness.Execute(runs, harness.Options{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), `run 2 (cell "cell2"`) {
			t.Fatalf("workers=%d: err = %v, want first grid-order failure (run 2)", workers, err)
		}
	}
}

func TestGridSweepStructure(t *testing.T) {
	cfg := harness.SweepConfig{Duration: time.Second, Seed: 42, Replications: 3}
	sw := harness.GridSweep("g", cfg, []string{"a", "b"}, func(cell string) scenario.Spec {
		return scenario.Paper(40 * time.Millisecond)
	})
	if len(sw.Runs) != 6 {
		t.Fatalf("runs = %d, want 6", len(sw.Runs))
	}
	for i, r := range sw.Runs {
		if r.Index != i {
			t.Fatalf("run %d has index %d", i, r.Index)
		}
		wantCell := "a"
		if i >= 3 {
			wantCell = "b"
		}
		if r.Cell != wantCell || r.Rep != i%3 {
			t.Fatalf("run %d = cell %q rep %d", i, r.Cell, r.Rep)
		}
		if r.Spec.Seed != harness.ReplicationSeed(42, r.Rep) {
			t.Fatalf("run %d seed %d not derived from (42, %d)", i, r.Spec.Seed, r.Rep)
		}
		if r.Spec.Duration != time.Second {
			t.Fatalf("run %d duration %v", i, r.Spec.Duration)
		}
	}
	// Same rep in different cells shares the seed; different reps differ.
	if sw.Runs[0].Spec.Seed != sw.Runs[3].Spec.Seed {
		t.Fatal("rep 0 seeds differ across cells")
	}
	if sw.Runs[0].Spec.Seed == sw.Runs[1].Spec.Seed {
		t.Fatal("rep 0 and rep 1 share a seed")
	}
}

func TestCellsAndAggregate(t *testing.T) {
	sw := shortSweep(t)
	results, err := harness.Execute(sw.Runs, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	order, byCell := harness.Cells(results)
	if !reflect.DeepEqual(order, []string{"30ms", "40ms"}) {
		t.Fatalf("cell order = %v", order)
	}
	for _, cell := range order {
		rs := byCell[cell]
		if len(rs) != 2 {
			t.Fatalf("cell %s has %d reps", cell, len(rs))
		}
		if rs[0].Run.Rep != 0 || rs[1].Run.Rep != 1 {
			t.Fatalf("cell %s reps out of order", cell)
		}
		sum := harness.Aggregate(rs, func(r *scenario.Result) float64 {
			return r.TotalKbps(piconet.Guaranteed)
		})
		if sum.N != 2 {
			t.Fatalf("cell %s aggregated %d values", cell, sum.N)
		}
		if sum.Mean < 200 || sum.Mean > 300 {
			t.Fatalf("cell %s GS mean = %v, want ~256", cell, sum.Mean)
		}
		if sum.Min > sum.Mean || sum.Max < sum.Mean {
			t.Fatalf("cell %s summary inconsistent: %+v", cell, sum)
		}
	}
}

func TestComparisonAndExtensionSweeps(t *testing.T) {
	cfg := harness.SweepConfig{Duration: time.Second, Seed: 1}
	cmp := harness.ComparisonSweep(cfg, []scenario.BEPollerKind{scenario.BERoundRobin, scenario.BEPFP})
	if len(cmp.Runs) != 2 {
		t.Fatalf("comparison runs = %d", len(cmp.Runs))
	}
	if cmp.Runs[0].Spec.BEPoller != scenario.BERoundRobin {
		t.Fatalf("cell 0 poller = %q", cmp.Runs[0].Spec.BEPoller)
	}
	ext := harness.ExtensionSweep(cfg, []float64{0, 1e-4})
	// Lossless runs once; the lossy point runs with and without recovery.
	if len(ext.Runs) != 3 {
		t.Fatalf("extension runs = %d, want 3", len(ext.Runs))
	}
	if ext.Runs[0].Spec.ARQ {
		t.Fatal("lossless run must not enable ARQ")
	}
	if !ext.Runs[1].Spec.ARQ || ext.Runs[1].Spec.LossRecovery {
		t.Fatalf("run 1 = %+v, want ARQ without recovery", ext.Runs[1].Spec)
	}
	if !ext.Runs[2].Spec.LossRecovery {
		t.Fatal("run 2 must enable recovery")
	}
}

// panicTracer panics on the first traced exchange: a stand-in for any
// bug deep inside one run's simulation.
type panicTracer struct{}

func (panicTracer) Trace(piconet.TraceEntry) { panic("tracer exploded") }

// TestExecutePanicIsolated: a run that panics mid-simulation becomes that
// run's Err — the worker survives, the sweep's other runs complete, and
// the sweep error names the faulty run. Both simulate paths (with and
// without a per-run timeout) must contain the panic.
func TestExecutePanicIsolated(t *testing.T) {
	for _, timeout := range []time.Duration{0, time.Hour} {
		spec := scenario.Paper(40 * time.Millisecond)
		spec.Duration = time.Second
		runs := []harness.Run{
			{Index: 0, Cell: "ok", Spec: spec},
			{Index: 1, Cell: "boom", Spec: spec, Hooks: scenario.Hooks{Tracer: panicTracer{}}},
			{Index: 2, Cell: "ok", Rep: 1, Spec: spec},
		}
		results, err := harness.Execute(runs, harness.Options{Workers: 2, Timeout: timeout})
		if err == nil {
			t.Fatalf("timeout=%v: sweep error missing", timeout)
		}
		if !errors.Is(err, harness.ErrRunPanicked) {
			t.Fatalf("timeout=%v: sweep error = %v, want ErrRunPanicked", timeout, err)
		}
		if !errors.Is(results[1].Err, harness.ErrRunPanicked) {
			t.Fatalf("timeout=%v: run 1 err = %v", timeout, results[1].Err)
		}
		if !strings.Contains(results[1].Err.Error(), "tracer exploded") {
			t.Fatalf("timeout=%v: panic value lost: %v", timeout, results[1].Err)
		}
		for _, i := range []int{0, 2} {
			if results[i].Err != nil || results[i].Result == nil {
				t.Fatalf("timeout=%v: healthy run %d infected: %+v", timeout, i, results[i].Err)
			}
		}
	}
}
