package harness_test

import (
	"runtime"
	"testing"
	"time"

	"bluegs/internal/harness"
	"bluegs/internal/scenario"
)

// scatterRun is a multi-piconet run whose simulation shards one kernel
// per piconet — the workload of the KernelWorkers cache tests.
func scatterRun() []harness.Run {
	spec := scenario.Scatternet(scenario.ScatternetConfig{
		Piconets: 3,
		Duration: 2 * time.Second,
	})
	return []harness.Run{{Index: 0, Cell: "scatter", Spec: spec}}
}

// TestKernelWorkersPureExecutionKnob: simulating the same spec at
// different kernel worker counts produces byte-identical reports, and
// Options.KernelWorkers never leaks into the stored result's spec.
func TestKernelWorkersPureExecutionKnob(t *testing.T) {
	ref, err := harness.Execute(scatterRun(), harness.Options{KernelWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, kw := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := harness.Execute(scatterRun(), harness.Options{KernelWorkers: kw})
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Result.Report().String() != ref[0].Result.Report().String() {
			t.Fatalf("kernel workers=%d: report diverged from kernel workers=1", kw)
		}
		if got[0].Result.Spec.KernelWorkers != 0 {
			t.Fatalf("kernel workers=%d: Result.Spec.KernelWorkers = %d, want 0",
				kw, got[0].Result.Spec.KernelWorkers)
		}
	}
}

// TestCacheReplayAcrossKernelWorkers: a sweep warmed at one kernel
// worker count replays from the cache at any other — the fingerprint
// ignores the knob — and the replayed bytes match a fresh simulation.
func TestCacheReplayAcrossKernelWorkers(t *testing.T) {
	cache := newCache(t, harness.CacheConfig{})
	cold, err := harness.Execute(scatterRun(), harness.Options{Cache: cache, KernelWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cold[0].CacheHit {
		t.Fatal("cold run reported a cache hit")
	}
	warm, err := harness.Execute(scatterRun(), harness.Options{Cache: cache, KernelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !warm[0].CacheHit {
		t.Fatal("run at another kernel worker count missed the warm cache")
	}
	fresh, err := harness.Execute(scatterRun(), harness.Options{KernelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	coldR := cold[0].Result.Report().String()
	if warm[0].Result.Report().String() != coldR {
		t.Fatal("cache replay diverged from the run that warmed it")
	}
	if fresh[0].Result.Report().String() != coldR {
		t.Fatal("fresh simulation at 4 kernel workers diverged from the cached bytes")
	}
}
