package harness_test

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bluegs/internal/harness"
)

// TestRunCacheSharedDirMultiWriter: two RunCache instances over the same
// directory — two processes, in effect — execute the same sweep
// concurrently. Atomic temp+rename writes mean neither can corrupt the
// other's entries, duplicate stores are recognised and ignored, and a
// third fresh cache over the directory replays every run from disk
// bit-identically.
func TestRunCacheSharedDirMultiWriter(t *testing.T) {
	dir := t.TempDir()
	sw := shortSweep(t)
	reference, err := harness.Execute(sw.Runs, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, reference)

	caches := []*harness.RunCache{
		newCache(t, harness.CacheConfig{Dir: dir}),
		newCache(t, harness.CacheConfig{Dir: dir}),
	}
	results := make([][]harness.RunResult, len(caches))
	errs := make([]error, len(caches))
	var wg sync.WaitGroup
	for i, cache := range caches {
		wg.Add(1)
		go func(i int, cache *harness.RunCache) {
			defer wg.Done()
			results[i], errs[i] = harness.Execute(sw.Runs, harness.Options{Cache: cache})
		}(i, cache)
	}
	wg.Wait()
	for i := range caches {
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
		if got := fingerprint(t, results[i]); !reflect.DeepEqual(got, want) {
			t.Fatalf("writer %d drifted:\n got %v\nwant %v", i, got, want)
		}
	}

	// Every run either hit a cache or executed; every executed run's
	// store was booked once — as a Store, or as a DupPut when the other
	// writer's entry landed first. Nothing is lost or double-booked.
	var stores, dups, served uint64
	for i, cache := range caches {
		st := cache.Stats()
		if st.Corrupt != 0 {
			t.Fatalf("writer %d saw %d corrupt entries: %+v", i, st.Corrupt, st)
		}
		stores += st.Stores
		dups += st.DupPuts
		served += st.Hits // DiskHits is a subset of Hits
	}
	if total := stores + dups + served; total != uint64(2*len(sw.Runs)) {
		t.Fatalf("stores+dups+hits = %d+%d+%d, want %d (every run accounted once)",
			stores, dups, served, 2*len(sw.Runs))
	}
	if stores < uint64(len(sw.Runs)) || stores > uint64(2*len(sw.Runs)) {
		t.Fatalf("stores = %d for %d distinct runs across two writers", stores, len(sw.Runs))
	}

	// A fresh cache (a third process) replays the whole sweep from disk.
	fresh := newCache(t, harness.CacheConfig{Dir: dir})
	warm, err := harness.Execute(sw.Runs, harness.Options{Cache: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, warm); !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh cache replay drifted:\n got %v\nwant %v", got, want)
	}
	st := fresh.Stats()
	if st.DiskHits != uint64(len(sw.Runs)) || st.Corrupt != 0 {
		t.Fatalf("fresh cache stats = %+v, want %d clean disk hits", st, len(sw.Runs))
	}
}

// TestRunCacheDuplicatePutNoOp: storing a result whose entry already
// exists on disk (written by another process) is a clean no-op counted in
// DupPuts, and the stats rendering surfaces it.
func TestRunCacheDuplicatePutNoOp(t *testing.T) {
	dir := t.TempDir()
	sw := shortSweep(t)
	runs := sw.Runs[:1]
	if _, err := harness.Execute(runs, harness.Options{
		Cache: newCache(t, harness.CacheConfig{Dir: dir}),
	}); err != nil {
		t.Fatal(err)
	}

	// A second cache that has never seen the entry executes the run
	// (its memory is cold and getByKey fills it from disk — so force the
	// simulator path by using a memory-only first lookup order: simplest
	// is to simulate directly and Put).
	second := newCache(t, harness.CacheConfig{Dir: dir})
	res, err := harness.Execute(runs, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Put(runs[0].Spec, res[0].Result); err != nil {
		t.Fatalf("duplicate put errored: %v", err)
	}
	st := second.Stats()
	if st.DupPuts != 1 || st.Stores != 0 {
		t.Fatalf("stats = %+v, want 1 duplicate put and 0 stores", st)
	}
	if s := st.String(); !strings.Contains(s, "1 duplicate puts ignored") {
		t.Fatalf("stats string %q does not surface the duplicate put", s)
	}

	// Same-cache double put: the in-memory entry short-circuits it.
	first := newCache(t, harness.CacheConfig{})
	if err := first.Put(runs[0].Spec, res[0].Result); err != nil {
		t.Fatal(err)
	}
	if err := first.Put(runs[0].Spec, res[0].Result); err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.Stores != 1 || st.DupPuts != 1 {
		t.Fatalf("stats = %+v, want 1 store + 1 duplicate put", st)
	}
}

// TestExecuteInterrupt: a fired Interrupt channel stops dispatch, the
// abandoned runs carry ErrInterrupted, and completed results are intact —
// the checkpoint contract cmd SIGINT handling relies on.
func TestExecuteInterrupt(t *testing.T) {
	sw := shortSweep(t)
	interrupt := make(chan struct{})
	var once sync.Once
	results, err := harness.Execute(sw.Runs, harness.Options{
		Workers: 1,
		OnProgress: func(done, total int, r harness.RunResult) {
			once.Do(func() { close(interrupt) })
		},
		Interrupt: interrupt,
	})
	if !errors.Is(err, harness.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	var completed, abandoned int
	for i, r := range results {
		switch {
		case errors.Is(r.Err, harness.ErrInterrupted):
			abandoned++
		case r.Err == nil && r.Result != nil:
			completed++
		default:
			t.Fatalf("run %d: unexpected state err=%v", i, r.Err)
		}
	}
	if completed == 0 || abandoned == 0 {
		t.Fatalf("completed = %d, abandoned = %d, want both non-zero", completed, abandoned)
	}
	// The dispatcher checks the interrupt before every send, so after the
	// first run's OnProgress fired at most one more run can slip through.
	if completed > 2 {
		t.Fatalf("completed = %d runs after an interrupt at run 1", completed)
	}

	// An interrupt that has already fired abandons everything.
	closed := make(chan struct{})
	close(closed)
	results, err = harness.Execute(sw.Runs, harness.Options{Workers: 1, Interrupt: closed})
	if !errors.Is(err, harness.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, harness.ErrInterrupted) {
			t.Fatalf("run %d not abandoned: err=%v", i, r.Err)
		}
	}
}
