package harness

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"bluegs/internal/radio"
	"bluegs/internal/scenario"
)

// SweepConfig tunes sweep construction: the per-run horizon, the base
// seed, and how many independently seeded replications each cell runs.
// The zero value uses a 60 s horizon, seed 1 and one replication.
type SweepConfig struct {
	Duration     time.Duration
	Seed         int64
	Replications int
}

// WithDefaults fills the zero fields.
func (c SweepConfig) WithDefaults() SweepConfig {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Replications <= 0 {
		c.Replications = 1
	}
	return c
}

// Sweep is an ordered grid of runs ready for Execute.
type Sweep struct {
	Name string
	Runs []Run
}

// GridSweep builds a sweep from a list of cells and a spec factory: every
// cell is replicated cfg.Replications times, each replication with its
// derived seed already applied (the factory's Seed and Duration fields
// are overwritten). This is the generic builder the typed sweeps share;
// experiments with bespoke grids (ablations, coexistence pairs) use it
// directly.
//
// The factory is called once per run, but interface-valued Spec fields
// (Radio, Tracer) shared across those returns are shared across
// concurrently executing runs: they must be stateless (like radio.BER)
// or distinct per call, or the bit-identical guarantee — and the race
// detector — breaks. Cells must be unique: duplicates merge under one
// Cells key.
func GridSweep(name string, cfg SweepConfig, cells []string,
	build func(cell string) scenario.Spec) Sweep {
	cfg = cfg.WithDefaults()
	sw := Sweep{Name: name}
	for _, cell := range cells {
		for rep := 0; rep < cfg.Replications; rep++ {
			spec := build(cell)
			spec.Duration = cfg.Duration
			spec.Seed = ReplicationSeed(cfg.Seed, rep)
			sw.Runs = append(sw.Runs, Run{
				Index: len(sw.Runs),
				Cell:  cell,
				Rep:   rep,
				Spec:  spec,
			})
		}
	}
	return sw
}

// Fig5Sweep builds the paper's Figure 5 grid: the Fig. 4 piconet at every
// delay target, replicated per SweepConfig. Cells are the target
// durations rendered with time.Duration.String.
func Fig5Sweep(cfg SweepConfig, targets []time.Duration) Sweep {
	cells := make([]string, len(targets))
	byCell := make(map[string]time.Duration, len(targets))
	for i, t := range targets {
		cells[i] = t.String()
		byCell[cells[i]] = t
	}
	return GridSweep("fig5", cfg, cells, func(cell string) scenario.Spec {
		return scenario.Paper(byCell[cell])
	})
}

// ComparisonSweep builds the best-effort poller comparison grid
// (experiment A2): the saturated baseline piconet under every given
// poller kind. Cells are the poller kind names.
func ComparisonSweep(cfg SweepConfig, kinds []scenario.BEPollerKind) Sweep {
	cells := make([]string, len(kinds))
	for i, k := range kinds {
		cells[i] = string(k)
	}
	return GridSweep("comparison", cfg, cells, func(cell string) scenario.Spec {
		return scenario.Baseline(scenario.BEPollerKind(cell))
	})
}

// ExtensionCell names one (bit error rate, recovery) grid point of the
// retransmission extension sweep. The BER is rendered losslessly so that
// nearby rates (e.g. 1e-5 and 1.4e-5) never collapse into one cell.
func ExtensionCell(ber float64, recovery bool) string {
	cell := "ber=" + strconv.FormatFloat(ber, 'g', -1, 64)
	if recovery {
		cell += "/recovery"
	}
	return cell
}

// StderrProgress returns a progress callback that rewrites a
// "label: done/total runs" line on stderr, finishing it with a newline —
// the shared implementation behind the cmd tools' -progress flags.
func StderrProgress(label string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// ExtensionSweep builds the retransmission-study grid (experiment E5, the
// paper's stated future work): the Fig. 4 piconet at a 40 ms requirement
// across a bit-error-rate sweep, without and with the saved-bandwidth
// recovery policy. The lossless point runs only once (recovery is
// meaningless without losses).
func ExtensionSweep(cfg SweepConfig, bers []float64) Sweep {
	type point struct {
		ber      float64
		recovery bool
	}
	var cells []string
	byCell := make(map[string]point)
	for _, ber := range bers {
		for _, recovery := range []bool{false, true} {
			if ber == 0 && recovery {
				continue // identical to the lossless baseline
			}
			cell := ExtensionCell(ber, recovery)
			if _, dup := byCell[cell]; dup {
				continue // duplicate BER in the input
			}
			cells = append(cells, cell)
			byCell[cell] = point{ber, recovery}
		}
	}
	return GridSweep("extensions", cfg, cells, func(cell string) scenario.Spec {
		p := byCell[cell]
		spec := scenario.Paper(40 * time.Millisecond)
		if p.ber > 0 {
			spec.Radio = radio.BER{BitErrorRate: p.ber}
			spec.ARQ = true
			spec.LossRecovery = p.recovery
		}
		return spec
	})
}
