package harness

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"bluegs/internal/scenario"
)

// SweepConfig tunes sweep construction: the per-run horizon, the base
// seed, and how many independently seeded replications each cell runs.
// The zero value uses a 60 s horizon, seed 1 and one replication.
type SweepConfig struct {
	Duration     time.Duration
	Seed         int64
	Replications int
}

// WithDefaults fills the zero fields.
func (c SweepConfig) WithDefaults() SweepConfig {
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Replications <= 0 {
		c.Replications = 1
	}
	return c
}

// Sweep is an ordered grid of runs ready for Execute.
type Sweep struct {
	Name string
	Runs []Run
}

// Grid is the generative form of a sweep: the cells plus the spec
// factory, before any replication count is fixed. Execute-style fixed
// sweeps derive from it via Sweep; ExecuteAdaptive keeps the Grid around
// so it can keep scheduling further replications per cell until the
// confidence target is met.
//
// Build is called once per run and returns pure data (Spec carries no
// live model or observer instances — each run constructs its own radio
// model from the declarative RadioSpec), so sharing across concurrently
// executing runs is safe by construction. Cells must be unique:
// duplicates merge under one Cells key.
type Grid struct {
	Name  string
	Cells []string
	Build func(cell string) scenario.Spec
}

// Run materialises one (cell, replication) point of the grid: the
// factory's Seed and Duration fields are overwritten with the sweep
// horizon and the seed derived from (cfg.Seed, rep).
func (g Grid) Run(cfg SweepConfig, index int, cell string, rep int) Run {
	spec := g.Build(cell)
	spec.Duration = cfg.Duration
	spec.Seed = ReplicationSeed(cfg.Seed, rep)
	return Run{Index: index, Cell: cell, Rep: rep, Spec: spec}
}

// Sweep expands the grid into the fixed (cell × replication) run list.
func (g Grid) Sweep(cfg SweepConfig) Sweep {
	cfg = cfg.WithDefaults()
	sw := Sweep{Name: g.Name}
	for _, cell := range g.Cells {
		for rep := 0; rep < cfg.Replications; rep++ {
			sw.Runs = append(sw.Runs, g.Run(cfg, len(sw.Runs), cell, rep))
		}
	}
	return sw
}

// GridSweep builds a fixed sweep from a list of cells and a spec factory
// (see Grid for the sharing caveats). This is the generic builder the
// typed sweeps share; experiments with bespoke grids (ablations,
// coexistence pairs) use it directly.
func GridSweep(name string, cfg SweepConfig, cells []string,
	build func(cell string) scenario.Spec) Sweep {
	return Grid{Name: name, Cells: cells, Build: build}.Sweep(cfg)
}

// Fig5Grid is the paper's Figure 5 grid: the Fig. 4 piconet at every
// delay target. Cells are the target durations rendered with
// time.Duration.String.
func Fig5Grid(targets []time.Duration) Grid {
	cells := make([]string, len(targets))
	byCell := make(map[string]time.Duration, len(targets))
	for i, t := range targets {
		cells[i] = t.String()
		byCell[cells[i]] = t
	}
	return Grid{Name: "fig5", Cells: cells, Build: func(cell string) scenario.Spec {
		return scenario.Paper(byCell[cell])
	}}
}

// Fig5Sweep builds the paper's Figure 5 grid at a fixed replication
// count per SweepConfig.
func Fig5Sweep(cfg SweepConfig, targets []time.Duration) Sweep {
	return Fig5Grid(targets).Sweep(cfg)
}

// ComparisonGrid is the best-effort poller comparison grid (experiment
// A2): the saturated baseline piconet under every given poller kind.
// Cells are the poller kind names.
func ComparisonGrid(kinds []scenario.BEPollerKind) Grid {
	cells := make([]string, len(kinds))
	for i, k := range kinds {
		cells[i] = string(k)
	}
	return Grid{Name: "comparison", Cells: cells, Build: func(cell string) scenario.Spec {
		return scenario.Baseline(scenario.BEPollerKind(cell))
	}}
}

// ComparisonSweep builds the poller comparison grid at a fixed
// replication count.
func ComparisonSweep(cfg SweepConfig, kinds []scenario.BEPollerKind) Sweep {
	return ComparisonGrid(kinds).Sweep(cfg)
}

// ExtensionCell names one (bit error rate, recovery) grid point of the
// retransmission extension sweep. The BER is rendered losslessly so that
// nearby rates (e.g. 1e-5 and 1.4e-5) never collapse into one cell.
func ExtensionCell(ber float64, recovery bool) string {
	cell := "ber=" + strconv.FormatFloat(ber, 'g', -1, 64)
	if recovery {
		cell += "/recovery"
	}
	return cell
}

// StderrProgress returns a progress callback that rewrites a
// "label: done/total runs" line on stderr, finishing it with a newline —
// the shared implementation behind the cmd tools' -progress flags.
func StderrProgress(label string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// ExtensionGrid is the retransmission-study grid (experiment E5, the
// paper's stated future work): the Fig. 4 piconet at a 40 ms requirement
// across a bit-error-rate sweep, without and with the saved-bandwidth
// recovery policy. The lossless point runs only once (recovery is
// meaningless without losses).
func ExtensionGrid(bers []float64) Grid {
	type point struct {
		ber      float64
		recovery bool
	}
	var cells []string
	byCell := make(map[string]point)
	for _, ber := range bers {
		for _, recovery := range []bool{false, true} {
			if ber == 0 && recovery {
				continue // identical to the lossless baseline
			}
			cell := ExtensionCell(ber, recovery)
			if _, dup := byCell[cell]; dup {
				continue // duplicate BER in the input
			}
			cells = append(cells, cell)
			byCell[cell] = point{ber, recovery}
		}
	}
	return Grid{Name: "extensions", Cells: cells, Build: func(cell string) scenario.Spec {
		p := byCell[cell]
		spec := scenario.Paper(40 * time.Millisecond)
		if p.ber > 0 {
			spec.Radio = scenario.BERRadio(p.ber)
			spec.ARQ = true
			spec.LossRecovery = p.recovery
		}
		return spec
	}}
}

// ExtensionSweep builds the retransmission-study grid at a fixed
// replication count.
func ExtensionSweep(cfg SweepConfig, bers []float64) Sweep {
	return ExtensionGrid(bers).Sweep(cfg)
}
