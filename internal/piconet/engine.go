package piconet

import (
	"fmt"

	"bluegs/internal/baseband"
	"bluegs/internal/sim"
)

// Err returns the first fatal error encountered by the engine (an invalid
// scheduler action). The simulation stops when one occurs.
func (p *Piconet) Err() error { return p.err }

// alignUp rounds t up to the next master transmit opportunity (even slot
// boundary relative to the piconet start).
func (p *Piconet) alignUp(t sim.Time) sim.Time {
	if t < p.startTime {
		t = p.startTime
	}
	offset := t - p.startTime
	k := offset / DecisionInterval
	if offset%DecisionInterval != 0 {
		k++
	}
	return p.startTime + k*DecisionInterval
}

// scheduleDecision arranges for the master to decide at the aligned time at
// or after the given time, superseding any pending idle wake-up.
func (p *Piconet) scheduleDecision(at sim.Time) {
	at = p.alignUp(at)
	if p.wake.Pending() {
		if p.wake.At() <= at {
			return
		}
		p.simulator.Cancel(p.wake)
	}
	p.wake = p.simulator.Schedule(at, p.decideFn)
}

// wakeIfIdle pulls the next decision forward to the next transmit
// opportunity; called on master-side arrivals so an idling master reacts.
func (p *Piconet) wakeIfIdle() {
	if p.stopped {
		return
	}
	now := p.simulator.Now()
	if now < p.busyUntil {
		return // mid-exchange: a decision is already scheduled at its end
	}
	next := p.alignUp(now)
	if p.wake.Pending() {
		if p.wake.At() <= next {
			return
		}
		p.simulator.Cancel(p.wake)
	}
	p.wake = p.simulator.Schedule(next, p.decideFn)
}

// decide runs one master decision opportunity.
func (p *Piconet) decide() {
	p.wake = sim.Event{}
	if p.err != nil || p.stopped {
		return
	}
	now := p.simulator.Now()
	if now < p.busyUntil {
		// A stale wake-up landed mid-exchange (e.g. an arrival event
		// scheduled a decision for the same instant an exchange
		// began); the exchange-end callback will decide next.
		return
	}
	slot := p.slotIndex(now)
	if l := p.scoDue(slot); l != nil {
		// SCO reservations preempt all polling.
		p.executeSCO(now, l)
		return
	}
	window := p.slotsUntilNextReservation(slot)
	action := p.scheduler.Decide(now, int(window))
	switch action.Kind {
	case ActionIdle:
		until := action.Until
		if minNext := now + DecisionInterval; until < minNext {
			until = minNext
		}
		// Never sleep through an SCO reservation.
		if window != noWindowLimit {
			if res := now + sim.Time(window)*baseband.SlotDuration; until > res {
				until = res
			}
		}
		p.scheduleDecision(until)
	case ActionPollGS, ActionPollBE:
		if err := p.executePoll(now, action, window); err != nil {
			p.err = fmt.Errorf("at %v: %w", now, err)
			p.simulator.Stop()
		}
	default:
		p.err = fmt.Errorf("%w: kind %d", ErrActionInvalid, action.Kind)
		p.simulator.Stop()
	}
}

// resolveGSLeg validates and returns the flow state for one leg of a GS
// poll action.
func (p *Piconet) resolveGSLeg(a Action, flow FlowID, dir Direction) (*flowState, error) {
	if flow == None {
		return nil, nil
	}
	fs, ok := p.flows[flow]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	if fs.retired {
		return nil, fmt.Errorf("%w: %d", ErrFlowRetired, flow)
	}
	if fs.suspended {
		return nil, fmt.Errorf("%w: %d", ErrFlowSuspended, flow)
	}
	if fs.cfg.Slave != a.Slave {
		return nil, fmt.Errorf("%w: flow %d is at slave %d, polled slave %d",
			ErrSlaveNotOfFlow, flow, fs.cfg.Slave, a.Slave)
	}
	if fs.cfg.Dir != dir {
		return nil, fmt.Errorf("%w: flow %d direction %v, expected %v",
			ErrQueueMismatch, flow, fs.cfg.Dir, dir)
	}
	if fs.cfg.Class != Guaranteed {
		return nil, fmt.Errorf("%w: flow %d is %v", ErrClassMismatch, flow, fs.cfg.Class)
	}
	return fs, nil
}

// pickBE returns the first best-effort flow of the slave in the given
// direction whose head packet is available at the cutoff, rotating through
// the slave's flows for fairness across multiple BE flows.
func (p *Piconet) pickBE(sl *slaveState, dir Direction, cutoff sim.Time) *flowState {
	n := len(sl.flows)
	for i := 0; i < n; i++ {
		id := sl.flows[(sl.beRR+i)%n]
		fs := p.flows[id]
		if fs.cfg.Class != BestEffort || fs.cfg.Dir != dir || fs.retired || fs.suspended {
			continue
		}
		if fs.headAvailable(cutoff) {
			sl.beRR = (sl.beRR + i + 1) % n
			return fs
		}
	}
	return nil
}

// executePoll performs one poll exchange starting at now. window is the
// number of slots available before the next SCO reservation; an exchange
// that would overlap it is a scheduler error.
func (p *Piconet) executePoll(now sim.Time, a Action, window int64) error {
	sl, ok := p.slaves[a.Slave]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSlave, a.Slave)
	}

	var downFS, upFS *flowState
	switch a.Kind {
	case ActionPollGS:
		var err error
		if downFS, err = p.resolveGSLeg(a, a.DownFlow, Down); err != nil {
			return err
		}
		if upFS, err = p.resolveGSLeg(a, a.UpFlow, Up); err != nil {
			return err
		}
		if downFS == nil && upFS == nil {
			return fmt.Errorf("%w: GS poll with no flows", ErrActionInvalid)
		}
	case ActionPollBE:
		downFS = p.pickBE(sl, Down, now)
		upFS = p.pickBEUp(sl, now)
	}

	rng := p.simulator.Rand()
	cutoff := now // paper §3.1: data must be available at master TX start
	// An active link fault fails the exchange outright; the radio model
	// is not consulted, so its RNG draws and chain state are untouched.
	linkUp := p.linkDown == nil || !p.linkDown(a.Slave, now)

	// Downlink leg.
	down := LegOutcome{Type: baseband.TypePOLL}
	var downPkt *hlPacket
	if downFS != nil {
		if pkt := downFS.headPacket(cutoff); pkt != nil {
			downPkt = pkt
			seg := pkt.plan[pkt.nextSeg]
			down = LegOutcome{Flow: downFS.cfg.ID, Type: seg.Type, Bytes: seg.Bytes}
		}
	}
	downDelivered := false
	if linkUp {
		downDelivered = p.radioModel.Deliver(rng, down.Type)
	}
	downEnd := now + down.Type.Duration()

	// Uplink leg: the slave answers only if it decoded the master's
	// packet; otherwise its response slot passes silently.
	up := LegOutcome{Type: baseband.TypeNULL}
	var upPkt *hlPacket
	upMore := false
	upDelivered := true
	upDur := baseband.TypeNULL.Duration() // silence also occupies one slot
	if downDelivered {
		if upFS != nil {
			if pkt := upFS.headPacket(cutoff); pkt != nil {
				upPkt = pkt
				seg := pkt.plan[pkt.nextSeg]
				up = LegOutcome{Flow: upFS.cfg.ID, Type: seg.Type, Bytes: seg.Bytes}
			}
			upMore = upFS.moreAfterHeadSegment(cutoff)
		}
		upDelivered = p.radioModel.Deliver(rng, up.Type)
		upDur = up.Type.Duration()
	}
	end := downEnd + upDur
	if int64((end-now)/baseband.SlotDuration) > window {
		return fmt.Errorf("%w: %v+%v exchange, %d free slots",
			ErrWindowOverflow, down.Type, up.Type, window)
	}

	// Apply downlink state changes.
	if downPkt != nil {
		if downDelivered {
			p.advanceHead(downFS, downPkt, downEnd, &down)
		} else {
			down.Lost = true
			down.Bytes = 0
			p.handleLoss(downFS, downPkt, downEnd)
		}
	}
	// Apply uplink state changes.
	if upPkt != nil {
		if upDelivered {
			p.advanceHead(upFS, upPkt, end, &up)
		} else {
			up.Lost = true
			up.Bytes = 0
			p.handleLoss(upFS, upPkt, end)
		}
	}

	outcome := Outcome{
		Start:      now,
		End:        end,
		Kind:       a.Kind,
		Slave:      a.Slave,
		Down:       down,
		Up:         up,
		UpMoreData: upMore,
	}
	p.busyUntil = end
	downOK, upOK := downDelivered, upDelivered && downDelivered
	kind := TraceGS
	if a.Kind == ActionPollBE {
		kind = TraceBE
	}
	p.pendingPoll = pendingExchange{
		kind: a.Kind,
		down: down, downOK: downOK,
		up: up, upOK: upOK,
		outcome: outcome,
		entry: TraceEntry{
			Start: now, End: end, Kind: kind, Slave: a.Slave,
			DownType: down.Type, UpType: up.Type,
			DownFlow: down.Flow, UpFlow: up.Flow,
			DownBytes: down.Bytes, UpBytes: up.Bytes,
			Lost: down.Lost || up.Lost,
		},
	}
	p.simulator.Schedule(end, p.finishPollFn)
	return nil
}

// pendingExchange carries the one in-flight ACL exchange to its completion
// event, replacing a per-poll closure environment. busyUntil guarantees at
// most one exchange is outstanding, so a single slot on the Piconet
// suffices.
type pendingExchange struct {
	kind         ActionKind
	down, up     LegOutcome
	downOK, upOK bool
	outcome      Outcome
	entry        TraceEntry
}

// finishPoll runs at an ACL exchange's end. Slots are booked at exchange end
// so that a SlotAccount snapshot never counts slots beyond the measurement
// horizon.
func (p *Piconet) finishPoll() {
	pe := &p.pendingPoll
	p.account(pe.kind, pe.down, pe.downOK, pe.up, pe.upOK)
	p.trace(pe.entry)
	p.scheduler.OnOutcome(pe.outcome)
	p.superviseExchange(pe)
	p.decide()
}

// superviseExchange feeds one completed ACL exchange into the link
// supervision timeout: an exchange with no decodable slave response is a
// failure, and supLimit consecutive failures declare the link dead —
// firing onLinkDead once per failure episode. Any decodable response
// re-arms the timeout.
func (p *Piconet) superviseExchange(pe *pendingExchange) {
	if p.supLimit <= 0 || p.onLinkDead == nil {
		return
	}
	sl, ok := p.slaves[pe.outcome.Slave]
	if !ok {
		return
	}
	if pe.upOK {
		sl.consecFails = 0
		sl.linkDead = false
		return
	}
	if sl.consecFails == 0 {
		sl.failingSince = pe.outcome.Start
	}
	sl.consecFails++
	if sl.consecFails >= p.supLimit && !sl.linkDead {
		sl.linkDead = true
		p.onLinkDead(sl.id, sl.failingSince, pe.outcome.End)
	}
}

// pickBEUp selects the slave's best-effort uplink flow for a BE poll,
// rotating independently of the downlink pick.
func (p *Piconet) pickBEUp(sl *slaveState, cutoff sim.Time) *flowState {
	n := len(sl.flows)
	for i := 0; i < n; i++ {
		id := sl.flows[(sl.beUpRR+i)%n]
		fs := p.flows[id]
		if fs.cfg.Class != BestEffort || fs.cfg.Dir != Up || fs.retired || fs.suspended {
			continue
		}
		if fs.headAvailable(cutoff) {
			sl.beUpRR = (sl.beUpRR + i + 1) % n
			return fs
		}
	}
	return nil
}

// advanceHead consumes the head segment of pkt at the given delivery time,
// recording completion in the leg outcome and the flow statistics and
// firing the delivery hook on packet completion.
func (p *Piconet) advanceHead(fs *flowState, pkt *hlPacket, deliveredAt sim.Time, leg *LegOutcome) {
	pkt.consumeSegment()
	if pkt.done() {
		leg.CompletedPacketSize = pkt.size
		intact := !pkt.corrupt
		if intact {
			fs.delay.Add(deliveredAt - pkt.arrival)
			fs.delivered.Add(pkt.size)
		} else {
			fs.lost.Add(pkt.size)
		}
		fs.popCompleted()
		if p.onDelivery != nil {
			p.onDelivery(fs.cfg.ID, pkt.size, deliveredAt, intact)
		}
	}
}

// handleLoss processes an on-air segment loss: with ARQ the segment stays at
// the head of the queue for retransmission; without it the segment is
// consumed and the packet marked corrupt (counted lost at completion — the
// delivery hook still fires so observers see every packet leave the queue).
func (p *Piconet) handleLoss(fs *flowState, pkt *hlPacket, at sim.Time) {
	if p.arq {
		return // segment remains pending; the next poll retries it
	}
	pkt.corrupt = true
	pkt.consumeSegment()
	if pkt.done() {
		fs.lost.Add(pkt.size)
		fs.popCompleted()
		if p.onDelivery != nil {
			p.onDelivery(fs.cfg.ID, pkt.size, at, false)
		}
	}
}

// account books the exchange's slots into the slot account.
func (p *Piconet) account(kind ActionKind, down LegOutcome, downOK bool, up LegOutcome, upOK bool) {
	gs := kind == ActionPollGS
	book := func(leg LegOutcome, delivered bool) {
		slots := int64(leg.Type.Slots())
		switch {
		case leg.Type == baseband.TypePOLL || leg.Type == baseband.TypeNULL:
			if gs {
				p.acct.GSOverhead += slots
			} else {
				p.acct.BEOverhead += slots
			}
		case !delivered && p.arq:
			p.acct.Retransmit += slots
		case gs:
			p.acct.GSData += slots
		default:
			p.acct.BEData += slots
		}
	}
	book(down, downOK)
	book(up, upOK)
}
