package piconet_test

import (
	"fmt"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// greedyScheduler is a minimal custom polling discipline: it always polls
// slave 1's best-effort channel. Real disciplines live in internal/poller
// and internal/core.
type greedyScheduler struct{}

func (greedyScheduler) Decide(_ sim.Time, _ int) piconet.Action { return piconet.PollBE(1) }
func (greedyScheduler) OnOutcome(piconet.Outcome)               {}
func (greedyScheduler) OnDownArrival(piconet.FlowID, sim.Time)  {}

// Building a piconet from scratch: one slave, one best-effort downlink
// flow, a custom scheduler, and one packet pushed through it.
func Example() {
	s := sim.New(sim.WithSeed(1))
	pn := piconet.New(s)
	if err := pn.AddSlave(1); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := pn.AddFlow(piconet.FlowConfig{
		ID: 1, Slave: 1, Dir: piconet.Down,
		Class: piconet.BestEffort, Allowed: baseband.PaperTypes,
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	pn.SetScheduler(greedyScheduler{})
	if err := pn.Start(); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := pn.EnqueuePacket(1, 176); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := s.Run(100 * time.Millisecond); err != nil {
		fmt.Println("error:", err)
		return
	}
	delivered, _ := pn.FlowDelivered(1)
	delays, _ := pn.FlowDelayStats(1)
	fmt.Printf("delivered %d packet(s), delay %v\n", delivered.Packets(), delays.Max())
	// A 176-byte packet rides one DH3: three slots of air time.
	// Output: delivered 1 packet(s), delay 1.875ms
}
