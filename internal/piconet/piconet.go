// Package piconet models a Bluetooth piconet: one master, up to seven
// active slaves, per-flow logical channels with separate QoS and best-effort
// queues, and the master-driven TDD exchange engine that the polling
// mechanisms plug into.
//
// The model follows the assumptions of Ait Yaiz & Heijenk (ICDCSW'03) §3:
// no inquiry or paging, logical channels where a poll for a QoS flow cannot
// result in best-effort data, QoS and BE traffic queued separately, and a
// packet only being served by a poll if it was available when the master
// started the poll transmission. The radio is ideal by default; lossy models
// with ARQ retransmission can be enabled for the future-work experiments.
//
// Knowledge model: the master observes its own downlink queues exactly; for
// uplink queues it sees only poll outcomes (carried bytes, a NULL response,
// and the slave's more-data flag). Schedulers must respect this — accessor
// methods prefixed Oracle are for tests and verification only.
package piconet

import (
	"errors"
	"fmt"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/radio"
	"bluegs/internal/segmentation"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
)

// Errors returned by piconet configuration and operation.
var (
	ErrTooManySlaves  = errors.New("piconet: more than 7 active slaves")
	ErrDuplicateSlave = errors.New("piconet: duplicate slave")
	ErrUnknownSlave   = errors.New("piconet: unknown slave")
	ErrUnknownFlow    = errors.New("piconet: unknown flow")
	ErrDuplicateFlow  = errors.New("piconet: duplicate flow id")
	ErrInvalidFlow    = errors.New("piconet: invalid flow configuration")
	ErrNoScheduler    = errors.New("piconet: no scheduler installed")
	ErrAlreadyStarted = errors.New("piconet: already started")
	ErrNotDownFlow    = errors.New("piconet: flow is not master-to-slave")
	ErrQueueMismatch  = errors.New("piconet: flow/slave/direction mismatch in action")
	ErrPacketTooSmall = errors.New("piconet: packet size must be positive")
	ErrSegmentFailure = errors.New("piconet: segmentation failed")
	ErrActionInvalid  = errors.New("piconet: invalid scheduler action")
	ErrClassMismatch  = errors.New("piconet: action class does not match flow class")
	ErrSlaveNotOfFlow = errors.New("piconet: flow does not belong to addressed slave")
	ErrFlowRetired    = errors.New("piconet: flow is retired")
	ErrFlowSuspended  = errors.New("piconet: flow is suspended")
)

// DecisionInterval is the spacing of master transmit opportunities: every
// other slot (master transmissions start in even-numbered slots).
const DecisionInterval = 2 * baseband.SlotDuration

// SlaveID identifies an active slave (1..7, mirroring the AM_ADDR).
type SlaveID int

// FlowID identifies a logical flow. Zero means "no flow".
type FlowID int

// None is the absent FlowID.
const None FlowID = 0

// Direction of a flow relative to the master.
type Direction int

// Flow directions.
const (
	// Down is master-to-slave.
	Down Direction = iota + 1
	// Up is slave-to-master.
	Up
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Down:
		return "down"
	case Up:
		return "up"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Class is the service class of a flow's logical channel.
type Class int

// Flow classes.
const (
	// BestEffort traffic has no guarantees and is served in leftover
	// capacity.
	BestEffort Class = iota + 1
	// Guaranteed traffic belongs to an admitted Guaranteed Service flow.
	Guaranteed
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case BestEffort:
		return "BE"
	case Guaranteed:
		return "GS"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// FlowConfig describes one unidirectional flow in the piconet.
type FlowConfig struct {
	// ID is the flow identifier (must be nonzero and unique).
	ID FlowID
	// Slave is the slave endpoint.
	Slave SlaveID
	// Dir is the flow direction.
	Dir Direction
	// Class is the service class.
	Class Class
	// Allowed is the set of baseband packet types the flow may use.
	Allowed baseband.TypeSet
	// Policy segments higher-layer packets (defaults to best-fit).
	Policy segmentation.Policy
}

func (c FlowConfig) validate() error {
	if c.ID == None {
		return fmt.Errorf("%w: zero flow id", ErrInvalidFlow)
	}
	if c.Dir != Down && c.Dir != Up {
		return fmt.Errorf("%w: bad direction", ErrInvalidFlow)
	}
	if c.Class != BestEffort && c.Class != Guaranteed {
		return fmt.Errorf("%w: bad class", ErrInvalidFlow)
	}
	if _, ok := c.Allowed.LargestACL(); !ok {
		return fmt.Errorf("%w: no ACL types allowed", ErrInvalidFlow)
	}
	return nil
}

// ActionKind says what the master does at a decision opportunity.
type ActionKind int

// Action kinds.
const (
	// ActionIdle leaves the channel unused until Until.
	ActionIdle ActionKind = iota + 1
	// ActionPollGS polls a Guaranteed Service logical channel.
	ActionPollGS
	// ActionPollBE polls a slave's best-effort logical channel.
	ActionPollBE
)

// Action is the scheduler's decision for one master transmit opportunity.
type Action struct {
	Kind ActionKind
	// Slave is the addressed slave (poll actions).
	Slave SlaveID
	// DownFlow, for ActionPollGS, is the GS down flow whose segment rides
	// in the master's packet, or None for a bare POLL.
	DownFlow FlowID
	// UpFlow, for ActionPollGS, is the GS up flow the slave may answer
	// with, or None when the poll only pushes downlink data.
	UpFlow FlowID
	// Until, for ActionIdle, is the next time the scheduler wants to
	// decide again. Zero or past times mean "next opportunity".
	Until sim.Time
}

// Idle returns an idle action until the given time.
func Idle(until sim.Time) Action { return Action{Kind: ActionIdle, Until: until} }

// PollGS returns a GS poll action for the given slave and flow pair.
func PollGS(slave SlaveID, down, up FlowID) Action {
	return Action{Kind: ActionPollGS, Slave: slave, DownFlow: down, UpFlow: up}
}

// PollBE returns a BE poll action for the given slave.
func PollBE(slave SlaveID) Action { return Action{Kind: ActionPollBE, Slave: slave} }

// Outcome reports the result of an executed poll exchange to the scheduler.
type Outcome struct {
	// Start is when the master began transmitting; End is when the
	// exchange (including the slave's response or response slot) ended.
	Start, End sim.Time
	// Kind is the action kind that produced the exchange.
	Kind ActionKind
	// Slave is the addressed slave.
	Slave SlaveID

	// Down describes the master's packet.
	Down LegOutcome
	// Up describes the slave's response.
	Up LegOutcome

	// UpMoreData is the slave's more-data flag for the polled channel:
	// whether, at the availability cutoff, further segments were queued
	// after the served one.
	UpMoreData bool
}

// LegOutcome describes one direction of an exchange.
type LegOutcome struct {
	// Flow is the flow served (None for POLL/NULL legs or BE polls that
	// found nothing).
	Flow FlowID
	// Type is the baseband packet type sent.
	Type baseband.PacketType
	// Bytes is the number of payload bytes carried (post-loss: zero if
	// the packet was lost on air).
	Bytes int
	// Lost reports an on-air loss (only with lossy radio models).
	Lost bool
	// CompletedPacketSize is the size of the higher-layer packet whose
	// final segment this leg delivered, or zero.
	CompletedPacketSize int
}

// ServedGS reports whether the exchange moved payload for the given flow.
func (o Outcome) ServedGS(flow FlowID) bool {
	return (o.Down.Flow == flow && o.Down.Bytes > 0) || (o.Up.Flow == flow && o.Up.Bytes > 0)
}

// Scheduler is the master's polling brain. Implementations include the
// paper's Guaranteed Service scheduler (internal/core) and the best-effort
// pollers (internal/poller) via adapters.
type Scheduler interface {
	// Decide returns the master's action for the transmit opportunity at
	// now. The piconet calls it whenever the channel is free at a master
	// TX boundary. freeSlots is the number of slots available before the
	// next SCO reservation (a large value when no SCO links exist); the
	// returned exchange must fit within it.
	Decide(now sim.Time, freeSlots int) Action
	// OnOutcome delivers the result of each executed exchange at its end
	// time.
	OnOutcome(o Outcome)
	// OnDownArrival notifies the scheduler that a packet arrived in a
	// master-side (downlink) queue.
	OnDownArrival(flow FlowID, now sim.Time)
}

// Option configures a Piconet.
type Option func(*Piconet)

// WithRadio installs a radio channel model (default: ideal).
func WithRadio(m radio.Model) Option {
	return func(p *Piconet) {
		if m != nil {
			p.radioModel = m
		}
	}
}

// WithARQ enables retransmission of lost segments (used with lossy radio
// models; with an ideal radio it has no effect).
func WithARQ(enabled bool) Option {
	return func(p *Piconet) { p.arq = enabled }
}

// WithLinkFault installs a link-fault oracle: when it reports a slave's
// link down at an exchange start, the exchange fails completely — both
// legs lost, no slave response — and, critically, the radio model is
// never consulted, so the channel's RNG draw sequence and chain state
// (Gilbert–Elliott) are exactly what they would be had the master stayed
// silent. A nil fn leaves the piconet fault-free with zero per-exchange
// overhead.
func WithLinkFault(fn func(slave SlaveID, now sim.Time) bool) Option {
	return func(p *Piconet) { p.linkDown = fn }
}

// WithDeliveryHook installs a packet-completion observer: fn fires once
// per higher-layer packet when its final segment leaves the queue, with
// the packet's size, its completion instant, and whether it was delivered
// intact (false: the packet was corrupted on air and counted lost). The
// hook is how a scatternet bridge store-and-forwards — a packet completing
// its hop-1 exchange is future-dated into the bridge's hop-2 queue via
// EnqueuePacketAt at exactly the completion instant. The hook must not
// mutate this piconet; it may enqueue into other piconets.
func WithDeliveryHook(fn func(flow FlowID, size int, at sim.Time, delivered bool)) Option {
	return func(p *Piconet) { p.onDelivery = fn }
}

// WithSupervision arms a link supervision timeout: after limit
// consecutive failed ACL exchanges on a slave's link (no decodable slave
// response), the link is declared dead and onDead fires once with the
// slave, the start of the failing streak, and the detection instant. A
// successful exchange re-arms the timeout (the link can die again later,
// firing onDead again). limit <= 0 disables supervision.
func WithSupervision(limit int, onDead func(slave SlaveID, failingSince, at sim.Time)) Option {
	return func(p *Piconet) {
		p.supLimit = limit
		p.onLinkDead = onDead
	}
}

// Piconet is the simulated piconet. Create with New, configure slaves,
// flows and a scheduler, then Start it and run the simulator.
type Piconet struct {
	simulator  *sim.Simulator
	radioModel radio.Model
	arq        bool
	scheduler  Scheduler
	// linkDown, when set, is the fault oracle consulted at each exchange
	// start (see WithLinkFault).
	linkDown func(slave SlaveID, now sim.Time) bool
	// supLimit and onLinkDead implement the link supervision timeout
	// (see WithSupervision).
	supLimit   int
	onLinkDead func(slave SlaveID, failingSince, at sim.Time)
	// onDelivery, when set, observes every higher-layer packet completion
	// (see WithDeliveryHook).
	onDelivery func(flow FlowID, size int, at sim.Time, delivered bool)

	slaves map[SlaveID]*slaveState
	flows  map[FlowID]*flowState
	// flowOrder preserves AddFlow order for deterministic iteration.
	flowOrder []FlowID
	// scoLinks holds the reserved synchronous channels; retiredSCO keeps
	// the meters of links dropped mid-run for reporting.
	scoLinks   []*scoLink
	retiredSCO []*scoLink

	started bool
	// stopped marks a piconet whose master left the scatternet (see
	// Stop): no further decisions run and no wake is ever scheduled.
	stopped   bool
	startTime sim.Time
	// busyUntil is the end of the exchange in progress.
	busyUntil sim.Time
	// wake is the pending idle-decision event, cancelled when an arrival
	// warrants an earlier decision.
	wake sim.Event

	// decideFn, finishPollFn and finishSCOFn are the pre-bound event
	// handlers scheduled on the hot path; binding them once avoids a
	// closure allocation per decision and per exchange. At most one
	// exchange is ever in flight (busyUntil gates the next decision), so
	// its completion payload lives in pendingPoll/pendingSCO rather than
	// in a captured closure environment.
	decideFn     func()
	finishPollFn func()
	finishSCOFn  func()
	pendingPoll  pendingExchange
	pendingSCO   TraceEntry

	// pktFree recycles hlPacket structs (and their segmentation-plan
	// backing arrays) between arrivals.
	pktFree []*hlPacket

	acct   SlotAccount
	nextID uint64
	// tracer, when set, receives every completed exchange.
	tracer Tracer
	// err records the first fatal engine error (invalid scheduler action).
	err error
}

type slaveState struct {
	id SlaveID
	// flows lists the slave's flow ids in AddFlow order.
	flows []FlowID
	// beRR and beUpRR rotate best-effort flow selection (down and up)
	// across the slave's flows.
	beRR   int
	beUpRR int
	// consecFails counts consecutive failed ACL exchanges on this link;
	// failingSince stamps the start of the current failing streak.
	// linkDead latches after the supervision timeout fired, so it fires
	// once per failure episode (a success clears it).
	consecFails  int
	failingSince sim.Time
	linkDead     bool
}

// New returns an empty piconet bound to the simulator.
func New(s *sim.Simulator, opts ...Option) *Piconet {
	p := &Piconet{
		simulator:  s,
		radioModel: radio.Ideal{},
		slaves:     make(map[SlaveID]*slaveState),
		flows:      make(map[FlowID]*flowState),
	}
	for _, opt := range opts {
		opt(p)
	}
	p.decideFn = p.decide
	p.finishPollFn = p.finishPoll
	p.finishSCOFn = p.finishSCO
	return p
}

// Simulator returns the underlying simulator.
func (p *Piconet) Simulator() *sim.Simulator { return p.simulator }

// Now returns the current virtual time.
func (p *Piconet) Now() sim.Time { return p.simulator.Now() }

// AddSlave registers an active slave. Slaves may join mid-run (timeline
// scenarios add flows — and therefore slaves — while the master is
// polling).
func (p *Piconet) AddSlave(id SlaveID) error {
	if id < 1 || int(id) > baseband.MaxActiveSlaves {
		return fmt.Errorf("%w: slave id %d outside 1..%d", ErrInvalidFlow, id, baseband.MaxActiveSlaves)
	}
	if _, dup := p.slaves[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateSlave, id)
	}
	if len(p.slaves) >= baseband.MaxActiveSlaves {
		return ErrTooManySlaves
	}
	p.slaves[id] = &slaveState{id: id}
	return nil
}

// AddFlow registers a flow. The slave must already exist. Flows may be
// added after Start (online admission); callers that install flows mid-run
// must refresh the scheduler's view themselves (see core.Scheduler.Replan
// and RefreshBE).
func (p *Piconet) AddFlow(cfg FlowConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	sl, ok := p.slaves[cfg.Slave]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSlave, cfg.Slave)
	}
	if _, dup := p.flows[cfg.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateFlow, cfg.ID)
	}
	if cfg.Policy == nil {
		cfg.Policy = segmentation.BestFit{}
	}
	p.flows[cfg.ID] = newFlowState(p, cfg)
	p.flowOrder = append(p.flowOrder, cfg.ID)
	sl.flows = append(sl.flows, cfg.ID)
	return nil
}

// RetireFlow takes a flow out of service: queued packets are dropped, no
// further packets may be enqueued and no poll may address it. The flow's
// configuration and measurement state stay readable (Flows still lists it,
// its meters and delay statistics keep their final values), so a run's
// report covers flows that left mid-run. Retiring is permanent; re-adding
// the same id is an error.
func (p *Piconet) RetireFlow(id FlowID) error {
	fs, ok := p.flows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, id)
	}
	if fs.retired {
		return fmt.Errorf("%w: %d", ErrFlowRetired, id)
	}
	fs.retired = true
	now := p.simulator.Now()
	for fs.qlen() > 0 {
		pkt := fs.qpop()
		if pkt.arrival > now {
			// A batched source pre-counted this future packet; the flow
			// leaves before it ever arrives, so it never existed — the
			// per-packet path would not have generated it.
			fs.offered.Unadd(pkt.size)
		}
		p.freePacket(pkt)
	}
	return nil
}

// SuspendFlow takes a flow out of service reversibly: its queue is
// flushed (packets stuck behind a dead link must not complete late once
// the link heals), no packet may be enqueued and no poll may address it —
// but, unlike RetireFlow, a later ResumeFlow puts it back in service.
// The supervision/recovery machinery uses the suspend/resume pair; meters
// and delay statistics keep accumulating across the gap.
func (p *Piconet) SuspendFlow(id FlowID) error {
	fs, ok := p.flows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, id)
	}
	if fs.retired {
		return fmt.Errorf("%w: %d", ErrFlowRetired, id)
	}
	if fs.suspended {
		return fmt.Errorf("%w: %d", ErrFlowSuspended, id)
	}
	fs.suspended = true
	now := p.simulator.Now()
	for fs.qlen() > 0 {
		pkt := fs.qpop()
		if pkt.arrival > now {
			// Pre-counted future arrival of a batched source: the flow is
			// out of service before it exists, so it never existed.
			fs.offered.Unadd(pkt.size)
		}
		p.freePacket(pkt)
	}
	return nil
}

// ResumeFlow puts a suspended flow back in service: packets may be
// enqueued and polls may address it again. The resumed flow starts with
// an empty queue.
func (p *Piconet) ResumeFlow(id FlowID) error {
	fs, ok := p.flows[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, id)
	}
	if fs.retired {
		return fmt.Errorf("%w: %d", ErrFlowRetired, id)
	}
	fs.suspended = false
	return nil
}

// FlowSuspended reports whether the flow exists and is suspended.
func (p *Piconet) FlowSuspended(id FlowID) bool {
	fs, ok := p.flows[id]
	return ok && fs.suspended
}

// PruneFutureArrivals drops every queued packet whose arrival stamp is
// after cutoff, uncounting it from its flow's offered meter. Scatternet
// piconet removal uses it: batched sources pre-enqueue future arrivals,
// and a piconet that leaves at t must report exactly the offered load a
// per-packet source would have generated by t.
func (p *Piconet) PruneFutureArrivals(cutoff sim.Time) {
	for _, id := range p.flowOrder {
		fs := p.flows[id]
		for fs.qlen() > 0 {
			tail := fs.qat(fs.qlen() - 1)
			if tail.arrival <= cutoff {
				break
			}
			fs.offered.Unadd(tail.size)
			p.freePacket(fs.qpopTail())
		}
	}
}

// FlowActive reports whether the flow exists and has not been retired.
func (p *Piconet) FlowActive(id FlowID) bool {
	fs, ok := p.flows[id]
	return ok && !fs.retired
}

// Kick pulls the master's next decision forward to the next transmit
// opportunity. Callers that change the topology mid-run (adding a flow or
// an SCO reservation) use it so an idling master reacts immediately
// instead of sleeping through the change.
func (p *Piconet) Kick() {
	if p.started && !p.stopped {
		p.wakeIfIdle()
	}
}

// Stop halts the master's decision loop permanently: the pending wake is
// cancelled, no further poll or SCO exchange starts, and an exchange in
// flight completes its accounting without triggering another decision.
// Flow statistics stay readable, so a piconet removed from a scatternet
// mid-run still reports. Stopping is idempotent and permanent.
func (p *Piconet) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.wake.Pending() {
		p.simulator.Cancel(p.wake)
		p.wake = sim.Event{}
	}
}

// Stopped reports whether Stop was called.
func (p *Piconet) Stopped() bool { return p.stopped }

// SetScheduler installs the master's scheduler. Must be called before Start.
func (p *Piconet) SetScheduler(s Scheduler) { p.scheduler = s }

// Start begins the master's decision loop at the current simulation time.
func (p *Piconet) Start() error {
	if p.started {
		return ErrAlreadyStarted
	}
	if p.scheduler == nil {
		return ErrNoScheduler
	}
	p.started = true
	p.startTime = p.simulator.Now()
	p.scheduleDecision(p.startTime)
	return nil
}

// Slaves returns the registered slave ids in ascending order.
func (p *Piconet) Slaves() []SlaveID {
	out := make([]SlaveID, 0, len(p.slaves))
	for id := SlaveID(1); int(id) <= baseband.MaxActiveSlaves; id++ {
		if _, ok := p.slaves[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Flows returns all flow ids in AddFlow order.
func (p *Piconet) Flows() []FlowID {
	return append([]FlowID(nil), p.flowOrder...)
}

// FlowsAt returns the slave's flow ids in AddFlow order.
func (p *Piconet) FlowsAt(slave SlaveID) []FlowID {
	sl, ok := p.slaves[slave]
	if !ok {
		return nil
	}
	return append([]FlowID(nil), sl.flows...)
}

// FlowConfig returns the configuration of a flow.
func (p *Piconet) FlowConfig(id FlowID) (FlowConfig, bool) {
	fs, ok := p.flows[id]
	if !ok {
		return FlowConfig{}, false
	}
	return fs.cfg, true
}

// DownQueueLen returns the number of higher-layer packets queued for a
// master-to-slave flow and already arrived (master-side knowledge: a
// batched source's future-dated arrivals do not exist for the master
// until their stamp passes).
func (p *Piconet) DownQueueLen(flow FlowID) int {
	fs, ok := p.flows[flow]
	if !ok || fs.cfg.Dir != Down {
		return 0
	}
	return fs.availableLen(p.simulator.Now())
}

// DownQueueBytes returns the remaining payload bytes queued for a
// master-to-slave flow and already arrived (master-side knowledge).
func (p *Piconet) DownQueueBytes(flow FlowID) int {
	fs, ok := p.flows[flow]
	if !ok || fs.cfg.Dir != Down {
		return 0
	}
	return fs.availableBytes(p.simulator.Now())
}

// DownHeadAvailable reports whether the head packet of a down flow was
// available at the given cutoff time (master-side knowledge).
func (p *Piconet) DownHeadAvailable(flow FlowID, cutoff sim.Time) bool {
	fs, ok := p.flows[flow]
	if !ok || fs.cfg.Dir != Down {
		return false
	}
	return fs.headAvailable(cutoff)
}

// OracleUpQueueLen returns the number of higher-layer packets queued at the
// slave for an up flow. It is an oracle accessor for tests and verification;
// schedulers must not call it (the real master cannot see slave queues).
func (p *Piconet) OracleUpQueueLen(flow FlowID) int {
	fs, ok := p.flows[flow]
	if !ok || fs.cfg.Dir != Up {
		return 0
	}
	return fs.qlen()
}

// FlowDelayStats returns the higher-layer packet delay statistics of a flow
// (arrival to delivery of the final segment).
func (p *Piconet) FlowDelayStats(flow FlowID) (*stats.DurationStats, bool) {
	fs, ok := p.flows[flow]
	if !ok {
		return nil, false
	}
	return fs.delay, true
}

// FlowDelivered returns the delivery meter of a flow (bytes and packets that
// completed reassembly).
func (p *Piconet) FlowDelivered(flow FlowID) (*stats.Meter, bool) {
	fs, ok := p.flows[flow]
	if !ok {
		return nil, false
	}
	return fs.delivered, true
}

// FlowOffered returns the offered-load meter of a flow (generated packets).
func (p *Piconet) FlowOffered(flow FlowID) (*stats.Meter, bool) {
	fs, ok := p.flows[flow]
	if !ok {
		return nil, false
	}
	return fs.offered, true
}

// FlowLost returns the loss meter of a flow (higher-layer packets corrupted
// on air; nonzero only with lossy radio models and ARQ disabled).
func (p *Piconet) FlowLost(flow FlowID) (*stats.Meter, bool) {
	fs, ok := p.flows[flow]
	if !ok {
		return nil, false
	}
	return fs.lost, true
}

// SlaveThroughputKbps returns the delivered throughput of all flows of the
// slave (both directions) over the elapsed time, in kilobits per second.
func (p *Piconet) SlaveThroughputKbps(slave SlaveID, elapsed time.Duration) float64 {
	sl, ok := p.slaves[slave]
	if !ok || elapsed <= 0 {
		return 0
	}
	total := 0.0
	for _, id := range sl.flows {
		total += p.flows[id].delivered.Kbps(elapsed)
	}
	return total
}

// SlotAccount returns a snapshot of the slot usage accounting, with idle
// time computed against the given end-of-measurement time.
func (p *Piconet) SlotAccount(end sim.Time) SlotAccount {
	acct := p.acct
	elapsed := end - p.startTime
	if elapsed < 0 {
		elapsed = 0
	}
	total := int64(elapsed / baseband.SlotDuration)
	busy := acct.GSData + acct.GSOverhead + acct.BEData + acct.BEOverhead +
		acct.Retransmit + acct.SCO
	if total > busy {
		acct.Idle = total - busy
	}
	acct.Total = total
	return acct
}

// SlotAccount tallies slot usage by purpose. All values are slot counts.
type SlotAccount struct {
	// GSData is slots spent carrying Guaranteed Service payload.
	GSData int64
	// GSOverhead is slots spent on GS polling overhead: POLL packets,
	// NULL responses and unsuccessful GS polls.
	GSOverhead int64
	// BEData is slots spent carrying best-effort payload.
	BEData int64
	// BEOverhead is slots spent on BE polling overhead.
	BEOverhead int64
	// Retransmit is slots consumed re-sending lost segments (lossy radio
	// only).
	Retransmit int64
	// SCO is slots consumed by reserved synchronous links.
	SCO int64
	// Idle is slots in which the channel was unused.
	Idle int64
	// Total is the total elapsed slots of the measurement.
	Total int64
}

// GSShare returns the fraction of slots used for GS (data plus overhead).
func (a SlotAccount) GSShare() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.GSData+a.GSOverhead) / float64(a.Total)
}

// String summarises the account.
func (a SlotAccount) String() string {
	return fmt.Sprintf("slots{total=%d gsData=%d gsOvh=%d beData=%d beOvh=%d rtx=%d sco=%d idle=%d}",
		a.Total, a.GSData, a.GSOverhead, a.BEData, a.BEOverhead, a.Retransmit, a.SCO, a.Idle)
}
