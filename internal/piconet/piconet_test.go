package piconet_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
	"bluegs/internal/sim"
)

// rrScheduler polls every slave's BE channel in round-robin with no idling.
type rrScheduler struct {
	slaves   []piconet.SlaveID
	idx      int
	outcomes []piconet.Outcome
}

func (s *rrScheduler) Decide(_ sim.Time, _ int) piconet.Action {
	sl := s.slaves[s.idx%len(s.slaves)]
	s.idx++
	return piconet.PollBE(sl)
}

func (s *rrScheduler) OnOutcome(o piconet.Outcome)            { s.outcomes = append(s.outcomes, o) }
func (s *rrScheduler) OnDownArrival(piconet.FlowID, sim.Time) {}

// gsScheduler polls one GS flow pair at every opportunity.
type gsScheduler struct {
	slave    piconet.SlaveID
	down, up piconet.FlowID
	outcomes []piconet.Outcome
}

func (s *gsScheduler) Decide(_ sim.Time, _ int) piconet.Action {
	return piconet.PollGS(s.slave, s.down, s.up)
}

func (s *gsScheduler) OnOutcome(o piconet.Outcome)            { s.outcomes = append(s.outcomes, o) }
func (s *gsScheduler) OnDownArrival(piconet.FlowID, sim.Time) {}

// buildBE returns a piconet with one slave and BE flows both ways.
func buildBE(t *testing.T, s *sim.Simulator, opts ...piconet.Option) *piconet.Piconet {
	t.Helper()
	p := piconet.New(s, opts...)
	if err := p.AddSlave(1); err != nil {
		t.Fatalf("AddSlave: %v", err)
	}
	for _, cfg := range []piconet.FlowConfig{
		{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 1, Dir: piconet.Up, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
	} {
		if err := p.AddFlow(cfg); err != nil {
			t.Fatalf("AddFlow(%d): %v", cfg.ID, err)
		}
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(0); err == nil {
		t.Fatal("slave id 0 should be rejected")
	}
	if err := p.AddSlave(8); err == nil {
		t.Fatal("slave id 8 should be rejected")
	}
	for i := 1; i <= 7; i++ {
		if err := p.AddSlave(piconet.SlaveID(i)); err != nil {
			t.Fatalf("AddSlave(%d): %v", i, err)
		}
	}
	if err := p.AddSlave(3); !errors.Is(err, piconet.ErrDuplicateSlave) {
		t.Fatalf("duplicate slave: err = %v", err)
	}
	cfg := piconet.FlowConfig{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes}
	if err := p.AddFlow(cfg); err != nil {
		t.Fatalf("AddFlow: %v", err)
	}
	if err := p.AddFlow(cfg); !errors.Is(err, piconet.ErrDuplicateFlow) {
		t.Fatalf("duplicate flow: err = %v", err)
	}
	bad := cfg
	bad.ID = 2
	bad.Slave = 9
	if err := p.AddFlow(bad); !errors.Is(err, piconet.ErrUnknownSlave) {
		t.Fatalf("unknown slave: err = %v", err)
	}
	bad = cfg
	bad.ID = 0
	if err := p.AddFlow(bad); !errors.Is(err, piconet.ErrInvalidFlow) {
		t.Fatalf("zero id: err = %v", err)
	}
	bad = cfg
	bad.ID = 3
	bad.Allowed = baseband.NewTypeSet(baseband.TypeHV3)
	if err := p.AddFlow(bad); !errors.Is(err, piconet.ErrInvalidFlow) {
		t.Fatalf("no ACL types: err = %v", err)
	}
	if err := p.Start(); !errors.Is(err, piconet.ErrNoScheduler) {
		t.Fatalf("start without scheduler: err = %v", err)
	}
	p.SetScheduler(&rrScheduler{slaves: []piconet.SlaveID{1}})
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.Start(); !errors.Is(err, piconet.ErrAlreadyStarted) {
		t.Fatalf("double start: err = %v", err)
	}
	if err := p.AddSlave(1); !errors.Is(err, piconet.ErrDuplicateSlave) {
		t.Fatalf("duplicate slave after start: err = %v", err)
	}
	// Topology stays mutable mid-run (timeline scenarios).
	late := cfg
	late.ID = 4
	late.Dir = piconet.Up
	if err := p.AddFlow(late); err != nil {
		t.Fatalf("mid-run AddFlow: %v", err)
	}
}

func TestDownDeliveryAndDelay(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// One 176-byte packet at t=0: served by the first poll (one DH3).
	if err := p.EnqueuePacket(1, 176); err != nil {
		t.Fatalf("EnqueuePacket: %v", err)
	}
	if err := s.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	del, _ := p.FlowDelivered(1)
	if del.Packets() != 1 || del.Bytes() != 176 {
		t.Fatalf("delivered %d packets %d bytes, want 1/176", del.Packets(), del.Bytes())
	}
	ds, _ := p.FlowDelayStats(1)
	// The first poll starts at t=0, the DH3 ends at 3 slots = 1.875ms.
	if got := ds.Max(); got != 1875*time.Microsecond {
		t.Fatalf("delay = %v, want 1.875ms (3 slots)", got)
	}
}

func TestUpDeliveryViaPoll(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.EnqueuePacket(2, 144); err != nil {
		t.Fatalf("EnqueuePacket: %v", err)
	}
	if err := s.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	del, _ := p.FlowDelivered(2)
	if del.Packets() != 1 || del.Bytes() != 144 {
		t.Fatalf("delivered %d packets %d bytes, want 1/144", del.Packets(), del.Bytes())
	}
	ds, _ := p.FlowDelayStats(2)
	// POLL (1 slot) + DH3 (3 slots) = 4 slots = 2.5ms.
	if got := ds.Max(); got != 2500*time.Microsecond {
		t.Fatalf("delay = %v, want 2.5ms (POLL+DH3)", got)
	}
	// The outcome must describe the exchange.
	found := false
	for _, o := range sched.outcomes {
		if o.Up.Flow == 2 && o.Up.Bytes == 144 && o.Up.Type == baseband.TypeDH3 {
			found = true
			if o.Down.Type != baseband.TypePOLL {
				t.Fatalf("down leg = %v, want POLL", o.Down.Type)
			}
			if o.Up.CompletedPacketSize != 144 {
				t.Fatalf("CompletedPacketSize = %d, want 144", o.Up.CompletedPacketSize)
			}
			if o.End-o.Start != 4*baseband.SlotDuration {
				t.Fatalf("exchange duration = %v, want 4 slots", o.End-o.Start)
			}
		}
	}
	if !found {
		t.Fatal("no outcome carried the uplink packet")
	}
}

func TestWastedPollIsTwoSlots(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Run(10 * 1250 * time.Microsecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every exchange is POLL+NULL: 2 slots, back to back.
	if len(sched.outcomes) != 10 {
		t.Fatalf("%d outcomes, want 10", len(sched.outcomes))
	}
	for i, o := range sched.outcomes {
		if o.Down.Type != baseband.TypePOLL || o.Up.Type != baseband.TypeNULL {
			t.Fatalf("outcome %d: %v/%v, want POLL/NULL", i, o.Down.Type, o.Up.Type)
		}
		if o.End-o.Start != 2*baseband.SlotDuration {
			t.Fatalf("outcome %d duration %v, want 2 slots", i, o.End-o.Start)
		}
		if want := sim.Time(i) * 2 * baseband.SlotDuration; o.Start != want {
			t.Fatalf("outcome %d starts at %v, want %v", i, o.Start, want)
		}
	}
	acct := p.SlotAccount(s.Now())
	if acct.BEOverhead != 20 || acct.BEData != 0 {
		t.Fatalf("account = %v, want 20 BE overhead slots", acct)
	}
}

func TestExchangesNeverOverlapAndAligned(t *testing.T) {
	s := sim.New(sim.WithSeed(3))
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Random packet arrivals both directions.
	rng := rand.New(rand.NewSource(99))
	var at time.Duration
	for i := 0; i < 200; i++ {
		at += time.Duration(rng.Intn(4000)) * time.Microsecond
		flow := piconet.FlowID(1 + rng.Intn(2))
		size := 1 + rng.Intn(300)
		at := at
		s.Schedule(at, func() {
			if err := p.EnqueuePacket(flow, size); err != nil {
				t.Errorf("EnqueuePacket: %v", err)
			}
		})
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var prevEnd sim.Time
	for i, o := range sched.outcomes {
		if o.Start < prevEnd {
			t.Fatalf("exchange %d starts at %v before previous end %v", i, o.Start, prevEnd)
		}
		if o.Start%(2*baseband.SlotDuration) != 0 {
			t.Fatalf("exchange %d starts at %v, not on an even slot boundary", i, o.Start)
		}
		if (o.End-o.Start)%(2*baseband.SlotDuration) != 0 {
			t.Fatalf("exchange %d spans %v, not a whole slot-pair count", i, o.End-o.Start)
		}
		prevEnd = o.End
	}
}

func TestAvailabilityCutoffAtPollStart(t *testing.T) {
	// A packet arriving one microsecond after the poll starts must wait
	// for the next poll (paper §3.1).
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	s.Schedule(time.Microsecond, func() {
		if err := p.EnqueuePacket(1, 27); err != nil {
			t.Errorf("EnqueuePacket: %v", err)
		}
	})
	if err := s.Run(20 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// First outcome (poll at t=0) must be empty; the packet rides a
	// later poll.
	if len(sched.outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	first := sched.outcomes[0]
	if first.Down.Bytes != 0 {
		t.Fatalf("first poll carried %d bytes; cutoff violated", first.Down.Bytes)
	}
	del, _ := p.FlowDelivered(1)
	if del.Packets() != 1 {
		t.Fatalf("delivered %d packets, want 1", del.Packets())
	}
}

func TestGSPollValidation(t *testing.T) {
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSlave(2); err != nil {
		t.Fatal(err)
	}
	flows := []piconet.FlowConfig{
		{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.Guaranteed, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 1, Dir: piconet.Up, Class: piconet.Guaranteed, Allowed: baseband.PaperTypes},
		{ID: 3, Slave: 2, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
	}
	for _, cfg := range flows {
		if err := p.AddFlow(cfg); err != nil {
			t.Fatalf("AddFlow(%d): %v", cfg.ID, err)
		}
	}
	tests := []struct {
		name   string
		action piconet.Action
		want   error
	}{
		{"flow of another slave", piconet.PollGS(1, 3, 0), piconet.ErrSlaveNotOfFlow},
		{"BE class rejected", func() piconet.Action {
			a := piconet.PollGS(2, 0, 0)
			a.DownFlow = 3
			return a
		}(), piconet.ErrClassMismatch},
		{"wrong direction", piconet.PollGS(1, 2, 0), piconet.ErrQueueMismatch},
		{"unknown flow", piconet.PollGS(1, 99, 0), piconet.ErrUnknownFlow},
		{"no flows", piconet.PollGS(1, 0, 0), piconet.ErrActionInvalid},
		{"unknown slave", piconet.PollGS(5, 1, 0), piconet.ErrUnknownSlave},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := sim.New()
			p2 := piconet.New(s)
			_ = p2.AddSlave(1)
			_ = p2.AddSlave(2)
			for _, cfg := range flows {
				if err := p2.AddFlow(cfg); err != nil {
					t.Fatal(err)
				}
			}
			fixed := &fixedActionScheduler{action: tt.action}
			p2.SetScheduler(fixed)
			if err := p2.Start(); err != nil {
				t.Fatal(err)
			}
			_ = s.Run(time.Second)
			if err := p2.Err(); !errors.Is(err, tt.want) {
				t.Fatalf("engine err = %v, want %v", err, tt.want)
			}
		})
	}
}

type fixedActionScheduler struct {
	action piconet.Action
}

func (f *fixedActionScheduler) Decide(sim.Time, int) piconet.Action    { return f.action }
func (f *fixedActionScheduler) OnOutcome(piconet.Outcome)              {}
func (f *fixedActionScheduler) OnDownArrival(piconet.FlowID, sim.Time) {}

func TestGSPiggybackExchange(t *testing.T) {
	// A GS poll with both a down and an up flow moves data both ways in
	// one exchange (the paper's piggybacking).
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []piconet.FlowConfig{
		{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.Guaranteed, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 1, Dir: piconet.Up, Class: piconet.Guaranteed, Allowed: baseband.PaperTypes},
	} {
		if err := p.AddFlow(cfg); err != nil {
			t.Fatal(err)
		}
	}
	sched := &gsScheduler{slave: 1, down: 1, up: 2}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueuePacket(1, 176); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueuePacket(2, 150); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("engine error: %v", err)
	}
	first := sched.outcomes[0]
	if first.Down.Bytes != 176 || first.Up.Bytes != 150 {
		t.Fatalf("piggyback exchange carried %d/%d bytes, want 176/150", first.Down.Bytes, first.Up.Bytes)
	}
	// DH3 both ways: 6 slots.
	if first.End-first.Start != 6*baseband.SlotDuration {
		t.Fatalf("exchange duration %v, want 6 slots", first.End-first.Start)
	}
	acct := p.SlotAccount(s.Now())
	if acct.GSData != 6 {
		t.Fatalf("GSData = %d slots, want 6", acct.GSData)
	}
}

func TestMultiSegmentPacketNeedsMultiplePolls(t *testing.T) {
	// A 200-byte packet under DH1+DH3 is DH3(183)+DH1(17): two polls.
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueuePacket(2, 200); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	del, _ := p.FlowDelivered(2)
	if del.Packets() != 1 || del.Bytes() != 200 {
		t.Fatalf("delivered %d/%d, want 1 packet 200 bytes", del.Packets(), del.Bytes())
	}
	var dataLegs int
	var sawMoreData bool
	for _, o := range sched.outcomes {
		if o.Up.Bytes > 0 {
			dataLegs++
			if o.UpMoreData {
				sawMoreData = true
			}
		}
	}
	if dataLegs != 2 {
		t.Fatalf("packet served in %d polls, want 2", dataLegs)
	}
	if !sawMoreData {
		t.Fatal("more-data flag never set on the first segment")
	}
}

func TestEnqueueErrors(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	if err := p.EnqueuePacket(99, 100); !errors.Is(err, piconet.ErrUnknownFlow) {
		t.Fatalf("unknown flow: err = %v", err)
	}
	if err := p.EnqueuePacket(1, 0); !errors.Is(err, piconet.ErrPacketTooSmall) {
		t.Fatalf("zero size: err = %v", err)
	}
}

func TestIdleSchedulerAccounting(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	p.SetScheduler(&fixedActionScheduler{action: piconet.Idle(0)})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	acct := p.SlotAccount(s.Now())
	if acct.Idle != 1600 || acct.Total != 1600 {
		t.Fatalf("account = %v, want 1600 idle of 1600", acct)
	}
	if got := acct.GSShare(); got != 0 {
		t.Fatalf("GSShare = %v, want 0", got)
	}
}

func TestARQRecoversLosses(t *testing.T) {
	s := sim.New(sim.WithSeed(7))
	p := buildBE(t, s, piconet.WithRadio(radio.BER{BitErrorRate: 3e-4}), piconet.WithARQ(true))
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		s.Schedule(at, func() {
			if err := p.EnqueuePacket(1, 176); err != nil {
				t.Errorf("EnqueuePacket: %v", err)
			}
		})
	}
	if err := s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	del, _ := p.FlowDelivered(1)
	if del.Packets() != n {
		t.Fatalf("delivered %d packets with ARQ, want all %d", del.Packets(), n)
	}
	lost, _ := p.FlowLost(1)
	if lost.Packets() != 0 {
		t.Fatalf("lost %d packets despite ARQ", lost.Packets())
	}
	acct := p.SlotAccount(s.Now())
	if acct.Retransmit == 0 {
		t.Fatal("expected retransmission slots at this BER")
	}
}

func TestNoARQDropsCorruptPackets(t *testing.T) {
	s := sim.New(sim.WithSeed(11))
	p := buildBE(t, s, piconet.WithRadio(radio.BER{BitErrorRate: 2e-3}))
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		s.Schedule(at, func() {
			if err := p.EnqueuePacket(1, 176); err != nil {
				t.Errorf("EnqueuePacket: %v", err)
			}
		})
	}
	if err := s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	del, _ := p.FlowDelivered(1)
	lost, _ := p.FlowLost(1)
	if lost.Packets() == 0 {
		t.Fatal("expected losses at BER 2e-3 without ARQ")
	}
	if del.Packets()+lost.Packets() != n {
		t.Fatalf("delivered %d + lost %d != offered %d", del.Packets(), lost.Packets(), n)
	}
}

// TestPropertyConservation: under random traffic, every offered packet is
// either delivered or still queued when the run ends (ideal radio).
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.New(sim.WithSeed(seed))
		p := piconet.New(s)
		if err := p.AddSlave(1); err != nil {
			return false
		}
		if err := p.AddSlave(2); err != nil {
			return false
		}
		flows := []piconet.FlowConfig{
			{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
			{ID: 2, Slave: 1, Dir: piconet.Up, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
			{ID: 3, Slave: 2, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
			{ID: 4, Slave: 2, Dir: piconet.Up, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
		}
		for _, cfg := range flows {
			if err := p.AddFlow(cfg); err != nil {
				return false
			}
		}
		sched := &rrScheduler{slaves: []piconet.SlaveID{1, 2}}
		p.SetScheduler(sched)
		if err := p.Start(); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		offered := map[piconet.FlowID]int{}
		var at time.Duration
		for i := 0; i < 100; i++ {
			at += time.Duration(rng.Intn(3000)) * time.Microsecond
			flow := piconet.FlowID(1 + rng.Intn(4))
			size := 1 + rng.Intn(400)
			offered[flow]++
			s.Schedule(at, func() {
				_ = p.EnqueuePacket(flow, size)
			})
		}
		if err := s.Run(5 * time.Second); err != nil {
			return false
		}
		if p.Err() != nil {
			return false
		}
		for _, cfg := range flows {
			del, _ := p.FlowDelivered(cfg.ID)
			queued := p.DownQueueLen(cfg.ID) + p.OracleUpQueueLen(cfg.ID)
			if int(del.Packets())+queued != offered[cfg.ID] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSlaveThroughput(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// 100 packets of 176 bytes over 1s in each direction: 140.8 kbps +
	// 140.8 kbps = 281.6 kbps for the slave.
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		s.Schedule(at, func() {
			_ = p.EnqueuePacket(1, 176)
			_ = p.EnqueuePacket(2, 176)
		})
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	got := p.SlaveThroughputKbps(1, time.Second)
	if got < 280 || got > 283 {
		t.Fatalf("slave throughput = %v kbps, want ~281.6", got)
	}
}
