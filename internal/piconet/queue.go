package piconet

import (
	"fmt"
	"sort"

	"bluegs/internal/segmentation"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
)

// hlPacket is a higher-layer packet in a flow queue, carrying its
// segmentation plan and transmission progress. Packets are recycled through
// the piconet's pktFree pool between arrivals, reusing the plan's backing
// array.
type hlPacket struct {
	id      uint64
	size    int
	arrival sim.Time
	plan    segmentation.Plan
	// nextSeg indexes the first not-yet-delivered segment.
	nextSeg int
	// remaining counts the payload bytes of segments plan[nextSeg:],
	// maintained incrementally so remainingBytes is O(1).
	remaining int
	// corrupt marks a packet that lost a segment on air with ARQ
	// disabled; it completes its plan but is not counted as delivered.
	corrupt bool
}

func (pkt *hlPacket) remainingBytes() int { return pkt.remaining }

// consumeSegment advances past the current head segment, keeping the
// remaining-byte counter in step with nextSeg.
func (pkt *hlPacket) consumeSegment() {
	pkt.remaining -= pkt.plan[pkt.nextSeg].Bytes
	pkt.nextSeg++
}

func (pkt *hlPacket) done() bool { return pkt.nextSeg >= len(pkt.plan) }

// allocPacket pops a recycled packet off the pool, or makes a fresh one.
func (p *Piconet) allocPacket() *hlPacket {
	if n := len(p.pktFree); n > 0 {
		pkt := p.pktFree[n-1]
		p.pktFree = p.pktFree[:n-1]
		return pkt
	}
	return &hlPacket{}
}

// freePacket returns a completed packet to the pool. The plan slice keeps
// its backing array for the next arrival's segmentation.
func (p *Piconet) freePacket(pkt *hlPacket) {
	pkt.plan = pkt.plan[:0]
	pkt.nextSeg = 0
	pkt.remaining = 0
	pkt.corrupt = false
	p.pktFree = append(p.pktFree, pkt)
}

// flowState is the runtime state of one flow: its queue (held at the master
// for down flows, at the slave for up flows) and its measurement hooks.
type flowState struct {
	cfg FlowConfig
	// pn is the owning piconet (for the packet pool).
	pn *Piconet
	// queue[qhead:] holds pending packets in arrival order; the head may
	// be partially transmitted. Pops advance qhead and compact lazily
	// (once the dead prefix reaches half the slice), so head removal is
	// amortized O(1) and the backing array is reused, even under
	// sustained overload with deep backlogs.
	queue []*hlPacket
	qhead int

	// retired marks a flow taken out of service mid-run (see
	// Piconet.RetireFlow): it keeps its statistics but accepts no packets
	// and no polls.
	retired bool
	// suspended marks a flow taken out of service reversibly by the link
	// supervision machinery (see Piconet.SuspendFlow); ResumeFlow clears
	// it.
	suspended bool

	delay     *stats.DurationStats
	delivered *stats.Meter
	offered   *stats.Meter
	lost      *stats.Meter

	// wakeDown is the flow's pooled down-arrival notification: built once
	// on first use and rescheduled for every future-dated down arrival,
	// instead of allocating a fresh closure per pre-enqueued packet. It
	// reads the arrival instant off the kernel clock (the event fires
	// exactly at the arrival time), so one closure serves every packet.
	wakeDown func()
}

func newFlowState(pn *Piconet, cfg FlowConfig) *flowState {
	return &flowState{
		cfg:       cfg,
		pn:        pn,
		delay:     stats.NewDurationStats(0),
		delivered: &stats.Meter{},
		offered:   &stats.Meter{},
		lost:      &stats.Meter{},
	}
}

// qlen returns the number of pending packets.
func (fs *flowState) qlen() int { return len(fs.queue) - fs.qhead }

// qat returns the i-th pending packet (0 is the head).
func (fs *flowState) qat(i int) *hlPacket { return fs.queue[fs.qhead+i] }

// qpush appends a packet to the tail.
func (fs *flowState) qpush(pkt *hlPacket) { fs.queue = append(fs.queue, pkt) }

// qpop removes and returns the head packet.
func (fs *flowState) qpop() *hlPacket {
	pkt := fs.queue[fs.qhead]
	fs.queue[fs.qhead] = nil
	fs.qhead++
	if fs.qhead*2 >= len(fs.queue) {
		// The dead prefix reached half the slice: compact. Each
		// compaction moves at most as many elements as the pops that
		// earned it, so pops stay amortized O(1).
		n := copy(fs.queue, fs.queue[fs.qhead:])
		for i := n; i < len(fs.queue); i++ {
			fs.queue[i] = nil
		}
		fs.queue = fs.queue[:n]
		fs.qhead = 0
	}
	return pkt
}

func (fs *flowState) queuedBytes() int {
	total := 0
	for i := 0; i < fs.qlen(); i++ {
		total += fs.qat(i).remainingBytes()
	}
	return total
}

// availableLen counts the queued packets that have arrived by cutoff.
// The queue is arrival-ordered, so the count is a prefix length: a
// batched source's pre-enqueued future arrivals sit at the tail and
// stay invisible until their stamp passes. The whole-queue and
// empty-prefix cases are answered without the binary search — unbatched
// queues never hold future arrivals, so they always take the first
// fast path.
func (fs *flowState) availableLen(cutoff sim.Time) int {
	n := fs.qlen()
	if n == 0 || fs.qat(n-1).arrival <= cutoff {
		return n
	}
	if fs.qat(0).arrival > cutoff {
		return 0
	}
	return sort.Search(n, func(i int) bool { return fs.qat(i).arrival > cutoff })
}

// availableBytes sums the remaining payload of the packets that have
// arrived by cutoff.
func (fs *flowState) availableBytes(cutoff sim.Time) int {
	total := 0
	for i, n := 0, fs.availableLen(cutoff); i < n; i++ {
		total += fs.qat(i).remainingBytes()
	}
	return total
}

// headAvailable reports whether the queue head exists and arrived at or
// before the cutoff (the paper requires data to be available when the master
// starts its transmission).
func (fs *flowState) headAvailable(cutoff sim.Time) bool {
	return fs.qlen() > 0 && fs.qat(0).arrival <= cutoff
}

// headPacket returns the available head packet, or nil.
func (fs *flowState) headPacket(cutoff sim.Time) *hlPacket {
	if !fs.headAvailable(cutoff) {
		return nil
	}
	return fs.qat(0)
}

// moreAfterHeadSegment reports whether, after the head's next segment is
// served, further segments remain available at the cutoff (the slave's
// more-data flag).
func (fs *flowState) moreAfterHeadSegment(cutoff sim.Time) bool {
	if !fs.headAvailable(cutoff) {
		return false
	}
	head := fs.qat(0)
	if head.nextSeg+1 < len(head.plan) {
		return true
	}
	// Head would complete; is another packet available?
	return fs.qlen() > 1 && fs.qat(1).arrival <= cutoff
}

// qpopTail removes and returns the tail packet.
func (fs *flowState) qpopTail() *hlPacket {
	last := len(fs.queue) - 1
	pkt := fs.queue[last]
	fs.queue[last] = nil
	fs.queue = fs.queue[:last]
	return pkt
}

// popCompleted removes the head if fully delivered and recycles it.
func (fs *flowState) popCompleted() {
	if fs.qlen() == 0 || !fs.qat(0).done() {
		return
	}
	fs.pn.freePacket(fs.qpop())
}

// EnqueuePacket inserts a higher-layer packet of the given size into the
// flow's queue at the current simulation time, segmenting it with the
// flow's policy. Traffic sources call this; for down flows the scheduler is
// notified and the master wakes up if idle.
func (p *Piconet) EnqueuePacket(flow FlowID, size int) error {
	return p.EnqueuePacketAt(flow, size, p.simulator.Now())
}

// EnqueuePacketAt is EnqueuePacket with an explicit arrival time at or
// after now. Batched traffic sources use it to pre-enqueue a whole burst
// of future arrivals in one kernel event: availability is gated on the
// packet's arrival stamp (headAvailable/moreAfterHeadSegment compare
// against the poll cutoff), so a future-dated packet can never be served
// — or flagged as more-data — before it "exists". Up-flow bursts need no
// further events at all; a future down-flow arrival schedules its own
// scheduler notification at the arrival instant, preserving the
// per-packet wake semantics exactly. Arrivals must be enqueued in
// non-decreasing order per flow (queues are FIFO by arrival).
func (p *Piconet) EnqueuePacketAt(flow FlowID, size int, at sim.Time) error {
	fs, ok := p.flows[flow]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	if fs.retired {
		return fmt.Errorf("%w: %d", ErrFlowRetired, flow)
	}
	if fs.suspended {
		return fmt.Errorf("%w: %d", ErrFlowSuspended, flow)
	}
	if size <= 0 {
		return ErrPacketTooSmall
	}
	now := p.simulator.Now()
	if at < now {
		return fmt.Errorf("%w: arrival %v before now %v", ErrInvalidFlow, at, now)
	}
	if n := fs.qlen(); n > 0 && fs.qat(n-1).arrival > at {
		return fmt.Errorf("%w: arrival %v before queued tail", ErrInvalidFlow, at)
	}
	pkt := p.allocPacket()
	var err error
	if ap, ok := fs.cfg.Policy.(segmentation.Appender); ok {
		pkt.plan, err = ap.SegmentAppend(pkt.plan[:0], size, fs.cfg.Allowed)
	} else {
		pkt.plan, err = fs.cfg.Policy.Segment(size, fs.cfg.Allowed)
	}
	if err != nil {
		p.freePacket(pkt)
		return fmt.Errorf("%w: %v", ErrSegmentFailure, err)
	}
	p.nextID++
	pkt.id = p.nextID
	pkt.size = size
	pkt.arrival = at
	pkt.nextSeg = 0
	pkt.remaining = pkt.plan.TotalBytes()
	pkt.corrupt = false
	fs.qpush(pkt)
	fs.offered.Add(size)
	if fs.cfg.Dir == Down {
		if at == now {
			if p.started {
				p.scheduler.OnDownArrival(flow, now)
				p.wakeIfIdle()
			}
		} else {
			// The master must not learn of — or react to — the packet
			// before it arrives.
			if fs.wakeDown == nil {
				fs.wakeDown = func() {
					if p.started && !p.stopped && !fs.retired && !fs.suspended {
						p.scheduler.OnDownArrival(flow, p.simulator.Now())
						p.wakeIfIdle()
					}
				}
			}
			p.simulator.Schedule(at, fs.wakeDown)
		}
	}
	return nil
}
