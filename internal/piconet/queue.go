package piconet

import (
	"fmt"

	"bluegs/internal/segmentation"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
)

// hlPacket is a higher-layer packet in a flow queue, carrying its
// segmentation plan and transmission progress.
type hlPacket struct {
	id      uint64
	size    int
	arrival sim.Time
	plan    segmentation.Plan
	// nextSeg indexes the first not-yet-delivered segment.
	nextSeg int
	// corrupt marks a packet that lost a segment on air with ARQ
	// disabled; it completes its plan but is not counted as delivered.
	corrupt bool
}

func (pkt *hlPacket) remainingBytes() int {
	total := 0
	for i := pkt.nextSeg; i < len(pkt.plan); i++ {
		total += pkt.plan[i].Bytes
	}
	return total
}

func (pkt *hlPacket) done() bool { return pkt.nextSeg >= len(pkt.plan) }

// flowState is the runtime state of one flow: its queue (held at the master
// for down flows, at the slave for up flows) and its measurement hooks.
type flowState struct {
	cfg FlowConfig
	// queue holds pending packets in arrival order; the head may be
	// partially transmitted.
	queue []*hlPacket

	delay     *stats.DurationStats
	delivered *stats.Meter
	offered   *stats.Meter
	lost      *stats.Meter
}

func newFlowState(cfg FlowConfig) *flowState {
	return &flowState{
		cfg:       cfg,
		delay:     stats.NewDurationStats(0),
		delivered: &stats.Meter{},
		offered:   &stats.Meter{},
		lost:      &stats.Meter{},
	}
}

func (fs *flowState) queuedBytes() int {
	total := 0
	for _, pkt := range fs.queue {
		total += pkt.remainingBytes()
	}
	return total
}

// headAvailable reports whether the queue head exists and arrived at or
// before the cutoff (the paper requires data to be available when the master
// starts its transmission).
func (fs *flowState) headAvailable(cutoff sim.Time) bool {
	return len(fs.queue) > 0 && fs.queue[0].arrival <= cutoff
}

// headPacket returns the available head packet, or nil.
func (fs *flowState) headPacket(cutoff sim.Time) *hlPacket {
	if !fs.headAvailable(cutoff) {
		return nil
	}
	return fs.queue[0]
}

// moreAfterHeadSegment reports whether, after the head's next segment is
// served, further segments remain available at the cutoff (the slave's
// more-data flag).
func (fs *flowState) moreAfterHeadSegment(cutoff sim.Time) bool {
	if !fs.headAvailable(cutoff) {
		return false
	}
	head := fs.queue[0]
	if head.nextSeg+1 < len(head.plan) {
		return true
	}
	// Head would complete; is another packet available?
	return len(fs.queue) > 1 && fs.queue[1].arrival <= cutoff
}

// popCompleted removes the head if fully delivered.
func (fs *flowState) popCompleted() {
	if len(fs.queue) > 0 && fs.queue[0].done() {
		fs.queue[0] = nil
		fs.queue = fs.queue[1:]
	}
}

// EnqueuePacket inserts a higher-layer packet of the given size into the
// flow's queue at the current simulation time, segmenting it with the
// flow's policy. Traffic sources call this; for down flows the scheduler is
// notified and the master wakes up if idle.
func (p *Piconet) EnqueuePacket(flow FlowID, size int) error {
	fs, ok := p.flows[flow]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	if size <= 0 {
		return ErrPacketTooSmall
	}
	plan, err := fs.cfg.Policy.Segment(size, fs.cfg.Allowed)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSegmentFailure, err)
	}
	now := p.simulator.Now()
	p.nextID++
	fs.queue = append(fs.queue, &hlPacket{
		id:      p.nextID,
		size:    size,
		arrival: now,
		plan:    plan,
	})
	fs.offered.Add(size)
	if fs.cfg.Dir == Down && p.started {
		p.scheduler.OnDownArrival(flow, now)
		p.wakeIfIdle()
	}
	return nil
}
