package piconet

import (
	"errors"
	"fmt"

	"bluegs/internal/baseband"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
)

// Errors returned by SCO link management.
var (
	ErrNotSCOType     = errors.New("piconet: packet type is not an SCO type")
	ErrSCOMixedTypes  = errors.New("piconet: all SCO links must use the same HV type")
	ErrSCOCapacity    = errors.New("piconet: SCO slot capacity exhausted")
	ErrSCODuplicate   = errors.New("piconet: slave already has an SCO link")
	ErrNoSCOLink      = errors.New("piconet: slave has no SCO link")
	ErrWindowOverflow = errors.New("piconet: ACL exchange does not fit before the next SCO reservation")
)

// scoLink is one synchronous connection: every intervalSlots slots
// (counting master transmission slots), starting at offsetSlots, a two-slot
// HV exchange runs regardless of the polling discipline.
type scoLink struct {
	slave         SlaveID
	typ           baseband.PacketType
	offsetSlots   int64
	intervalSlots int64
	down, up      *stats.Meter
}

// AddSCOLink reserves a synchronous (SCO) channel to the slave using the
// given HV packet type. SCO links preempt all ACL polling: their slot pairs
// recur unconditionally (HV1 every 2 slots, HV2 every 4, HV3 every 6), and
// ACL exchanges are only started when they fit entirely before the next
// reservation. All links in one piconet must use the same HV type; the
// capacity is 1 HV1, 2 HV2 or 3 HV3 links. Links may be added mid-run
// (voice calls arriving in a timeline scenario); the master is woken so a
// sleeping decision loop cannot overshoot the new reservation.
func (p *Piconet) AddSCOLink(slave SlaveID, typ baseband.PacketType) error {
	if err := p.CheckSCOLink(slave, typ); err != nil {
		return err
	}
	if _, ok := p.slaves[slave]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSlave, slave)
	}
	interval := scoIntervalSlots(typ)
	// Claim the lowest free reservation offset: with dynamic links the
	// occupied offsets may have gaps (a dropped call frees its pair).
	used := make(map[int64]bool, len(p.scoLinks))
	for _, l := range p.scoLinks {
		used[l.offsetSlots] = true
	}
	var offset int64
	for used[offset] {
		offset += 2
	}
	p.scoLinks = append(p.scoLinks, &scoLink{
		slave:         slave,
		typ:           typ,
		offsetSlots:   offset,
		intervalSlots: interval,
		down:          &stats.Meter{},
		up:            &stats.Meter{},
	})
	p.Kick()
	return nil
}

// scoIntervalSlots returns the reservation cadence of an HV type.
func scoIntervalSlots(typ baseband.PacketType) int64 {
	switch typ {
	case baseband.TypeHV1:
		return 2
	case baseband.TypeHV2:
		return 4
	default:
		return 6
	}
}

// CheckSCOLink validates a prospective SCO link against the link set —
// type, same-HV-type rule, per-slave uniqueness and slot capacity —
// without mutating anything (slave registration is checked by AddSCOLink
// itself). Callers that must not leave partial state behind on rejection
// (the timeline's add_sco) precheck with it before registering the slave.
func (p *Piconet) CheckSCOLink(slave SlaveID, typ baseband.PacketType) error {
	if !typ.IsSCO() {
		return fmt.Errorf("%w: %v", ErrNotSCOType, typ)
	}
	interval := scoIntervalSlots(typ)
	for _, l := range p.scoLinks {
		if l.typ != typ {
			return fmt.Errorf("%w: have %v, adding %v", ErrSCOMixedTypes, l.typ, typ)
		}
		if l.slave == slave {
			return fmt.Errorf("%w: slave %d", ErrSCODuplicate, slave)
		}
	}
	if int64(len(p.scoLinks)) >= interval/2 {
		return fmt.Errorf("%w: %v supports %d links", ErrSCOCapacity, typ, interval/2)
	}
	return nil
}

// DropSCOLink releases the slave's SCO reservation. The link's meters stay
// readable through SCOMeters so a run's report covers calls that ended
// mid-run.
func (p *Piconet) DropSCOLink(slave SlaveID) error {
	for i, l := range p.scoLinks {
		if l.slave == slave {
			p.scoLinks = append(p.scoLinks[:i], p.scoLinks[i+1:]...)
			p.retiredSCO = append(p.retiredSCO, l)
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrNoSCOLink, slave)
}

// SCOMeters returns the delivered-byte meters (master-to-slave,
// slave-to-master) of the slave's SCO link, including links dropped
// mid-run (the most recent link wins if a slave had several).
func (p *Piconet) SCOMeters(slave SlaveID) (down, up *stats.Meter, ok bool) {
	for _, l := range p.scoLinks {
		if l.slave == slave {
			return l.down, l.up, true
		}
	}
	for i := len(p.retiredSCO) - 1; i >= 0; i-- {
		if l := p.retiredSCO[i]; l.slave == slave {
			return l.down, l.up, true
		}
	}
	return nil, nil, false
}

// MaxACLWindowSlots returns the largest ACL exchange (in slots) that can
// run between SCO reservations, or a large sentinel when no SCO links
// exist. Admission control must reject flows whose worst exchange exceeds
// this window.
func (p *Piconet) MaxACLWindowSlots() int {
	if len(p.scoLinks) == 0 {
		return int(noWindowLimit)
	}
	interval := p.scoLinks[0].intervalSlots
	window := interval - 2*int64(len(p.scoLinks))
	if window < 0 {
		window = 0
	}
	return int(window)
}

// noWindowLimit is the freeSlots value passed to schedulers when no SCO
// reservation constrains the channel.
const noWindowLimit int64 = 1 << 30

// slotIndex converts a time to the master slot counter since start.
func (p *Piconet) slotIndex(t sim.Time) int64 {
	return int64((t - p.startTime) / baseband.SlotDuration)
}

// scoDue returns the link reserved at exactly the given slot, if any.
func (p *Piconet) scoDue(slot int64) *scoLink {
	for _, l := range p.scoLinks {
		if slot >= l.offsetSlots && (slot-l.offsetSlots)%l.intervalSlots == 0 {
			return l
		}
	}
	return nil
}

// slotsUntilNextReservation returns how many slots from the given slot are
// free for an ACL exchange before any SCO reservation begins.
func (p *Piconet) slotsUntilNextReservation(slot int64) int64 {
	if len(p.scoLinks) == 0 {
		return noWindowLimit
	}
	next := noWindowLimit
	for _, l := range p.scoLinks {
		var k int64
		if slot > l.offsetSlots {
			k = (slot - l.offsetSlots + l.intervalSlots - 1) / l.intervalSlots
		}
		at := l.offsetSlots + k*l.intervalSlots
		if at-slot < next {
			next = at - slot
		}
	}
	return next
}

// executeSCO runs the two-slot HV exchange of the link at now. A voice
// stream always has data (the Bluetooth SCO model: the codec produces
// bytes continuously), so the link carries a full payload in each
// direction on every reservation, subject to the radio model.
func (p *Piconet) executeSCO(now sim.Time, l *scoLink) {
	rng := p.simulator.Rand()
	end := now + 2*baseband.SlotDuration
	entry := TraceEntry{
		Start: now, End: end, Kind: TraceSCO, Slave: l.slave,
		DownType: l.typ, UpType: l.typ,
	}
	if p.linkDown != nil && p.linkDown(l.slave, now) {
		// Link fault: both legs lost, radio model untouched (no RNG
		// draws), the reserved slot pair still elapses.
		entry.Lost = true
	} else {
		if p.radioModel.Deliver(rng, l.typ) {
			l.down.Add(l.typ.Payload())
			entry.DownBytes = l.typ.Payload()
		} else {
			entry.Lost = true
		}
		if p.radioModel.Deliver(rng, l.typ) {
			l.up.Add(l.typ.Payload())
			entry.UpBytes = l.typ.Payload()
		} else {
			entry.Lost = true
		}
	}
	p.busyUntil = end
	p.pendingSCO = entry
	p.simulator.Schedule(end, p.finishSCOFn)
}

// finishSCO runs at an SCO reservation's end, booking its slot pair and
// resuming the decision loop. Like finishPoll, it is pre-bound once so the
// per-reservation completion schedules without allocating.
func (p *Piconet) finishSCO() {
	p.acct.SCO += 2
	p.trace(p.pendingSCO)
	p.decide()
}
