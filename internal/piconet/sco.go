package piconet

import (
	"errors"
	"fmt"

	"bluegs/internal/baseband"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
)

// Errors returned by SCO link management.
var (
	ErrNotSCOType     = errors.New("piconet: packet type is not an SCO type")
	ErrSCOMixedTypes  = errors.New("piconet: all SCO links must use the same HV type")
	ErrSCOCapacity    = errors.New("piconet: SCO slot capacity exhausted")
	ErrSCODuplicate   = errors.New("piconet: slave already has an SCO link")
	ErrWindowOverflow = errors.New("piconet: ACL exchange does not fit before the next SCO reservation")
)

// scoLink is one synchronous connection: every intervalSlots slots
// (counting master transmission slots), starting at offsetSlots, a two-slot
// HV exchange runs regardless of the polling discipline.
type scoLink struct {
	slave         SlaveID
	typ           baseband.PacketType
	offsetSlots   int64
	intervalSlots int64
	down, up      *stats.Meter
}

// AddSCOLink reserves a synchronous (SCO) channel to the slave using the
// given HV packet type. SCO links preempt all ACL polling: their slot pairs
// recur unconditionally (HV1 every 2 slots, HV2 every 4, HV3 every 6), and
// ACL exchanges are only started when they fit entirely before the next
// reservation. All links in one piconet must use the same HV type; the
// capacity is 1 HV1, 2 HV2 or 3 HV3 links.
func (p *Piconet) AddSCOLink(slave SlaveID, typ baseband.PacketType) error {
	if p.started {
		return ErrAlreadyStarted
	}
	if !typ.IsSCO() {
		return fmt.Errorf("%w: %v", ErrNotSCOType, typ)
	}
	if _, ok := p.slaves[slave]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSlave, slave)
	}
	var interval int64
	switch typ {
	case baseband.TypeHV1:
		interval = 2
	case baseband.TypeHV2:
		interval = 4
	default:
		interval = 6
	}
	for _, l := range p.scoLinks {
		if l.typ != typ {
			return fmt.Errorf("%w: have %v, adding %v", ErrSCOMixedTypes, l.typ, typ)
		}
		if l.slave == slave {
			return fmt.Errorf("%w: slave %d", ErrSCODuplicate, slave)
		}
	}
	if int64(len(p.scoLinks)) >= interval/2 {
		return fmt.Errorf("%w: %v supports %d links", ErrSCOCapacity, typ, interval/2)
	}
	p.scoLinks = append(p.scoLinks, &scoLink{
		slave:         slave,
		typ:           typ,
		offsetSlots:   int64(2 * len(p.scoLinks)),
		intervalSlots: interval,
		down:          &stats.Meter{},
		up:            &stats.Meter{},
	})
	return nil
}

// SCOMeters returns the delivered-byte meters (master-to-slave,
// slave-to-master) of the slave's SCO link.
func (p *Piconet) SCOMeters(slave SlaveID) (down, up *stats.Meter, ok bool) {
	for _, l := range p.scoLinks {
		if l.slave == slave {
			return l.down, l.up, true
		}
	}
	return nil, nil, false
}

// MaxACLWindowSlots returns the largest ACL exchange (in slots) that can
// run between SCO reservations, or a large sentinel when no SCO links
// exist. Admission control must reject flows whose worst exchange exceeds
// this window.
func (p *Piconet) MaxACLWindowSlots() int {
	if len(p.scoLinks) == 0 {
		return int(noWindowLimit)
	}
	interval := p.scoLinks[0].intervalSlots
	window := interval - 2*int64(len(p.scoLinks))
	if window < 0 {
		window = 0
	}
	return int(window)
}

// noWindowLimit is the freeSlots value passed to schedulers when no SCO
// reservation constrains the channel.
const noWindowLimit int64 = 1 << 30

// slotIndex converts a time to the master slot counter since start.
func (p *Piconet) slotIndex(t sim.Time) int64 {
	return int64((t - p.startTime) / baseband.SlotDuration)
}

// scoDue returns the link reserved at exactly the given slot, if any.
func (p *Piconet) scoDue(slot int64) *scoLink {
	for _, l := range p.scoLinks {
		if slot >= l.offsetSlots && (slot-l.offsetSlots)%l.intervalSlots == 0 {
			return l
		}
	}
	return nil
}

// slotsUntilNextReservation returns how many slots from the given slot are
// free for an ACL exchange before any SCO reservation begins.
func (p *Piconet) slotsUntilNextReservation(slot int64) int64 {
	if len(p.scoLinks) == 0 {
		return noWindowLimit
	}
	next := noWindowLimit
	for _, l := range p.scoLinks {
		var k int64
		if slot > l.offsetSlots {
			k = (slot - l.offsetSlots + l.intervalSlots - 1) / l.intervalSlots
		}
		at := l.offsetSlots + k*l.intervalSlots
		if at-slot < next {
			next = at - slot
		}
	}
	return next
}

// executeSCO runs the two-slot HV exchange of the link at now. A voice
// stream always has data (the Bluetooth SCO model: the codec produces
// bytes continuously), so the link carries a full payload in each
// direction on every reservation, subject to the radio model.
func (p *Piconet) executeSCO(now sim.Time, l *scoLink) {
	rng := p.simulator.Rand()
	end := now + 2*baseband.SlotDuration
	entry := TraceEntry{
		Start: now, End: end, Kind: TraceSCO, Slave: l.slave,
		DownType: l.typ, UpType: l.typ,
	}
	if p.radioModel.Deliver(rng, l.typ) {
		l.down.Add(l.typ.Payload())
		entry.DownBytes = l.typ.Payload()
	} else {
		entry.Lost = true
	}
	if p.radioModel.Deliver(rng, l.typ) {
		l.up.Add(l.typ.Payload())
		entry.UpBytes = l.typ.Payload()
	} else {
		entry.Lost = true
	}
	p.busyUntil = end
	p.pendingSCO = entry
	p.simulator.Schedule(end, p.finishSCOFn)
}

// finishSCO runs at an SCO reservation's end, booking its slot pair and
// resuming the decision loop. Like finishPoll, it is pre-bound once so the
// per-reservation completion schedules without allocating.
func (p *Piconet) finishSCO() {
	p.acct.SCO += 2
	p.trace(p.pendingSCO)
	p.decide()
}
