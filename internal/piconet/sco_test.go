package piconet_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

func TestAddSCOLinkValidation(t *testing.T) {
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSlave(2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSCOLink(1, baseband.TypeDH1); !errors.Is(err, piconet.ErrNotSCOType) {
		t.Fatalf("ACL type: err = %v", err)
	}
	if err := p.AddSCOLink(9, baseband.TypeHV3); !errors.Is(err, piconet.ErrUnknownSlave) {
		t.Fatalf("unknown slave: err = %v", err)
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatalf("AddSCOLink: %v", err)
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); !errors.Is(err, piconet.ErrSCODuplicate) {
		t.Fatalf("duplicate: err = %v", err)
	}
	if err := p.AddSCOLink(2, baseband.TypeHV2); !errors.Is(err, piconet.ErrSCOMixedTypes) {
		t.Fatalf("mixed types: err = %v", err)
	}
	if err := p.AddSCOLink(2, baseband.TypeHV3); err != nil {
		t.Fatalf("second HV3 link: %v", err)
	}
}

func TestSCOCapacityLimits(t *testing.T) {
	tests := []struct {
		typ baseband.PacketType
		max int
	}{
		{baseband.TypeHV1, 1},
		{baseband.TypeHV2, 2},
		{baseband.TypeHV3, 3},
	}
	for _, tt := range tests {
		t.Run(tt.typ.String(), func(t *testing.T) {
			s := sim.New()
			p := piconet.New(s)
			for i := 1; i <= tt.max+1; i++ {
				if err := p.AddSlave(piconet.SlaveID(i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i <= tt.max; i++ {
				if err := p.AddSCOLink(piconet.SlaveID(i), tt.typ); err != nil {
					t.Fatalf("link %d: %v", i, err)
				}
			}
			err := p.AddSCOLink(piconet.SlaveID(tt.max+1), tt.typ)
			if !errors.Is(err, piconet.ErrSCOCapacity) {
				t.Fatalf("over capacity: err = %v", err)
			}
		})
	}
}

func TestHV3LinkCarries64Kbps(t *testing.T) {
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	p.SetScheduler(&fixedActionScheduler{action: piconet.Idle(0)})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	down, up, ok := p.SCOMeters(1)
	if !ok {
		t.Fatal("no SCO meters")
	}
	// One 30-byte HV3 each way every 3.75 ms: 8000 bytes/s = 64 kbps.
	if kbps := down.Kbps(time.Second); kbps < 63 || kbps > 65 {
		t.Fatalf("SCO down = %.1f kbps, want ~64", kbps)
	}
	if kbps := up.Kbps(time.Second); kbps < 63 || kbps > 65 {
		t.Fatalf("SCO up = %.1f kbps, want ~64", kbps)
	}
	acct := p.SlotAccount(s.Now())
	// 2 slots every 6: one third of 1600.
	if acct.SCO < 530 || acct.SCO > 536 {
		t.Fatalf("SCO slots = %d, want ~533", acct.SCO)
	}
	if _, _, ok := p.SCOMeters(9); ok {
		t.Fatal("meters for a slave without SCO link")
	}
}

func TestSCOPreemptsPolling(t *testing.T) {
	// An always-polling scheduler on a piconet with an HV3 link: ACL
	// exchanges must fit entirely between reservations.
	s := sim.New()
	p := buildBE(t, s)
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	// Reservations start at slots 0, 6, 12...: no ACL exchange may
	// overlap [6k, 6k+2) slots.
	for i, o := range sched.outcomes {
		startSlot := int64(o.Start / baseband.SlotDuration)
		endSlot := int64(o.End / baseband.SlotDuration)
		for slot := startSlot; slot < endSlot; slot++ {
			if slot%6 == 0 || slot%6 == 1 {
				t.Fatalf("outcome %d [%v,%v) overlaps SCO reservation at slot %d",
					i, o.Start, o.End, slot)
			}
		}
	}
	acct := p.SlotAccount(s.Now())
	if acct.SCO == 0 || acct.BEOverhead == 0 {
		t.Fatalf("expected both SCO and BE slots: %v", acct)
	}
}

func TestSCOWindowOverflowDetected(t *testing.T) {
	// A window-oblivious scheduler that moves DH3 packets both ways (6
	// slots) cannot fit the 4-slot windows of an HV3 piconet: the engine
	// must flag it rather than silently overlap.
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []piconet.FlowConfig{
		{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.Guaranteed, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 1, Dir: piconet.Up, Class: piconet.Guaranteed, Allowed: baseband.PaperTypes},
	} {
		if err := p.AddFlow(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	sched := &gsScheduler{slave: 1, down: 1, up: 2}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueuePacket(1, 176); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueuePacket(2, 176); err != nil {
		t.Fatal(err)
	}
	_ = s.Run(time.Second)
	if err := p.Err(); !errors.Is(err, piconet.ErrWindowOverflow) {
		t.Fatalf("err = %v, want ErrWindowOverflow", err)
	}
}

func TestMaxACLWindowSlots(t *testing.T) {
	s := sim.New()
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSlave(2); err != nil {
		t.Fatal(err)
	}
	if got := p.MaxACLWindowSlots(); got < 1<<20 {
		t.Fatalf("no-SCO window = %d, want unbounded sentinel", got)
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	if got := p.MaxACLWindowSlots(); got != 4 {
		t.Fatalf("one HV3 link: window = %d, want 4", got)
	}
	if err := p.AddSCOLink(2, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	if got := p.MaxACLWindowSlots(); got != 2 {
		t.Fatalf("two HV3 links: window = %d, want 2", got)
	}
}

func TestSCODynamicAddDrop(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	p.SetScheduler(&fixedActionScheduler{action: piconet.Idle(0)})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Links come and go mid-run (timeline voice calls).
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatalf("mid-run AddSCOLink: %v", err)
	}
	if got := p.MaxACLWindowSlots(); got != 4 {
		t.Fatalf("one HV3 link: window = %d, want 4", got)
	}
	if err := p.DropSCOLink(1); err != nil {
		t.Fatalf("DropSCOLink: %v", err)
	}
	if err := p.DropSCOLink(1); !errors.Is(err, piconet.ErrNoSCOLink) {
		t.Fatalf("double drop: err = %v", err)
	}
	if _, _, ok := p.SCOMeters(1); !ok {
		t.Fatal("dropped link's meters must stay readable")
	}
	// A re-added link claims the freed offset (the duplicate check only
	// covers live links).
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatalf("re-add after drop: %v", err)
	}
}

func TestSCOWithLossyRadio(t *testing.T) {
	// SCO has no ARQ: a lossy channel loses voice bytes but timing is
	// unaffected.
	s := sim.New(sim.WithSeed(5))
	p := piconet.New(s)
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	p.SetScheduler(&fixedActionScheduler{action: piconet.Idle(0)})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	down, up, _ := p.SCOMeters(1)
	ideal := down.Kbps(time.Second) + up.Kbps(time.Second)

	s2 := sim.New(sim.WithSeed(5))
	p2 := piconet.New(s2, piconet.WithRadio(&lossyHalf{}))
	if err := p2.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p2.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	p2.SetScheduler(&fixedActionScheduler{action: piconet.Idle(0)})
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	down2, up2, _ := p2.SCOMeters(1)
	lossy := down2.Kbps(time.Second) + up2.Kbps(time.Second)
	if lossy >= ideal*0.7 {
		t.Fatalf("lossy SCO carried %.1f kbps vs ideal %.1f; expected heavy loss", lossy, ideal)
	}
	acct := p2.SlotAccount(s2.Now())
	if acct.SCO < 530 {
		t.Fatalf("SCO slots with loss = %d; reservations must not shrink", acct.SCO)
	}
}

// lossyHalf drops every other packet deterministically.
type lossyHalf struct{ toggle bool }

func (*lossyHalf) Name() string { return "lossy-half" }

func (l *lossyHalf) Deliver(_ *rand.Rand, _ baseband.PacketType) bool {
	l.toggle = !l.toggle
	return l.toggle
}
