package piconet_test

import (
	"errors"
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// TestEnqueuePacketAtFutureUpFlow pre-enqueues a burst of future up-flow
// arrivals in one call sequence and checks the master cannot serve a
// packet before its arrival stamp.
func TestEnqueuePacketAtFutureUpFlow(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Three future arrivals, spaced 10 ms apart, all enqueued at t=0.
	for i := 1; i <= 3; i++ {
		if err := p.EnqueuePacketAt(2, 27, time.Duration(i)*10*time.Millisecond); err != nil {
			t.Fatalf("EnqueuePacketAt: %v", err)
		}
	}
	if err := s.Run(5 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d, _ := p.FlowDelivered(2); d.Packets() != 0 {
		t.Fatalf("delivered %d packets before any arrival", d.Packets())
	}
	if err := s.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, _ := p.FlowDelivered(2)
	if d.Packets() != 3 {
		t.Fatalf("delivered %d packets, want 3", d.Packets())
	}
	// Delay is measured from the arrival stamp, not the enqueue call:
	// a DH1-sized packet polled every exchange completes within ~10 ms.
	delay, _ := p.FlowDelayStats(2)
	if delay.Max() > 10*time.Millisecond {
		t.Fatalf("max delay %v implies delay measured from enqueue, not arrival", delay.Max())
	}
}

// TestEnqueuePacketAtFutureDownFlowNotifiesAtArrival checks a future
// down-flow arrival reaches the scheduler exactly at its arrival instant.
func TestEnqueuePacketAtFutureDownFlowNotifiesAtArrival(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.EnqueuePacketAt(1, 27, 20*time.Millisecond); err != nil {
		t.Fatalf("EnqueuePacketAt: %v", err)
	}
	if err := s.Run(10 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := p.DownHeadAvailable(1, s.Now()); got {
		t.Fatal("future packet reads as available before arrival")
	}
	if err := s.Run(40 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, _ := p.FlowDelivered(1)
	if d.Packets() != 1 {
		t.Fatalf("delivered %d packets, want 1", d.Packets())
	}
}

func TestEnqueuePacketAtRejectsOutOfOrderArrivals(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	if err := p.EnqueuePacketAt(2, 27, 20*time.Millisecond); err != nil {
		t.Fatalf("EnqueuePacketAt: %v", err)
	}
	if err := p.EnqueuePacketAt(2, 27, 10*time.Millisecond); !errors.Is(err, piconet.ErrInvalidFlow) {
		t.Fatalf("out-of-order arrival: err = %v", err)
	}
	if err := p.EnqueuePacketAt(2, 27, -time.Millisecond); !errors.Is(err, piconet.ErrInvalidFlow) {
		t.Fatalf("past arrival: err = %v", err)
	}
}

// TestStopHaltsPolling removes a piconet's master from service mid-run:
// no further exchanges happen, statistics stay readable, and an enqueue
// after Stop cannot wake it.
func TestStopHaltsPolling(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := p.EnqueuePacket(2, 27); err != nil {
			t.Fatalf("EnqueuePacket: %v", err)
		}
	}
	s.Schedule(10*time.Millisecond, p.Stop)
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !p.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	d, _ := p.FlowDelivered(2)
	delivered := d.Packets()
	if delivered == 0 {
		t.Fatal("nothing delivered before Stop")
	}
	if delivered == 10 {
		t.Fatal("all packets delivered despite Stop at 10ms")
	}
	// Post-stop enqueues are accepted (the flow exists) but never served.
	if err := p.EnqueuePacket(1, 27); err != nil {
		t.Fatalf("EnqueuePacket after Stop: %v", err)
	}
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d, _ := p.FlowDelivered(2); d.Packets() != delivered {
		t.Fatalf("deliveries advanced after Stop: %d -> %d", delivered, d.Packets())
	}
	if p.Err() != nil {
		t.Fatalf("engine error after Stop: %v", p.Err())
	}
}

// TestRetireFlowUncountsFutureArrivals: batched sources pre-count future
// packets in the offered meter; retiring the flow before they arrive
// must uncount them (the per-packet path would never have generated
// them).
func TestRetireFlowUncountsFutureArrivals(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	if err := p.EnqueuePacketAt(2, 27, 0); err != nil {
		t.Fatalf("EnqueuePacketAt: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if err := p.EnqueuePacketAt(2, 27, time.Duration(i)*10*time.Millisecond); err != nil {
			t.Fatalf("EnqueuePacketAt: %v", err)
		}
	}
	off, _ := p.FlowOffered(2)
	if off.Packets() != 6 {
		t.Fatalf("offered %d packets, want 6 pre-counted", off.Packets())
	}
	// Retire at t=0: only the packet that already arrived stays offered.
	if err := p.RetireFlow(2); err != nil {
		t.Fatalf("RetireFlow: %v", err)
	}
	if off.Packets() != 1 {
		t.Fatalf("offered %d packets after retire, want 1", off.Packets())
	}
	if off.Bytes() != 27 {
		t.Fatalf("offered %d bytes after retire, want 27", off.Bytes())
	}
}

// TestStopIdempotent: double-Stop (before, during and after the run) is
// a no-op, and post-Stop interactions — Kick, enqueues, suspends — never
// panic or restart the decision loop.
func TestStopIdempotent(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.EnqueuePacket(2, 27); err != nil {
		t.Fatalf("EnqueuePacket: %v", err)
	}
	s.Schedule(10*time.Millisecond, p.Stop)
	s.Schedule(10*time.Millisecond, p.Stop) // same-instant double Stop
	s.Schedule(15*time.Millisecond, p.Stop) // and a later one
	if err := s.Run(30 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	p.Stop() // post-run double Stop
	if !p.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	// Post-Stop hygiene: none of these may panic or schedule a wake.
	p.Kick()
	if err := p.EnqueuePacket(1, 27); err != nil {
		t.Fatalf("EnqueuePacket after Stop: %v", err)
	}
	if err := p.EnqueuePacketAt(1, 27, s.Now()+50*time.Millisecond); err != nil {
		t.Fatalf("EnqueuePacketAt after Stop: %v", err)
	}
	if err := p.SuspendFlow(2); err != nil {
		t.Fatalf("SuspendFlow after Stop: %v", err)
	}
	d, _ := p.FlowDelivered(1)
	before := d.Packets()
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if d.Packets() != before {
		t.Fatalf("deliveries advanced after Stop: %d -> %d", before, d.Packets())
	}
	if p.Err() != nil {
		t.Fatalf("engine error after double Stop: %v", p.Err())
	}
}

// TestSuspendResumeFlow: a suspended flow flushes its queue, rejects
// enqueues and is skipped by BE polls; resuming restores service and the
// meters span the gap.
func TestSuspendResumeFlow(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := p.EnqueuePacket(2, 27); err != nil {
			t.Fatalf("EnqueuePacket: %v", err)
		}
	}
	// Pre-counted future arrival: suspension must uncount it.
	if err := p.EnqueuePacketAt(2, 27, 50*time.Millisecond); err != nil {
		t.Fatalf("EnqueuePacketAt: %v", err)
	}
	if err := p.SuspendFlow(2); err != nil {
		t.Fatalf("SuspendFlow: %v", err)
	}
	if !p.FlowSuspended(2) {
		t.Fatal("FlowSuspended(2) = false after suspend")
	}
	if !p.FlowActive(2) {
		t.Fatal("suspension must not read as retirement")
	}
	if err := p.SuspendFlow(2); !errors.Is(err, piconet.ErrFlowSuspended) {
		t.Fatalf("double suspend: err = %v", err)
	}
	off, _ := p.FlowOffered(2)
	if off.Packets() != 3 {
		t.Fatalf("offered %d packets after suspend, want 3 (future arrival uncounted)", off.Packets())
	}
	if err := p.EnqueuePacket(2, 27); !errors.Is(err, piconet.ErrFlowSuspended) {
		t.Fatalf("enqueue on suspended flow: err = %v", err)
	}
	if err := s.Run(20 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, _ := p.FlowDelivered(2)
	if d.Packets() != 0 {
		t.Fatalf("suspended flow delivered %d packets", d.Packets())
	}
	if err := p.ResumeFlow(2); err != nil {
		t.Fatalf("ResumeFlow: %v", err)
	}
	if err := p.EnqueuePacket(2, 27); err != nil {
		t.Fatalf("EnqueuePacket after resume: %v", err)
	}
	if err := s.Run(50 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Packets() != 1 {
		t.Fatalf("delivered %d packets after resume, want 1", d.Packets())
	}
}

// TestSupervisionTimeout drives a link into a fault window and checks the
// supervision timeout declares it dead after exactly N consecutive failed
// exchanges, exactly once per episode, and re-arms after recovery.
func TestSupervisionTimeout(t *testing.T) {
	s := sim.New()
	// Two separate fault windows: the timeout must fire once per episode.
	outage := func(_ piconet.SlaveID, now sim.Time) bool {
		in := func(a, b sim.Time) bool { return now >= a && now < b }
		return in(10*time.Millisecond, 30*time.Millisecond) ||
			in(70*time.Millisecond, 90*time.Millisecond)
	}
	type death struct{ since, at sim.Time }
	var deaths []death
	p := buildBE(t, s,
		piconet.WithLinkFault(outage),
		piconet.WithSupervision(3, func(_ piconet.SlaveID, since, at sim.Time) {
			deaths = append(deaths, death{since, at})
		}))
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Run(60 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(deaths) != 1 {
		t.Fatalf("supervision fired %d times during one outage, want 1", len(deaths))
	}
	dd := deaths[0]
	if dd.since < 10*time.Millisecond || dd.since >= 30*time.Millisecond {
		t.Fatalf("failing-since %v outside the outage window", dd.since)
	}
	// 3 consecutive failed 2-slot exchanges: detection within ~4 ms of
	// the first failure.
	if lat := dd.at - dd.since; lat <= 0 || lat > 5*time.Millisecond {
		t.Fatalf("detection latency %v implausible for 3 consecutive polls", lat)
	}
	// Second outage after recovery: the re-armed timeout fires again.
	if err := s.Run(120 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(deaths) != 2 {
		t.Fatalf("supervision fired %d times across two outages, want 2", len(deaths))
	}
	if d2 := deaths[1]; d2.since < 70*time.Millisecond || d2.since >= 90*time.Millisecond {
		t.Fatalf("second failing-since %v outside the second window", d2.since)
	}
}
// stamped after the cutoff drop from the queue and the meter, packets at
// or before it stay.
func TestPruneFutureArrivals(t *testing.T) {
	s := sim.New()
	p := buildBE(t, s)
	for i := 0; i <= 4; i++ {
		if err := p.EnqueuePacketAt(2, 27, time.Duration(i)*10*time.Millisecond); err != nil {
			t.Fatalf("EnqueuePacketAt: %v", err)
		}
	}
	p.PruneFutureArrivals(20 * time.Millisecond)
	off, _ := p.FlowOffered(2)
	if off.Packets() != 3 {
		t.Fatalf("offered %d packets after prune, want 3 (arrivals 0/10/20ms)", off.Packets())
	}
	if got := p.OracleUpQueueLen(2); got != 3 {
		t.Fatalf("queue holds %d packets after prune, want 3", got)
	}
}
