package piconet

import (
	"fmt"
	"io"

	"bluegs/internal/baseband"
	"bluegs/internal/sim"
)

// TraceKind classifies a traced channel use.
type TraceKind string

// Trace kinds.
const (
	// TraceGS is a Guaranteed Service poll exchange.
	TraceGS TraceKind = "GS"
	// TraceBE is a best-effort poll exchange.
	TraceBE TraceKind = "BE"
	// TraceSCO is a reserved synchronous exchange.
	TraceSCO TraceKind = "SCO"
)

// TraceEntry records one completed exchange on the air.
type TraceEntry struct {
	Start, End sim.Time
	Kind       TraceKind
	Slave      SlaveID
	DownType   baseband.PacketType
	UpType     baseband.PacketType
	DownFlow   FlowID
	UpFlow     FlowID
	DownBytes  int
	UpBytes    int
	// Lost reports an on-air loss in either leg.
	Lost bool
}

// String renders one line, e.g.
// "12.5ms GS S2 DH3:176(f2) / DH3:150(f3)".
func (e TraceEntry) String() string {
	leg := func(t baseband.PacketType, bytes int, flow FlowID) string {
		s := t.String()
		if bytes > 0 {
			s += fmt.Sprintf(":%d", bytes)
		}
		if flow != None {
			s += fmt.Sprintf("(f%d)", flow)
		}
		return s
	}
	suffix := ""
	if e.Lost {
		suffix = " LOST"
	}
	return fmt.Sprintf("%v %s S%d %s / %s%s",
		e.Start, e.Kind, e.Slave,
		leg(e.DownType, e.DownBytes, e.DownFlow),
		leg(e.UpType, e.UpBytes, e.UpFlow), suffix)
}

// Tracer receives every completed exchange. Implementations must not
// mutate piconet state.
type Tracer interface {
	Trace(e TraceEntry)
}

// WithTracer installs an exchange tracer.
func WithTracer(t Tracer) Option {
	return func(p *Piconet) { p.tracer = t }
}

// trace dispatches to the installed tracer, if any.
func (p *Piconet) trace(e TraceEntry) {
	if p.tracer != nil {
		p.tracer.Trace(e)
	}
}

// RingTracer keeps the most recent entries in a fixed-size ring. The zero
// value is unusable; create with NewRingTracer.
type RingTracer struct {
	entries []TraceEntry
	next    int
	full    bool
}

var _ Tracer = (*RingTracer)(nil)

// NewRingTracer keeps the last n entries (n < 1 is normalised to 1).
func NewRingTracer(n int) *RingTracer {
	if n < 1 {
		n = 1
	}
	return &RingTracer{entries: make([]TraceEntry, n)}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(e TraceEntry) {
	r.entries[r.next] = e
	r.next++
	if r.next == len(r.entries) {
		r.next = 0
		r.full = true
	}
}

// Entries returns the retained entries in chronological order.
func (r *RingTracer) Entries() []TraceEntry {
	if !r.full {
		return append([]TraceEntry(nil), r.entries[:r.next]...)
	}
	out := make([]TraceEntry, 0, len(r.entries))
	out = append(out, r.entries[r.next:]...)
	out = append(out, r.entries[:r.next]...)
	return out
}

// CSVTracer streams entries as CSV rows. Create with NewCSVTracer; the
// header is written on the first entry. Write errors are retained and
// reported by Err (the simulation is not interrupted).
type CSVTracer struct {
	w       io.Writer
	started bool
	err     error
}

var _ Tracer = (*CSVTracer)(nil)

// NewCSVTracer writes CSV to w.
func NewCSVTracer(w io.Writer) *CSVTracer { return &CSVTracer{w: w} }

// Err returns the first write error.
func (c *CSVTracer) Err() error { return c.err }

// Trace implements Tracer.
func (c *CSVTracer) Trace(e TraceEntry) {
	if c.err != nil {
		return
	}
	if !c.started {
		c.started = true
		if _, err := fmt.Fprintln(c.w, "start_us,end_us,kind,slave,down_type,down_flow,down_bytes,up_type,up_flow,up_bytes,lost"); err != nil {
			c.err = err
			return
		}
	}
	_, err := fmt.Fprintf(c.w, "%d,%d,%s,%d,%s,%d,%d,%s,%d,%d,%t\n",
		e.Start.Microseconds(), e.End.Microseconds(), e.Kind, e.Slave,
		e.DownType, e.DownFlow, e.DownBytes,
		e.UpType, e.UpFlow, e.UpBytes, e.Lost)
	if err != nil {
		c.err = err
	}
}
