package piconet_test

import (
	"strings"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

func TestRingTracerCapturesExchanges(t *testing.T) {
	s := sim.New()
	ring := piconet.NewRingTracer(1000)
	p := piconet.New(s, piconet.WithTracer(ring))
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []piconet.FlowConfig{
		{ID: 1, Slave: 1, Dir: piconet.Down, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
		{ID: 2, Slave: 1, Dir: piconet.Up, Class: piconet.BestEffort, Allowed: baseband.PaperTypes},
	} {
		if err := p.AddFlow(cfg); err != nil {
			t.Fatal(err)
		}
	}
	sched := &rrScheduler{slaves: []piconet.SlaveID{1}}
	p.SetScheduler(sched)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueuePacket(1, 176); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	entries := ring.Entries()
	if len(entries) != len(sched.outcomes) {
		t.Fatalf("traced %d entries, %d outcomes", len(entries), len(sched.outcomes))
	}
	first := entries[0]
	if first.Kind != piconet.TraceBE || first.DownBytes != 176 || first.DownFlow != 1 {
		t.Fatalf("first entry = %+v", first)
	}
	if !strings.Contains(first.String(), "DH3:176(f1)") {
		t.Fatalf("String() = %q", first.String())
	}
	// Chronological order.
	for i := 1; i < len(entries); i++ {
		if entries[i].Start < entries[i-1].Start {
			t.Fatalf("entries out of order at %d", i)
		}
	}
}

func TestRingTracerWrapsAround(t *testing.T) {
	ring := piconet.NewRingTracer(3)
	for i := 0; i < 7; i++ {
		ring.Trace(piconet.TraceEntry{Start: sim.Time(i) * time.Millisecond})
	}
	entries := ring.Entries()
	if len(entries) != 3 {
		t.Fatalf("len = %d, want 3", len(entries))
	}
	for i, want := range []sim.Time{4 * time.Millisecond, 5 * time.Millisecond, 6 * time.Millisecond} {
		if entries[i].Start != want {
			t.Fatalf("entries[%d].Start = %v, want %v", i, entries[i].Start, want)
		}
	}
	// Degenerate capacity normalised to one.
	tiny := piconet.NewRingTracer(0)
	tiny.Trace(piconet.TraceEntry{})
	if len(tiny.Entries()) != 1 {
		t.Fatal("tiny ring should hold one entry")
	}
}

func TestCSVTracer(t *testing.T) {
	var sb strings.Builder
	csv := piconet.NewCSVTracer(&sb)
	csv.Trace(piconet.TraceEntry{
		Start: 1250 * time.Microsecond, End: 2500 * time.Microsecond,
		Kind: piconet.TraceGS, Slave: 2,
		DownType: baseband.TypePOLL, UpType: baseband.TypeDH3,
		UpFlow: 3, UpBytes: 150,
	})
	csv.Trace(piconet.TraceEntry{
		Start: 5 * time.Millisecond, End: 6250 * time.Microsecond,
		Kind: piconet.TraceSCO, Slave: 1,
		DownType: baseband.TypeHV3, UpType: baseband.TypeHV3, Lost: true,
	})
	if err := csv.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "start_us,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "GS,2,POLL,0,0,DH3,3,150,false") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "SCO,1,HV3") || !strings.HasSuffix(lines[2], "true") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestCSVTracerWriteError(t *testing.T) {
	csv := piconet.NewCSVTracer(failingWriter{})
	csv.Trace(piconet.TraceEntry{})
	if csv.Err() == nil {
		t.Fatal("expected a retained write error")
	}
	// Further traces are no-ops.
	csv.Trace(piconet.TraceEntry{})
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestSCOTraceEntries(t *testing.T) {
	s := sim.New()
	ring := piconet.NewRingTracer(100)
	p := piconet.New(s, piconet.WithTracer(ring))
	if err := p.AddSlave(1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSCOLink(1, baseband.TypeHV3); err != nil {
		t.Fatal(err)
	}
	p.SetScheduler(&fixedActionScheduler{action: piconet.Idle(0)})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(40 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	entries := ring.Entries()
	if len(entries) == 0 {
		t.Fatal("no SCO trace entries")
	}
	for _, e := range entries {
		if e.Kind != piconet.TraceSCO || e.DownBytes != 30 || e.UpBytes != 30 {
			t.Fatalf("entry = %+v", e)
		}
		if (e.Start/baseband.SlotDuration)%6 != 0 {
			t.Fatalf("SCO exchange at %v not on the reservation grid", e.Start)
		}
	}
}
