package poller

import (
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// Demand is a demand-based poller in the spirit of Rao, Baux & Kesidis
// (IEEE WLAN 2001): each slave accumulates credit proportional to its
// estimated demand (an exponentially weighted average of the bytes its
// polls have moved), and the master polls the slave with the most credit.
// Heavily loaded slaves are therefore visited more often, while idle slaves
// decay toward a floor rate that keeps their demand estimate fresh. Create
// with NewDemand.
type Demand struct {
	inited  bool
	demand  map[piconet.SlaveID]float64 // EWMA of bytes per poll
	credit  map[piconet.SlaveID]float64
	pending piconet.SlaveID
	alpha   float64
}

var _ Poller = (*Demand)(nil)

// demandFloor keeps every slave's effective demand positive so that idle
// slaves are still polled occasionally (their credit grows slowly).
const demandFloor = 1.0

// NewDemand returns a demand-based poller. alpha in (0, 1] is the EWMA
// weight of the newest observation; out-of-range values default to 0.25.
func NewDemand(alpha float64) *Demand {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	return &Demand{
		demand: make(map[piconet.SlaveID]float64),
		credit: make(map[piconet.SlaveID]float64),
		alpha:  alpha,
	}
}

// Name implements Poller.
func (*Demand) Name() string { return "demand" }

// Next implements Poller.
func (d *Demand) Next(_ sim.Time, v View) (piconet.SlaveID, bool) {
	slaves := v.Slaves()
	if len(slaves) == 0 {
		return 0, false
	}
	if !d.inited {
		for _, s := range slaves {
			// Optimistic initial demand: one DH3 per poll.
			d.demand[s] = 183
			d.credit[s] = 0
		}
		d.inited = true
	}
	var best piconet.SlaveID
	bestCredit := 0.0
	for _, s := range slaves {
		eff := d.demand[s]
		if eff < demandFloor {
			eff = demandFloor
		}
		// Master-visible backlog boosts effective demand.
		if v.DownBacklog(s) > 0 {
			eff += 183
		}
		d.credit[s] += eff
		if best == 0 || d.credit[s] > bestCredit {
			best, bestCredit = s, d.credit[s]
		}
	}
	d.pending = best
	return best, true
}

// Observe implements Poller.
func (d *Demand) Observe(o Outcome) {
	if !d.inited {
		return
	}
	moved := float64(o.DownBytes + o.UpBytes)
	d.demand[o.Slave] = d.alpha*moved + (1-d.alpha)*d.demand[o.Slave]
	d.credit[o.Slave] = 0
}
