package poller

import (
	"math"
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// Dedicated demand-based poller behavior: the EWMA demand estimator and
// the credit scheme. The shared poller_test.go covers the busy/idle bias;
// these tests pin the estimator values and the starvation floor.

// TestDemandEWMAConverges: steady 176-byte polls drive the demand
// estimate from the optimistic prior to the true per-poll volume.
func TestDemandEWMAConverges(t *testing.T) {
	d := NewDemand(0.25)
	v := newMockView(1)
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		s, _ := d.Next(now, v)
		now += 2500 * time.Microsecond
		d.Observe(outcomeAt(s, now, 176, false))
	}
	if got := d.demand[1]; math.Abs(got-176) > 1 {
		t.Fatalf("demand after steady traffic = %v, want ~176", got)
	}
	// Silence decays the estimate geometrically.
	for i := 0; i < 50; i++ {
		s, _ := d.Next(now, v)
		now += 2500 * time.Microsecond
		d.Observe(outcomeAt(s, now, 0, false))
	}
	if got := d.demand[1]; got > 1 {
		t.Fatalf("demand after silence = %v, want ~0", got)
	}
}

// TestDemandEWMAWeight: one observation moves the estimate by exactly
// alpha of the innovation.
func TestDemandEWMAWeight(t *testing.T) {
	d := NewDemand(0.5)
	v := newMockView(1)
	s, _ := d.Next(0, v) // initialises demand to the 183-byte prior
	d.Observe(outcomeAt(s, time.Millisecond, 100, false))
	want := 0.5*100 + 0.5*183
	if got := d.demand[1]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("demand = %v, want %v", got, want)
	}
}

// TestDemandAlphaDefaults: out-of-range alphas fall back to 0.25.
func TestDemandAlphaDefaults(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		if d := NewDemand(bad); d.alpha != 0.25 {
			t.Fatalf("alpha %v accepted, want default 0.25", bad)
		}
	}
	if d := NewDemand(1); d.alpha != 1 {
		t.Fatal("alpha 1 is valid and must be kept")
	}
}

// TestDemandCreditResetOnService: serving a slave zeroes its credit, so
// two equally loaded slaves alternate instead of one capturing the
// channel.
func TestDemandCreditResetOnService(t *testing.T) {
	d := NewDemand(0.25)
	v := newMockView(1, 2)
	now := sim.Time(0)
	var prev piconet.SlaveID
	for i := 0; i < 20; i++ {
		s, _ := d.Next(now, v)
		if i > 0 && s == prev {
			t.Fatalf("poll %d repeated slave %d despite equal demand", i, s)
		}
		prev = s
		now += 2500 * time.Microsecond
		d.Observe(outcomeAt(s, now, 176, false))
	}
}

// TestDemandBacklogBoost: master-visible downlink backlog lifts a quiet
// slave's effective demand enough to win the next poll.
func TestDemandBacklogBoost(t *testing.T) {
	d := NewDemand(0.25)
	v := newMockView(1, 2)
	now := sim.Time(0)
	// Drain both demand estimates to the floor.
	for i := 0; i < 60; i++ {
		s, _ := d.Next(now, v)
		now += 2500 * time.Microsecond
		d.Observe(outcomeAt(s, now, 0, false))
	}
	v.backlog[2] = 3
	s, _ := d.Next(now, v)
	if s != 2 {
		t.Fatalf("poll = %d, want backlogged slave 2", s)
	}
}

// TestDemandFloorPreventsStarvation: a fully idle slave's credit still
// grows (at the floor rate), so the gap between its polls is bounded even
// against a heavy competitor.
func TestDemandFloorPreventsStarvation(t *testing.T) {
	d := NewDemand(0.25)
	v := newMockView(1, 2)
	now := sim.Time(0)
	lastIdle := -1
	var worstGap, gap int
	for i := 0; i < 3000; i++ {
		s, _ := d.Next(now, v)
		now += 2500 * time.Microsecond
		up := 0
		if s == 1 {
			up = 176
		} else {
			gap = i - lastIdle
			if lastIdle >= 0 && gap > worstGap {
				worstGap = gap
			}
			lastIdle = i
		}
		d.Observe(outcomeAt(s, now, up, false))
	}
	if lastIdle < 0 {
		t.Fatal("idle slave fully starved")
	}
	// Credit grows by >=1/poll against ~176/poll for the busy slave: the
	// idle slave must be served at least every ~200 polls.
	if worstGap == 0 || worstGap > 250 {
		t.Fatalf("worst idle gap = %d polls, want bounded (~180)", worstGap)
	}
}
