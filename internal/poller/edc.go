package poller

import (
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// EDC is the Efficient Double-Cycle poller of Bruno, Conti & Gregori (WMI
// 2001). Polling alternates between two cycles: the active cycle visits
// slaves believed to have traffic, and the idle cycle probes the remaining
// slaves. The idle cycle's period adapts: every fruitless probe of a slave
// doubles that slave's probe interval (up to a maximum), and any data resets
// it, so idle slaves cost exponentially fewer slots. Create with NewEDC.
type EDC struct {
	inited bool
	// interval and nextProbe hold, per slave, the adaptive probe spacing
	// and the next time the slave may be probed.
	interval  map[piconet.SlaveID]sim.Time
	nextProbe map[piconet.SlaveID]sim.Time
	// busy marks slaves in the active cycle.
	busy    map[piconet.SlaveID]bool
	last    piconet.SlaveID
	pending piconet.SlaveID

	minInterval sim.Time
	maxInterval sim.Time
}

var _ Poller = (*EDC)(nil)

// NewEDC returns an EDC poller with the given idle-cycle bounds. Non-
// positive arguments default to 2 slot pairs and 100 ms respectively.
func NewEDC(minInterval, maxInterval sim.Time) *EDC {
	if minInterval <= 0 {
		minInterval = 2 * piconet.DecisionInterval
	}
	if maxInterval <= 0 {
		maxInterval = 100 * time.Millisecond
	}
	if maxInterval < minInterval {
		maxInterval = minInterval
	}
	return &EDC{
		interval:    make(map[piconet.SlaveID]sim.Time),
		nextProbe:   make(map[piconet.SlaveID]sim.Time),
		busy:        make(map[piconet.SlaveID]bool),
		minInterval: minInterval,
		maxInterval: maxInterval,
	}
}

// Name implements Poller.
func (*EDC) Name() string { return "edc" }

// Next implements Poller.
func (e *EDC) Next(now sim.Time, v View) (piconet.SlaveID, bool) {
	slaves := v.Slaves()
	if len(slaves) == 0 {
		return 0, false
	}
	if !e.inited {
		for _, s := range slaves {
			e.interval[s] = e.minInterval
			e.nextProbe[s] = 0
			e.busy[s] = true // start optimistic: everyone in the active cycle
		}
		e.inited = true
	}
	// Downlink backlog makes a slave busy immediately (master knowledge).
	for _, s := range slaves {
		if v.DownBacklog(s) > 0 {
			e.busy[s] = true
		}
	}
	// Active cycle: next busy slave after the last polled one.
	for i := 0; i < len(slaves); i++ {
		cand := nextInRing(slaves, e.last)
		e.last = cand
		if e.busy[cand] {
			e.pending = cand
			return cand, true
		}
	}
	// Idle cycle: the due probe with the earliest deadline.
	var best piconet.SlaveID
	first := true
	for _, s := range slaves {
		if e.nextProbe[s] > now {
			continue
		}
		if first || e.nextProbe[s] < e.nextProbe[best] {
			best, first = s, false
		}
	}
	if first {
		// Nothing due: poll the slave whose probe is nearest (keeps
		// the poller work-conserving; the GS scheduler may instead
		// choose to idle).
		best = slaves[0]
		for _, s := range slaves[1:] {
			if e.nextProbe[s] < e.nextProbe[best] {
				best = s
			}
		}
	}
	e.pending = best
	return best, true
}

// Observe implements Poller.
func (e *EDC) Observe(o Outcome) {
	if !e.inited {
		return
	}
	s := o.Slave
	if o.Carried() || o.UpMoreData {
		e.busy[s] = true
		e.interval[s] = e.minInterval
		e.nextProbe[s] = o.End
		return
	}
	// Fruitless poll: demote to the idle cycle and back off.
	e.busy[s] = false
	iv := e.interval[s] * 2
	if iv > e.maxInterval {
		iv = e.maxInterval
	}
	if iv < e.minInterval {
		iv = e.minInterval
	}
	e.interval[s] = iv
	e.nextProbe[s] = o.End + iv
}
