package poller

import (
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// Dedicated EDC behavior: the double-cycle economics. The shared
// poller_test.go covers the basic backoff/reset; these tests pin the
// starvation and adaptation properties.

// TestEDCIdleSlaveNotStarved: while a loaded slave dominates the active
// cycle, the idle cycle still probes a long-idle slave whenever the
// active set momentarily drains — exponentially rarely, but never cut off
// entirely.
func TestEDCIdleSlaveNotStarved(t *testing.T) {
	v := newMockView(1, 2)
	e := NewEDC(2*piconet.DecisionInterval, 20*time.Millisecond)
	now := sim.Time(0)
	polls := map[piconet.SlaveID]int{}
	for i := 0; i < 2000; i++ {
		s, ok := e.Next(now, v)
		if !ok {
			t.Fatal("no slave")
		}
		polls[s]++
		now += 2 * 625 * time.Microsecond
		up := 0
		if s == 1 && polls[1]%4 != 0 {
			up = 176 // slave 1 busy, with a pause every 4th poll
		}
		e.Observe(outcomeAt(s, now, up, up > 0))
	}
	if polls[2] == 0 {
		t.Fatal("idle slave fully starved")
	}
	if polls[2] >= polls[1]/4 {
		t.Fatalf("idle slave polled %d vs busy %d; backoff not economising", polls[2], polls[1])
	}
}

// TestEDCActiveCycleRoundRobin: two loaded slaves share the active cycle
// alternately (ring order, no capture).
func TestEDCActiveCycleRoundRobin(t *testing.T) {
	v := newMockView(1, 2)
	e := NewEDC(0, 0)
	now := sim.Time(0)
	var prev piconet.SlaveID
	for i := 0; i < 10; i++ {
		s, _ := e.Next(now, v)
		if i > 0 && s == prev {
			t.Fatalf("poll %d repeated slave %d; active cycle not rotating", i, s)
		}
		prev = s
		now += 2500 * time.Microsecond
		e.Observe(outcomeAt(s, now, 176, true))
	}
}

// TestEDCIntervalCapped: fruitless probes back off exponentially but stop
// at the configured maximum.
func TestEDCIntervalCapped(t *testing.T) {
	v := newMockView(1)
	maxIv := 10 * time.Millisecond
	e := NewEDC(2*piconet.DecisionInterval, maxIv)
	now := sim.Time(0)
	for i := 0; i < 20; i++ {
		s, _ := e.Next(now, v)
		now += 1250 * time.Microsecond
		e.Observe(outcomeAt(s, now, 0, false))
		now += e.interval[1]
	}
	if e.interval[1] != maxIv {
		t.Fatalf("interval = %v, want capped at %v", e.interval[1], maxIv)
	}
}

// TestEDCMoreDataKeepsActive: a poll that carries nothing but signals
// more-data keeps the slave in the active cycle.
func TestEDCMoreDataKeepsActive(t *testing.T) {
	v := newMockView(1)
	e := NewEDC(0, 0)
	s, _ := e.Next(0, v)
	e.Observe(Outcome{Slave: s, End: time.Millisecond, UpMoreData: true, Slots: 2})
	if !e.busy[s] {
		t.Fatal("more-data outcome demoted the slave")
	}
	if e.interval[s] != e.minInterval {
		t.Fatalf("interval = %v, want min", e.interval[s])
	}
}

// TestEDCDownBacklogReactivates: master-visible backlog promotes an idle
// slave into the active cycle before its probe is due.
func TestEDCDownBacklogReactivates(t *testing.T) {
	v := newMockView(1, 2)
	e := NewEDC(2*piconet.DecisionInterval, 100*time.Millisecond)
	// Demote both slaves.
	now := sim.Time(0)
	for i := 0; i < 2; i++ {
		s, _ := e.Next(now, v)
		now += 1250 * time.Microsecond
		e.Observe(outcomeAt(s, now, 0, false))
	}
	// Neither probe is due for a long time, but backlog appears for 2.
	v.backlog[2] = 1
	s, ok := e.Next(now, v)
	if !ok || s != 2 {
		t.Fatalf("Next = %d (%v), want backlogged slave 2", s, ok)
	}
}

// TestEDCDefaultBounds: non-positive constructor arguments fall back to
// sane defaults, and an inverted range is clamped.
func TestEDCDefaultBounds(t *testing.T) {
	e := NewEDC(0, 0)
	if e.minInterval != 2*piconet.DecisionInterval {
		t.Fatalf("default min = %v", e.minInterval)
	}
	if e.maxInterval != 100*time.Millisecond {
		t.Fatalf("default max = %v", e.maxInterval)
	}
	inverted := NewEDC(50*time.Millisecond, time.Millisecond)
	if inverted.maxInterval != inverted.minInterval {
		t.Fatalf("inverted range not clamped: min %v max %v",
			inverted.minInterval, inverted.maxInterval)
	}
}
