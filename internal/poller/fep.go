package poller

import (
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// FEP is the Fair Exhaustive Poller of Johansson, Körner & Johansson
// (Broadband Communications '99). Slaves are partitioned into an active and
// an inactive set. Active slaves are polled in round-robin order and stay
// active while their polls move data; a slave whose poll moves no data is
// demoted to the inactive set. Inactive slaves are probed periodically so
// that newly backlogged slaves are promoted back quickly, while idle slaves
// consume few slots. The zero value is ready to use.
type FEP struct {
	inited   bool
	active   []piconet.SlaveID
	inactive []piconet.SlaveID
	// rr rotates through the active set.
	rr int
	// probe rotates through the inactive set between cycles.
	probe int
	// pending is the slave we just told the master to poll.
	pending piconet.SlaveID
	// sinceProbe counts polls since the last inactive probe; one probe
	// is injected every probeEvery polls so inactive slaves starve
	// neither the actives nor themselves.
	sinceProbe int
}

var _ Poller = (*FEP)(nil)

// probeEvery is how many active-set polls pass between inactive probes.
const probeEvery = 8

// Name implements Poller.
func (*FEP) Name() string { return "fep" }

func (f *FEP) initFrom(v View) {
	f.active = append(f.active[:0], v.Slaves()...)
	f.inactive = f.inactive[:0]
	f.inited = true
}

// Next implements Poller.
func (f *FEP) Next(_ sim.Time, v View) (piconet.SlaveID, bool) {
	if !f.inited {
		f.initFrom(v)
	}
	if len(f.active) == 0 && len(f.inactive) == 0 {
		return 0, false
	}
	// Promote any inactive slave with known downlink backlog: the master
	// sees its own queues.
	for i := 0; i < len(f.inactive); {
		if v.DownBacklog(f.inactive[i]) > 0 {
			f.promote(f.inactive[i])
		} else {
			i++
		}
	}
	// Periodic probe of one inactive slave, and always when no actives.
	if len(f.inactive) > 0 && (len(f.active) == 0 || f.sinceProbe >= probeEvery) {
		f.sinceProbe = 0
		f.probe %= len(f.inactive)
		f.pending = f.inactive[f.probe]
		f.probe++
		return f.pending, true
	}
	f.sinceProbe++
	f.rr %= len(f.active)
	f.pending = f.active[f.rr]
	f.rr++
	return f.pending, true
}

// Observe implements Poller.
func (f *FEP) Observe(o Outcome) {
	if o.Slave != f.pending {
		return
	}
	if o.Carried() || o.UpMoreData {
		f.promote(o.Slave)
		return
	}
	f.demote(o.Slave)
}

// promote moves the slave to the tail of the active set (no-op when already
// active).
func (f *FEP) promote(s piconet.SlaveID) {
	for _, a := range f.active {
		if a == s {
			return
		}
	}
	f.inactive = remove(f.inactive, s)
	f.active = append(f.active, s)
}

// demote moves the slave to the inactive set.
func (f *FEP) demote(s piconet.SlaveID) {
	f.active = remove(f.active, s)
	for _, i := range f.inactive {
		if i == s {
			return
		}
	}
	f.inactive = append(f.inactive, s)
}

func remove(list []piconet.SlaveID, s piconet.SlaveID) []piconet.SlaveID {
	for i, v := range list {
		if v == s {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
