package poller

import (
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// Dedicated FEP behavior: active/inactive set maintenance and the probe
// budget. The shared poller_test.go covers demotion and backlog
// promotion; these tests pin the starvation bounds of both sets.

// TestFEPInactiveNotStarvedByActives: with one permanently loaded slave
// holding the active set, inactive slaves still receive one probe every
// probeEvery polls.
func TestFEPInactiveNotStarvedByActives(t *testing.T) {
	v := newMockView(1, 2, 3)
	var f FEP
	// Demote 2 and 3 with empty polls; keep 1 active forever.
	now := sim.Time(0)
	step := func() piconet.SlaveID {
		s, ok := f.Next(now, v)
		if !ok {
			t.Fatal("no slave")
		}
		now += 2500 * time.Microsecond
		up := 0
		if s == 1 {
			up = 176
		}
		f.Observe(outcomeAt(s, now, up, up > 0))
		return s
	}
	for len(f.inactive) < 2 {
		step()
	}
	polls := map[piconet.SlaveID]int{}
	const n = 9 * probeEvery
	for i := 0; i < n; i++ {
		polls[step()]++
	}
	probes := polls[2] + polls[3]
	// One probe per probeEvery active polls, split across the inactives.
	if probes == 0 {
		t.Fatal("inactive slaves starved")
	}
	if probes < n/probeEvery-2 || probes > n/probeEvery+2 {
		t.Fatalf("probes = %d over %d polls, want ~%d", probes, n, n/probeEvery)
	}
	if polls[2] == 0 || polls[3] == 0 {
		t.Fatalf("probe rotation skipped a slave: %v", polls)
	}
}

// TestFEPActivesNotStarvedByProbes: the probe budget is bounded — the
// loaded slave keeps at least (probeEvery-1)/probeEvery of the polls.
func TestFEPActivesNotStarvedByProbes(t *testing.T) {
	v := newMockView(1, 2)
	var f FEP
	now := sim.Time(0)
	polls := map[piconet.SlaveID]int{}
	for i := 0; i < 200; i++ {
		s, _ := f.Next(now, v)
		polls[s]++
		now += 2500 * time.Microsecond
		up := 0
		if s == 1 {
			up = 176
		}
		f.Observe(outcomeAt(s, now, up, up > 0))
	}
	if polls[1] < 200*(probeEvery-1)/probeEvery-2 {
		t.Fatalf("active slave got %d of 200 polls; probes overran their budget", polls[1])
	}
}

// TestFEPMoreDataPromotes: a poll carrying no payload but a set more-data
// flag counts as productive and promotes.
func TestFEPMoreDataPromotes(t *testing.T) {
	v := newMockView(1, 2)
	var f FEP
	// Demote both.
	for i := 0; i < 2; i++ {
		s, _ := f.Next(0, v)
		f.Observe(outcomeAt(s, sim.Time(i+1)*time.Millisecond, 0, false))
	}
	if len(f.inactive) != 2 {
		t.Fatalf("inactive = %v, want both", f.inactive)
	}
	// Probe comes back empty-handed but flags more data.
	s, _ := f.Next(5*time.Millisecond, v)
	f.Observe(Outcome{Slave: s, End: 6 * time.Millisecond, UpMoreData: true, Slots: 2})
	if len(f.active) != 1 || f.active[0] != s {
		t.Fatalf("active = %v, want [%d]", f.active, s)
	}
}

// TestFEPIgnoresUnsolicitedOutcome: an Observe for a slave the poller did
// not just pick (e.g. a GS exchange) must not disturb the sets.
func TestFEPIgnoresUnsolicitedOutcome(t *testing.T) {
	v := newMockView(1, 2)
	var f FEP
	s, _ := f.Next(0, v)
	other := piconet.SlaveID(1)
	if s == 1 {
		other = 2
	}
	// Empty outcome for the slave that was NOT pending.
	f.Observe(outcomeAt(other, time.Millisecond, 0, false))
	for _, in := range f.inactive {
		if in == other {
			t.Fatalf("unsolicited outcome demoted slave %d", other)
		}
	}
}

// TestFEPZeroValueReady: the zero value initialises itself from the first
// view it sees.
func TestFEPZeroValueReady(t *testing.T) {
	var f FEP
	v := newMockView(4, 5)
	s, ok := f.Next(0, v)
	if !ok || (s != 4 && s != 5) {
		t.Fatalf("Next = %d (%v)", s, ok)
	}
	if len(f.active) != 2 {
		t.Fatalf("active = %v, want both slaves", f.active)
	}
}
