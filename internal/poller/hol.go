package poller

import (
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// HOL is a head-of-line priority poller in the spirit of Kalia, Bansal &
// Shorey (MoMuC '99): slaves are assigned static priorities, and among the
// slaves believed to have traffic the highest-priority one is polled.
// Believed-active means a master-visible downlink backlog, a set more-data
// flag, or a recent data-carrying poll. Slaves believed idle are probed in
// low-priority round robin so their state stays fresh. Create with NewHOL.
type HOL struct {
	// priority maps slave to priority; lower value is higher priority.
	// Slaves absent from the map share the lowest priority.
	priority map[piconet.SlaveID]int
	believed map[piconet.SlaveID]bool
	inited   bool
	probeRR  piconet.SlaveID
	pending  piconet.SlaveID
}

var _ Poller = (*HOL)(nil)

// NewHOL returns a head-of-line priority poller. priorities maps slaves to
// priority values (lower is more urgent); nil means all-equal, which
// degenerates to activity-gated round robin.
func NewHOL(priorities map[piconet.SlaveID]int) *HOL {
	p := make(map[piconet.SlaveID]int, len(priorities))
	for k, v := range priorities {
		p[k] = v
	}
	return &HOL{priority: p, believed: make(map[piconet.SlaveID]bool)}
}

// Name implements Poller.
func (*HOL) Name() string { return "hol-priority" }

// Next implements Poller.
func (h *HOL) Next(_ sim.Time, v View) (piconet.SlaveID, bool) {
	slaves := v.Slaves()
	if len(slaves) == 0 {
		return 0, false
	}
	if !h.inited {
		for _, s := range slaves {
			h.believed[s] = true // optimistic start
		}
		h.inited = true
	}
	var best piconet.SlaveID
	bestPrio := 0
	for _, s := range slaves {
		active := h.believed[s] || v.DownBacklog(s) > 0
		if !active {
			continue
		}
		prio := h.prio(s)
		if best == 0 || prio < bestPrio {
			best, bestPrio = s, prio
		}
	}
	if best == 0 {
		// Everyone believed idle: probe round-robin.
		h.probeRR = nextInRing(slaves, h.probeRR)
		best = h.probeRR
	}
	h.pending = best
	return best, true
}

// Observe implements Poller.
func (h *HOL) Observe(o Outcome) {
	if !h.inited {
		return
	}
	h.believed[o.Slave] = o.Carried() || o.UpMoreData
}

func (h *HOL) prio(s piconet.SlaveID) int {
	if p, ok := h.priority[s]; ok {
		return p
	}
	return int(^uint(0) >> 1) // lowest priority
}
