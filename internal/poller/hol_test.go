package poller

import (
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// Dedicated HOL behavior: static priorities and their known pathology.
// The shared poller_test.go covers the basic ordering; these tests pin
// the starvation property (the weakness the paper's GS mechanism fixes)
// and the probe fallback.

// TestHOLLowPriorityStarvation: head-of-line priority is not fair — a
// permanently active high-priority slave captures every poll while
// lower-priority slaves with queued data starve. This is the documented
// related-work weakness, so the test asserts it (a behavior change here
// would silently alter the A2 comparison).
func TestHOLLowPriorityStarvation(t *testing.T) {
	v := newMockView(1, 2)
	h := NewHOL(map[piconet.SlaveID]int{1: 1, 2: 2})
	v.backlog[1] = 1
	v.backlog[2] = 1 // slave 2 always has data too
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		s, _ := h.Next(now, v)
		if s != 1 {
			t.Fatalf("poll %d went to slave %d; HOL must capture for the top priority", i, s)
		}
		now += 2500 * time.Microsecond
		h.Observe(outcomeAt(s, now, 176, true))
	}
}

// TestHOLFallsToLowerPriorityWhenIdle: once the top-priority slave is
// believed idle (and holds no backlog), the next priority takes over.
func TestHOLFallsToLowerPriorityWhenIdle(t *testing.T) {
	v := newMockView(1, 2, 3)
	h := NewHOL(map[piconet.SlaveID]int{1: 1, 2: 2, 3: 3})
	s, _ := h.Next(0, v)
	if s != 1 {
		t.Fatalf("first poll = %d, want 1", s)
	}
	h.Observe(outcomeAt(1, time.Millisecond, 0, false))
	s, _ = h.Next(2*time.Millisecond, v)
	if s != 2 {
		t.Fatalf("after 1 idles, poll = %d, want 2", s)
	}
	// Backlog for 1 reinstates it immediately.
	v.backlog[1] = 1
	s, _ = h.Next(3*time.Millisecond, v)
	if s != 1 {
		t.Fatalf("backlogged top priority not reinstated: %d", s)
	}
}

// TestHOLUnmappedSlaveLowestPriority: slaves absent from the priority map
// rank below every mapped slave.
func TestHOLUnmappedSlaveLowestPriority(t *testing.T) {
	v := newMockView(1, 2)
	h := NewHOL(map[piconet.SlaveID]int{2: 100})
	// Both believed active; mapped slave 2 must win over unmapped 1.
	s, _ := h.Next(0, v)
	if s != 2 {
		t.Fatalf("poll = %d, want mapped slave 2", s)
	}
}

// TestHOLNilPrioritiesActivityRoundRobin: a nil priority map degenerates
// to activity-gated probing that visits everyone.
func TestHOLNilPrioritiesActivityRoundRobin(t *testing.T) {
	v := newMockView(1, 2, 3)
	h := NewHOL(nil)
	// Mark everyone idle.
	for i := 0; i < 3; i++ {
		s, _ := h.Next(sim.Time(i)*time.Millisecond, v)
		h.Observe(outcomeAt(s, sim.Time(i)*time.Millisecond+500*time.Microsecond, 0, false))
	}
	seen := map[piconet.SlaveID]int{}
	for i := 0; i < 9; i++ {
		s, _ := h.Next(sim.Time(10+i)*time.Millisecond, v)
		seen[s]++
		h.Observe(outcomeAt(s, sim.Time(10+i)*time.Millisecond+500*time.Microsecond, 0, false))
	}
	for s := piconet.SlaveID(1); s <= 3; s++ {
		if seen[s] != 3 {
			t.Fatalf("probe distribution %v not round-robin", seen)
		}
	}
}

// TestHOLMoreDataKeepsBelievedActive: an empty poll with the more-data
// flag keeps the slave in the believed-active set.
func TestHOLMoreDataKeepsBelievedActive(t *testing.T) {
	v := newMockView(1, 2)
	h := NewHOL(map[piconet.SlaveID]int{1: 1, 2: 2})
	s, _ := h.Next(0, v)
	h.Observe(Outcome{Slave: s, End: time.Millisecond, UpMoreData: true, Slots: 2})
	next, _ := h.Next(2*time.Millisecond, v)
	if next != s {
		t.Fatalf("more-data slave %d lost the poll to %d", s, next)
	}
}
