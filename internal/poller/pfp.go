package poller

import (
	"math"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// PFP is the Predictive Fair Poller of Ait Yaiz & Heijenk (Wireless Personal
// Communications 23(1), 2002), the poller the paper's evaluation uses for
// best-effort traffic. For every slave it maintains two aspects:
//
//   - a prediction of whether the slave has data: the master knows its own
//     downlink queues and the slave's last more-data flag exactly, and
//     estimates the uplink arrival rate from poll outcomes, giving
//     P(data) = 1 - exp(-lambda * timeSinceQueueKnownEmpty);
//   - a fairness account: each slave has a fair share (weight) of the
//     polling resource, and the fraction of its fair share each slave has
//     received ranks the slaves.
//
// The decision rule polls the slave with the smallest received fair-share
// fraction among slaves predicted to have data; when no slave is predicted
// active, it refreshes its knowledge by probing the slave whose state is
// stalest. The exact internals of the published PFP live in a companion
// report; this realization keeps its two published aspects (prediction and
// fair-share fractions) and is validated against the properties the paper
// claims: full throughput for underloaded slaves and max-min fair division
// of leftover capacity. Create with NewPFP.
type PFP struct {
	weights map[piconet.SlaveID]float64
	state   map[piconet.SlaveID]*pfpSlave
	inited  bool
	pending piconet.SlaveID

	// activeThreshold is the prediction level above which a slave is
	// treated as having data.
	activeThreshold float64
	// tau is the time constant of the arrival-rate estimator.
	tau sim.Time
}

type pfpSlave struct {
	// lambda is the estimated uplink packet arrival rate (packets/s).
	lambda float64
	// lastPollEnd is when we last learned this slave's queue state.
	lastPollEnd sim.Time
	// everPolled reports whether lastPollEnd is meaningful.
	everPolled bool
	// moreData is the slave's last more-data flag.
	moreData bool
	// servedSlots accumulates the polling resource spent on the slave.
	servedSlots float64
}

var _ Poller = (*PFP)(nil)

// PFPOption configures a PFP poller.
type PFPOption func(*PFP)

// WithActiveThreshold sets the prediction level above which a slave is
// treated as having data (default 0.6). Higher values poll idle-looking
// slaves later: fewer wasted probe slots at the cost of slightly higher
// best-effort delay. Values outside (0, 1) are ignored.
func WithActiveThreshold(p float64) PFPOption {
	return func(pfp *PFP) {
		if p > 0 && p < 1 {
			pfp.activeThreshold = p
		}
	}
}

// NewPFP returns a Predictive Fair Poller. weights assigns each slave's
// fair share; nil or missing entries default to 1 (equal shares).
func NewPFP(weights map[piconet.SlaveID]float64, opts ...PFPOption) *PFP {
	w := make(map[piconet.SlaveID]float64, len(weights))
	for k, v := range weights {
		if v > 0 {
			w[k] = v
		}
	}
	pfp := &PFP{
		weights:         w,
		state:           make(map[piconet.SlaveID]*pfpSlave),
		activeThreshold: 0.6,
		tau:             200 * time.Millisecond, // rate-estimator time constant
	}
	for _, opt := range opts {
		opt(pfp)
	}
	return pfp
}

// Name implements Poller.
func (*PFP) Name() string { return "pfp" }

func (p *PFP) weight(s piconet.SlaveID) float64 {
	if w, ok := p.weights[s]; ok {
		return w
	}
	return 1
}

func (p *PFP) slave(s piconet.SlaveID) *pfpSlave {
	st, ok := p.state[s]
	if !ok {
		st = &pfpSlave{lambda: 50} // optimistic prior: 50 packets/s
		p.state[s] = st
	}
	return st
}

// Predict returns the poller's current estimate of the probability that the
// slave has data to exchange at time now (exposed for tests and reports).
func (p *PFP) Predict(now sim.Time, v View, s piconet.SlaveID) float64 {
	if v.DownBacklog(s) > 0 {
		return 1
	}
	st := p.slave(s)
	if st.moreData {
		return 1
	}
	if !st.everPolled {
		return 1 // never sampled: assume active so it gets polled
	}
	dt := (now - st.lastPollEnd).Seconds()
	if dt <= 0 {
		return 0
	}
	return 1 - math.Exp(-st.lambda*dt)
}

// FairShareFraction returns served/(weight-normalised total): below 1 means
// the slave has received less than its fair share (exposed for tests).
func (p *PFP) FairShareFraction(s piconet.SlaveID) float64 {
	var total, weightSum float64
	for id, st := range p.state {
		total += st.servedSlots
		weightSum += p.weight(id)
	}
	if total == 0 || weightSum == 0 {
		return 0
	}
	fairShare := total * p.weight(s) / weightSum
	if fairShare == 0 {
		return math.Inf(1)
	}
	return p.slave(s).servedSlots / fairShare
}

// Next implements Poller.
func (p *PFP) Next(now sim.Time, v View) (piconet.SlaveID, bool) {
	slaves := v.Slaves()
	if len(slaves) == 0 {
		return 0, false
	}
	if !p.inited {
		for _, s := range slaves {
			p.slave(s)
		}
		p.inited = true
	}
	// Fairness-first among predicted-active slaves.
	var best piconet.SlaveID
	bestFrac := math.Inf(1)
	for _, s := range slaves {
		if p.Predict(now, v, s) < p.activeThreshold {
			continue
		}
		frac := p.FairShareFraction(s)
		if frac < bestFrac {
			best, bestFrac = s, frac
		}
	}
	if best != 0 {
		p.pending = best
		return best, true
	}
	// Nobody predicted active: refresh the stalest knowledge.
	best = slaves[0]
	for _, s := range slaves[1:] {
		if p.slave(s).lastPollEnd < p.slave(best).lastPollEnd {
			best = s
		}
	}
	p.pending = best
	return best, true
}

// Observe implements Poller.
func (p *PFP) Observe(o Outcome) {
	st := p.slave(o.Slave)
	carried := 0.0
	if o.UpBytes > 0 {
		carried = 1
	}
	if st.everPolled {
		dt := (o.End - st.lastPollEnd).Seconds()
		if dt > 0 {
			// Time-constant EWMA handles irregular sampling gaps.
			w := 1 - math.Exp(-dt/p.tau.Seconds())
			obs := carried / dt
			st.lambda = (1-w)*st.lambda + w*obs
			if st.lambda < 0.1 {
				st.lambda = 0.1 // keep probes alive for idle slaves
			}
		}
	}
	st.everPolled = true
	st.lastPollEnd = o.End
	st.moreData = o.UpMoreData
	st.servedSlots += float64(o.Slots)
}
