package poller

import (
	"math"
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// Dedicated PFP behavior: the arrival-rate estimator and the fairness
// account. The shared poller_test.go covers prediction edges and the
// deficit rule; these tests pin the estimator dynamics and the long-run
// fairness split.

// TestPFPLambdaTracksArrivalRate: feeding regular productive polls drives
// the estimated rate toward the true one; a long silent stretch decays it
// back down.
func TestPFPLambdaTracksArrivalRate(t *testing.T) {
	p := NewPFP(nil)
	// One packet every 10 ms => 100 packets/s, sampled by polling at the
	// same cadence.
	now := sim.Time(0)
	for i := 0; i < 400; i++ {
		now += 10 * time.Millisecond
		p.Observe(Outcome{Slave: 1, End: now, UpBytes: 176, Slots: 4})
	}
	busy := p.state[1].lambda
	if busy < 60 || busy > 140 {
		t.Fatalf("lambda after steady 100/s traffic = %v, want ~100", busy)
	}
	// Now the slave goes quiet: empty polls at the same cadence.
	for i := 0; i < 400; i++ {
		now += 10 * time.Millisecond
		p.Observe(Outcome{Slave: 1, End: now, Slots: 2})
	}
	idle := p.state[1].lambda
	if idle >= busy/4 {
		t.Fatalf("lambda after silence = %v, want well below %v", idle, busy)
	}
	if idle < 0.1 {
		t.Fatalf("lambda floor violated: %v", idle)
	}
}

// TestPFPPredictionReflectsRate: a slave with a high estimated rate is
// predicted active much sooner after an empty poll than a slow one.
func TestPFPPredictionReflectsRate(t *testing.T) {
	v := newMockView(1, 2)
	p := NewPFP(nil)
	now := sim.Time(0)
	// Slave 1 fast (poll every 5 ms, always data), slave 2 slow (always
	// empty).
	for i := 0; i < 200; i++ {
		now += 5 * time.Millisecond
		p.Observe(Outcome{Slave: 1, End: now, UpBytes: 176, Slots: 4})
		p.Observe(Outcome{Slave: 2, End: now, Slots: 2})
	}
	// Both queues known empty at `now`; shortly after, the fast slave's
	// prediction dominates.
	p.Observe(Outcome{Slave: 1, End: now, Slots: 2})
	at := now + 8*time.Millisecond
	fast := p.Predict(at, v, 1)
	slow := p.Predict(at, v, 2)
	if fast <= slow {
		t.Fatalf("Predict: fast %v <= slow %v", fast, slow)
	}
	if fast < 0.5 {
		t.Fatalf("fast slave prediction %v too low 8ms after empty", fast)
	}
}

// TestPFPLongRunFairSplit: two permanently backlogged slaves with equal
// weights receive equal service (within 10%) over a long horizon —
// the max-min fairness property the paper relies on.
func TestPFPLongRunFairSplit(t *testing.T) {
	v := newMockView(1, 2)
	v.backlog[1] = 1
	v.backlog[2] = 1
	p := NewPFP(nil)
	now := sim.Time(0)
	slots := map[piconet.SlaveID]float64{}
	for i := 0; i < 1000; i++ {
		s, ok := p.Next(now, v)
		if !ok {
			t.Fatal("no slave")
		}
		// Slave 1's exchanges are three times longer: fairness must
		// account slots, not visits.
		used := 2
		if s == 1 {
			used = 6
		}
		now += sim.Time(used) * 625 * time.Microsecond
		p.Observe(Outcome{Slave: s, End: now, UpBytes: 176, Slots: used, UpMoreData: true})
		slots[s] += float64(used)
	}
	ratio := slots[1] / slots[2]
	if math.Abs(ratio-1) > 0.1 {
		t.Fatalf("slot split %v:%v (ratio %.3f), want equal within 10%%", slots[1], slots[2], ratio)
	}
}

// TestPFPWeightedSplit: a 3:1 weight assignment steers the long-run slot
// split accordingly.
func TestPFPWeightedSplit(t *testing.T) {
	v := newMockView(1, 2)
	v.backlog[1] = 1
	v.backlog[2] = 1
	p := NewPFP(map[piconet.SlaveID]float64{1: 3, 2: 1})
	now := sim.Time(0)
	slots := map[piconet.SlaveID]float64{}
	for i := 0; i < 2000; i++ {
		s, _ := p.Next(now, v)
		now += 4 * 625 * time.Microsecond
		p.Observe(Outcome{Slave: s, End: now, UpBytes: 176, Slots: 4, UpMoreData: true})
		slots[s] += 4
	}
	ratio := slots[1] / slots[2]
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weighted slot ratio = %.3f, want ~3", ratio)
	}
}

// TestPFPActiveThresholdOption: valid thresholds apply; out-of-range
// values are ignored.
func TestPFPActiveThresholdOption(t *testing.T) {
	if p := NewPFP(nil, WithActiveThreshold(0.9)); p.activeThreshold != 0.9 {
		t.Fatalf("threshold = %v, want 0.9", p.activeThreshold)
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if p := NewPFP(nil, WithActiveThreshold(bad)); p.activeThreshold != 0.6 {
			t.Fatalf("threshold %v accepted, want default kept", bad)
		}
	}
}

// TestPFPIdleSlaveEventuallyProbed: even with a backlogged competitor,
// the idle slave's rising prediction eventually earns it a poll — PFP
// must not starve.
func TestPFPIdleSlaveEventuallyProbed(t *testing.T) {
	v := newMockView(1, 2)
	v.backlog[1] = 1 // slave 1 permanently backlogged
	p := NewPFP(nil)
	now := sim.Time(0)
	polled2 := false
	for i := 0; i < 2000 && !polled2; i++ {
		s, _ := p.Next(now, v)
		if s == 2 {
			polled2 = true
		}
		now += 4 * 625 * time.Microsecond
		up := 0
		if s == 1 {
			up = 176
		}
		p.Observe(Outcome{Slave: s, End: now, UpBytes: up, Slots: 4, UpMoreData: s == 1})
	}
	if !polled2 {
		t.Fatal("idle slave never probed over 5 simulated seconds")
	}
}
