// Package poller implements best-effort intra-piconet polling disciplines:
// the related-work baselines the paper positions itself against (round
// robin, exhaustive round robin, the Fair Exhaustive Poller, the Efficient
// Double-Cycle poller, demand-based polling, and head-of-line priority
// polling) and the Predictive Fair Poller (PFP) the paper builds on.
//
// A Poller picks which slave's best-effort channel the master should poll
// next. It sees only master-side knowledge: its own downlink backlog and the
// outcomes of past polls (bytes carried, the slave's more-data flag). The
// Guaranteed Service scheduler in internal/core consults a Poller for the
// capacity left over after the planned GS polls.
package poller

import (
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// View is the master-side knowledge a poller may consult when deciding.
type View interface {
	// Slaves lists the pollable slaves in ascending order.
	Slaves() []piconet.SlaveID
	// DownBacklog returns the number of queued best-effort packets the
	// master holds for the slave's downlink.
	DownBacklog(slave piconet.SlaveID) int
}

// Outcome is the poller-relevant result of a best-effort poll.
type Outcome struct {
	// Slave is the polled slave.
	Slave piconet.SlaveID
	// End is when the exchange finished.
	End sim.Time
	// DownBytes and UpBytes are the payload bytes moved in each
	// direction (zero for POLL/NULL legs).
	DownBytes, UpBytes int
	// Slots is the air time of the exchange in slots.
	Slots int
	// UpMoreData is the slave's more-data flag.
	UpMoreData bool
}

// Carried reports whether the exchange moved any payload.
func (o Outcome) Carried() bool { return o.DownBytes > 0 || o.UpBytes > 0 }

// Poller is a best-effort polling discipline.
type Poller interface {
	// Name identifies the discipline in reports.
	Name() string
	// Next picks the slave to poll at now; ok is false when the poller
	// has no slave to poll (no slaves registered).
	Next(now sim.Time, v View) (slave piconet.SlaveID, ok bool)
	// Observe feeds back the outcome of an executed best-effort poll.
	Observe(o Outcome)
}

// nextInRing returns the element after the given slave in the ring of
// slaves, or the first slave when absent.
func nextInRing(slaves []piconet.SlaveID, after piconet.SlaveID) piconet.SlaveID {
	if len(slaves) == 0 {
		return 0
	}
	for i, s := range slaves {
		if s == after {
			return slaves[(i+1)%len(slaves)]
		}
	}
	return slaves[0]
}
