package poller

import (
	"testing"
	"time"

	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// mockView is a scriptable master-knowledge view.
type mockView struct {
	slaves  []piconet.SlaveID
	backlog map[piconet.SlaveID]int
}

func newMockView(slaves ...piconet.SlaveID) *mockView {
	return &mockView{slaves: slaves, backlog: make(map[piconet.SlaveID]int)}
}

func (m *mockView) Slaves() []piconet.SlaveID         { return m.slaves }
func (m *mockView) DownBacklog(s piconet.SlaveID) int { return m.backlog[s] }

func outcomeAt(s piconet.SlaveID, end sim.Time, up int, more bool) Outcome {
	slots := 2
	if up > 0 {
		slots = 4
	}
	return Outcome{Slave: s, End: end, UpBytes: up, Slots: slots, UpMoreData: more}
}

func TestRoundRobinCycles(t *testing.T) {
	v := newMockView(1, 2, 3)
	var rr RoundRobin
	want := []piconet.SlaveID{1, 2, 3, 1, 2, 3}
	for i, w := range want {
		got, ok := rr.Next(0, v)
		if !ok || got != w {
			t.Fatalf("poll %d = %d (%v), want %d", i, got, ok, w)
		}
		rr.Observe(outcomeAt(got, sim.Time(i)*time.Millisecond, 0, false))
	}
}

func TestRoundRobinNoSlaves(t *testing.T) {
	var rr RoundRobin
	if _, ok := rr.Next(0, newMockView()); ok {
		t.Fatal("expected no slave")
	}
}

func TestExhaustiveStaysWhileProductive(t *testing.T) {
	v := newMockView(1, 2)
	var e Exhaustive
	s, _ := e.Next(0, v)
	if s != 1 {
		t.Fatalf("first poll = %d, want 1", s)
	}
	// Slave 1 keeps delivering: poller must stay.
	for i := 0; i < 5; i++ {
		e.Observe(outcomeAt(1, sim.Time(i)*time.Millisecond, 100, true))
		s, _ = e.Next(0, v)
		if s != 1 {
			t.Fatalf("poll %d = %d, want to stay on 1", i, s)
		}
	}
	// Empty outcome: advance to slave 2.
	e.Observe(outcomeAt(1, 10*time.Millisecond, 0, false))
	s, _ = e.Next(0, v)
	if s != 2 {
		t.Fatalf("after drain = %d, want 2", s)
	}
}

func TestFEPDemotesAndProbes(t *testing.T) {
	v := newMockView(1, 2, 3)
	var f FEP
	// Drain: every poll comes back empty; all slaves end up inactive.
	for i := 0; i < 3; i++ {
		s, ok := f.Next(0, v)
		if !ok {
			t.Fatal("no slave")
		}
		f.Observe(outcomeAt(s, sim.Time(i)*time.Millisecond, 0, false))
	}
	if len(f.active) != 0 || len(f.inactive) != 3 {
		t.Fatalf("active=%v inactive=%v, want all inactive", f.active, f.inactive)
	}
	// With all inactive, Next probes them (and keeps probing).
	s, ok := f.Next(10*time.Millisecond, v)
	if !ok {
		t.Fatal("no probe target")
	}
	// A productive probe promotes the slave back.
	f.Observe(outcomeAt(s, 11*time.Millisecond, 144, false))
	if len(f.active) != 1 || f.active[0] != s {
		t.Fatalf("active=%v, want [%d]", f.active, s)
	}
	// The promoted slave is now polled (it is the only active).
	got, _ := f.Next(12*time.Millisecond, v)
	if got != s {
		t.Fatalf("next poll = %d, want promoted slave %d", got, s)
	}
}

func TestFEPPromotesOnDownBacklog(t *testing.T) {
	v := newMockView(1, 2)
	var f FEP
	// Demote both.
	for i := 0; i < 2; i++ {
		s, _ := f.Next(0, v)
		f.Observe(outcomeAt(s, sim.Time(i)*time.Millisecond, 0, false))
	}
	// Master-side backlog for slave 2: immediately promoted and polled.
	v.backlog[2] = 3
	s, _ := f.Next(5*time.Millisecond, v)
	if s != 2 {
		t.Fatalf("poll = %d, want 2 (downlink backlog)", s)
	}
}

func TestFEPRoundRobinAmongActive(t *testing.T) {
	v := newMockView(1, 2, 3)
	var f FEP
	seen := map[piconet.SlaveID]int{}
	for i := 0; i < 30; i++ {
		s, _ := f.Next(0, v)
		seen[s]++
		// All slaves stay productive.
		f.Observe(outcomeAt(s, sim.Time(i)*time.Millisecond, 100, true))
	}
	for s, n := range seen {
		if n != 10 {
			t.Fatalf("slave %d polled %d times, want 10 (fair RR): %v", s, n, seen)
		}
	}
}

func TestEDCBacksOffIdleSlaves(t *testing.T) {
	v := newMockView(1, 2)
	e := NewEDC(2*piconet.DecisionInterval, 50*time.Millisecond)
	now := sim.Time(0)
	// Both slaves idle: repeated fruitless polls push their probe
	// intervals up.
	polls := 0
	for i := 0; i < 10; i++ {
		s, ok := e.Next(now, v)
		if !ok {
			break
		}
		polls++
		now += 2 * 625 * time.Microsecond
		e.Observe(outcomeAt(s, now, 0, false))
	}
	iv1 := e.interval[1]
	if iv1 <= 2*piconet.DecisionInterval {
		t.Fatalf("interval for idle slave = %v, want backed off", iv1)
	}
	// Data resets the backoff.
	e.Observe(outcomeAt(1, now, 144, false))
	if e.interval[1] != 2*piconet.DecisionInterval {
		t.Fatalf("interval after data = %v, want reset to min", e.interval[1])
	}
	if !e.busy[1] {
		t.Fatal("slave with data should rejoin the active cycle")
	}
}

func TestEDCServesActiveFirst(t *testing.T) {
	v := newMockView(1, 2)
	e := NewEDC(0, 0)
	// Make slave 1 idle, slave 2 busy.
	s, _ := e.Next(0, v)
	e.Observe(outcomeAt(s, 1250*time.Microsecond, 0, false))
	s, _ = e.Next(2*time.Millisecond, v)
	e.Observe(outcomeAt(s, 3*time.Millisecond, 144, true))
	// Now the busy slave must be chosen.
	got, _ := e.Next(4*time.Millisecond, v)
	busyOne := s
	if got != busyOne {
		t.Fatalf("next = %d, want busy slave %d", got, busyOne)
	}
}

func TestDemandFavorsBusySlave(t *testing.T) {
	v := newMockView(1, 2)
	d := NewDemand(0.25)
	// Feed outcomes: slave 1 always moves 176 bytes, slave 2 nothing.
	now := sim.Time(0)
	polls := map[piconet.SlaveID]int{}
	for i := 0; i < 200; i++ {
		s, ok := d.Next(now, v)
		if !ok {
			t.Fatal("no slave")
		}
		polls[s]++
		now += 2500 * time.Microsecond
		up := 0
		if s == 1 {
			up = 176
		}
		d.Observe(outcomeAt(s, now, up, false))
	}
	if polls[1] <= 3*polls[2] {
		t.Fatalf("busy slave polled %d, idle %d; want strong bias", polls[1], polls[2])
	}
	if polls[2] == 0 {
		t.Fatal("idle slave fully starved; demand floor should keep probes alive")
	}
}

func TestHOLPriorityOrder(t *testing.T) {
	v := newMockView(1, 2, 3)
	h := NewHOL(map[piconet.SlaveID]int{1: 3, 2: 1, 3: 2})
	// All believed active initially: highest priority (2) chosen.
	s, _ := h.Next(0, v)
	if s != 2 {
		t.Fatalf("first poll = %d, want priority slave 2", s)
	}
	// Slave 2 goes idle; next is slave 3, then 1.
	h.Observe(outcomeAt(2, time.Millisecond, 0, false))
	s, _ = h.Next(2*time.Millisecond, v)
	if s != 3 {
		t.Fatalf("poll = %d, want 3", s)
	}
	h.Observe(outcomeAt(3, 3*time.Millisecond, 0, false))
	s, _ = h.Next(4*time.Millisecond, v)
	if s != 1 {
		t.Fatalf("poll = %d, want 1", s)
	}
	// All idle: probing keeps rotating.
	h.Observe(outcomeAt(1, 5*time.Millisecond, 0, false))
	probed := map[piconet.SlaveID]bool{}
	for i := 0; i < 3; i++ {
		s, _ = h.Next(sim.Time(6+i)*time.Millisecond, v)
		probed[s] = true
		h.Observe(outcomeAt(s, sim.Time(6+i)*time.Millisecond+500*time.Microsecond, 0, false))
	}
	if len(probed) != 3 {
		t.Fatalf("probe rotation covered %d slaves, want 3", len(probed))
	}
	// Down backlog reactivates by priority.
	v.backlog[1] = 1
	v.backlog[2] = 1
	s, _ = h.Next(20*time.Millisecond, v)
	if s != 2 {
		t.Fatalf("poll = %d, want higher-priority slave 2", s)
	}
}

func TestPFPPredictionRises(t *testing.T) {
	v := newMockView(1)
	p := NewPFP(nil)
	// Before any poll: optimistic.
	if got := p.Predict(0, v, 1); got != 1 {
		t.Fatalf("unpolled Predict = %v, want 1", got)
	}
	// An empty poll pins the queue-known-empty time.
	p.Observe(outcomeAt(1, 10*time.Millisecond, 0, false))
	right := p.Predict(11*time.Millisecond, v, 1)
	later := p.Predict(100*time.Millisecond, v, 1)
	if right >= later {
		t.Fatalf("prediction should rise with time: %v then %v", right, later)
	}
	if got := p.Predict(10*time.Millisecond, v, 1); got != 0 {
		t.Fatalf("prediction at the instant of an empty poll = %v, want 0", got)
	}
	// Down backlog forces prediction to 1.
	v.backlog[1] = 1
	if got := p.Predict(10*time.Millisecond, v, 1); got != 1 {
		t.Fatalf("Predict with down backlog = %v, want 1", got)
	}
	v.backlog[1] = 0
	// More-data flag forces prediction to 1.
	p.Observe(outcomeAt(1, 20*time.Millisecond, 176, true))
	if got := p.Predict(20*time.Millisecond, v, 1); got != 1 {
		t.Fatalf("Predict with more-data = %v, want 1", got)
	}
}

func TestPFPFairnessPrefersDeficit(t *testing.T) {
	v := newMockView(1, 2)
	p := NewPFP(nil)
	// Both have down backlog (predicted active), but slave 1 has been
	// served much more.
	v.backlog[1] = 1
	v.backlog[2] = 1
	p.Observe(Outcome{Slave: 1, End: time.Millisecond, UpBytes: 176, Slots: 6})
	p.Observe(Outcome{Slave: 1, End: 2 * time.Millisecond, UpBytes: 176, Slots: 6})
	p.Observe(Outcome{Slave: 2, End: 3 * time.Millisecond, UpBytes: 176, Slots: 2})
	s, ok := p.Next(4*time.Millisecond, v)
	if !ok || s != 2 {
		t.Fatalf("Next = %d (%v), want under-served slave 2", s, ok)
	}
	f1 := p.FairShareFraction(1)
	f2 := p.FairShareFraction(2)
	if f1 <= f2 {
		t.Fatalf("fractions: slave1 %v <= slave2 %v, want slave1 over-served", f1, f2)
	}
}

func TestPFPWeights(t *testing.T) {
	p := NewPFP(map[piconet.SlaveID]float64{1: 3, 2: 1})
	p.Observe(Outcome{Slave: 1, End: time.Millisecond, UpBytes: 176, Slots: 6})
	p.Observe(Outcome{Slave: 2, End: 2 * time.Millisecond, UpBytes: 176, Slots: 6})
	// Equal service but slave 1 deserves 3x: its fraction must be lower.
	if f1, f2 := p.FairShareFraction(1), p.FairShareFraction(2); f1 >= f2 {
		t.Fatalf("weighted fractions: %v >= %v, want slave1 lower", f1, f2)
	}
}

func TestPFPProbesStalest(t *testing.T) {
	v := newMockView(1, 2)
	p := NewPFP(nil)
	// Empty polls for both; slave 1 longer ago.
	p.Observe(outcomeAt(1, 1*time.Millisecond, 0, false))
	p.Observe(outcomeAt(2, 50*time.Millisecond, 0, false))
	// Immediately after, neither is predicted active; probe stalest (1).
	s, ok := p.Next(51*time.Millisecond, v)
	if !ok || s != 1 {
		t.Fatalf("Next = %d (%v), want stalest slave 1", s, ok)
	}
}

func TestPollerNamesDistinct(t *testing.T) {
	ps := []Poller{
		&RoundRobin{}, &Exhaustive{}, &FEP{}, NewEDC(0, 0),
		NewDemand(0), NewHOL(nil), NewPFP(nil),
	}
	seen := map[string]bool{}
	for _, p := range ps {
		n := p.Name()
		if n == "" || seen[n] {
			t.Fatalf("duplicate or empty poller name %q", n)
		}
		seen[n] = true
	}
}

func TestAllPollersHandleNoSlaves(t *testing.T) {
	v := newMockView()
	ps := []Poller{
		&RoundRobin{}, &Exhaustive{}, &FEP{}, NewEDC(0, 0),
		NewDemand(0.5), NewHOL(nil), NewPFP(nil),
	}
	for _, p := range ps {
		if _, ok := p.Next(0, v); ok {
			t.Fatalf("%s returned a slave from an empty view", p.Name())
		}
	}
}
