package poller

import (
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// RoundRobin is the pure round-robin (limited service, one poll per visit)
// baseline: slaves are polled in a fixed cyclic order regardless of
// activity. Simple and fair in polls, but it wastes slots on inactive
// slaves and cannot favour backlogged ones. The zero value is ready to use.
type RoundRobin struct {
	last piconet.SlaveID
}

var _ Poller = (*RoundRobin)(nil)

// Name implements Poller.
func (*RoundRobin) Name() string { return "round-robin" }

// Next implements Poller.
func (r *RoundRobin) Next(_ sim.Time, v View) (piconet.SlaveID, bool) {
	slaves := v.Slaves()
	if len(slaves) == 0 {
		return 0, false
	}
	r.last = nextInRing(slaves, r.last)
	return r.last, true
}

// Observe implements Poller.
func (*RoundRobin) Observe(Outcome) {}

// Exhaustive is exhaustive round robin: the master keeps polling the same
// slave for as long as the exchanges carry data (in either direction) or
// the downlink backlog is nonzero, then advances. Better slot usage than
// pure round robin, but a single busy slave can monopolise the channel.
// The zero value is ready to use.
type Exhaustive struct {
	current piconet.SlaveID
	// stay is true while the current slave is known productive.
	stay bool
}

var _ Poller = (*Exhaustive)(nil)

// Name implements Poller.
func (*Exhaustive) Name() string { return "exhaustive-rr" }

// Next implements Poller.
func (e *Exhaustive) Next(_ sim.Time, v View) (piconet.SlaveID, bool) {
	slaves := v.Slaves()
	if len(slaves) == 0 {
		return 0, false
	}
	if e.current != 0 && e.stay {
		// Validate the slave still exists (slave sets are static in
		// practice, but stay defensive).
		for _, s := range slaves {
			if s == e.current {
				return e.current, true
			}
		}
	}
	e.current = nextInRing(slaves, e.current)
	e.stay = true
	return e.current, true
}

// Observe implements Poller.
func (e *Exhaustive) Observe(o Outcome) {
	if o.Slave != e.current {
		return
	}
	// Leave the slave when the exchange moved nothing and the slave
	// signalled no more data.
	e.stay = o.Carried() || o.UpMoreData
}
