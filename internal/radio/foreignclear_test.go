package radio

import (
	"math"
	"testing"
	"time"

	"bluegs/internal/baseband"
)

// TestClearFactorMatchesCollisionProb: the clear-channel product one
// medium exports at an epoch boundary must equal the complement of the
// collision probability an outside observer at that instant would see —
// the arithmetic identity the sharded interference exchange relies on.
func TestClearFactorMatchesCollisionProb(t *testing.T) {
	ck := &clock{t: time.Second}
	m := NewMedium(79, 0, ck.now)
	a := m.Attach(Ideal{})
	b := m.Attach(Ideal{})
	a.act.attachedAt, a.act.busyTotal = 0, 300*time.Millisecond
	b.act.attachedAt, b.act.busyTotal = 0, 700*time.Millisecond
	// An outside observer is a self not attached to the medium.
	outside := &Activity{m: m, active: true}
	wantClear := 1 - m.collisionProb(outside, ck.t)
	if got := m.ClearFactor(ck.t); math.Abs(got-wantClear) > 1e-12 {
		t.Fatalf("ClearFactor = %g, want %g", got, wantClear)
	}
	// A piconet on air at the boundary counts as occupying one channel.
	a.act.busyUntil = ck.t + baseband.SlotDuration
	qB := b.act.utilization(ck.t)
	want := (1 - 1.0/79) * (1 - qB/79)
	if got := m.ClearFactor(ck.t); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ClearFactor with on-air piconet = %g, want %g", got, want)
	}
	// Detached piconets stop contributing.
	m.Detach(a)
	if got := m.ClearFactor(ck.t); math.Abs(got-(1-qB/79)) > 1e-12 {
		t.Fatalf("ClearFactor after detach = %g, want %g", got, 1-qB/79)
	}
}

// TestSetForeignClearFoldsIntoCollisionProb: an installed epoch snapshot
// multiplies every local collision read, and the default of 1 keeps the
// single-kernel arithmetic exact.
func TestSetForeignClearFoldsIntoCollisionProb(t *testing.T) {
	ck := &clock{t: time.Second}
	m := NewMedium(79, 0, ck.now)
	self := m.Attach(Ideal{})
	other := m.Attach(Ideal{})
	other.act.attachedAt, other.act.busyTotal = 0, 400*time.Millisecond
	local := m.collisionProb(self.act, ck.t)

	const foreign = 0.95
	m.SetForeignClear(foreign)
	want := 1 - foreign*(1-local)
	if got := m.collisionProb(self.act, ck.t); math.Abs(got-want) > 1e-12 {
		t.Fatalf("collisionProb with foreign snapshot = %g, want %g", got, want)
	}
	// A lone local piconet still collides against the foreign snapshot.
	m.Detach(other)
	if got := m.collisionProb(self.act, ck.t); math.Abs(got-(1-foreign)) > 1e-12 {
		t.Fatalf("lone piconet vs foreign snapshot = %g, want %g", got, 1-foreign)
	}
	// Restoring 1 restores the unsharded arithmetic exactly.
	m.SetForeignClear(1)
	if got := m.collisionProb(self.act, ck.t); got != 0 {
		t.Fatalf("collisionProb after reset = %g, want 0", got)
	}
}

// TestSetForeignClearRejectsBadValues: out-of-range snapshots reset to
// the neutral 1 instead of corrupting every subsequent probability.
func TestSetForeignClearRejectsBadValues(t *testing.T) {
	ck := &clock{t: time.Second}
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		m := NewMedium(79, 0, ck.now)
		self := m.Attach(Ideal{})
		m.SetForeignClear(bad)
		if got := m.collisionProb(self.act, ck.t); got != 0 {
			t.Fatalf("SetForeignClear(%g): collisionProb = %g, want neutral 0", bad, got)
		}
	}
}
