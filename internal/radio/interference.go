package radio

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bluegs/internal/baseband"
)

// DefaultFHChannels is the size of the Bluetooth frequency-hopping set: 79
// 1 MHz channels. Co-located piconets hop over the same set with
// uncorrelated sequences, so two simultaneous transmissions land on the
// same channel — and destroy each other — with probability ~1/79 per hop.
const DefaultFHChannels = 79

// DefaultUtilizationWindow is the minimum elapsed time a piconet's channel
// utilization is estimated over. Before that much simulated time has
// passed the estimate divides by the floor instead, so a piconet's very
// first exchanges do not read as 100% load.
const DefaultUtilizationWindow = 250 * time.Millisecond

// Medium models the shared FH spectrum of co-located piconets. Each
// piconet attaches once and receives a HopInterference model that wraps
// its own channel model; every packet any of them sends is then exposed
// to co-channel collisions derived from the number and load of the other
// attached piconets (the classic 1/C frequency-hopping collision
// approximation):
//
//	P(collision) = 1 − ∏_{j≠i} (1 − q_j/C)
//
// where C is the hop-set size and q_j is piconet j's channel occupancy —
// 1 when j is transmitting at this instant, otherwise its measured
// utilization (busy airtime over elapsed time). A Medium belongs to one
// simulation run: all attached piconets must share the clock passed to
// NewMedium, and the struct is not safe for concurrent use (runs are
// single-threaded by construction).
type Medium struct {
	channels  int
	minWindow time.Duration
	now       func() time.Duration
	piconets  []*Activity
	// foreignClear is the epoch-snapshot clear-channel product
	// ∏ (1 − q_j/C) contributed by piconets attached to *other* shards'
	// media when the run is sharded (see SetForeignClear): collisionProb
	// multiplies the live local product by it. 1 — the NewMedium default
	// — means no foreign interferers, which keeps single-kernel runs on
	// the exact pre-shard arithmetic.
	foreignClear float64
}

// NewMedium creates a shared spectrum with the given hop-set size
// (<= 0 means DefaultFHChannels), utilization window floor (<= 0 means
// DefaultUtilizationWindow) and simulation clock.
func NewMedium(channels int, minWindow time.Duration, now func() time.Duration) *Medium {
	if channels <= 0 {
		channels = DefaultFHChannels
	}
	if minWindow <= 0 {
		minWindow = DefaultUtilizationWindow
	}
	return &Medium{channels: channels, minWindow: minWindow, now: now, foreignClear: 1}
}

// Channels returns the hop-set size.
func (m *Medium) Channels() int { return m.channels }

// Activity is one attached piconet's transmission record: when it is busy
// and how much airtime it has accumulated. The medium reads it to compute
// the collision probability seen by everyone else.
type Activity struct {
	m *Medium
	// attachedAt anchors the utilization estimate's elapsed time.
	attachedAt time.Duration
	// busyUntil is the end of the piconet's latest transmission;
	// busyTotal the accumulated airtime.
	busyUntil time.Duration
	busyTotal time.Duration
	// active is cleared when the piconet leaves the scatternet; an
	// inactive piconet no longer interferes.
	active bool
}

// Attach registers a piconet and returns its interference-wrapped channel
// model: base decides the fate of packets that survive co-channel
// collisions (nil means the ideal channel).
func (m *Medium) Attach(base Model) *HopInterference {
	if base == nil {
		base = Ideal{}
	}
	act := &Activity{m: m, attachedAt: m.now(), active: true}
	m.piconets = append(m.piconets, act)
	return &HopInterference{base: base, act: act}
}

// Detach removes a piconet from the scatternet: it stops interfering with
// the others immediately (its own model keeps working, colliding with the
// remaining active piconets), and its Activity record is dropped from the
// medium so long join/leave churn does not accumulate dead entries.
func (m *Medium) Detach(h *HopInterference) {
	if h == nil {
		return
	}
	h.act.active = false
	for i, a := range m.piconets {
		if a == h.act {
			m.piconets = append(m.piconets[:i], m.piconets[i+1:]...)
			break
		}
	}
}

// Attached returns the number of piconets currently attached to the
// medium (detached piconets are removed, so this is also the slice
// length — the churn regression tests assert on it).
func (m *Medium) Attached() int { return len(m.piconets) }

// ActivePiconets counts the attached piconets that still interfere.
func (m *Medium) ActivePiconets() int {
	n := 0
	for _, a := range m.piconets {
		if a.active {
			n++
		}
	}
	return n
}

// utilization estimates the piconet's busy fraction at the given instant.
// Transmissions are booked in full when they start (observe), so the part
// of the latest booking that has not yet elapsed — busyUntil beyond now —
// is clipped off before dividing: a mid-flight query must not count
// airtime that has not happened yet.
func (a *Activity) utilization(now time.Duration) float64 {
	elapsed := now - a.attachedAt
	if elapsed < a.m.minWindow {
		elapsed = a.m.minWindow
	}
	busy := a.busyTotal
	if a.busyUntil > now {
		busy -= a.busyUntil - now
	}
	u := float64(busy) / float64(elapsed)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// observe books one transmission of the given airtime starting at now.
// Back-to-back legs of one exchange extend the busy interval instead of
// overlapping it.
func (a *Activity) observe(now time.Duration, airtime time.Duration) {
	if a.busyUntil < now {
		a.busyUntil = now
	}
	a.busyUntil += airtime
	a.busyTotal += airtime
}

// Utilization exposes the current busy-fraction estimate (for reports).
func (a *Activity) Utilization(now time.Duration) float64 { return a.utilization(now) }

// collisionProb is the probability that a packet of piconet self collides
// with any concurrently transmitting co-located piconet.
func (m *Medium) collisionProb(self *Activity, now time.Duration) float64 {
	clear := m.foreignClear
	c := float64(m.channels)
	for _, a := range m.piconets {
		if a == self || !a.active {
			continue
		}
		q := a.utilization(now)
		if a.busyUntil > now {
			// The piconet is on air right now: it occupies exactly one
			// (unknown) hop channel for the overlap.
			q = 1
		}
		clear *= 1 - q/c
	}
	return 1 - clear
}

// ClearFactor returns the clear-channel product ∏ (1 − q_j/C) over this
// medium's active piconets at the given instant — the contribution its
// piconets make to the collision probability seen from *outside* the
// medium. A sharded run calls it at every epoch barrier (with all shard
// clocks parked at the boundary) to build each shard's foreign snapshot:
// foreign piconets that are mid-transmission at the boundary count as
// fully occupying one hop channel (q = 1), exactly as a live reader at
// that instant would see them.
func (m *Medium) ClearFactor(now time.Duration) float64 {
	clear := 1.0
	c := float64(m.channels)
	for _, a := range m.piconets {
		if !a.active {
			continue
		}
		q := a.utilization(now)
		if a.busyUntil > now {
			q = 1
		}
		clear *= 1 - q/c
	}
	return clear
}

// SetForeignClear installs the epoch snapshot of the spectrum outside
// this medium: the clear-channel product of every foreign piconet,
// frozen at the epoch boundary. collisionProb folds it into every local
// read until the next barrier replaces it. Callers must only invoke it
// between epochs (the sharded runner's barrier is single-threaded);
// 1 restores the unsharded default of "no foreign interferers".
func (m *Medium) SetForeignClear(clear float64) {
	if !(clear > 0 && clear <= 1) { // also catches NaN
		clear = 1
	}
	m.foreignClear = clear
}

// HopInterference exposes one piconet's packets to the scatternet's
// co-channel collisions before handing survivors to the wrapped channel
// model. Create with Medium.Attach.
type HopInterference struct {
	base Model
	act  *Activity
}

var _ Model = (*HopInterference)(nil)

// Deliver implements Model: the packet is first booked as channel
// occupancy, then survives with probability 1 − P(collision), then faces
// the wrapped model. When no other piconet is active the collision draw
// is skipped entirely, so a one-piconet scatternet consumes exactly the
// RNG stream of the bare base model.
func (h *HopInterference) Deliver(rng *rand.Rand, t baseband.PacketType) bool {
	now := h.act.m.now()
	p := h.act.m.collisionProb(h.act, now)
	h.act.observe(now, t.Duration())
	if p > 0 && rng.Float64() < p {
		return false
	}
	return h.base.Deliver(rng, t)
}

// Name implements Model.
func (h *HopInterference) Name() string {
	return fmt.Sprintf("hop-interference(%s)", h.base.Name())
}

// Base returns the wrapped channel model.
func (h *HopInterference) Base() Model { return h.base }

// Utilization exposes the piconet's busy-fraction estimate at the given
// instant (for reports).
func (h *HopInterference) Utilization(now time.Duration) float64 {
	return h.act.utilization(now)
}

// ExpectedCollisionProb is the admission controller's a-priori collision
// estimate for a piconet sharing the hop set with `others` co-located
// piconets: 1 − (1 − 1/C)^others. It deliberately assumes every other
// piconet is on air whenever we are (q_j = 1) — the admission guarantee
// must hold at full co-channel load, not at the current traffic mix — so
// it upper-bounds the instantaneous collisionProb the medium draws
// against. channels <= 0 means DefaultFHChannels.
func ExpectedCollisionProb(others, channels int) float64 {
	if others <= 0 {
		return 0
	}
	if channels <= 0 {
		channels = DefaultFHChannels
	}
	return 1 - math.Pow(1-1/float64(channels), float64(others))
}

// ExpectedCollisionProb is the medium's estimate for one attached
// piconet: the package-level bound evaluated against the other currently
// active piconets. A nil h (or one not attached to m) is treated as an
// outside observer and sees all active piconets as interferers.
func (m *Medium) ExpectedCollisionProb(h *HopInterference) float64 {
	others := m.ActivePiconets()
	if h != nil && h.act.active {
		others--
	}
	return ExpectedCollisionProb(others, m.channels)
}

// MeasuredCollisionProb exposes the instantaneous collision probability
// one attached piconet faces right now, from the other piconets' actual
// on-air state and measured utilization (for reports; the admission path
// uses the conservative ExpectedCollisionProb instead).
func (m *Medium) MeasuredCollisionProb(h *HopInterference, now time.Duration) float64 {
	if h == nil {
		return 0
	}
	return m.collisionProb(h.act, now)
}
