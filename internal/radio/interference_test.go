package radio

import (
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/baseband"
)

// clock is a settable simulation clock for medium tests.
type clock struct{ t time.Duration }

func (c *clock) now() time.Duration { return c.t }

func TestMediumSinglePiconetNeverCollides(t *testing.T) {
	ck := &clock{}
	m := NewMedium(0, 0, ck.now)
	h := m.Attach(Ideal{})
	rng := rand.New(rand.NewSource(1))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ck.t += time.Millisecond
		if !h.Deliver(rng, baseband.TypeDH3) {
			t.Fatalf("packet %d lost with no co-located piconet", i)
		}
	}
	// No other piconet is active, so the collision draw must be skipped:
	// the RNG stream is untouched (ideal base draws nothing either).
	if got := rng.Int63(); got != before {
		t.Fatalf("RNG consumed without interference: got %d want %d", got, before)
	}
}

func TestMediumCollisionProbGrowsWithPiconetsAndLoad(t *testing.T) {
	ck := &clock{t: time.Second}
	m := NewMedium(79, 0, ck.now)
	self := m.Attach(Ideal{})
	var others []*HopInterference
	prev := 0.0
	for n := 1; n <= 8; n++ {
		h := m.Attach(Ideal{})
		// Give the new piconet ~50% utilization over the elapsed second.
		h.act.busyTotal = 500 * time.Millisecond
		h.act.attachedAt = 0
		others = append(others, h)
		p := m.collisionProb(self.act, ck.t)
		if p <= prev {
			t.Fatalf("collision prob not increasing: %d piconets -> %g (prev %g)", n, p, prev)
		}
		prev = p
	}
	// Doubling every other piconet's load must raise the probability.
	base := m.collisionProb(self.act, ck.t)
	for _, h := range others {
		h.act.busyTotal = 900 * time.Millisecond
	}
	if p := m.collisionProb(self.act, ck.t); p <= base {
		t.Fatalf("collision prob did not grow with load: %g -> %g", base, p)
	}
	// A currently transmitting piconet counts as fully occupying a channel.
	for _, h := range others {
		h.act.busyTotal = 0
		h.act.busyUntil = 0
	}
	idle := m.collisionProb(self.act, ck.t)
	others[0].act.busyUntil = ck.t + baseband.SlotDuration
	if p := m.collisionProb(self.act, ck.t); p <= idle {
		t.Fatalf("on-air piconet did not raise collision prob: %g -> %g", idle, p)
	}
	want := 1.0 / 79
	if p := m.collisionProb(self.act, ck.t); p < want*0.999 || p > want*1.001 {
		t.Fatalf("one on-air piconet: collision prob %g, want ~%g", p, want)
	}
}

func TestMediumDetachStopsInterfering(t *testing.T) {
	ck := &clock{t: time.Second}
	m := NewMedium(79, 0, ck.now)
	self := m.Attach(Ideal{})
	other := m.Attach(Ideal{})
	other.act.busyUntil = ck.t + time.Millisecond
	if p := m.collisionProb(self.act, ck.t); p <= 0 {
		t.Fatal("active piconet should interfere")
	}
	m.Detach(other)
	if p := m.collisionProb(self.act, ck.t); p != 0 {
		t.Fatalf("detached piconet still interferes: p=%g", p)
	}
}

func TestHopInterferenceObservesAirtime(t *testing.T) {
	ck := &clock{}
	m := NewMedium(79, 100*time.Millisecond, ck.now)
	h := m.Attach(Ideal{})
	rng := rand.New(rand.NewSource(1))
	// One DH5 packet at t=0: busy until 5 slots, 5 slots of airtime.
	h.Deliver(rng, baseband.TypeDH5)
	if want := baseband.TypeDH5.Duration(); h.act.busyUntil != want {
		t.Fatalf("busyUntil = %v, want %v", h.act.busyUntil, want)
	}
	// A back-to-back second leg extends the interval instead of
	// overlapping it.
	h.Deliver(rng, baseband.TypeDH1)
	if want := baseband.TypeDH5.Duration() + baseband.TypeDH1.Duration(); h.act.busyUntil != want {
		t.Fatalf("busyUntil = %v, want %v", h.act.busyUntil, want)
	}
	ck.t = 100 * time.Millisecond
	u := h.act.Utilization(ck.t)
	want := float64(baseband.TypeDH5.Duration()+baseband.TypeDH1.Duration()) / float64(100*time.Millisecond)
	if u < want*0.999 || u > want*1.001 {
		t.Fatalf("utilization = %g, want ~%g", u, want)
	}
}

func TestUtilizationClipsMidFlightAirtime(t *testing.T) {
	ck := &clock{}
	m := NewMedium(79, 100*time.Millisecond, ck.now)
	h := m.Attach(Ideal{})
	rng := rand.New(rand.NewSource(1))
	// A DH5 packet (5 slots = 3.125 ms) starts at t=50ms. Querying
	// mid-flight at t=51ms must count only the 1 ms that has elapsed,
	// not the full booking.
	ck.t = 50 * time.Millisecond
	h.Deliver(rng, baseband.TypeDH5)
	ck.t = 51 * time.Millisecond
	u := h.Utilization(ck.t)
	want := float64(time.Millisecond) / float64(100*time.Millisecond)
	if u < want*0.999 || u > want*1.001 {
		t.Fatalf("mid-flight utilization = %g, want ~%g (elapsed airtime only)", u, want)
	}
	// After the transmission completes, the full airtime counts.
	ck.t = 100 * time.Millisecond
	u = h.Utilization(ck.t)
	want = float64(baseband.TypeDH5.Duration()) / float64(100*time.Millisecond)
	if u < want*0.999 || u > want*1.001 {
		t.Fatalf("settled utilization = %g, want ~%g", u, want)
	}
}

func TestMediumDetachRemovesActivity(t *testing.T) {
	ck := &clock{}
	m := NewMedium(79, 0, ck.now)
	self := m.Attach(Ideal{})
	// Join/leave churn must not grow the piconet slice without bound.
	for i := 0; i < 100; i++ {
		h := m.Attach(Ideal{})
		m.Detach(h)
	}
	if got := m.Attached(); got != 1 {
		t.Fatalf("after churn: %d attached activities, want 1", got)
	}
	if got := m.ActivePiconets(); got != 1 {
		t.Fatalf("after churn: %d active piconets, want 1", got)
	}
	// Detaching preserves the iteration order of the survivors.
	a := m.Attach(Ideal{})
	b := m.Attach(Ideal{})
	c := m.Attach(Ideal{})
	m.Detach(b)
	if len(m.piconets) != 3 || m.piconets[0] != self.act || m.piconets[1] != a.act || m.piconets[2] != c.act {
		t.Fatal("detach did not preserve the order of surviving activities")
	}
	// Detaching twice (or a never-attached handle) is harmless.
	m.Detach(b)
	m.Detach(nil)
	if got := m.Attached(); got != 3 {
		t.Fatalf("double detach changed the slice: %d attached, want 3", got)
	}
}

func TestExpectedCollisionProb(t *testing.T) {
	if p := ExpectedCollisionProb(0, 79); p != 0 {
		t.Fatalf("no other piconets: p=%g, want 0", p)
	}
	// One other piconet at q=1: exactly 1/C.
	want := 1.0 / 79
	if p := ExpectedCollisionProb(1, 79); p < want*0.999 || p > want*1.001 {
		t.Fatalf("one other piconet: p=%g, want %g", p, want)
	}
	// Monotone in the piconet count, and an upper bound on the measured
	// probability at any utilization mix.
	ck := &clock{t: time.Second}
	m := NewMedium(79, 0, ck.now)
	self := m.Attach(Ideal{})
	prev := 0.0
	for n := 1; n <= 8; n++ {
		h := m.Attach(Ideal{})
		h.act.attachedAt = 0
		h.act.busyTotal = 700 * time.Millisecond
		exp := m.ExpectedCollisionProb(self)
		if exp <= prev {
			t.Fatalf("%d others: expected prob %g not increasing (prev %g)", n, exp, prev)
		}
		if meas := m.MeasuredCollisionProb(self, ck.t); meas > exp {
			t.Fatalf("%d others: measured %g exceeds expected bound %g", n, meas, exp)
		}
		prev = exp
	}
	// The medium method discounts the caller itself.
	if got, want := m.ExpectedCollisionProb(self), ExpectedCollisionProb(8, 79); got != want {
		t.Fatalf("medium estimate %g, want package bound %g", got, want)
	}
	if got, want := m.ExpectedCollisionProb(nil), ExpectedCollisionProb(9, 79); got != want {
		t.Fatalf("outside-observer estimate %g, want %g", got, want)
	}
}

func TestHopInterferenceComposesWithBase(t *testing.T) {
	ck := &clock{t: time.Second}
	m := NewMedium(79, 0, ck.now)
	// A base model that always loses: survivors of the collision stage
	// must still face it.
	h := m.Attach(BER{BitErrorRate: 1})
	rng := rand.New(rand.NewSource(1))
	if h.Deliver(rng, baseband.TypeDH1) {
		t.Fatal("base model loss ignored")
	}
	if h.Name() != "hop-interference(ber)" {
		t.Fatalf("Name() = %q", h.Name())
	}
}
