// Package radio models the Bluetooth radio channel. The paper's evaluation
// assumes an ideal channel (§3: "we restrict ourselves to an ideal radio
// environment where no transmission errors occur"); the lossy models here
// exercise the paper's future-work direction, in which the bandwidth saved
// by the variable-interval poller absorbs retransmissions.
package radio

import (
	"math"
	"math/rand"

	"bluegs/internal/baseband"
)

// Model decides the fate of individual baseband packets on air. Models may
// be stateful (bursty channels); all randomness is drawn from the supplied
// generator so runs remain reproducible.
type Model interface {
	// Deliver reports whether a packet of the given type is received
	// intact.
	Deliver(rng *rand.Rand, t baseband.PacketType) bool
	// Name identifies the model in reports.
	Name() string
}

// Ideal is the paper's default: every packet is delivered. The zero value
// is ready to use.
type Ideal struct{}

var _ Model = Ideal{}

// Deliver implements Model.
func (Ideal) Deliver(*rand.Rand, baseband.PacketType) bool { return true }

// Name implements Model.
func (Ideal) Name() string { return "ideal" }

// BER is an independent bit-error channel: a packet survives with
// probability (1-ber)^AirBits. FEC-protected packet types are given a
// simple coding-gain approximation: their effective bit error rate is
// reduced by the FEC factor.
type BER struct {
	// BitErrorRate is the per-bit error probability on air.
	BitErrorRate float64
	// FECGain divides the bit error rate for FEC-protected types
	// (defaults to 10 when zero).
	FECGain float64
}

var _ Model = BER{}

// Deliver implements Model.
func (m BER) Deliver(rng *rand.Rand, t baseband.PacketType) bool {
	if m.BitErrorRate <= 0 {
		return true
	}
	ber := m.BitErrorRate
	if t.HasFEC() {
		gain := m.FECGain
		if gain <= 0 {
			gain = 10
		}
		ber /= gain
	}
	if ber >= 1 {
		return false
	}
	pSurvive := math.Pow(1-ber, float64(t.AirBits()))
	return rng.Float64() < pSurvive
}

// Name implements Model.
func (BER) Name() string { return "ber" }

// GilbertElliott is a two-state bursty loss channel. In the Good state
// packets are lost with probability GoodLoss, in the Bad state with
// probability BadLoss; the state flips between packets with the given
// transition probabilities. Create with NewGilbertElliott.
type GilbertElliott struct {
	pGoodToBad float64
	pBadToGood float64
	goodLoss   float64
	badLoss    float64
	bad        bool
}

var _ Model = (*GilbertElliott)(nil)

// NewGilbertElliott returns a Gilbert–Elliott channel starting in the Good
// state. Probabilities are clamped into [0, 1].
func NewGilbertElliott(pGoodToBad, pBadToGood, goodLoss, badLoss float64) *GilbertElliott {
	clamp := func(p float64) float64 {
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	return &GilbertElliott{
		pGoodToBad: clamp(pGoodToBad),
		pBadToGood: clamp(pBadToGood),
		goodLoss:   clamp(goodLoss),
		badLoss:    clamp(badLoss),
	}
}

// Deliver implements Model.
func (m *GilbertElliott) Deliver(rng *rand.Rand, _ baseband.PacketType) bool {
	if m.bad {
		if rng.Float64() < m.pBadToGood {
			m.bad = false
		}
	} else {
		if rng.Float64() < m.pGoodToBad {
			m.bad = true
		}
	}
	loss := m.goodLoss
	if m.bad {
		loss = m.badLoss
	}
	return rng.Float64() >= loss
}

// Name implements Model.
func (*GilbertElliott) Name() string { return "gilbert-elliott" }

// InBadState reports whether the channel is currently in the Bad state
// (exposed for tests).
func (m *GilbertElliott) InBadState() bool { return m.bad }
