package radio

import (
	"math"
	"math/rand"
	"testing"

	"bluegs/internal/baseband"
)

func TestIdealDeliversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Ideal
	for i := 0; i < 100; i++ {
		if !m.Deliver(rng, baseband.TypeDH3) {
			t.Fatal("ideal channel dropped a packet")
		}
	}
	if m.Name() != "ideal" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestBERZeroIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := BER{BitErrorRate: 0}
	for i := 0; i < 100; i++ {
		if !m.Deliver(rng, baseband.TypeDH5) {
			t.Fatal("zero-BER channel dropped a packet")
		}
	}
}

func TestBEROneDropsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := BER{BitErrorRate: 1}
	for i := 0; i < 100; i++ {
		if m.Deliver(rng, baseband.TypeDH1) {
			t.Fatal("BER=1 channel delivered a packet")
		}
	}
}

func TestBERLossRateMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := BER{BitErrorRate: 1e-4}
	const n = 20000
	delivered := 0
	for i := 0; i < n; i++ {
		if m.Deliver(rng, baseband.TypeDH3) {
			delivered++
		}
	}
	want := math.Pow(1-1e-4, float64(baseband.TypeDH3.AirBits()))
	got := float64(delivered) / n
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("delivery rate = %v, theory %v", got, want)
	}
}

func TestBERLongerPacketsLoseMore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := BER{BitErrorRate: 5e-4}
	const n = 20000
	count := func(tp baseband.PacketType) int {
		ok := 0
		for i := 0; i < n; i++ {
			if m.Deliver(rng, tp) {
				ok++
			}
		}
		return ok
	}
	dh1 := count(baseband.TypeDH1)
	dh5 := count(baseband.TypeDH5)
	if dh5 >= dh1 {
		t.Fatalf("DH5 delivered %d >= DH1 %d; longer packets should fail more", dh5, dh1)
	}
}

func TestBERFECGain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := BER{BitErrorRate: 1e-3}
	const n = 20000
	dm3, dh3 := 0, 0
	for i := 0; i < n; i++ {
		if m.Deliver(rng, baseband.TypeDM3) {
			dm3++
		}
		if m.Deliver(rng, baseband.TypeDH3) {
			dh3++
		}
	}
	if dm3 <= dh3 {
		t.Fatalf("FEC-protected DM3 delivered %d <= DH3 %d", dm3, dh3)
	}
}

func TestGilbertElliottStates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Never leaves Good, Good is lossless: everything delivered.
	m := NewGilbertElliott(0, 1, 0, 1)
	for i := 0; i < 100; i++ {
		if !m.Deliver(rng, baseband.TypeDH1) {
			t.Fatal("good-state lossless channel dropped a packet")
		}
	}
	if m.InBadState() {
		t.Fatal("channel should remain in Good state")
	}
	// Flips to Bad immediately; Bad drops everything.
	m = NewGilbertElliott(1, 0, 0, 1)
	first := m.Deliver(rng, baseband.TypeDH1)
	if first {
		t.Fatal("channel should be Bad from the first packet (transition precedes delivery)")
	}
	if !m.InBadState() {
		t.Fatal("channel should be in Bad state")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewGilbertElliott(0.01, 0.1, 0, 0.9)
	const n = 50000
	losses := 0
	runLens := []int{}
	cur := 0
	for i := 0; i < n; i++ {
		if m.Deliver(rng, baseband.TypeDH1) {
			if cur > 0 {
				runLens = append(runLens, cur)
				cur = 0
			}
		} else {
			losses++
			cur++
		}
	}
	if losses == 0 {
		t.Fatal("bursty channel produced no losses")
	}
	// Mean loss-run length must exceed 1 (bursts, not isolated drops).
	total := 0
	for _, l := range runLens {
		total += l
	}
	if len(runLens) == 0 || float64(total)/float64(len(runLens)) <= 1.2 {
		t.Fatalf("losses not bursty: %d runs, %d losses", len(runLens), losses)
	}
}

func TestGilbertElliottClamping(t *testing.T) {
	m := NewGilbertElliott(-1, 2, -0.5, 1.5)
	rng := rand.New(rand.NewSource(19))
	// pGoodToBad clamped to 0: stays Good; goodLoss clamped to 0: lossless.
	for i := 0; i < 50; i++ {
		if !m.Deliver(rng, baseband.TypeDH1) {
			t.Fatal("clamped channel should be lossless in Good state")
		}
	}
}
