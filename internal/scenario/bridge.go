package scenario

import (
	"fmt"
	"strings"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/stats"
	"bluegs/internal/tspec"
)

// ResidencySpec is one recurring presence window of a bridge device in one
// piconet: within every Period of the bridge's schedule, the device is
// reachable as Slave in Piconet during [Start, End) and absent otherwise.
type ResidencySpec struct {
	// Piconet names the hosting piconet ("" is the flat spec's piconet).
	Piconet string
	// Slave is the address the bridge answers to inside this piconet.
	Slave piconet.SlaveID
	// Start and End delimit the presence window within each period
	// (0 <= Start < End <= Period).
	Start time.Duration
	End   time.Duration
}

// duty is the fraction of the period the window covers.
func (rs ResidencySpec) duty(period time.Duration) float64 {
	if period <= 0 {
		return 0
	}
	return float64(rs.End-rs.Start) / float64(period)
}

// BridgeSpec is a named slave device resident in two or more piconets on a
// deterministic time-division schedule. A bridge has one radio: its
// residency windows must not overlap in time. While a bridge is outside a
// piconet's window, polls to its slave address there fail exactly like a
// declared link outage — deterministically, with no RNG draws — and the
// scheduler plans around the windows instead of wasting polls (see
// core.WithResidency).
type BridgeSpec struct {
	// Name addresses the bridge from RouteSpec.Bridges.
	Name string
	// Period is the length of the repeating residency schedule.
	Period time.Duration
	// Residency lists the per-piconet presence windows (at least two
	// piconets; at most one window per piconet).
	Residency []ResidencySpec
}

// residencyIn returns the bridge's window in the named piconet.
func (b BridgeSpec) residencyIn(pn string) (ResidencySpec, bool) {
	for _, rs := range b.Residency {
		if rs.Piconet == pn {
			return rs, true
		}
	}
	return ResidencySpec{}, false
}

// dutyIn is the bridge's residency duty cycle in the named piconet (0 when
// it is not resident there).
func (b BridgeSpec) dutyIn(pn string) float64 {
	rs, ok := b.residencyIn(pn)
	if !ok {
		return 0
	}
	return rs.duty(b.Period)
}

// nextAfter is the piconet a packet relayed through the bridge leaves
// toward when it arrived from `from`: the bridge's first residency in a
// different piconet.
func (b BridgeSpec) nextAfter(from string) (string, bool) {
	for _, rs := range b.Residency {
		if rs.Piconet != from {
			return rs.Piconet, true
		}
	}
	return "", false
}

// RouteSpec is one end-to-end Guaranteed Service flow across the
// scatternet: a CBR source in the Source piconet whose packets traverse the
// listed bridges, one piconet per hop, under a single end-to-end delay
// budget. The runner decomposes the budget into per-hop admission targets
// (admission.SplitBudget), admits every hop atomically — all hops or none —
// and derates each hop's admission by the bridge's residency duty cycle in
// that hop's piconet (composed, via admission.Config.SuccessProb, with the
// FH collision derate when interference-aware admission is on).
//
// The hop model: hop 1 is a down-flow from the Source piconet's master to
// the first bridge's slave address there; hop i (i >= 2) is an up-flow in
// the next piconet from bridge i-1's slave address, delivering to that
// piconet's master. A packet completing hop i is re-enqueued into hop i+1's
// up-flow queue at its delivery instant (the bridge's store-and-forward
// queue); the intra-piconet relay from an intermediate master to the next
// bridge is abstracted into that handoff.
type RouteSpec struct {
	// ID is the flow id of every hop of the route. It must be unique
	// scatternet-wide: no piconet the route traverses may use it for
	// another flow, and no two routes may share it.
	ID piconet.FlowID
	// Name labels the route in reports ("" defaults to "route-<ID>").
	Name string
	// Source names the piconet the traffic originates in ("" means the
	// spec's first piconet).
	Source string
	// Bridges lists, in path order, the bridge devices the route crosses.
	// An empty list makes the route single-hop: a plain GS flow at
	// Slave/Dir in the Source piconet, metric-identical to the equivalent
	// GSFlow.
	Bridges []string
	// Slave and Dir place a single-hop (bridgeless) route; they must stay
	// zero when Bridges is set (the hop endpoints then follow from the
	// bridge residencies).
	Slave piconet.SlaveID
	Dir   piconet.Direction
	// Interval is the source's packet spacing; MinSize/MaxSize its uniform
	// packet size support (the TSpec derives per §4.1, like GSFlow).
	Interval time.Duration
	MinSize  int
	MaxSize  int
	// Phase offsets the source start.
	Phase time.Duration
	// Allowed overrides the spec-wide baseband type set when non-empty.
	Allowed baseband.TypeSet
	// DelayTarget is the end-to-end delay budget (zero defaults to the
	// spec's DelayTarget). A mid-run add_route whose budget cannot be met
	// on every hop is rejected as a whole.
	DelayTarget time.Duration
	// Naive switches the route to the uncoordinated baseline the E12
	// bridge study measures against: every hop is admitted at the full
	// end-to-end budget (no split) and without the residency derate. The
	// per-hop contracts then look satisfiable in isolation while the
	// end-to-end bound is not.
	Naive bool
}

// Spec returns the route's token bucket specification.
func (rt RouteSpec) Spec() tspec.TSpec {
	return tspec.CBR(rt.Interval, rt.MinSize, rt.MaxSize)
}

// routeHop is one derived per-piconet leg of a route.
type routeHop struct {
	// Piconet hosts the hop; Slave/Dir are its flow endpoint there.
	Piconet string
	Slave   piconet.SlaveID
	Dir     piconet.Direction
	// Bridge names the bridge gating the hop ("" for a bridgeless route).
	Bridge string
	// Duty is that bridge's residency duty cycle in this piconet (1 when
	// ungated).
	Duty float64
	// Target is the hop's share of the end-to-end budget.
	Target time.Duration
	// Scale is the admission request's SuccessScale: the residency duty
	// cycle, composed multiplicatively with the controller's interference
	// derate (0 means no extra scaling — ungated or naive hops).
	Scale float64
}

// routeHops derives a route's per-piconet legs from the spec's bridge
// schedules: the traversed path, each hop's flow endpoint, its share of the
// end-to-end budget, and its residency derate. Expects the defaulted view.
func (s Spec) routeHops(rt RouteSpec) ([]routeHop, error) {
	src := rt.Source
	if src == "" {
		src = s.defaultPiconetName()
	}
	target := rt.DelayTarget
	if target <= 0 {
		target = s.DelayTarget
	}
	if len(rt.Bridges) == 0 {
		return []routeHop{{Piconet: src, Slave: rt.Slave, Dir: rt.Dir, Duty: 1, Target: target}}, nil
	}
	n := len(rt.Bridges) + 1
	budgets := admission.SplitBudget(target, n)
	if rt.Naive {
		// The baseline grants each hop the whole budget.
		for i := range budgets {
			budgets[i] = target
		}
	}
	hops := make([]routeHop, 0, n)
	cur := src
	for i, name := range rt.Bridges {
		br, ok := s.bridgeByName(name)
		if !ok {
			return nil, fmt.Errorf("%w: route %d: unknown bridge %q", ErrBadSpec, rt.ID, name)
		}
		res, ok := br.residencyIn(cur)
		if !ok {
			return nil, fmt.Errorf("%w: route %d: bridge %q is not resident in %q", ErrBadSpec, rt.ID, name, cur)
		}
		if i == 0 {
			hops = append(hops, routeHop{
				Piconet: cur, Slave: res.Slave, Dir: piconet.Down,
				Bridge: name, Duty: res.duty(br.Period), Target: budgets[0],
			})
		}
		next, ok := br.nextAfter(cur)
		if !ok {
			return nil, fmt.Errorf("%w: route %d: bridge %q leads nowhere from %q", ErrBadSpec, rt.ID, name, cur)
		}
		nres, _ := br.residencyIn(next)
		hops = append(hops, routeHop{
			Piconet: next, Slave: nres.Slave, Dir: piconet.Up,
			Bridge: name, Duty: nres.duty(br.Period), Target: budgets[i+1],
		})
		cur = next
	}
	if !rt.Naive {
		for i := range hops {
			if d := hops[i].Duty; d > 0 && d < 1 {
				hops[i].Scale = d
			}
		}
	}
	return hops, nil
}

// bridgeByName looks a bridge up in the spec.
func (s Spec) bridgeByName(name string) (BridgeSpec, bool) {
	for _, b := range s.Bridges {
		if b.Name == name {
			return b, true
		}
	}
	return BridgeSpec{}, false
}

// usesRoutes reports whether the spec has any route, static or via the
// timeline (the runner installs the bridge forwarding machinery only then,
// so bridge-free runs keep the exact delivery path — and RNG draw order —
// of earlier builds).
func (s Spec) usesRoutes() bool {
	if len(s.Routes) > 0 {
		return true
	}
	for _, ev := range s.Timeline {
		if ev.AddRoute != nil {
			return true
		}
	}
	return false
}

// validateBridges statically checks the bridge schedules and route specs:
// structurally valid windows on known piconets, one radio per bridge
// (windows disjoint in time), unambiguous paths, and scatternet-unique
// route flow ids. Expects the defaulted view.
func validateBridges(spec Spec) error {
	if len(spec.Bridges) == 0 && len(spec.Routes) == 0 {
		return nil
	}
	if len(spec.Bridges) > 0 && !spec.scatternet() {
		return fmt.Errorf("%w: bridges require the scatternet form (Piconets)", ErrBadSpec)
	}
	if spec.BatchTraffic && spec.usesRoutes() {
		return fmt.Errorf("%w: routes use the per-packet source path; BatchTraffic is incompatible with Routes", ErrBadSpec)
	}
	pns := make(map[string]bool)
	for _, ps := range spec.piconetSpecs() {
		pns[ps.Name] = true
	}
	// Bridges: named, scheduled, and physically one radio each.
	seen := make(map[string]bool, len(spec.Bridges))
	slaves := make(map[string]map[piconet.SlaveID]string) // piconet -> slave -> bridge
	for _, b := range spec.Bridges {
		if b.Name == "" {
			return fmt.Errorf("%w: bridge with no name", ErrBadSpec)
		}
		if seen[b.Name] {
			return fmt.Errorf("%w: duplicate bridge name %q", ErrBadSpec, b.Name)
		}
		seen[b.Name] = true
		if b.Period <= 0 {
			return fmt.Errorf("%w: bridge %q: non-positive period %v", ErrBadSpec, b.Name, b.Period)
		}
		if len(b.Residency) < 2 {
			return fmt.Errorf("%w: bridge %q: a bridge is resident in at least two piconets", ErrBadSpec, b.Name)
		}
		inPn := make(map[string]bool, len(b.Residency))
		for _, rs := range b.Residency {
			if !pns[rs.Piconet] {
				return fmt.Errorf("%w: bridge %q: unknown piconet %q", ErrBadSpec, b.Name, rs.Piconet)
			}
			if inPn[rs.Piconet] {
				return fmt.Errorf("%w: bridge %q: two windows in piconet %q", ErrBadSpec, b.Name, rs.Piconet)
			}
			inPn[rs.Piconet] = true
			if rs.Slave < 1 || rs.Slave > 7 {
				return fmt.Errorf("%w: bridge %q: slave %d outside 1..7", ErrBadSpec, b.Name, rs.Slave)
			}
			if rs.Start < 0 || rs.End <= rs.Start || rs.End > b.Period {
				return fmt.Errorf("%w: bridge %q: window [%v,%v) outside [0,%v]",
					ErrBadSpec, b.Name, rs.Start, rs.End, b.Period)
			}
			bySlave := slaves[rs.Piconet]
			if bySlave == nil {
				bySlave = make(map[piconet.SlaveID]string)
				slaves[rs.Piconet] = bySlave
			}
			if other, dup := bySlave[rs.Slave]; dup {
				return fmt.Errorf("%w: bridges %q and %q share slave %d in piconet %q",
					ErrBadSpec, other, b.Name, rs.Slave, rs.Piconet)
			}
			bySlave[rs.Slave] = b.Name
		}
		// One radio: the device cannot be in two piconets at once.
		for i, a := range b.Residency {
			for _, c := range b.Residency[i+1:] {
				if a.Start < c.End && c.Start < a.End {
					return fmt.Errorf("%w: bridge %q: windows in %q and %q overlap",
						ErrBadSpec, b.Name, a.Piconet, c.Piconet)
				}
			}
		}
	}
	// Routes: structurally valid, derivable paths, unique ids.
	ids := make(map[piconet.FlowID]bool, len(spec.Routes))
	for _, rt := range spec.Routes {
		if err := spec.validateRoute(rt, pns, ids, nil); err != nil {
			return err
		}
	}
	return nil
}

// validateRoute checks one route (static or timeline-added) and claims its
// flow id: in ids across routes, and — when flowSets is non-nil — in every
// traversed piconet's flow-id set (timeline validation threads its known
// map through so route hops and ordinary flows cannot collide).
func (s Spec) validateRoute(rt RouteSpec, pns map[string]bool, ids map[piconet.FlowID]bool,
	flowSets map[string]map[piconet.FlowID]bool) error {
	if rt.ID == piconet.None {
		return fmt.Errorf("%w: route with zero flow id", ErrBadSpec)
	}
	if ids[rt.ID] {
		return fmt.Errorf("%w: duplicate route id %d", ErrBadSpec, rt.ID)
	}
	src := rt.Source
	if src == "" {
		src = s.defaultPiconetName()
	}
	if !pns[src] {
		return fmt.Errorf("%w: route %d: unknown source piconet %q", ErrBadSpec, rt.ID, src)
	}
	if len(rt.Bridges) == 0 {
		if rt.Slave < 1 || rt.Slave > 7 {
			return fmt.Errorf("%w: route %d: slave %d outside 1..7", ErrBadSpec, rt.ID, rt.Slave)
		}
		if rt.Dir != piconet.Up && rt.Dir != piconet.Down {
			return fmt.Errorf("%w: route %d: single-hop route needs a direction", ErrBadSpec, rt.ID)
		}
	} else if rt.Slave != 0 || rt.Dir != 0 {
		return fmt.Errorf("%w: route %d: Slave/Dir must stay zero when Bridges is set", ErrBadSpec, rt.ID)
	}
	if rt.DelayTarget < 0 {
		return fmt.Errorf("%w: route %d: negative delay target", ErrBadSpec, rt.ID)
	}
	hops, err := s.routeHops(rt)
	if err != nil {
		return err
	}
	visited := make(map[string]bool, len(hops))
	for _, h := range hops {
		if visited[h.Piconet] {
			return fmt.Errorf("%w: route %d: path revisits piconet %q", ErrBadSpec, rt.ID, h.Piconet)
		}
		visited[h.Piconet] = true
		if flowSets != nil {
			flows := flowSets[h.Piconet]
			if flows == nil {
				return fmt.Errorf("%w: route %d: unknown piconet %q", ErrBadSpec, rt.ID, h.Piconet)
			}
			if flows[rt.ID] {
				return fmt.Errorf("%w: route %d: flow id %d already used in piconet %q",
					ErrBadSpec, rt.ID, rt.ID, h.Piconet)
			}
			flows[rt.ID] = true
		}
	}
	ids[rt.ID] = true
	return nil
}

// RouteResult summarises one route after a run: end-to-end delay measured
// from packet generation in the source piconet to final-hop delivery,
// against the single end-to-end budget, plus the per-hop contracts.
type RouteResult struct {
	ID   piconet.FlowID
	Name string
	// Path lists the piconets traversed, in order.
	Path []string
	// Target is the end-to-end delay budget the route negotiated against.
	Target time.Duration
	// Offered counts packets generated at the source; Delivered packets
	// that completed the final hop; Lost packets that died on air (lossy
	// radio without ARQ) or were severed mid-path by faults.
	Offered   uint64
	Delivered uint64
	Lost      uint64
	// Kbps is the delivered end-to-end throughput.
	Kbps float64
	// DelayMax/Mean/P99 are end-to-end packet delays.
	DelayMax  time.Duration
	DelayMean time.Duration
	DelayP99  time.Duration
	// HopBounds and HopRates are the per-hop admitted contracts, in path
	// order: the loosest bound each hop flow ever exported and its
	// reserved rate (see FlowResult.Bound).
	HopBounds []time.Duration
	HopRates  []float64
	// PeakQueue is the largest number of route packets simultaneously in
	// flight past the first hop — the bridges' store-and-forward backlog
	// high-water mark.
	PeakQueue int
	// Fate records what the fault machinery did to the route ("" means
	// untouched; see the Fate* constants).
	Fate string
	// Delay exposes the full end-to-end delay statistics.
	Delay *stats.DurationStats
}

// Violated reports whether the measured end-to-end maximum exceeded the
// budget.
func (rr RouteResult) Violated() bool { return rr.DelayMax > rr.Target }

// RouteByID returns the result row of a route.
func (r *Result) RouteByID(id piconet.FlowID) (RouteResult, bool) {
	for _, rr := range r.Routes {
		if rr.ID == id {
			return rr, true
		}
	}
	return RouteResult{}, false
}

// RouteViolations returns the routes whose measured end-to-end maximum
// delay exceeded their budget.
func (r *Result) RouteViolations() []RouteResult {
	var out []RouteResult
	for _, rr := range r.Routes {
		if rr.Violated() {
			out = append(out, rr)
		}
	}
	return out
}

// RouteReport renders the end-to-end route outcomes as a table (nil when
// the run had no routes).
func (r *Result) RouteReport() *stats.Table {
	if len(r.Routes) == 0 {
		return nil
	}
	tbl := stats.NewTable(
		fmt.Sprintf("%s: end-to-end routes (%d)", r.Spec.Name, len(r.Routes)),
		"route", "path", "hops", "kbps", "delay_mean", "delay_p99", "delay_max", "target", "ok", "peak_queue", "fate")
	for _, rr := range r.Routes {
		ok := "yes"
		if rr.Violated() {
			ok = "VIOLATED"
		}
		tbl.AddRow(rr.Name, strings.Join(rr.Path, ">"), len(rr.Path),
			stats.FormatKbps(rr.Kbps),
			rr.DelayMean.Round(time.Microsecond), rr.DelayP99.Round(time.Microsecond),
			rr.DelayMax.Round(time.Microsecond), rr.Target, ok, rr.PeakQueue, rr.Fate)
	}
	return tbl
}

// BridgedConfig parameterises the bridge preset generator. The zero value
// gives the registered "bridge-pair" preset: two piconets joined by one
// bridge, a two-hop route under a 110ms end-to-end budget at a 50% duty
// cycle, one background voice flow per piconet.
type BridgedConfig struct {
	// Hops is the number of piconets the route traverses (1..3, default
	// 2). One hop degenerates to a flat GS flow; three hops chain two
	// bridges.
	Hops int
	// Duty is the forwarding duty cycle d in (0,1), default 0.5: each
	// bridge spends d of its period in the piconet it forwards from
	// (up-flow hops) and 1-d in the piconet it receives in.
	Duty float64
	// Period is the residency schedule period (default 100ms: long
	// enough that packets queue at a closed bridge, which is what
	// separates residency-aware admission from the naive baseline).
	Period time.Duration
	// GSPerPiconet is the background voice load (flows per piconet at
	// slaves 1.., default 1, max 4).
	GSPerPiconet int
	// RouteTarget is the end-to-end budget (default 55ms per hop, so
	// 110ms for the two-hop pair); Interval the route source's packet
	// spacing (default 30ms).
	RouteTarget time.Duration
	Interval    time.Duration
	// DelayTarget is the background flows' bound (default 40ms); Duration
	// the horizon (default 30s).
	DelayTarget time.Duration
	Duration    time.Duration
	// Naive switches the route to the uncoordinated baseline (full budget
	// per hop, no residency derate).
	Naive bool
}

func (c BridgedConfig) withDefaults() BridgedConfig {
	if c.Hops < 1 {
		c.Hops = 2
	}
	if c.Hops > 3 {
		c.Hops = 3
	}
	if c.Duty <= 0 || c.Duty >= 1 {
		c.Duty = 0.5
	}
	if c.Period <= 0 {
		c.Period = 100 * time.Millisecond
	}
	if c.GSPerPiconet < 1 {
		c.GSPerPiconet = 1
	}
	if c.GSPerPiconet > 4 {
		c.GSPerPiconet = 4
	}
	if c.RouteTarget <= 0 {
		c.RouteTarget = time.Duration(c.Hops) * 55 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Millisecond
	}
	if c.DelayTarget <= 0 {
		c.DelayTarget = 40 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	return c
}

// Bridged builds the E12 bridge workload: Hops piconets chained by
// time-division bridges at slave 6, one end-to-end route, and a background
// voice floor per piconet. Bridge i receives in piconet i during
// [0, (1-d)·P) and forwards from piconet i+1 during [(1-d)·P, P) — the
// asymmetry is physical: a device present a fraction d of the time in one
// piconet has at most 1-d left for the other.
func Bridged(cfg BridgedConfig) Spec {
	cfg = cfg.withDefaults()
	var pns []PiconetSpec
	for i := 0; i < cfg.Hops; i++ {
		ps := PiconetSpec{Name: fmt.Sprintf("pn%d", i+1)}
		for k := 0; k < cfg.GSPerPiconet; k++ {
			dir := piconet.Up
			if k%2 == 1 {
				dir = piconet.Down
			}
			ps.GS = append(ps.GS, GSFlow{
				ID:       piconet.FlowID(k + 1),
				Slave:    piconet.SlaveID(k + 1),
				Dir:      dir,
				Interval: 20 * time.Millisecond,
				MinSize:  144,
				MaxSize:  176,
				Phase:    time.Duration(k)*5*time.Millisecond + time.Duration(i)*time.Millisecond,
			})
		}
		pns = append(pns, ps)
	}
	route := RouteSpec{
		ID:          30,
		Source:      "pn1",
		Interval:    cfg.Interval,
		MinSize:     144,
		MaxSize:     176,
		DelayTarget: cfg.RouteTarget,
		Naive:       cfg.Naive,
	}
	var bridges []BridgeSpec
	if cfg.Hops == 1 {
		// Degenerate single-hop route: a plain GS flow in pn1.
		route.Slave = 6
		route.Dir = piconet.Up
	} else {
		split := time.Duration(float64(cfg.Period) * (1 - cfg.Duty))
		for i := 0; i < cfg.Hops-1; i++ {
			name := fmt.Sprintf("b%d", i+1)
			recvSlave := piconet.SlaveID(6)
			if i > 0 {
				// A middle piconet hosts two bridges: the incoming one
				// at slave 6, the outgoing one at slave 5.
				recvSlave = 5
			}
			bridges = append(bridges, BridgeSpec{
				Name:   name,
				Period: cfg.Period,
				Residency: []ResidencySpec{
					{Piconet: fmt.Sprintf("pn%d", i+1), Slave: recvSlave, Start: 0, End: split},
					{Piconet: fmt.Sprintf("pn%d", i+2), Slave: 6, Start: split, End: cfg.Period},
				},
			})
			route.Bridges = append(route.Bridges, name)
		}
	}
	name := fmt.Sprintf("bridge-%dhop", cfg.Hops)
	if cfg.Naive {
		name += "-naive"
	}
	return Spec{
		Name:        name,
		Piconets:    pns,
		Bridges:     bridges,
		Routes:      []RouteSpec{route},
		DelayTarget: cfg.DelayTarget,
		Allowed:     baseband.PaperTypes,
		Duration:    cfg.Duration,
		Seed:        1,
		ARQ:         true,
	}
}
