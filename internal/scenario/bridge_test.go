package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"bluegs/internal/faults"
	"bluegs/internal/piconet"
)

// bridgedPair is a short-horizon bridge-pair spec for the cheap tests.
func bridgedPair(d time.Duration) Spec {
	spec := Bridged(BridgedConfig{Hops: 2})
	spec.Duration = d
	return spec
}

func TestBridgeValidation(t *testing.T) {
	cases := map[string]func() Spec{
		"bridges need scatternet": func() Spec {
			s := Paper(40 * time.Millisecond)
			s.Bridges = []BridgeSpec{{Name: "b1", Period: 100 * time.Millisecond, Residency: []ResidencySpec{
				{Piconet: "pn1", Slave: 6, End: 50 * time.Millisecond},
				{Piconet: "pn2", Slave: 6, Start: 50 * time.Millisecond, End: 100 * time.Millisecond},
			}}}
			return s
		},
		"non-positive period": func() Spec {
			s := bridgedPair(time.Second)
			s.Bridges[0].Period = 0
			return s
		},
		"single residency": func() Spec {
			s := bridgedPair(time.Second)
			s.Bridges[0].Residency = s.Bridges[0].Residency[:1]
			return s
		},
		"unknown piconet": func() Spec {
			s := bridgedPair(time.Second)
			s.Bridges[0].Residency[1].Piconet = "nowhere"
			return s
		},
		"slave out of range": func() Spec {
			s := bridgedPair(time.Second)
			s.Bridges[0].Residency[0].Slave = 9
			return s
		},
		"window past period": func() Spec {
			s := bridgedPair(time.Second)
			s.Bridges[0].Residency[1].End = s.Bridges[0].Period + time.Millisecond
			return s
		},
		"same-bridge windows overlap": func() Spec {
			s := bridgedPair(time.Second)
			s.Bridges[0].Residency[1].Start = s.Bridges[0].Residency[0].End - time.Millisecond
			return s
		},
		"route names unknown bridge": func() Spec {
			s := bridgedPair(time.Second)
			s.Routes[0].Bridges = []string{"ghost"}
			return s
		},
		"route id collides with flow": func() Spec {
			s := bridgedPair(time.Second)
			s.Routes[0].ID = 1 // the background flow in every piconet
			return s
		},
		"batch traffic incompatible": func() Spec {
			s := bridgedPair(time.Second)
			s.BatchTraffic = true
			return s
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Run(build()); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

// TestBridgedPresetDelivers: the registered two-hop preset runs, the route
// delivers end to end without losses, and the per-hop flows land in the
// flow report tagged with the route — the route column appearing only
// because a routed flow exists.
func TestBridgedPresetDelivers(t *testing.T) {
	res, err := Run(bridgedPair(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := res.RouteByID(30)
	if !ok {
		t.Fatal("route 30 missing from results")
	}
	if rr.Delivered == 0 || rr.Lost != 0 {
		t.Fatalf("route delivered %d / lost %d packets", rr.Delivered, rr.Lost)
	}
	if rr.Fate != "" {
		t.Fatalf("fault-free route got fate %q", rr.Fate)
	}
	if want := []string{"pn1", "pn2"}; !reflect.DeepEqual(rr.Path, want) {
		t.Fatalf("path %v, want %v", rr.Path, want)
	}
	if len(rr.HopBounds) != 2 {
		t.Fatalf("hop bounds %v, want two hops", rr.HopBounds)
	}
	hops := 0
	for _, f := range res.Flows {
		if f.ID == 30 {
			hops++
			if f.Route == "" {
				t.Fatalf("hop flow in %q has no route label", f.Piconet)
			}
		}
	}
	if hops != 2 {
		t.Fatalf("%d hop flow rows, want 2", hops)
	}
	if tbl := res.Report().String(); !strings.Contains(tbl, "route") {
		t.Fatalf("flow report misses the route column:\n%s", tbl)
	}
	if tbl := res.RouteReport().String(); !strings.Contains(tbl, "pn1>pn2") {
		t.Fatalf("route report misses the path:\n%s", tbl)
	}

	// Bridge-free runs keep the historical report shape: no route column.
	flat, err := Run(Paper(40 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if tbl := flat.Report().String(); strings.Contains(tbl, "route") {
		t.Fatalf("bridge-free flow report grew a route column:\n%s", tbl)
	}
}

// TestOneHopRouteMatchesFlatFlow is the degenerate-route acceptance
// criterion: a single-hop route is metric-identical to the same workload
// expressed as a plain GS flow — the route plumbing (delivery hook,
// origin stamps, per-hop admission) must be observationally free.
func TestOneHopRouteMatchesFlatFlow(t *testing.T) {
	routed := Bridged(BridgedConfig{Hops: 1, RouteTarget: 40 * time.Millisecond})
	routed.Duration = 10 * time.Second

	flat := Spec{
		Name: "flat-twin",
		Piconets: []PiconetSpec{{
			Name: "pn1",
			GS: []GSFlow{
				{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176},
				{ID: 30, Slave: 6, Dir: piconet.Up, Interval: 30 * time.Millisecond, MinSize: 144, MaxSize: 176},
			},
		}},
		DelayTarget: 40 * time.Millisecond,
		Allowed:     routed.Allowed,
		Duration:    10 * time.Second,
		Seed:        1,
		ARQ:         true,
	}

	rres, err := Run(routed)
	if err != nil {
		t.Fatalf("routed: %v", err)
	}
	fres, err := Run(flat)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	rf, ok := rres.FlowByID(30)
	if !ok {
		t.Fatal("routed flow 30 missing")
	}
	ff, ok := fres.FlowByID(30)
	if !ok {
		t.Fatal("flat flow 30 missing")
	}
	// The routed row carries the route label; everything measurable must
	// be identical.
	rf.Route = ""
	rf.Delay, ff.Delay = nil, nil
	if !reflect.DeepEqual(rf, ff) {
		t.Fatalf("one-hop route diverged from the flat flow:\nrouted: %+v\nflat:   %+v", rf, ff)
	}
	rr, _ := rres.RouteByID(30)
	if rr.Delivered != ff.Delivered || rr.DelayMax != ff.DelayMax {
		t.Fatalf("route view (%d pkts, max %v) diverged from the flow view (%d pkts, max %v)",
			rr.Delivered, rr.DelayMax, ff.Delivered, ff.DelayMax)
	}
	if rr.PeakQueue != 0 {
		t.Fatalf("one-hop route reports a bridge backlog of %d", rr.PeakQueue)
	}
}

// TestRouteTimelineAddRemove drives the online route protocol: a route
// arrives mid-run through hop-by-hop admission (per-hop records tied to
// the route), an infeasible route rolls back atomically, flat flow
// operations against route members are refused, and remove_route retires
// the route cleanly.
func TestRouteTimelineAddRemove(t *testing.T) {
	spec := bridgedPair(8 * time.Second)
	rt := spec.Routes[0]
	// Static routes clamp to the tightest achievable bound; online
	// admission is strict, so the mid-run route needs a budget whose
	// derated per-hop share is actually reachable.
	rt.DelayTarget = 400 * time.Millisecond
	spec.Routes = nil // arrive via the timeline instead
	spec.Timeline = []TimelineEvent{
		AddRouteAt(1*time.Second, rt),
		AddPiconetAt(1*time.Second, PiconetSpec{Name: "pnx",
			BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 10, PacketSize: 100}}}),
		RemoveAt(2*time.Second, rt.ID),                           // flat remove of a route member
		MoveFlowAt(3*time.Second, rt.ID, "pnx"),                  // handoff of a route member
		RenegotiateAt(3*time.Second, rt.ID, 50*time.Millisecond), // renegotiate a route member
		RemoveRouteAt(5*time.Second, rt.ID),
		// Infeasible end-to-end budget: every hop admission fails, and the
		// rollback must leave no flow behind.
		AddRouteAt(6*time.Second, RouteSpec{
			ID: 31, Source: "pn1", Bridges: []string{"b1"},
			Interval: 30 * time.Millisecond, MinSize: 144, MaxSize: 176,
			DelayTarget: time.Millisecond,
		}),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string][]AdmissionRecord{}
	for _, a := range res.Admissions {
		byOp[a.Op] = append(byOp[a.Op], a)
	}
	adds := byOp[OpAddRoute]
	var accepted, rejected int
	for _, a := range adds {
		if a.Accepted {
			accepted++
			if a.Route == "" || a.Hop == 0 {
				t.Fatalf("accepted add-route record lost its hop attribution: %+v", a)
			}
		} else {
			rejected++
			if a.Flow != 31 {
				t.Fatalf("unexpected add-route rejection: %+v", a)
			}
		}
	}
	if accepted != 2 || rejected != 1 {
		t.Fatalf("add-route records: %d accepted, %d rejected (want 2/1): %+v", accepted, rejected, adds)
	}
	if removes := byOp[OpRemoveRoute]; len(removes) != 2 {
		t.Fatalf("remove-route records: %+v, want one per hop", removes)
	}
	for _, op := range []string{OpRemoveFlow, OpHandoff, OpRenegotiate} {
		recs := byOp[op]
		if len(recs) != 1 || recs[0].Accepted {
			t.Fatalf("%s against a route member: %+v, want one rejection", op, recs)
		}
		if !strings.Contains(recs[0].Reason, "route") {
			t.Fatalf("%s rejection does not explain the route: %q", op, recs[0].Reason)
		}
	}
	rr, ok := res.RouteByID(rt.ID)
	if !ok {
		t.Fatal("timeline-added route missing from results")
	}
	if rr.Delivered == 0 {
		t.Fatal("route never delivered between add and remove")
	}
	if _, ok := res.RouteByID(31); ok {
		t.Fatal("rejected route left a result row")
	}
	for _, f := range res.Flows {
		if f.ID == 31 {
			t.Fatalf("rejected route left hop flow behind in %q", f.Piconet)
		}
	}
}

// TestRenegotiateFlow: the renegotiate_flow event tightens or loosens a
// healthy flow's contract through the admission test; a rejected
// renegotiation leaves the old contract in force.
func TestRenegotiateFlow(t *testing.T) {
	spec := Spec{
		Name: "renegotiate",
		GS: []GSFlow{
			{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176},
		},
		BE:          []BEFlow{{ID: 2, Slave: 7, Dir: piconet.Down, RateKbps: 30, PacketSize: 176}},
		DelayTarget: 40 * time.Millisecond,
		Duration:    8 * time.Second,
		Timeline: []TimelineEvent{
			RenegotiateAt(2*time.Second, 1, 60*time.Millisecond),  // loosen
			RenegotiateAt(4*time.Second, 1, 500*time.Microsecond), // infeasible
			RenegotiateAt(6*time.Second, 2, 40*time.Millisecond),  // BE flow
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var recs []AdmissionRecord
	for _, a := range res.Admissions {
		if a.Op == OpRenegotiate {
			recs = append(recs, a)
		}
	}
	if len(recs) != 3 {
		t.Fatalf("renegotiate records: %+v, want 3", recs)
	}
	if !recs[0].Accepted || recs[0].Bound <= 0 {
		t.Fatalf("loosening renegotiation refused: %+v", recs[0])
	}
	if recs[1].Accepted {
		t.Fatalf("infeasible renegotiation accepted: %+v", recs[1])
	}
	if recs[2].Accepted {
		t.Fatalf("renegotiating a BE flow accepted: %+v", recs[2])
	}
	f, _ := res.FlowByID(1)
	// The loosened contract stands; the rejected one left it alone. The
	// exported Bound is the loosest ever in force, so it reflects the
	// accepted 60ms renegotiation, not the rejected 500µs one.
	if f.Bound != recs[0].Bound {
		t.Fatalf("flow bound %v, want the renegotiated %v", f.Bound, recs[0].Bound)
	}
	if f.DelayMax > f.Bound {
		t.Fatalf("flow violated its renegotiated bound: %v > %v", f.DelayMax, f.Bound)
	}

	// Statically invalid renegotiations are spec errors, not runtime
	// rejections.
	bad := spec
	bad.Timeline = []TimelineEvent{RenegotiateAt(time.Second, 99, 40*time.Millisecond)}
	if _, err := Run(bad); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("renegotiating an unknown flow: err = %v, want ErrBadSpec", err)
	}
	bad.Timeline = []TimelineEvent{RenegotiateAt(time.Second, 1, 0)}
	if _, err := Run(bad); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("renegotiating to a zero target: err = %v, want ErrBadSpec", err)
	}
}

// TestRouteCrashSuspendsEndToEnd: a master crash on one hop severs the
// whole route — every hop suspends, attributed to the route in the
// admission log — because a route with a dead middle delivers nothing.
func TestRouteCrashSuspendsEndToEnd(t *testing.T) {
	spec := bridgedPair(6 * time.Second)
	spec.Faults = faults.Plan{Crashes: []faults.MasterCrash{{Piconet: "pn2", At: 3 * time.Second}}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := res.RouteByID(30)
	if !ok {
		t.Fatal("route missing from results")
	}
	if rr.Fate != FateCrashed {
		t.Fatalf("route fate %q, want %q", rr.Fate, FateCrashed)
	}
	if rr.Delivered == 0 {
		t.Fatal("route never delivered before the crash")
	}
	suspended := 0
	for _, a := range res.Admissions {
		if a.Op == OpSuspend && a.Route != "" {
			suspended++
		}
	}
	if suspended == 0 {
		t.Fatalf("no route-attributed suspension records: %+v", res.Admissions)
	}
}

// TestRouteDegradeRecovery: an outage at the bridge's forwarding slave
// suspends the route via supervision; the degrade policy renegotiates
// every hop at the loosened end-to-end budget once the link returns. The
// renegotiation is a real admission test: a factor whose per-hop share
// stays unreachable is refused and the route remains suspended.
func TestRouteDegradeRecovery(t *testing.T) {
	build := func(factor float64) Spec {
		spec := bridgedPair(8 * time.Second)
		spec.Faults = faults.Plan{Outages: []faults.LinkOutage{
			{Piconet: "pn2", Slave: 6, Start: 2 * time.Second, End: 2400 * time.Millisecond},
		}}
		spec.Recovery = RecoverySpec{Supervision: 3, Policy: faults.PolicyDegrade, DegradeFactor: factor}
		return spec
	}
	res, err := Run(build(4))
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := res.RouteByID(30)
	if !ok {
		t.Fatal("route missing from results")
	}
	if rr.Fate != FateDegraded {
		t.Fatalf("route fate %q, want %q", rr.Fate, FateDegraded)
	}
	var suspends, degrades int
	for _, a := range res.Admissions {
		if a.Route == "" {
			continue
		}
		switch a.Op {
		case OpSuspend:
			suspends++
		case OpDegrade:
			degrades++
		}
	}
	if suspends == 0 || degrades == 0 {
		t.Fatalf("route fault trace incomplete: %d suspends, %d degrades", suspends, degrades)
	}
	if want := 4 * Bridged(BridgedConfig{Hops: 2}).Routes[0].DelayTarget; rr.Target != want {
		t.Fatalf("degraded route target %v, want %v", rr.Target, want)
	}
	if rr.Delivered == 0 {
		t.Fatal("route never delivered")
	}

	// A 2x factor gives each hop a 110ms share — just under the 110.98ms
	// the derated hop can actually reach — so the degrade admission must
	// refuse and leave the route suspended.
	res2, err := Run(build(2))
	if err != nil {
		t.Fatal(err)
	}
	rr2, _ := res2.RouteByID(30)
	if rr2.Fate != FateSuspended {
		t.Fatalf("unreachable degrade left fate %q, want %q", rr2.Fate, FateSuspended)
	}
}

// TestCanonicalBridgeFreeStability mirrors the fault-free stability test
// for the bridge layer: bridge and route blocks render only when present,
// so every bridge-free spec keeps its exact canonical form — its cache
// entries move only via the sim-v8 salt — while every bridge knob is
// semantically live.
func TestCanonicalBridgeFreeStability(t *testing.T) {
	for _, spec := range []Spec{
		Paper(40 * time.Millisecond),
		Baseline(BEPFP),
		Scatternet(ScatternetConfig{}),
	} {
		base := spec.Fingerprint()
		canon := spec.Canonical()
		for _, banned := range []string{"bridge", "route", "tl-renegotiate"} {
			if strings.Contains(canon, banned) {
				t.Fatalf("%s: bridge-free canonical form contains %q:\n%s", spec.Name, banned, canon)
			}
		}
		reneg := spec
		reneg.Timeline = append([]TimelineEvent(nil), spec.Timeline...)
		reneg.Timeline = append(reneg.Timeline, RenegotiateAt(time.Second, 1, 50*time.Millisecond))
		if reneg.Fingerprint() == base {
			t.Fatalf("%s: a renegotiate_flow event did not change the fingerprint", spec.Name)
		}
		if spec.Fingerprint() != base {
			t.Fatalf("%s: fingerprint unstable across repeated renderings", spec.Name)
		}
	}
}

// TestBridgeFingerprintKnobs: every bridge and route parameter that
// changes the simulation moves the fingerprint; the route's display name
// does not.
func TestBridgeFingerprintKnobs(t *testing.T) {
	base := Bridged(BridgedConfig{Hops: 2})
	fp := base.Fingerprint()
	clone := func() Spec {
		s := base
		s.Bridges = append([]BridgeSpec(nil), base.Bridges...)
		s.Bridges[0].Residency = append([]ResidencySpec(nil), base.Bridges[0].Residency...)
		s.Routes = append([]RouteSpec(nil), base.Routes...)
		return s
	}
	mutate := map[string]func(*Spec){
		"period":       func(s *Spec) { s.Bridges[0].Period += time.Millisecond },
		"window":       func(s *Spec) { s.Bridges[0].Residency[0].End -= time.Millisecond },
		"slave":        func(s *Spec) { s.Bridges[0].Residency[0].Slave = 7; s.Routes[0].ID = 30 },
		"route-target": func(s *Spec) { s.Routes[0].DelayTarget += time.Millisecond },
		"route-naive":  func(s *Spec) { s.Routes[0].Naive = true },
		"route-ival":   func(s *Spec) { s.Routes[0].Interval += time.Millisecond },
		"route-id":     func(s *Spec) { s.Routes[0].ID = 42 },
	}
	seen := map[string]string{fp: "base"}
	for name, f := range mutate {
		s := clone()
		f(&s)
		got := s.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Fatalf("mutation %q collided with %q", name, prev)
		}
		seen[got] = name
	}
	named := clone()
	named.Routes[0].Name = "renamed"
	if named.Fingerprint() != fp {
		t.Fatal("route Name must not enter the fingerprint")
	}
}

// TestBridgedDeterministicAcrossRuns: bridged runs are reproducible bit
// for bit — reports, route results and the admission log included.
func TestBridgedDeterministicAcrossRuns(t *testing.T) {
	run := func() *Result {
		res, err := Run(bridgedPair(2 * time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if got, want := a.Report().String(), b.Report().String(); got != want {
		t.Fatalf("flow reports diverged:\n%s\nvs\n%s", got, want)
	}
	if got, want := a.RouteReport().String(), b.RouteReport().String(); got != want {
		t.Fatalf("route reports diverged:\n%s\nvs\n%s", got, want)
	}
	if !reflect.DeepEqual(a.Admissions, b.Admissions) {
		t.Fatal("admission logs diverged")
	}
	if !reflect.DeepEqual(a.Routes, b.Routes) {
		t.Fatal("route results diverged")
	}
}
