package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bluegs/internal/piconet"
)

// ChurnConfig parameterises the churn workload generator. The zero value
// gives the registered "churn" preset: Poisson GS arrivals every ~4 s
// holding for ~10 s, over a 60 kbps-per-direction best-effort floor, for
// 60 simulated seconds.
type ChurnConfig struct {
	// Seed drives the arrival process placement (default 1). It is
	// independent of Spec.Seed: the generated timeline is fixed data,
	// while Spec.Seed varies the packet-level randomness per replication.
	Seed int64
	// Duration is the simulated horizon (default 60 s).
	Duration time.Duration
	// MeanArrival is the mean GS inter-arrival time (default 4 s).
	MeanArrival time.Duration
	// MeanHold is the mean GS session length (default 10 s).
	MeanHold time.Duration
	// DelayTarget is the bound every arriving flow requests (default
	// 40 ms).
	DelayTarget time.Duration
	// BEFloorKbps is the per-direction best-effort load at slaves 6 and
	// 7 (default 60).
	BEFloorKbps float64
	// Slaves is how many slaves (1..Slaves) the GS arrivals cycle over
	// (default 5, keeping 6 and 7 for the BE floor).
	Slaves int
	// Poller selects the best-effort discipline competing with the
	// churning GS set (default PFP). The churn-<poller> presets exercise
	// every kind: whether a poller's state survives flow churn is part
	// of the E8 study.
	Poller BEPollerKind
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.MeanArrival <= 0 {
		c.MeanArrival = 4 * time.Second
	}
	if c.MeanHold <= 0 {
		c.MeanHold = 10 * time.Second
	}
	if c.DelayTarget <= 0 {
		c.DelayTarget = 40 * time.Millisecond
	}
	if c.BEFloorKbps <= 0 {
		c.BEFloorKbps = 60
	}
	if c.Slaves < 1 || c.Slaves > 5 {
		c.Slaves = 5
	}
	return c
}

// Churn generates the paper's evaluation under flow churn: Guaranteed
// Service requests arrive over time (Poisson), hold for an exponential
// session, and leave — each one passing the online admission test against
// whatever is installed at that moment — over a static best-effort floor
// that soaks up the leftover capacity. The generator draws the arrival
// pattern once, from its own seed, so the returned Spec is pure data:
// every replication of a sweep replays the identical request sequence
// while Spec.Seed varies the packet-level randomness.
func Churn(cfg ChurnConfig) Spec {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	expDur := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		if d <= 0 {
			d = time.Nanosecond
		}
		return d
	}

	// The best-effort floor: both directions at the last two slaves.
	var be []BEFlow
	for i, slave := range []piconet.SlaveID{6, 7} {
		id := piconet.FlowID(1 + 2*i)
		be = append(be,
			BEFlow{ID: id, Slave: slave, Dir: piconet.Down, RateKbps: cfg.BEFloorKbps, PacketSize: 176},
			BEFlow{ID: id + 1, Slave: slave, Dir: piconet.Up, RateKbps: cfg.BEFloorKbps, PacketSize: 176},
		)
	}

	// GS arrivals: walk the Poisson process chronologically, releasing
	// (slave, direction) endpoints as their sessions end, and voice each
	// new request at the first free endpoint. Requests that find every
	// endpoint busy are dropped by the generator (the piconet could
	// never host them: one GS flow per slave and direction).
	type endpoint struct {
		slave piconet.SlaveID
		dir   piconet.Direction
	}
	type departure struct {
		at time.Duration
		ep endpoint
	}
	busy := make(map[endpoint]bool)
	var pending []departure
	var events []TimelineEvent
	id := piconet.FlowID(100)
	for at := expDur(cfg.MeanArrival); at < cfg.Duration; at += expDur(cfg.MeanArrival) {
		// Free the endpoints of sessions that ended before this arrival.
		kept := pending[:0]
		for _, d := range pending {
			if d.at <= at {
				delete(busy, d.ep)
			} else {
				kept = append(kept, d)
			}
		}
		pending = kept
		var ep endpoint
		found := false
		for s := piconet.SlaveID(1); !found && int(s) <= cfg.Slaves; s++ {
			for _, dir := range []piconet.Direction{piconet.Up, piconet.Down} {
				if !busy[endpoint{s, dir}] {
					ep = endpoint{s, dir}
					found = true
					break
				}
			}
		}
		if !found {
			continue
		}
		busy[ep] = true
		events = append(events, AddGSAt(at, GSFlow{
			ID:       id,
			Slave:    ep.slave,
			Dir:      ep.dir,
			Interval: 20 * time.Millisecond,
			MinSize:  144,
			MaxSize:  176,
		}))
		if depart := at + expDur(cfg.MeanHold); depart < cfg.Duration {
			events = append(events, RemoveAt(depart, id))
			pending = append(pending, departure{at: depart, ep: ep})
		}
		id++
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	name := "churn"
	if cfg.Poller != "" {
		name = fmt.Sprintf("churn-%s", cfg.Poller)
	}
	return Spec{
		Name:        name,
		BE:          be,
		BEPoller:    cfg.Poller,
		DelayTarget: cfg.DelayTarget,
		Duration:    cfg.Duration,
		Timeline:    events,
		Seed:        1,
	}
}
