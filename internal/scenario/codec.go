package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
)

// FormatV2 is the format tag of the v2 scenario file format: the complete
// serializable Spec — flows, poller/radio/size distributions by name plus
// parameters, SCO links and the timeline — with durations as Go duration
// strings ("20ms"), so values round-trip exactly. Scatternet specs add a
// "piconets" array (named piconets, each with its own flow and SCO sets)
// plus an "interference" block, and timeline events gain a "piconet"
// address and the add_piconet/remove_piconet operations; single-piconet
// files are unchanged byte for byte.
const FormatV2 = "bluegs/scenario/v2"

// specV2 is the v2 on-disk form of a Spec.
type specV2 struct {
	Format              string          `json:"format"`
	Name                string          `json:"name,omitempty"`
	DelayTarget         string          `json:"delay_target,omitempty"`
	Duration            string          `json:"duration,omitempty"`
	Seed                int64           `json:"seed,omitempty"`
	Mode                string          `json:"mode,omitempty"`
	Rules               *string         `json:"rules,omitempty"`
	Poller              *pollerV2       `json:"poller,omitempty"`
	Allowed             []string        `json:"allowed_types,omitempty"`
	DirectionAware      bool            `json:"direction_aware,omitempty"`
	WithoutPiggybacking bool            `json:"without_piggybacking,omitempty"`
	ARQ                 bool            `json:"arq,omitempty"`
	LossRecovery        bool            `json:"loss_recovery,omitempty"`
	BatchTraffic        bool            `json:"batch_traffic,omitempty"`
	Radio               *RadioSpec      `json:"radio,omitempty"`
	Interference        *interferenceV2 `json:"interference,omitempty"`
	InterferenceAware   bool            `json:"interference_aware_admission,omitempty"`
	AdmissionDerate     float64         `json:"admission_derate,omitempty"`
	GS                  []gsV2          `json:"gs_flows,omitempty"`
	BE                  []beV2          `json:"be_flows,omitempty"`
	SCO                 []scoV2         `json:"sco_links,omitempty"`
	Piconets            []piconetV2     `json:"piconets,omitempty"`
	Bridges             []bridgeV2      `json:"bridges,omitempty"`
	Routes              []routeV2       `json:"routes,omitempty"`
	Faults              *faultsV2       `json:"faults,omitempty"`
	Recovery            *recoveryV2     `json:"recovery,omitempty"`
	Timeline            []timelineEvtV2 `json:"timeline,omitempty"`
}

// faultsV2 is the declarative fault plan block.
type faultsV2 struct {
	Outages    []outageV2    `json:"outages,omitempty"`
	Departures []departureV2 `json:"departures,omitempty"`
	Crashes    []crashV2     `json:"crashes,omitempty"`
}

type outageV2 struct {
	Piconet string `json:"piconet,omitempty"`
	Slave   int    `json:"slave"`
	Start   string `json:"start"`
	End     string `json:"end"`
}

type departureV2 struct {
	Piconet  string `json:"piconet,omitempty"`
	Slave    int    `json:"slave"`
	At       string `json:"at"`
	ReturnAt string `json:"return_at,omitempty"`
}

type crashV2 struct {
	Piconet string `json:"piconet,omitempty"`
	At      string `json:"at"`
}

// recoveryV2 is the self-healing configuration block.
type recoveryV2 struct {
	Supervision   int     `json:"supervision,omitempty"`
	Policy        string  `json:"policy,omitempty"`
	DegradeFactor float64 `json:"degrade_factor,omitempty"`
	HandoffTarget string  `json:"handoff_target,omitempty"`
}

// bridgeV2 is one bridge node's residency schedule.
type bridgeV2 struct {
	Name      string        `json:"name"`
	Period    string        `json:"period"`
	Residency []residencyV2 `json:"residency"`
}

type residencyV2 struct {
	Piconet string `json:"piconet,omitempty"`
	Slave   int    `json:"slave"`
	Start   string `json:"start,omitempty"`
	End     string `json:"end"`
}

// routeV2 is one end-to-end route.
type routeV2 struct {
	ID          int      `json:"id"`
	Name        string   `json:"name,omitempty"`
	Source      string   `json:"source,omitempty"`
	Bridges     []string `json:"bridges,omitempty"`
	Slave       int      `json:"slave,omitempty"`
	Dir         string   `json:"dir,omitempty"`
	Interval    string   `json:"interval"`
	Size        sizeV2   `json:"size"`
	Phase       string   `json:"phase,omitempty"`
	Allowed     []string `json:"allowed_types,omitempty"`
	DelayTarget string   `json:"delay_target,omitempty"`
	Naive       bool     `json:"naive,omitempty"`
}

// renegotiateV2 is the mid-run delay-target renegotiation operation.
type renegotiateV2 struct {
	Flow   int    `json:"flow"`
	Target string `json:"target"`
}

// piconetV2 is one piconet of a scatternet spec.
type piconetV2 struct {
	Name string  `json:"name"`
	GS   []gsV2  `json:"gs_flows,omitempty"`
	BE   []beV2  `json:"be_flows,omitempty"`
	SCO  []scoV2 `json:"sco_links,omitempty"`
}

// interferenceV2 is the FH co-channel coupling block.
type interferenceV2 struct {
	Enabled  bool   `json:"enabled"`
	Channels int    `json:"channels,omitempty"`
	Window   string `json:"window,omitempty"`
}

// pollerV2 names the best-effort poller plus its parameters.
type pollerV2 struct {
	Kind string `json:"kind"`
	PollerParams
}

// sizeV2 names a packet size distribution plus its parameters.
type sizeV2 struct {
	Kind  string `json:"kind"` // "uniform" or "fixed"
	Min   int    `json:"min,omitempty"`
	Max   int    `json:"max,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
}

type gsV2 struct {
	ID       int      `json:"id"`
	Slave    int      `json:"slave"`
	Dir      string   `json:"dir"`
	Interval string   `json:"interval"`
	Size     sizeV2   `json:"size"`
	Phase    string   `json:"phase,omitempty"`
	Allowed  []string `json:"allowed_types,omitempty"`
}

type beV2 struct {
	ID       int      `json:"id"`
	Slave    int      `json:"slave"`
	Dir      string   `json:"dir"`
	RateKbps float64  `json:"rate_kbps"`
	Size     sizeV2   `json:"size"`
	Phase    string   `json:"phase,omitempty"`
	Allowed  []string `json:"allowed_types,omitempty"`
}

type scoV2 struct {
	Slave int    `json:"slave"`
	Type  string `json:"type"`
}

type timelineEvtV2 struct {
	At string `json:"at"`
	// Piconet addresses the target piconet of a flow/SCO operation in
	// scatternet specs ("" targets the first piconet).
	Piconet       string         `json:"piconet,omitempty"`
	AddGS         *gsV2          `json:"add_gs,omitempty"`
	AddBE         *beV2          `json:"add_be,omitempty"`
	Remove        int            `json:"remove_flow,omitempty"`
	AddSCO        *scoV2         `json:"add_sco,omitempty"`
	DropSCO       int            `json:"drop_sco,omitempty"`
	AddPiconet    *piconetV2     `json:"add_piconet,omitempty"`
	RemovePiconet string         `json:"remove_piconet,omitempty"`
	Move          *moveV2        `json:"move_flow,omitempty"`
	AddRoute      *routeV2       `json:"add_route,omitempty"`
	RemoveRoute   int            `json:"remove_route,omitempty"`
	Renegotiate   *renegotiateV2 `json:"renegotiate_flow,omitempty"`
}

// moveV2 is the make-before-break flow handoff operation.
type moveV2 struct {
	Flow int    `json:"flow"`
	To   string `json:"to,omitempty"`
}

// durString renders a duration for the file ("" for zero, so zero fields
// stay out of the JSON).
func durString(d time.Duration) string {
	if d == 0 {
		return ""
	}
	return d.String()
}

// parseDur parses a duration field ("" means zero).
func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", ErrBadSpec, field, err)
	}
	return d, nil
}

// typeSetNames renders a type set as names in the canonical packet-type
// order (nil for the empty set).
func typeSetNames(set baseband.TypeSet) []string {
	var out []string
	for _, t := range set.Types() {
		out = append(out, t.String())
	}
	return out
}

// marshalGS converts a GS flow to its file form.
func marshalGS(g GSFlow) gsV2 {
	return gsV2{
		ID:       int(g.ID),
		Slave:    int(g.Slave),
		Dir:      g.Dir.String(),
		Interval: durString(g.Interval),
		Size:     sizeV2{Kind: "uniform", Min: g.MinSize, Max: g.MaxSize},
		Phase:    durString(g.Phase),
		Allowed:  typeSetNames(g.Allowed),
	}
}

// marshalBE converts a BE flow to its file form.
func marshalBE(b BEFlow) beV2 {
	return beV2{
		ID:       int(b.ID),
		Slave:    int(b.Slave),
		Dir:      b.Dir.String(),
		RateKbps: b.RateKbps,
		Size:     sizeV2{Kind: "fixed", Bytes: b.PacketSize},
		Phase:    durString(b.Phase),
		Allowed:  typeSetNames(b.Allowed),
	}
}

// marshalRoute converts a route to its file form.
func marshalRoute(rt RouteSpec) routeV2 {
	out := routeV2{
		ID:          int(rt.ID),
		Name:        rt.Name,
		Source:      rt.Source,
		Bridges:     rt.Bridges,
		Slave:       int(rt.Slave),
		Interval:    durString(rt.Interval),
		Size:        sizeV2{Kind: "uniform", Min: rt.MinSize, Max: rt.MaxSize},
		Phase:       durString(rt.Phase),
		Allowed:     typeSetNames(rt.Allowed),
		DelayTarget: durString(rt.DelayTarget),
		Naive:       rt.Naive,
	}
	if rt.Dir != 0 {
		out.Dir = rt.Dir.String()
	}
	return out
}

// unmarshalRoute converts a file route back.
func unmarshalRoute(r routeV2) (RouteSpec, error) {
	rt := RouteSpec{
		ID:      piconet.FlowID(r.ID),
		Name:    r.Name,
		Source:  r.Source,
		Bridges: r.Bridges,
		Slave:   piconet.SlaveID(r.Slave),
		Naive:   r.Naive,
	}
	var err error
	if r.Dir != "" {
		if rt.Dir, err = parseDir(r.Dir); err != nil {
			return RouteSpec{}, err
		}
	}
	if rt.Interval, err = parseDur("interval", r.Interval); err != nil {
		return RouteSpec{}, err
	}
	if rt.MinSize, rt.MaxSize, err = unmarshalSize(r.Size); err != nil {
		return RouteSpec{}, err
	}
	if rt.Phase, err = parseDur("phase", r.Phase); err != nil {
		return RouteSpec{}, err
	}
	if rt.Allowed, err = parseTypeSet(r.Allowed); err != nil {
		return RouteSpec{}, err
	}
	if rt.DelayTarget, err = parseDur("delay_target", r.DelayTarget); err != nil {
		return RouteSpec{}, err
	}
	return rt, nil
}

// marshalPiconet converts one scatternet piconet to its file form.
func marshalPiconet(ps PiconetSpec) piconetV2 {
	out := piconetV2{Name: ps.Name}
	for _, g := range ps.GS {
		out.GS = append(out.GS, marshalGS(g))
	}
	for _, b := range ps.BE {
		out.BE = append(out.BE, marshalBE(b))
	}
	for _, l := range ps.SCO {
		out.SCO = append(out.SCO, scoV2{Slave: int(l.Slave), Type: l.Type.String()})
	}
	return out
}

// Marshal renders a Spec as indented v2 JSON. The output is deterministic
// and round-trips: Unmarshal(Marshal(spec)) is fingerprint-identical to
// spec.
func Marshal(spec Spec) ([]byte, error) {
	fs := specV2{
		Format:              FormatV2,
		Name:                spec.Name,
		DelayTarget:         durString(spec.DelayTarget),
		Duration:            durString(spec.Duration),
		Seed:                spec.Seed,
		Allowed:             typeSetNames(spec.Allowed),
		DirectionAware:      spec.DirectionAware,
		WithoutPiggybacking: spec.WithoutPiggybacking,
		ARQ:                 spec.ARQ,
		LossRecovery:        spec.LossRecovery,
		BatchTraffic:        spec.BatchTraffic,
		InterferenceAware:   spec.InterferenceAwareAdmission,
		AdmissionDerate:     spec.AdmissionDerate,
	}
	if spec.Interference.Enabled {
		fs.Interference = &interferenceV2{
			Enabled:  true,
			Channels: spec.Interference.Channels,
			Window:   durString(spec.Interference.Window),
		}
	}
	// Names are emitted defaulted, so an unnamed piconet reads back as
	// the same piconet Canonical and Run resolve it to.
	for _, ps := range withPiconetNames(spec.Piconets) {
		fs.Piconets = append(fs.Piconets, marshalPiconet(ps))
	}
	for _, b := range spec.Bridges {
		out := bridgeV2{Name: b.Name, Period: b.Period.String()}
		for _, rs := range b.Residency {
			out.Residency = append(out.Residency, residencyV2{
				Piconet: rs.Piconet, Slave: int(rs.Slave),
				Start: durString(rs.Start), End: rs.End.String(),
			})
		}
		fs.Bridges = append(fs.Bridges, out)
	}
	for _, rt := range spec.Routes {
		fs.Routes = append(fs.Routes, marshalRoute(rt))
	}
	if !spec.Faults.Empty() {
		fp := &faultsV2{}
		for _, o := range spec.Faults.Outages {
			fp.Outages = append(fp.Outages, outageV2{
				Piconet: o.Piconet, Slave: int(o.Slave),
				Start: o.Start.String(), End: o.End.String(),
			})
		}
		for _, d := range spec.Faults.Departures {
			fp.Departures = append(fp.Departures, departureV2{
				Piconet: d.Piconet, Slave: int(d.Slave),
				At: d.At.String(), ReturnAt: durString(d.ReturnAt),
			})
		}
		for _, c := range spec.Faults.Crashes {
			fp.Crashes = append(fp.Crashes, crashV2{Piconet: c.Piconet, At: c.At.String()})
		}
		fs.Faults = fp
	}
	if spec.Recovery != (RecoverySpec{}) {
		if !spec.Recovery.Policy.Valid() {
			return nil, fmt.Errorf("%w: recovery policy %q", ErrBadSpec, spec.Recovery.Policy)
		}
		fs.Recovery = &recoveryV2{
			Supervision:   spec.Recovery.Supervision,
			Policy:        string(spec.Recovery.Policy),
			DegradeFactor: spec.Recovery.DegradeFactor,
			HandoffTarget: spec.Recovery.HandoffTarget,
		}
	}
	switch spec.Mode {
	case 0:
	case core.FixedInterval:
		fs.Mode = "fixed"
	case core.VariableInterval:
		fs.Mode = "variable"
	default:
		return nil, fmt.Errorf("%w: mode %v", ErrBadSpec, spec.Mode)
	}
	if spec.RulesSet {
		rules := spec.Rules.String()
		fs.Rules = &rules
	}
	if spec.BEPoller != "" || spec.PFPThreshold > 0 {
		kind := string(spec.BEPoller)
		if kind == "" {
			kind = string(BEPFP)
		}
		fs.Poller = &pollerV2{Kind: kind, PollerParams: PollerParams{PFPThreshold: spec.PFPThreshold}}
	}
	if !spec.Radio.IsIdeal() {
		radio := spec.Radio
		fs.Radio = &radio
	}
	for _, g := range spec.GS {
		fs.GS = append(fs.GS, marshalGS(g))
	}
	for _, b := range spec.BE {
		fs.BE = append(fs.BE, marshalBE(b))
	}
	for _, l := range spec.SCO {
		fs.SCO = append(fs.SCO, scoV2{Slave: int(l.Slave), Type: l.Type.String()})
	}
	for i, ev := range spec.Timeline {
		if ev.ops() != 1 {
			return nil, fmt.Errorf("%w: timeline[%d] sets %d operations", ErrBadSpec, i, ev.ops())
		}
		out := timelineEvtV2{At: ev.At.String(), Piconet: ev.Piconet}
		switch {
		case ev.AddGS != nil:
			g := marshalGS(*ev.AddGS)
			out.AddGS = &g
		case ev.AddBE != nil:
			b := marshalBE(*ev.AddBE)
			out.AddBE = &b
		case ev.Remove != piconet.None:
			out.Remove = int(ev.Remove)
		case ev.AddSCO != nil:
			out.AddSCO = &scoV2{Slave: int(ev.AddSCO.Slave), Type: ev.AddSCO.Type.String()}
		case ev.DropSCO != 0:
			out.DropSCO = int(ev.DropSCO)
		case ev.AddPiconet != nil:
			ps := marshalPiconet(*ev.AddPiconet)
			out.AddPiconet = &ps
		case ev.RemovePiconet != "":
			out.RemovePiconet = ev.RemovePiconet
		case ev.Move != nil:
			out.Move = &moveV2{Flow: int(ev.Move.Flow), To: ev.Move.To}
		case ev.AddRoute != nil:
			rt := marshalRoute(*ev.AddRoute)
			out.AddRoute = &rt
		case ev.RemoveRoute != piconet.None:
			out.RemoveRoute = int(ev.RemoveRoute)
		case ev.Renegotiate != nil:
			out.Renegotiate = &renegotiateV2{
				Flow: int(ev.Renegotiate.Flow), Target: ev.Renegotiate.Target.String(),
			}
		}
		fs.Timeline = append(fs.Timeline, out)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fs); err != nil {
		return nil, fmt.Errorf("scenario: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// unmarshalSize resolves a size distribution into its [min, max] support.
func unmarshalSize(s sizeV2) (minSize, maxSize int, err error) {
	switch strings.ToLower(strings.TrimSpace(s.Kind)) {
	case "uniform":
		return s.Min, s.Max, nil
	case "fixed":
		return s.Bytes, s.Bytes, nil
	default:
		return 0, 0, fmt.Errorf("%w: unknown size distribution %q", ErrBadSpec, s.Kind)
	}
}

// unmarshalGS converts a file GS flow back.
func unmarshalGS(g gsV2) (GSFlow, error) {
	dir, err := parseDir(g.Dir)
	if err != nil {
		return GSFlow{}, err
	}
	interval, err := parseDur("interval", g.Interval)
	if err != nil {
		return GSFlow{}, err
	}
	phase, err := parseDur("phase", g.Phase)
	if err != nil {
		return GSFlow{}, err
	}
	minSize, maxSize, err := unmarshalSize(g.Size)
	if err != nil {
		return GSFlow{}, err
	}
	allowed, err := parseTypeSet(g.Allowed)
	if err != nil {
		return GSFlow{}, err
	}
	return GSFlow{
		ID:       piconet.FlowID(g.ID),
		Slave:    piconet.SlaveID(g.Slave),
		Dir:      dir,
		Interval: interval,
		MinSize:  minSize,
		MaxSize:  maxSize,
		Phase:    phase,
		Allowed:  allowed,
	}, nil
}

// unmarshalBE converts a file BE flow back.
func unmarshalBE(b beV2) (BEFlow, error) {
	dir, err := parseDir(b.Dir)
	if err != nil {
		return BEFlow{}, err
	}
	phase, err := parseDur("phase", b.Phase)
	if err != nil {
		return BEFlow{}, err
	}
	minSize, maxSize, err := unmarshalSize(b.Size)
	if err != nil {
		return BEFlow{}, err
	}
	if minSize != maxSize {
		return BEFlow{}, fmt.Errorf("%w: best-effort flows use fixed packet sizes", ErrBadSpec)
	}
	allowed, err := parseTypeSet(b.Allowed)
	if err != nil {
		return BEFlow{}, err
	}
	return BEFlow{
		ID:         piconet.FlowID(b.ID),
		Slave:      piconet.SlaveID(b.Slave),
		Dir:        dir,
		RateKbps:   b.RateKbps,
		PacketSize: minSize,
		Phase:      phase,
		Allowed:    allowed,
	}, nil
}

// unmarshalSCO converts a file SCO link back.
func unmarshalSCO(l scoV2) (SCOLinkSpec, error) {
	t, ok := packetTypesByName[strings.ToUpper(strings.TrimSpace(l.Type))]
	if !ok || !t.IsSCO() {
		return SCOLinkSpec{}, fmt.Errorf("%w: SCO type %q", ErrBadSpec, l.Type)
	}
	return SCOLinkSpec{Slave: piconet.SlaveID(l.Slave), Type: t}, nil
}

// unmarshalPiconet converts a file piconet back.
func unmarshalPiconet(p piconetV2) (PiconetSpec, error) {
	out := PiconetSpec{Name: p.Name}
	for _, g := range p.GS {
		flow, err := unmarshalGS(g)
		if err != nil {
			return PiconetSpec{}, fmt.Errorf("gs flow %d: %w", g.ID, err)
		}
		out.GS = append(out.GS, flow)
	}
	for _, b := range p.BE {
		flow, err := unmarshalBE(b)
		if err != nil {
			return PiconetSpec{}, fmt.Errorf("be flow %d: %w", b.ID, err)
		}
		out.BE = append(out.BE, flow)
	}
	for _, l := range p.SCO {
		link, err := unmarshalSCO(l)
		if err != nil {
			return PiconetSpec{}, err
		}
		out.SCO = append(out.SCO, link)
	}
	return out, nil
}

// parseRules parses an improvements rendering ("a+b+c", "none", "a").
func parseRules(s string) (core.Improvements, error) {
	var rules core.Improvements
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "none" || s == "" {
		return 0, nil
	}
	for _, part := range strings.Split(s, "+") {
		switch strings.TrimSpace(part) {
		case "a":
			rules |= core.PostponeAfterPacket
		case "b":
			rules |= core.PostponeAfterEmpty
		case "c":
			rules |= core.SkipEmptyDown
		default:
			return 0, fmt.Errorf("%w: unknown improvement rule %q", ErrBadSpec, part)
		}
	}
	return rules, nil
}

// Unmarshal parses v2 JSON bytes into a Spec.
func Unmarshal(data []byte) (Spec, error) {
	var fs specV2
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fs); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if fs.Format != FormatV2 {
		return Spec{}, fmt.Errorf("%w: format %q (want %q)", ErrBadSpec, fs.Format, FormatV2)
	}
	spec := Spec{
		Name:                fs.Name,
		Seed:                fs.Seed,
		DirectionAware:      fs.DirectionAware,
		WithoutPiggybacking: fs.WithoutPiggybacking,
		ARQ:                 fs.ARQ,
		LossRecovery:        fs.LossRecovery,
	}
	var err error
	if spec.DelayTarget, err = parseDur("delay_target", fs.DelayTarget); err != nil {
		return Spec{}, err
	}
	if spec.Duration, err = parseDur("duration", fs.Duration); err != nil {
		return Spec{}, err
	}
	switch strings.ToLower(fs.Mode) {
	case "":
	case "variable":
		spec.Mode = core.VariableInterval
	case "fixed":
		spec.Mode = core.FixedInterval
	default:
		return Spec{}, fmt.Errorf("%w: mode %q", ErrBadSpec, fs.Mode)
	}
	if fs.Rules != nil {
		if spec.Rules, err = parseRules(*fs.Rules); err != nil {
			return Spec{}, err
		}
		spec.RulesSet = true
	}
	if fs.Poller != nil {
		spec.BEPoller = BEPollerKind(fs.Poller.Kind)
		spec.PFPThreshold = fs.Poller.PFPThreshold
		if _, err := NewBEPoller(spec.BEPoller, fs.Poller.PollerParams); err != nil {
			return Spec{}, err
		}
	}
	if spec.Allowed, err = parseTypeSet(fs.Allowed); err != nil {
		return Spec{}, err
	}
	if fs.Radio != nil {
		spec.Radio = *fs.Radio
		if _, err := spec.Radio.Model(); err != nil {
			return Spec{}, err
		}
	}
	spec.BatchTraffic = fs.BatchTraffic
	spec.InterferenceAwareAdmission = fs.InterferenceAware
	if fs.AdmissionDerate < 0 || fs.AdmissionDerate >= 1 {
		return Spec{}, fmt.Errorf("%w: admission_derate %g outside [0,1)", ErrBadSpec, fs.AdmissionDerate)
	}
	spec.AdmissionDerate = fs.AdmissionDerate
	if fs.Interference != nil {
		spec.Interference = InterferenceSpec{
			Enabled:  fs.Interference.Enabled,
			Channels: fs.Interference.Channels,
		}
		if spec.Interference.Window, err = parseDur("interference window", fs.Interference.Window); err != nil {
			return Spec{}, err
		}
	}
	for _, p := range fs.Piconets {
		ps, err := unmarshalPiconet(p)
		if err != nil {
			return Spec{}, fmt.Errorf("piconet %q: %w", p.Name, err)
		}
		spec.Piconets = append(spec.Piconets, ps)
	}
	for _, b := range fs.Bridges {
		out := BridgeSpec{Name: b.Name}
		if out.Period, err = parseDur("period", b.Period); err != nil {
			return Spec{}, fmt.Errorf("bridge %q: %w", b.Name, err)
		}
		for _, rs := range b.Residency {
			res := ResidencySpec{Piconet: rs.Piconet, Slave: piconet.SlaveID(rs.Slave)}
			if res.Start, err = parseDur("start", rs.Start); err != nil {
				return Spec{}, fmt.Errorf("bridge %q: %w", b.Name, err)
			}
			if res.End, err = parseDur("end", rs.End); err != nil {
				return Spec{}, fmt.Errorf("bridge %q: %w", b.Name, err)
			}
			out.Residency = append(out.Residency, res)
		}
		spec.Bridges = append(spec.Bridges, out)
	}
	for _, r := range fs.Routes {
		rt, err := unmarshalRoute(r)
		if err != nil {
			return Spec{}, fmt.Errorf("route %d: %w", r.ID, err)
		}
		spec.Routes = append(spec.Routes, rt)
	}
	if fs.Faults != nil {
		for i, o := range fs.Faults.Outages {
			out := faults.LinkOutage{Piconet: o.Piconet, Slave: piconet.SlaveID(o.Slave)}
			if out.Start, err = parseDur("start", o.Start); err != nil {
				return Spec{}, fmt.Errorf("faults.outages[%d]: %w", i, err)
			}
			if out.End, err = parseDur("end", o.End); err != nil {
				return Spec{}, fmt.Errorf("faults.outages[%d]: %w", i, err)
			}
			spec.Faults.Outages = append(spec.Faults.Outages, out)
		}
		for i, d := range fs.Faults.Departures {
			dep := faults.SlaveDeparture{Piconet: d.Piconet, Slave: piconet.SlaveID(d.Slave)}
			if dep.At, err = parseDur("at", d.At); err != nil {
				return Spec{}, fmt.Errorf("faults.departures[%d]: %w", i, err)
			}
			if dep.ReturnAt, err = parseDur("return_at", d.ReturnAt); err != nil {
				return Spec{}, fmt.Errorf("faults.departures[%d]: %w", i, err)
			}
			spec.Faults.Departures = append(spec.Faults.Departures, dep)
		}
		for i, c := range fs.Faults.Crashes {
			cr := faults.MasterCrash{Piconet: c.Piconet}
			if cr.At, err = parseDur("at", c.At); err != nil {
				return Spec{}, fmt.Errorf("faults.crashes[%d]: %w", i, err)
			}
			spec.Faults.Crashes = append(spec.Faults.Crashes, cr)
		}
	}
	if fs.Recovery != nil {
		spec.Recovery = RecoverySpec{
			Supervision:   fs.Recovery.Supervision,
			Policy:        faults.Policy(fs.Recovery.Policy),
			DegradeFactor: fs.Recovery.DegradeFactor,
			HandoffTarget: fs.Recovery.HandoffTarget,
		}
	}
	for _, g := range fs.GS {
		flow, err := unmarshalGS(g)
		if err != nil {
			return Spec{}, fmt.Errorf("gs flow %d: %w", g.ID, err)
		}
		spec.GS = append(spec.GS, flow)
	}
	for _, b := range fs.BE {
		flow, err := unmarshalBE(b)
		if err != nil {
			return Spec{}, fmt.Errorf("be flow %d: %w", b.ID, err)
		}
		spec.BE = append(spec.BE, flow)
	}
	for _, l := range fs.SCO {
		link, err := unmarshalSCO(l)
		if err != nil {
			return Spec{}, err
		}
		spec.SCO = append(spec.SCO, link)
	}
	for i, ev := range fs.Timeline {
		at, err := parseDur("at", ev.At)
		if err != nil {
			return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
		}
		// Count the set operation fields on the raw file event: the
		// switch below would silently take the first one, and the
		// later validateTimeline pass could no longer see the others.
		ops := 0
		for _, set := range []bool{ev.AddGS != nil, ev.AddBE != nil,
			ev.Remove != 0, ev.AddSCO != nil, ev.DropSCO != 0,
			ev.AddPiconet != nil, ev.RemovePiconet != "", ev.Move != nil,
			ev.AddRoute != nil, ev.RemoveRoute != 0, ev.Renegotiate != nil} {
			if set {
				ops++
			}
		}
		if ops > 1 {
			return Spec{}, fmt.Errorf("%w: timeline[%d] sets %d operations (want exactly 1)",
				ErrBadSpec, i, ops)
		}
		out := TimelineEvent{At: at, Piconet: ev.Piconet}
		switch {
		case ev.AddGS != nil:
			flow, err := unmarshalGS(*ev.AddGS)
			if err != nil {
				return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
			}
			out.AddGS = &flow
		case ev.AddBE != nil:
			flow, err := unmarshalBE(*ev.AddBE)
			if err != nil {
				return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
			}
			out.AddBE = &flow
		case ev.Remove != 0:
			out.Remove = piconet.FlowID(ev.Remove)
		case ev.AddSCO != nil:
			link, err := unmarshalSCO(*ev.AddSCO)
			if err != nil {
				return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
			}
			out.AddSCO = &link
		case ev.DropSCO != 0:
			out.DropSCO = piconet.SlaveID(ev.DropSCO)
		case ev.AddPiconet != nil:
			ps, err := unmarshalPiconet(*ev.AddPiconet)
			if err != nil {
				return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
			}
			out.AddPiconet = &ps
		case ev.RemovePiconet != "":
			out.RemovePiconet = ev.RemovePiconet
		case ev.Move != nil:
			out.Move = &MoveFlow{Flow: piconet.FlowID(ev.Move.Flow), To: ev.Move.To}
		case ev.AddRoute != nil:
			rt, err := unmarshalRoute(*ev.AddRoute)
			if err != nil {
				return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
			}
			out.AddRoute = &rt
		case ev.RemoveRoute != 0:
			out.RemoveRoute = piconet.FlowID(ev.RemoveRoute)
		case ev.Renegotiate != nil:
			rn := RenegotiateFlow{Flow: piconet.FlowID(ev.Renegotiate.Flow)}
			if rn.Target, err = parseDur("target", ev.Renegotiate.Target); err != nil {
				return Spec{}, fmt.Errorf("timeline[%d]: %w", i, err)
			}
			out.Renegotiate = &rn
		default:
			return Spec{}, fmt.Errorf("%w: timeline[%d] sets no operation", ErrBadSpec, i)
		}
		spec.Timeline = append(spec.Timeline, out)
	}
	// Validate the defaulted view (names filled, timeline targets
	// resolved) — the same view Run and Canonical act on.
	def := spec.WithDefaults()
	if err := def.validateScatternet(); err != nil {
		return Spec{}, err
	}
	if err := validateBridges(def); err != nil {
		return Spec{}, err
	}
	if err := validateTimeline(def); err != nil {
		return Spec{}, err
	}
	if err := validateFaults(def); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// LoadFile reads a scenario file, accepting both the v2 format (see
// Marshal) and the legacy v1 FileSpec form (files without a "format"
// tag).
func LoadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	var sniff struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &sniff); err == nil && sniff.Format != "" {
		return Unmarshal(data)
	}
	return ParseSpec(data)
}
