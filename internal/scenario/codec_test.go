package scenario

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
)

// randomSpec builds a randomized but structurally valid spec: random
// header knobs, flow sets, SCO links and timeline, for round-trip
// property testing.
func randomSpec(rng *rand.Rand) Spec {
	spec := Spec{
		Name:                "random",
		DelayTarget:         time.Duration(20+rng.Intn(40)) * time.Millisecond,
		Duration:            time.Duration(1+rng.Intn(60)) * time.Second,
		Seed:                rng.Int63n(1 << 40),
		DirectionAware:      rng.Intn(2) == 0,
		WithoutPiggybacking: rng.Intn(2) == 0,
		ARQ:                 rng.Intn(2) == 0,
		LossRecovery:        rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		spec.Mode = core.FixedInterval
	} else {
		spec.Mode = core.VariableInterval
	}
	if rng.Intn(2) == 0 {
		spec.RulesSet = true
		spec.Rules = core.Improvements(rng.Intn(8))
	}
	pollers := []BEPollerKind{BEPFP, BERoundRobin, BEExhaustive, BEFEP, BEEDC, BEDemand, BEHOL}
	spec.BEPoller = pollers[rng.Intn(len(pollers))]
	if spec.BEPoller == BEPFP && rng.Intn(2) == 0 {
		spec.PFPThreshold = 0.25 + 0.5*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		spec.Allowed = baseband.PaperTypes
	} else {
		spec.Allowed = baseband.NewTypeSet(baseband.TypeDH1, baseband.TypeDM3)
	}
	switch rng.Intn(3) {
	case 1:
		spec.Radio = BERRadio(float64(1+rng.Intn(9)) * 1e-5)
	case 2:
		spec.Radio = GilbertElliottRadio(0.01, 0.2, 0.001, 0.3)
	}
	id := piconet.FlowID(1)
	dirs := []piconet.Direction{piconet.Up, piconet.Down}
	randGS := func(slave piconet.SlaveID) GSFlow {
		g := GSFlow{
			ID:       id,
			Slave:    slave,
			Dir:      dirs[rng.Intn(2)],
			Interval: time.Duration(10+rng.Intn(30)) * time.Millisecond,
			MinSize:  100 + rng.Intn(50),
			MaxSize:  150 + rng.Intn(50),
			Phase:    time.Duration(rng.Intn(10_000_000)), // sub-ms precision
		}
		if rng.Intn(3) == 0 {
			g.Allowed = baseband.NewTypeSet(baseband.TypeDH1)
		}
		id++
		return g
	}
	randBE := func(slave piconet.SlaveID) BEFlow {
		b := BEFlow{
			ID:         id,
			Slave:      slave,
			Dir:        dirs[rng.Intn(2)],
			RateKbps:   10 + 90*rng.Float64(),
			PacketSize: 27 + rng.Intn(300),
			Phase:      time.Duration(rng.Intn(10_000_000)),
		}
		id++
		return b
	}
	for n := rng.Intn(3); n > 0; n-- {
		spec.GS = append(spec.GS, randGS(piconet.SlaveID(1+rng.Intn(3))))
	}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		spec.BE = append(spec.BE, randBE(piconet.SlaveID(4+rng.Intn(3))))
	}
	if rng.Intn(3) == 0 {
		spec.SCO = append(spec.SCO, SCOLinkSpec{Slave: 7, Type: baseband.TypeHV3})
	}
	for n := rng.Intn(4); n > 0; n-- {
		at := time.Duration(rng.Int63n(int64(spec.Duration)))
		switch rng.Intn(4) {
		case 0:
			spec.Timeline = append(spec.Timeline, AddGSAt(at, randGS(piconet.SlaveID(1+rng.Intn(3)))))
		case 1:
			spec.Timeline = append(spec.Timeline, AddBEAt(at, randBE(piconet.SlaveID(4+rng.Intn(3)))))
		case 2:
			// Remove a flow that exists (static BE always non-empty).
			spec.Timeline = append(spec.Timeline, RemoveAt(at, spec.BE[rng.Intn(len(spec.BE))].ID))
		case 3:
			spec.Timeline = append(spec.Timeline, AddSCOAt(at, SCOLinkSpec{
				Slave: piconet.SlaveID(1 + rng.Intn(7)), Type: baseband.TypeHV3}))
		}
	}
	return spec
}

// TestCodecRoundTripProperty: Unmarshal(Marshal(spec)) must be
// fingerprint-identical — and hence cache-key identical — for randomized
// specs covering every serializable feature.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		spec := randomSpec(rng)
		data, err := Marshal(spec)
		if err != nil {
			t.Fatalf("case %d: Marshal: %v\nspec: %+v", i, err, spec)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("case %d: Unmarshal: %v\njson:\n%s", i, err, data)
		}
		if got, want := back.Fingerprint(), spec.Fingerprint(); got != want {
			t.Fatalf("case %d: fingerprint diverged after round trip\njson:\n%s\ncanonical got:\n%s\ncanonical want:\n%s",
				i, data, back.Canonical(), spec.Canonical())
		}
		if back.Name != spec.Name {
			t.Fatalf("case %d: Name %q != %q", i, back.Name, spec.Name)
		}
	}
}

// TestCodecGoldenPresets pins the serialized form of the registered
// presets: the committed files are the documentation of the v2 format,
// and parsing them back must reproduce the preset exactly.
func TestCodecGoldenPresets(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, tt := range []struct {
		file string
		spec Spec
	}{
		{"paper-fig4.json", Paper(40 * time.Millisecond)},
		{"baseline-pfp.json", Baseline(BEPFP)},
		{"bridge-pair.json", Bridged(BridgedConfig{Hops: 2})},
	} {
		t.Run(tt.file, func(t *testing.T) {
			data, err := Marshal(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tt.file)
			if update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
			}
			if string(data) != string(want) {
				t.Fatalf("serialized form drifted from %s\n--- got ---\n%s--- want ---\n%s",
					path, data, want)
			}
			back, err := Unmarshal(want)
			if err != nil {
				t.Fatalf("Unmarshal golden: %v", err)
			}
			if back.Fingerprint() != tt.spec.Fingerprint() {
				t.Fatal("golden file does not reproduce the preset's fingerprint")
			}
		})
	}
}

// TestCodecErrors exercises the decode-side validation.
func TestCodecErrors(t *testing.T) {
	cases := map[string]string{
		"missing format": `{"name":"x"}`,
		"wrong format":   `{"format":"bluegs/scenario/v99"}`,
		"unknown field":  `{"format":"bluegs/scenario/v2","bogus":1}`,
		"bad duration":   `{"format":"bluegs/scenario/v2","duration":"fast"}`,
		"bad size kind": `{"format":"bluegs/scenario/v2","gs_flows":[
			{"id":1,"slave":1,"dir":"up","interval":"20ms","size":{"kind":"zipf"}}]}`,
		"variable be size": `{"format":"bluegs/scenario/v2","be_flows":[
			{"id":1,"slave":1,"dir":"up","rate_kbps":10,"size":{"kind":"uniform","min":10,"max":20}}]}`,
		"bad radio": `{"format":"bluegs/scenario/v2","radio":{"kind":"crystal-ball"}}`,
		"bad rules": `{"format":"bluegs/scenario/v2","rules":"a+z"}`,
		"empty timeline event": `{"format":"bluegs/scenario/v2","be_flows":[
			{"id":1,"slave":1,"dir":"up","rate_kbps":10,"size":{"kind":"fixed","bytes":100}}],
			"timeline":[{"at":"1s"}]}`,
		"multi-op timeline event": `{"format":"bluegs/scenario/v2","be_flows":[
			{"id":1,"slave":1,"dir":"up","rate_kbps":10,"size":{"kind":"fixed","bytes":100}}],
			"timeline":[{"at":"1s","remove_flow":1,"add_be":
			{"id":2,"slave":2,"dir":"up","rate_kbps":10,"size":{"kind":"fixed","bytes":100}}}]}`,
	}
	for name, js := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(js)); err == nil {
				t.Fatalf("Unmarshal accepted %s", js)
			}
		})
	}
}

// TestLoadFileSniffsFormats: LoadFile must accept both the v2 format and
// legacy v1 files.
func TestLoadFileSniffsFormats(t *testing.T) {
	dir := t.TempDir()
	v2, err := Marshal(Paper(40 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	v2Path := filepath.Join(dir, "v2.json")
	if err := os.WriteFile(v2Path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadFile(v2Path)
	if err != nil {
		t.Fatalf("LoadFile v2: %v", err)
	}
	if spec.Fingerprint() != Paper(40*time.Millisecond).Fingerprint() {
		t.Fatal("v2 load drifted")
	}
	legacy := `{"name":"legacy","delay_target_ms":40,"duration_s":5,
		"gs_flows":[{"id":1,"slave":1,"dir":"up","interval_ms":20,"min_size":144,"max_size":176}]}`
	v1Path := filepath.Join(dir, "v1.json")
	if err := os.WriteFile(v1Path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if spec, err = LoadFile(v1Path); err != nil {
		t.Fatalf("LoadFile v1: %v", err)
	}
	if spec.Name != "legacy" || len(spec.GS) != 1 {
		t.Fatalf("v1 load: %+v", spec)
	}
}

// TestCodecFaultBlocksRoundTrip pins the v2 serialization of the fault
// plan, the recovery block, and the move_flow timeline event: every
// field survives the round trip and the decoded spec is
// fingerprint-identical to the original.
func TestCodecFaultBlocksRoundTrip(t *testing.T) {
	spec := FaultScenario(FaultScenarioConfig{Policy: faults.PolicyHandoff})
	spec.Faults.Departures = []faults.SlaveDeparture{
		{Piconet: "pn1", Slave: 3, At: 4 * time.Second, ReturnAt: 5 * time.Second},
		{Piconet: "pn2", Slave: 5, At: 9 * time.Second}, // never returns
	}
	spec.Faults.Crashes = []faults.MasterCrash{{Piconet: "pn2", At: 11 * time.Second}}
	spec.Recovery.DegradeFactor = 0 // inert outside PolicyDegrade
	spec.Recovery.HandoffTarget = "pn2"
	spec.Timeline = append(spec.Timeline, MoveFlowAt(6*time.Second, 2, "pn2"))

	data, err := Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"faults"`, `"outages"`, `"departures"`, `"crashes"`,
		`"recovery"`, `"handoff"`, `"move_flow"`, `"return_at"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serialized form lacks %s:\n%s", want, data)
		}
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\njson:\n%s", err, data)
	}
	if back.Fingerprint() != spec.Fingerprint() {
		t.Fatalf("fingerprint diverged after round trip\ngot:\n%s\nwant:\n%s",
			back.Canonical(), spec.Canonical())
	}
	if !reflect.DeepEqual(back.Faults, spec.Faults) {
		t.Fatalf("fault plan drifted:\ngot  %+v\nwant %+v", back.Faults, spec.Faults)
	}
	if !reflect.DeepEqual(back.Recovery, spec.Recovery) {
		t.Fatalf("recovery spec drifted:\ngot  %+v\nwant %+v", back.Recovery, spec.Recovery)
	}
	last := back.Timeline[len(back.Timeline)-1]
	if last.Move == nil || last.Move.Flow != 2 || last.Move.To != "pn2" || last.At != 6*time.Second {
		t.Fatalf("move_flow event drifted: %+v", last)
	}

	// Decode-side validation of the new blocks.
	for name, js := range map[string]string{
		"bad outage start": `{"format":"bluegs/scenario/v2","be_flows":[
			{"id":1,"slave":1,"dir":"up","rate_kbps":10,"size":{"kind":"fixed","bytes":100}}],
			"faults":{"outages":[{"slave":1,"start":"soon","end":"2s"}]}}`,
		"bad departure return": `{"format":"bluegs/scenario/v2","be_flows":[
			{"id":1,"slave":1,"dir":"up","rate_kbps":10,"size":{"kind":"fixed","bytes":100}}],
			"faults":{"departures":[{"slave":1,"at":"1s","return_at":"later"}]}}`,
		"bad crash at": `{"format":"bluegs/scenario/v2","be_flows":[
			{"id":1,"slave":1,"dir":"up","rate_kbps":10,"size":{"kind":"fixed","bytes":100}}],
			"faults":{"crashes":[{"at":"whenever"}]}}`,
	} {
		if _, err := Unmarshal([]byte(js)); err == nil {
			t.Errorf("%s: Unmarshal accepted it", name)
		}
	}
}
