package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
)

// FileSpec is the legacy (v1) JSON on-disk form of a scenario, still
// accepted by LoadFile for backwards compatibility. Durations are
// expressed in the units their field names state so that the files stay
// plain numbers. New files should use the v2 format (see Marshal), which
// covers the full Spec including the timeline.
type FileSpec struct {
	Name                string       `json:"name"`
	DelayTargetMs       float64      `json:"delay_target_ms"`
	DurationS           float64      `json:"duration_s"`
	Seed                int64        `json:"seed"`
	Mode                string       `json:"mode"` // "fixed" or "variable"
	BEPoller            string       `json:"be_poller"`
	AllowedTypes        []string     `json:"allowed_types"` // e.g. ["DH1","DH3"]
	DirectionAware      bool         `json:"direction_aware"`
	WithoutPiggybacking bool         `json:"without_piggybacking"`
	BER                 float64      `json:"ber"`
	ARQ                 bool         `json:"arq"`
	LossRecovery        bool         `json:"loss_recovery"`
	GSFlows             []FileGSFlow `json:"gs_flows"`
	BEFlows             []FileBEFlow `json:"be_flows"`
	SCOLinks            []FileSCO    `json:"sco_links"`
}

// FileGSFlow is the JSON form of a Guaranteed Service flow.
type FileGSFlow struct {
	ID         int      `json:"id"`
	Slave      int      `json:"slave"`
	Dir        string   `json:"dir"` // "up" or "down"
	IntervalMs float64  `json:"interval_ms"`
	MinSize    int      `json:"min_size"`
	MaxSize    int      `json:"max_size"`
	PhaseMs    float64  `json:"phase_ms"`
	Allowed    []string `json:"allowed_types"`
}

// FileBEFlow is the JSON form of a best-effort flow.
type FileBEFlow struct {
	ID         int      `json:"id"`
	Slave      int      `json:"slave"`
	Dir        string   `json:"dir"`
	RateKbps   float64  `json:"rate_kbps"`
	PacketSize int      `json:"packet_size"`
	PhaseMs    float64  `json:"phase_ms"`
	Allowed    []string `json:"allowed_types"`
}

// FileSCO is the JSON form of an SCO link.
type FileSCO struct {
	Slave int    `json:"slave"`
	Type  string `json:"type"` // "HV1", "HV2" or "HV3"
}

// packetTypesByName resolves spec names like "DH3".
var packetTypesByName = map[string]baseband.PacketType{
	"DM1": baseband.TypeDM1, "DH1": baseband.TypeDH1,
	"DM3": baseband.TypeDM3, "DH3": baseband.TypeDH3,
	"DM5": baseband.TypeDM5, "DH5": baseband.TypeDH5,
	"HV1": baseband.TypeHV1, "HV2": baseband.TypeHV2, "HV3": baseband.TypeHV3,
}

func parseTypeSet(names []string) (baseband.TypeSet, error) {
	var set baseband.TypeSet
	for _, n := range names {
		t, ok := packetTypesByName[strings.ToUpper(strings.TrimSpace(n))]
		if !ok {
			return 0, fmt.Errorf("%w: unknown packet type %q", ErrBadSpec, n)
		}
		set = set.Add(t)
	}
	return set, nil
}

func parseDir(s string) (piconet.Direction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "up":
		return piconet.Up, nil
	case "down":
		return piconet.Down, nil
	default:
		return 0, fmt.Errorf("%w: direction %q (want up or down)", ErrBadSpec, s)
	}
}

// ParseSpec converts JSON bytes into a runnable Spec.
func ParseSpec(data []byte) (Spec, error) {
	var fs FileSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fs); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	spec := Spec{
		Name:                fs.Name,
		DelayTarget:         time.Duration(fs.DelayTargetMs * float64(time.Millisecond)),
		Duration:            time.Duration(fs.DurationS * float64(time.Second)),
		Seed:                fs.Seed,
		BEPoller:            BEPollerKind(fs.BEPoller),
		DirectionAware:      fs.DirectionAware,
		WithoutPiggybacking: fs.WithoutPiggybacking,
		ARQ:                 fs.ARQ,
		LossRecovery:        fs.LossRecovery,
	}
	switch strings.ToLower(fs.Mode) {
	case "", "variable":
		spec.Mode = core.VariableInterval
	case "fixed":
		spec.Mode = core.FixedInterval
	default:
		return Spec{}, fmt.Errorf("%w: mode %q", ErrBadSpec, fs.Mode)
	}
	if len(fs.AllowedTypes) > 0 {
		set, err := parseTypeSet(fs.AllowedTypes)
		if err != nil {
			return Spec{}, err
		}
		spec.Allowed = set
	}
	if fs.BER > 0 {
		spec.Radio = BERRadio(fs.BER)
	}
	for _, g := range fs.GSFlows {
		dir, err := parseDir(g.Dir)
		if err != nil {
			return Spec{}, fmt.Errorf("gs flow %d: %w", g.ID, err)
		}
		allowed, err := parseTypeSet(g.Allowed)
		if err != nil {
			return Spec{}, fmt.Errorf("gs flow %d: %w", g.ID, err)
		}
		spec.GS = append(spec.GS, GSFlow{
			ID:       piconet.FlowID(g.ID),
			Slave:    piconet.SlaveID(g.Slave),
			Dir:      dir,
			Interval: time.Duration(g.IntervalMs * float64(time.Millisecond)),
			MinSize:  g.MinSize,
			MaxSize:  g.MaxSize,
			Phase:    time.Duration(g.PhaseMs * float64(time.Millisecond)),
			Allowed:  allowed,
		})
	}
	for _, b := range fs.BEFlows {
		dir, err := parseDir(b.Dir)
		if err != nil {
			return Spec{}, fmt.Errorf("be flow %d: %w", b.ID, err)
		}
		allowed, err := parseTypeSet(b.Allowed)
		if err != nil {
			return Spec{}, fmt.Errorf("be flow %d: %w", b.ID, err)
		}
		spec.BE = append(spec.BE, BEFlow{
			ID:         piconet.FlowID(b.ID),
			Slave:      piconet.SlaveID(b.Slave),
			Dir:        dir,
			RateKbps:   b.RateKbps,
			PacketSize: b.PacketSize,
			Phase:      time.Duration(b.PhaseMs * float64(time.Millisecond)),
			Allowed:    allowed,
		})
	}
	for _, l := range fs.SCOLinks {
		t, ok := packetTypesByName[strings.ToUpper(strings.TrimSpace(l.Type))]
		if !ok || !t.IsSCO() {
			return Spec{}, fmt.Errorf("%w: SCO type %q", ErrBadSpec, l.Type)
		}
		spec.SCO = append(spec.SCO, SCOLinkSpec{Slave: piconet.SlaveID(l.Slave), Type: t})
	}
	return spec, nil
}
