package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
)

const sampleJSON = `{
  "name": "custom",
  "delay_target_ms": 42,
  "duration_s": 5,
  "seed": 9,
  "mode": "fixed",
  "be_poller": "fep",
  "allowed_types": ["DH1", "DH3"],
  "direction_aware": true,
  "ber": 0.0001,
  "arq": true,
  "loss_recovery": true,
  "gs_flows": [
    {"id": 1, "slave": 1, "dir": "up", "interval_ms": 20, "min_size": 144, "max_size": 176, "phase_ms": 2}
  ],
  "be_flows": [
    {"id": 2, "slave": 2, "dir": "down", "rate_kbps": 40, "packet_size": 27, "allowed_types": ["DH1"]}
  ],
  "sco_links": [
    {"slave": 3, "type": "HV3"}
  ]
}`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(sampleJSON))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Name != "custom" || spec.Seed != 9 {
		t.Fatalf("header: %+v", spec)
	}
	if spec.DelayTarget != 42*time.Millisecond || spec.Duration != 5*time.Second {
		t.Fatalf("durations: %v %v", spec.DelayTarget, spec.Duration)
	}
	if spec.Mode != core.FixedInterval {
		t.Fatalf("mode = %v", spec.Mode)
	}
	if spec.BEPoller != BEFEP {
		t.Fatalf("poller = %v", spec.BEPoller)
	}
	if !spec.DirectionAware || !spec.ARQ || !spec.LossRecovery {
		t.Fatal("boolean knobs not parsed")
	}
	if spec.Radio.Kind != RadioBER || spec.Radio.BER != 0.0001 {
		t.Fatalf("radio = %+v", spec.Radio)
	}
	if len(spec.GS) != 1 || spec.GS[0].Dir != piconet.Up || spec.GS[0].Phase != 2*time.Millisecond {
		t.Fatalf("GS = %+v", spec.GS)
	}
	if len(spec.BE) != 1 || !spec.BE[0].Allowed.Contains(baseband.TypeDH1) ||
		spec.BE[0].Allowed.Contains(baseband.TypeDH3) {
		t.Fatalf("BE = %+v", spec.BE)
	}
	if len(spec.SCO) != 1 || spec.SCO[0].Type != baseband.TypeHV3 || spec.SCO[0].Slave != 3 {
		t.Fatalf("SCO = %+v", spec.SCO)
	}
	if !spec.Allowed.Contains(baseband.TypeDH3) {
		t.Fatalf("allowed = %v", spec.Allowed)
	}
}

func TestParsedSpecRuns(t *testing.T) {
	spec, err := ParseSpec([]byte(sampleJSON))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	spec.Duration = 3 * time.Second
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v := res.BoundViolations(); len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
	if res.SCOKbps[3] < 120 {
		t.Fatalf("SCO throughput = %.1f, want ~128", res.SCOKbps[3])
	}
	gsFlow, _ := res.FlowByID(1)
	if gsFlow.Kbps < 60 {
		t.Fatalf("GS throughput = %.1f", gsFlow.Kbps)
	}
}

func TestParseSpecErrors(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"invalid json", `{`},
		{"unknown field", `{"bogus": 1}`},
		{"bad mode", `{"mode": "warp"}`},
		{"bad direction", `{"gs_flows": [{"id":1,"slave":1,"dir":"sideways","interval_ms":20,"min_size":10,"max_size":20}]}`},
		{"bad packet type", `{"allowed_types": ["DH9"]}`},
		{"acl as sco", `{"sco_links": [{"slave":1,"type":"DH1"}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseSpec([]byte(tt.json)); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestLoadFileLegacyForm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if spec.Name != "custom" {
		t.Fatalf("Name = %q", spec.Name)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}
