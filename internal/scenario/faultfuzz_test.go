package scenario

import (
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
)

// randomFaultPlan builds a randomized-but-valid fault plan over a spec's
// piconets: link-outage windows long enough for a Supervision-3 timeout
// to trip (three failed polls, well under 300ms at any preset's poll
// spacing), slave departures with and without return, and at most one
// master crash. Slaves are drawn from the full 1..7 range on purpose —
// an outage at a slave nobody polls must be inert, not fatal.
func randomFaultPlan(rng *rand.Rand, spec Spec, horizon time.Duration) faults.Plan {
	names := []string{""}
	if spec.scatternet() {
		names = names[:0]
		for _, ps := range spec.Piconets {
			names = append(names, ps.Name)
		}
	}
	pick := func() string { return names[rng.Intn(len(names))] }
	slave := func() piconet.SlaveID { return piconet.SlaveID(1 + rng.Intn(7)) }
	at := func() time.Duration { return time.Duration(rng.Int63n(int64(horizon))) }

	var plan faults.Plan
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		start := at()
		dur := 300*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
		plan.Outages = append(plan.Outages, faults.LinkOutage{
			Piconet: pick(), Slave: slave(), Start: start, End: start + dur,
		})
	}
	if rng.Intn(2) == 0 {
		dep := faults.SlaveDeparture{Piconet: pick(), Slave: slave(), At: at()}
		if rng.Intn(2) == 0 {
			dep.ReturnAt = dep.At + 400*time.Millisecond
		}
		plan.Departures = append(plan.Departures, dep)
	}
	if rng.Intn(3) == 0 {
		plan.Crashes = append(plan.Crashes, faults.MasterCrash{
			Piconet: pick(), At: horizon/2 + at()/2,
		})
	}
	return plan
}

// TestRegistryFaultFuzzSmoke runs every registered scenario under
// randomized fault timelines — outages, slave churn, the occasional
// master crash — across every recovery policy (fixed seeds, so CI
// failures reproduce). The invariants: the run completes without an
// engine error or panic, every surviving contract (a GS flow the fault
// machinery left untouched or renegotiated) still meets the loosest
// bound it ever exported, and the faulted spec survives a v2 JSON round
// trip fingerprint-intact. The CI fuzz-smoke step invokes exactly this
// test alongside TestRegistryFuzzSmoke.
//
// Like TestRegistryFuzzSmokeInterferenceAware, the sweep pins
// interference-aware admission at the conservative 16-piconet derate:
// without it the scatternet presets can exceed their nominal bounds
// through FH co-channel collisions alone, fault-free, and the assertion
// would blame the fault machinery for radio physics.
func TestRegistryFaultFuzzSmoke(t *testing.T) {
	s16 := 1 - radio.ExpectedCollisionProb(15, 0)
	policies := []faults.Policy{faults.PolicyNone, faults.PolicyDegrade, faults.PolicyHandoff}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				spec, ok := Lookup(name)
				if !ok {
					t.Fatal("registered name does not resolve")
				}
				spec.Duration = 3 * time.Second
				spec.Interference.Enabled = true
				spec.InterferenceAwareAdmission = true
				spec.AdmissionDerate = s16
				rng := rand.New(rand.NewSource(seed))
				spec.Faults = randomFaultPlan(rng, spec, spec.Duration)
				spec.Recovery = RecoverySpec{
					Supervision: 3,
					Policy:      policies[rng.Intn(len(policies))],
				}

				data, err := Marshal(spec)
				if err != nil {
					t.Fatalf("seed %d: marshal: %v", seed, err)
				}
				decoded, err := Unmarshal(data)
				if err != nil {
					t.Fatalf("seed %d: unmarshal: %v", seed, err)
				}
				if decoded.Fingerprint() != spec.Fingerprint() {
					t.Fatalf("seed %d: fingerprint drifted across JSON round trip", seed)
				}

				res, err := Run(decoded)
				if err != nil {
					t.Fatalf("seed %d (policy %q): %v", seed, spec.Recovery.Policy, err)
				}
				if res.Elapsed != spec.Duration {
					t.Fatalf("seed %d: run stopped early at %v", seed, res.Elapsed)
				}
				for _, f := range res.Flows {
					if f.Class != piconet.Guaranteed {
						continue
					}
					if f.Fate != "" && f.Fate != FateDegraded {
						continue // suspended, moved-away remnant, or crashed
					}
					if f.Bound > 0 && f.DelayMax > f.Bound {
						t.Fatalf("seed %d (policy %q): surviving flow %d (%s, fate %q) violated its bound: max %v > %v",
							seed, spec.Recovery.Policy, f.ID, f.Piconet, f.Fate, f.DelayMax, f.Bound)
					}
				}
			}
		})
	}
}
