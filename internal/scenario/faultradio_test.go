package scenario_test

import (
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
	"bluegs/internal/scenario"
)

// countingRadio wraps a radio model and counts Deliver calls. Every call
// to the wrapped GilbertElliott consumes exactly two RNG draws, so the
// call count is also an exact draw account.
type countingRadio struct {
	inner radio.Model
	calls int
}

func (c *countingRadio) Deliver(rng *rand.Rand, t baseband.PacketType) bool {
	c.calls++
	return c.inner.Deliver(rng, t)
}

func (c *countingRadio) Name() string { return c.inner.Name() }

// sliceTracer collects every exchange.
type sliceTracer struct{ entries []piconet.TraceEntry }

func (s *sliceTracer) Trace(e piconet.TraceEntry) { s.entries = append(s.entries, e) }

// geOutageSpec is the composition workload: one fixed-size GS voice flow,
// no ARQ, no supervision — the engine keeps polling straight through the
// outage window, so the window's exchanges are observable as losses.
func geOutageSpec(outage bool) scenario.Spec {
	spec := scenario.Spec{
		// Down direction: the master's data leg is the one the outage
		// fails, so window exchanges surface as Lost trace entries (a
		// failed bare POLL to an Up flow carries no packet to mark lost).
		GS: []scenario.GSFlow{{
			ID: 1, Slave: 1, Dir: piconet.Down,
			Interval: 20 * time.Millisecond,
			MinSize:  176, MaxSize: 176,
		}},
		DelayTarget: 100 * time.Millisecond,
		Duration:    4 * time.Second,
		Seed:        7,
	}
	if outage {
		spec.Faults = faults.Plan{Outages: []faults.LinkOutage{
			{Slave: 1, Start: time.Second, End: 2 * time.Second},
		}}
	}
	return spec
}

const geOutageStart, geOutageEnd = time.Second, 2 * time.Second

// inWindow reports whether the exchange started inside the outage window.
func inWindow(e piconet.TraceEntry) bool {
	return e.Start >= geOutageStart && e.Start < geOutageEnd
}

// TestOutageForcesLossWithZeroDraws: during a declared outage every
// exchange fails outright — regardless of the Gilbert–Elliott chain state
// — and the radio model is never consulted, so the chain consumes no RNG
// draws at all. The counting wrapper proves the accounting exactly: a
// pinned-Good channel answers twice per exchange outside the window and
// never inside it.
func TestOutageForcesLossWithZeroDraws(t *testing.T) {
	run := func(outage bool) (*radio.GilbertElliott, int, []piconet.TraceEntry, *scenario.Result) {
		// Pinned Good, lossless: every consulted leg delivers.
		ge := radio.NewGilbertElliott(0, 0, 0, 1)
		cnt := &countingRadio{inner: ge}
		tr := &sliceTracer{}
		res, err := scenario.RunWith(geOutageSpec(outage), scenario.Hooks{Radio: cnt, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		return ge, cnt.calls, tr.entries, res
	}

	// An exchange begun just before the horizon consults the model but
	// completes — and traces — past it, so the call count may run exactly
	// one untraced exchange (two draws) ahead of the trace.
	pairsUpTo := func(what string, calls, exchanges int) {
		t.Helper()
		if d := calls - 2*exchanges; d != 0 && d != 2 {
			t.Fatalf("%s: %d Deliver calls over %d exchanges, want exactly 2 per exchange (+ at most one untraced)",
				what, calls, exchanges)
		}
	}
	_, baseCalls, baseEntries, baseRes := run(false)
	pairsUpTo("fault-free run", baseCalls, len(baseEntries))
	for _, e := range baseEntries {
		if e.Lost {
			t.Fatalf("pinned-Good channel lost an exchange at %v", e.Start)
		}
	}

	_, calls, entries, res := run(true)
	outside, inside, insideLost := 0, 0, 0
	for _, e := range entries {
		if inWindow(e) {
			inside++
			if e.Lost {
				insideLost++
			}
			// Zero delivery inside the window, whatever the chain state:
			// the fault gate fails the exchange before the model is asked.
			if e.DownBytes > 0 || e.UpBytes > 0 {
				t.Fatalf("exchange at %v inside the outage delivered %d+%d bytes",
					e.Start, e.DownBytes, e.UpBytes)
			}
			continue
		}
		outside++
		if e.Lost {
			t.Fatalf("exchange at %v outside the outage lost on a lossless channel", e.Start)
		}
	}
	if inside == 0 {
		t.Fatal("no exchanges inside the outage window — the engine stopped polling")
	}
	if insideLost == 0 {
		t.Fatal("no packet-bearing exchange inside the outage was marked lost")
	}
	pairsUpTo("faulted run", calls, outside)
	// The window's packets were really lost.
	f, _ := res.FlowByID(1)
	bf, _ := baseRes.FlowByID(1)
	if f.Delivered >= bf.Delivered {
		t.Fatalf("faulted run delivered %d >= fault-free %d", f.Delivered, bf.Delivered)
	}
}

// TestOutageFreezesChainState: with deterministic transition
// probabilities (good→bad and bad→good both 1) the chain state is a pure
// function of the number of Deliver calls. If the outage gating consumed
// draws or advanced the chain, the end-of-run state would disagree with
// the call parity; instead the chain resumes after the window exactly
// where it stopped.
func TestOutageFreezesChainState(t *testing.T) {
	for _, outage := range []bool{false, true} {
		ge := radio.NewGilbertElliott(1, 1, 0, 1)
		cnt := &countingRadio{inner: ge}
		if _, err := scenario.RunWith(geOutageSpec(outage), scenario.Hooks{Radio: cnt}); err != nil {
			t.Fatal(err)
		}
		if cnt.calls == 0 {
			t.Fatal("radio model never consulted")
		}
		// Starting Good, the state flips once per call: after n calls the
		// chain is Bad exactly when n is odd.
		if want := cnt.calls%2 == 1; ge.InBadState() != want {
			t.Fatalf("outage=%t: chain state %t after %d calls, want %t — the fault gating perturbed the chain",
				outage, ge.InBadState(), cnt.calls, want)
		}
	}
}
