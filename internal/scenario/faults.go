package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
)

// RecoverySpec arms the self-healing machinery of a run: the link
// supervision timeout every piconet engine runs, and the policy the
// runner applies to Guaranteed Service flows whose link the timeout
// declares dead. It is pure data and enters the spec's canonical
// fingerprint.
type RecoverySpec struct {
	// Supervision is the number of consecutive failed polls after which
	// a link is declared dead (the Bluetooth link supervision timeout,
	// scaled to polls). Zero disables supervision entirely; setting a
	// Policy with Supervision zero defaults it to 3.
	Supervision int
	// Policy is what happens to a suspended flow: faults.PolicyNone
	// leaves it suspended (contract lost, queue flushed),
	// faults.PolicyDegrade renegotiates it at a looser bound when the
	// declared fault window ends, faults.PolicyHandoff moves it to
	// another piconet make-before-break.
	Policy faults.Policy
	// DegradeFactor scales the spec's DelayTarget into the degraded
	// renegotiation target (PolicyDegrade only; values <= 1 default
	// to 4).
	DegradeFactor float64
	// HandoffTarget names the piconet handed-off flows move to
	// (PolicyHandoff only; "" picks the first other live piconet in
	// creation order).
	HandoffTarget string
}

// Flow fates (FlowResult.Fate): what the fault/recovery machinery did to
// a flow. The empty string means the flow was never touched.
const (
	// FateSuspended: the link died and no recovery policy retrieved the
	// flow — its guarantee is lost but its flushed queue cannot produce
	// late deliveries.
	FateSuspended = "suspended"
	// FateDegraded: the flow was renegotiated at a looser delay bound
	// after its link died, and is back in service.
	FateDegraded = "degraded"
	// FateMoved: the flow was handed off to another piconet; this row is
	// the retired source-side remnant (the target piconet carries the
	// live continuation under the same flow id).
	FateMoved = "moved"
	// FateCrashed: the flow's piconet master crashed; the flow is
	// orphaned.
	FateCrashed = "crashed"
)

// validateFaults statically checks the fault plan and recovery spec
// against the scenario: structurally valid windows, piconet names the run
// can ever create, and a known recovery policy. Expects the defaulted
// view (names filled, plan resolved).
func validateFaults(spec Spec) error {
	if err := spec.Faults.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if !spec.Recovery.Policy.Valid() {
		return fmt.Errorf("%w: unknown recovery policy %q", ErrBadSpec, spec.Recovery.Policy)
	}
	if spec.Recovery.DegradeFactor < 0 {
		return fmt.Errorf("%w: negative DegradeFactor %g", ErrBadSpec, spec.Recovery.DegradeFactor)
	}
	// Names the scenario can ever create: the initial piconets plus every
	// timeline add_piconet.
	known := make(map[string]bool)
	for _, ps := range spec.piconetSpecs() {
		known[ps.Name] = true
	}
	for _, ev := range spec.Timeline {
		if ev.AddPiconet != nil {
			known[ev.AddPiconet.Name] = true
		}
	}
	checkName := func(what, name string) error {
		if !known[name] {
			return fmt.Errorf("%w: %s targets unknown piconet %q", ErrBadSpec, what, name)
		}
		return nil
	}
	for _, o := range spec.Faults.Outages {
		if err := checkName("fault outage", o.Piconet); err != nil {
			return err
		}
	}
	for _, d := range spec.Faults.Departures {
		if err := checkName("fault departure", d.Piconet); err != nil {
			return err
		}
	}
	for _, c := range spec.Faults.Crashes {
		if err := checkName("master crash", c.Piconet); err != nil {
			return err
		}
	}
	if t := spec.Recovery.HandoffTarget; t != "" {
		if err := checkName("handoff target", t); err != nil {
			return err
		}
	}
	return nil
}

// onLinkDead is the supervision timeout's callback: the slave's link was
// declared dead at `at` after failing since `since`. Every installed
// Guaranteed Service flow at the slave is suspended — source cancelled,
// queue flushed, reservation released — with an OpSuspend record carrying
// the detection latency; then the configured recovery policy takes over.
func (p *piconetRunner) onLinkDead(slave piconet.SlaveID, since, at sim.Time) {
	r := p.r
	if r.err != nil || p.removed || p.crashed {
		return
	}
	var hit []piconet.FlowID
	for _, id := range p.pn.FlowsAt(slave) {
		cfg, _ := p.pn.FlowConfig(id)
		if cfg.Class != piconet.Guaranteed {
			continue
		}
		if p.routeOf[id] != nil {
			continue // routes suspend end-to-end, below
		}
		src, installed := p.sources[id]
		if !installed {
			continue // already suspended, moved or retired
		}
		r.s.Cancel(src.ev)
		delete(p.sources, id)
		if r.err = p.pn.SuspendFlow(id); r.err != nil {
			break
		}
		if _, isGS := p.ctrl.Find(id); isGS {
			if r.err = p.ctrl.Remove(id); r.err != nil {
				break
			}
		}
		p.fates[id] = FateSuspended
		p.accept(AdmissionRecord{
			Op: OpSuspend, Flow: id, Slave: slave,
			Latency: at - since,
			Reason:  "supervision timeout",
		})
		hit = append(hit, id)
	}
	if r.err == nil && len(hit) > 0 {
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err == nil {
			p.noteBounds()
			switch r.spec.Recovery.Policy {
			case faults.PolicyDegrade:
				for _, id := range hit {
					p.scheduleDegrade(id, slave)
				}
			case faults.PolicyHandoff:
				for _, id := range hit {
					p.applyHandoff(id, "", true)
					if r.err != nil {
						break
					}
				}
			}
		}
	}
	if r.err == nil {
		// Routes with a hop at the dead link suspend end-to-end: a broken
		// hop breaks the whole path, so every hop's reservation is
		// released, not just the local one.
		r.onRouteLinkDead(p, slave, since, at)
	}
	if r.err != nil {
		r.s.Stop()
	}
}

// scheduleDegrade arranges the graceful-degradation renegotiation of a
// suspended flow: if the compiled fault plan says the link is inside a
// declared window, the attempt waits for the window's end (a link that
// never returns is a rejected degrade); otherwise — supervision tripped
// on channel loss alone, or after the window — it renegotiates now.
func (p *piconetRunner) scheduleDegrade(id piconet.FlowID, slave piconet.SlaveID) {
	r := p.r
	now := r.s.Now()
	if pf := r.fsched.Piconet(p.name); pf != nil {
		if iv, down := pf.Covering(slave, now); down {
			if iv.End == faults.Forever {
				p.reject(OpDegrade, id, slave, "link never returns")
				return
			}
			r.s.Schedule(iv.End, func() { p.applyDegrade(id, slave) })
			return
		}
	}
	p.applyDegrade(id, slave)
}

// applyDegrade renegotiates a suspended flow at the degraded delay target
// (DegradeFactor × the spec's DelayTarget) through the paper's online
// admission test, resuming it on success. The old reservation was
// released at suspension; a refusal leaves the flow suspended.
func (p *piconetRunner) applyDegrade(id piconet.FlowID, slave piconet.SlaveID) {
	r := p.r
	if r.err != nil || p.removed || p.crashed || p.fates[id] != FateSuspended {
		return
	}
	g, ok := p.gsSpecs[id]
	if !ok {
		p.reject(OpDegrade, id, slave, "no flow spec recorded")
		return
	}
	target := time.Duration(float64(r.spec.DelayTarget) * r.spec.Recovery.DegradeFactor)
	pf, err := p.ctrl.AdmitForDelay(admission.DelayRequest{
		Request: admission.Request{
			ID:      id,
			Slave:   g.Slave,
			Dir:     g.Dir,
			Spec:    g.Spec(),
			Allowed: p.allowedFor(g.Allowed),
		},
		Target: target,
	})
	if err != nil {
		p.reject(OpDegrade, id, slave, err.Error())
		return
	}
	if r.err = p.pn.ResumeFlow(id); r.err == nil {
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err == nil {
			p.noteBounds()
			p.fates[id] = FateDegraded
			p.attachGSSource(g)
			p.pn.Kick()
			p.accept(AdmissionRecord{
				Op: OpDegrade, Flow: id, Slave: g.Slave,
				Bound: pf.Bound, Rate: pf.Request.Rate,
			})
		}
	}
	if r.err != nil {
		r.s.Stop()
	}
}

// handoffTarget resolves where a handed-off flow goes: the explicit
// request, the spec's HandoffTarget, or the first other live piconet in
// creation order.
func (p *piconetRunner) handoffTarget(to string) (*piconetRunner, string) {
	r := p.r
	if to == "" {
		to = r.spec.Recovery.HandoffTarget
	}
	if to != "" {
		q, ok := r.byName[to]
		if !ok {
			return nil, fmt.Sprintf("unknown piconet %q", to)
		}
		if q == p {
			return nil, "cannot move a flow to its own piconet"
		}
		if q.removed || q.crashed {
			return nil, fmt.Sprintf("piconet %q is out of service", to)
		}
		return q, ""
	}
	for _, q := range r.pns {
		if q != p && !q.removed && !q.crashed {
			return q, ""
		}
	}
	return nil, "no live piconet to hand off to"
}

// applyHandoff moves a Guaranteed Service flow to another piconet
// make-before-break: the target admits the flow — at its own
// interference-derated rates — before the source releases anything, so a
// refused admission leaves the flow exactly where it was. suspended says
// whether the flow is currently suspended (the recovery-policy path) or
// live (a move_flow timeline event).
func (p *piconetRunner) applyHandoff(id piconet.FlowID, to string, suspended bool) {
	r := p.r
	g, ok := p.gsSpecs[id]
	if !ok {
		p.reject(OpHandoff, id, 0, "flow is not a known GS flow")
		return
	}
	q, why := p.handoffTarget(to)
	if q == nil {
		p.reject(OpHandoff, id, g.Slave, why)
		return
	}
	if _, dup := q.pn.FlowConfig(id); dup {
		p.reject(OpHandoff, id, g.Slave, fmt.Sprintf("flow id %d already exists at %q", id, q.name))
		return
	}
	// Make: admission at the target first.
	pf, err := q.ctrl.AdmitForDelay(admission.DelayRequest{
		Request: admission.Request{
			ID:      id,
			Slave:   g.Slave,
			Dir:     g.Dir,
			Spec:    g.Spec(),
			Allowed: q.allowedFor(g.Allowed),
		},
		Target: r.spec.DelayTarget,
	})
	if err != nil {
		p.reject(OpHandoff, id, g.Slave, fmt.Sprintf("target %q: %v", q.name, err))
		return
	}
	if r.err = q.addSlave(g.Slave); r.err == nil {
		if r.err = q.pn.AddFlow(piconet.FlowConfig{
			ID: id, Slave: g.Slave, Dir: g.Dir,
			Class: piconet.Guaranteed, Allowed: q.allowedFor(g.Allowed),
		}); r.err == nil {
			if r.err = q.sched.Replan(q.ctrl.Flows()); r.err == nil {
				q.noteBounds()
				q.gsSpecs[id] = g
				q.attachGSSource(g)
				q.pn.Kick()
			}
		}
	}
	// Break: release at the source only once the target carries the flow.
	if r.err == nil {
		if !suspended {
			if src, installed := p.sources[id]; installed {
				r.s.Cancel(src.ev)
				delete(p.sources, id)
			}
			if _, isGS := p.ctrl.Find(id); isGS {
				if r.err = p.ctrl.Remove(id); r.err == nil {
					r.err = p.sched.Replan(p.ctrl.Flows())
				}
			}
		}
		if r.err == nil {
			p.noteBounds()
			if r.err = p.pn.RetireFlow(id); r.err == nil {
				p.fates[id] = FateMoved
				q.accept(AdmissionRecord{
					Op: OpHandoff, Flow: id, Slave: g.Slave,
					Bound: pf.Bound, Rate: pf.Request.Rate,
					Reason: fmt.Sprintf("from %q", p.name),
				})
			}
		}
	}
	if r.err != nil {
		r.s.Stop()
	}
}

// applyMove handles the move_flow timeline event: a make-before-break
// handoff of an installed flow, ordered by the scenario rather than the
// recovery policy (planned mobility instead of self-healing).
func (p *piconetRunner) applyMove(mv MoveFlow) {
	if p.routeOf[mv.Flow] != nil {
		p.reject(OpHandoff, mv.Flow, 0, "routed flows cannot be moved; their piconets are fixed by the route")
		return
	}
	if _, installed := p.sources[mv.Flow]; !installed {
		// Admission was rejected, or the flow already left/moved.
		p.reject(OpHandoff, mv.Flow, 0, "flow not installed")
		return
	}
	p.applyHandoff(mv.Flow, mv.To, false)
}

// applyCrash halts a piconet's master at the fault plan's instant: the
// decision loop stops permanently, the piconet stops interfering, and its
// flows are orphaned — sources keep generating into queues nobody will
// ever poll (deliveries simply end, so orphaned flows cannot produce late
// deliveries that violate their bounds).
func (r *runner) applyCrash(name string) {
	if r.err != nil {
		return
	}
	p, ok := r.byName[name]
	if !ok {
		r.reject(name, OpCrash, 0, 0, "unknown piconet")
		return
	}
	if p.removed {
		r.reject(name, OpCrash, 0, 0, "piconet removed")
		return
	}
	if p.crashed {
		r.reject(name, OpCrash, 0, 0, "piconet crashed")
		return
	}
	p.pn.Stop()
	if p.hop != nil {
		r.medium.Detach(p.hop)
	}
	p.crashed = true
	p.crashedAt = r.s.Now()
	for _, id := range p.pn.Flows() {
		cfg, _ := p.pn.FlowConfig(id)
		if cfg.Class != piconet.Guaranteed {
			continue
		}
		// Intact and degraded flows lose their master; flows already
		// suspended or moved keep their earlier fate.
		if f := p.fates[id]; f == "" || f == FateDegraded {
			p.fates[id] = FateCrashed
		}
	}
	r.accept(AdmissionRecord{Op: OpCrash, Piconet: name})
	// Routes traversing the crashed piconet are severed for good: no
	// recovery policy can resurrect a master that no longer polls.
	r.severRoutesThrough(name, FateCrashed, fmt.Sprintf("master of %q crashed", name))
	r.rederate(nil)
	if r.err != nil {
		r.s.Stop()
	}
}
