package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
)

// FaultScenarioConfig parameterises the fault-injection preset behind the
// E11 fault study and the registered "faults-*" scenarios: a loaded
// piconet whose links fail on a declared schedule, a standby piconet with
// spare capacity, and a recovery policy deciding what happens to the
// guarantees.
type FaultScenarioConfig struct {
	// GSFlows is the number of GS voice flows on the faulty piconet,
	// placed at slaves 1.. with alternating directions (default 2,
	// max 4 — slave 5 carries the standby piconet's own flow and slave 6
	// the best-effort pair). A piconet carries at most three voice flows
	// at token rate, so beyond two the handoff target cannot absorb the
	// whole population.
	GSFlows int
	// Outages is the number of link-outage windows injected on the
	// faulty piconet, cycling over its GS slaves (default 2).
	Outages int
	// OutageDuration is the length of each outage window (default
	// 400ms — comfortably above the supervision detection floor of
	// three failed polls, ~150ms at voice poll spacing).
	OutageDuration time.Duration
	// Policy is the recovery policy. faults.PolicyNone still arms the
	// supervision timeout (failed links are detected and their flows
	// suspended) but nothing retrieves the contracts — the no-recovery
	// baseline of the study.
	Policy faults.Policy
	// DelayTarget is the bound every GS flow requests (default 100ms —
	// just above the ~91ms token-rate minimum of one voice flow, so
	// targets are met exactly at near-token rates and the piconets keep
	// admission headroom for recoveries; tighter targets are clamped
	// best-effort and saturate every piconet).
	DelayTarget time.Duration
	// Duration is the simulated horizon (default 12s). The outage
	// schedule is derived from it, so experiment sweeps must pass their
	// horizon here rather than overriding Spec.Duration afterwards.
	Duration time.Duration
	// BEKbps is the per-direction best-effort load at the faulty
	// piconet's slave 6 (default 30; negative disables the pair).
	BEKbps float64
}

func (c FaultScenarioConfig) withDefaults() FaultScenarioConfig {
	if c.GSFlows < 1 {
		c.GSFlows = 2
	}
	if c.GSFlows > 4 {
		c.GSFlows = 4
	}
	if c.Outages < 0 {
		c.Outages = 0
	}
	if c.Outages == 0 {
		c.Outages = 2
	}
	if c.OutageDuration <= 0 {
		c.OutageDuration = 400 * time.Millisecond
	}
	if c.DelayTarget <= 0 {
		c.DelayTarget = 100 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 12 * time.Second
	}
	if c.BEKbps == 0 {
		c.BEKbps = 30
	}
	return c
}

// outagePlan derives the deterministic outage schedule: windows start at
// 2s (after admission and warm-up settle), spread evenly across the
// usable horizon, and cycle over the GS slaves so every flow is
// eventually hit. The last window always closes at least a second before
// the horizon so degraded renegotiations have time to deliver.
func (c FaultScenarioConfig) outagePlan(pn string) []faults.LinkOutage {
	const lead = 2 * time.Second
	tail := time.Second
	usable := c.Duration - lead - tail - c.OutageDuration
	if usable < 0 {
		usable = 0
	}
	spacing := usable
	if c.Outages > 1 {
		spacing = usable / time.Duration(c.Outages-1)
	}
	// Never overlap two windows: supervision suspends the slave's flows
	// once per episode, and the study wants each window to be a distinct
	// episode.
	if min := c.OutageDuration + 500*time.Millisecond; spacing < min {
		spacing = min
	}
	out := make([]faults.LinkOutage, 0, c.Outages)
	for j := 0; j < c.Outages; j++ {
		start := lead + time.Duration(j)*spacing
		out = append(out, faults.LinkOutage{
			Piconet: pn,
			Slave:   piconet.SlaveID(j%c.GSFlows + 1),
			Start:   start,
			End:     start + c.OutageDuration,
		})
	}
	return out
}

// FaultScenario builds the fault-injection workload: piconet "pn1"
// carries the GS voice flows and the best-effort floor and suffers the
// declared link outages; piconet "pn2" idles at low load as the handoff
// target. Supervision is always armed (three failed polls), so the three
// policy arms differ only in what happens after detection: nothing
// (PolicyNone), renegotiation at a 4× looser bound when the window ends
// (PolicyDegrade), or a make-before-break move to pn2 (PolicyHandoff).
func FaultScenario(cfg FaultScenarioConfig) Spec {
	cfg = cfg.withDefaults()
	faulty := PiconetSpec{Name: "pn1"}
	for k := 0; k < cfg.GSFlows; k++ {
		dir := piconet.Up
		if k%2 == 1 {
			dir = piconet.Down
		}
		faulty.GS = append(faulty.GS, GSFlow{
			ID:       piconet.FlowID(k + 1),
			Slave:    piconet.SlaveID(k + 1),
			Dir:      dir,
			Interval: 20 * time.Millisecond,
			MinSize:  144,
			MaxSize:  176,
			Phase:    time.Duration(k) * 5 * time.Millisecond,
		})
	}
	if cfg.BEKbps > 0 {
		faulty.BE = append(faulty.BE,
			BEFlow{ID: 100, Slave: 6, Dir: piconet.Down, RateKbps: cfg.BEKbps, PacketSize: 176},
			BEFlow{ID: 101, Slave: 6, Dir: piconet.Up, RateKbps: cfg.BEKbps, PacketSize: 176},
		)
	}
	// The standby piconet carries one flow of its own — it must be a
	// live, polled piconet, not an empty shell — at slave 5 / id 50, clear
	// of the movable set (ids 1..4 at slaves 1..4), so every handoff
	// admits without an identity clash.
	standby := PiconetSpec{Name: "pn2", GS: []GSFlow{{
		ID:       50,
		Slave:    5,
		Dir:      piconet.Up,
		Interval: 20 * time.Millisecond,
		MinSize:  144,
		MaxSize:  176,
		Phase:    3 * time.Millisecond,
	}}}
	policy := string(cfg.Policy)
	if policy == "" {
		policy = "none"
	}
	return Spec{
		Name:                       fmt.Sprintf("faults-%s", policy),
		Piconets:                   []PiconetSpec{faulty, standby},
		DelayTarget:                cfg.DelayTarget,
		Allowed:                    baseband.PaperTypes,
		Duration:                   cfg.Duration,
		Seed:                       1,
		ARQ:                        true,
		Interference:               InterferenceSpec{Enabled: true},
		InterferenceAwareAdmission: true,
		Faults:                     faults.Plan{Outages: cfg.outagePlan("pn1")},
		Recovery: RecoverySpec{
			Supervision: 3,
			Policy:      cfg.Policy,
		},
	}
}
