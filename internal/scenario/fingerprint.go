package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
)

// canonicalVersion tags the canonical rendering format. Bump it whenever
// the rendering below changes shape, so stale on-disk caches keyed on old
// fingerprints can never alias new ones. v2 renders the declarative radio
// spec and the timeline; v3 adds the scatternet axis: piconet arrays,
// interference parameters, batched traffic and piconet-addressed timeline
// events; v4 adds the interference-aware admission knobs (derating).
const canonicalVersion = "spec-canon/v4"

// WithDefaults returns the spec with every zero field replaced by the
// default scenario.Run would apply. Run itself uses it, so a spec and its
// defaulted twin are guaranteed to describe the same simulation — which is
// what lets Canonical (and the run cache built on it) treat them as one.
func (s Spec) WithDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = 30 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Allowed.Empty() {
		s.Allowed = baseband.PaperTypes
	}
	if s.Mode == 0 {
		s.Mode = core.VariableInterval
	}
	if s.BEPoller == "" {
		// The empty kind runs PFP (see NewBEPoller): normalize so the
		// implicit and explicit spellings of the same simulation share
		// one canonical rendering and cache entry.
		s.BEPoller = BEPFP
	}
	if s.DelayTarget <= 0 {
		s.DelayTarget = 40 * time.Millisecond
	}
	s.Interference = s.Interference.withDefaults()
	// The admission-derating knobs are inert without the interference
	// coupling, and the static override is inert without the knob or
	// outside (0,1): normalize the inert spellings to zero so equivalent
	// specs share one canonical rendering.
	if !s.Interference.Enabled {
		s.InterferenceAwareAdmission = false
	}
	if !s.InterferenceAwareAdmission || s.AdmissionDerate <= 0 || s.AdmissionDerate >= 1 {
		s.AdmissionDerate = 0
	}
	if s.scatternet() {
		s.Piconets = withPiconetNames(s.Piconets)
		// Resolve defaulted timeline targets to the first piconet's
		// name, so an explicit and an implicit address of the same
		// piconet describe — and fingerprint as — the same simulation.
		// Flat specs resolve to "" and stay untouched.
		def := s.Piconets[0].Name
		// Scatternet-level operations (piconet churn and routes) stay
		// unaddressed: they act on the scatternet, not a piconet.
		global := func(ev TimelineEvent) bool {
			return ev.AddPiconet != nil || ev.RemovePiconet != "" ||
				ev.AddRoute != nil || ev.RemoveRoute != piconet.None
		}
		for i, ev := range s.Timeline {
			if ev.Piconet != "" || global(ev) {
				continue
			}
			tl := append([]TimelineEvent(nil), s.Timeline...)
			for j := i; j < len(tl); j++ {
				if tl[j].Piconet == "" && !global(tl[j]) {
					tl[j].Piconet = def
				}
			}
			s.Timeline = tl
			break
		}
	}
	// Routes: resolve the defaulted source, budget and label, so implicit
	// and explicit spellings of the same route fingerprint identically.
	normRoute := func(rt RouteSpec) RouteSpec {
		if rt.Name == "" {
			rt.Name = fmt.Sprintf("route-%d", rt.ID)
		}
		if rt.Source == "" {
			rt.Source = s.defaultPiconetName()
		}
		if rt.DelayTarget <= 0 {
			rt.DelayTarget = s.DelayTarget
		}
		return rt
	}
	if len(s.Routes) > 0 {
		rts := make([]RouteSpec, len(s.Routes))
		for i, rt := range s.Routes {
			rts[i] = normRoute(rt)
		}
		s.Routes = rts
	}
	for i, ev := range s.Timeline {
		if ev.AddRoute == nil {
			continue
		}
		tl := append([]TimelineEvent(nil), s.Timeline...)
		for j := i; j < len(tl); j++ {
			if tl[j].AddRoute != nil {
				rt := normRoute(*tl[j].AddRoute)
				tl[j].AddRoute = &rt
			}
		}
		s.Timeline = tl
		break
	}
	// Recovery: a policy implies supervision; the degrade factor and
	// handoff target are inert outside their policies. Normalize so the
	// implicit and explicit spellings fingerprint identically.
	if s.Recovery.Supervision < 0 {
		s.Recovery.Supervision = 0
	}
	if s.Recovery.Policy != faults.PolicyNone && s.Recovery.Supervision == 0 {
		s.Recovery.Supervision = 3
	}
	if s.Recovery.Policy == faults.PolicyDegrade {
		if s.Recovery.DegradeFactor <= 1 {
			s.Recovery.DegradeFactor = 4
		}
	} else {
		s.Recovery.DegradeFactor = 0
	}
	if s.Recovery.Policy != faults.PolicyHandoff {
		s.Recovery.HandoffTarget = ""
	}
	// Fault-plan piconet names resolve to the first piconet, like
	// defaulted timeline targets (a no-op for flat specs, whose only
	// piconet is named "").
	s.Faults = s.Faults.Resolve(s.defaultPiconetName())
	return s
}

// Canonical renders every semantically relevant field of the spec into a
// deterministic text form: two specs produce the same string exactly when
// they describe the same simulation (after defaulting). The rendering is
// the input of Fingerprint and therefore of the harness run cache.
//
// Excluded on purpose: Name, a report label. Runtime hooks (tracers, live
// radio model instances) no longer live on the Spec at all — hooked runs
// bypass the cache by construction. The declarative radio spec and the
// full timeline are rendered field by field.
func (s Spec) Canonical() string {
	s = s.WithDefaults()
	var b strings.Builder
	fmt.Fprintln(&b, canonicalVersion)
	fmt.Fprintf(&b, "target=%d mode=%d rules=%d/%t poller=%q pfp=%g\n",
		int64(s.DelayTarget), int(s.Mode), uint64(s.Rules), s.RulesSet,
		string(s.BEPoller), s.PFPThreshold)
	fmt.Fprintf(&b, "allowed=%d dur=%d seed=%d arq=%t recovery=%t nopiggy=%t diraware=%t\n",
		uint64(s.Allowed), int64(s.Duration), s.Seed,
		s.ARQ, s.LossRecovery, s.WithoutPiggybacking, s.DirectionAware)
	fmt.Fprintf(&b, "radio=%s\n", s.Radio.canonical())
	fmt.Fprintf(&b, "batch=%t interference=%t ch=%d win=%d iaa=%t derate=%g\n",
		s.BatchTraffic, s.Interference.Enabled, s.Interference.Channels,
		int64(s.Interference.Window), s.InterferenceAwareAdmission, s.AdmissionDerate)
	// Fault plan and recovery render only when present, so fault-free
	// specs keep their pre-fault fingerprints (and cache entries move only
	// via the code-version salt).
	for _, o := range s.Faults.Outages {
		fmt.Fprintf(&b, "fault-outage pn=%q slave=%d start=%d end=%d\n",
			o.Piconet, uint64(o.Slave), int64(o.Start), int64(o.End))
	}
	for _, d := range s.Faults.Departures {
		fmt.Fprintf(&b, "fault-depart pn=%q slave=%d at=%d return=%d\n",
			d.Piconet, uint64(d.Slave), int64(d.At), int64(d.ReturnAt))
	}
	for _, c := range s.Faults.Crashes {
		fmt.Fprintf(&b, "fault-crash pn=%q at=%d\n", c.Piconet, int64(c.At))
	}
	if s.Recovery != (RecoverySpec{}) {
		fmt.Fprintf(&b, "recovery sup=%d policy=%q degrade=%g target=%q\n",
			s.Recovery.Supervision, string(s.Recovery.Policy),
			s.Recovery.DegradeFactor, s.Recovery.HandoffTarget)
	}
	// Bridges and routes render only when present, like the fault plan, so
	// bridge-free specs keep their pre-bridge fingerprints byte-identically.
	for _, br := range s.Bridges {
		fmt.Fprintf(&b, "bridge name=%q period=%d\n", br.Name, int64(br.Period))
		for _, rs := range br.Residency {
			fmt.Fprintf(&b, "bridge-res pn=%q slave=%d start=%d end=%d\n",
				rs.Piconet, uint64(rs.Slave), int64(rs.Start), int64(rs.End))
		}
	}
	// Route names are report labels (like Spec.Name) and stay excluded.
	canonRoute := func(prefix string, at time.Duration, rt RouteSpec) {
		fmt.Fprintf(&b, "%s id=%d src=%q via=%q slave=%d dir=%d ival=%d min=%d max=%d phase=%d allowed=%d target=%d naive=%t at=%d\n",
			prefix, uint64(rt.ID), rt.Source, strings.Join(rt.Bridges, ","),
			uint64(rt.Slave), int(rt.Dir), int64(rt.Interval), rt.MinSize, rt.MaxSize,
			int64(rt.Phase), uint64(rt.Allowed), int64(rt.DelayTarget), rt.Naive, int64(at))
	}
	for _, rt := range s.Routes {
		canonRoute("route", 0, rt)
	}
	canonGS := func(prefix string, at time.Duration, g GSFlow) {
		fmt.Fprintf(&b, "%s id=%d slave=%d dir=%d ival=%d min=%d max=%d phase=%d allowed=%d at=%d\n",
			prefix, uint64(g.ID), uint64(g.Slave), int(g.Dir), int64(g.Interval),
			g.MinSize, g.MaxSize, int64(g.Phase), uint64(g.Allowed), int64(at))
	}
	canonBE := func(prefix string, at time.Duration, f BEFlow) {
		fmt.Fprintf(&b, "%s id=%d slave=%d dir=%d rate=%g size=%d phase=%d allowed=%d at=%d\n",
			prefix, uint64(f.ID), uint64(f.Slave), int(f.Dir), f.RateKbps,
			f.PacketSize, int64(f.Phase), uint64(f.Allowed), int64(at))
	}
	canonPiconet := func(ps PiconetSpec) {
		for _, g := range ps.GS {
			canonGS("gs", 0, g)
		}
		for _, f := range ps.BE {
			canonBE("be", 0, f)
		}
		for _, l := range ps.SCO {
			fmt.Fprintf(&b, "sco slave=%d type=%d\n", uint64(l.Slave), int(l.Type))
		}
	}
	if s.scatternet() {
		for _, ps := range s.Piconets {
			fmt.Fprintf(&b, "piconet name=%q\n", ps.Name)
			canonPiconet(ps)
		}
	} else {
		// Flat specs render without a piconet header; a one-piconet
		// scatternet spec is the same simulation but a distinct content
		// address (its flows are piconet-addressed in the result).
		canonPiconet(PiconetSpec{GS: s.GS, BE: s.BE, SCO: s.SCO})
	}
	for _, ev := range s.Timeline {
		switch {
		case ev.AddGS != nil:
			canonGS(fmt.Sprintf("tl-add-gs pn=%q", ev.Piconet), ev.At, *ev.AddGS)
		case ev.AddBE != nil:
			canonBE(fmt.Sprintf("tl-add-be pn=%q", ev.Piconet), ev.At, *ev.AddBE)
		case ev.Remove != piconet.None:
			fmt.Fprintf(&b, "tl-remove pn=%q id=%d at=%d\n", ev.Piconet, uint64(ev.Remove), int64(ev.At))
		case ev.AddSCO != nil:
			fmt.Fprintf(&b, "tl-add-sco pn=%q slave=%d type=%d at=%d\n",
				ev.Piconet, uint64(ev.AddSCO.Slave), int(ev.AddSCO.Type), int64(ev.At))
		case ev.DropSCO != 0:
			fmt.Fprintf(&b, "tl-drop-sco pn=%q slave=%d at=%d\n", ev.Piconet, uint64(ev.DropSCO), int64(ev.At))
		case ev.AddPiconet != nil:
			fmt.Fprintf(&b, "tl-add-piconet name=%q at=%d\n", ev.AddPiconet.Name, int64(ev.At))
			canonPiconet(*ev.AddPiconet)
		case ev.RemovePiconet != "":
			fmt.Fprintf(&b, "tl-remove-piconet name=%q at=%d\n", ev.RemovePiconet, int64(ev.At))
		case ev.Move != nil:
			fmt.Fprintf(&b, "tl-move pn=%q id=%d to=%q at=%d\n",
				ev.Piconet, uint64(ev.Move.Flow), ev.Move.To, int64(ev.At))
		case ev.AddRoute != nil:
			canonRoute("tl-add-route", ev.At, *ev.AddRoute)
		case ev.RemoveRoute != piconet.None:
			fmt.Fprintf(&b, "tl-remove-route id=%d at=%d\n", uint64(ev.RemoveRoute), int64(ev.At))
		case ev.Renegotiate != nil:
			fmt.Fprintf(&b, "tl-renegotiate pn=%q id=%d target=%d at=%d\n",
				ev.Piconet, uint64(ev.Renegotiate.Flow), int64(ev.Renegotiate.Target), int64(ev.At))
		}
	}
	return b.String()
}

// Fingerprint is the SHA-256 of the canonical rendering, hex encoded: a
// content address for the complete run specification (spec plus seed plus
// horizon). The harness cache keys on it, combined with a code-version
// salt.
func (s Spec) Fingerprint() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:])
}
