package scenario

import (
	"strings"
	"testing"
	"time"

	"bluegs/internal/faults"
)

func TestCanonicalDefaultsInvariant(t *testing.T) {
	// A spec and its explicitly defaulted twin describe the same
	// simulation, so they must share a canonical form.
	bare := Paper(40 * time.Millisecond)
	bare.Duration, bare.Seed = 0, 0
	full := bare
	full.Duration, full.Seed = 30*time.Second, 1
	if bare.Canonical() != full.Canonical() {
		t.Fatalf("defaulted specs diverge:\n%s\nvs\n%s", bare.Canonical(), full.Canonical())
	}
	if bare.Fingerprint() != full.Fingerprint() {
		t.Fatal("defaulted specs fingerprint differently")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Paper(40 * time.Millisecond)
	base.Duration = 10 * time.Second
	fp := base.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}

	mutate := map[string]func(*Spec){
		"seed":      func(s *Spec) { s.Seed = 2 },
		"duration":  func(s *Spec) { s.Duration = 11 * time.Second },
		"target":    func(s *Spec) { s.DelayTarget = 42 * time.Millisecond },
		"poller":    func(s *Spec) { s.BEPoller = BERoundRobin },
		"radio":     func(s *Spec) { s.Radio = BERRadio(1e-5) },
		"ber-rate":  func(s *Spec) { s.Radio = BERRadio(2e-5) },
		"arq":       func(s *Spec) { s.ARQ = true },
		"gs-flow":   func(s *Spec) { s.GS[0].MaxSize = 180 },
		"be-flow":   func(s *Spec) { s.BE[0].RateKbps = 42 },
		"gs-phase":  func(s *Spec) { s.GS[1].Phase = 6 * time.Millisecond },
		"dir-aware": func(s *Spec) { s.DirectionAware = true },
		"interference": func(s *Spec) {
			s.Interference.Enabled = true
		},
		"iaa": func(s *Spec) {
			s.Interference.Enabled = true
			s.InterferenceAwareAdmission = true
		},
		"static-derate": func(s *Spec) {
			s.Interference.Enabled = true
			s.InterferenceAwareAdmission = true
			s.AdmissionDerate = 0.9
		},
	}
	seen := map[string]string{fp: "base"}
	for name, f := range mutate {
		spec := base
		spec.GS = append([]GSFlow(nil), base.GS...)
		spec.BE = append([]BEFlow(nil), base.BE...)
		f(&spec)
		got := spec.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Fatalf("mutation %q collided with %q", name, prev)
		}
		seen[got] = name
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	a := Paper(40 * time.Millisecond)
	b := a
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Name must not enter the fingerprint")
	}
}

// TestCanonicalDeratingKnobs: the interference-aware admission fields
// enter the canonical rendering, but only in the combinations that change
// the simulation — a flat (derating-off) spec keeps one canonical form no
// matter how the inert knobs are set, so pre-existing cached tables keyed
// on flat specs stay reachable across the sim-v6 bump.
func TestCanonicalDeratingKnobs(t *testing.T) {
	flat := Paper(40 * time.Millisecond)
	if c := flat.Canonical(); !strings.Contains(c, "iaa=false derate=0") {
		t.Fatalf("flat canonical form misses the derating knobs:\n%s", c)
	}
	if c := flat.Canonical(); !strings.Contains(c, "spec-canon/v4") {
		t.Fatalf("canonical form not tagged v4:\n%s", c)
	}

	// Interference-aware admission without the interference coupling is
	// inert and must normalise away.
	inert := flat
	inert.InterferenceAwareAdmission = true
	inert.AdmissionDerate = 0.9
	if inert.Fingerprint() != flat.Fingerprint() {
		t.Fatal("iaa without Interference.Enabled must not change the fingerprint")
	}

	// An out-of-range static derate normalises to 0 (use the medium
	// estimate) without erasing the iaa flag itself.
	on := flat
	on.Interference.Enabled = true
	on.InterferenceAwareAdmission = true
	wild := on
	wild.AdmissionDerate = 1.5
	if wild.Fingerprint() != on.Fingerprint() {
		t.Fatal("out-of-range AdmissionDerate must normalise to the estimate default")
	}
	if c := on.WithDefaults().Canonical(); !strings.Contains(c, "iaa=true derate=0") {
		t.Fatalf("enabled iaa lost in canonical form:\n%s", c)
	}
	static := on
	static.AdmissionDerate = 0.875
	if !strings.Contains(static.Canonical(), "derate=0.875") {
		t.Fatalf("static derate lost in canonical form:\n%s", static.Canonical())
	}
}

func TestCanonicalMentionsRadioParameters(t *testing.T) {
	s := Paper(40 * time.Millisecond)
	s.Radio = BERRadio(1e-5)
	if c := s.Canonical(); !strings.Contains(c, "1e-05") {
		t.Fatalf("canonical form loses the BER parameter:\n%s", c)
	}
}

// TestCanonicalFaultFreeStability: the fault plan, the recovery block and
// the move_flow event render into the canonical form only when present,
// so every pre-existing fault-free spec keeps its exact fingerprint — and
// its cache entries move only via the code-version salt, never silently.
func TestCanonicalFaultFreeStability(t *testing.T) {
	for _, spec := range []Spec{
		Paper(40 * time.Millisecond),
		Baseline(BEPFP),
		Scatternet(ScatternetConfig{}),
	} {
		base := spec.Fingerprint()
		canon := spec.Canonical()
		for _, banned := range []string{"fault-outage", "fault-depart", "fault-crash", "recovery ", "tl-move"} {
			if strings.Contains(canon, banned) {
				t.Fatalf("%s: fault-free canonical form contains %q:\n%s", spec.Name, banned, canon)
			}
		}

		// Each fault feature must be semantically relevant: adding it
		// moves the fingerprint, stripping it restores the original.
		faulted := spec
		faulted.Faults = faults.Plan{Outages: []faults.LinkOutage{{Slave: 1, Start: time.Second, End: 2 * time.Second}}}
		if faulted.Fingerprint() == base {
			t.Fatalf("%s: an outage plan did not change the fingerprint", spec.Name)
		}
		recovered := spec
		recovered.Recovery = RecoverySpec{Supervision: 3, Policy: faults.PolicyDegrade}
		if recovered.Fingerprint() == base {
			t.Fatalf("%s: a recovery policy did not change the fingerprint", spec.Name)
		}
		moved := spec
		moved.Timeline = append([]TimelineEvent(nil), spec.Timeline...)
		moved.Timeline = append(moved.Timeline, MoveFlowAt(time.Second, 1, "elsewhere"))
		if moved.Fingerprint() == base {
			t.Fatalf("%s: a move_flow event did not change the fingerprint", spec.Name)
		}
		if spec.Fingerprint() != base {
			t.Fatalf("%s: fingerprint unstable across repeated renderings", spec.Name)
		}
	}
}
