package scenario

import (
	"strings"
	"testing"
	"time"
)

func TestCanonicalDefaultsInvariant(t *testing.T) {
	// A spec and its explicitly defaulted twin describe the same
	// simulation, so they must share a canonical form.
	bare := Paper(40 * time.Millisecond)
	bare.Duration, bare.Seed = 0, 0
	full := bare
	full.Duration, full.Seed = 30*time.Second, 1
	if bare.Canonical() != full.Canonical() {
		t.Fatalf("defaulted specs diverge:\n%s\nvs\n%s", bare.Canonical(), full.Canonical())
	}
	if bare.Fingerprint() != full.Fingerprint() {
		t.Fatal("defaulted specs fingerprint differently")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Paper(40 * time.Millisecond)
	base.Duration = 10 * time.Second
	fp := base.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}

	mutate := map[string]func(*Spec){
		"seed":      func(s *Spec) { s.Seed = 2 },
		"duration":  func(s *Spec) { s.Duration = 11 * time.Second },
		"target":    func(s *Spec) { s.DelayTarget = 42 * time.Millisecond },
		"poller":    func(s *Spec) { s.BEPoller = BERoundRobin },
		"radio":     func(s *Spec) { s.Radio = BERRadio(1e-5) },
		"ber-rate":  func(s *Spec) { s.Radio = BERRadio(2e-5) },
		"arq":       func(s *Spec) { s.ARQ = true },
		"gs-flow":   func(s *Spec) { s.GS[0].MaxSize = 180 },
		"be-flow":   func(s *Spec) { s.BE[0].RateKbps = 42 },
		"gs-phase":  func(s *Spec) { s.GS[1].Phase = 6 * time.Millisecond },
		"dir-aware": func(s *Spec) { s.DirectionAware = true },
	}
	seen := map[string]string{fp: "base"}
	for name, f := range mutate {
		spec := base
		spec.GS = append([]GSFlow(nil), base.GS...)
		spec.BE = append([]BEFlow(nil), base.BE...)
		f(&spec)
		got := spec.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Fatalf("mutation %q collided with %q", name, prev)
		}
		seen[got] = name
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	a := Paper(40 * time.Millisecond)
	b := a
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("Name must not enter the fingerprint")
	}
}

func TestCanonicalMentionsRadioParameters(t *testing.T) {
	s := Paper(40 * time.Millisecond)
	s.Radio = BERRadio(1e-5)
	if c := s.Canonical(); !strings.Contains(c, "1e-05") {
		t.Fatalf("canonical form loses the BER parameter:\n%s", c)
	}
}
