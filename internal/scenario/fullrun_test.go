package scenario

import (
	"testing"
	"time"

	"bluegs/internal/piconet"
)

// TestPaperFullHorizon runs the paper's exact evaluation horizon: 530
// simulated seconds of the Fig. 4 piconet (§4.2: "Simulation runs, each of
// a simulation time of 530 seconds (25000 samples of each GS flow), showed
// that the requested delay bound is not exceeded"). Skipped under -short.
func TestPaperFullHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("530 s horizon")
	}
	spec := Paper(38 * time.Millisecond)
	spec.Duration = 530 * time.Second
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v := res.BoundViolations(); len(v) != 0 {
		t.Fatalf("bound violations over 530s: %+v", v)
	}
	for _, id := range []piconet.FlowID{1, 2, 3, 4} {
		f, ok := res.FlowByID(id)
		if !ok {
			t.Fatalf("flow %d missing", id)
		}
		// The paper reports 25000 samples per flow; one packet per
		// 20 ms over 530 s delivers ~26500.
		if f.Delivered < 25000 {
			t.Fatalf("flow %d: %d samples, want >= 25000", id, f.Delivered)
		}
		if f.Kbps < 63.5 || f.Kbps > 64.5 {
			t.Fatalf("flow %d: %.2f kbps, want 64", id, f.Kbps)
		}
	}
	// §4.2 capacity at this mid-sweep requirement: GS exactly 256 kbps.
	if gs := res.TotalKbps(piconet.Guaranteed); gs < 255 || gs > 257 {
		t.Fatalf("GS total = %.1f kbps", gs)
	}
}
