package scenario

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
)

// randomTimeline appends a burst of randomized-but-valid events to a
// spec: flow arrivals and departures, SCO churn, and piconet churn. Flow
// ids start far above any preset's range; slaves stay within 1..7 so a
// piconet can always host them; piconet removals only target
// fuzz-added piconets (a preset's piconets stay up). Runtime rejections
// (admission refusals, SCO that does not fit) are expected outcomes —
// what the smoke asserts is that no preset turns them into a fatal
// engine error.
func randomTimeline(rng *rand.Rand, spec Spec) []TimelineEvent {
	dirs := []piconet.Direction{piconet.Up, piconet.Down}
	targets := []string{""}
	if spec.scatternet() {
		targets = targets[:0]
		for _, ps := range spec.Piconets {
			targets = append(targets, ps.Name)
		}
	}
	horizon := spec.Duration
	if horizon <= 0 {
		horizon = 2 * time.Second
	}
	var events []TimelineEvent
	var added []piconet.FlowID
	addedTarget := map[piconet.FlowID]string{}
	var fuzzPNs []string
	var routes []piconet.FlowID
	for _, rt := range spec.Routes {
		routes = append(routes, rt.ID)
	}
	id := piconet.FlowID(10000)
	at := func() time.Duration { return time.Duration(rng.Int63n(int64(horizon))) }
	for e := 0; e < 12; e++ {
		target := targets[rng.Intn(len(targets))]
		switch rng.Intn(8) {
		case 0:
			events = append(events, AddGSAt(at(), GSFlow{
				ID: id, Slave: piconet.SlaveID(1 + rng.Intn(7)), Dir: dirs[rng.Intn(2)],
				Interval: time.Duration(10+rng.Intn(40)) * time.Millisecond,
				MinSize:  100, MaxSize: 176,
			}).For(target))
			added, addedTarget[id] = append(added, id), target
			id++
		case 1:
			events = append(events, AddBEAt(at(), BEFlow{
				ID: id, Slave: piconet.SlaveID(1 + rng.Intn(7)), Dir: dirs[rng.Intn(2)],
				RateKbps: 5 + 40*rng.Float64(), PacketSize: 176,
			}).For(target))
			added, addedTarget[id] = append(added, id), target
			id++
		case 2:
			if len(added) == 0 {
				continue
			}
			victim := added[rng.Intn(len(added))]
			events = append(events, RemoveAt(at(), victim).For(addedTarget[victim]))
		case 3:
			types := []baseband.PacketType{baseband.TypeHV1, baseband.TypeHV2, baseband.TypeHV3}
			events = append(events, AddSCOAt(at(), SCOLinkSpec{
				Slave: piconet.SlaveID(1 + rng.Intn(7)), Type: types[rng.Intn(3)],
			}).For(target))
		case 4:
			events = append(events, DropSCOAt(at(), piconet.SlaveID(1+rng.Intn(7))).For(target))
		case 5:
			if len(fuzzPNs) > 0 && rng.Intn(2) == 0 {
				events = append(events, RemovePiconetAt(at(), fuzzPNs[rng.Intn(len(fuzzPNs))]))
				continue
			}
			name := fmt.Sprintf("fuzz-pn-%d", len(fuzzPNs)+1)
			events = append(events, AddPiconetAt(at(), PiconetSpec{
				Name: name,
				BE:   []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 20, PacketSize: 176}},
			}))
			fuzzPNs = append(fuzzPNs, name)
			targets = append(targets, name)
		case 6:
			// Route churn: add a single-hop route (valid in any piconet,
			// batch traffic aside), or remove one added earlier — or the
			// preset's own route, exercising mid-run route teardown.
			if spec.BatchTraffic {
				continue
			}
			if len(routes) > 0 && rng.Intn(3) == 0 {
				victim := routes[rng.Intn(len(routes))]
				events = append(events, RemoveRouteAt(at(), victim))
				continue
			}
			events = append(events, AddRouteAt(at(), RouteSpec{
				ID: id, Source: target, Slave: piconet.SlaveID(1 + rng.Intn(7)), Dir: dirs[rng.Intn(2)],
				Interval: time.Duration(10+rng.Intn(40)) * time.Millisecond,
				MinSize:  100, MaxSize: 176,
				DelayTarget: time.Duration(30+rng.Intn(120)) * time.Millisecond,
			}))
			routes = append(routes, id)
			id++
		case 7:
			// Renegotiation: retarget an earlier fuzz-added flow (runtime
			// rejections — BE flows, not-yet-installed flows, infeasible
			// targets — are expected; engine errors are not).
			if len(added) == 0 {
				continue
			}
			victim := added[rng.Intn(len(added))]
			events = append(events, RenegotiateAt(at(), victim,
				time.Duration(20+rng.Intn(100))*time.Millisecond).For(addedTarget[victim]))
		}
	}
	return events
}

// TestRegistryFuzzSmoke runs every registered scenario — the scatternet
// presets included — under randomized 2 s timelines (fixed seeds, so CI
// failures reproduce). The invariant: whatever churn the timeline throws
// at a preset, the run completes; refusals land in the admission log,
// never as engine errors. The CI fuzz-smoke step invokes exactly this
// test.
func TestRegistryFuzzSmoke(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				spec, ok := Lookup(name)
				if !ok {
					t.Fatal("registered name does not resolve")
				}
				spec.Duration = 2 * time.Second
				rng := rand.New(rand.NewSource(seed))
				spec.Timeline = append(spec.Timeline, randomTimeline(rng, spec)...)
				res, err := Run(spec)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Elapsed != spec.Duration {
					t.Fatalf("seed %d: run stopped early at %v", seed, res.Elapsed)
				}
			}
		})
	}
}

// TestRegistryFuzzSmokeKernelWorkers reruns the fuzz smoke over every
// registered preset with the sharded kernel multiplexed onto several
// workers, asserting the fingerprint-keyed result — report, admission
// log, kernel event count — is byte-identical to the single-worker run.
// Presets whose timeline churn forces a single shard group exercise the
// dispatch (and its collapse to the legacy kernel) instead.
func TestRegistryFuzzSmokeKernelWorkers(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				spec, ok := Lookup(name)
				if !ok {
					t.Fatal("registered name does not resolve")
				}
				spec.Duration = 2 * time.Second
				rng := rand.New(rand.NewSource(seed))
				spec.Timeline = append(spec.Timeline, randomTimeline(rng, spec)...)
				fp := spec.Fingerprint()
				spec.KernelWorkers = 1
				ref, err := Run(spec)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				spec.KernelWorkers = 4
				if spec.Fingerprint() != fp {
					t.Fatalf("seed %d: KernelWorkers changed the fingerprint", seed)
				}
				got, err := Run(spec)
				if err != nil {
					t.Fatalf("seed %d workers=4: %v", seed, err)
				}
				if got.Events != ref.Events {
					t.Fatalf("seed %d: %d kernel events at 4 workers, want %d",
						seed, got.Events, ref.Events)
				}
				if got.Report().String() != ref.Report().String() {
					t.Fatalf("seed %d: report diverged across kernel worker counts", seed)
				}
				if len(got.Admissions) != len(ref.Admissions) {
					t.Fatalf("seed %d: admission log diverged: %d vs %d records",
						seed, len(got.Admissions), len(ref.Admissions))
				}
			}
		})
	}
}

// TestRegistryFuzzSmokeInterferenceAware reruns the fuzz smoke with
// interference-aware admission switched on over every preset: the FH
// coupling enabled and a static derate pinned at the 16-piconet estimate,
// conservative enough that whatever piconet churn the random timeline
// produces stays inside every admitted contract. The invariants: the run
// completes, no admitted GS flow violates its (derated) bound, and the
// new spec fields survive a JSON round trip fingerprint-intact.
func TestRegistryFuzzSmokeInterferenceAware(t *testing.T) {
	s16 := 1 - radio.ExpectedCollisionProb(15, 0)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				spec, ok := Lookup(name)
				if !ok {
					t.Fatal("registered name does not resolve")
				}
				spec.Duration = 2 * time.Second
				spec.Interference.Enabled = true
				spec.InterferenceAwareAdmission = true
				spec.AdmissionDerate = s16
				rng := rand.New(rand.NewSource(seed))
				spec.Timeline = append(spec.Timeline, randomTimeline(rng, spec)...)

				data, err := Marshal(spec)
				if err != nil {
					t.Fatalf("seed %d: marshal: %v", seed, err)
				}
				decoded, err := Unmarshal(data)
				if err != nil {
					t.Fatalf("seed %d: unmarshal: %v", seed, err)
				}
				if !decoded.InterferenceAwareAdmission || decoded.AdmissionDerate != s16 {
					t.Fatalf("seed %d: derating knobs lost in round trip: iaa=%v derate=%g",
						seed, decoded.InterferenceAwareAdmission, decoded.AdmissionDerate)
				}
				if decoded.Fingerprint() != spec.Fingerprint() {
					t.Fatalf("seed %d: fingerprint drifted across JSON round trip", seed)
				}

				res, err := Run(decoded)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Elapsed != spec.Duration {
					t.Fatalf("seed %d: run stopped early at %v", seed, res.Elapsed)
				}
				for _, f := range res.Flows {
					if f.Class == piconet.Guaranteed && f.DelayMax > f.Bound {
						t.Fatalf("seed %d: flow %d (%s) violated its derated bound: max %v > %v",
							seed, f.ID, f.Piconet, f.DelayMax, f.Bound)
					}
				}
			}
		})
	}
}
