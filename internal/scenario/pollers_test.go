package scenario

import (
	"testing"
	"time"

	"bluegs/internal/piconet"
)

// TestGSBoundsHoldUnderEveryBEPoller: the Guaranteed Service guarantee must
// be independent of which best-effort discipline spends the leftover
// capacity — GS polls always preempt at decision points and any BE
// exchange is covered by the Xi term.
func TestGSBoundsHoldUnderEveryBEPoller(t *testing.T) {
	kinds := []BEPollerKind{
		BEPFP, BERoundRobin, BEExhaustive, BEFEP, BEEDC, BEDemand, BEHOL,
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			spec := Paper(36 * time.Millisecond)
			spec.Duration = 10 * time.Second
			spec.BEPoller = kind
			res, err := Run(spec)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if v := res.BoundViolations(); len(v) != 0 {
				t.Fatalf("poller %s: %d bound violations: %+v", kind, len(v), v)
			}
			// GS throughput must be untouched by the BE discipline.
			if gs := res.TotalKbps(piconet.Guaranteed); gs < 250 {
				t.Fatalf("poller %s: GS total %.1f kbps", kind, gs)
			}
			// Every discipline moves at least some best-effort data.
			if be := res.TotalKbps(piconet.BestEffort); be < 100 {
				t.Fatalf("poller %s: BE total %.1f kbps", kind, be)
			}
		})
	}
}

// TestBEPollerChoiceAffectsOnlyBE: GS per-flow results are identical across
// BE disciplines up to the scheduling interleaving — specifically, the
// delay bound and admission plan must not depend on the BE poller at all.
func TestBEPollerChoiceAffectsOnlyBE(t *testing.T) {
	plan := func(kind BEPollerKind) []time.Duration {
		spec := Paper(40 * time.Millisecond)
		spec.Duration = 2 * time.Second
		spec.BEPoller = kind
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("Run(%s): %v", kind, err)
		}
		var bounds []time.Duration
		for _, pf := range res.Admitted {
			bounds = append(bounds, pf.Bound)
		}
		return bounds
	}
	ref := plan(BEPFP)
	for _, kind := range []BEPollerKind{BERoundRobin, BEFEP} {
		got := plan(kind)
		if len(got) != len(ref) {
			t.Fatalf("plan size differs for %s", kind)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("bound %d differs under %s: %v vs %v", i, kind, got[i], ref[i])
			}
		}
	}
}
