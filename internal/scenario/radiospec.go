package scenario

import (
	"fmt"

	"bluegs/internal/radio"
)

// Radio model kinds (RadioSpec.Kind).
const (
	RadioIdeal          = "ideal"
	RadioBER            = "ber"
	RadioGilbertElliott = "gilbert-elliott"
)

// RadioSpec names a radio channel model declaratively: a kind plus its
// parameters. Unlike a live radio.Model instance it is pure data — it
// serializes, fingerprints, and constructs a fresh (independently seeded)
// model for every run, so stateful models like Gilbert–Elliott can never
// leak state between the runs of a sweep. The zero value is the ideal
// channel.
type RadioSpec struct {
	// Kind selects the model: "" or "ideal", "ber", "gilbert-elliott".
	Kind string `json:"kind,omitempty"`
	// BER and FECGain parameterise the independent bit-error channel
	// (FECGain zero uses the model default).
	BER     float64 `json:"ber,omitempty"`
	FECGain float64 `json:"fec_gain,omitempty"`
	// PGoodToBad/PBadToGood/GoodLoss/BadLoss parameterise the two-state
	// bursty Gilbert–Elliott channel.
	PGoodToBad float64 `json:"p_good_to_bad,omitempty"`
	PBadToGood float64 `json:"p_bad_to_good,omitempty"`
	GoodLoss   float64 `json:"good_loss,omitempty"`
	BadLoss    float64 `json:"bad_loss,omitempty"`
}

// IdealRadio returns the ideal (lossless) channel spec.
func IdealRadio() RadioSpec { return RadioSpec{} }

// BERRadio returns an independent bit-error channel spec.
func BERRadio(ber float64) RadioSpec { return RadioSpec{Kind: RadioBER, BER: ber} }

// GilbertElliottRadio returns a two-state bursty channel spec.
func GilbertElliottRadio(pGoodToBad, pBadToGood, goodLoss, badLoss float64) RadioSpec {
	return RadioSpec{
		Kind:       RadioGilbertElliott,
		PGoodToBad: pGoodToBad, PBadToGood: pBadToGood,
		GoodLoss: goodLoss, BadLoss: badLoss,
	}
}

// IsIdeal reports whether the spec names the lossless default.
func (r RadioSpec) IsIdeal() bool { return r.Kind == "" || r.Kind == RadioIdeal }

// Model constructs a fresh radio model instance for one run.
func (r RadioSpec) Model() (radio.Model, error) {
	switch r.Kind {
	case "", RadioIdeal:
		return radio.Ideal{}, nil
	case RadioBER:
		return radio.BER{BitErrorRate: r.BER, FECGain: r.FECGain}, nil
	case RadioGilbertElliott:
		return radio.NewGilbertElliott(r.PGoodToBad, r.PBadToGood, r.GoodLoss, r.BadLoss), nil
	default:
		return nil, fmt.Errorf("%w: unknown radio kind %q", ErrBadSpec, r.Kind)
	}
}

// canonical renders the spec for fingerprinting: the kind normalised and
// every parameter pinned, so two RadioSpecs render identically exactly
// when they construct equivalent models.
func (r RadioSpec) canonical() string {
	kind := r.Kind
	if kind == "" {
		kind = RadioIdeal
	}
	return fmt.Sprintf("kind=%q ber=%g fec=%g gb=%g bg=%g gl=%g bl=%g",
		kind, r.BER, r.FECGain, r.PGoodToBad, r.PBadToGood, r.GoodLoss, r.BadLoss)
}
