package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bluegs/internal/faults"
)

// AllBEPollers lists every best-effort poller kind, in comparison order.
var AllBEPollers = []BEPollerKind{
	BEPFP, BERoundRobin, BEExhaustive, BEFEP, BEEDC, BEDemand, BEHOL,
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]func() Spec)
)

// Register adds a named scenario builder to the process-wide registry
// (used by `btsim -scenario <name>` and `-list`). The builder must be
// deterministic: it is invoked once per Lookup. Registering an empty or
// already-taken name is an error.
func Register(name string, build func() Spec) error {
	if name == "" || build == nil {
		return fmt.Errorf("%w: registry needs a name and a builder", ErrBadSpec)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("%w: scenario %q already registered", ErrBadSpec, name)
	}
	registry[name] = build
	return nil
}

// MustRegister is Register for init-time presets; it panics on error.
func MustRegister(name string, build func() Spec) {
	if err := Register(name, build); err != nil {
		panic(err)
	}
}

// Lookup builds the named scenario, reporting whether the name is
// registered.
func Lookup(name string) (Spec, bool) {
	registryMu.RLock()
	build, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Spec{}, false
	}
	return build(), true
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The presets register themselves so every tool sees one catalogue.
func init() {
	MustRegister("paper-fig4", func() Spec { return Paper(40 * time.Millisecond) })
	for _, kind := range AllBEPollers {
		kind := kind
		MustRegister(fmt.Sprintf("baseline-%s", kind), func() Spec { return Baseline(kind) })
	}
	MustRegister("churn", func() Spec { return Churn(ChurnConfig{}) })
	for _, kind := range AllBEPollers {
		kind := kind
		MustRegister(fmt.Sprintf("churn-%s", kind), func() Spec { return Churn(ChurnConfig{Poller: kind}) })
	}
	MustRegister("scatternet", func() Spec { return Scatternet(ScatternetConfig{}) })
	MustRegister("scatternet-pair", func() Spec { return Scatternet(ScatternetConfig{Piconets: 2}) })
	MustRegister("faults-degrade", func() Spec {
		return FaultScenario(FaultScenarioConfig{Policy: faults.PolicyDegrade})
	})
	MustRegister("faults-handoff", func() Spec {
		return FaultScenario(FaultScenarioConfig{Policy: faults.PolicyHandoff})
	})
	MustRegister("bridge-pair", func() Spec { return Bridged(BridgedConfig{Hops: 2}) })
	MustRegister("bridge-chain", func() Spec { return Bridged(BridgedConfig{Hops: 3}) })
}
