package scenario

import (
	"testing"
	"time"
)

func TestRegistryPresets(t *testing.T) {
	names := Names()
	want := []string{"churn", "paper-fig4", "baseline-pfp", "baseline-round-robin"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Fatalf("registry misses %q (have %v)", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

// TestRegistryScenariosRun: every registered scenario must actually run —
// the registry is user-facing surface (btsim -scenario), so a preset that
// errors is a release blocker.
func TestRegistryScenariosRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := Lookup(name)
			if !ok {
				t.Fatal("registered name does not resolve")
			}
			spec.Duration = 2 * time.Second
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Interference.Enabled {
				// Co-channel interference eroding the per-piconet bounds
				// is the point of the scatternet presets (the E9 study
				// measures it); violations are expected, errors are not.
				return
			}
			if v := res.BoundViolations(); len(v) != 0 {
				t.Fatalf("violations: %+v", v)
			}
		})
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("", func() Spec { return Spec{} }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("paper-fig4", func() Spec { return Spec{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("test-once", func() Spec { return Paper(time.Millisecond * 40) }); err != nil {
		t.Fatal(err)
	}
	if _, ok := Lookup("test-once"); !ok {
		t.Fatal("registered scenario not found")
	}
}
