package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
	"bluegs/internal/traffic"
)

// routeState is the live state of one end-to-end route: its derived hops,
// the per-hop FIFO of origin timestamps tracking every packet in flight,
// and the end-to-end measurements.
type routeState struct {
	spec RouteSpec
	hops []routeHop
	// origins[i] holds, oldest first, the generation instants of the
	// packets currently queued or in delivery at hop i. Per-flow delivery
	// completions are monotone in time, so the FIFO discipline matches the
	// piconet queues exactly.
	origins [][]sim.Time
	delay   *stats.DurationStats

	offered        uint64
	delivered      uint64
	lost           uint64
	deliveredBytes uint64
	// peakQueue is the high-water mark of packets in flight past hop 1:
	// the bridges' store-and-forward backlog.
	peakQueue int

	// suspended stops forwarding (faults severed the route); retired marks
	// a remove_route departure. fate mirrors FlowResult.Fate.
	suspended bool
	retired   bool
	fate      string
}

// hopIndex returns the index of the route's hop in the named piconet.
func (rt *routeState) hopIndex(pn string) (int, bool) {
	for i, h := range rt.hops {
		if h.Piconet == pn {
			return i, true
		}
	}
	return 0, false
}

// hopRef addresses one hop of one route (the per-piconet view the builder
// uses to install static hop flows).
type hopRef struct {
	rt  *routeState
	idx int
}

// initRoutes derives the given static routes' hops and prepares their
// state before any piconet is built (buildPiconet folds the hops of its
// piconet into the admission plan and flow set). A single-kernel run
// passes the whole spec.Routes slice; a sharded run passes each shard
// the routes whose hops it owns.
func (r *runner) initRoutes(rts []RouteSpec) error {
	r.routeByID = make(map[piconet.FlowID]*routeState)
	for _, spec := range rts {
		rt, err := r.newRouteState(spec)
		if err != nil {
			return err
		}
		r.routes = append(r.routes, rt)
		r.routeByID[spec.ID] = rt
	}
	return nil
}

// newRouteState derives a route's hops and allocates its bookkeeping.
func (r *runner) newRouteState(spec RouteSpec) (*routeState, error) {
	hops, err := r.spec.routeHops(spec)
	if err != nil {
		return nil, err
	}
	return &routeState{
		spec:    spec,
		hops:    hops,
		origins: make([][]sim.Time, len(hops)),
		delay:   stats.NewDurationStats(0),
	}, nil
}

// staticHopsAt lists the static routes' hops hosted by the named piconet,
// in route declaration order (the builder's deterministic iteration).
func (r *runner) staticHopsAt(pn string) []hopRef {
	var out []hopRef
	for _, rt := range r.routes {
		if i, ok := rt.hopIndex(pn); ok {
			out = append(out, hopRef{rt: rt, idx: i})
		}
	}
	return out
}

// residencyFor compiles the named piconet's bridge windows into the two
// runtime oracles: the link gate (true = the bridge is outside its window,
// so a poll fails like a declared outage — deterministically, no RNG
// draws) and the scheduler's reachability oracle (absent now, open at the
// returned instant — see core.WithResidency). Both are nil when no bridge
// is resident here, keeping bridge-free piconets on the exact pre-bridge
// code path.
func (r *runner) residencyFor(pn string) (gate func(piconet.SlaveID, sim.Time) bool,
	reach func(piconet.SlaveID, sim.Time) (bool, sim.Time)) {
	type window struct{ period, start, end time.Duration }
	wins := make(map[piconet.SlaveID]window)
	for _, br := range r.spec.Bridges {
		if res, ok := br.residencyIn(pn); ok {
			wins[res.Slave] = window{period: br.Period, start: res.Start, end: res.End}
		}
	}
	if len(wins) == 0 {
		return nil, nil
	}
	gate = func(slave piconet.SlaveID, now sim.Time) bool {
		w, ok := wins[slave]
		if !ok {
			return false
		}
		phi := now % w.period
		return phi < w.start || phi >= w.end
	}
	reach = func(slave piconet.SlaveID, at sim.Time) (bool, sim.Time) {
		w, ok := wins[slave]
		if !ok {
			return true, 0
		}
		phi := at % w.period
		if phi >= w.start && phi < w.end {
			return true, 0
		}
		if phi < w.start {
			return false, at + (w.start - phi)
		}
		return false, at + (w.period - phi) + w.start
	}
	return gate, reach
}

// hopRequest builds one hop's admission request: the route's TSpec at the
// hop's endpoint, derated by the bridge's residency duty cycle through
// Request.SuccessScale (composed multiplicatively with the controller's
// interference derate).
func (p *piconetRunner) hopRequest(rt *routeState, h routeHop) admission.DelayRequest {
	return admission.DelayRequest{
		Request: admission.Request{
			ID:           rt.spec.ID,
			Slave:        h.Slave,
			Dir:          h.Dir,
			Spec:         rt.spec.Spec(),
			Allowed:      p.allowedFor(rt.spec.Allowed),
			SuccessScale: h.Scale,
		},
		Target: h.Target,
	}
}

// installHop registers one admitted hop flow with the piconet engine.
func (p *piconetRunner) installHop(rt *routeState, h routeHop) error {
	if err := p.addSlave(h.Slave); err != nil {
		return err
	}
	if err := p.pn.AddFlow(piconet.FlowConfig{
		ID: rt.spec.ID, Slave: h.Slave, Dir: h.Dir,
		Class: piconet.Guaranteed, Allowed: p.allowedFor(rt.spec.Allowed),
	}); err != nil {
		return err
	}
	p.routeOf[rt.spec.ID] = rt
	return nil
}

// attachRouteSource starts the route's CBR source in its first-hop
// piconet. It is the GS source with origin bookkeeping: each generated
// packet's timestamp enters the hop-0 FIFO so the final-hop delivery can
// measure the end-to-end delay. The RNG draw order matches attachSource
// exactly, so a single-hop route is packet-identical to the equivalent
// flat GS flow.
func (p *piconetRunner) attachRouteSource(rt *routeState) {
	r := p.r
	g := rt.spec
	phase := g.Phase
	if phase < 0 {
		phase = 0
	}
	gen := traffic.CBR{Interval: g.Interval}
	sizes := traffic.UniformSize{Min: g.MinSize, Max: g.MaxSize}
	src := &source{}
	var tick func()
	tick = func() {
		rt.offered++
		rt.origins[0] = append(rt.origins[0], r.s.Now())
		_ = p.pn.EnqueuePacket(g.ID, sizes.Draw(r.s.Rand()))
		src.ev = r.s.After(gen.NextInterval(r.s.Rand()), tick)
	}
	src.ev = r.s.Schedule(r.s.Now()+phase, tick)
	p.sources[g.ID] = src
}

// onHopComplete is the piconet delivery hook: one higher-layer packet of
// some flow finished its exchange in piconet p at instant `at`. For route
// hops it advances the packet along the path — recording the end-to-end
// delay on the final hop, or future-dating the packet into the next hop's
// up-flow queue (the bridge's store-and-forward handoff).
func (r *runner) onHopComplete(p *piconetRunner, flow piconet.FlowID, size int, at sim.Time, delivered bool) {
	rt := p.routeOf[flow]
	if rt == nil || rt.suspended || rt.retired {
		return
	}
	idx, ok := rt.hopIndex(p.name)
	if !ok || len(rt.origins[idx]) == 0 {
		return
	}
	origin := rt.origins[idx][0]
	rt.origins[idx] = rt.origins[idx][1:]
	if !delivered {
		// Corrupted on air with ARQ off: the packet dies at this hop.
		rt.lost++
		return
	}
	if idx == len(rt.hops)-1 {
		rt.delivered++
		rt.deliveredBytes += uint64(size)
		rt.delay.Add(at - origin)
		return
	}
	next := rt.hops[idx+1]
	q := r.byName[next.Piconet]
	if q == nil || q.removed || q.crashed {
		rt.lost++
		return
	}
	rt.origins[idx+1] = append(rt.origins[idx+1], origin)
	if n := len(rt.origins[idx+1]); n > rt.peakQueue {
		rt.peakQueue = n
	}
	if err := q.pn.EnqueuePacketAt(flow, size, at); err != nil {
		r.err = fmt.Errorf("route %d: hop %d handoff: %w", rt.spec.ID, idx+2, err)
		r.s.Stop()
	}
}

// applyAddRoute handles the add_route timeline event: the end-to-end
// budget splits across the hops, every hop runs the paper's online
// admission test — hop i+1 only after hop i succeeded — and a refusal at
// any hop rolls the earlier admissions back, so the route is installed
// whole or not at all. Each admitted hop logs its own per-hop record.
func (r *runner) applyAddRoute(spec RouteSpec) {
	if r.routeByID[spec.ID] != nil {
		r.reject("", OpAddRoute, spec.ID, 0, "route id already used")
		return
	}
	rt, err := r.newRouteState(spec)
	if err != nil {
		r.reject("", OpAddRoute, spec.ID, 0, err.Error())
		return
	}
	prs := make([]*piconetRunner, len(rt.hops))
	for i, h := range rt.hops {
		p, ok := r.byName[h.Piconet]
		switch {
		case !ok:
			r.reject(h.Piconet, OpAddRoute, spec.ID, h.Slave, "unknown piconet")
			return
		case p.removed:
			r.reject(h.Piconet, OpAddRoute, spec.ID, h.Slave, "piconet removed")
			return
		case p.crashed:
			r.reject(h.Piconet, OpAddRoute, spec.ID, h.Slave, "piconet crashed")
			return
		}
		if _, dup := p.pn.FlowConfig(spec.ID); dup {
			r.reject(h.Piconet, OpAddRoute, spec.ID, h.Slave,
				fmt.Sprintf("flow id %d already exists at %q", spec.ID, h.Piconet))
			return
		}
		prs[i] = p
	}
	admitted := make([]*admission.PlannedFlow, len(rt.hops))
	for i, h := range rt.hops {
		pf, err := prs[i].ctrl.AdmitForDelay(prs[i].hopRequest(rt, h))
		if err != nil {
			// All-or-nothing: release the hops admitted so far.
			for j := i - 1; j >= 0; j-- {
				_ = prs[j].ctrl.Remove(spec.ID)
			}
			r.admissions = append(r.admissions, AdmissionRecord{
				At: r.s.Now(), Op: OpAddRoute, Piconet: h.Piconet,
				Flow: spec.ID, Slave: h.Slave, Route: spec.Name, Hop: i + 1,
				Reason: fmt.Sprintf("hop %d: %v", i+1, err),
			})
			return
		}
		admitted[i] = pf
	}
	for i, h := range rt.hops {
		p := prs[i]
		if r.err = p.installHop(rt, h); r.err != nil {
			return
		}
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
			return
		}
		p.noteBounds()
		p.accept(AdmissionRecord{
			Op: OpAddRoute, Flow: spec.ID, Slave: h.Slave,
			Bound: admitted[i].Bound, Rate: admitted[i].Request.Rate,
			Route: spec.Name, Hop: i + 1,
		})
	}
	r.routes = append(r.routes, rt)
	r.routeByID[spec.ID] = rt
	prs[0].attachRouteSource(rt)
	for _, p := range prs {
		p.pn.Kick()
	}
}

// applyRemoveRoute retires a route end-to-end: the source stops, every
// hop's queue drops, and every hop's reservation is released.
func (r *runner) applyRemoveRoute(id piconet.FlowID) {
	rt := r.routeByID[id]
	if rt == nil {
		r.reject("", OpRemoveRoute, id, 0, "unknown route")
		return
	}
	if rt.retired {
		r.reject("", OpRemoveRoute, id, 0, "route already removed")
		return
	}
	rt.retired = true
	for i, h := range rt.hops {
		p, ok := r.byName[h.Piconet]
		if !ok || p.removed || p.crashed {
			continue
		}
		if i == 0 {
			if src, installed := p.sources[id]; installed {
				r.s.Cancel(src.ev)
				delete(p.sources, id)
			}
		}
		if _, installed := p.pn.FlowConfig(id); installed {
			if r.err = p.pn.RetireFlow(id); r.err != nil {
				return
			}
		}
		if _, isGS := p.ctrl.Find(id); isGS {
			if r.err = p.ctrl.Remove(id); r.err != nil {
				return
			}
			if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
				return
			}
			p.noteBounds()
		}
		p.accept(AdmissionRecord{
			Op: OpRemoveRoute, Flow: id, Slave: h.Slave,
			Route: rt.spec.Name, Hop: i + 1,
		})
	}
	for i := range rt.origins {
		rt.origins[i] = nil
	}
}

// applyRenegotiate handles the renegotiate_flow timeline event: a healthy
// Guaranteed Service flow re-runs the admission test at a new delay target
// mid-run (tighter or looser). The negotiation is atomic — a refusal
// leaves the old contract untouched (see admission.Controller.Renegotiate).
// Route hop flows are refused: their targets follow from the route's
// end-to-end budget.
func (p *piconetRunner) applyRenegotiate(rn RenegotiateFlow) {
	r := p.r
	if rn.Target <= 0 {
		p.reject(OpRenegotiate, rn.Flow, 0, "non-positive delay target")
		return
	}
	if p.routeOf[rn.Flow] != nil {
		p.reject(OpRenegotiate, rn.Flow, 0, "flow belongs to a route; its target follows from the route budget")
		return
	}
	if _, installed := p.sources[rn.Flow]; !installed {
		p.reject(OpRenegotiate, rn.Flow, 0, "flow not installed")
		return
	}
	if _, isGS := p.ctrl.Find(rn.Flow); !isGS {
		p.reject(OpRenegotiate, rn.Flow, 0, "not a guaranteed flow")
		return
	}
	pf, err := p.ctrl.Renegotiate(rn.Flow, rn.Target)
	if err != nil {
		p.reject(OpRenegotiate, rn.Flow, 0, err.Error())
		return
	}
	if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
		return
	}
	p.noteBounds()
	p.accept(AdmissionRecord{
		Op: OpRenegotiate, Flow: rn.Flow, Slave: pf.Request.Slave,
		Bound: pf.Bound, Rate: pf.Request.Rate,
	})
}

// suspendRoute severs a route end-to-end: the source stops, every live
// hop's flow is suspended (queue flushed) and its reservation released,
// and the in-flight origin FIFOs clear. Used by the fault machinery when
// any hop's link dies or any traversed piconet crashes or leaves.
func (r *runner) suspendRoute(rt *routeState, fate string, latency time.Duration, reason string) {
	if rt.suspended || rt.retired {
		return
	}
	rt.suspended = true
	rt.fate = fate
	id := rt.spec.ID
	for i, h := range rt.hops {
		p, ok := r.byName[h.Piconet]
		if !ok || p.removed || p.crashed {
			continue
		}
		if i == 0 {
			if src, installed := p.sources[id]; installed {
				r.s.Cancel(src.ev)
				delete(p.sources, id)
			}
		}
		if _, installed := p.pn.FlowConfig(id); installed && !p.pn.FlowSuspended(id) {
			if r.err = p.pn.SuspendFlow(id); r.err != nil {
				return
			}
		}
		if _, isGS := p.ctrl.Find(id); isGS {
			if r.err = p.ctrl.Remove(id); r.err != nil {
				return
			}
			if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
				return
			}
			p.noteBounds()
		}
		p.fates[id] = fate
		p.accept(AdmissionRecord{
			Op: OpSuspend, Flow: id, Slave: h.Slave,
			Route: rt.spec.Name, Hop: i + 1,
			Latency: latency, Reason: reason,
		})
	}
	for i := range rt.origins {
		rt.origins[i] = nil
	}
}

// onRouteLinkDead applies the recovery policy to routes severed by a
// supervision timeout at (p, slave): every route with a hop at that slave
// suspends end-to-end, then — under PolicyDegrade — renegotiates all hops
// at a degraded end-to-end budget when the declared fault window ends.
// Handoff does not compose with routes (their piconet membership is fixed
// by the bridge schedule), so that policy logs a rejection instead.
func (r *runner) onRouteLinkDead(p *piconetRunner, slave piconet.SlaveID, since, at sim.Time) {
	for _, rt := range r.routes {
		if rt.suspended || rt.retired {
			continue
		}
		idx, ok := rt.hopIndex(p.name)
		if !ok || rt.hops[idx].Slave != slave {
			continue
		}
		r.suspendRoute(rt, FateSuspended, at-since, "supervision timeout")
		if r.err != nil {
			return
		}
		switch r.spec.Recovery.Policy {
		case faults.PolicyDegrade:
			r.scheduleRouteDegrade(rt, p, slave)
		case faults.PolicyHandoff:
			r.reject(p.name, OpHandoff, rt.spec.ID, slave,
				"handoff of routed flows is not supported: the bridge schedule fixes their piconets")
		}
	}
}

// scheduleRouteDegrade arranges the end-to-end renegotiation of a severed
// route, mirroring the per-flow scheduleDegrade: inside a declared fault
// window the attempt waits for the window's end; a link that never returns
// is a rejected degrade; otherwise it renegotiates now.
func (r *runner) scheduleRouteDegrade(rt *routeState, p *piconetRunner, slave piconet.SlaveID) {
	now := r.s.Now()
	if pf := r.fsched.Piconet(p.name); pf != nil {
		if iv, down := pf.Covering(slave, now); down {
			if iv.End == faults.Forever {
				r.reject(p.name, OpDegrade, rt.spec.ID, slave, "link never returns")
				return
			}
			r.s.Schedule(iv.End, func() { r.applyRouteDegrade(rt) })
			return
		}
	}
	r.applyRouteDegrade(rt)
}

// applyRouteDegrade renegotiates a suspended route at the degraded
// end-to-end budget (DegradeFactor × the route's budget): the new budget
// splits across the hops and every hop re-runs the admission test, atomic
// all-or-nothing like add_route. Success resumes every hop and restarts
// the source; a refusal leaves the route suspended.
func (r *runner) applyRouteDegrade(rt *routeState) {
	if r.err != nil || rt.retired || !rt.suspended || rt.fate != FateSuspended {
		return
	}
	degraded := rt.spec
	degraded.DelayTarget = time.Duration(float64(rt.spec.DelayTarget) * r.spec.Recovery.DegradeFactor)
	hops, err := r.spec.routeHops(degraded)
	if err != nil {
		r.reject("", OpDegrade, rt.spec.ID, 0, err.Error())
		return
	}
	id := rt.spec.ID
	prs := make([]*piconetRunner, len(hops))
	for i, h := range hops {
		p, ok := r.byName[h.Piconet]
		if !ok || p.removed || p.crashed {
			r.reject(h.Piconet, OpDegrade, id, h.Slave, "piconet out of service")
			return
		}
		prs[i] = p
	}
	for i, h := range hops {
		if _, err := prs[i].ctrl.AdmitForDelay(prs[i].hopRequest(rt, h)); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = prs[j].ctrl.Remove(id)
			}
			r.reject(h.Piconet, OpDegrade, id, h.Slave, fmt.Sprintf("hop %d: %v", i+1, err))
			return
		}
	}
	rt.hops = hops
	rt.spec.DelayTarget = degraded.DelayTarget
	rt.suspended = false
	rt.fate = FateDegraded
	for i, h := range hops {
		p := prs[i]
		if r.err = p.pn.ResumeFlow(id); r.err != nil {
			return
		}
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
			return
		}
		p.noteBounds()
		p.fates[id] = FateDegraded
		pf, _ := p.ctrl.Find(id)
		p.accept(AdmissionRecord{
			Op: OpDegrade, Flow: id, Slave: h.Slave,
			Bound: pf.Bound, Rate: pf.Request.Rate,
			Route: rt.spec.Name, Hop: i + 1,
		})
	}
	prs[0].attachRouteSource(rt)
	for _, p := range prs {
		p.pn.Kick()
	}
}

// severRoutesThrough suspends every live route traversing the named
// piconet (a master crash or a remove_piconet breaks the path for good —
// no recovery policy can restore a piconet that no longer exists).
func (r *runner) severRoutesThrough(name, fate, reason string) {
	for _, rt := range r.routes {
		if rt.suspended || rt.retired {
			continue
		}
		if _, ok := rt.hopIndex(name); !ok {
			continue
		}
		r.suspendRoute(rt, fate, 0, reason)
		if r.err != nil {
			return
		}
	}
}

// collectRoutes assembles the end-to-end route results.
func (r *runner) collectRoutes(end sim.Time) []RouteResult {
	var out []RouteResult
	for _, rt := range r.routes {
		rr := RouteResult{
			ID:        rt.spec.ID,
			Name:      rt.spec.Name,
			Target:    rt.spec.DelayTarget,
			Offered:   rt.offered,
			Delivered: rt.delivered,
			Lost:      rt.lost,
			DelayMax:  rt.delay.Max(),
			DelayMean: rt.delay.Mean(),
			DelayP99:  rt.delay.Quantile(0.99),
			PeakQueue: rt.peakQueue,
			Fate:      rt.fate,
			Delay:     rt.delay,
		}
		if end > 0 {
			rr.Kbps = float64(rt.deliveredBytes) * 8 / 1000 / end.Seconds()
		}
		for _, h := range rt.hops {
			rr.Path = append(rr.Path, h.Piconet)
			if p, ok := r.byName[h.Piconet]; ok {
				rr.HopBounds = append(rr.HopBounds, p.bounds[rt.spec.ID])
				rr.HopRates = append(rr.HopRates, p.rates[rt.spec.ID])
			} else {
				rr.HopBounds = append(rr.HopBounds, 0)
				rr.HopRates = append(rr.HopRates, 0)
			}
		}
		out = append(out, rr)
	}
	return out
}
